(* Ground-truth correctness evaluation (paper Section 8.1).

   Three modes: generate the coreutils-like corpus in memory (default),
   generate a wild-binary family (--family, PR9), or verify .sbf files on
   disk against the ground truth embedded in their .ground section (as
   written by bgen). [--gap] parses with gap discovery enabled and prints
   the aggregate entry-discovery precision/recall. *)

open Cmdliner

let ground_truth_of image =
  match Pbca_binfmt.Image.section image ".ground" with
  | Some sec ->
    Some
      (Pbca_codegen.Ground_truth.read
         (Pbca_binfmt.Bio.R.of_bytes sec.Pbca_binfmt.Section.data))
  | None -> None

let check_one pool ?config classes verbose discovery name image gt =
  let g = Pbca_core.Parallel.parse_and_finalize ?config ~pool image in
  let rep = Pbca_checker.Checker.check gt g in
  List.iter
    (fun (_, cls) ->
      Hashtbl.replace classes cls
        (1 + Option.value (Hashtbl.find_opt classes cls) ~default:0))
    rep.func_expected;
  (match discovery with
  | Some acc -> acc := Pbca_checker.Checker.score_discovery gt g :: !acc
  | None -> ());
  let clean = Pbca_checker.Checker.clean rep in
  if (not clean) || verbose then begin
    Printf.printf "%s: " name;
    Format.printf "%a@." Pbca_checker.Checker.pp rep
  end;
  clean

let run count threads verbose dir family gap =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let config =
    if gap then Some { Pbca_core.Config.default with gap_parse = true }
    else None
  in
  let discovery =
    if gap then Some (ref ([] : Pbca_checker.Checker.discovery list))
    else None
  in
  let dirty = ref 0 in
  let total = ref 0 in
  (match (dir, family) with
  | Some dir, _ ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sbf")
      |> List.sort compare
    in
    List.iter
      (fun f ->
        let image = Pbca_binfmt.Image.load (Filename.concat dir f) in
        match ground_truth_of image with
        | Some gt ->
          incr total;
          if not (check_one pool ?config classes verbose discovery f image gt)
          then incr dirty
        | None -> Printf.eprintf "%s: no embedded ground truth, skipped\n" f)
      files
  | None, Some fam_name -> (
    match Pbca_codegen.Family.name_of_string fam_name with
    | None ->
      Printf.eprintf "unknown family %s (stripped, overlap, obfuscated)\n"
        fam_name;
      exit 2
    | Some fam ->
      for i = 0 to count - 1 do
        let r = Pbca_codegen.Family.generate fam i in
        incr total;
        if
          not
            (check_one pool ?config classes verbose discovery
               (Pbca_codegen.Family.profile fam i).Pbca_codegen.Profile.name
               r.image r.ground_truth)
        then incr dirty
      done)
  | None, None ->
    for i = 0 to count - 1 do
      let p = Pbca_codegen.Profile.coreutils_like i in
      let r = Pbca_codegen.Emit.generate p in
      incr total;
      if
        not
          (check_one pool ?config classes verbose discovery p.name r.image
             r.ground_truth)
      then incr dirty
    done);
  Printf.printf "\n%d/%d binaries fully explained\n" (!total - !dirty) !total;
  Printf.printf "expected difference classes (paper Section 8.1):\n";
  Hashtbl.iter (fun cls n -> Printf.printf "  %-40s %d functions\n" cls n) classes;
  (match discovery with
  | Some acc ->
    let sum f = List.fold_left (fun a d -> a + f d) 0 !acc in
    let relevant = sum (fun d -> d.Pbca_checker.Checker.ds_relevant) in
    let found = sum (fun d -> d.Pbca_checker.Checker.ds_found) in
    let spurious = sum (fun d -> d.Pbca_checker.Checker.ds_spurious) in
    let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
    Printf.printf
      "entry discovery: relevant=%d found=%d spurious=%d precision=%.4f \
       recall=%.4f\n"
      relevant found spurious
      (ratio found (found + spurious))
      (ratio found relevant)
  | None -> ());
  if !dirty > 0 then exit 1

let count = Arg.(value & opt int 113 & info [ "n" ] ~doc:"Corpus size")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")
let verbose = Arg.(value & flag & info [ "v" ] ~doc:"Print every report")

let dir =
  Arg.(
    value
    & opt (some dir) None
    & info [ "dir" ] ~doc:"Verify .sbf files in this directory instead of generating")

let family =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "family" ]
        ~doc:
          "Generate and verify a wild-binary family (stripped, overlap, \
           obfuscated) instead of the coreutils corpus")

let gap =
  Arg.(
    value & flag
    & info [ "gap" ]
        ~doc:
          "Parse with gap discovery enabled and print aggregate \
           entry-discovery precision/recall")

let cmd =
  Cmd.v
    (Cmd.info "checker" ~doc:"Verify parsed CFGs against ground truth")
    Term.(const run $ count $ threads $ verbose $ dir $ family $ gap)

let () = exit (Cmd.eval cmd)
