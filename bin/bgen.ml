(* Generate synthetic SBF binaries (and their ground truth) to disk. *)

open Cmdliner

let profiles =
  [
    ("llnl1", Pbca_codegen.Profile.llnl1);
    ("llnl2", Pbca_codegen.Profile.llnl2);
    ("camellia", Pbca_codegen.Profile.camellia);
    ("tensorflow", Pbca_codegen.Profile.tensorflow);
    ("default", Pbca_codegen.Profile.default);
  ]

let save_one dir (r : Pbca_codegen.Emit.result) name =
  let path = Filename.concat dir (name ^ ".sbf") in
  Pbca_binfmt.Image.save r.image path;
  Printf.printf "%s: %d bytes (%d functions, %d jump tables)\n" path
    (Pbca_binfmt.Image.total_size r.image)
    (List.length r.ground_truth.gt_funcs)
    (List.length r.ground_truth.gt_tables)

let generate_one ~strip dir profile =
  let r = Pbca_codegen.Emit.generate profile in
  let r = if strip then Pbca_codegen.Family.strip r else r in
  save_one dir r profile.Pbca_codegen.Profile.name

let run dir profile corpus family count seed funcs strip =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (match corpus with
  | Some "coreutils" ->
    for i = 0 to count - 1 do
      generate_one ~strip dir (Pbca_codegen.Profile.coreutils_like i)
    done
  | Some "forensics" ->
    for i = 0 to count - 1 do
      generate_one ~strip dir (Pbca_codegen.Profile.forensics_member i)
    done
  | Some other -> Printf.eprintf "unknown corpus %s\n" other
  | None -> ());
  (match family with
  | Some name -> (
    match Pbca_codegen.Family.name_of_string name with
    | Some fam ->
      for i = 0 to count - 1 do
        let r = Pbca_codegen.Family.generate fam i in
        let r = if strip then Pbca_codegen.Family.strip r else r in
        save_one dir r (Pbca_codegen.Family.profile fam i).Pbca_codegen.Profile.name
      done
    | None ->
      Printf.eprintf "unknown family %s (stripped, overlap, obfuscated)\n"
        name)
  | None -> ());
  match profile with
  | Some name -> (
    match List.assoc_opt name profiles with
    | Some p ->
      let p = { p with seed = Option.value seed ~default:p.seed } in
      let p =
        match funcs with Some n -> { p with n_funcs = n } | None -> p
      in
      generate_one ~strip dir p
    | None -> Printf.eprintf "unknown profile %s\n" name)
  | None -> ()

let dir =
  Arg.(value & opt string "corpus" & info [ "o"; "output" ] ~doc:"Output directory")

let profile =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "profile" ] ~doc:"Named profile (llnl1, llnl2, camellia, tensorflow, default)")

let corpus =
  Arg.(
    value
    & opt (some string) None
    & info [ "c"; "corpus" ] ~doc:"Corpus family (coreutils, forensics)")

let family =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "family" ]
        ~doc:"Wild-binary family (stripped, overlap, obfuscated)")

let count = Arg.(value & opt int 10 & info [ "n" ] ~doc:"Corpus size")
let seed = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"RNG seed")

let funcs =
  Arg.(value & opt (some int) None & info [ "funcs" ] ~doc:"Function count override")

let strip =
  Arg.(
    value & flag
    & info [ "strip" ]
        ~doc:
          "Strip function symbols after generation (ground truth records \
           the loss)")

let cmd =
  Cmd.v
    (Cmd.info "bgen" ~doc:"Generate synthetic binaries with ground truth")
    Term.(
      const run $ dir $ profile $ corpus $ family $ count $ seed $ funcs
      $ strip)

let () = exit (Cmd.eval cmd)
