(* Mutation fuzzer for the SBF parser, the CFG analyses and the crash
   recovery path.

   Generates well-formed binaries, mutates them (header bits, truncation,
   byte flips, code splices, table smashes, symbol lies) and checks the
   robustness contract on every mutant: the parser never crashes, never
   runs past the deadline, and always returns either a clean CFG, a partial
   CFG with degradation marks, or a structured parse error.

   The seventh axis (artifact-rot) fuzzes recovery instead of parsing: a
   checkpointed parse is killed partway through by an injected crash, one
   of its recovery artifacts is corrupted the way a dying disk would, and
   the resume must either reject the checkpoint with a structured error
   (exit-2 class) or converge to the exact CFG of an uninterrupted run —
   never crash, never return a silently different graph.

   Exit codes (corpus mode): 0 when every mutant upheld the contract,
   3 when any crashed or hung. With a positional FILE the same codes as
   bparse apply: 0 clean, 1 degraded, 2 malformed, 3 internal bug. *)

open Cmdliner
module Image = Pbca_binfmt.Image
module Parse_error = Pbca_binfmt.Parse_error
module Cfg = Pbca_core.Cfg
module Config = Pbca_core.Config
module Parallel = Pbca_core.Parallel
module Recover = Pbca_core.Recover
module Summary = Pbca_core.Summary
module Fault = Pbca_concurrent.Fault
module Mutate = Pbca_codegen.Mutate
module Rng = Pbca_codegen.Rng
module Profile = Pbca_codegen.Profile
module Otrace = Pbca_obs.Trace
module Clock = Pbca_obs.Clock
module Metrics = Pbca_obs.Metrics
module Serve = Pbca_serve.Serve
module Wire = Pbca_serve.Wire
module Sclient = Pbca_serve.Sclient

type outcome = Clean | Degraded | Malformed of string | Crash of string

(* observability sinks shared by every mutant: spans append to [obs_trace],
   each mutant's per-run registry merges into [obs_metrics] *)
type obs = { obs_trace : Otrace.t; obs_metrics : Metrics.t option }

let record_metrics obs (g : Cfg.t) =
  match obs.obs_metrics with
  | Some acc -> Metrics.merge ~into:acc g.Cfg.metrics
  | None -> ()

let classify ~pool ~config ~obs bytes =
  match Image.read_result bytes with
  | Error e -> Malformed (Parse_error.to_string e)
  | Ok img -> (
    try
      let g =
        Pbca_core.Parallel.parse_and_finalize ~config ~otrace:obs.obs_trace
          ~pool img
      in
      record_metrics obs g;
      if Cfg.degraded_count g > 0 || Cfg.task_failure_count g > 0 then Degraded
      else Clean
    with e -> Crash (Printexc.to_string e))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_file path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b)

let with_artifacts f =
  let cp = Filename.temp_file "bfuzz" ".cp" in
  let j = cp ^ ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ cp; j; cp ^ ".tmp" ])
    (fun () -> f cp j)

let corrupt_file ~rng path =
  if Sys.file_exists path then
    write_file path (Mutate.corrupt_artifact ~rng (read_file path))

(* The artifact-rot scenario: crash a checkpointed parse partway through
   (the kill point is drawn from the seed stream, so some seeds die in
   init, some mid-rounds, some not at all), rot one artifact, resume.
   A rejected checkpoint is the malformed outcome; a resume that loads
   must reproduce the uninterrupted run's CFG bit for bit. *)
let classify_resume ~pool ~config ~obs ~rng ~clean_sum img =
  with_artifacts (fun cp j ->
      let persist =
        { Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 }
      in
      Fun.protect
        ~finally:(fun () -> Fault.disarm ())
        (fun () ->
          Fault.arm_at [ Rng.int rng 600 ] Fault.Crash;
          try
            ignore
              (Parallel.parse_and_finalize ~config ~otrace:obs.obs_trace
                 ~persist ~pool img)
          with _ -> ());
      corrupt_file ~rng (if Rng.bool rng 0.5 then cp else j);
      match
        Recover.load
          { Recover.src_checkpoint = Some cp; src_journal = Some j }
      with
      | Error e -> Malformed (Parse_error.to_string e)
      | Ok plan -> (
        try
          let g =
            Parallel.parse_and_finalize ~config ~otrace:obs.obs_trace
              ~resume:plan ~pool img
          in
          record_metrics obs g;
          if Summary.equal (Summary.of_cfg g) clean_sum then
            if Cfg.degraded_count g > 0 || Cfg.task_failure_count g > 0 then
              Degraded
            else Clean
          else Crash "resumed CFG differs from the uninterrupted parse"
        with e -> Crash (Printexc.to_string e)))

let base_images () =
  List.map
    (fun p -> (Pbca_codegen.Emit.generate p).Pbca_codegen.Emit.image)
    [ Profile.coreutils_like 1; Profile.coreutils_like 2 ]

type tally = {
  mutable clean : int;
  mutable degraded : int;
  mutable malformed : int;
  mutable crash : int;
}

let make_obs ~trace_out ~metrics =
  {
    obs_trace =
      (match trace_out with
      | Some _ -> Otrace.create ()
      | None -> Otrace.disabled);
    obs_metrics = (if metrics then Some (Metrics.create ()) else None);
  }

let finish_obs obs ~trace_out code =
  (match trace_out with
  | None -> ()
  | Some path ->
    Otrace.write_chrome obs.obs_trace path;
    Printf.printf "trace: %s (%d spans)\n" path
      (List.length (Otrace.spans obs.obs_trace)));
  (match obs.obs_metrics with
  | None -> ()
  | Some acc ->
    Format.printf "metrics (all runs merged):@.%a@." Metrics.pp acc);
  code

let run_corpus ~threads ~seeds ~base_seed ~deadline ~obs =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let config = { Config.default with Config.deadline_s = deadline } in
  let bases = base_images () in
  let nb = List.length bases in
  (* uninterrupted-run summaries, the artifact-rot equality oracle *)
  let clean_sums =
    List.map
      (fun img ->
        Summary.of_cfg (Pbca_core.Parallel.parse_and_finalize ~config ~pool img))
      bases
  in
  let per_kind = Hashtbl.create 8 in
  let tally_of kind =
    let name = Mutate.kind_name kind in
    match Hashtbl.find_opt per_kind name with
    | Some t -> t
    | None ->
      let t = { clean = 0; degraded = 0; malformed = 0; crash = 0 } in
      Hashtbl.add per_kind name t;
      t
  in
  let crashes = ref [] in
  let hangs = ref [] in
  (* the deadline is best-effort (checked between work units), so allow a
     generous grace before calling a run hung *)
  let grace = 3.0 in
  for s = 0 to seeds - 1 do
    let rng = Rng.create (base_seed + s) in
    let img = List.nth bases (s mod nb) in
    let kind = Rng.choose_arr rng Mutate.all_kinds in
    let t0 = Clock.now () in
    let outcome =
      match kind with
      | Mutate.Artifact_rot ->
        classify_resume ~pool ~config ~obs ~rng
          ~clean_sum:(List.nth clean_sums (s mod nb))
          img
      | k -> classify ~pool ~config ~obs (Mutate.apply ~rng k img)
    in
    let dt = Clock.elapsed t0 in
    let t = tally_of kind in
    (match outcome with
    | Clean -> t.clean <- t.clean + 1
    | Degraded -> t.degraded <- t.degraded + 1
    | Malformed _ -> t.malformed <- t.malformed + 1
    | Crash e ->
      t.crash <- t.crash + 1;
      crashes := (base_seed + s, Mutate.kind_name kind, e) :: !crashes);
    if deadline > 0.0 && dt > deadline +. grace then
      hangs := (base_seed + s, Mutate.kind_name kind, dt) :: !hangs
  done;
  let names = Array.map Mutate.kind_name Mutate.all_kinds in
  Array.iter
    (fun name ->
      match Hashtbl.find_opt per_kind name with
      | None -> ()
      | Some t ->
        Printf.printf "%-12s clean=%-5d degraded=%-5d malformed=%-5d crash=%d\n"
          name t.clean t.degraded t.malformed t.crash)
    names;
  List.iter
    (fun (seed, kind, e) ->
      Printf.printf "CRASH seed=%d kind=%s: %s\n" seed kind e)
    (List.rev !crashes);
  List.iter
    (fun (seed, kind, dt) ->
      Printf.printf "HANG seed=%d kind=%s: %.2fs past a %.2fs deadline\n" seed
        kind dt deadline)
    (List.rev !hangs);
  Printf.printf "%d mutants: %d crashes, %d deadline violations\n" seeds
    (List.length !crashes) (List.length !hangs);
  if !crashes = [] && !hangs = [] then 0 else 3

(* --serve mode: the same zero-crash contract, asserted at the service
   layer. An in-process daemon takes real socket traffic — well-formed
   requests, mutated images, garbled frames, raw garbage, stalled
   clients — while the service fault plan kills workers, tears replies,
   stalls services and rots cache artifacts. Every request must end in a
   structured reply or a structured client-side error; a Timeout or
   Unavailable means the daemon hung or died, which is the only failure.
   Well-formed clean parse replies must carry the fingerprint of a local
   one-shot parse of the same image. *)
let fingerprint_of_body body =
  let prefix = "fingerprint=" in
  if String.length body > String.length prefix
     && String.sub body 0 (String.length prefix) = prefix
  then
    let rest = String.sub body (String.length prefix)
        (String.length body - String.length prefix) in
    match String.index_opt rest ' ' with
    | Some i -> Some (String.sub rest 0 i)
    | None -> Some rest
  else None

let run_serve ~seeds ~base_seed ~obs =
  let dir = Filename.temp_file "bfuzz-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    { (Serve.default_config ~sock) with
      Serve.sc_workers = 2;
      sc_acceptors = 2;
      sc_queue = 8;
      sc_cache_dir = Some (Filename.concat dir "cache");
      sc_read_timeout_s = 0.25;
      sc_retries = 2;
      sc_backoff_base_s = 0.002;
    }
  in
  (* local one-shot oracle for the well-formed requests *)
  let pool = Pbca_concurrent.Task_pool.create ~threads:1 in
  let bases = base_images () in
  let nb = List.length bases in
  let base_bytes = List.map Image.write bases in
  let fps =
    List.map
      (fun img ->
        Summary.fingerprint
          (Summary.of_cfg
             (Parallel.parse_and_finalize ~config:cfg.Serve.sc_analysis ~pool
                img)))
      bases
  in
  let tally = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace tally k (1 + Option.value ~default:0 (Hashtbl.find_opt tally k))
  in
  let failures = ref [] in
  let fail s msg = failures := (base_seed + s, msg) :: !failures in
  let t = Serve.start ~otrace:obs.obs_trace cfg in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_service ();
      (try Serve.stop t
       with e -> fail (-1) ("daemon crashed at drain: " ^ Printexc.to_string e));
      (match obs.obs_metrics with
      | Some acc -> Metrics.merge ~into:acc (Serve.metrics t)
      | None -> ());
      (try
         Array.iter
           (fun e -> try Sys.remove (Filename.concat (Filename.concat dir "cache") e) with Sys_error _ -> ())
           (try Sys.readdir (Filename.concat dir "cache") with Sys_error _ -> [||]);
         (try Unix.rmdir (Filename.concat dir "cache") with Unix.Unix_error _ -> ());
         (try Sys.remove sock with Sys_error _ -> ());
         Unix.rmdir dir
       with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () ->
      Fault.arm_service ~seed:base_seed ~n:(max 1 (seeds / 10)) ~window:seeds
        [ Fault.Kill_worker 1; Fault.Kill_worker 9; Fault.Torn_reply;
          Fault.Stall 0.05; Fault.Cache_rot ];
      let classify_result s = function
        | Ok (r : Wire.reply) -> bump (Wire.status_name r.Wire.rp_status)
        | Error (Sclient.Torn _) ->
          (* torn replies are injected on purpose; the client error is
             structured, which is all the contract asks *)
          bump "client-torn"
        | Error (Sclient.Io m) -> bump ("client-io:" ^ m)
        | Error Sclient.Timeout ->
          bump "client-timeout";
          fail s "client timed out: daemon hung"
        | Error (Sclient.Unavailable m) ->
          bump "client-unavailable";
          fail s ("daemon unavailable: " ^ m)
      in
      for s = 0 to seeds - 1 do
        let rng = Rng.create (base_seed + s) in
        let i = s mod nb in
        let bytes = List.nth base_bytes i in
        if s mod 50 = 13 then begin
          (* stalled client: write a third of a frame, hold past the
             daemon's read timeout; the daemon must evict us *)
          bump "stalled-client";
          match
            Sclient.stall ~hold_s:0.3 ~sock
              (Wire.encode_request (Wire.request ~image:bytes Wire.Parse))
          with
          | Ok () | Error _ -> ()
        end
        else
          match s mod 5 with
          | 0 ->
            (* well-formed parse; clean replies must match the oracle *)
            let no_cache = Rng.bool rng 0.3 in
            let req = Wire.request ~no_cache ~image:bytes Wire.Parse in
            let res = Sclient.roundtrip ~timeout_s:20.0 ~sock req in
            (match res with
            | Ok r when r.Wire.rp_status = Wire.Ok_clean -> (
              match fingerprint_of_body r.Wire.rp_body with
              | Some fp when fp = List.nth fps i -> ()
              | Some fp ->
                fail s
                  (Printf.sprintf
                     "fingerprint mismatch: daemon %s vs local %s%s" fp
                     (List.nth fps i)
                     (if r.Wire.rp_cache_hit then " (cache hit)" else ""))
              | None -> fail s ("malformed parse body: " ^ r.Wire.rp_body))
            | _ -> ());
            classify_result s res
          | 1 ->
            (* hostile image, well-formed framing *)
            let kind = Rng.choose_arr rng Mutate.image_kinds in
            let mutant = Mutate.apply ~rng kind (List.nth bases i) in
            classify_result s
              (Sclient.roundtrip ~timeout_s:20.0 ~sock
                 (Wire.request ~image:mutant Wire.Parse))
          | 2 ->
            (* well-formed request, garbled framing (the 8th axis) *)
            let frame =
              Mutate.garble_frame ~rng
                (Wire.encode_request (Wire.request ~image:bytes Wire.Parse))
            in
            classify_result s (Sclient.send_raw ~timeout_s:20.0 ~sock frame)
          | 3 ->
            (* raw garbage bytes *)
            let junk =
              Bytes.init (Rng.int rng 200) (fun _ -> Char.chr (Rng.int rng 256))
            in
            classify_result s (Sclient.send_raw ~timeout_s:20.0 ~sock junk)
          | _ ->
            (* the other analysis kinds *)
            let kind = if s mod 2 = 0 then Wire.Hpcstruct else Wire.Binfeat in
            classify_result s
              (Sclient.roundtrip ~timeout_s:20.0 ~sock
                 (Wire.request ~image:bytes kind))
      done;
      (* liveness: after everything above, the daemon must still answer *)
      (match Sclient.roundtrip ~timeout_s:5.0 ~sock (Wire.request Wire.Ping) with
      | Ok { Wire.rp_status = Wire.Ok_clean; rp_body = "pong"; _ } -> ()
      | Ok r ->
        fail seeds ("final ping answered " ^ Wire.status_name r.Wire.rp_status)
      | Error e ->
        fail seeds ("final ping failed: " ^ Sclient.error_to_string e));
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
      |> List.sort compare
      |> List.iter (fun (k, v) -> Printf.printf "%-20s %d\n" k v);
      List.iter
        (fun (seed, msg) -> Printf.printf "VIOLATION seed=%d: %s\n" seed msg)
        (List.rev !failures);
      Printf.printf
        "%d serve requests: %d contract violations (service faults drawn: %d)\n"
        seeds
        (List.length !failures)
        (Fault.service_injected_count ());
      if !failures = [] then 0 else 3)

let run_file ~threads ~deadline ~obs path =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let config = { Config.default with Config.deadline_s = deadline } in
  match classify ~pool ~config ~obs (read_file path) with
  | Clean ->
    Printf.printf "%s: clean\n" path;
    0
  | Degraded ->
    Printf.printf "%s: degraded (partial CFG, see marks)\n" path;
    1
  | Malformed e ->
    Printf.printf "%s: malformed: %s\n" path e;
    2
  | Crash e ->
    Printf.eprintf "%s: internal error: %s\n" path e;
    3

let run file smoke serve seeds seed threads deadline trace_out metrics =
  let obs = make_obs ~trace_out ~metrics in
  finish_obs obs ~trace_out
  @@
  match file with
  | Some path -> run_file ~threads ~deadline ~obs path
  | None when serve ->
    let seeds = if smoke then 120 else seeds in
    run_serve ~seeds ~base_seed:seed ~obs
  | None ->
    let seeds = if smoke then 200 else seeds in
    run_corpus ~threads ~seeds ~base_seed:seed ~deadline ~obs

let file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Classify one binary instead of fuzzing")

let smoke =
  Arg.(
    value & flag
    & info [ "smoke" ] ~doc:"Quick fixed-seed run (200 mutants), for CI")

let serve =
  Arg.(
    value & flag
    & info [ "serve" ]
        ~doc:
          "Fuzz the bserve daemon instead of the parser: an in-process \
           daemon takes mutated images, garbled frames, raw garbage and \
           stalled clients under injected service faults; every request \
           must end in a structured reply, the daemon must never crash or \
           hang, and clean parse replies must match a local one-shot parse")

let seeds =
  Arg.(value & opt int 1000 & info [ "seeds" ] ~doc:"Number of mutants")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed")

let threads =
  Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")

let deadline =
  Arg.(
    value & opt float 2.0
    & info [ "deadline" ] ~doc:"Per-mutant work-unit deadline in seconds")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record execution spans across every mutant parse and write them \
           to $(docv) as Chrome trace-event JSON")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Merge every mutant's metrics registry and print the aggregate at \
           the end")

let cmd =
  Cmd.v
    (Cmd.info "bfuzz" ~doc:"Mutation-fuzz the binary parser")
    Term.(
      const run $ file $ smoke $ serve $ seeds $ seed $ threads $ deadline
      $ trace_out $ metrics)

let () = exit (Cmd.eval' cmd)
