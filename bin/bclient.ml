(* bclient: one-shot driver for the bserve daemon.

   Sends a single request (or --repeat N of them) and maps the reply
   status onto the bparse exit-code family:

     0  Ok_clean      full-fidelity result
     1  Ok_degraded   budget/deadline-degraded result (body still valid)
     2  Rejected / Bad_frame    the request itself was unserviceable
     3  Failed        worker crashed on every allowed attempt
     4  Overloaded / Expired / Draining   transient service condition
     5  transport error (daemon down, timeout, torn reply)

   With --repeat the worst exit code across the batch is returned. *)

open Cmdliner
module Wire = Pbca_serve.Wire
module Sclient = Pbca_serve.Sclient

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let exit_of_status = function
  | Wire.Ok_clean -> 0
  | Wire.Ok_degraded -> 1
  | Wire.Rejected | Wire.Bad_frame -> 2
  | Wire.Failed -> 3
  | Wire.Overloaded | Wire.Expired | Wire.Draining -> 4

let print_reply ~quiet (r : Wire.reply) =
  Printf.printf "status=%s%s%s wait=%dus run=%dus%s\n"
    (Wire.status_name r.Wire.rp_status)
    (if r.Wire.rp_cache_hit then " cache=hit" else "")
    (if r.Wire.rp_retries > 0 then
       Printf.sprintf " retries=%d" r.Wire.rp_retries
     else "")
    r.Wire.rp_wait_us r.Wire.rp_run_us
    (if r.Wire.rp_msg = "" then "" else ": " ^ r.Wire.rp_msg);
  if (not quiet) && r.Wire.rp_body <> "" then print_endline r.Wire.rp_body

let run sock kind file deadline_ms no_cache timeout repeat quiet =
  match Wire.kind_of_name kind with
  | None ->
    Printf.eprintf "bclient: unknown kind %s\n" kind;
    2
  | Some k ->
    let image =
      match (k, file) with
      | (Wire.Parse | Wire.Hpcstruct | Wire.Binfeat), None ->
        Printf.eprintf "bclient: kind %s needs an image FILE\n" kind;
        exit 2
      | _, Some path -> read_file path
      | _, None -> Bytes.create 0
    in
    let req = Wire.request ~deadline_ms ~no_cache ~image k in
    let worst = ref 0 in
    for i = 1 to repeat do
      let code =
        match Sclient.roundtrip ~timeout_s:timeout ~sock req with
        | Ok r ->
          print_reply ~quiet r;
          exit_of_status r.Wire.rp_status
        | Error e ->
          Printf.eprintf "bclient: %s\n" (Sclient.error_to_string e);
          5
      in
      if i < repeat then ignore (Unix.sleepf 0.0);
      worst := max !worst code
    done;
    !worst

let sock =
  Arg.(
    value
    & opt string "/tmp/bserve.sock"
    & info [ "sock" ] ~docv:"PATH" ~doc:"Daemon socket path")

let kind =
  Arg.(
    value & opt string "parse"
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Request kind: parse, hpcstruct, binfeat, ping, stats, shutdown")

let file =
  Arg.(
    value
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"SBF image to analyze")

let deadline_ms =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~doc:"Per-request deadline; 0 = server default")

let no_cache =
  Arg.(
    value & flag
    & info [ "no-cache" ] ~doc:"Bypass the daemon's result cache")

let timeout =
  Arg.(
    value & opt float 30.0
    & info [ "timeout" ] ~doc:"Seconds to wait for the reply")

let repeat =
  Arg.(
    value & opt int 1
    & info [ "repeat" ] ~doc:"Send the request N times (worst exit code wins)")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the reply body")

let cmd =
  Cmd.v
    (Cmd.info "bclient" ~doc:"Client for the bserve daemon")
    Term.(
      const run $ sock $ kind $ file $ deadline_ms $ no_cache $ timeout
      $ repeat $ quiet)

let () = exit (Cmd.eval' cmd)
