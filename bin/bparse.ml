(* Parse an SBF binary and report its CFG. *)

open Cmdliner

let run_parsed path threads dump_funcs serial diff_with image =
  let t0 = Unix.gettimeofday () in
  let g =
    if serial then Pbca_core.Serial.parse_and_finalize image
    else
      let pool = Pbca_concurrent.Task_pool.create ~threads in
      Pbca_core.Parallel.parse_and_finalize ~pool image
  in
  let dt = Unix.gettimeofday () -. t0 in
  Format.printf "%s: %a@." path Pbca_core.Summary.pp_stats g;
  Format.printf "parsed in %.3fs (%s, %d threads)@." dt
    (if serial then "serial" else "parallel")
    (if serial then 1 else threads);
  (match diff_with with
  | Some old_path ->
    let old_image = Pbca_binfmt.Image.load old_path in
    let old_g = Pbca_core.Serial.parse_and_finalize old_image in
    Format.printf "diff vs %s:@ %a@." old_path Pbca_core.Cfg_diff.pp
      (Pbca_core.Cfg_diff.diff old_g g)
  | None -> ());
  if dump_funcs then
    List.iter
      (fun (f : Pbca_core.Cfg.func) ->
        let ranges = Pbca_core.Summary.func_ranges g f in
        Format.printf "  %s @0x%x %s blocks=%d ranges=%s@." f.f_name
          f.f_entry_addr
          (match Atomic.get f.f_ret with
          | Pbca_core.Cfg.Returns -> "ret"
          | Pbca_core.Cfg.Noreturn -> "noret"
          | Pbca_core.Cfg.Unset -> "unset")
          (List.length f.f_blocks)
          (String.concat ","
             (List.map (fun (a, b) -> Printf.sprintf "[0x%x,0x%x)" a b) ranges)))
      (Pbca_core.Cfg.funcs_list g);
  if
    Pbca_core.Cfg.degraded_count g > 0
    || Pbca_core.Cfg.task_failure_count g > 0
  then 1
  else 0

(* Exit codes: 0 clean parse, 1 degraded (budgets hit or tasks contained:
   the CFG is a partial over-approximation), 2 malformed input, 3 internal
   bug. Malformed input is the binary's fault; exit 3 is ours. *)
let run path threads dump_funcs serial diff_with =
  match
    try Ok (Pbca_binfmt.Image.load path)
    with Pbca_binfmt.Parse_error.Error e -> Error e
  with
  | Error e ->
    Format.eprintf "%s: malformed: %s@." path
      (Pbca_binfmt.Parse_error.to_string e);
    2
  | Ok image -> (
    try run_parsed path threads dump_funcs serial diff_with image
    with e ->
      Format.eprintf "%s: internal error: %s@." path (Printexc.to_string e);
      3)

let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")
let dump = Arg.(value & flag & info [ "funcs" ] ~doc:"Dump per-function details")
let serial = Arg.(value & flag & info [ "serial" ] ~doc:"Use the serial parser")

let diff_with =
  Arg.(
    value
    & opt (some file) None
    & info [ "diff" ] ~doc:"Diff against an older build of the same binary")

let cmd =
  Cmd.v
    (Cmd.info "bparse" ~doc:"Construct and summarize a binary's CFG")
    Term.(const run $ path $ threads $ dump $ serial $ diff_with)

let () = exit (Cmd.eval' cmd)
