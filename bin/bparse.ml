(* Parse SBF binaries and report their CFGs.

   Durability: [--checkpoint CP] journals every construction op to
   CP.journal and snapshots the graph to CP at quiescent rounds;
   [--resume] seeds the parse from those artifacts instead of starting
   over; [--batch] runs every FILE as a supervised job, restarting it
   (resuming from its artifacts) when a crash kills the analysis;
   [--fault-crash N] arms a simulated kill at task ordinal N, for
   exercising the recovery path end to end.

   Discovery: [--gap] turns on gap parsing — after the symbol-seeded
   parse, unclaimed .text gaps are scanned for entry candidates
   (prologue, call-target and alignment heuristics), which then flow
   through the normal parallel traversal tagged [From_heuristic].

   Exit codes: 0 clean, 1 degraded (budgets hit, tasks contained, or any
   function resting on heuristic evidence under --gap: the CFG is a
   partial or best-effort over-approximation), 2 malformed input —
   including a corrupt checkpoint under --resume — and 3 internal error
   or unrecovered crash. Malformed input is the binary's fault; exit 3
   is ours. In batch mode the process exit is the worst per-file code. *)

open Cmdliner
module Cfg = Pbca_core.Cfg
module Parallel = Pbca_core.Parallel
module Recover = Pbca_core.Recover
module Parse_error = Pbca_binfmt.Parse_error
module Fault = Pbca_concurrent.Fault
module Supervisor = Pbca_concurrent.Supervisor
module Otrace = Pbca_obs.Trace
module Clock = Pbca_obs.Clock

type opts = {
  threads : int;
  dump_funcs : bool;
  serial : bool;
  diff_with : string option;
  metrics : bool;
  gap : bool;
}

type artifacts = { a_cp : string; a_journal : string }

(* One artifact pair per file: the base path as-is for a single file,
   suffixed with the positional index otherwise. *)
let artifacts base ~idx ~nfiles =
  let cp = if nfiles <= 1 then base else Printf.sprintf "%s.%d" base idx in
  { a_cp = cp; a_journal = cp ^ ".journal" }

let persist_of arts =
  Option.map
    (fun a ->
      { Parallel.p_journal = a.a_journal; p_checkpoint = a.a_cp; p_every = 1 })
    arts

let load_plan arts =
  Recover.load
    { Recover.src_checkpoint = Some arts.a_cp; src_journal = Some arts.a_journal }

(* summed measured parse wall across files: the denominator of the
   trace-coverage figure printed with --trace *)
let parse_wall_total = ref 0.0

let report_cfg ~opts ~dt path g =
  parse_wall_total := !parse_wall_total +. dt;
  Format.printf "%s: %a@." path Pbca_core.Summary.pp_stats g;
  Format.printf "parsed in %.3fs (%s, %d threads)@." dt
    (if opts.serial then "serial" else "parallel")
    (if opts.serial then 1 else opts.threads);
  if opts.metrics then
    Format.printf "metrics:@.%a@." Pbca_obs.Metrics.pp g.Cfg.metrics;
  (match opts.diff_with with
  | Some old_path ->
    let old_image = Pbca_binfmt.Image.load old_path in
    let old_g = Pbca_core.Serial.parse_and_finalize old_image in
    Format.printf "diff vs %s:@ %a@." old_path Pbca_core.Cfg_diff.pp
      (Pbca_core.Cfg_diff.diff old_g g)
  | None -> ());
  if opts.dump_funcs then
    List.iter
      (fun (f : Cfg.func) ->
        let ranges = Pbca_core.Summary.func_ranges g f in
        Format.printf "  %s @0x%x %s blocks=%d ranges=%s@." f.f_name
          f.f_entry_addr
          (match Atomic.get f.f_ret with
          | Cfg.Returns -> "ret"
          | Cfg.Noreturn -> "noret"
          | Cfg.Unset -> "unset")
          (List.length f.f_blocks)
          (String.concat ","
             (List.map (fun (a, b) -> Printf.sprintf "[0x%x,0x%x)" a b) ranges)))
      (Cfg.funcs_list g)

(* [resume_mode]: [`Strict] surfaces a damaged checkpoint as Rejected
   (the operator asked to resume; lying about it would hide corruption),
   [`Best_effort] falls back to a fresh parse (a supervised restart must
   make progress even when the crash mangled the artifacts). *)
let run_one ~pool ~opts ~otrace ~persist ~resume_mode ~attempt path :
    Supervisor.outcome =
  match
    try Ok (Pbca_binfmt.Image.load path) with Parse_error.Error e -> Error e
  with
  | Error e ->
    let msg = Parse_error.to_string e in
    Format.eprintf "%s: malformed: %s@." path msg;
    Supervisor.Rejected msg
  | Ok image -> (
    let resume =
      match resume_mode with
      | `No -> Ok None
      | `Strict arts -> (
        match load_plan arts with
        | Ok p -> Ok (Some p)
        | Error e -> Error e)
      | `Best_effort arts -> (
        match load_plan arts with
        | Ok p -> Ok (Some p)
        | Error e ->
          Format.eprintf "%s: artifacts unusable (%s), restarting fresh@." path
            (Parse_error.to_string e);
          Ok None)
    in
    match resume with
    | Error e ->
      let msg = Parse_error.to_string e in
      Format.eprintf "%s: checkpoint rejected: %s@." path msg;
      Supervisor.Rejected msg
    | Ok resume -> (
      let t0 = Clock.now () in
      (* crashed attempts still ran (and traced) for this long, so they
         count toward the span-coverage denominator too *)
      let count_wall () =
        parse_wall_total := !parse_wall_total +. Clock.elapsed t0
      in
      try
        let config =
          if opts.gap then
            Some { Pbca_core.Config.default with gap_parse = true }
          else None
        in
        let g =
          if opts.serial then Pbca_core.Serial.parse_and_finalize ?config image
          else
            Parallel.parse_and_finalize ?config ~otrace ?persist ?resume ~pool
              image
        in
        Atomic.set g.Cfg.stats.Cfg.supervisor_restarts attempt;
        report_cfg ~opts ~dt:(Clock.elapsed t0) path g;
        let _, _, heuristic_funcs = Cfg.conf_counts g in
        if
          Cfg.degraded_count g > 0
          || Cfg.task_failure_count g > 0
          || heuristic_funcs > 0
        then Supervisor.Ok_degraded
        else Supervisor.Ok_clean
      with
      | Fault.Crashed k ->
        count_wall ();
        Format.eprintf "%s: crashed (simulated kill at task %d)@." path k;
        Supervisor.Crashed (Printf.sprintf "simulated kill at task %d" k)
      | e ->
        count_wall ();
        Format.eprintf "%s: internal error: %s@." path (Printexc.to_string e);
        Supervisor.Crashed (Printexc.to_string e)))

let outcome_str = function
  | Supervisor.Ok_clean -> "clean"
  | Supervisor.Ok_degraded -> "degraded"
  | Supervisor.Rejected m -> "rejected: " ^ m
  | Supervisor.Crashed m -> "crashed: " ^ m

let main files opts checkpoint resume batch fault_crash trace_out =
  let pool = Pbca_concurrent.Task_pool.create ~threads:opts.threads in
  let otrace =
    match trace_out with
    | Some _ -> Otrace.create ()
    | None -> Otrace.disabled
  in
  let nfiles = List.length files in
  let arts_for i = Option.map (fun b -> artifacts b ~idx:i ~nfiles) checkpoint in
  let finish code =
    (match trace_out with
    | None -> ()
    | Some path ->
      Otrace.write_chrome otrace path;
      let wall = !parse_wall_total in
      let cov = Otrace.covered_wall otrace in
      Format.printf "trace: %s (%d spans, %.1f%% of %.3fs parse wall)@." path
        (List.length (Otrace.spans otrace))
        (if wall > 0.0 then 100.0 *. cov /. wall else 0.0)
        wall);
    code
  in
  finish
  @@
  if batch then begin
    let jobs =
      List.mapi
        (fun i path ->
          let arts = arts_for i in
          {
            Supervisor.j_id = path;
            j_run =
              (fun ~attempt ->
                (* the simulated kill hits the first attempt only: the
                   supervised restart must then recover *)
                if attempt = 0 && fault_crash >= 0 then
                  Fault.arm_at [ fault_crash ] Fault.Crash
                else Fault.disarm ();
                Fun.protect
                  ~finally:(fun () -> if fault_crash >= 0 then Fault.disarm ())
                  (fun () ->
                    let resume_mode =
                      match arts with
                      | Some a when attempt > 0 || resume -> `Best_effort a
                      | _ -> `No
                    in
                    run_one ~pool ~opts ~otrace ~persist:(persist_of arts)
                      ~resume_mode ~attempt path));
          })
        files
    in
    let reports = Supervisor.run ~trace:otrace jobs in
    List.iter
      (fun (r : Supervisor.report) ->
        Printf.printf "%s: %s (%d restart%s)\n" r.r_id (outcome_str r.r_outcome)
          r.r_restarts
          (if r.r_restarts = 1 then "" else "s"))
      reports;
    Supervisor.worst_exit reports
  end
  else
    List.mapi
      (fun i path ->
        let arts = arts_for i in
        if fault_crash >= 0 then Fault.arm_at [ fault_crash ] Fault.Crash;
        Fun.protect
          ~finally:(fun () -> if fault_crash >= 0 then Fault.disarm ())
          (fun () ->
            let resume_mode =
              match arts with Some a when resume -> `Strict a | _ -> `No
            in
            Supervisor.exit_code
              (run_one ~pool ~opts ~otrace ~persist:(persist_of arts)
                 ~resume_mode ~attempt:0 path)))
      files
    |> List.fold_left max 0

let run files threads dump serial diff_with checkpoint resume batch fault_crash
    trace_out metrics gap =
  if files = [] then `Error (true, "at least one BINARY is required")
  else if serial && (checkpoint <> None || resume || batch || fault_crash >= 0)
  then
    `Error
      ( true,
        "--serial cannot be combined with --checkpoint, --resume, --batch or \
         --fault-crash" )
  else if serial && trace_out <> None then
    `Error (true, "--trace requires the parallel parser")
  else if resume && checkpoint = None then
    `Error (true, "--resume requires --checkpoint")
  else if fault_crash >= 0 && checkpoint = None then
    `Error (true, "--fault-crash requires --checkpoint")
  else
    let opts = { threads; dump_funcs = dump; serial; diff_with; metrics; gap } in
    `Ok (main files opts checkpoint resume batch fault_crash trace_out)

let files = Arg.(value & pos_all file [] & info [] ~docv:"BINARY")

let threads =
  Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")

let dump = Arg.(value & flag & info [ "funcs" ] ~doc:"Dump per-function details")
let serial = Arg.(value & flag & info [ "serial" ] ~doc:"Use the serial parser")

let diff_with =
  Arg.(
    value
    & opt (some file) None
    & info [ "diff" ] ~doc:"Diff against an older build of the same binary")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"CP"
        ~doc:
          "Write crash-recovery artifacts: a CFG snapshot at $(docv) and an \
           operation journal at $(docv).journal (with several BINARY \
           arguments, $(docv).$(i,IDX) per file)")

let resume =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Seed the parse from the --checkpoint artifacts instead of starting \
           over; a damaged checkpoint is a malformed-input error (exit 2)")

let batch =
  Arg.(
    value & flag
    & info [ "batch" ]
        ~doc:
          "Supervise each BINARY as a restartable job: a crashed analysis is \
           retried with exponential backoff, resuming from its artifacts; the \
           process exits with the worst per-file code")

let fault_crash =
  Arg.(
    value & opt int (-1)
    & info [ "fault-crash" ] ~docv:"N"
        ~doc:
          "Simulate a kill at task ordinal $(docv): the parse aborts before \
           its next journal commit, leaving artifacts as a real crash would")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-domain execution spans and write them to $(docv) as \
           Chrome trace-event JSON (open in chrome://tracing or Perfetto); \
           also prints a per-phase wall breakdown in the summary")

let metrics =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the run's full metrics registry after each summary")

let gap =
  Arg.(
    value & flag
    & info [ "gap" ]
        ~doc:
          "Scan unclaimed .text gaps for function entries after the \
           symbol-seeded parse (stripped binaries); discovered functions are \
           confidence-tagged and their presence makes the run degraded \
           (exit 1)")

let cmd =
  Cmd.v
    (Cmd.info "bparse" ~doc:"Construct and summarize a binary's CFG")
    Term.(
      ret
        (const run $ files $ threads $ dump $ serial $ diff_with $ checkpoint
       $ resume $ batch $ fault_crash $ trace_out $ metrics $ gap))

let () = exit (Cmd.eval' cmd)
