(* bserve: resident analysis-as-a-service daemon.

   Accepts parse / hpcstruct / binfeat requests over a unix-domain socket
   (the CRC-framed Wire protocol) and answers every one — including
   overload, expiry, garbage frames and worker crashes — with a
   structured reply. See lib/serve for the service contracts.

   Exit codes: 0 clean shutdown (signal, wire Shutdown request, or
   --max-seconds), 1 startup failure (bad socket path, bind error). *)

open Cmdliner
module Serve = Pbca_serve.Serve
module Config = Pbca_core.Config
module Otrace = Pbca_obs.Trace
module Metrics = Pbca_obs.Metrics

let run sock workers acceptors queue cache retries default_deadline_ms
    read_timeout max_image_kb max_seconds analysis_deadline trace_out
    print_metrics =
  let stop_flag = Atomic.make false in
  let on_signal _ = Atomic.set stop_flag true in
  List.iter
    (fun s -> try Sys.set_signal s (Sys.Signal_handle on_signal)
      with Invalid_argument _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  let otrace =
    match trace_out with Some _ -> Otrace.create () | None -> Otrace.disabled
  in
  let cfg =
    { (Serve.default_config ~sock) with
      Serve.sc_workers = workers;
      sc_acceptors = acceptors;
      sc_queue = queue;
      sc_cache_dir = cache;
      sc_retries = retries;
      sc_default_deadline_ms = default_deadline_ms;
      sc_read_timeout_s = read_timeout;
      sc_max_image_bytes = max_image_kb * 1024;
      sc_analysis =
        { Config.default with Config.deadline_s = analysis_deadline };
    }
  in
  match Serve.start ~otrace cfg with
  | exception Unix.Unix_error (e, fn, arg) ->
    Printf.eprintf "bserve: cannot start on %s: %s (%s %s)\n" sock
      (Unix.error_message e) fn arg;
    1
  | t ->
    Printf.printf "bserve: listening on %s (%d workers, queue %d%s)\n%!" sock
      workers queue
      (match cache with Some d -> ", cache " ^ d | None -> "");
    let t0 = Unix.gettimeofday () in
    let rec wait () =
      if
        Atomic.get stop_flag
        || Serve.shutdown_requested t
        || (max_seconds > 0.0 && Unix.gettimeofday () -. t0 >= max_seconds)
      then ()
      else begin
        Unix.sleepf 0.1;
        wait ()
      end
    in
    wait ();
    Printf.printf "bserve: draining\n%!";
    Serve.stop t;
    if print_metrics then
      Format.printf "%a@." Metrics.pp (Serve.metrics t);
    (match trace_out with
    | Some path ->
      Otrace.write_chrome otrace path;
      Printf.printf "trace: %s\n" path
    | None -> ());
    Printf.printf "bserve: stopped\n%!";
    0

let sock =
  Arg.(
    value
    & opt string "/tmp/bserve.sock"
    & info [ "sock" ] ~docv:"PATH" ~doc:"Unix-domain socket path")

let workers =
  Arg.(value & opt int 2 & info [ "workers" ] ~doc:"Worker domains")

let acceptors =
  Arg.(value & opt int 2 & info [ "acceptors" ] ~doc:"Acceptor domains")

let queue =
  Arg.(
    value & opt int 16
    & info [ "queue" ]
        ~doc:"Admission queue bound; a full queue sheds load (Overloaded)")

let cache =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed result cache directory (parse checkpoints \
           replayed on hit); omitted = no cache")

let retries =
  Arg.(
    value & opt int 2
    & info [ "retries" ]
        ~doc:"Supervisor restart budget per request before Failed")

let default_deadline_ms =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ]
        ~doc:"Default per-request deadline for requests that carry none; 0 = none")

let read_timeout =
  Arg.(
    value & opt float 2.0
    & info [ "read-timeout" ]
        ~doc:"Seconds before a stalled client is evicted")

let max_image_kb =
  Arg.(
    value & opt int 8192
    & info [ "max-image-kb" ] ~doc:"Reject images larger than this")

let max_seconds =
  Arg.(
    value & opt float 0.0
    & info [ "max-seconds" ]
        ~doc:"Auto-drain after this many seconds; 0 = run until signalled")

let analysis_deadline =
  Arg.(
    value & opt float 0.0
    & info [ "analysis-deadline" ]
        ~doc:"Base per-parse analysis deadline (seconds); 0 = none")

let trace_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write Chrome trace-event JSON of all service spans at drain")

let print_metrics =
  Arg.(
    value & flag
    & info [ "metrics" ] ~doc:"Print the metrics registry at drain")

let cmd =
  Cmd.v
    (Cmd.info "bserve" ~doc:"Analysis-as-a-service daemon")
    Term.(
      const run $ sock $ workers $ acceptors $ queue $ cache $ retries
      $ default_deadline_ms $ read_timeout $ max_image_kb $ max_seconds
      $ analysis_deadline $ trace_out $ print_metrics)

let () = exit (Cmd.eval' cmd)
