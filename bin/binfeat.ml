(* Feature-extraction CLI (the BinFeat case study). *)

open Cmdliner

let run dir threads top simulate stream =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sbf")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)
  in
  if files = [] then Printf.eprintf "no .sbf files in %s\n" dir
  else begin
    let images = List.map Pbca_binfmt.Image.load files in
    let pool = Pbca_concurrent.Task_pool.create ~threads in
    let r =
      if stream then Pbca_binfeat.Binfeat.extract_streamed ~pool images
      else Pbca_binfeat.Binfeat.extract ~pool images
    in
    Printf.printf "%d binaries, %d functions, %d distinct features\n"
      r.n_binaries r.n_funcs r.n_features;
    List.iter
      (fun (s : Pbca_binfeat.Binfeat.stage) ->
        Printf.printf "%-4s %8.4fs work=%d" s.st_name s.st_wall s.st_work;
        if simulate then
          Printf.printf "  sim-speedup@16=%.2f @64=%.2f"
            (Pbca_simsched.Replay.speedup ~threads:16 s.st_trace)
            (Pbca_simsched.Replay.speedup ~threads:64 s.st_trace);
        print_newline ())
      r.stages;
    List.iter
      (fun (f, c) -> Printf.printf "  %-24s %d\n" f c)
      (Pbca_binfeat.Binfeat.top_features r top)
  end

let dir = Arg.(required & pos 0 (some dir) None & info [] ~docv:"CORPUS_DIR")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")
let top = Arg.(value & opt int 10 & info [ "top" ] ~doc:"Show the N most frequent features")

let simulate =
  Arg.(value & flag & info [ "simulate" ] ~doc:"Replay traces at 16/64 threads")

let stream =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Streaming pipeline: extract features per function as the CFG \
           finalizer publishes it, instead of stage barriers (the index \
           is identical)")

let cmd =
  Cmd.v
    (Cmd.info "binfeat" ~doc:"Extract forensic features from a corpus")
    Term.(const run $ dir $ threads $ top $ simulate $ stream)

let () = exit (Cmd.eval cmd)
