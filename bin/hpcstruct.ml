(* Program-structure recovery CLI (the hpcstruct case study). *)

open Cmdliner

let run path threads out simulate stream =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let bytes = Bytes.create n in
  really_input ic bytes 0 n;
  close_in ic;
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let r =
    if stream then Pbca_hpcstruct.Hpcstruct.run_streamed ~pool bytes
    else Pbca_hpcstruct.Hpcstruct.run ~pool bytes
  in
  Printf.printf "%-9s %10s %10s" "phase" "wall(s)" "work";
  if simulate then Printf.printf "  %s" "sim-speedup@{1,16,64}";
  print_newline ();
  List.iter
    (fun (p : Pbca_hpcstruct.Hpcstruct.phase) ->
      Printf.printf "%-9s %10.4f %10d" p.ph_name p.ph_wall p.ph_work;
      (match (simulate, p.ph_trace) with
      | true, Some tr ->
        Printf.printf "  %.2f / %.2f / %.2f"
          (Pbca_simsched.Replay.speedup ~threads:1 tr)
          (Pbca_simsched.Replay.speedup ~threads:16 tr)
          (Pbca_simsched.Replay.speedup ~threads:64 tr)
      | _ -> ());
      print_newline ())
    r.phases;
  Printf.printf "total %.4fs: %d functions, %d loops, %d statements\n"
    (Pbca_hpcstruct.Hpcstruct.total_wall r)
    r.n_funcs r.n_loops r.n_stmts;
  (if stream then
     let s = r.cfg.Pbca_core.Cfg.stats in
     Printf.printf
       "stream: published=%d channel_hwm=%d consumer_idle_ms=%.2f \
        producer_block_ms=%.2f\n"
       (Atomic.get s.Pbca_core.Cfg.stream_published)
       (Atomic.get s.Pbca_core.Cfg.stream_hwm)
       (float_of_int (Atomic.get s.Pbca_core.Cfg.stream_consumer_idle_us)
       /. 1e3)
       (float_of_int (Atomic.get s.Pbca_core.Cfg.stream_producer_block_us)
       /. 1e3));
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc r.output;
    close_out oc;
    Printf.printf "wrote %s (%d bytes)\n" path (String.length r.output)
  | None -> ()

let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")

let out =
  Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Write structure file")

let simulate =
  Arg.(value & flag & info [ "simulate" ] ~doc:"Replay traces at 1/16/64 threads")

let stream =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Streaming pipeline: overlap debug-info parsing, CFG \
           construction and skeleton fill instead of running them as \
           barrier-separated phases (output is byte-identical)")

let cmd =
  Cmd.v
    (Cmd.info "hpcstruct" ~doc:"Recover program structure from a binary")
    Term.(const run $ path $ threads $ out $ simulate $ stream)

let () = exit (Cmd.eval cmd)
