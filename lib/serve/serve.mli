(** bserve: a fault-tolerant analysis-as-a-service daemon (PR8).

    A resident process accepting parse / hpcstruct / binfeat requests over
    a unix-domain socket in the {!Wire} protocol. Designed around three
    contracts:

    - {b Admission control and load shedding}: work enters a bounded
      {!Pbca_concurrent.Channel}; when it is full the request is answered
      [Overloaded] {e immediately} — queueing latency is never silently
      inflicted, and nothing is silently dropped.
    - {b Isolation}: each request runs under
      {!Pbca_concurrent.Supervisor} with a bounded restart budget and
      interruptible backoff; a worker crash costs that request (a
      structured [Failed] reply after the retries), never the daemon.
    - {b Deadlines end-to-end}: a request carries a deadline; expiry in
      the queue yields [Expired], expiry during service degrades the
      analysis through the PR3 {!Pbca_core.Config} deadline budget and
      returns [Ok_degraded] with a well-formed body.

    Parse results are cached content-addressed ({!Cache}): a hit replays
    the PR4 checkpoint + journal through {!Pbca_core.Recover} instead of
    re-discovering the CFG; corrupt artifacts are a miss, never an error.

    Topology on the inside: [sc_acceptors] domains select/accept and do
    admission; [sc_workers] domains drain the queue, each with its own
    {!Pbca_concurrent.Task_pool} of [sc_parse_threads] threads.

    Service-layer fault injection ({!Pbca_concurrent.Fault.service}) is
    consulted once per admitted request: worker kills, torn replies,
    stalls and cache rot all exercise the structured failure paths. *)

type config = {
  sc_sock : string;  (** unix-domain socket path (note the 108-byte cap) *)
  sc_acceptors : int;
  sc_workers : int;
  sc_queue : int;  (** admission queue bound — the shedding threshold *)
  sc_cache_dir : string option;  (** [None] disables the result cache *)
  sc_max_image_bytes : int;  (** larger images are [Rejected] *)
  sc_read_timeout_s : float;  (** stalled-client eviction timeout *)
  sc_retries : int;  (** supervisor restart budget per request *)
  sc_backoff_base_s : float;
  sc_parse_threads : int;
  sc_default_deadline_ms : int;  (** for requests that carry none; 0 = none *)
  sc_analysis : Pbca_core.Config.t;  (** PR3 budget/deadline base config *)
  sc_rot_seed : int;  (** rng seed for injected cache rot *)
}

val default_config : sock:string -> config

type t

val start : ?otrace:Pbca_obs.Trace.t -> config -> t
(** Bind, listen, spawn acceptor and worker domains, return immediately.
    Ignores SIGPIPE process-wide (a dead peer must surface as a write
    error, not a signal). *)

val stop : t -> unit
(** Graceful drain: stop admitting (late arrivals get a [Draining]
    reply), join acceptors, close the socket, close the queue, and let
    workers finish {e every} already-admitted request — zero in-flight
    requests are lost. Idempotent. *)

val with_server : ?otrace:Pbca_obs.Trace.t -> config -> (t -> 'a) -> 'a
(** [start] / run / [stop], stopping on exception too. *)

val metrics : t -> Pbca_obs.Metrics.t
(** Live registry: [serve_accepted], [serve_shed], [serve_expired],
    [serve_bad_frames], [serve_retries], [serve_worker_crashes],
    [serve_cache_hits]/[serve_cache_misses], [serve_stalled_clients],
    [serve_torn_replies], the [serve_queue_depth] gauge and the
    wait/latency histograms (overall, cache-hit, cold). *)

val sock_path : t -> string
val draining : t -> bool

val shutdown_requested : t -> bool
(** Latched when a [Shutdown] request arrives on the wire; the owning
    process polls this and calls {!stop}. *)
