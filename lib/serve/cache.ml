module Recover = Pbca_core.Recover

(* Two tiers: the disk artifacts (durable, CRC-checked, survive restart)
   and a bounded in-memory map of already-decoded plans in front of them.
   The memory tier only ever holds plans that came from a successful disk
   load or promote, so it can never outlive the artifact's integrity
   guarantees — every mutation of the disk layer (promote, drop, rot,
   clear) invalidates it first. *)

let mem_cap = 64

type t = {
  dir : string;
  seq : int Atomic.t;  (* unique staging suffixes within one daemon *)
  mem : (string, Recover.plan) Hashtbl.t;
  mem_mu : Mutex.t;
}

let create ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { dir; seq = Atomic.make 0; mem = Hashtbl.create 16; mem_mu = Mutex.create () }

let with_mem t f =
  Mutex.lock t.mem_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mem_mu) (fun () -> f ())

let mem_find t k = with_mem t (fun () -> Hashtbl.find_opt t.mem k)

let mem_store t k plan =
  with_mem t (fun () ->
      if Hashtbl.length t.mem >= mem_cap then Hashtbl.reset t.mem;
      Hashtbl.replace t.mem k plan)

let mem_evict t k = with_mem t (fun () -> Hashtbl.remove t.mem k)

(* Content digest: two FNV-1a 64 passes with distinct offset bases, hex
   concatenated. Not cryptographic — the threat model is accidental
   collision across distinct analysis inputs, and 128 bits of mixed state
   over the full image bytes is ample for that. *)
let fnv1a64 ~basis b =
  let h = ref basis in
  for i = 0 to Bytes.length b - 1 do
    h := Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.unsafe_get b i))))
        0x100000001B3L
  done;
  !h

let key image =
  Printf.sprintf "%016Lx%016Lx"
    (fnv1a64 ~basis:0xCBF29CE484222325L image)
    (fnv1a64 ~basis:0x9AE16A3B2F90404FL image)

let checkpoint_path t k = Filename.concat t.dir (k ^ ".cp")
let journal_path t k = Filename.concat t.dir (k ^ ".journal")

type staged = { st_checkpoint : string; st_journal : string }

let stage t k =
  let n = Atomic.fetch_and_add t.seq 1 in
  let tmp ext =
    Filename.concat t.dir (Printf.sprintf ".stage-%s-%d%s" k n ext)
  in
  { st_checkpoint = tmp ".cp"; st_journal = tmp ".journal" }

let unlink_quiet p = try Unix.unlink p with Unix.Unix_error _ -> ()

(* Promotion is rename-into-place: a concurrent reader either sees the old
   complete artifact pair or the new one, never a half-written file. The
   pair is not atomic as a unit, but [lookup] treats any inconsistency as
   a miss, so the worst case is one wasted recompute. *)
let promote t k staged =
  mem_evict t k;
  try
    Unix.rename staged.st_checkpoint (checkpoint_path t k);
    Unix.rename staged.st_journal (journal_path t k);
    true
  with Unix.Unix_error _ ->
    unlink_quiet staged.st_checkpoint;
    unlink_quiet staged.st_journal;
    false

let discard staged =
  unlink_quiet staged.st_checkpoint;
  unlink_quiet staged.st_journal

let file_exists p = try (Unix.stat p).Unix.st_kind = Unix.S_REG with _ -> false

let drop t k =
  mem_evict t k;
  unlink_quiet (checkpoint_path t k);
  unlink_quiet (journal_path t k)

(* Corruption is a MISS, never an error: the artifacts are a derived
   acceleration structure, so a rotten checkpoint must cost a recompute,
   not a failed request. Recover's own trust model (checkpoint
   authoritative, journal advisory) surfaces damage as a structured
   error; we translate that to eviction + None. *)
let lookup t k =
  match mem_find t k with
  | Some plan -> Some plan
  | None ->
    let cp = checkpoint_path t k in
    if not (file_exists cp) then None
    else
      let j = journal_path t k in
      let src =
        { Recover.src_checkpoint = Some cp;
          src_journal = (if file_exists j then Some j else None) }
      in
      (match Recover.load src with
      | Ok plan ->
        mem_store t k plan;
        Some plan
      | Error _ | (exception _) ->
        drop t k;
        None)

(* Fault-injection helper: rot the cached checkpoint bytes in place the
   way Mutate.corrupt_artifact damages recovery artifacts. *)
let rot ~rng t k =
  mem_evict t k;
  let cp = checkpoint_path t k in
  if file_exists cp then begin
    let ic = open_in_bin cp in
    let n = in_channel_length ic in
    let b = Bytes.create n in
    really_input ic b 0 n;
    close_in ic;
    let rotten = Pbca_codegen.Mutate.corrupt_artifact ~rng b in
    let oc = open_out_bin cp in
    output_bytes oc rotten;
    close_out oc;
    true
  end
  else false

let clear t =
  with_mem t (fun () -> Hashtbl.reset t.mem);
  match Sys.readdir t.dir with
  | entries ->
    Array.iter
      (fun e ->
        if Filename.check_suffix e ".cp" || Filename.check_suffix e ".journal"
        then unlink_quiet (Filename.concat t.dir e))
      entries
  | exception Sys_error _ -> ()
