(** The bserve wire protocol: CRC-framed, length-prefixed messages over a
    unix-domain socket.

    One frame is [[magic "PBSF"][u32 len][u32 crc32(payload)][payload]],
    little endian, with the same CRC32 (IEEE 802.3) discipline as the
    {!Pbca_core.Journal}: a frame whose CRC does not match its payload is
    rejected as a unit, never partially decoded. Decoding is total — every
    hostile input maps to a structured {!frame_error}, never an exception
    — which is what lets the daemon answer garbage with a [Bad_frame]
    reply instead of dying.

    The pure [decode_*] functions operate on complete byte strings (unit
    tests, {!Pbca_codegen.Mutate.garble_frame} fuzzing); the [read_*] /
    [write_*] functions do blocking fd IO with an optional receive
    timeout, mapping short reads and timeouts to structured
    {!io_error}s. *)

val magic : string
val version : int

val header_bytes : int
(** Frame header size: magic + length + CRC. *)

val max_payload : int
(** Upper bound on a frame's payload length; a length field beyond it is
    rejected without allocating. *)

(** {2 Requests} *)

type req_kind = Parse | Hpcstruct | Binfeat | Ping | Stats | Shutdown

type request = {
  rq_kind : req_kind;
  rq_deadline_ms : int;  (** 0 = server default *)
  rq_no_cache : bool;  (** bypass the result cache for this request *)
  rq_image : Bytes.t;  (** serialized SBF image; empty for control kinds *)
}

val request :
  ?deadline_ms:int -> ?no_cache:bool -> ?image:Bytes.t -> req_kind -> request

val kind_name : req_kind -> string
val kind_of_name : string -> req_kind option

(** {2 Replies} *)

(** Reply status taxonomy — every way a request can end, each structured:
    - [Ok_clean]: full-fidelity result.
    - [Ok_degraded]: result produced under a budget/deadline cut (the
      safe over-approximation); body still well-formed.
    - [Rejected]: the request itself is unserviceable (bad image,
      unsupported kind) — retrying is pointless.
    - [Failed]: the worker crashed on every allowed attempt.
    - [Overloaded]: admission queue full — load was shed; retry later.
    - [Expired]: the deadline passed before or during service.
    - [Draining]: the daemon is shutting down and admits no new work.
    - [Bad_frame]: the request frame or payload failed to decode. *)
type status =
  | Ok_clean
  | Ok_degraded
  | Rejected
  | Failed
  | Overloaded
  | Expired
  | Draining
  | Bad_frame

type reply = {
  rp_status : status;
  rp_cache_hit : bool;
  rp_retries : int;  (** worker restarts consumed by this request *)
  rp_wait_us : int;  (** admission-to-start queue wait *)
  rp_run_us : int;  (** service time *)
  rp_msg : string;  (** human-readable detail (error replies) *)
  rp_body : string;  (** result payload (fingerprint line, XML, digest) *)
}

val reply :
  ?cache_hit:bool ->
  ?retries:int ->
  ?wait_us:int ->
  ?run_us:int ->
  ?msg:string ->
  ?body:string ->
  status ->
  reply

val status_code : status -> int
val status_name : status -> string
val status_of_code : int -> status option

(** {2 Pure codecs} *)

type frame_error =
  | Bad_magic
  | Bad_length of int
  | Torn of string
  | Crc_mismatch
  | Bad_payload of string

val frame_error_to_string : frame_error -> string

val frame_of_payload : Bytes.t -> Bytes.t
(** Wrap a payload in a frame header. *)

val decode_frame : Bytes.t -> (Bytes.t, frame_error) result
(** Total: any byte string maps to a payload or a structured error. *)

val encode_request : request -> Bytes.t
val encode_reply : reply -> Bytes.t
val decode_request : Bytes.t -> (request, frame_error) result
val decode_reply : Bytes.t -> (reply, frame_error) result

(** {2 Blocking fd IO} *)

type io_error =
  | Frame of frame_error
  | Stalled  (** receive timeout expired mid-frame *)
  | Peer_closed  (** clean EOF before any byte of a frame *)

val io_error_to_string : io_error -> string

val read_frame : ?timeout_s:float -> Unix.file_descr -> (Bytes.t, io_error) result
val read_request : ?timeout_s:float -> Unix.file_descr -> (request, io_error) result
val read_reply : ?timeout_s:float -> Unix.file_descr -> (reply, io_error) result

val write_frame : Unix.file_descr -> Bytes.t -> (unit, string) result
(** Write a complete frame; [Error] carries the [Unix] error message.
    SIGPIPE must be ignored by the process (the daemon does this). *)
