type error =
  | Unavailable of string
  | Timeout
  | Torn of string
  | Io of string

let error_to_string = function
  | Unavailable m -> Printf.sprintf "daemon unavailable (%s)" m
  | Timeout -> "timed out waiting for reply"
  | Torn m -> Printf.sprintf "torn/invalid reply (%s)" m
  | Io m -> Printf.sprintf "transport error (%s)" m

let connect ~sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Unavailable (Unix.error_message e))

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let read_reply_err ?timeout_s fd =
  match Wire.read_reply ?timeout_s fd with
  | Ok reply -> Ok reply
  | Error Wire.Stalled -> Error Timeout
  | Error Wire.Peer_closed -> Error (Torn "peer closed before reply")
  | Error (Wire.Frame e) -> Error (Torn (Wire.frame_error_to_string e))

let roundtrip ?(timeout_s = 30.0) ~sock req =
  match connect ~sock with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quiet fd)
      (fun () ->
        match Wire.write_frame fd (Wire.encode_request req) with
        | Error m -> Error (Io m)
        | Ok () -> read_reply_err ~timeout_s fd)

let send_raw ?(timeout_s = 30.0) ~sock frame =
  match connect ~sock with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quiet fd)
      (fun () ->
        match Wire.write_frame fd frame with
        | Error m -> Error (Io m)
        | Ok () -> read_reply_err ~timeout_s fd)

(* A deliberately misbehaving client: send only a prefix of a frame and
   then hold the connection open for [hold_s]. The daemon's read timeout
   must evict us without an acceptor staying hostage. *)
let stall ?(hold_s = 0.0) ~sock frame =
  match connect ~sock with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> close_quiet fd)
      (fun () ->
        let cut = max 1 (Bytes.length frame / 3) in
        match Wire.write_frame fd (Bytes.sub frame 0 cut) with
        | Error m -> Error (Io m)
        | Ok () ->
          if hold_s > 0.0 then Unix.sleepf hold_s;
          Ok ())

(* Open one connection per request and write every request before reading
   any reply — the overload pattern the admission queue exists for. Small
   reply frames sit in kernel socket buffers, so this cannot deadlock. *)
let burst ?(timeout_s = 60.0) ~sock reqs =
  let conns =
    List.map
      (fun req ->
        match connect ~sock with
        | Error e -> `Err e
        | Ok fd -> (
          match Wire.write_frame fd (Wire.encode_request req) with
          | Error m ->
            close_quiet fd;
            `Err (Io m)
          | Ok () -> `Fd fd))
      reqs
  in
  List.map
    (function
      | `Err e -> Error e
      | `Fd fd ->
        Fun.protect
          ~finally:(fun () -> close_quiet fd)
          (fun () -> read_reply_err ~timeout_s fd))
    conns
