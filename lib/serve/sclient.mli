(** Client side of the bserve protocol.

    Every failure mode of the transport is a structured {!error} — the
    daemon being down, a reply that never arrives, and torn or invalid
    reply frames are all distinguishable, mirroring the daemon's own
    reply-status taxonomy. *)

type error =
  | Unavailable of string  (** connect failed — daemon down or wrong path *)
  | Timeout  (** no (complete) reply within the timeout *)
  | Torn of string  (** reply frame truncated or failed to decode *)
  | Io of string  (** transport write error *)

val error_to_string : error -> string

val roundtrip :
  ?timeout_s:float -> sock:string -> Wire.request -> (Wire.reply, error) result
(** One request, one reply, on a fresh connection. *)

val send_raw :
  ?timeout_s:float -> sock:string -> Bytes.t -> (Wire.reply, error) result
(** Send arbitrary bytes as the request frame (fuzzing: garbled or
    hand-built frames) and try to read a structured reply. *)

val stall : ?hold_s:float -> sock:string -> Bytes.t -> (unit, error) result
(** Misbehave on purpose: send a prefix of [frame], hold the connection
    [hold_s] seconds, close. Exercises the daemon's stalled-client
    eviction. *)

val burst :
  ?timeout_s:float ->
  sock:string ->
  Wire.request list ->
  (Wire.reply, error) result list
(** Open one connection per request, write all requests before reading
    any reply (the overload pattern), then collect every reply. *)
