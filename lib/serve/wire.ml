module Journal = Pbca_core.Journal

let magic = "PBSF"
let version = 1
let header_bytes = 12
let max_payload = 1 lsl 24

(* ------------------------------------------------------------------ *)
(* Types.                                                              *)

type req_kind = Parse | Hpcstruct | Binfeat | Ping | Stats | Shutdown

type request = {
  rq_kind : req_kind;
  rq_deadline_ms : int;
  rq_no_cache : bool;
  rq_image : Bytes.t;
}

let request ?(deadline_ms = 0) ?(no_cache = false) ?(image = Bytes.create 0)
    kind =
  { rq_kind = kind; rq_deadline_ms = deadline_ms; rq_no_cache = no_cache;
    rq_image = image }

type status =
  | Ok_clean
  | Ok_degraded
  | Rejected
  | Failed
  | Overloaded
  | Expired
  | Draining
  | Bad_frame

type reply = {
  rp_status : status;
  rp_cache_hit : bool;
  rp_retries : int;
  rp_wait_us : int;
  rp_run_us : int;
  rp_msg : string;
  rp_body : string;
}

let reply ?(cache_hit = false) ?(retries = 0) ?(wait_us = 0) ?(run_us = 0)
    ?(msg = "") ?(body = "") status =
  { rp_status = status; rp_cache_hit = cache_hit; rp_retries = retries;
    rp_wait_us = wait_us; rp_run_us = run_us; rp_msg = msg; rp_body = body }

let kind_code = function
  | Parse -> 0
  | Hpcstruct -> 1
  | Binfeat -> 2
  | Ping -> 3
  | Stats -> 4
  | Shutdown -> 5

let kind_of_code = function
  | 0 -> Some Parse
  | 1 -> Some Hpcstruct
  | 2 -> Some Binfeat
  | 3 -> Some Ping
  | 4 -> Some Stats
  | 5 -> Some Shutdown
  | _ -> None

let kind_name = function
  | Parse -> "parse"
  | Hpcstruct -> "hpcstruct"
  | Binfeat -> "binfeat"
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let kind_of_name = function
  | "parse" -> Some Parse
  | "hpcstruct" -> Some Hpcstruct
  | "binfeat" -> Some Binfeat
  | "ping" -> Some Ping
  | "stats" -> Some Stats
  | "shutdown" -> Some Shutdown
  | _ -> None

let status_code = function
  | Ok_clean -> 0
  | Ok_degraded -> 1
  | Rejected -> 2
  | Failed -> 3
  | Overloaded -> 4
  | Expired -> 5
  | Draining -> 6
  | Bad_frame -> 7

let status_of_code = function
  | 0 -> Some Ok_clean
  | 1 -> Some Ok_degraded
  | 2 -> Some Rejected
  | 3 -> Some Failed
  | 4 -> Some Overloaded
  | 5 -> Some Expired
  | 6 -> Some Draining
  | 7 -> Some Bad_frame
  | _ -> None

let status_name = function
  | Ok_clean -> "ok"
  | Ok_degraded -> "degraded"
  | Rejected -> "rejected"
  | Failed -> "failed"
  | Overloaded -> "overloaded"
  | Expired -> "expired"
  | Draining -> "draining"
  | Bad_frame -> "bad-frame"

(* ------------------------------------------------------------------ *)
(* Framing. [magic(4)][u32 len][u32 crc32(payload)][payload], little
   endian, same CRC discipline as the journal.                         *)

type frame_error =
  | Bad_magic
  | Bad_length of int
  | Torn of string
  | Crc_mismatch
  | Bad_payload of string

let frame_error_to_string = function
  | Bad_magic -> "bad frame magic"
  | Bad_length n -> Printf.sprintf "bad frame length %d" n
  | Torn what -> Printf.sprintf "torn frame (%s)" what
  | Crc_mismatch -> "frame crc mismatch"
  | Bad_payload what -> Printf.sprintf "malformed payload (%s)" what

let frame_of_payload payload =
  let len = Bytes.length payload in
  let b = Bytes.create (header_bytes + len) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set_int32_le b 4 (Int32.of_int len);
  Bytes.set_int32_le b 8 (Int32.of_int (Journal.crc32 payload 0 len));
  Bytes.blit payload 0 b header_bytes len;
  b

(* Pure decoder over complete bytes (unit tests, garble fuzzing). *)
let decode_frame b =
  let n = Bytes.length b in
  if n < header_bytes then Error (Torn "short header")
  else if Bytes.sub_string b 0 4 <> magic then Error Bad_magic
  else
    let len = Int32.to_int (Bytes.get_int32_le b 4) in
    if len < 0 || len > max_payload then Error (Bad_length len)
    else if n < header_bytes + len then Error (Torn "short payload")
    else
      let crc = Int32.to_int (Bytes.get_int32_le b 8) land 0xFFFFFFFF in
      let payload = Bytes.sub b header_bytes len in
      if Journal.crc32 payload 0 len <> crc then Error Crc_mismatch
      else Ok payload

(* ------------------------------------------------------------------ *)
(* Payload codecs. Cursor style shared with [Journal]: any short read
   or bad field surfaces as a structured [Bad_payload].                *)

exception Short of string

let get_u8 b pos what =
  if pos + 1 > Bytes.length b then raise (Short what);
  (Bytes.get_uint8 b pos, pos + 1)

let get_u16 b pos what =
  if pos + 2 > Bytes.length b then raise (Short what);
  (Bytes.get_uint16_le b pos, pos + 2)

let get_u32 b pos what =
  if pos + 4 > Bytes.length b then raise (Short what);
  let v = Int32.to_int (Bytes.get_int32_le b pos) in
  if v < 0 then raise (Short what);
  (v, pos + 4)

let get_bytes b pos len what =
  if len < 0 || pos + len > Bytes.length b then raise (Short what);
  (Bytes.sub b pos len, pos + len)

let encode_request_payload r =
  let buf = Buffer.create (64 + Bytes.length r.rq_image) in
  Buffer.add_uint8 buf version;
  Buffer.add_uint8 buf (kind_code r.rq_kind);
  Buffer.add_int32_le buf (Int32.of_int r.rq_deadline_ms);
  Buffer.add_uint8 buf (if r.rq_no_cache then 1 else 0);
  Buffer.add_int32_le buf (Int32.of_int (Bytes.length r.rq_image));
  Buffer.add_bytes buf r.rq_image;
  Buffer.to_bytes buf

let decode_request_payload b =
  try
    let v, pos = get_u8 b 0 "version" in
    if v <> version then
      Error (Bad_payload (Printf.sprintf "unsupported version %d" v))
    else
      let kc, pos = get_u8 b pos "kind" in
      match kind_of_code kc with
      | None -> Error (Bad_payload (Printf.sprintf "unknown request kind %d" kc))
      | Some kind ->
        let deadline_ms, pos = get_u32 b pos "deadline" in
        let flags, pos = get_u8 b pos "flags" in
        let ilen, pos = get_u32 b pos "image length" in
        let image, pos = get_bytes b pos ilen "image bytes" in
        if pos <> Bytes.length b then Error (Bad_payload "trailing bytes")
        else
          Ok
            {
              rq_kind = kind;
              rq_deadline_ms = deadline_ms;
              rq_no_cache = flags land 1 <> 0;
              rq_image = image;
            }
  with Short what -> Error (Bad_payload what)

let encode_reply_payload r =
  let buf = Buffer.create (64 + String.length r.rp_body) in
  Buffer.add_uint8 buf version;
  Buffer.add_uint8 buf (status_code r.rp_status);
  Buffer.add_uint8 buf (if r.rp_cache_hit then 1 else 0);
  Buffer.add_uint8 buf (min r.rp_retries 0xff);
  Buffer.add_int32_le buf (Int32.of_int r.rp_wait_us);
  Buffer.add_int32_le buf (Int32.of_int r.rp_run_us);
  let msg =
    if String.length r.rp_msg > 0xffff then String.sub r.rp_msg 0 0xffff
    else r.rp_msg
  in
  Buffer.add_uint16_le buf (String.length msg);
  Buffer.add_string buf msg;
  Buffer.add_int32_le buf (Int32.of_int (String.length r.rp_body));
  Buffer.add_string buf r.rp_body;
  Buffer.to_bytes buf

let decode_reply_payload b =
  try
    let v, pos = get_u8 b 0 "version" in
    if v <> version then
      Error (Bad_payload (Printf.sprintf "unsupported version %d" v))
    else
      let sc, pos = get_u8 b pos "status" in
      match status_of_code sc with
      | None -> Error (Bad_payload (Printf.sprintf "unknown status %d" sc))
      | Some status ->
        let flags, pos = get_u8 b pos "flags" in
        let retries, pos = get_u8 b pos "retries" in
        let wait_us, pos = get_u32 b pos "wait" in
        let run_us, pos = get_u32 b pos "run" in
        let mlen, pos = get_u16 b pos "msg length" in
        let msg, pos = get_bytes b pos mlen "msg bytes" in
        let blen, pos = get_u32 b pos "body length" in
        let body, pos = get_bytes b pos blen "body bytes" in
        if pos <> Bytes.length b then Error (Bad_payload "trailing bytes")
        else
          Ok
            {
              rp_status = status;
              rp_cache_hit = flags land 1 <> 0;
              rp_retries = retries;
              rp_wait_us = wait_us;
              rp_run_us = run_us;
              rp_msg = Bytes.to_string msg;
              rp_body = Bytes.to_string body;
            }
  with Short what -> Error (Bad_payload what)

let encode_request r = frame_of_payload (encode_request_payload r)
let encode_reply r = frame_of_payload (encode_reply_payload r)

let decode_request b =
  Result.bind (decode_frame b) decode_request_payload

let decode_reply b = Result.bind (decode_frame b) decode_reply_payload

(* ------------------------------------------------------------------ *)
(* Blocking fd IO with timeouts.                                       *)

type io_error = Frame of frame_error | Stalled | Peer_closed

let io_error_to_string = function
  | Frame e -> frame_error_to_string e
  | Stalled -> "peer stalled (read timeout)"
  | Peer_closed -> "peer closed the connection"

let set_timeouts fd timeout_s =
  if timeout_s > 0.0 then begin
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
     with Unix.Unix_error _ -> ());
    try Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
    with Unix.Unix_error _ -> ()
  end

(* [read_exact] distinguishes the three failure shapes the daemon and the
   client both need: a clean EOF before any byte ([`Closed]), an EOF or
   error partway through a frame ([`Torn]), and a receive timeout
   ([`Stalled]). *)
let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok b
    else
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 then `Closed else `Torn
      | k -> go (off + k)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Stalled
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) ->
        if off = 0 then `Closed else `Torn
  in
  go 0

let read_frame ?timeout_s fd =
  (match timeout_s with Some t -> set_timeouts fd t | None -> ());
  match read_exact fd header_bytes with
  | `Closed -> Error Peer_closed
  | `Stalled -> Error Stalled
  | `Torn -> Error (Frame (Torn "short header"))
  | `Ok hdr ->
    if Bytes.sub_string hdr 0 4 <> magic then Error (Frame Bad_magic)
    else
      let len = Int32.to_int (Bytes.get_int32_le hdr 4) in
      if len < 0 || len > max_payload then Error (Frame (Bad_length len))
      else
        let crc = Int32.to_int (Bytes.get_int32_le hdr 8) land 0xFFFFFFFF in
        (match read_exact fd len with
        | `Closed | `Torn -> Error (Frame (Torn "short payload"))
        | `Stalled -> Error Stalled
        | `Ok payload ->
          if Journal.crc32 payload 0 len <> crc then
            Error (Frame Crc_mismatch)
          else Ok payload)

let write_all fd b off len =
  let rec go off len =
    if len = 0 then Ok ()
    else
      match Unix.write fd b off len with
      | k -> go (off + k) (len - k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error (e, _, _) ->
        Error (Unix.error_message e)
  in
  go off len

let write_frame fd frame = write_all fd frame 0 (Bytes.length frame)

let read_request ?timeout_s fd =
  match read_frame ?timeout_s fd with
  | Error e -> Error e
  | Ok payload -> (
    match decode_request_payload payload with
    | Ok r -> Ok r
    | Error e -> Error (Frame e))

let read_reply ?timeout_s fd =
  match read_frame ?timeout_s fd with
  | Error e -> Error e
  | Ok payload -> (
    match decode_reply_payload payload with
    | Ok r -> Ok r
    | Error e -> Error (Frame e))
