(** Content-addressed result cache for the bserve daemon.

    Maps an image digest to the PR4 durability artifacts of a completed
    parse (checkpoint + journal). A hit replays the artifacts through
    {!Pbca_core.Recover} instead of re-running block discovery and the
    jump-table fixpoint from scratch; any damage — torn files, bit rot,
    version skew — is treated as a {e miss} (evict and recompute), never
    an error, because the cache is a derived acceleration structure.

    Two tiers: the disk artifacts are the durable, CRC-checked layer
    that survives restart; a small bounded in-memory map of decoded
    plans fronts them, so steady-state hits skip file IO and record
    decoding. Every disk-layer mutation (promote, drop, rot, clear)
    invalidates the memory tier first, so a cached plan never outlives
    the artifact it was decoded from.

    Concurrency: artifacts are written to unique staging paths and
    promoted with [rename], so a concurrent {!lookup} sees either the
    complete old pair or the complete new pair. Only clean, undegraded
    results should be promoted (degraded CFGs encode a deadline cut that
    the next request may not suffer). *)

type t

val create : dir:string -> t
(** Create/open a cache directory (made if absent). *)

val key : Bytes.t -> string
(** Stable content digest of an image's bytes (32 hex chars). *)

val checkpoint_path : t -> string -> string
val journal_path : t -> string -> string

type staged = { st_checkpoint : string; st_journal : string }

val stage : t -> string -> staged
(** Unique staging paths for a fresh result's artifacts. *)

val promote : t -> string -> staged -> bool
(** Rename staged artifacts into place; on failure the staging files are
    removed and [false] is returned (the cache simply stays cold). *)

val discard : staged -> unit
(** Remove staged artifacts without promoting (failed/degraded run). *)

val lookup : t -> string -> Pbca_core.Recover.plan option
(** [Some plan] when a healthy artifact pair exists; corrupt or
    unreadable artifacts are evicted and reported as [None]. *)

val drop : t -> string -> unit
(** Evict one entry. *)

val rot : rng:Pbca_codegen.Rng.t -> t -> string -> bool
(** Fault injection: corrupt the cached checkpoint bytes in place (via
    {!Pbca_codegen.Mutate.corrupt_artifact}). [false] if absent. *)

val clear : t -> unit
(** Remove every cached artifact. *)
