module Channel = Pbca_concurrent.Channel
module Task_pool = Pbca_concurrent.Task_pool
module Supervisor = Pbca_concurrent.Supervisor
module Fault = Pbca_concurrent.Fault
module Clock = Pbca_obs.Clock
module Metrics = Pbca_obs.Metrics
module Trace = Pbca_obs.Trace
module Image = Pbca_binfmt.Image
module Parse_error = Pbca_binfmt.Parse_error
module Parallel = Pbca_core.Parallel
module Recover = Pbca_core.Recover
module Finalize = Pbca_core.Finalize
module Cfg = Pbca_core.Cfg
module Summary = Pbca_core.Summary
module Aconfig = Pbca_core.Config

type config = {
  sc_sock : string;
  sc_acceptors : int;
  sc_workers : int;
  sc_queue : int;
  sc_cache_dir : string option;
  sc_max_image_bytes : int;
  sc_read_timeout_s : float;
  sc_retries : int;
  sc_backoff_base_s : float;
  sc_parse_threads : int;
  sc_default_deadline_ms : int;
  sc_analysis : Aconfig.t;
  sc_rot_seed : int;
}

let default_config ~sock =
  {
    sc_sock = sock;
    sc_acceptors = 2;
    sc_workers = 2;
    sc_queue = 16;
    sc_cache_dir = None;
    sc_max_image_bytes = 8 * 1024 * 1024;
    sc_read_timeout_s = 2.0;
    sc_retries = 2;
    sc_backoff_base_s = 0.002;
    sc_parse_threads = 1;
    sc_default_deadline_ms = 0;
    sc_analysis = Aconfig.default;
    sc_rot_seed = 0x5eed;
  }

type job = {
  jb_fd : Unix.file_descr;
  jb_req : Wire.request;
  jb_fault : Fault.service option;
  jb_admit : float;  (* Clock.now at admission *)
  jb_deadline : float;  (* absolute Clock time; infinity = none *)
}

type counters = {
  c_accepted : Metrics.counter;
  c_replies : Metrics.counter;
  c_shed : Metrics.counter;
  c_expired : Metrics.counter;
  c_bad_frames : Metrics.counter;
  c_rejected : Metrics.counter;
  c_failed : Metrics.counter;
  c_retries : Metrics.counter;
  c_crashes : Metrics.counter;
  c_cache_hits : Metrics.counter;
  c_cache_misses : Metrics.counter;
  c_cache_fallback : Metrics.counter;
  c_stalled : Metrics.counter;
  c_torn : Metrics.counter;
  c_draining : Metrics.counter;
}

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  queue : job Channel.t;
  draining : bool Atomic.t;
  shutdown_req : bool Atomic.t;
  stopped : bool Atomic.t;
  cache : Cache.t option;
  metrics : Metrics.t;
  otrace : Trace.t;
  cnt : counters;
  h_wait : Metrics.histogram;
  h_latency : Metrics.histogram;
  h_latency_hit : Metrics.histogram;
  h_latency_cold : Metrics.histogram;
  rot_rng : Pbca_codegen.Rng.t;
  mutable acceptors : unit Domain.t array;
  mutable workers : unit Domain.t array;
}

let metrics t = t.metrics
let sock_path t = t.cfg.sc_sock
let draining t = Atomic.get t.draining
let shutdown_requested t = Atomic.get t.shutdown_req

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()
let unlink_quiet p = try Unix.unlink p with Unix.Unix_error _ -> ()

let send_reply t fd reply =
  let frame = Wire.encode_reply reply in
  match Wire.write_frame fd frame with
  | Ok () ->
    Metrics.incr t.cnt.c_replies;
    true
  | Error _ ->
    (* peer vanished or stopped reading; its loss, never ours *)
    false

(* Torn_reply fault: emit only a prefix of the frame, then the caller
   closes — the client must surface a structured torn-frame error. *)
let send_torn t fd reply =
  let frame = Wire.encode_reply reply in
  let cut = max 1 (Bytes.length frame / 2) in
  Metrics.incr t.cnt.c_torn;
  (match Wire.write_frame fd (Bytes.sub frame 0 cut) with
  | Ok () | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Worker side: one admitted request, end to end.                      *)

let us_of span = int_of_float (span *. 1e6)

let body_of_parse cfg_graph =
  let s = Summary.of_cfg cfg_graph in
  (* provenance census rides in every reply: a client of a gap-parsed
     (stripped) image sees exactly how much of the answer rests on
     heuristics rather than symbols *)
  let conf c =
    List.length
      (List.filter (fun (f : Summary.func_sum) -> f.Summary.fs_conf = c) s.Summary.funcs)
  in
  Printf.sprintf
    "fingerprint=%s blocks=%d edges=%d funcs=%d conf_symbol=%d \
     conf_call_target=%d conf_heuristic=%d"
    (Summary.fingerprint s)
    (List.length s.Summary.blocks)
    (List.length s.Summary.edges)
    (List.length s.Summary.funcs)
    (conf 0) (conf 1) (conf 2)

let index_digest index =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) index [] in
  let entries = List.sort compare entries in
  let buf = Buffer.create 4096 in
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s=%d;" k v))
    entries;
  Digest.to_hex (Digest.string (Buffer.contents buf))

type service_result = {
  sv_body : string;
  sv_degraded : bool;
  sv_cache_hit : bool;
}

exception Killed_by_fault of int

(* Run the analysis for one attempt. Every outcome the supervisor can
   retry or surface maps onto the reply taxonomy:
   - malformed image        -> Rejected (final, never retried)
   - analysis exception     -> Crashed  (retried with backoff)
   - budget/deadline cuts   -> Ok_degraded with a well-formed body *)
let run_attempt t pool job ~attempt result_cell =
  (match job.jb_fault with
  | Some (Fault.Kill_worker k) when attempt < k ->
    raise (Killed_by_fault attempt)
  | _ -> ());
  match Image.read_result job.jb_req.Wire.rq_image with
  | Error e -> Supervisor.Rejected (Parse_error.to_string e)
  | Ok img ->
    let remaining = job.jb_deadline -. Clock.now () in
    let acfg =
      if job.jb_deadline = infinity then t.cfg.sc_analysis
      else
        { t.cfg.sc_analysis with
          Aconfig.deadline_s = Float.max 0.001 remaining }
    in
    let finish ?(cache_hit = false) ~degraded body =
      result_cell :=
        Some { sv_body = body; sv_degraded = degraded; sv_cache_hit = cache_hit };
      if degraded then Supervisor.Ok_degraded else Supervisor.Ok_clean
    in
    (* heuristic gap discoveries are honest degradation too: the graph is
       complete but parts of it rest on guessed entry points *)
    let heuristic g =
      let _, _, h = Cfg.conf_counts g in
      h > 0
    in
    (match job.jb_req.Wire.rq_kind with
    | Wire.Parse ->
      let key = Cache.key job.jb_req.Wire.rq_image in
      let use_cache = t.cache <> None && not job.jb_req.Wire.rq_no_cache in
      (match job.jb_fault with
      | Some Fault.Cache_rot ->
        (match t.cache with
        | Some c -> ignore (Cache.rot ~rng:t.rot_rng c key)
        | None -> ())
      | _ -> ());
      let cached =
        if use_cache then
          match t.cache with
          | Some c -> Cache.lookup c key
          | None -> None
        else None
      in
      (match cached with
      | Some plan ->
        Metrics.incr t.cnt.c_cache_hits;
        (* Promoted artifacts come only from complete, non-degraded
           parses, so the op stream already describes the final
           quiescent graph: replay it and finalize, skipping decode and
           traversal re-seeding entirely. Leftover jump-table frontier
           entries are expected — terminally unresolved tables stay on
           the frontier even at completion — but a candidate block means
           undone discovery work, so that falls back to a full resumed
           parse (it would mean a mid-parse artifact, which promote
           excludes). *)
        let g = Cfg.create ~config:acfg img in
        ignore (Recover.apply g plan ~on_jt_pending:(fun ~end_:_ ~reg:_ -> ()));
        let g =
          if not (List.exists Cfg.is_candidate (Cfg.blocks_list g)) then begin
            Finalize.run ~pool g;
            g
          end
          else begin
            Metrics.incr t.cnt.c_cache_fallback;
            Parallel.parse_and_finalize ~config:acfg ~otrace:t.otrace
              ~resume:plan ~pool img
          end
        in
        finish ~cache_hit:true
          ~degraded:(Cfg.degraded_count g > 0 || heuristic g)
          (body_of_parse g)
      | None ->
        if use_cache then Metrics.incr t.cnt.c_cache_misses;
        let staged =
          if use_cache then
            match t.cache with
            | Some c -> Some (c, Cache.stage c key)
            | None -> None
          else None
        in
        let persist =
          Option.map
            (fun (_, s) ->
              { Parallel.p_journal = s.Cache.st_journal;
                p_checkpoint = s.Cache.st_checkpoint;
                p_every = 4 })
            staged
        in
        let g =
          try Parallel.parse_and_finalize ~config:acfg ~otrace:t.otrace
                ?persist ~pool img
          with e ->
            (* never leave half-written staging files behind a crash *)
            Option.iter (fun (_, s) -> Cache.discard s) staged;
            raise e
        in
        let budget_cut = Cfg.degraded_count g > 0 in
        Option.iter
          (fun (c, s) ->
            (* only full-fidelity results are worth replaying; a
               budget-degraded artifact would pin the deadline cut
               forever. Heuristic provenance is fine to cache — conf ops
               are journaled, so replay reproduces the tags exactly. *)
            if budget_cut then Cache.discard s else ignore (Cache.promote c key s))
          staged;
        finish ~degraded:(budget_cut || heuristic g) (body_of_parse g))
    | Wire.Hpcstruct ->
      let r = Pbca_hpcstruct.Hpcstruct.run_image ~config:acfg ~pool img in
      finish
        ~degraded:(Cfg.degraded_count r.Pbca_hpcstruct.Hpcstruct.cfg > 0)
        r.Pbca_hpcstruct.Hpcstruct.output
    | Wire.Binfeat ->
      let r = Pbca_binfeat.Binfeat.extract ~config:acfg ~pool [ img ] in
      finish ~degraded:false
        (Printf.sprintf "n_funcs=%d n_features=%d index=%s"
           r.Pbca_binfeat.Binfeat.n_funcs r.Pbca_binfeat.Binfeat.n_features
           (index_digest r.Pbca_binfeat.Binfeat.index))
    | Wire.Ping | Wire.Stats | Wire.Shutdown ->
      (* control kinds never reach the queue *)
      Supervisor.Rejected "control request routed to worker")

let serve_job t pool job =
  let reply_and_close reply =
    (match job.jb_fault with
    | Some Fault.Torn_reply -> send_torn t job.jb_fd reply
    | _ -> ignore (send_reply t job.jb_fd reply));
    close_quiet job.jb_fd
  in
  let start = Clock.now () in
  let wait_us = us_of (start -. job.jb_admit) in
  Metrics.observe t.h_wait (start -. job.jb_admit);
  (* Stall fault: the daemon sits on the request before servicing it,
     exercising client-side timeouts and queue backpressure. The stall
     counts against the request's own deadline. *)
  (match job.jb_fault with
  | Some (Fault.Stall d) -> Unix.sleepf d
  | _ -> ());
  if Clock.now () > job.jb_deadline then begin
    Metrics.incr t.cnt.c_expired;
    reply_and_close
      (Wire.reply ~wait_us ~msg:"deadline expired before service"
         Wire.Expired)
  end
  else begin
    let result_cell = ref None in
    let sup_cfg =
      { Supervisor.max_restarts = t.cfg.sc_retries;
        backoff_base_s = t.cfg.sc_backoff_base_s;
        backoff_cap_s = 0.25 }
    in
    let should_stop () =
      Atomic.get t.draining || Clock.now () > job.jb_deadline
    in
    let job_id = Wire.kind_name job.jb_req.Wire.rq_kind in
    let reports =
      Supervisor.run ~config:sup_cfg ~trace:t.otrace ~should_stop
        [ { Supervisor.j_id = job_id;
            j_run = (fun ~attempt -> run_attempt t pool job ~attempt result_cell) } ]
    in
    let report = List.hd reports in
    let retries = report.Supervisor.r_restarts in
    if retries > 0 then Metrics.add t.cnt.c_retries retries;
    let run_us = us_of (Clock.elapsed start) in
    let reply =
      match report.Supervisor.r_outcome with
      | Supervisor.Ok_clean | Supervisor.Ok_degraded -> (
        match !result_cell with
        | Some r ->
          let status =
            if r.sv_degraded then Wire.Ok_degraded else Wire.Ok_clean
          in
          Wire.reply ~cache_hit:r.sv_cache_hit ~retries ~wait_us ~run_us
            ~body:r.sv_body status
        | None ->
          Wire.reply ~retries ~wait_us ~run_us ~msg:"internal: no result"
            Wire.Failed)
      | Supervisor.Rejected msg ->
        Metrics.incr t.cnt.c_rejected;
        Wire.reply ~retries ~wait_us ~run_us ~msg Wire.Rejected
      | Supervisor.Crashed msg ->
        Metrics.incr t.cnt.c_crashes;
        if Clock.now () > job.jb_deadline then begin
          Metrics.incr t.cnt.c_expired;
          Wire.reply ~retries ~wait_us ~run_us
            ~msg:"deadline expired during service" Wire.Expired
        end
        else begin
          Metrics.incr t.cnt.c_failed;
          Wire.reply ~retries ~wait_us ~run_us ~msg Wire.Failed
        end
    in
    let total = Clock.elapsed job.jb_admit in
    Metrics.observe t.h_latency total;
    (match reply.Wire.rp_status with
    | Wire.Ok_clean | Wire.Ok_degraded ->
      Metrics.observe
        (if reply.Wire.rp_cache_hit then t.h_latency_hit else t.h_latency_cold)
        total
    | _ -> ());
    reply_and_close reply
  end

let worker_loop t =
  (* own pool per worker domain; threads:1 runs every analysis task
     inline on this domain (no nested domain spawns) *)
  let pool = Task_pool.create ~threads:t.cfg.sc_parse_threads in
  let rec loop () =
    match Channel.recv t.queue with
    | None -> ()
    | Some job ->
      (try serve_job t pool job
       with e ->
         (* last-ditch containment: a bug in the service path must cost
            one request, not the daemon *)
         Metrics.incr t.cnt.c_failed;
         ignore
           (send_reply t job.jb_fd
              (Wire.reply ~msg:(Printexc.to_string e) Wire.Failed));
         close_quiet job.jb_fd);
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Acceptor side: admission control.                                   *)

let deadline_of t req now =
  let ms =
    if req.Wire.rq_deadline_ms > 0 then req.Wire.rq_deadline_ms
    else t.cfg.sc_default_deadline_ms
  in
  if ms <= 0 then infinity else now +. (float_of_int ms /. 1000.)

(* Returns [`Continue] to keep reading requests from this connection,
   [`Close] when ownership moved to a worker or the peer is done. *)
let handle_request t fd req =
  match req.Wire.rq_kind with
  | Wire.Ping ->
    ignore (send_reply t fd (Wire.reply ~body:"pong" Wire.Ok_clean));
    `Continue
  | Wire.Stats ->
    let body = Format.asprintf "%a" Metrics.pp t.metrics in
    ignore (send_reply t fd (Wire.reply ~body Wire.Ok_clean));
    `Continue
  | Wire.Shutdown ->
    ignore (send_reply t fd (Wire.reply ~body:"draining" Wire.Ok_clean));
    Atomic.set t.shutdown_req true;
    `Continue
  | Wire.Parse | Wire.Hpcstruct | Wire.Binfeat ->
    if Atomic.get t.draining then begin
      Metrics.incr t.cnt.c_draining;
      ignore
        (send_reply t fd
           (Wire.reply ~msg:"daemon is draining" Wire.Draining));
      `Continue
    end
    else if Bytes.length req.Wire.rq_image > t.cfg.sc_max_image_bytes then begin
      Metrics.incr t.cnt.c_rejected;
      ignore
        (send_reply t fd
           (Wire.reply
              ~msg:
                (Printf.sprintf "image exceeds %d bytes"
                   t.cfg.sc_max_image_bytes)
              Wire.Rejected));
      `Continue
    end
    else begin
      let now = Clock.now () in
      (* one service-fault draw per admitted work request *)
      let fault = Fault.service_next () in
      let job =
        { jb_fd = fd; jb_req = req; jb_fault = fault; jb_admit = now;
          jb_deadline = deadline_of t req now }
      in
      match Channel.try_send t.queue job with
      | true ->
        Metrics.incr t.cnt.c_accepted;
        `Close_moved
      | false ->
        (* explicit load shedding: the queue bound is the contract — a
           full daemon says so immediately instead of queueing latency *)
        Metrics.incr t.cnt.c_shed;
        ignore
          (send_reply t fd
             (Wire.reply ~msg:"admission queue full" Wire.Overloaded));
        `Continue
      | exception Channel.Closed ->
        Metrics.incr t.cnt.c_draining;
        ignore
          (send_reply t fd (Wire.reply ~msg:"daemon stopped" Wire.Draining));
        `Continue
    end

let handle_conn t fd =
  let rec loop () =
    match Wire.read_request ~timeout_s:t.cfg.sc_read_timeout_s fd with
    | Ok req -> (
      match handle_request t fd req with
      | `Continue -> if Atomic.get t.stopped then close_quiet fd else loop ()
      | `Close_moved -> () (* fd now owned by a worker *))
    | Error Wire.Peer_closed -> close_quiet fd
    | Error Wire.Stalled ->
      (* a client that stops mid-frame cannot hold an acceptor hostage *)
      Metrics.incr t.cnt.c_stalled;
      close_quiet fd
    | Error (Wire.Frame e) ->
      (* garbage on the stream: answer structurally, then drop the
         connection — framing cannot be resynchronized after a bad
         length field *)
      Metrics.incr t.cnt.c_bad_frames;
      ignore
        (send_reply t fd
           (Wire.reply ~msg:(Wire.frame_error_to_string e) Wire.Bad_frame));
      close_quiet fd
  in
  loop ()

let acceptor_loop t =
  let rec loop () =
    if Atomic.get t.draining then ()
    else begin
      (match Unix.select [ t.lsock ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
        match Unix.accept t.lsock with
        | fd, _ -> handle_conn t fd
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
          ()
        | exception Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Unix.sleepf 0.01);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let start ?(otrace = Trace.disabled) cfg =
  (* a peer closing mid-write must surface as EPIPE, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  unlink_quiet cfg.sc_sock;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock lsock;
  Unix.bind lsock (Unix.ADDR_UNIX cfg.sc_sock);
  Unix.listen lsock 64;
  let metrics = Metrics.create () in
  let cnt =
    {
      c_accepted = Metrics.counter metrics "serve_accepted";
      c_replies = Metrics.counter metrics "serve_replies";
      c_shed = Metrics.counter metrics "serve_shed";
      c_expired = Metrics.counter metrics "serve_expired";
      c_bad_frames = Metrics.counter metrics "serve_bad_frames";
      c_rejected = Metrics.counter metrics "serve_rejected";
      c_failed = Metrics.counter metrics "serve_failed";
      c_retries = Metrics.counter metrics "serve_retries";
      c_crashes = Metrics.counter metrics "serve_worker_crashes";
      c_cache_hits = Metrics.counter metrics "serve_cache_hits";
      c_cache_misses = Metrics.counter metrics "serve_cache_misses";
      c_cache_fallback = Metrics.counter metrics "serve_cache_replay_fallback";
      c_stalled = Metrics.counter metrics "serve_stalled_clients";
      c_torn = Metrics.counter metrics "serve_torn_replies";
      c_draining = Metrics.counter metrics "serve_draining_replies";
    }
  in
  let queue =
    Channel.create ~otrace ~name:"serve_admission" ~capacity:cfg.sc_queue ()
  in
  Metrics.register_gauge_fn metrics "serve_queue_depth" (fun () ->
      float_of_int (Channel.length queue));
  let t =
    {
      cfg;
      lsock;
      queue;
      draining = Atomic.make false;
      shutdown_req = Atomic.make false;
      stopped = Atomic.make false;
      cache = Option.map (fun dir -> Cache.create ~dir) cfg.sc_cache_dir;
      metrics;
      otrace;
      cnt;
      h_wait = Metrics.histogram metrics "serve_wait_s";
      h_latency = Metrics.histogram metrics "serve_latency_s";
      h_latency_hit = Metrics.histogram metrics "serve_latency_hit_s";
      h_latency_cold = Metrics.histogram metrics "serve_latency_cold_s";
      rot_rng = Pbca_codegen.Rng.create cfg.sc_rot_seed;
      acceptors = [||];
      workers = [||];
    }
  in
  t.workers <-
    Array.init cfg.sc_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.acceptors <-
    Array.init cfg.sc_acceptors (fun _ ->
        Domain.spawn (fun () -> acceptor_loop t));
  t

(* Drain discipline: stop admitting (acceptors answer [Draining] and then
   exit), close the listening socket, close the queue, and let the
   workers finish every already-admitted request — each gets a real
   reply, so a drain loses zero in-flight work. *)
let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.draining true;
    Array.iter Domain.join t.acceptors;
    close_quiet t.lsock;
    unlink_quiet t.cfg.sc_sock;
    Channel.close t.queue;
    Array.iter Domain.join t.workers;
    if Trace.enabled t.otrace then Trace.drain t.otrace
  end

let with_server ?otrace cfg f =
  let t = start ?otrace cfg in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)
