(* Word-packed concurrent bitset. 63 usable bits per OCaml int word;
   [set] CAS-loops on the containing word, [test] is a single load. *)

let bits_per_word = 63

type t = {
  words : int Atomic.t array;
  capacity : int;
  set_bits : int Atomic.t;
}

let create n =
  if n < 0 then invalid_arg "Atomic_bitset.create: negative capacity";
  {
    words = Array.init ((n + bits_per_word - 1) / bits_per_word) (fun _ -> Atomic.make 0);
    capacity = n;
    set_bits = Atomic.make 0;
  }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Atomic_bitset: index %d out of [0, %d)" i t.capacity)

let set t i =
  check t i;
  let w = t.words.(i / bits_per_word) in
  let mask = 1 lsl (i mod bits_per_word) in
  let rec go () =
    let cur = Atomic.get w in
    if cur land mask <> 0 then false
    else if Atomic.compare_and_set w cur (cur lor mask) then begin
      Atomic.incr t.set_bits;
      true
    end
    else go ()
  in
  go ()

let test t i =
  check t i;
  Atomic.get t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let count t = Atomic.get t.set_bits

let reset t =
  Array.iter (fun w -> Atomic.set w 0) t.words;
  Atomic.set t.set_bits 0
