type t = {
  probes : int Atomic.t;
  cas_retries : int Atomic.t;
  resizes : int Atomic.t;
  frozen_waits : int Atomic.t;
}

let create () =
  {
    probes = Atomic.make 0;
    cas_retries = Atomic.make 0;
    resizes = Atomic.make 0;
    frozen_waits = Atomic.make 0;
  }

let reset t =
  Atomic.set t.probes 0;
  Atomic.set t.cas_retries 0;
  Atomic.set t.resizes 0;
  Atomic.set t.frozen_waits 0

let pp fmt t =
  Format.fprintf fmt "probes=%d cas_retries=%d resizes=%d frozen_waits=%d"
    (Atomic.get t.probes) (Atomic.get t.cas_retries) (Atomic.get t.resizes)
    (Atomic.get t.frozen_waits)
