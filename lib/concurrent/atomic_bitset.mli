(** Fixed-capacity concurrent bitset over [0, capacity).

    Built for the delta layer of the {!Pbca_core.Csr} snapshot: finalize
    steps kill an edge or block by setting its bit, and every snapshot
    reader tests the bit while scanning the flat adjacency arrays. Both
    sides are index-addressed, so a word-packed bit array beats a hash
    set: [test] is one load + mask with no probing, and the whole map for
    a hundred-thousand-edge graph is a few KiB of cache-resident words.

    [set] is a CAS loop on the containing word (lock-free; it retries
    only when another bit of the {e same} word was set concurrently).
    [test] is wait-free. Bits are never cleared individually — the
    consumers are kill maps and per-round visited maps, both of which
    only grow — but {!reset} re-zeroes the whole set for reuse across
    rounds (quiescent use only, like {!Frontier.clear}). *)

type t

val create : int -> t
(** [create n] is an all-clear bitset for indices [0, n). *)

val capacity : t -> int

val set : t -> int -> bool
(** [set t i] sets bit [i]; [true] iff this call flipped it from clear.
    Exactly one of any number of concurrent [set]s of the same bit
    returns [true]. Lock-free. Bounds-checked. *)

val test : t -> int -> bool
(** Wait-free. Bounds-checked. *)

val count : t -> int
(** Number of set bits. O(1): maintained by the winning [set] calls. *)

val reset : t -> unit
(** Clear every bit. Quiescent use only (no concurrent [set]/[test]). *)
