(** Shared contention counters for the lock-free containers.

    One record can be threaded through any number of {!Lockfree_map} and
    {!Atomic_intset} instances so a whole subsystem (e.g. every map of one
    CFG) aggregates into a single set of counters. The counters measure the
    events that would have been serialization points under locks:

    - [probes]: extra bucket/slot steps past the first on the read path —
      hash-collision pressure. Wait-free reads that hit their first slot do
      not touch the counter at all, keeping the hot path store-free.
    - [cas_retries]: failed compare-and-set attempts on the write path —
      genuine write-write contention on one bucket.
    - [resizes]: table growths.
    - [frozen_waits]: writer spins against a bucket frozen by an in-flight
      resize.

    All fields are plain [Atomic] counters; incrementing them is the
    caller's (i.e. the container's) job. *)

type t = {
  probes : int Atomic.t;
  cas_retries : int Atomic.t;
  resizes : int Atomic.t;
  frozen_waits : int Atomic.t;
}

val create : unit -> t
val reset : t -> unit
val pp : Format.formatter -> t -> unit
