exception Closed

type 'a t = {
  cap : int;
  q : 'a Queue.t;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable hwm : int;
  mutable producer_block : float;
  mutable consumer_idle : float;
  mutable n_sent : int;
  mutable n_received : int;
  otrace : Pbca_obs.Trace.t;
  name : string;
}

let create ?(otrace = Pbca_obs.Trace.disabled) ?(name = "chan") ~capacity () =
  if capacity < 1 then invalid_arg "Channel.create: capacity must be >= 1";
  {
    cap = capacity;
    q = Queue.create ();
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
    hwm = 0;
    producer_block = 0.0;
    consumer_idle = 0.0;
    n_sent = 0;
    n_received = 0;
    otrace;
    name;
  }

let capacity t = t.cap

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

(* Block on [cond] until [ready] holds, under [t.m]. The accumulated wait
   is charged to [charge], and (when the channel has a live trace) shows
   up as one [channel]-phase span per contiguous wait — the per-stage
   occupancy signal: producer spans mean the consumer is the bottleneck
   and vice versa. *)
let wait_until t cond ready ~charge ~span_name =
  if not (ready ()) then begin
    let t0 = Pbca_obs.Clock.now () in
    let span =
      if Pbca_obs.Trace.enabled t.otrace then
        Some
          (Pbca_obs.Trace.begin_span t.otrace ~phase:"channel"
             (t.name ^ ":" ^ span_name))
      else None
    in
    while not (ready ()) do
      Condition.wait cond t.m
    done;
    charge (Pbca_obs.Clock.elapsed t0);
    match span with
    | Some sp -> Pbca_obs.Trace.end_span t.otrace sp
    | None -> ()
  end

let send t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      wait_until t t.not_full
        (fun () -> t.closed || Queue.length t.q < t.cap)
        ~charge:(fun dt -> t.producer_block <- t.producer_block +. dt)
        ~span_name:"send-wait";
      (* closed while we were blocked: the value cannot be delivered *)
      if t.closed then raise Closed;
      Queue.push x t.q;
      t.n_sent <- t.n_sent + 1;
      let depth = Queue.length t.q in
      if depth > t.hwm then t.hwm <- depth;
      Condition.signal t.not_empty)

let try_send t x =
  with_lock t (fun () ->
      if t.closed then raise Closed;
      if Queue.length t.q >= t.cap then false
      else begin
        Queue.push x t.q;
        t.n_sent <- t.n_sent + 1;
        let depth = Queue.length t.q in
        if depth > t.hwm then t.hwm <- depth;
        Condition.signal t.not_empty;
        true
      end)

let recv t =
  with_lock t (fun () ->
      wait_until t t.not_empty
        (fun () -> t.closed || not (Queue.is_empty t.q))
        ~charge:(fun dt -> t.consumer_idle <- t.consumer_idle +. dt)
        ~span_name:"recv-wait";
      match Queue.take_opt t.q with
      | Some x ->
        t.n_received <- t.n_received + 1;
        Condition.signal t.not_full;
        Some x
      | None -> None (* closed and drained *))

let try_recv t =
  with_lock t (fun () ->
      match Queue.take_opt t.q with
      | Some x ->
        t.n_received <- t.n_received + 1;
        Condition.signal t.not_full;
        `Item x
      | None -> if t.closed then `Closed else `Empty)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (* wake every blocked producer (they raise [Closed]) and every
           blocked consumer (they drain the queue, then return [None]) *)
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full
      end)

let is_closed t = with_lock t (fun () -> t.closed)
let length t = with_lock t (fun () -> Queue.length t.q)
let high_water t = with_lock t (fun () -> t.hwm)
let producer_block_wall t = with_lock t (fun () -> t.producer_block)
let consumer_idle_wall t = with_lock t (fun () -> t.consumer_idle)
let sent t = with_lock t (fun () -> t.n_sent)
let received t = with_lock t (fun () -> t.n_received)
