(** Supervised job driver with bounded restarts and exponential backoff.

    A job is an [attempt:int -> outcome] closure; the supervisor runs each
    job to completion, restarting it (with backoff) when it reports
    [Crashed] or dies with an exception, up to [max_restarts] times. A
    [Rejected] outcome (malformed input) is final: restarting cannot fix
    the input, so the job is not retried. Jobs are independent — a crash
    in one never affects its siblings — which is what lets [bparse --batch]
    survive a binary that kills its analysis.

    The module is deliberately generic: it knows nothing about CFGs or
    checkpoints. Resumability lives in the job closure itself (the attempt
    number tells it whether to look for a checkpoint). *)

type outcome =
  | Ok_clean  (** exit 0: complete, nothing degraded *)
  | Ok_degraded  (** exit 1: complete but budget/deadline-degraded *)
  | Rejected of string  (** exit 2: malformed input — never retried *)
  | Crashed of string  (** exit 3 territory: attempt died; retry if budget left *)

type job = {
  j_id : string;  (** label used in reports *)
  j_run : attempt:int -> outcome;
      (** [attempt] is 0 on the first run, incremented per restart. An
          exception escaping [j_run] is treated as [Crashed]. *)
}

type config = {
  max_restarts : int;  (** restarts per job after the initial attempt *)
  backoff_base_s : float;  (** sleep before restart k is [base * 2^k] ... *)
  backoff_cap_s : float;  (** ... capped at this many seconds *)
}

val default_config : config
(** 3 restarts, 10ms base, 1s cap. *)

type report = {
  r_id : string;
  r_outcome : outcome;  (** outcome of the final attempt *)
  r_restarts : int;  (** restarts actually performed *)
}

val backoff_delay : config -> int -> float
(** [backoff_delay cfg k] is the sleep before restart [k] (0-based):
    [min cap (base *. 2. ** k)]. Exposed for tests. *)

val run :
  ?config:config ->
  ?trace:Pbca_obs.Trace.t ->
  ?should_stop:(unit -> bool) ->
  job list ->
  report list
(** Run every job under supervision, in order, returning one report per
    job (same order). Never raises: a job that exhausts its restarts is
    reported with its last [Crashed] outcome. With [?trace], each
    attempt records a ["supervisor"]-phase span named [job_id#attempt],
    so restarts and their backoff gaps are visible in the trace.

    [?should_stop] makes the backoff wait interruptible: the wait is
    deadline-based on the monotonic {!Pbca_obs.Clock} and polled in
    ~2ms slices, and once [should_stop ()] turns true no further restart
    is attempted — the job finishes with its last [Crashed] outcome.
    This is what lets a draining daemon (bserve) never hang on a retry
    sleep: in-flight attempts finish, queued backoffs cut short. *)

val exit_code : outcome -> int
(** Map an outcome to the bparse exit contract: 0 / 1 / 2 / 3. *)

val worst_exit : report list -> int
(** Max of the per-job exit codes; 0 for an empty batch. *)
