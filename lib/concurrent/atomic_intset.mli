(** Grow-only concurrent set of non-negative ints.

    Built for the per-function visited sets of the parallel CFG traversal
    (paper Listing 3): the traversal marks a block visited at most once and
    checks membership once per edge, so the workload is one CAS per block
    and wait-free reads everywhere else. The previous implementation — a
    [Hashtbl] behind a per-function mutex — locked twice per edge.

    Representation: open addressing with linear probing over an array of
    [int Atomic.t] slots. [add] is one CAS on an empty slot; [mem] never
    writes (except collision-probe accounting) and never waits. Elements
    are immutable once inserted, so resizing only freezes {e empty} slots:
    readers keep reading the old table during migration (frozen-empty
    terminates a probe exactly like empty), writers wait for the doubled
    table to be published.

    Keys must be [>= 0] (two negative values are used as the empty and
    frozen sentinels). There is no removal — the CFG traversal never
    unvisits. *)

type t

val create : ?capacity:int -> ?counters:Contention.t -> unit -> t
(** [capacity] is the initial slot count (rounded to a power of two, min
    8); the table doubles at 1/2 load. [counters] shares a
    {!Contention.t} across instances. *)

val counters : t -> Contention.t

val add : t -> int -> bool
(** [add t k] inserts [k]; [true] iff this call inserted it. Exactly one of
    any number of concurrent [add]s of the same key returns [true] — the
    "first visitor wins" primitive. Lock-free. Raises [Invalid_argument] on
    a negative key. *)

val mem : t -> int -> bool
(** Wait-free. *)

val cardinal : t -> int
(** O(1). *)

val iter : (int -> unit) -> t -> unit
(** Quiescent use only: iterates a snapshot of the current table. *)

val to_list : t -> int list
