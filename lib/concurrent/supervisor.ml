type outcome =
  | Ok_clean
  | Ok_degraded
  | Rejected of string
  | Crashed of string

type job = { j_id : string; j_run : attempt:int -> outcome }

type config = {
  max_restarts : int;
  backoff_base_s : float;
  backoff_cap_s : float;
}

let default_config =
  { max_restarts = 3; backoff_base_s = 0.01; backoff_cap_s = 1.0 }

type report = { r_id : string; r_outcome : outcome; r_restarts : int }

let backoff_delay cfg k =
  Float.min cfg.backoff_cap_s (cfg.backoff_base_s *. (2. ** float_of_int k))

(* Deadline-based on the monotonic clock and polled in small slices, so a
   drain/shutdown request interrupts the wait within ~2ms instead of the
   domain sitting in one long [Unix.sleepf]. The iteration cap bounds the
   real wall spent here even when a test has a frozen fake clock
   installed (the deadline would then never arrive). *)
let wait_backoff ~should_stop delay =
  let slice = 0.002 in
  let deadline = Pbca_obs.Clock.now () +. delay in
  let max_iters = 1 + int_of_float (ceil (delay /. slice)) in
  let rec go i =
    if i < max_iters && not (should_stop ()) then begin
      let remaining = deadline -. Pbca_obs.Clock.now () in
      if remaining > 0.0 then begin
        Unix.sleepf (Float.min remaining slice);
        go (i + 1)
      end
    end
  in
  go 0

let run_job ~trace ~should_stop cfg job =
  let rec go attempt =
    let outcome =
      (* one span per attempt: restarts show up as repeated supervisor
         lanes in the Chrome trace, backoffs as the gaps between them *)
      Pbca_obs.Trace.with_span trace ~phase:"supervisor"
        (Printf.sprintf "%s#%d" job.j_id attempt)
        (fun () ->
          try job.j_run ~attempt with e -> Crashed (Printexc.to_string e))
    in
    match outcome with
    | Ok_clean | Ok_degraded | Rejected _ ->
      { r_id = job.j_id; r_outcome = outcome; r_restarts = attempt }
    | Crashed _ when attempt < cfg.max_restarts && not (should_stop ()) ->
      wait_backoff ~should_stop (backoff_delay cfg attempt);
      (* a drain that arrived during the backoff wins: the job keeps its
         crashed outcome instead of starting an attempt nobody will wait
         for *)
      if should_stop () then
        { r_id = job.j_id; r_outcome = outcome; r_restarts = attempt }
      else go (attempt + 1)
    | Crashed _ ->
      { r_id = job.j_id; r_outcome = outcome; r_restarts = attempt }
  in
  go 0

let run ?(config = default_config) ?(trace = Pbca_obs.Trace.disabled)
    ?(should_stop = fun () -> false) jobs =
  List.map (run_job ~trace ~should_stop config) jobs

let exit_code = function
  | Ok_clean -> 0
  | Ok_degraded -> 1
  | Rejected _ -> 2
  | Crashed _ -> 3

let worst_exit reports =
  List.fold_left (fun acc r -> max acc (exit_code r.r_outcome)) 0 reports
