(* Scheduler counters are per-pool (cumulative across the pool's
   regions), never process-global: two pools running concurrently each
   count their own steals, and resetting one harness's pool cannot
   clobber numbers out from under another run mid-flight — the race the
   old module-level atomics had. Bench harnesses snapshot-diff them
   around a run. *)
type t = {
  n : int;
  steals_ctr : int Atomic.t;
  steal_attempts_ctr : int Atomic.t;
  idle_sleeps_ctr : int Atomic.t;
}

let create ~threads =
  if threads < 1 then invalid_arg "Task_pool.create: threads must be >= 1";
  {
    n = threads;
    steals_ctr = Atomic.make 0;
    steal_attempts_ctr = Atomic.make 0;
    idle_sleeps_ctr = Atomic.make 0;
  }

let threads t = t.n

type pool_stats = { steals : int; steal_attempts : int; idle_sleeps : int }

let stats t =
  {
    steals = Atomic.get t.steals_ctr;
    steal_attempts = Atomic.get t.steal_attempts_ctr;
    idle_sleeps = Atomic.get t.idle_sleeps_ctr;
  }

let diff_stats ~before ~after =
  {
    steals = after.steals - before.steals;
    steal_attempts = after.steal_attempts - before.steal_attempts;
    idle_sleeps = after.idle_sleeps - before.idle_sleeps;
  }

let reset_stats t =
  Atomic.set t.steals_ctr 0;
  Atomic.set t.steal_attempts_ctr 0;
  Atomic.set t.idle_sleeps_ctr 0

exception Task_failures of exn list

type region = {
  deques : (unit -> unit) Wsdeque.t array;
  pending : int Atomic.t; (* spawned-but-unfinished tasks *)
  failures : exn list Atomic.t;
  pool : t; (* owning pool: regions bump its counters *)
}

let rec push_failure region e =
  let cur = Atomic.get region.failures in
  if not (Atomic.compare_and_set region.failures cur (e :: cur)) then
    push_failure region e

(* Worker slot of the current domain within the active region. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let worker_index () = Domain.DLS.get slot_key

let spawn_in region task =
  let me = Domain.DLS.get slot_key in
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(me) task

let run_task region task =
  (* A crashing task must not wedge the region: every failure (including a
     fault injected by [Fault.on_task]) is collected, the pending count
     still drops, and every sibling still runs. *)
  (match
     Fault.on_task ();
     task ()
   with
  | () -> ()
  | exception e -> push_failure region e);
  Atomic.decr region.pending

(* Find work: own deque first, then steal round-robin from the others. *)
let find_work region me =
  match Wsdeque.pop region.deques.(me) with
  | Some _ as t -> t
  | None ->
    let n = Array.length region.deques in
    let rec try_steal i =
      if i >= n then None
      else begin
        let victim = (me + i) mod n in
        ignore (Atomic.fetch_and_add region.pool.steal_attempts_ctr 1);
        match Wsdeque.steal region.deques.(victim) with
        | Some _ as t ->
          ignore (Atomic.fetch_and_add region.pool.steals_ctr 1);
          t
        | None -> try_steal (i + 1)
      end
    in
    try_steal 1

(* Idle back-off: spin briefly (work usually reappears within a few steal
   attempts), then sleep with exponentially growing, capped pauses so an
   idle worker neither burns a shared core nor adds fixed 200 us latency
   the moment the deques run momentarily dry. *)
let spin_limit = 64
let sleep_base = 2e-6
let sleep_cap = 2e-4

let worker_loop region me =
  Domain.DLS.set slot_key me;
  let idle_spins = ref 0 in
  let rec loop () =
    if Atomic.get region.pending = 0 then ()
    else
      match find_work region me with
      | Some task ->
        idle_spins := 0;
        run_task region task;
        loop ()
      | None ->
        incr idle_spins;
        if !idle_spins > spin_limit then begin
          ignore (Atomic.fetch_and_add region.pool.idle_sleeps_ctr 1);
          let exp = min (!idle_spins - spin_limit) 7 in
          Unix.sleepf (Float.min sleep_cap (sleep_base *. float_of_int (1 lsl exp)))
        end
        else Domain.cpu_relax ();
        loop ()
  in
  loop ()

let run_collect t root =
  let region =
    {
      deques = Array.init t.n (fun _ -> Wsdeque.create ());
      pending = Atomic.make 0;
      failures = Atomic.make [];
      pool = t;
    }
  in
  let spawn task = spawn_in region task in
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(0) (fun () -> root spawn);
  let helpers =
    Array.init (t.n - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop region (i + 1)))
  in
  worker_loop region 0;
  Array.iter Domain.join helpers;
  Domain.DLS.set slot_key 0;
  List.rev (Atomic.get region.failures)

let raise_failures = function
  | [] -> ()
  | [ e ] -> raise e
  | es -> raise (Task_failures es)

let run t root = raise_failures (run_collect t root)

(* Sampled once: the machine's core count does not change mid-process,
   and [parallel_for] consults it on every call. *)
let hw_cores = Domain.recommended_domain_count ()

let parallel_for t ?chunk lo hi f =
  if hi > lo then begin
    let count = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (count / (t.n * 8))
    in
    (* Per-index containment: an [f i] that raises must not take the rest
       of its chunk (or its worker's whole grab loop) down with it — every
       other index is still visited, and all failures are reported. *)
    let errs = Atomic.make [] in
    let rec push e =
      let cur = Atomic.get errs in
      if not (Atomic.compare_and_set errs cur (e :: cur)) then push e
    in
    if t.n = 1 || count <= chunk || hw_cores = 1 then begin
      (* Inline fast path: a single worker would execute every index
         anyway (one thread, one chunk, or one hardware core), so skip
         the region entirely — spawning and joining [t.n - 1] domains
         costs milliseconds per call on a loaded single-core box, which
         is exactly the finalize bottleneck. [parallel_for] promises no
         concurrency between bodies, so running them on the caller is
         observationally equal; the fault hook still fires once, like
         the single task a [threads:1] region would run. *)
      (match Fault.on_task () with
      | () ->
        for i = lo to hi - 1 do
          try f i with e -> push e
        done
      | exception e -> push e)
    end
    else begin
      let next = Atomic.make lo in
      let body () =
        let rec grab () =
          let start = Atomic.fetch_and_add next chunk in
          if start < hi then begin
            let stop = min hi (start + chunk) in
            for i = start to stop - 1 do
              try f i with e -> push e
            done;
            grab ()
          end
        in
        grab ()
      in
      run t (fun spawn ->
          for _ = 2 to t.n do
            spawn body
          done;
          body ())
    end;
    raise_failures (List.rev (Atomic.get errs))
  end

let parallel_for_reduce t ?chunk lo hi ~init ~map ~combine =
  (* one heap-allocated ref per worker: each accumulator lives in its own
     block, so workers never write adjacent words of a shared array (the
     false-sharing trap of packing partials into one flat array) *)
  let partials = Array.init t.n (fun _ -> ref init) in
  parallel_for t ?chunk lo hi (fun i ->
      let r = partials.(worker_index ()) in
      r := combine !r (map i));
  Array.fold_left (fun acc r -> combine acc !r) init partials

let parallel_iter_list t xs f =
  let arr = Array.of_list xs in
  parallel_for t 0 (Array.length arr) (fun i -> f arr.(i))
