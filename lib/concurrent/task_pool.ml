(* Scheduler counters are per-pool (cumulative across the pool's
   regions), never process-global: two pools running concurrently each
   count their own steals, and resetting one harness's pool cannot
   clobber numbers out from under another run mid-flight — the race the
   old module-level atomics had. Bench harnesses snapshot-diff them
   around a run. *)
type t = {
  n : int;
  steals_ctr : int Atomic.t;
  steal_attempts_ctr : int Atomic.t;
  idle_sleeps_ctr : int Atomic.t;
  active : region list Atomic.t;
      (* every submitted-but-not-yet-retired region, newest first; workers
         scan it to find cross-region work in priority order *)
  next_rid : int Atomic.t;
}

and region = {
  rid : int; (* registration order: the priority tie-break *)
  prio : int;
  deques : (unit -> unit) Wsdeque.t array;
  pending : int Atomic.t; (* spawned-but-unfinished tasks *)
  failures : exn list Atomic.t;
  pool : t; (* owning pool: regions bump its counters *)
}

let create ~threads =
  if threads < 1 then invalid_arg "Task_pool.create: threads must be >= 1";
  {
    n = threads;
    steals_ctr = Atomic.make 0;
    steal_attempts_ctr = Atomic.make 0;
    idle_sleeps_ctr = Atomic.make 0;
    active = Atomic.make [];
    next_rid = Atomic.make 0;
  }

let threads t = t.n

type pool_stats = { steals : int; steal_attempts : int; idle_sleeps : int }

let stats t =
  {
    steals = Atomic.get t.steals_ctr;
    steal_attempts = Atomic.get t.steal_attempts_ctr;
    idle_sleeps = Atomic.get t.idle_sleeps_ctr;
  }

let diff_stats ~before ~after =
  {
    steals = after.steals - before.steals;
    steal_attempts = after.steal_attempts - before.steal_attempts;
    idle_sleeps = after.idle_sleeps - before.idle_sleeps;
  }

let reset_stats t =
  Atomic.set t.steals_ctr 0;
  Atomic.set t.steal_attempts_ctr 0;
  Atomic.set t.idle_sleeps_ctr 0

exception Task_failures of exn list

let rec push_failure region e =
  let cur = Atomic.get region.failures in
  if not (Atomic.compare_and_set region.failures cur (e :: cur)) then
    push_failure region e

let rec register t region =
  let cur = Atomic.get t.active in
  if not (Atomic.compare_and_set t.active cur (region :: cur)) then
    register t region

let rec deregister t region =
  let cur = Atomic.get t.active in
  let next = List.filter (fun r -> r != region) cur in
  if not (Atomic.compare_and_set t.active cur next) then deregister t region

(* Worker slot of the current domain: the region id it belongs to and its
   deque index there. A domain executing a *foreign* region's task keeps
   its home slot — any index is a valid push target because [Wsdeque] is
   internally locked, so spawns from foreign executors need no special
   routing. *)
let slot_key : (int * int) Domain.DLS.key = Domain.DLS.new_key (fun () -> (-1, 0))

let worker_index () = snd (Domain.DLS.get slot_key)

let spawn_in region task =
  let me = worker_index () in
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(me mod Array.length region.deques) task

let run_task region task =
  (* A crashing task must not wedge the region: every failure (including a
     fault injected by [Fault.on_task]) is collected, the pending count
     still drops, and every sibling still runs. Failures land in the
     *owning* region no matter which region's worker executed the task,
     keeping fault containment per-region under cross-region stealing. *)
  (match
     Fault.on_task ();
     task ()
   with
  | () -> ()
  | exception e -> push_failure region e);
  Atomic.decr region.pending

(* Steal round-robin over a region's deques, starting after [from]. *)
let steal_from pool region from =
  let n = Array.length region.deques in
  let rec try_steal i =
    if i > n then None
    else begin
      let victim = (from + i) mod n in
      ignore (Atomic.fetch_and_add pool.steal_attempts_ctr 1);
      match Wsdeque.steal region.deques.(victim) with
      | Some _ as t ->
        ignore (Atomic.fetch_and_add pool.steals_ctr 1);
        t
      | None -> try_steal (i + 1)
    end
  in
  try_steal 1

(* Cross-region work: the highest-priority active region other than
   [home] that still has pending work and clears [min_prio]; ties go to
   the earliest-registered region so two equal-priority regions drain in
   submission order rather than ping-ponging. *)
let foreign_regions home ~min_prio =
  match Atomic.get home.pool.active with
  | [] | [ _ ] -> [] (* nothing but (at most) the home region *)
  | regs ->
    List.filter
      (fun r -> r != home && r.prio >= min_prio && Atomic.get r.pending > 0)
      regs
    |> List.sort (fun a b ->
           if a.prio <> b.prio then compare b.prio a.prio
           else compare a.rid b.rid)

(* Find work for a worker whose home region is [home]:
   1. any *strictly higher-priority* foreign region first — this is what
      makes a priority region drain before already-running lower-priority
      work, since every worker in the pool flocks to it;
   2. the home deques (own pop, then round-robin steal);
   3. foreign regions down to [min_prio] (equal-priority mutual help for
      helpers; masters set [min_prio] above their own priority so an
      [await] never wedges inside an unrelated long-running task). *)
let find_work home me ~min_prio =
  let try_region r =
    match steal_from home.pool r me with
    | Some task -> Some (r, task)
    | None -> None
  in
  let rec first = function
    | [] -> None
    | r :: rest -> (match try_region r with Some _ as x -> x | None -> first rest)
  in
  let foreign = foreign_regions home ~min_prio in
  let higher, rest = List.partition (fun r -> r.prio > home.prio) foreign in
  match first higher with
  | Some _ as x -> x
  | None -> (
    match Wsdeque.pop home.deques.(me) with
    | Some task -> Some (home, task)
    | None -> (
      match steal_from home.pool home me with
      | Some task -> Some (home, task)
      | None -> first rest))

(* Idle back-off: spin briefly (work usually reappears within a few steal
   attempts), then sleep with exponentially growing, capped pauses so an
   idle worker neither burns a shared core nor adds fixed 200 us latency
   the moment the deques run momentarily dry. *)
let spin_limit = 64
let sleep_base = 2e-6
let sleep_cap = 2e-4

(* Work until [region] has drained. [min_prio] bounds which foreign
   regions this worker may help (see [find_work]). The home slot is
   saved/restored so a task that opens a nested region returns to its
   outer slot. *)
let worker_loop region me ~min_prio =
  let saved = Domain.DLS.get slot_key in
  Domain.DLS.set slot_key (region.rid, me);
  let idle_spins = ref 0 in
  let rec loop () =
    if Atomic.get region.pending = 0 then ()
    else
      match find_work region me ~min_prio with
      | Some (owner, task) ->
        idle_spins := 0;
        run_task owner task;
        loop ()
      | None ->
        incr idle_spins;
        if !idle_spins > spin_limit then begin
          ignore (Atomic.fetch_and_add region.pool.idle_sleeps_ctr 1);
          let exp = min (!idle_spins - spin_limit) 7 in
          Unix.sleepf (Float.min sleep_cap (sleep_base *. float_of_int (1 lsl exp)))
        end
        else Domain.cpu_relax ();
        loop ()
  in
  loop ();
  Domain.DLS.set slot_key saved

type handle = { region : region; helpers : unit Domain.t array }

let submit ?(priority = 0) t root =
  let region =
    {
      rid = Atomic.fetch_and_add t.next_rid 1;
      prio = priority;
      deques = Array.init t.n (fun _ -> Wsdeque.create ());
      pending = Atomic.make 0;
      failures = Atomic.make [];
      pool = t;
    }
  in
  register t region;
  Atomic.incr region.pending;
  Wsdeque.push region.deques.(0) (fun () -> root (spawn_in region));
  let helpers =
    Array.init (t.n - 1) (fun i ->
        Domain.spawn (fun () ->
            worker_loop region (i + 1) ~min_prio:region.prio))
  in
  { region; helpers }

let await_collect h =
  let region = h.region in
  (* the master only helps regions of strictly higher priority than its
     own: picking up an arbitrary sibling task (say, a channel consumer
     loop that blocks until close) could wedge the await indefinitely *)
  worker_loop region 0 ~min_prio:(region.prio + 1);
  Array.iter Domain.join h.helpers;
  deregister region.pool region;
  List.rev (Atomic.get region.failures)

let raise_failures = function
  | [] -> ()
  | [ e ] -> raise e
  | es -> raise (Task_failures es)

let await h = raise_failures (await_collect h)
let run_collect ?priority t root = await_collect (submit ?priority t root)
let run ?priority t root = raise_failures (run_collect ?priority t root)

(* Sampled once: the machine's core count does not change mid-process,
   and [parallel_for] consults it on every call. *)
let hw_cores = Domain.recommended_domain_count ()

let parallel_for t ?chunk lo hi f =
  if hi > lo then begin
    let count = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (count / (t.n * 8))
    in
    (* Per-index containment: an [f i] that raises must not take the rest
       of its chunk (or its worker's whole grab loop) down with it — every
       other index is still visited, and all failures are reported. *)
    let errs = Atomic.make [] in
    let rec push e =
      let cur = Atomic.get errs in
      if not (Atomic.compare_and_set errs cur (e :: cur)) then push e
    in
    if t.n = 1 || count <= chunk || hw_cores = 1 then begin
      (* Inline fast path: a single worker would execute every index
         anyway (one thread, one chunk, or one hardware core), so skip
         the region entirely — spawning and joining [t.n - 1] domains
         costs milliseconds per call on a loaded single-core box, which
         is exactly the finalize bottleneck. [parallel_for] promises no
         concurrency between bodies, so running them on the caller is
         observationally equal; the fault hook still fires once, like
         the single task a [threads:1] region would run. *)
      (match Fault.on_task () with
      | () ->
        for i = lo to hi - 1 do
          try f i with e -> push e
        done
      | exception e -> push e)
    end
    else begin
      let next = Atomic.make lo in
      let body () =
        let rec grab () =
          let start = Atomic.fetch_and_add next chunk in
          if start < hi then begin
            let stop = min hi (start + chunk) in
            for i = start to stop - 1 do
              try f i with e -> push e
            done;
            grab ()
          end
        in
        grab ()
      in
      run t (fun spawn ->
          for _ = 2 to t.n do
            spawn body
          done;
          body ())
    end;
    raise_failures (List.rev (Atomic.get errs))
  end

let parallel_for_reduce t ?chunk lo hi ~init ~map ~combine =
  (* one heap-allocated ref per worker: each accumulator lives in its own
     block, so workers never write adjacent words of a shared array (the
     false-sharing trap of packing partials into one flat array).
     Accumulator slots are claimed from an atomic ticket rather than
     [worker_index]: under cross-region stealing a foreign helper can
     share a deque index with a native worker, and two bodies indexing
     partials by slot would race. *)
  if hi <= lo then init
  else begin
    let count = hi - lo in
    let chunk =
      match chunk with
      | Some c -> max 1 c
      | None -> max 1 (count / (t.n * 8))
    in
    let partials = Array.init t.n (fun _ -> ref init) in
    let ticket = Atomic.make 0 in
    let errs = Atomic.make [] in
    let rec push e =
      let cur = Atomic.get errs in
      if not (Atomic.compare_and_set errs cur (e :: cur)) then push e
    in
    let next = Atomic.make lo in
    let body () =
      let acc = partials.(Atomic.fetch_and_add ticket 1) in
      let rec grab () =
        let start = Atomic.fetch_and_add next chunk in
        if start < hi then begin
          let stop = min hi (start + chunk) in
          for i = start to stop - 1 do
            try acc := combine !acc (map i) with e -> push e
          done;
          grab ()
        end
      in
      grab ()
    in
    if t.n = 1 || count <= chunk || hw_cores = 1 then begin
      (match Fault.on_task () with
      | () -> body ()
      | exception e -> push e)
    end
    else
      run t (fun spawn ->
          for _ = 2 to t.n do
            spawn body
          done;
          body ());
    raise_failures (List.rev (Atomic.get errs));
    Array.fold_left (fun acc r -> combine acc !r) init partials
  end

let parallel_iter_list t xs f =
  let arr = Array.of_list xs in
  parallel_for t 0 (Array.length arr) (fun i -> f arr.(i))
