(** Deterministic fault injection for the task runtime.

    While armed, {!Task_pool} consults this module at the start of every
    task execution. The task whose process-wide ordinal (0-based, counted
    from arming) is in the armed set suffers the configured fault:

    - [Raise] — the task dies with {!Injected}; the pool must collect the
      exception and still drain the region.
    - [Delay d] — the task is stalled for [d] seconds before running,
      exercising deadline budgets.
    - [Starve] — analysis budgets collapse to 1 from this point on
      (consumers read {!starved}), forcing degradation paths.
    - [Crash] — the task dies with {!Injected} AND a process-wide crash
      flag is latched; the driver checks {!check_crash} at its next
      quiescent point and aborts with {!Crashed}, simulating a kill
      between two journal commits.

    With a single-threaded pool, task execution order — and therefore which
    logical task is hit — is fully deterministic; with more threads the
    ordinal is still deterministic in count but maps to whichever task a
    worker picked up Nth. Tests arm, run, assert, then {!disarm} in a
    [Fun.protect] finalizer so no state leaks between cases. *)

type mode = Raise | Delay of float | Starve | Crash

(** Service-layer fault points (PR8), injected per {e request} by the
    bserve daemon rather than per task by the pool:

    - [Kill_worker k] — the first [k] supervised attempts at the request
      die as if the worker crashed mid-request; with [k] larger than the
      daemon's retry budget the request must end in a structured failure
      reply, never a daemon crash.
    - [Torn_reply] — the daemon truncates its reply frame partway,
      exercising the client's torn-frame handling.
    - [Stall d] — the daemon stalls [d] seconds before replying,
      exercising client timeouts and queue backpressure.
    - [Cache_rot] — the request's cached checkpoint artifact is
      corrupted before lookup; the daemon must serve it as a miss. *)
type service =
  | Kill_worker of int
  | Torn_reply
  | Stall of float
  | Cache_rot

exception Injected of int
(** Carries the ordinal of the murdered task. *)

exception Crashed of int
(** Raised by {!check_crash} on the driver once a [Crash] fault has fired;
    carries the faulting ordinal. The run must abandon in-flight work
    without flushing its journal — exactly what a [kill -9] would do. *)

val arm_at : int list -> mode -> unit
(** Fault exactly the given task ordinals (resets the ordinal counter). *)

val arm : seed:int -> n:int -> window:int -> mode -> unit
(** Seed-driven: fault [n] distinct ordinals drawn uniformly from
    [\[0, window)]. The same seed always picks the same ordinals. *)

val disarm : unit -> unit
(** Clear the plan, the ordinal counter, the starvation flag and the
    injection count. *)

val armed : unit -> bool

val on_task : unit -> unit
(** Called by the pool before each task body. May raise {!Injected}. *)

val starved : unit -> bool
(** True once a [Starve] fault has fired. Budget consumers treat their
    limit as 1 while set. *)

val injected_count : unit -> int
(** Faults fired since arming. *)

val crash_pending : unit -> bool
(** True once a [Crash] fault has fired and has not yet been consumed. *)

val check_crash : unit -> unit
(** Consume a pending crash: raises {!Crashed} if one fired, else no-op.
    Drivers call this at quiescent points, {e before} committing state. *)

(** {2 Service-layer plan}

    Independent of the task plan: arming one never perturbs the other,
    and {!disarm} does not clear the service plan (use
    {!disarm_service}). [Delay] faults and supervisor backoffs are
    accounted on the monotonic {!Pbca_obs.Clock}, so injected service
    stalls line up with trace spans. *)

val arm_service_at : (int * service) list -> unit
(** Fault exactly the given request ordinals (resets the request
    counter). *)

val arm_service : seed:int -> n:int -> window:int -> service list -> unit
(** Seed-driven: fault [n] distinct request ordinals drawn uniformly
    from [\[0, window)], each assigned a fault from [services] by the
    same deterministic stream. The same seed always builds the same
    plan. *)

val disarm_service : unit -> unit
val service_armed : unit -> bool

val service_next : unit -> service option
(** Called by the daemon once per admitted work request; returns the
    fault planned for this request ordinal, if any. *)

val service_injected_count : unit -> int
(** Service faults drawn since arming. *)
