(** Work-stealing task pool over OCaml domains.

    The paper's implementation moved from OpenMP parallel-for loops to OpenMP
    tasks so that a newly discovered function starts being analyzed
    immediately instead of waiting for the current loop to drain (Section
    6.3). This pool provides the same model: a parallel region in which any
    task may [spawn] further tasks, with per-worker deques and random
    stealing for load balance. The region ends when every transitively
    spawned task has completed.

    A pool with [threads = 1] executes everything on the calling domain with
    no domains spawned, which serves as the serial baseline configuration.

    Regions must not be nested. *)

type t

(** [create ~threads] builds a pool descriptor. [threads] counts the calling
    domain, so [threads = 4] spawns 3 additional domains per region. *)
val create : threads:int -> t

val threads : t -> int

exception Task_failures of exn list
(** Raised when more than one task of a region failed; carries every
    collected exception in roughly completion order. A single failure is
    re-raised as itself. *)

(** [run t root] opens a parallel region. [root] receives [spawn], which may
    be called from any task in the region to add work. [run] returns when the
    root and all spawned tasks have finished. A crashing task never wedges
    the region: every sibling still runs, the region always drains, and
    all collected exceptions are re-raised afterwards (one failure as
    itself, several as {!Task_failures}). While {!Fault} is armed, each
    task execution first passes through [Fault.on_task]. *)
val run : t -> (((unit -> unit) -> unit) -> unit) -> unit

(** [run_collect t root] is [run] but returns the collected task failures
    instead of raising, for callers that degrade gracefully (the parallel
    parser records them as [Task_failed] diagnostics and keeps the partial
    CFG). *)
val run_collect : t -> (((unit -> unit) -> unit) -> unit) -> exn list

(** [parallel_for t ?chunk lo hi f] applies [f] to every [i] in [lo, hi)
    using dynamic (guided-by-chunk) scheduling, as in
    [#pragma omp parallel for schedule(dynamic)] of paper Listing 7.
    A raising [f i] does not prevent any other index from being visited;
    failures are re-raised after the loop completes (several as
    {!Task_failures}).

    When a parallel region cannot help — one pool thread, one chunk's
    worth of indices, or one hardware core — the loop runs inline on the
    calling domain with no region opened. [parallel_for] promises no
    concurrency between bodies, so this is observationally equal, and it
    removes the domain spawn/join cost (milliseconds on a single-core
    host) from small or unparallelizable loops. The inline path still
    passes through [Fault.on_task] exactly once, like the one task a
    [threads:1] region would run. *)
val parallel_for : t -> ?chunk:int -> int -> int -> (int -> unit) -> unit

(** [parallel_for_reduce t ?chunk lo hi ~init ~map ~combine] folds [map i]
    over the index space; per-worker partial results are combined with
    [combine] (order unspecified, so [combine] should be associative and
    commutative up to the caller's needs). *)
val parallel_for_reduce :
  t ->
  ?chunk:int ->
  int ->
  int ->
  init:'b ->
  map:(int -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'b

(** [parallel_iter_list t xs f] applies [f] to each element of [xs] as
    separate tasks. *)
val parallel_iter_list : t -> 'a list -> ('a -> unit) -> unit

(** [worker_index ()] is the caller's worker slot in the current region
    (0 for the master), or 0 outside any region. Useful for per-worker
    accumulators. *)
val worker_index : unit -> int

(** Cumulative scheduler counters, scoped to one pool (summed over its
    regions): steals (successful / attempted) and idle back-off sleeps
    taken by workers that found their own deque and every victim empty.
    Idle workers back off exponentially (spin, then sleeps doubling from
    2 us up to a 200 us cap), so [idle_sleeps] is a direct measure of
    starvation. Per-pool scoping means concurrent pools never mix their
    numbers and [reset_stats] cannot clobber another run's counters —
    the race the old process-global counters had. For per-run numbers
    without resetting, snapshot [stats] around the run and use
    {!diff_stats}. *)

type pool_stats = { steals : int; steal_attempts : int; idle_sleeps : int }

val stats : t -> pool_stats
val diff_stats : before:pool_stats -> after:pool_stats -> pool_stats
val reset_stats : t -> unit
