(** Work-stealing task pool over OCaml domains.

    The paper's implementation moved from OpenMP parallel-for loops to OpenMP
    tasks so that a newly discovered function starts being analyzed
    immediately instead of waiting for the current loop to drain (Section
    6.3). This pool provides the same model: a parallel region in which any
    task may [spawn] further tasks, with per-worker deques and round-robin
    stealing for load balance. The region ends when every transitively
    spawned task has completed.

    A pool with [threads = 1] executes everything on the calling domain with
    no domains spawned, which serves as the serial baseline configuration.

    {2 Multiple concurrent regions and priorities}

    A pool may have several regions in flight at once: {!submit} opens a
    region without blocking and returns a handle; {!await} drains it. Every
    worker in the pool — whichever region it was spawned for — always
    prefers work from the {e highest-priority} active region, so a
    high-priority region submitted while lower-priority work is running
    drains first. Beyond that, a region's helpers may pick up work from
    other regions of equal or higher priority when their own deques run
    dry, and the domain blocked in [await] helps only regions of strictly
    higher priority than the awaited one (so an [await] can never wedge
    inside an unrelated long-running task, e.g. a channel consumer loop
    that only exits on close). Give such never-draining consumer regions
    the lowest priority in the pipeline and nothing else will wander into
    them.

    Fault containment stays per-region under cross-region stealing: a
    failure is recorded in the region that {e owns} the task, not the
    region whose worker happened to execute it.

    Regions may also nest: a task may call {!run}, which opens and drains
    an inner region; the worker's slot is restored when the inner region
    completes. *)

type t

(** [create ~threads] builds a pool descriptor. [threads] counts the calling
    domain, so [threads = 4] spawns 3 additional domains per region. *)
val create : threads:int -> t

val threads : t -> int

exception Task_failures of exn list
(** Raised when more than one task of a region failed; carries every
    collected exception in roughly completion order. A single failure is
    re-raised as itself. *)

type handle
(** An in-flight region opened by {!submit}. Every handle must be awaited
    exactly once: [await] is what joins the region's helper domains and
    retires it from the pool's active set. *)

(** [submit ?priority t root] opens a parallel region and returns without
    waiting for it: [root] receives [spawn], which may be called from any
    task in the region to add work, and the region's helper domains start
    immediately. Higher [priority] (default 0) regions are preferred by
    every worker in the pool. *)
val submit : ?priority:int -> t -> (((unit -> unit) -> unit) -> unit) -> handle

(** [await h] works on the region (and any strictly higher-priority ones)
    until every transitively spawned task has completed, then joins its
    helpers and re-raises collected failures (one as itself, several as
    {!Task_failures}). *)
val await : handle -> unit

(** [await_collect h] is {!await} but returns the collected failures
    instead of raising. *)
val await_collect : handle -> exn list

(** [run t root] opens a parallel region and drains it: equivalent to
    [await (submit ?priority t root)]. A crashing task never wedges the
    region: every sibling still runs, the region always drains, and all
    collected exceptions are re-raised afterwards. While {!Fault} is
    armed, each task execution first passes through [Fault.on_task]. *)
val run : ?priority:int -> t -> (((unit -> unit) -> unit) -> unit) -> unit

(** [run_collect t root] is [run] but returns the collected task failures
    instead of raising, for callers that degrade gracefully (the parallel
    parser records them as [Task_failed] diagnostics and keeps the partial
    CFG). *)
val run_collect :
  ?priority:int -> t -> (((unit -> unit) -> unit) -> unit) -> exn list

(** [parallel_for t ?chunk lo hi f] applies [f] to every [i] in [lo, hi)
    using dynamic (guided-by-chunk) scheduling, as in
    [#pragma omp parallel for schedule(dynamic)] of paper Listing 7.
    A raising [f i] does not prevent any other index from being visited;
    failures are re-raised after the loop completes (several as
    {!Task_failures}).

    When a parallel region cannot help — one pool thread, one chunk's
    worth of indices, or one hardware core — the loop runs inline on the
    calling domain with no region opened. [parallel_for] promises no
    concurrency between bodies, so this is observationally equal, and it
    removes the domain spawn/join cost (milliseconds on a single-core
    host) from small or unparallelizable loops. The inline path still
    passes through [Fault.on_task] exactly once, like the one task a
    [threads:1] region would run. *)
val parallel_for : t -> ?chunk:int -> int -> int -> (int -> unit) -> unit

(** [parallel_for_reduce t ?chunk lo hi ~init ~map ~combine] folds [map i]
    over the index space; per-worker partial results are combined with
    [combine] (order unspecified, so [combine] should be associative and
    commutative up to the caller's needs). Partial accumulators are
    claimed from an atomic ticket, not {!worker_index}, so the reduction
    stays race-free even when cross-region stealing lets a foreign helper
    share a deque index with a native worker. *)
val parallel_for_reduce :
  t ->
  ?chunk:int ->
  int ->
  int ->
  init:'b ->
  map:(int -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'b

(** [parallel_iter_list t xs f] applies [f] to each element of [xs] as
    separate tasks. *)
val parallel_iter_list : t -> 'a list -> ('a -> unit) -> unit

(** [worker_index ()] is the caller's worker slot in its home region
    (0 for a region master, or outside any region). Only unique among the
    workers executing a region's tasks while a single region is active;
    under cross-region stealing a foreign helper can share an index with
    a native worker, so per-worker accumulators keyed by it must tolerate
    that (or use {!parallel_for_reduce}, which does not rely on it). *)
val worker_index : unit -> int

(** Cumulative scheduler counters, scoped to one pool (summed over its
    regions): steals (successful / attempted) and idle back-off sleeps
    taken by workers that found their own deque and every victim empty.
    Idle workers back off exponentially (spin, then sleeps doubling from
    2 us up to a 200 us cap), so [idle_sleeps] is a direct measure of
    starvation. Per-pool scoping means concurrent pools never mix their
    numbers and [reset_stats] cannot clobber another run's counters —
    the race the old process-global counters had. For per-run numbers
    without resetting, snapshot [stats] around the run and use
    {!diff_stats}. *)

type pool_stats = { steals : int; steal_attempts : int; idle_sleeps : int }

val stats : t -> pool_stats
val diff_stats : before:pool_stats -> after:pool_stats -> pool_stats
val reset_stats : t -> unit
