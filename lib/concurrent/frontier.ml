(* Fixed-capacity concurrent int buffer: one fetch-and-add per push, plain
   writes to distinct slots. See the .mli for the quiescence contract. *)

type t = { buf : int array; len : int Atomic.t }

let create ~capacity = { buf = Array.make (max 1 capacity) 0; len = Atomic.make 0 }

let push t v =
  let i = Atomic.fetch_and_add t.len 1 in
  if i >= Array.length t.buf then
    invalid_arg "Frontier.push: capacity exceeded (caller dedup broken)";
  t.buf.(i) <- v

let length t = Atomic.get t.len
let is_empty t = Atomic.get t.len = 0

let get t i =
  if i < 0 || i >= Atomic.get t.len then invalid_arg "Frontier.get";
  t.buf.(i)

let clear t = Atomic.set t.len 0
