(* Grow-only concurrent set of non-negative ints: open addressing over an
   array of int Atomics, CAS insertion, freeze-based resize. See the .mli. *)

let empty = -1
let frozen = -2

type table = { slots : int Atomic.t array; mask : int }

type t = {
  tbl : table Atomic.t;
  size : int Atomic.t;
  resizing : bool Atomic.t;
  c : Contention.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let mk_table n =
  let n = next_pow2 (max 8 n) in
  { slots = Array.init n (fun _ -> Atomic.make empty); mask = n - 1 }

let create ?(capacity = 32) ?counters () =
  {
    tbl = Atomic.make (mk_table capacity);
    size = Atomic.make 0;
    resizing = Atomic.make false;
    c = (match counters with Some c -> c | None -> Contention.create ());
  }

let counters t = t.c

(* Fibonacci-style scramble: keys are addresses with aligned low bits. *)
let hash k = (k * 0x9E3779B1) lxor (k lsr 16)

let wait_resize t old =
  let spins = ref 0 in
  while Atomic.get t.tbl == old do
    incr spins;
    ignore (Atomic.fetch_and_add t.c.Contention.frozen_waits 1);
    if !spins > 1024 then Unix.sleepf 5e-5 else Domain.cpu_relax ()
  done

(* Occupied slots are immutable forever (the set only grows), so a resize
   only needs to freeze the EMPTY slots: a frozen-empty slot turns writers
   away while readers keep treating it as a probe terminator. *)
let resize t old =
  if Atomic.compare_and_set t.resizing false true then begin
    if Atomic.get t.tbl == old then begin
      ignore (Atomic.fetch_and_add t.c.Contention.resizes 1);
      let nt = mk_table (2 * Array.length old.slots) in
      Array.iter
        (fun cell ->
          let rec grab () =
            let v = Atomic.get cell in
            if v = empty then
              if Atomic.compare_and_set cell empty frozen then ()
              else grab ()
            else if v <> frozen then begin
              (* private insert into the unpublished table *)
              let rec put i =
                let dst = nt.slots.(i) in
                if Atomic.get dst = empty then Atomic.set dst v
                else put ((i + 1) land nt.mask)
              in
              put (hash v land nt.mask)
            end
          in
          grab ())
        old.slots;
      Atomic.set t.tbl nt
    end;
    Atomic.set t.resizing false
  end

let maybe_resize t =
  let tbl = Atomic.get t.tbl in
  (* resize at 1/2 load to keep linear-probe chains short *)
  if 2 * Atomic.get t.size > Array.length tbl.slots then resize t tbl

let rec add t k =
  if k < 0 then invalid_arg "Atomic_intset.add: negative key";
  let tbl = Atomic.get t.tbl in
  let rec probe i steps =
    let cell = tbl.slots.(i) in
    let v = Atomic.get cell in
    if steps > tbl.mask + 1 then begin
      (* racing inserters filled every slot before the elected resizer froze
         any: the table is 100% occupied and a cyclic probe would never
         terminate. Force the resize through and retry in the new table. *)
      resize t tbl;
      if Atomic.get t.tbl == tbl then wait_resize t tbl;
      add t k
    end
    else if v = k then begin
      if steps > 1 then
        ignore (Atomic.fetch_and_add t.c.Contention.probes (steps - 1));
      false
    end
    else if v = empty then
      if Atomic.compare_and_set cell empty k then begin
        ignore (Atomic.fetch_and_add t.size 1);
        maybe_resize t;
        true
      end
      else begin
        (* slot was taken under us: maybe by this very key *)
        ignore (Atomic.fetch_and_add t.c.Contention.cas_retries 1);
        probe i steps
      end
    else if v = frozen then begin
      wait_resize t tbl;
      add t k
    end
    else probe ((i + 1) land tbl.mask) (steps + 1)
  in
  probe (hash k land tbl.mask) 1

let mem t k =
  if k < 0 then false
  else begin
    let tbl = Atomic.get t.tbl in
    let rec probe i steps =
      let v = Atomic.get tbl.slots.(i) in
      if steps > tbl.mask + 1 then begin
        (* full cyclic scan without finding [k]: absent (momentarily full
           table, see [add]) *)
        ignore (Atomic.fetch_and_add t.c.Contention.probes (steps - 1));
        false
      end
      else if v = k then begin
        if steps > 1 then
          ignore (Atomic.fetch_and_add t.c.Contention.probes (steps - 1));
        true
      end
      else if v = empty || v = frozen then begin
        if steps > 1 then
          ignore (Atomic.fetch_and_add t.c.Contention.probes (steps - 1));
        false
      end
      else probe ((i + 1) land tbl.mask) (steps + 1)
    in
    probe (hash k land tbl.mask) 1
  end

let cardinal t = Atomic.get t.size

let iter f t =
  Array.iter
    (fun cell ->
      let v = Atomic.get cell in
      if v >= 0 then f v)
    (Atomic.get t.tbl).slots

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  !acc
