(** Bounded multi-producer / multi-consumer channel.

    The conveyor belt of the streaming pipeline (PR7): the CFG finalizer
    publishes each function the moment its facts are settled, and the
    skeleton-fill / feature-extraction consumers take them concurrently,
    instead of the phases meeting at a full barrier. One mutex and two
    condition variables — item rates are per-function (thousands per run,
    not millions), so a lock-free ring would buy nothing measurable here,
    and the mutex gives exact occupancy accounting for free.

    Invariants:
    - [send] blocks while the channel holds [capacity] items; the bound is
      what keeps a fast producer from buffering the whole graph and
      re-creating the barrier it was supposed to remove.
    - [recv] blocks while the channel is empty and open; after {!close} it
      drains the remaining items in FIFO order, then returns [None].
    - [close] wakes every blocked party: blocked producers raise {!Closed}
      (the value was not delivered), blocked consumers drain and finish.
    - Items are delivered exactly once, in FIFO order across any number of
      producers and consumers (single-lock linearization).

    Occupancy instrumentation (the PR7 tuning substrate): the depth
    high-water mark, cumulative producer block / consumer idle walls, and
    send/receive counts. When built with a live {!Pbca_obs.Trace}, each
    contiguous blocked wait is also recorded as a ["channel"]-phase span
    — producer spans mean the consumer side is the bottleneck, and vice
    versa. *)

type 'a t

exception Closed
(** Raised by [send]/[try_send] on a closed channel — including a [send]
    that was blocked on a full channel when {!close} arrived (the value
    was not delivered). *)

val create :
  ?otrace:Pbca_obs.Trace.t -> ?name:string -> capacity:int -> unit -> 'a t
(** [capacity] must be [>= 1]. [name] prefixes the trace span labels. *)

val capacity : 'a t -> int

val send : 'a t -> 'a -> unit
(** Blocks while full. @raise Closed if the channel is (or becomes)
    closed before the value is enqueued. *)

val try_send : 'a t -> 'a -> bool
(** [false] when full, without blocking. @raise Closed when closed. *)

val recv : 'a t -> 'a option
(** Blocks while empty and open; [None] once the channel is closed and
    drained. *)

val try_recv : 'a t -> [ `Item of 'a | `Empty | `Closed ]
(** Non-blocking: [`Empty] means open-but-empty (worth retrying),
    [`Closed] means closed and drained (stop). *)

val close : 'a t -> unit
(** Idempotent. Wakes all blocked producers and consumers. *)

val is_closed : 'a t -> bool
val length : 'a t -> int

(** {2 Occupancy} *)

val high_water : 'a t -> int
(** Maximum queue depth ever reached. [high_water = capacity] means the
    producer hit the bound (consumers were the bottleneck). *)

val producer_block_wall : 'a t -> float
(** Cumulative seconds producers spent blocked on a full channel. *)

val consumer_idle_wall : 'a t -> float
(** Cumulative seconds consumers spent blocked on an empty channel. *)

val sent : 'a t -> int
val received : 'a t -> int
