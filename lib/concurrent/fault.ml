type mode = Raise | Delay of float | Starve | Crash

type service =
  | Kill_worker of int
  | Torn_reply
  | Stall of float
  | Cache_rot

exception Injected of int
exception Crashed of int

type plan = { ordinals : (int, unit) Hashtbl.t; mode : mode }

(* Process-wide armed state. The ordinal table is built once at arm time and
   only read afterwards, so concurrent [Hashtbl.mem] from worker domains is
   safe. *)
let plan : plan option Atomic.t = Atomic.make None
let counter = Atomic.make 0
let starved_flag = Atomic.make false
let injected = Atomic.make 0

(* Set when a [Crash] ordinal fires inside a worker task. The worker itself
   dies with [Injected] (contained by Task_pool); the master observes the
   flag at the next quiescent point and aborts the whole run with [Crashed],
   simulating a process kill between two journal commits. *)
let crash_flag = Atomic.make (-1)

let disarm () =
  Atomic.set plan None;
  Atomic.set counter 0;
  Atomic.set starved_flag false;
  Atomic.set injected 0;
  Atomic.set crash_flag (-1)

let armed () = Atomic.get plan <> None

let arm_at ordinals mode =
  disarm ();
  let h = Hashtbl.create 8 in
  List.iter (fun o -> Hashtbl.replace h o ()) ordinals;
  Atomic.set plan (Some { ordinals = h; mode })

(* SplitMix64-style stream: the same seed always selects the same ordinals,
   so an injected-fault run is reproducible bit for bit. *)
let splitmix seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    (* mask into OCaml's non-negative int range: a 63-bit wrap in
       [Int64.to_int] would make [next () mod window] negative, arming
       ordinals that can never fire *)
    Int64.to_int (Int64.logxor z (Int64.shift_right_logical z 31)) land max_int

let pick_ordinals ~next ~n ~window =
  let h = Hashtbl.create 8 in
  let rec pick k =
    if k > 0 then begin
      let o = next () mod window in
      if Hashtbl.mem h o then pick k
      else begin
        Hashtbl.replace h o ();
        pick (k - 1)
      end
    end
  in
  pick (min n window);
  h

let arm ~seed ~n ~window mode =
  if window <= 0 then invalid_arg "Fault.arm: window must be positive";
  let next = splitmix seed in
  let h = pick_ordinals ~next ~n ~window in
  disarm ();
  Atomic.set plan (Some { ordinals = h; mode })

let starved () = Atomic.get starved_flag
let injected_count () = Atomic.get injected
let crash_pending () = Atomic.get crash_flag >= 0

let check_crash () =
  let k = Atomic.get crash_flag in
  if k >= 0 then begin
    Atomic.set crash_flag (-1);
    raise (Crashed k)
  end

(* The injected delay is accounted on the monotonic [Obs.Clock] — the same
   clock every trace span and deadline uses — so a [Delay d] fault shows up
   as >= d of span wall, even when [Unix.sleepf] returns early (EINTR, or a
   wall-clock step under the gettimeofday fallback). Under a frozen fake
   clock the loop degenerates to one plain sleep (the deadline would never
   arrive on the fake timeline). *)
let delay_monotonic d =
  if Pbca_obs.Clock.is_fake () then Unix.sleepf d
  else begin
    let t0 = Pbca_obs.Clock.now () in
    let rec wait () =
      let remaining = d -. Pbca_obs.Clock.elapsed t0 in
      if remaining > 0.0 then begin
        Unix.sleepf remaining;
        wait ()
      end
    in
    wait ()
  end

let on_task () =
  match Atomic.get plan with
  | None -> ()
  | Some p ->
    let k = Atomic.fetch_and_add counter 1 in
    if Hashtbl.mem p.ordinals k then begin
      Atomic.incr injected;
      match p.mode with
      | Raise -> raise (Injected k)
      | Delay d -> delay_monotonic d
      | Starve -> Atomic.set starved_flag true
      | Crash ->
        Atomic.set crash_flag k;
        raise (Injected k)
    end

(* ------------------------------------------------------------------ *)
(* Service-layer fault points (PR8). A second, independent plan keyed by
   request ordinal instead of task ordinal: the bserve daemon draws one
   lookup per admitted work request and suffers the configured fault at
   the service layer (worker kill, torn reply frame, stalled reply,
   cache-artifact rot). Kept separate from the task plan so arming
   service faults never perturbs task scheduling fault tests and vice
   versa. The table is built at arm time and only read afterwards, so
   concurrent reads from acceptor domains are safe. *)

type service_plan = { s_ordinals : (int, service) Hashtbl.t }

let service_plan : service_plan option Atomic.t = Atomic.make None
let service_counter = Atomic.make 0
let service_injected = Atomic.make 0

let disarm_service () =
  Atomic.set service_plan None;
  Atomic.set service_counter 0;
  Atomic.set service_injected 0

let service_armed () = Atomic.get service_plan <> None

let arm_service_at assoc =
  disarm_service ();
  let h = Hashtbl.create 8 in
  List.iter (fun (o, s) -> Hashtbl.replace h o s) assoc;
  Atomic.set service_plan (Some { s_ordinals = h })

let arm_service ~seed ~n ~window services =
  if window <= 0 then invalid_arg "Fault.arm_service: window must be positive";
  if services = [] then
    invalid_arg "Fault.arm_service: services must be non-empty";
  let next = splitmix seed in
  let ordinals = pick_ordinals ~next ~n ~window in
  let nserv = List.length services in
  let h = Hashtbl.create 8 in
  (* iterate ordinals in sorted order so the ordinal -> service pairing is
     a pure function of the seed, not of hashtable iteration order *)
  Hashtbl.fold (fun o () acc -> o :: acc) ordinals []
  |> List.sort compare
  |> List.iter (fun o -> Hashtbl.replace h o (List.nth services (next () mod nserv)));
  disarm_service ();
  Atomic.set service_plan (Some { s_ordinals = h })

let service_next () =
  match Atomic.get service_plan with
  | None -> None
  | Some p -> (
    let k = Atomic.fetch_and_add service_counter 1 in
    match Hashtbl.find_opt p.s_ordinals k with
    | Some s ->
      Atomic.incr service_injected;
      Some s
    | None -> None)

let service_injected_count () = Atomic.get service_injected
