type mode = Raise | Delay of float | Starve | Crash

exception Injected of int
exception Crashed of int

type plan = { ordinals : (int, unit) Hashtbl.t; mode : mode }

(* Process-wide armed state. The ordinal table is built once at arm time and
   only read afterwards, so concurrent [Hashtbl.mem] from worker domains is
   safe. *)
let plan : plan option Atomic.t = Atomic.make None
let counter = Atomic.make 0
let starved_flag = Atomic.make false
let injected = Atomic.make 0

(* Set when a [Crash] ordinal fires inside a worker task. The worker itself
   dies with [Injected] (contained by Task_pool); the master observes the
   flag at the next quiescent point and aborts the whole run with [Crashed],
   simulating a process kill between two journal commits. *)
let crash_flag = Atomic.make (-1)

let disarm () =
  Atomic.set plan None;
  Atomic.set counter 0;
  Atomic.set starved_flag false;
  Atomic.set injected 0;
  Atomic.set crash_flag (-1)

let armed () = Atomic.get plan <> None

let arm_at ordinals mode =
  disarm ();
  let h = Hashtbl.create 8 in
  List.iter (fun o -> Hashtbl.replace h o ()) ordinals;
  Atomic.set plan (Some { ordinals = h; mode })

(* SplitMix64-style stream: the same seed always selects the same ordinals,
   so an injected-fault run is reproducible bit for bit. *)
let arm ~seed ~n ~window mode =
  if window <= 0 then invalid_arg "Fault.arm: window must be positive";
  let state = ref (Int64.of_int seed) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.to_int (Int64.shift_right_logical (Int64.logxor z (Int64.shift_right_logical z 31)) 1)
  in
  let h = Hashtbl.create 8 in
  let rec pick k =
    if k > 0 then begin
      let o = next () mod window in
      if Hashtbl.mem h o then pick k
      else begin
        Hashtbl.replace h o ();
        pick (k - 1)
      end
    end
  in
  disarm ();
  pick (min n window);
  Atomic.set plan (Some { ordinals = h; mode })

let starved () = Atomic.get starved_flag
let injected_count () = Atomic.get injected
let crash_pending () = Atomic.get crash_flag >= 0

let check_crash () =
  let k = Atomic.get crash_flag in
  if k >= 0 then begin
    Atomic.set crash_flag (-1);
    raise (Crashed k)
  end

let on_task () =
  match Atomic.get plan with
  | None -> ()
  | Some p ->
    let k = Atomic.fetch_and_add counter 1 in
    if Hashtbl.mem p.ordinals k then begin
      Atomic.incr injected;
      match p.mode with
      | Raise -> raise (Injected k)
      | Delay d -> Unix.sleepf d
      | Starve -> Atomic.set starved_flag true
      | Crash ->
        Atomic.set crash_flag k;
        raise (Injected k)
    end
