(** Read-mostly concurrent hash map with wait-free reads.

    A drop-in replacement for {!Conc_hash} on read-dominated workloads. The
    paper's parallel CFG construction queries its address-keyed maps (block
    lookups, end-ownership checks, function lookups) orders of magnitude
    more often than it writes them; under {!Conc_hash} every one of those
    reads takes a shard mutex, re-serializing paths the five invariants
    made commutative. Here the structure is:

    - Buckets are {e immutable} association lists published through an
      [Atomic] cell. [find]/[mem] read one atomic and walk an immutable
      list: wait-free, lock-free, no stores on the hot path (collision
      probes are counted, but a first-cell hit touches no shared counter).
    - Writes ([insert_if_absent], [find_or_insert], [remove]) are a single
      CAS replacing the bucket list, retried on contention. Lists are
      freshly allocated on every change and CAS compares physically, so
      there is no ABA hazard. Failed CAS attempts are counted in the
      {!Contention.t} record.
    - Resize is amortized and freeze-based: one elected resizer CASes every
      bucket to a [Frozen] copy (readers still read frozen buckets —
      reads remain wait-free during migration; writers wait), rehashes
      into a table of twice the capacity and publishes it with one atomic
      store.
    - [update] — the accessor of paper Listing 5, needed only by the
      [ends] map's split protocol — is the single locking operation: a
      striped mutex serializes updates of the same key, the callback runs
      exactly once, and its result is applied by CAS. Reads never touch the
      stripes, so the read path stays lock-free even while a split runs.

    Semantic differences from {!Conc_hash}, both deliberate:

    - [find_or_insert]'s [mk] may run speculatively and its result be
      discarded when the CAS loses the race; exactly one caller still
      observes [created = true] (Invariant 1 is preserved — losers return
      the winner's value).
    - [update] is atomic only with respect to other [update]s of the same
      key. Concurrently mixing [update] and direct writes {e of the same
      key} is unsupported; the CFG never does (the [ends] map is written
      exclusively through [update] while parsing runs). Callbacks must not
      re-enter the same map. *)

module Make (H : Hashtbl.HashedType) : sig
  type key = H.t
  type 'a t

  (** [create ?shards ?counters ()] makes an empty map. [shards] (the name
      kept for {!Conc_hash} compatibility) is the initial bucket count,
      rounded up to a power of two; the table grows beyond it on demand.
      [counters] lets several maps aggregate contention events into one
      shared {!Contention.t}. *)
  val create : ?shards:int -> ?counters:Contention.t -> unit -> 'a t

  val counters : 'a t -> Contention.t

  val find : 'a t -> key -> 'a option
  (** Wait-free. *)

  val mem : 'a t -> key -> bool
  (** Wait-free. *)

  val insert_if_absent : 'a t -> key -> 'a -> bool
  (** First inserter wins (Invariants 1 and 5, paper Listing 4); lock-free. *)

  val find_or_insert : 'a t -> key -> (unit -> 'a) -> 'a * bool
  (** Lock-free; [mk] may run speculatively (see above). *)

  val update : 'a t -> key -> ('a option -> 'a option * 'r) -> 'r
  (** Entry-atomic read-modify-write under a striped lock; the callback
      runs exactly once. See the caveats above. *)

  val remove : 'a t -> key -> 'a option

  val length : 'a t -> int
  (** O(1): maintained counter, exact when writers use this interface. *)

  val clear : 'a t -> unit
  (** Quiescent use only. *)

  (** Whole-table iteration over an atomic snapshot of the bucket array;
      consistent only when no writers are active (the quiescent phases
      between parallel stages). *)

  val iter : (key -> 'a -> unit) -> 'a t -> unit
  val fold : (key -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
  val to_list : 'a t -> (key * 'a) list
end
