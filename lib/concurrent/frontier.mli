(** Fixed-capacity concurrent frontier buffer for level-synchronous
    parallel BFS.

    A frontier is an int buffer whose slots are claimed with one
    fetch-and-add; membership deduplication is the caller's job (pair it
    with {!Atomic_intset.add} so each vertex enters a frontier at most
    once, which also bounds the capacity by the vertex count). Writes go
    to distinct slots, so pushes never contend beyond the cursor bump;
    reads ({!get}) are only valid once the pushing phase has quiesced —
    exactly the barrier a level-synchronous BFS already has between
    levels. *)

type t

val create : capacity:int -> t
(** [capacity] is the maximum number of pushes before {!clear}. *)

val push : t -> int -> unit
(** Claim the next slot. Raises [Invalid_argument] past capacity (the
    caller's dedup guard is broken if that happens). *)

val length : t -> int
(** Number of pushed elements. Quiescent use only. *)

val is_empty : t -> bool

val get : t -> int -> int
(** [get t i] is element [i], [0 <= i < length t]. Quiescent use only. *)

val clear : t -> unit
(** Reset to empty; the buffer is reused across BFS levels. *)
