(* Read-mostly concurrent hash map: wait-free reads over immutable bucket
   lists published through [Atomic], CAS insertion, freeze-based amortized
   resize. See the .mli for the full protocol. *)

module Make (H : Hashtbl.HashedType) = struct
  type key = H.t

  (* A bucket is an immutable association list. [Frozen] buckets belong to a
     table that is being migrated: they remain readable (reads stay
     wait-free during a resize) but reject writers, which must wait for the
     new table to be published. CAS on a bucket compares the list by
     physical equality; lists are freshly allocated on every change, so
     there is no ABA hazard. *)
  type 'a bucket = Alive of (key * 'a) list | Frozen of (key * 'a) list

  type 'a table = { buckets : 'a bucket Atomic.t array; mask : int }

  type 'a t = {
    tbl : 'a table Atomic.t;
    size : int Atomic.t;
    resizing : bool Atomic.t;
    stripes : Mutex.t array;  (* update-only entry locks, never on reads *)
    c : Contention.t;
  }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let mk_table n =
    let n = next_pow2 (max 1 n) in
    { buckets = Array.init n (fun _ -> Atomic.make (Alive [])); mask = n - 1 }

  let n_stripes = 64

  let create ?(shards = 64) ?counters () =
    {
      tbl = Atomic.make (mk_table shards);
      size = Atomic.make 0;
      resizing = Atomic.make false;
      stripes = Array.init n_stripes (fun _ -> Mutex.create ());
      c = (match counters with Some c -> c | None -> Contention.create ());
    }

  let counters t = t.c
  let bucket tbl k = tbl.buckets.(H.hash k land tbl.mask)

  (* Linear search counting steps; collision probes (steps past the first
     cell) feed the shared counter, so an uncontended hit costs no atomic
     write at all. *)
  let search c k l =
    let rec go steps = function
      | [] ->
        if steps > 1 then ignore (Atomic.fetch_and_add c.Contention.probes (steps - 1));
        None
      | (k', v) :: rest ->
        if H.equal k k' then begin
          if steps > 1 then
            ignore (Atomic.fetch_and_add c.Contention.probes (steps - 1));
          Some v
        end
        else go (steps + 1) rest
    in
    go 1 l

  let find t k =
    match Atomic.get (bucket (Atomic.get t.tbl) k) with
    | Alive l | Frozen l -> search t.c k l

  let mem t k = find t k <> None

  (* Wait until an in-flight resize of [old] publishes its replacement. The
     resizer is another domain; on a saturated machine yield to it. *)
  let wait_resize t old =
    let spins = ref 0 in
    while Atomic.get t.tbl == old do
      incr spins;
      ignore (Atomic.fetch_and_add t.c.Contention.frozen_waits 1);
      if !spins > 1024 then Unix.sleepf 5e-5 else Domain.cpu_relax ()
    done

  let rec freeze cell =
    match Atomic.get cell with
    | Frozen l -> l
    | Alive l as cur ->
      if Atomic.compare_and_set cell cur (Frozen l) then l else freeze cell

  (* Single elected resizer: freeze every bucket of the current table (each
     freeze is a CAS, so racing inserts either land before the freeze and
     are copied, or fail and wait for the new table), rehash into a fresh
     table of double the capacity, publish, release. *)
  let resize t old =
    if Atomic.compare_and_set t.resizing false true then begin
      if Atomic.get t.tbl == old then begin
        ignore (Atomic.fetch_and_add t.c.Contention.resizes 1);
        let nt = mk_table (2 * Array.length old.buckets) in
        Array.iter
          (fun cell ->
            List.iter
              (fun ((k, _) as cl) ->
                let dst = bucket nt k in
                match Atomic.get dst with
                | Alive l -> Atomic.set dst (Alive (cl :: l))
                | Frozen _ -> assert false (* unpublished: resizer-private *))
              (freeze cell))
          old.buckets;
        Atomic.set t.tbl nt
      end;
      Atomic.set t.resizing false
    end

  let maybe_resize t =
    let tbl = Atomic.get t.tbl in
    if Atomic.get t.size > Array.length tbl.buckets then resize t tbl

  let rec insert_if_absent t k v =
    let tbl = Atomic.get t.tbl in
    let cell = bucket tbl k in
    match Atomic.get cell with
    | Frozen _ ->
      wait_resize t tbl;
      insert_if_absent t k v
    | Alive l as cur -> (
      match search t.c k l with
      | Some _ -> false
      | None ->
        if Atomic.compare_and_set cell cur (Alive ((k, v) :: l)) then begin
          ignore (Atomic.fetch_and_add t.size 1);
          maybe_resize t;
          true
        end
        else begin
          ignore (Atomic.fetch_and_add t.c.Contention.cas_retries 1);
          insert_if_absent t k v
        end)

  let rec find_or_insert t k mk =
    let tbl = Atomic.get t.tbl in
    let cell = bucket tbl k in
    match Atomic.get cell with
    | Frozen _ ->
      wait_resize t tbl;
      find_or_insert t k mk
    | Alive l as cur -> (
      match search t.c k l with
      | Some v -> (v, false)
      | None ->
        (* [mk] runs speculatively: if the CAS loses, the value is dropped
           and the winner's binding is returned instead *)
        let v = mk () in
        if Atomic.compare_and_set cell cur (Alive ((k, v) :: l)) then begin
          ignore (Atomic.fetch_and_add t.size 1);
          maybe_resize t;
          (v, true)
        end
        else begin
          ignore (Atomic.fetch_and_add t.c.Contention.cas_retries 1);
          find_or_insert t k mk
        end)

  let remove_list k l =
    let rec go acc = function
      | [] -> None
      | ((k', v) as cl) :: rest ->
        if H.equal k k' then Some (v, List.rev_append acc rest)
        else go (cl :: acc) rest
    in
    go [] l

  let rec remove t k =
    let tbl = Atomic.get t.tbl in
    let cell = bucket tbl k in
    match Atomic.get cell with
    | Frozen _ ->
      wait_resize t tbl;
      remove t k
    | Alive l as cur -> (
      match remove_list k l with
      | None -> None
      | Some (v, rest) ->
        if Atomic.compare_and_set cell cur (Alive rest) then begin
          ignore (Atomic.fetch_and_add t.size (-1));
          Some v
        end
        else begin
          ignore (Atomic.fetch_and_add t.c.Contention.cas_retries 1);
          remove t k
        end)

  (* [update]: the only operation that needs read-modify-write atomicity of
     one entry with an arbitrary callback, so it is the only one that takes
     a lock — a striped mutex serializing updates of the same key (and,
     harmlessly, of other keys on the same stripe). The callback runs
     exactly once; its result is then applied with a CAS retry loop, which
     only re-reads the bucket to merge in concurrent changes to *other*
     keys. Mixing [update] with concurrent non-[update] writes to the same
     key is not supported (see the .mli). *)
  let update t k f =
    let m = t.stripes.(H.hash k land (n_stripes - 1)) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        let tbl0 = Atomic.get t.tbl in
        let cur_v =
          match Atomic.get (bucket tbl0 k) with
          | Alive l | Frozen l -> search t.c k l
        in
        let next, r = f cur_v in
        let rec apply () =
          let tbl = Atomic.get t.tbl in
          let cell = bucket tbl k in
          match Atomic.get cell with
          | Frozen _ ->
            wait_resize t tbl;
            apply ()
          | Alive l as cur -> (
            let without, delta =
              match remove_list k l with
              | Some (_, rest) -> (rest, -1)
              | None -> (l, 0)
            in
            let nl, delta =
              match next with
              | Some v -> ((k, v) :: without, delta + 1)
              | None -> (without, delta)
            in
            match (cur_v, next) with
            | None, None -> () (* no binding before or after: nothing to do *)
            | _ ->
              if Atomic.compare_and_set cell cur (Alive nl) then begin
                if delta <> 0 then ignore (Atomic.fetch_and_add t.size delta)
              end
              else begin
                ignore (Atomic.fetch_and_add t.c.Contention.cas_retries 1);
                apply ()
              end)
        in
        apply ();
        r)

  let length t = Atomic.get t.size

  let clear t =
    Atomic.set t.tbl (mk_table 64);
    Atomic.set t.size 0

  let snapshot t =
    Array.map
      (fun cell -> match Atomic.get cell with Alive l | Frozen l -> l)
      (Atomic.get t.tbl).buckets

  let iter f t =
    Array.iter (List.iter (fun (k, v) -> f k v)) (snapshot t)

  let fold f t init =
    Array.fold_left
      (fun acc l -> List.fold_left (fun acc (k, v) -> f k v acc) acc l)
      init (snapshot t)

  let to_list t = fold (fun k v acc -> (k, v) :: acc) t []
end
