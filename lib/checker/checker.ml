module GT = Pbca_codegen.Ground_truth
module Cfg = Pbca_core.Cfg
module Summary = Pbca_core.Summary
module Disasm = Pbca_core.Disasm
module Semantics = Pbca_isa.Semantics

type verdict = Match | Expected of string | Mismatch of string

type report = {
  binary : string;
  func_total : int;
  func_match : int;
  func_expected : (string * string) list;
  func_mismatch : (string * string) list;
  extra_funcs : (int * verdict) list;
  jt_total : int;
  jt_ok : int;
  jt_expected_unresolved : int;
  jt_mismatch : int;
  nr_total : int;
  nr_ok : int;
  nr_expected_miss : int;
  nr_mismatch : int;
}

let in_ranges ranges a = List.exists (fun (lo, hi) -> a >= lo && a < hi) ranges

(* Taint fixpoint: direct roots are the paper's difference classes 1 and 3;
   callers (and tail-callers) of tainted functions inherit the taint, since
   their fall-through edges and return statuses depend on the callee. *)
let compute_taint (g : Cfg.t) (gt : GT.t) =
  let taint : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let add entry cls =
    if not (Hashtbl.mem taint entry) then Hashtbl.replace taint entry cls
  in
  List.iter
    (fun (gf : GT.gfun) ->
      List.iter
        (fun (c : GT.nr_call) ->
          if (not c.nc_matchable) && in_ranges gf.gf_ranges c.nc_call_addr then
            add gf.gf_entry "error-noreturn-call")
        gt.gt_nr_calls;
      List.iter
        (fun (t : GT.jump_table) ->
          if (not t.jt_resolvable) && in_ranges gf.gf_ranges t.jt_jump_addr
          then add gf.gf_entry "stack-spilled-jump-table")
        gt.gt_tables)
    gt.gt_funcs;
  (* call-graph propagation over the ground-truth ranges *)
  let entries = List.map (fun (f : GT.gfun) -> f.gf_entry) gt.gt_funcs in
  let entry_set = Hashtbl.create 128 in
  List.iter (fun e -> Hashtbl.replace entry_set e ()) entries;
  let callees_of (gf : GT.gfun) =
    List.concat_map
      (fun (lo, hi) ->
        List.filter_map
          (fun (a, insn, len) ->
            match Semantics.flow ~addr:a ~len insn with
            | Semantics.Call_direct t | Semantics.Jump t
            | Semantics.Cond_jump t
              when Hashtbl.mem entry_set t ->
              Some t
            | _ -> None)
          (Disasm.insns_between g.Cfg.image ~lo ~hi))
      gf.gf_ranges
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (gf : GT.gfun) ->
        if not (Hashtbl.mem taint gf.gf_entry) then
          match
            List.find_opt (fun t -> Hashtbl.mem taint t) (callees_of gf)
          with
          | Some t ->
            let root = Hashtbl.find taint t in
            let root =
              if String.length root > 8 && String.sub root 0 8 = "cascade:"
              then root
              else "cascade:" ^ root
            in
            Hashtbl.replace taint gf.gf_entry root;
            changed := true
          | None -> ())
      gt.gt_funcs
  done;
  taint

(* Degradation marks (budget cuts, deadline skips, contained task crashes)
   explain differences the same way taint does: the parser announced it gave
   up on that territory, so a divergence there is the documented safe
   over-approximation, not a silent error. *)
let gf_degraded g (gf : GT.gfun) =
  Cfg.degraded_at g gf.gf_entry
  || List.exists (fun (lo, hi) -> Cfg.degraded_within g ~lo ~hi) gf.gf_ranges

let degraded_verdict g ?f (gf : GT.gfun) =
  if
    gf_degraded g gf
    || (match f with Some f -> Cfg.func_degraded g f | None -> false)
  then Some (Expected "budget-degraded")
  else if Atomic.get g.Cfg.stats.Cfg.budget_deadline > 0 then
    (* past the deadline, function *discovery* itself is incomplete: a
       traversal that was skipped can no longer find tail-called entries,
       so even unmarked absences are the deadline's doing *)
    Some (Expected "deadline-degraded")
  else if Cfg.task_failure_count g > 0 then Some (Expected "task-failure")
  else None

(* The portions of [got] not covered by [cover] (both half-open lists). *)
let range_subtract got cover =
  let cover = List.sort compare cover in
  List.concat_map
    (fun (lo, hi) ->
      let rec cut lo hi acc = function
        | [] -> if lo < hi then (lo, hi) :: acc else acc
        | (clo, chi) :: tl ->
          if chi <= lo then cut lo hi acc tl
          else if clo >= hi then if lo < hi then (lo, hi) :: acc else acc
          else cut (max lo chi) hi (if clo > lo then (lo, clo) :: acc else acc) tl
      in
      List.rev (cut lo hi [] cover))
    got

(* Without symbols, a jump to another function's entry is indistinguishable
   from an intra-procedural branch, so a traversal legitimately absorbs the
   tail-called function's body into the caller. The verdict applies only
   when every absorbed byte belongs to a ground-truth function whose symbol
   was withheld — a range excess anywhere else stays a real mismatch. *)
let tail_call_absorbed (gt : GT.t) (gf : GT.gfun) ~got =
  match range_subtract got gf.GT.gf_ranges with
  | [] -> false (* no excess: the difference is elsewhere *)
  | extras ->
    range_subtract gf.GT.gf_ranges got = [] (* got covers all of gt *)
    && List.for_all
         (fun extra ->
           range_subtract [ extra ]
             (List.concat_map
                (fun (o : GT.gfun) ->
                  if o.gf_entry <> gf.GT.gf_entry && not o.gf_in_symtab then
                    o.gf_ranges
                  else [])
                gt.gt_funcs)
           = [])
         extras

let check_function g taint (gt : GT.t) (gf : GT.gfun) : verdict =
  match Pbca_core.Addr_map.find g.Cfg.funcs gf.gf_entry with
  | None -> (
    match Hashtbl.find_opt taint gf.gf_entry with
    | Some cls -> Expected cls
    | None -> (
      match degraded_verdict g gf with
      | Some v -> v
      | None ->
        if not gf.GT.gf_in_symtab then
          (* the symbol was withheld: with gap parsing on this is a
             heuristic recall miss ([score_discovery] charges it);
             without it the parser was never given a way to find the
             entry at all *)
          if g.Cfg.config.Pbca_core.Config.gap_parse then
            Expected "heuristic-miss"
          else Expected "not-in-symtab"
        else Mismatch "function not found"))
  | Some f ->
    let ranges = Summary.func_ranges g f in
    let returns = Atomic.get f.Cfg.f_ret = Cfg.Returns in
    if ranges = gf.gf_ranges && returns = gf.gf_returns then Match
    else begin
      match Hashtbl.find_opt taint gf.gf_entry with
      | Some cls -> Expected cls
      | None -> (
        match degraded_verdict g ~f gf with
        | Some v -> v
        | None when Cfg.func_confidence g f = Cfg.From_heuristic ->
          (* the entry itself was a gap proposal: its boundary is
             best-effort by construction, and [score_discovery] already
             gives entry discovery its own exact score *)
          Expected "heuristic-ranges"
        | None
          when returns = gf.gf_returns
               && tail_call_absorbed gt gf ~got:ranges ->
          Expected "tail-call-absorption"
        | None ->
          let show rs =
            String.concat " "
              (List.map (fun (a, b) -> Printf.sprintf "[0x%x,0x%x)" a b) rs)
          in
          if ranges <> gf.gf_ranges then
            Mismatch
              (Printf.sprintf "ranges gt=%s got=%s" (show gf.gf_ranges)
                 (show ranges))
          else
            Mismatch
              (Printf.sprintf "returns gt=%b got=%b" gf.gf_returns returns))
    end

(* is the address inside a tainted function's true ranges? then any local
   difference is a cascade of classes 1/3 (the paper's class 4: "an extra
   indirect jump target caused by failing to identify a non-returning
   call") *)
let addr_tainted taint (gt : GT.t) addr =
  List.exists
    (fun (gf : GT.gfun) ->
      Hashtbl.mem taint gf.gf_entry && in_ranges gf.gf_ranges addr)
    gt.gt_funcs

(* the address sits in degraded territory, or a contained task crash left
   the whole parse partial *)
let addr_degraded g (gt : GT.t) addr =
  Cfg.degraded_at g addr
  || Cfg.task_failure_count g > 0
  || List.exists
       (fun (gf : GT.gfun) -> in_ranges gf.gf_ranges addr && gf_degraded g gf)
       gt.gt_funcs

(* the address lies in territory whose ground-truth function had its
   symbol withheld and was never (re)discovered: everything inside it —
   jump tables, noreturn facts — is beyond the parser's reach, and the
   absence is already charged as a recall miss by [score_discovery] *)
let addr_in_missed_territory g (gt : GT.t) addr =
  List.exists
    (fun (gf : GT.gfun) ->
      (not gf.gf_in_symtab)
      && in_ranges gf.gf_ranges addr
      && Pbca_core.Addr_map.find g.Cfg.funcs gf.gf_entry = None)
    gt.gt_funcs

let check_tables g taint (gt : GT.t) =
  let parsed = Pbca_concurrent.Conc_bag.to_list g.Cfg.tables in
  let ok = ref 0 and expected = ref 0 and bad = ref 0 in
  List.iter
    (fun (t : GT.jump_table) ->
      let found =
        List.find_opt (fun (p : Cfg.jt_record) -> p.jt_jump_addr = t.jt_jump_addr) parsed
      in
      if not t.jt_resolvable then begin
        (* the stack-spilled computation must defeat the slicer *)
        match found with
        | None -> incr expected
        | Some p ->
          if p.Cfg.jt_count = 0 || addr_degraded g gt t.jt_jump_addr then
            incr expected
          else incr bad
      end
      else begin
        match found with
        | None ->
          if
            addr_tainted taint gt t.jt_jump_addr
            || addr_degraded g gt t.jt_jump_addr
            || addr_in_missed_territory g gt t.jt_jump_addr
          then incr expected
          else incr bad
        | Some p ->
          (* the paper evaluates jump-table *sizes*; we also require the
             target set to match *)
          let gt_targets = List.sort_uniq compare t.jt_targets in
          let live_targets =
            List.sort_uniq compare
              (List.filter_map
                 (fun (e : Cfg.edge) ->
                   if e.e_kind = Cfg.Indirect then Some e.e_dst.Cfg.b_start
                   else None)
                 (Cfg.out_edges p.Cfg.jt_block))
          in
          if
            p.Cfg.jt_count = List.length t.jt_targets
            && gt_targets = live_targets
          then incr ok
          else if
            addr_tainted taint gt t.jt_jump_addr
            || addr_degraded g gt t.jt_jump_addr
            || addr_in_missed_territory g gt t.jt_jump_addr
          then
            (* class 4: bogus control flow from a tainted region reached
               the slice and perturbed the table — or a budget cut left
               the table in its unresolved over-approximation *)
            incr expected
          else incr bad
      end)
    gt.gt_tables;
  (!ok, !expected, !bad)

let check_nr_calls g taint (gt : GT.t) =
  let ok = ref 0 and expected = ref 0 and bad = ref 0 in
  List.iter
    (fun (c : GT.nr_call) ->
      let has_ft =
        let call_end =
          match Pbca_binfmt.Image.decode_at g.Cfg.image c.nc_call_addr with
          | Some (_, len) -> c.nc_call_addr + len
          | None -> c.nc_call_addr
        in
        match Pbca_core.Addr_map.find g.Cfg.ends call_end with
        | Some b ->
          List.exists
            (fun (e : Cfg.edge) -> e.e_kind = Cfg.Call_fallthrough)
            (Cfg.out_edges b)
        | None -> false
      in
      if c.nc_matchable then
        if not has_ft then incr ok
        else if
          addr_tainted taint gt c.nc_call_addr
          || addr_degraded g gt c.nc_call_addr
          || addr_in_missed_territory g gt c.nc_call_addr
          || addr_in_missed_territory g gt c.nc_callee
        then incr expected
        else incr bad
      else if has_ft then incr expected (* paper difference 1 *)
      else incr ok)
    gt.gt_nr_calls;
  (!ok, !expected, !bad)

let check (gt : GT.t) (g : Cfg.t) : report =
  let taint = compute_taint g gt in
  let func_match = ref 0 in
  let func_expected = ref [] in
  let func_mismatch = ref [] in
  List.iter
    (fun (gf : GT.gfun) ->
      match check_function g taint gt gf with
      | Match -> incr func_match
      | Expected cls -> func_expected := (gf.gf_name, cls) :: !func_expected
      | Mismatch d -> func_mismatch := (gf.gf_name, d) :: !func_mismatch)
    gt.gt_funcs;
  let extra_funcs =
    List.filter_map
      (fun (f : Cfg.func) ->
        if List.exists (fun (gf : GT.gfun) -> gf.gf_entry = f.f_entry_addr) gt.gt_funcs
        then None
        else
          (* extra functions are acceptable only inside tainted territory *)
          let explained =
            Hashtbl.fold
              (fun entry cls acc ->
                match acc with
                | Some _ -> acc
                | None -> (
                  match GT.find_func gt entry with
                  | Some gf when in_ranges gf.gf_ranges f.Cfg.f_entry_addr ->
                    Some cls
                  | _ -> None))
              taint None
          in
          (* A gap-scan proposal that matches no ground-truth entry is the
             documented over-approximation of heuristic discovery, not a
             parser error — its own bucket, so budget degradations
             (PR3's classes) are never conflated with heuristic noise.
             [score_discovery] charges these against precision. *)
          let explained =
            match explained with
            | Some _ -> explained
            | None ->
              if Cfg.func_confidence g f = Cfg.From_heuristic then
                Some "heuristic-spurious"
              else None
          in
          (* ... or when discovered inside a tainted extension beyond any
             ground-truth range: attribute to the nearest preceding tainted
             function *)
          let explained =
            match explained with
            | Some _ -> explained
            | None ->
              if Hashtbl.length taint > 0 then Some "cascade:discovery"
              else if Cfg.degraded_count g > 0 || Cfg.task_failure_count g > 0
              then
                (* a degraded parse may discover entries the clean one
                   would not (or vice versa); the marks own the blame *)
                Some "degraded-discovery"
              else None
          in
          match explained with
          | Some cls -> Some (f.Cfg.f_entry_addr, Expected cls)
          | None -> Some (f.Cfg.f_entry_addr, Mismatch "unexpected function"))
      (Cfg.funcs_list g)
  in
  let jt_ok, jt_expected_unresolved, jt_mismatch = check_tables g taint gt in
  let nr_ok, nr_expected_miss, nr_mismatch = check_nr_calls g taint gt in
  {
    binary = gt.gt_binary;
    func_total = List.length gt.gt_funcs;
    func_match = !func_match;
    func_expected = !func_expected;
    func_mismatch = !func_mismatch;
    extra_funcs;
    jt_total = List.length gt.gt_tables;
    jt_ok;
    jt_expected_unresolved;
    jt_mismatch;
    nr_total = List.length gt.gt_nr_calls;
    nr_ok;
    nr_expected_miss;
    nr_mismatch;
  }

let clean r =
  r.func_mismatch = [] && r.jt_mismatch = 0 && r.nr_mismatch = 0
  && List.for_all
       (fun (_, v) -> match v with Mismatch _ -> false | _ -> true)
       r.extra_funcs

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%s: funcs %d/%d exact, %d expected-diff, %d MISMATCH; extra %d;@ \
     jump tables %d/%d exact, %d expected-unresolved, %d MISMATCH;@ \
     noreturn calls %d/%d exact, %d expected-miss, %d MISMATCH@]"
    r.binary r.func_match r.func_total
    (List.length r.func_expected)
    (List.length r.func_mismatch)
    (List.length r.extra_funcs)
    r.jt_ok r.jt_total r.jt_expected_unresolved r.jt_mismatch r.nr_ok
    r.nr_total r.nr_expected_miss r.nr_mismatch;
  List.iter
    (fun (n, d) -> Format.fprintf fmt "@ MISMATCH %s: %s" n d)
    r.func_mismatch

(* ------------------------------------------------------------------ *)
(* Entry-discovery scoring (PR9). Orthogonal to [check]: that one judges
   the *shape* of what was found; this one judges *which entries exist*,
   the precision/recall frame the gap-parsing gate is stated in. Ground
   truth is the universe of real entries; every live function that
   matches one is a true positive (bucketed by provenance), every one
   that does not is spurious, every ground-truth entry with no live
   function is a miss.                                                  *)

type discovery = {
  ds_relevant : int;
  ds_found : int;
  ds_missed : int;
  ds_spurious : int;
  ds_spurious_heuristic : int;
  ds_found_symbol : int;
  ds_found_call_target : int;
  ds_found_heuristic : int;
  ds_precision : float;
  ds_recall : float;
}

let score_discovery (gt : GT.t) (g : Cfg.t) =
  let entry_set = Hashtbl.create 128 in
  List.iter
    (fun (gf : GT.gfun) -> Hashtbl.replace entry_set gf.gf_entry ())
    gt.gt_funcs;
  let found = ref 0 in
  let sym = ref 0 and ct = ref 0 and heur = ref 0 in
  let spurious = ref 0 and spurious_heur = ref 0 in
  List.iter
    (fun (f : Cfg.func) ->
      let conf = Cfg.func_confidence g f in
      if Hashtbl.mem entry_set f.Cfg.f_entry_addr then begin
        incr found;
        match conf with
        | Cfg.From_symbol -> incr sym
        | Cfg.From_call_target -> incr ct
        | Cfg.From_heuristic -> incr heur
      end
      else begin
        incr spurious;
        if conf = Cfg.From_heuristic then incr spurious_heur
      end)
    (Cfg.funcs_list g);
  let relevant = List.length gt.gt_funcs in
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  {
    ds_relevant = relevant;
    ds_found = !found;
    ds_missed = relevant - !found;
    ds_spurious = !spurious;
    ds_spurious_heuristic = !spurious_heur;
    ds_found_symbol = !sym;
    ds_found_call_target = !ct;
    ds_found_heuristic = !heur;
    ds_precision = ratio !found (!found + !spurious);
    ds_recall = ratio !found relevant;
  }

let pp_discovery fmt d =
  Format.fprintf fmt
    "entries %d/%d found (symbol=%d call-target=%d heuristic=%d), %d \
     missed, %d spurious (%d heuristic); precision=%.3f recall=%.3f"
    d.ds_found d.ds_relevant d.ds_found_symbol d.ds_found_call_target
    d.ds_found_heuristic d.ds_missed d.ds_spurious d.ds_spurious_heuristic
    d.ds_precision d.ds_recall
