(** Correctness evaluation against ground truth (paper Section 8.1).

    Compares a parsed CFG with the ground truth emitted at generation time:
    function boundaries as coalesced address ranges, return statuses,
    jump-table sizes and targets, and non-returning call sites.

    The paper found four difference classes, all rooted in individual
    operation imperfections rather than parallelism: (1) calls to the
    conditionally-returning [error] are not recognized as non-returning,
    (2) outlined [foo.cold] fragments are separate functions to the parser
    but part of [foo] to DWARF, (3) jump tables whose computation spills
    through the stack resist slicing, and (4) knock-on effects of (1). This
    checker reproduces that taxonomy automatically: ground-truth flags mark
    the direct roots, and a taint fixpoint over the (decoded) call graph
    propagates them to the functions whose boundaries or statuses they can
    legitimately perturb. A difference in an untainted function is a real
    bug; the test suite requires there are none.

    PR9 adds a second axis: heuristic gap discovery on stripped images.
    Differences it can legitimately cause get their own [Expected]
    buckets — ["heuristic-miss"] (entry not in the symtab and the gap scan
    did not find it), ["heuristic-ranges"] (a gap proposal's best-effort
    boundary), ["heuristic-spurious"] (a proposal matching no ground-truth
    entry) and ["not-in-symtab"] (stripped entry, gap parsing off) — kept
    strictly apart from PR3's budget-degradation classes. A related
    stripped-input class, ["tail-call-absorption"], explains a traversal
    that swallowed a tail-called symbol-less function whole: without the
    symbol the branch is indistinguishable from an intra-procedural jump.
    The quantitative judgement of the gap scanner itself is
    {!score_discovery}. *)

type verdict =
  | Match
  | Expected of string  (** difference explained by a known class *)
  | Mismatch of string  (** unexplained: a real defect *)

type report = {
  binary : string;
  func_total : int;
  func_match : int;
  func_expected : (string * string) list;  (** function name, class *)
  func_mismatch : (string * string) list;  (** function name, detail *)
  extra_funcs : (int * verdict) list;  (** parser functions absent from GT *)
  jt_total : int;
  jt_ok : int;
  jt_expected_unresolved : int;
  jt_mismatch : int;
  nr_total : int;
  nr_ok : int;
  nr_expected_miss : int;
  nr_mismatch : int;
}

val check :
  Pbca_codegen.Ground_truth.t -> Pbca_core.Cfg.t -> report

val clean : report -> bool
(** No unexplained differences anywhere. *)

val pp : Format.formatter -> report -> unit

(** Entry-discovery score: which function entries exist in the parse,
    against ground truth as the universe of real entries. True positives
    are bucketed by {!Pbca_core.Cfg.confidence}; precision counts every
    spurious live function against the parser, recall counts every
    ground-truth entry with no live function. Empty denominators score
    1.0. *)
type discovery = {
  ds_relevant : int;  (** ground-truth entries *)
  ds_found : int;  (** live functions matching a ground-truth entry *)
  ds_missed : int;
  ds_spurious : int;  (** live functions matching no ground-truth entry *)
  ds_spurious_heuristic : int;  (** ... of which gap proposals *)
  ds_found_symbol : int;
  ds_found_call_target : int;
  ds_found_heuristic : int;
  ds_precision : float;  (** found / (found + spurious) *)
  ds_recall : float;  (** found / relevant *)
}

val score_discovery :
  Pbca_codegen.Ground_truth.t -> Pbca_core.Cfg.t -> discovery

val pp_discovery : Format.formatter -> discovery -> unit
