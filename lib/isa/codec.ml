let max_length = 6

(* Operand range checks: immediates are stored in fixed-width little-endian
   fields; encoding an out-of-range operand is a generator bug we want to
   fail loudly on. *)

let check_i32 v =
  if v < -0x8000_0000 || v > 0x7fff_ffff then
    invalid_arg "Codec: imm32 out of range"

let check_i16 v =
  if v < -0x8000 || v > 0x7fff then invalid_arg "Codec: disp16 out of range"

let check_u16 v =
  if v < 0 || v > 0xffff then invalid_arg "Codec: imm16 out of range"

let check_u8 v = if v < 0 || v > 0xff then invalid_arg "Codec: imm8 out of range"

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_i16 b v =
  add_u8 b (v land 0xff);
  add_u8 b ((v asr 8) land 0xff)

let add_i32 b v =
  add_u8 b (v land 0xff);
  add_u8 b ((v asr 8) land 0xff);
  add_u8 b ((v asr 16) land 0xff);
  add_u8 b ((v asr 24) land 0xff)

let reg r = Reg.to_int r

let cond_code : Insn.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5

let cond_of_code = function
  | 0 -> Some Insn.Eq
  | 1 -> Some Insn.Ne
  | 2 -> Some Insn.Lt
  | 3 -> Some Insn.Ge
  | 4 -> Some Insn.Gt
  | 5 -> Some Insn.Le
  | _ -> None

let scale_code = function
  | 1 -> 0
  | 2 -> 1
  | 4 -> 2
  | 8 -> 3
  | _ -> invalid_arg "Codec: scale must be 1, 2, 4 or 8"

let scale_of_code = function
  | 0 -> Some 1
  | 1 -> Some 2
  | 2 -> Some 4
  | 3 -> Some 8
  | _ -> None

let encode b (i : Insn.t) =
  match i with
  | Nop -> add_u8 b 0x00
  | Halt -> add_u8 b 0x01
  | Mov_rr (d, s) ->
    add_u8 b 0x10;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Mov_ri (d, v) ->
    check_i32 v;
    add_u8 b 0x11;
    add_u8 b (reg d);
    add_i32 b v
  | Load (d, base, disp) ->
    check_i16 disp;
    add_u8 b 0x12;
    add_u8 b (reg d);
    add_u8 b (reg base);
    add_i16 b disp
  | Store (base, disp, s) ->
    check_i16 disp;
    add_u8 b 0x13;
    add_u8 b (reg base);
    add_i16 b disp;
    add_u8 b (reg s)
  | Lea (d, disp) ->
    check_i32 disp;
    add_u8 b 0x14;
    add_u8 b (reg d);
    add_i32 b disp
  | Add (d, s) ->
    add_u8 b 0x20;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Sub (d, s) ->
    add_u8 b 0x21;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Mul (d, s) ->
    add_u8 b 0x22;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | And_ (d, s) ->
    add_u8 b 0x23;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Or_ (d, s) ->
    add_u8 b 0x24;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Xor (d, s) ->
    add_u8 b 0x25;
    add_u8 b (reg d);
    add_u8 b (reg s)
  | Shl (d, n) ->
    check_u8 n;
    add_u8 b 0x26;
    add_u8 b (reg d);
    add_u8 b n
  | Shr (d, n) ->
    check_u8 n;
    add_u8 b 0x27;
    add_u8 b (reg d);
    add_u8 b n
  | Add_ri (d, v) ->
    check_i32 v;
    add_u8 b 0x28;
    add_u8 b (reg d);
    add_i32 b v
  | Cmp_rr (x, y) ->
    add_u8 b 0x30;
    add_u8 b (reg x);
    add_u8 b (reg y)
  | Cmp_ri (x, v) ->
    check_i32 v;
    add_u8 b 0x31;
    add_u8 b (reg x);
    add_i32 b v
  | Push s ->
    add_u8 b 0x40;
    add_u8 b (reg s)
  | Pop d ->
    add_u8 b 0x41;
    add_u8 b (reg d)
  | Enter n ->
    check_u16 n;
    add_u8 b 0x42;
    add_i16 b n
  | Leave -> add_u8 b 0x43
  | Jmp rel ->
    check_i32 rel;
    add_u8 b 0x50;
    add_i32 b rel
  | Jcc (c, rel) ->
    check_i32 rel;
    add_u8 b 0x51;
    add_u8 b (cond_code c);
    add_i32 b rel
  | Jmp_ind s ->
    add_u8 b 0x52;
    add_u8 b (reg s)
  | Call rel ->
    check_i32 rel;
    add_u8 b 0x53;
    add_i32 b rel
  | Call_ind s ->
    add_u8 b 0x54;
    add_u8 b (reg s)
  | Ret -> add_u8 b 0x55
  | Load_idx (d, base, idx, sc) ->
    add_u8 b 0x56;
    add_u8 b (reg d);
    add_u8 b (reg base);
    add_u8 b (Reg.to_int idx lor (scale_code sc lsl 4))

let encoded_length (i : Insn.t) =
  match i with
  | Nop | Halt | Leave | Ret -> 1
  | Push _ | Pop _ | Jmp_ind _ | Call_ind _ -> 2
  | Mov_rr _ | Add _ | Sub _ | Mul _ | And_ _ | Or_ _ | Xor _ | Shl _ | Shr _
  | Cmp_rr _ | Enter _ ->
    3
  | Load_idx _ -> 4
  | Load _ | Store _ | Jmp _ | Call _ -> 5
  | Mov_ri _ | Lea _ | Add_ri _ | Cmp_ri _ | Jcc _ -> 6

(* Decoding. Reads are bounds-checked; any failure yields None. *)

let u8 buf pos =
  if pos >= 0 && pos < Bytes.length buf then
    Some (Char.code (Bytes.get buf pos))
  else None

let i16 buf pos =
  match (u8 buf pos, u8 buf (pos + 1)) with
  | Some a, Some b ->
    let v = a lor (b lsl 8) in
    Some (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | _ -> None

let i32 buf pos =
  if pos >= 0 && pos + 3 < Bytes.length buf then begin
    let g i = Char.code (Bytes.get buf (pos + i)) in
    let v = g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) in
    Some (if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v)
  end
  else None

let reg_at buf pos =
  match u8 buf pos with
  | Some v when v < Reg.count -> Some (Reg.of_int v)
  | _ -> None

let ( let* ) = Option.bind

let decode buf ~pos : (Insn.t * int) option =
  let* op = u8 buf pos in
  match op with
  | 0x00 -> Some (Insn.Nop, 1)
  | 0x01 -> Some (Insn.Halt, 1)
  | 0x10 ->
    let* d = reg_at buf (pos + 1) in
    let* s = reg_at buf (pos + 2) in
    Some (Insn.Mov_rr (d, s), 3)
  | 0x11 ->
    let* d = reg_at buf (pos + 1) in
    let* v = i32 buf (pos + 2) in
    Some (Insn.Mov_ri (d, v), 6)
  | 0x12 ->
    let* d = reg_at buf (pos + 1) in
    let* base = reg_at buf (pos + 2) in
    let* disp = i16 buf (pos + 3) in
    Some (Insn.Load (d, base, disp), 5)
  | 0x13 ->
    let* base = reg_at buf (pos + 1) in
    let* disp = i16 buf (pos + 2) in
    let* s = reg_at buf (pos + 4) in
    Some (Insn.Store (base, disp, s), 5)
  | 0x14 ->
    let* d = reg_at buf (pos + 1) in
    let* disp = i32 buf (pos + 2) in
    Some (Insn.Lea (d, disp), 6)
  | 0x20 | 0x21 | 0x22 | 0x23 | 0x24 | 0x25 ->
    let* d = reg_at buf (pos + 1) in
    let* s = reg_at buf (pos + 2) in
    let mk : Reg.t -> Reg.t -> Insn.t =
      match op with
      | 0x20 -> fun a b -> Insn.Add (a, b)
      | 0x21 -> fun a b -> Insn.Sub (a, b)
      | 0x22 -> fun a b -> Insn.Mul (a, b)
      | 0x23 -> fun a b -> Insn.And_ (a, b)
      | 0x24 -> fun a b -> Insn.Or_ (a, b)
      | _ -> fun a b -> Insn.Xor (a, b)
    in
    Some (mk d s, 3)
  | 0x26 | 0x27 ->
    let* d = reg_at buf (pos + 1) in
    let* n = u8 buf (pos + 2) in
    Some ((if op = 0x26 then Insn.Shl (d, n) else Insn.Shr (d, n)), 3)
  | 0x28 ->
    let* d = reg_at buf (pos + 1) in
    let* v = i32 buf (pos + 2) in
    Some (Insn.Add_ri (d, v), 6)
  | 0x30 ->
    let* x = reg_at buf (pos + 1) in
    let* y = reg_at buf (pos + 2) in
    Some (Insn.Cmp_rr (x, y), 3)
  | 0x31 ->
    let* x = reg_at buf (pos + 1) in
    let* v = i32 buf (pos + 2) in
    Some (Insn.Cmp_ri (x, v), 6)
  | 0x40 ->
    let* s = reg_at buf (pos + 1) in
    Some (Insn.Push s, 2)
  | 0x41 ->
    let* d = reg_at buf (pos + 1) in
    Some (Insn.Pop d, 2)
  | 0x42 ->
    let* v = i16 buf (pos + 1) in
    let v = v land 0xffff in
    Some (Insn.Enter v, 3)
  | 0x43 -> Some (Insn.Leave, 1)
  | 0x50 ->
    let* rel = i32 buf (pos + 1) in
    Some (Insn.Jmp rel, 5)
  | 0x51 ->
    let* c = u8 buf (pos + 1) in
    let* c = cond_of_code c in
    let* rel = i32 buf (pos + 2) in
    Some (Insn.Jcc (c, rel), 6)
  | 0x52 ->
    let* s = reg_at buf (pos + 1) in
    Some (Insn.Jmp_ind s, 2)
  | 0x53 ->
    let* rel = i32 buf (pos + 1) in
    Some (Insn.Call rel, 5)
  | 0x54 ->
    let* s = reg_at buf (pos + 1) in
    Some (Insn.Call_ind s, 2)
  | 0x55 -> Some (Insn.Ret, 1)
  | 0x56 ->
    let* d = reg_at buf (pos + 1) in
    let* base = reg_at buf (pos + 2) in
    let* packed = u8 buf (pos + 3) in
    let r = packed land 0x0f in
    let* sc = scale_of_code (packed lsr 4) in
    if r < Reg.count then Some (Insn.Load_idx (d, base, Reg.of_int r, sc), 4)
    else None
  | _ -> None
