type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  h_bounds : float array; (* upper bucket bounds, strictly increasing *)
  h_counts : counter array; (* length = Array.length h_bounds + 1 *)
  h_sum : gauge;
  h_n : counter;
}

type entry =
  | E_counter of counter
  | E_gauge of gauge
  | E_gauge_fn of (unit -> float)
  | E_histogram of histogram

type t = { lock : Mutex.t; tbl : (string, entry) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 64 }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mismatch name =
  invalid_arg (Printf.sprintf "Metrics: %S already registered with another kind" name)

(* Find-or-create is the only locked path; handle updates are plain
   atomics, so the hot path never touches the mutex. *)
let intern t name make match_ =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some e -> ( match match_ e with Some h -> h | None -> mismatch name)
      | None ->
        let h = make () in
        Hashtbl.replace t.tbl name h;
        (match match_ h with Some v -> v | None -> assert false))

let counter t name =
  intern t name
    (fun () -> E_counter (Atomic.make 0))
    (function E_counter c -> Some c | _ -> None)

let register_counter t name cell =
  ignore
    (intern t name
       (fun () -> E_counter cell)
       (function E_counter c -> Some c | _ -> None))

let gauge t name =
  intern t name
    (fun () -> E_gauge (Atomic.make 0.0))
    (function E_gauge g -> Some g | _ -> None)

let register_gauge_fn t name f =
  let (_ : unit -> float) =
    intern t name
      (fun () -> E_gauge_fn f)
      (function E_gauge_fn f -> Some f | _ -> None)
  in
  ()

let default_bounds =
  (* log-ish duration buckets in seconds: 1 us .. 10 s *)
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.0; 10.0 |]

let histogram ?(bounds = default_bounds) t name =
  intern t name
    (fun () ->
      E_histogram
        {
          h_bounds = bounds;
          h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_n = Atomic.make 0;
        })
    (function E_histogram h -> Some h | _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let count c = Atomic.get c
let set g v = Atomic.set g v
let value g = Atomic.get g

let rec gauge_add g dv =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. dv)) then gauge_add g dv

let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    i := !i + 1
  done;
  !i

let observe h v =
  Atomic.incr h.h_counts.(bucket_index h.h_bounds v);
  Atomic.incr h.h_n;
  gauge_add h.h_sum v

let hist_count h = Atomic.get h.h_n
let hist_sum h = Atomic.get h.h_sum

(* ------------------------------------------------------------------ *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { n : int; sum : float; buckets : (float * int) list }

let read_entry = function
  | E_counter c -> Counter (Atomic.get c)
  | E_gauge g -> Gauge (Atomic.get g)
  | E_gauge_fn f -> Gauge (f ())
  | E_histogram h ->
    let buckets =
      List.init
        (Array.length h.h_counts)
        (fun i ->
          let bound =
            if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity
          in
          (bound, Atomic.get h.h_counts.(i)))
    in
    Histogram { n = Atomic.get h.h_n; sum = Atomic.get h.h_sum; buckets }

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold (fun name e acc -> (name, read_entry e) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Fold one registry's current values into another (used to aggregate
   per-run registries across a corpus): counters and histograms add,
   gauges take the source's latest value. *)
let merge ~into src =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> add (counter into name) n
      | Gauge g -> set (gauge into name) g
      | Histogram { n = _; sum; buckets } ->
        let bounds =
          Array.of_list
            (List.filter_map
               (fun (b, _) -> if Float.is_finite b then Some b else None)
               buckets)
        in
        let h = histogram ~bounds into name in
        List.iteri
          (fun i (_, c) ->
            if i < Array.length h.h_counts then add h.h_counts.(i) c)
          buckets;
        add h.h_n
          (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets);
        gauge_add h.h_sum sum)
    (snapshot src)

(* Per-run scoping by subtraction: [diff ~before ~after] is what happened
   between two snapshots of the same registry. *)
let diff ~before ~after =
  List.filter_map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> Some (name, Counter (a - b))
      | Counter a, None -> Some (name, Counter a)
      | Gauge _, _ -> Some (name, v)
      | Histogram h, Some (Histogram h0) ->
        Some
          ( name,
            Histogram
              {
                n = h.n - h0.n;
                sum = h.sum -. h0.sum;
                buckets =
                  List.map2
                    (fun (b, c) (_, c0) -> (b, c - c0))
                    h.buckets h0.buckets;
              } )
      | Histogram _, _ -> Some (name, v)
      | _, Some _ -> Some (name, v))
    after

let pp_value fmt = function
  | Counter n -> Format.fprintf fmt "%d" n
  | Gauge g -> Format.fprintf fmt "%g" g
  | Histogram { n; sum; buckets } ->
    Format.fprintf fmt "n=%d sum=%g buckets=[%s]" n sum
      (String.concat ";"
         (List.map
            (fun (b, c) ->
              if Float.is_finite b then Printf.sprintf "<=%g:%d" b c
              else Printf.sprintf "inf:%d" c)
            buckets))

let pp fmt t =
  List.iter
    (fun (name, v) -> Format.fprintf fmt "%-28s %a@." name pp_value v)
    (snapshot t)
