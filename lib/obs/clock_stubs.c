/* Monotonic time source for Pbca_obs.Clock.
 *
 * CLOCK_MONOTONIC never steps (NTP slews it, never jumps it), which is
 * the property every duration and deadline in the tree relies on.
 * Returns seconds as a double: at ~1e6 s of uptime a double still
 * resolves ~0.1 us, far below anything we time.  On the (non-POSIX)
 * platform where clock_gettime is missing or fails, returns a negative
 * value and the OCaml side falls back to a latched gettimeofday shim. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value pbca_clock_monotonic_s(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0)
    return caml_copy_double(-1.0);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
