external monotonic_s : unit -> float = "pbca_clock_monotonic_s"

(* The one [Unix.gettimeofday] shim in lib/: a portability fallback for
   platforms without CLOCK_MONOTONIC. Readings are latched through a CAS
   max so even a stepping wall clock can never be observed running
   backwards — an NTP step freezes this clock for the duration of the
   step instead of producing negative durations. *)
let floor_cell = Atomic.make neg_infinity

let rec gettimeofday_latched () =
  let t = Unix.gettimeofday () in
  let prev = Atomic.get floor_cell in
  if t >= prev then
    if Atomic.compare_and_set floor_cell prev t then t
    else gettimeofday_latched ()
  else prev

let have_monotonic = monotonic_s () >= 0.0
let real_now () = if have_monotonic then monotonic_s () else gettimeofday_latched ()

type source = Monotonic | Fake of (unit -> float)

(* A single process-wide source: the fake is installed only by tests
   (and restored by [with_fake]), never concurrently with a real run. *)
let source = Atomic.make Monotonic

let now () =
  match Atomic.get source with Monotonic -> real_now () | Fake f -> f ()

let elapsed t0 = now () -. t0
let use_fake f = Atomic.set source (Fake f)
let use_monotonic () = Atomic.set source Monotonic
let is_fake () = match Atomic.get source with Fake _ -> true | Monotonic -> false

let with_fake f body =
  Atomic.set source (Fake f);
  Fun.protect ~finally:use_monotonic body
