(** Monotonic time for every duration and deadline in the tree.

    [Unix.gettimeofday] is wall-clock time: an NTP step moves it in
    either direction, so deltas taken across a step come out negative
    (or wildly large), checkpoint progress accounting goes wrong, and an
    absolute wall-clock deadline can fire early or never. This module
    reads [CLOCK_MONOTONIC] via a tiny C stub instead; its epoch is
    arbitrary (boot time on Linux), so readings are only meaningful as
    differences — which is the only way the tree uses them.

    A deterministic fake source can be installed for tests: deadline
    latch and span-ordering tests advance time by hand instead of
    sleeping. The source is process-wide; tests restore it with
    {!with_fake} / {!use_monotonic}. *)

val now : unit -> float
(** Current monotonic reading in seconds, from an arbitrary epoch.
    Never decreases (even under the gettimeofday fallback, which is
    latched through a CAS max). *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]: the duration since an earlier
    [now] reading. *)

val use_fake : (unit -> float) -> unit
(** Install a deterministic source; [now] calls it from then on. *)

val use_monotonic : unit -> unit
(** Restore the real monotonic source. *)

val with_fake : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_fake f body] runs [body] with [f] installed, restoring the
    monotonic source afterwards (also on exception). *)

val is_fake : unit -> bool
(** Whether a fake source is currently installed. *)

val have_monotonic : bool
(** Whether CLOCK_MONOTONIC is available (always true on Linux); when
    false, [now] falls back to latched [Unix.gettimeofday]. *)
