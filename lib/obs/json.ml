type json =
  | J_int of int
  | J_float of float
  | J_bool of bool
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec json_emit b ind j =
  let pad n = String.make n ' ' in
  match j with
  | J_int i -> Buffer.add_string b (string_of_int i)
  | J_float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.6g" f)
    else Buffer.add_string b "null"
  | J_bool v -> Buffer.add_string b (string_of_bool v)
  | J_str s -> Buffer.add_string b ("\"" ^ json_escape s ^ "\"")
  | J_arr [] -> Buffer.add_string b "[]"
  | J_arr xs ->
    Buffer.add_string b "[";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string b ", ";
        json_emit b ind x)
      xs;
    Buffer.add_string b "]"
  | J_obj [] -> Buffer.add_string b "{}"
  | J_obj kvs ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b (pad (ind + 2));
        Buffer.add_string b ("\"" ^ json_escape k ^ "\": ");
        json_emit b (ind + 2) v)
      kvs;
    Buffer.add_string b ("\n" ^ pad ind ^ "}")

let json_to_string j =
  let b = Buffer.create 512 in
  json_emit b 0 j;
  Buffer.contents b

(* Well-formedness check of the grammar we emit (objects, arrays, strings
   with the escapes above, numbers, booleans, null). Returns false instead
   of raising so smoke targets can report cleanly. *)
let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let fail = ref false in
  let expect c = if !pos < n && s.[!pos] = c then incr pos else fail := true in
  let lit w =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then pos := !pos + String.length w
    else fail := true
  in
  let string_ () =
    expect '"';
    let fin = ref false in
    while (not !fin) && not !fail do
      if !pos >= n then fail := true
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          fin := true
        | '\\' ->
          incr pos;
          if !pos >= n then fail := true
          else begin
            (match s.[!pos] with
            | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
            | 'u' -> if !pos + 4 < n then pos := !pos + 4 else fail := true
            | _ -> fail := true);
            incr pos
          end
        | c when Char.code c < 0x20 -> fail := true
        | _ -> incr pos
    done
  in
  let number () =
    if peek () = Some '-' then incr pos;
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done;
      if !pos = d0 then fail := true
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value depth =
    if depth > 64 then fail := true
    else begin
      skip_ws ();
      match peek () with
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then incr pos
        else begin
          let more = ref true in
          while !more && not !fail do
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value (depth + 1);
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some '}' ->
              incr pos;
              more := false
            | _ -> fail := true
          done
        end
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then incr pos
        else begin
          let more = ref true in
          while !more && not !fail do
            value (depth + 1);
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos
            | Some ']' ->
              incr pos;
              more := false
            | _ -> fail := true
          done
        end
      | Some '"' -> string_ ()
      | Some 't' -> lit "true"
      | Some 'f' -> lit "false"
      | Some 'n' -> lit "null"
      | Some _ -> number ()
      | None -> fail := true
    end
  in
  value 0;
  skip_ws ();
  (not !fail) && !pos = n

let json_field j path =
  let rec go j = function
    | [] -> Some j
    | k :: rest -> (
      match j with
      | J_obj kvs -> Option.bind (List.assoc_opt k kvs) (fun v -> go v rest)
      | _ -> None)
  in
  go j path

let json_num j path =
  match json_field j path with
  | Some (J_int i) -> float_of_int i
  | Some (J_float f) -> f
  | _ -> nan
