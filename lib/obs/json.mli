(** Minimal JSON document tree shared by the bench reports and the
    Chrome trace exporter.

    Deliberately tiny: a constructor per JSON value, a pretty-printing
    emitter, a self-contained well-formedness validator (used by smoke
    checks so a malformed report fails the build instead of shipping),
    and path accessors for assertions over emitted documents. This is an
    emitter, not a parser — [json_well_formed] validates text without
    building a tree. *)

type json =
  | J_int of int
  | J_float of float  (** non-finite floats emit as [null] *)
  | J_bool of bool
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val json_emit : Buffer.t -> int -> json -> unit
(** [json_emit b ind j] appends [j] to [b] at indentation [ind]. *)

val json_to_string : json -> string

val json_well_formed : string -> bool
(** Validate that a string is a single well-formed JSON value. *)

val json_field : json -> string list -> json option
(** Follow a path of object keys. *)

val json_num : json -> string list -> float
(** Numeric field at a path; [nan] when absent or non-numeric. *)
