(** Per-domain execution spans, exported as Chrome trace-event JSON.

    Not {!Pbca_simsched.Trace} (the replay-simulation DAG): this module
    records {e real} wall-time intervals — which domain spent which
    microseconds in which phase — so a run can be opened in
    chrome://tracing / Perfetto and the phase breakdown printed next to
    the parse summary.

    Concurrency discipline (same as [Journal]): a completed span is
    appended to a lock-free {e per-domain} buffer (plain mutable list,
    owner-only writes, zero shared-cache traffic on the hot path);
    {!drain} runs at barriers, when no task is mid-append, and moves
    every buffer's batch into the shared collected set. A disabled trace
    costs one branch per call site.

    Span payloads carry the phase (Chrome category), a process-wide task
    ordinal assigned at [begin_span], and an optional code address. *)

type span = {
  sp_name : string;
  sp_phase : string;
  sp_tid : int;  (** domain id: the Chrome thread lane *)
  sp_ordinal : int;  (** task ordinal at begin, -1 for [null_span] *)
  sp_addr : int;  (** address payload, -1 when absent *)
  sp_t0 : float;  (** seconds since the trace epoch *)
  mutable sp_t1 : float;  (** end time; nan while the span is open *)
}

type t

val disabled : t
(** Every operation is a no-op (one branch). *)

val create : unit -> t
(** A live trace; its epoch is [Clock.now] at creation. *)

val enabled : t -> bool

val null_span : span

val begin_span : t -> ?phase:string -> ?addr:int -> string -> span
(** Open a span on the calling domain. [phase] defaults to ["task"]. *)

val end_span : t -> span -> unit
(** Close a span and append it to the calling domain's buffer. Must run
    on the domain that opened it (true for all callers: tasks do not
    migrate mid-execution). *)

val with_span : t -> ?phase:string -> ?addr:int -> string -> (unit -> 'a) -> 'a
(** Scoped span; closed on exception too. *)

val drain : t -> unit
(** Move every per-domain batch into the collected set. Call only at
    barriers / quiescent points (the caller guarantees no concurrent
    [end_span]), exactly like [Journal.flush]. *)

val spans : t -> span list
(** All completed spans (drains first), sorted by start time. *)

val wall : t -> float
(** Seconds since the trace epoch. *)

val covered_wall : t -> float
(** Union length of all span intervals — the numerator of the
    "spans cover >= 95% of parse wall time" acceptance check. *)

val phase_walls : t -> (string * float) list
(** Total span seconds per phase, sorted by phase name. *)

val chrome_json : t -> Json.json
val to_chrome_string : t -> string

val write_chrome : t -> string -> unit
(** Write the Chrome trace-event JSON array to a file. *)
