(** Named counter / gauge / histogram registry with per-run scoping.

    One registry is created per analysis run (each {!Pbca_core.Cfg.t}
    owns one), so two concurrent runs never share handles and resetting
    one run's numbers cannot clobber another's — the race the old
    process-global [Task_pool.reset_stats] had. Existing hot-path
    atomics are adopted with {!register_counter} (the registry stores
    the same [Atomic.t] the mutating code increments), so unification
    costs the hot paths nothing.

    Registration (find-or-create by name) takes a mutex; handle updates
    are plain atomics. Updates are linearizable: each increment is an
    [Atomic] RMW on a single cell. A snapshot reads each cell atomically
    (it is not a cross-cell consistent cut, which no caller needs). *)

type t

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered with a different kind. *)

val register_counter : t -> string -> int Atomic.t -> unit
(** Adopt an existing atomic as the named counter: the registry reads
    the very cell the caller keeps incrementing. *)

val gauge : t -> string -> gauge

val register_gauge_fn : t -> string -> (unit -> float) -> unit
(** Named gauge computed at snapshot time (e.g. a map's length). *)

val histogram : ?bounds:float array -> t -> string -> histogram
(** [bounds] are upper bucket bounds, strictly increasing; an implicit
    +inf bucket is appended. Default: log-spaced 1us..10s durations. *)

val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int
val set : gauge -> float -> unit
val value : gauge -> float
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { n : int; sum : float; buckets : (float * int) list }
      (** [buckets] pairs each upper bound (last is [infinity]) with its
          occupancy. *)

val snapshot : t -> (string * value) list
(** Current values, sorted by name. *)

val merge : into:t -> t -> unit
(** Fold a registry's current values into another: counters and
    histograms add, gauges take the source's value. Used to aggregate
    per-run registries across a corpus (bfuzz [--metrics]). *)

val diff :
  before:(string * value) list ->
  after:(string * value) list ->
  (string * value) list
(** What happened between two snapshots of one registry: counters and
    histogram buckets subtract, gauges keep the [after] value. *)

val pp : Format.formatter -> t -> unit
(** One [name value] line per entry, sorted by name. *)
