type span = {
  sp_name : string;
  sp_phase : string;
  sp_tid : int; (* domain id, the Chrome "thread" lane *)
  sp_ordinal : int; (* task ordinal at begin, -1 outside tasks *)
  sp_addr : int; (* address payload, -1 when not address-shaped *)
  sp_t0 : float; (* seconds since the trace epoch *)
  mutable sp_t1 : float; (* set at end_span; nan while open *)
}

(* Per-domain completed-span buffer. Only its owner domain appends;
   [drain] (master, at a barrier, no task running — the Journal
   discipline) moves the batch out. The [registered] flag is only ever
   read and written by the owner domain. *)
type buf = { mutable pending : span list; mutable registered : bool }

type t = {
  enabled : bool;
  epoch : float;
  next_ordinal : int Atomic.t;
  key : buf Domain.DLS.key;
  bufs : buf list Atomic.t; (* every per-domain buffer ever created *)
  drained : span list Atomic.t; (* batches moved out at barriers *)
}

let make ~enabled =
  {
    enabled;
    epoch = Clock.now ();
    next_ordinal = Atomic.make 0;
    key = Domain.DLS.new_key (fun () -> { pending = []; registered = false });
    bufs = Atomic.make [];
    drained = Atomic.make [];
  }

let disabled = make ~enabled:false
let create () = make ~enabled:true
let enabled t = t.enabled

let rec push_atomic cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (x :: cur)) then push_atomic cell x

let my_buf t =
  let b = Domain.DLS.get t.key in
  if not b.registered then begin
    b.registered <- true;
    push_atomic t.bufs b
  end;
  b

let null_span =
  {
    sp_name = "";
    sp_phase = "";
    sp_tid = -1;
    sp_ordinal = -1;
    sp_addr = -1;
    sp_t0 = nan;
    sp_t1 = nan;
  }

let next_ordinal t = Atomic.fetch_and_add t.next_ordinal 1

let begin_span t ?(phase = "task") ?(addr = -1) name =
  if not t.enabled then null_span
  else
    {
      sp_name = name;
      sp_phase = phase;
      sp_tid = (Domain.self () :> int);
      sp_ordinal = next_ordinal t;
      sp_addr = addr;
      sp_t0 = Clock.now () -. t.epoch;
      sp_t1 = nan;
    }

let end_span t s =
  if t.enabled && s != null_span then begin
    s.sp_t1 <- Clock.now () -. t.epoch;
    let b = my_buf t in
    b.pending <- s :: b.pending
  end

let with_span t ?phase ?addr name f =
  if not t.enabled then f ()
  else begin
    let s = begin_span t ?phase ?addr name in
    Fun.protect ~finally:(fun () -> end_span t s) f
  end

(* Barrier-time drain: take every buffer's batch. Caller guarantees
   quiescence (no task mid-[end_span]), exactly like [Journal.flush]. *)
let drain t =
  if t.enabled then
    List.iter
      (fun b ->
        match b.pending with
        | [] -> ()
        | batch ->
          b.pending <- [];
          List.iter (fun s -> push_atomic t.drained s) batch)
      (Atomic.get t.bufs)

let spans t =
  drain t;
  List.filter
    (fun s -> Float.is_finite s.sp_t1)
    (Atomic.get t.drained)
  |> List.sort (fun a b -> compare (a.sp_t0, a.sp_t1) (b.sp_t0, b.sp_t1))

let wall t = Clock.elapsed t.epoch

(* Union length of the span intervals: the "observed" fraction of a
   measured wall time, for the coverage acceptance check. *)
let covered_wall t =
  let iv =
    List.sort compare
      (List.map (fun s -> (s.sp_t0, s.sp_t1)) (spans t))
  in
  let rec go acc = function
    | [] -> acc
    | (lo, hi) :: rest ->
      let rec absorb hi = function
        | (lo2, hi2) :: rest2 when lo2 <= hi -> absorb (Float.max hi hi2) rest2
        | rest2 -> (hi, rest2)
      in
      let hi, rest = absorb hi rest in
      go (acc +. (hi -. lo)) rest
  in
  go 0.0 iv

(* Per-phase wall aggregation, for the Summary phase breakdown. Nested
   spans of the same phase double-count there; the breakdown therefore
   reports leaf-ish phases (callers pick disjoint phase names). *)
let phase_walls t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let cur = Option.value (Hashtbl.find_opt tbl s.sp_phase) ~default:0.0 in
      Hashtbl.replace tbl s.sp_phase (cur +. (s.sp_t1 -. s.sp_t0)))
    (spans t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export: an array of complete ("ph":"X") events,
   timestamps in microseconds, one Chrome thread lane per domain.
   Loadable in chrome://tracing and Perfetto.                          *)

let chrome_json t =
  let open Json in
  let ev (s : span) =
    let args =
      (if s.sp_ordinal >= 0 then [ ("ordinal", J_int s.sp_ordinal) ] else [])
      @
      if s.sp_addr >= 0 then
        [ ("addr", J_str (Printf.sprintf "0x%x" s.sp_addr)) ]
      else []
    in
    J_obj
      ([
         ("name", J_str s.sp_name);
         ("cat", J_str s.sp_phase);
         ("ph", J_str "X");
         (* integer microseconds: Json floats print %.6g, which would
            round a multi-second ts to ~10us and jumble lane ordering *)
         ("ts", J_int (int_of_float (Float.round (s.sp_t0 *. 1e6))));
         ("dur", J_int (max 1 (int_of_float (Float.round ((s.sp_t1 -. s.sp_t0) *. 1e6)))));
         ("pid", J_int 1);
         ("tid", J_int s.sp_tid);
       ]
      @ match args with [] -> [] | a -> [ ("args", J_obj a) ])
  in
  J_arr (List.map ev (spans t))

let to_chrome_string t = Json.json_to_string (chrome_json t)

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_string t))
