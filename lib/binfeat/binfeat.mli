(** Binary code feature extraction: the BinFeat case study (paper Sections
    7 and 8.3).

    Extracts the feature families used by machine-learning-based software
    forensics (compiler identification, authorship attribution):

    - IF, instruction features: opcode n-grams (n = 1, 2, 3) per function;
    - CF, control-flow features: block out-degree shapes, edge-kind
      histograms, loop counts and nesting depths;
    - DF, data-flow features: live-register counts and stack-height shapes
      (the costliest stage, dominated by large functions — the load
      imbalance discussed in Section 8.3).

    The pipeline runs in the paper's four stages — CFG construction over
    the whole corpus, then IF, CF, DF extraction over all functions sorted
    large-first (Listing 7) — each stage timed and traced. The global
    feature index is a parallel reduction over per-worker partial counts. *)

type stage = {
  st_name : string;  (** "cfg", "if", "cf" or "df" *)
  st_wall : float;
  st_trace : Pbca_simsched.Trace.t;
  st_work : int;
}

type index = (string, int) Hashtbl.t
(** feature -> occurrence count over the corpus *)

type result = {
  stages : stage list;
  index : index;
  n_binaries : int;
  n_funcs : int;
  n_features : int;
}

val extract :
  ?config:Pbca_core.Config.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t list ->
  result

val extract_streamed :
  ?config:Pbca_core.Config.t ->
  ?otrace:Pbca_obs.Trace.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t list ->
  result
(** Streaming pipeline (PR7): one overlapped [stream] stage instead of
    the cfg/if/cf/df barriers. The finalize readiness protocol publishes
    each function on a bounded {!Pbca_concurrent.Channel} the moment its
    facts settle, and low-priority consumer tasks run all three feature
    families per function into consumer-local tables, merged after the
    channel closes. The resulting [index] is equal to {!extract}'s
    (feature counting is commutative); [stages] collapses to the single
    [stream] entry. Channel occupancy is recorded into each graph's
    stats. At one thread the pipeline degenerates to the calling domain
    extracting each function synchronously at publication. *)

(** {2 Per-function extractors}

    Exposed for {!Similarity} and custom pipelines; each returns a local
    feature table for one function and charges its cost to the trace. *)

val bump : (string, int) Hashtbl.t -> string -> int -> unit

val insn_features :
  Pbca_core.Cfg.t ->
  Pbca_simsched.Trace.t ->
  Pbca_analysis.Func_view.t ->
  (string, int) Hashtbl.t

val cf_features :
  Pbca_core.Cfg.t ->
  Pbca_simsched.Trace.t ->
  Pbca_analysis.Func_view.t ->
  (string, int) Hashtbl.t

val df_features :
  Pbca_core.Cfg.t ->
  Pbca_simsched.Trace.t ->
  Pbca_analysis.Func_view.t ->
  (string, int) Hashtbl.t

val stage_wall : result -> string -> float
val total_wall : result -> float
val top_features : result -> int -> (string * int) list
