module Cfg = Pbca_core.Cfg
module Insn = Pbca_isa.Insn
module Task_pool = Pbca_concurrent.Task_pool
module Trace = Pbca_simsched.Trace

type stage = {
  st_name : string;
  st_wall : float;
  st_trace : Trace.t;
  st_work : int;
}

type index = (string, int) Hashtbl.t

type result = {
  stages : stage list;
  index : index;
  n_binaries : int;
  n_funcs : int;
  n_features : int;
}

(* monotonic: a wall-clock step mid-stage must not skew stage walls *)
let time f =
  let t0 = Pbca_obs.Clock.now () in
  let v = f () in
  (v, Pbca_obs.Clock.elapsed t0)

let bump tbl feat n =
  Hashtbl.replace tbl feat (n + Option.value (Hashtbl.find_opt tbl feat) ~default:0)

let merge_into dst src = Hashtbl.iter (fun k v -> bump dst k v) src

(* ------------------------------------------------------------------ *)
(* Feature extractors, each returning a local table for one function.  *)

let insn_features g trace (fv : Pbca_analysis.Func_view.t) =
  let tbl = Hashtbl.create 64 in
  for i = 0 to Pbca_analysis.Func_view.n_blocks fv - 1 do
    let ms =
      List.map (fun (_, insn, _) -> Insn.mnemonic insn)
        (Pbca_analysis.Func_view.insns g fv i)
    in
    Trace.tick trace (List.length ms);
    let rec grams = function
      | [] -> ()
      | a :: rest ->
        bump tbl ("if1:" ^ a) 1;
        (match rest with
        | b :: rest2 ->
          bump tbl ("if2:" ^ a ^ "," ^ b) 1;
          (match rest2 with
          | c :: _ -> bump tbl ("if3:" ^ a ^ "," ^ b ^ "," ^ c) 1
          | [] -> ())
        | [] -> ());
        grams rest
    in
    grams ms
  done;
  tbl

let cf_features g trace (fv : Pbca_analysis.Func_view.t) =
  ignore g;
  let tbl = Hashtbl.create 32 in
  let n = Pbca_analysis.Func_view.n_blocks fv in
  Trace.tick trace (2 * n);
  for i = 0 to n - 1 do
    bump tbl (Printf.sprintf "cf:deg%d" (List.length fv.succ.(i))) 1
  done;
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          bump tbl
            (Format.asprintf "cf:edge_%a" Cfg.pp_edge_kind e.e_kind)
            1)
        (Cfg.out_edges b))
    fv.blocks;
  let dom = Pbca_analysis.Dominators.compute fv in
  let loops = Pbca_analysis.Loops.compute fv dom in
  Trace.tick trace (3 * n);
  bump tbl
    (Printf.sprintf "cf:loops%d" (Pbca_analysis.Loops.loop_count loops))
    1;
  bump tbl
    (Printf.sprintf "cf:maxdepth%d" (Pbca_analysis.Loops.max_depth loops))
    1;
  tbl

let df_features g trace (fv : Pbca_analysis.Func_view.t) =
  let tbl = Hashtbl.create 32 in
  let n = Pbca_analysis.Func_view.n_blocks fv in
  (* data-flow analyses are super-linear in function size (value sets and
     stack frames grow with the region analyzed), so the few huge functions
     dominate the stage and bound its scaling — the imbalance the paper
     reports for DF (Section 8.3, 9x max speedup) *)
  Trace.tick trace ((n * 8) + (n * n / 6));
  let live = Pbca_analysis.Liveness.compute g fv in
  for i = 0 to n - 1 do
    bump tbl
      (Printf.sprintf "df:live%d"
         (Pbca_isa.Reg.Set.cardinal live.Pbca_analysis.Liveness.live_in.(i)))
      1
  done;
  let hts = Pbca_analysis.Stack_height.compute g fv in
  for i = 0 to n - 1 do
    bump tbl
      (Format.asprintf "df:sp_%a" Pbca_analysis.Stack_height.pp_height
         hts.Pbca_analysis.Stack_height.at_entry.(i))
      1
  done;
  tbl

(* ------------------------------------------------------------------ *)

let extract ?(config = Pbca_core.Config.default) ~pool images =
  let stages = ref [] in
  (* stage 1: CFG construction over the corpus *)
  let cfg_trace = Trace.create () in
  let cfgs, t_cfg =
    time (fun () ->
        List.map
          (fun image ->
            Pbca_core.Parallel.parse_and_finalize ~config ~trace:cfg_trace
              ~pool image)
          images)
  in
  stages :=
    {
      st_name = "cfg";
      st_wall = t_cfg;
      st_trace = cfg_trace;
      st_work = Trace.total_work cfg_trace;
    }
    :: !stages;
  (* function views over all binaries, sorted large-first (Listing 7) *)
  let all_funcs =
    List.concat_map
      (fun g -> List.map (fun f -> (g, f)) (Cfg.funcs_list g))
      cfgs
  in
  let arr = Array.of_list all_funcs in
  Array.sort
    (fun (_, a) (_, b) ->
      compare (List.length b.Cfg.f_blocks) (List.length a.Cfg.f_blocks))
    arr;
  let run_stage name extractor =
    let trace = Trace.create () in
    let partials = Array.init (Task_pool.threads pool) (fun _ -> Hashtbl.create 1024) in
    let (), wall =
      time (fun () ->
          Task_pool.run pool (fun spawn ->
              Array.iter
                (fun (g, f) ->
                  let d = Trace.capture trace in
                  spawn (fun () ->
                      Trace.run trace ~label:name ~deps:[ d ] (fun () ->
                          let fv = Pbca_analysis.Func_view.make g f in
                          let tbl = extractor g trace fv in
                          merge_into partials.(Task_pool.worker_index ()) tbl)))
                arr))
    in
    (* reduction of per-worker partials: a serial tail charged to the
       stage's trace (the paper parallelizes it as a generic reduction; the
       final combine remains sequential) *)
    let merged = Hashtbl.create 4096 in
    Trace.barrier trace;
    Trace.run trace ~label:(name ^ "-reduce") ~deps:[] (fun () ->
        Array.iter
          (fun p ->
            Trace.tick trace (Hashtbl.length p / 4);
            merge_into merged p)
          partials);
    stages :=
      {
        st_name = name;
        st_wall = wall;
        st_trace = trace;
        st_work = Trace.total_work trace;
      }
      :: !stages;
    merged
  in
  let if_idx = run_stage "if" insn_features in
  let cf_idx = run_stage "cf" cf_features in
  let df_idx = run_stage "df" df_features in
  let index = Hashtbl.create 8192 in
  merge_into index if_idx;
  merge_into index cf_idx;
  merge_into index df_idx;
  {
    stages = List.rev !stages;
    index;
    n_binaries = List.length images;
    n_funcs = Array.length arr;
    n_features = Hashtbl.length index;
  }

(* ------------------------------------------------------------------ *)
(* Streaming extraction (PR7): one overlapped stage instead of the
   cfg / if / cf / df barriers. The finalize readiness protocol
   publishes [(g, f)] pairs on a bounded channel as functions settle,
   and low-priority consumer tasks run all three feature families per
   function into consumer-local tables (no [worker_index] indexing —
   under cross-region stealing two domains can share a slot), merged
   into the index after the channel closes. The resulting index is
   equal to the barrier path's: feature counting is commutative. *)

module Channel = Pbca_concurrent.Channel

let extract_streamed ?(config = Pbca_core.Config.default)
    ?(otrace = Pbca_obs.Trace.disabled) ~pool images =
  let n = Task_pool.threads pool in
  let trace = Trace.create () in
  let index = Hashtbl.create 8192 in
  let n_funcs = Atomic.make 0 in
  let extract_one g f tbl =
    let fv = Pbca_analysis.Func_view.make g f in
    Pbca_obs.Trace.with_span otrace ~phase:"stage" "features" (fun () ->
        Trace.run trace ~label:"feat" ~deps:[] (fun () ->
            merge_into tbl (insn_features g trace fv);
            merge_into tbl (cf_features g trace fv);
            merge_into tbl (df_features g trace fv)))
  in
  let (), wall =
    time (fun () ->
        if n = 1 then
          (* sequential streaming: the calling domain extracts each
             function synchronously at publication — still no barrier
             between finalization and feature extraction *)
          List.iter
            (fun image ->
              let g =
                Pbca_core.Parallel.parse ~config ~trace ~otrace ~pool image
              in
              Pbca_core.Finalize.run ~pool g ~on_ready:(fun f ->
                  Atomic.incr n_funcs;
                  extract_one g f index))
            images
        else begin
          let ch = Channel.create ~otrace ~name:"feat" ~capacity:64 () in
          let partials = Atomic.make [] in
          let rec push_partial tbl =
            let cur = Atomic.get partials in
            if not (Atomic.compare_and_set partials cur (tbl :: cur)) then
              push_partial tbl
          in
          let consumers_h =
            Task_pool.submit ~priority:(-1) pool (fun spawn ->
                for _ = 1 to max 1 (n - 1) do
                  spawn (fun () ->
                      let tbl = Hashtbl.create 1024 in
                      let rec loop () =
                        match Channel.recv ch with
                        | Some (g, f) ->
                          extract_one g f tbl;
                          loop ()
                        | None -> push_partial tbl
                      in
                      loop ())
                done)
          in
          let cfgs =
            List.map
              (fun image ->
                let g =
                  Pbca_core.Parallel.parse ~config ~trace ~otrace ~pool image
                in
                Pbca_core.Finalize.run ~pool g ~on_ready:(fun f ->
                    Atomic.incr n_funcs;
                    Channel.send ch (g, f));
                g)
              images
          in
          Channel.close ch;
          Task_pool.await consumers_h;
          List.iter (fun tbl -> merge_into index tbl) (Atomic.get partials);
          (* the channel is shared across the corpus: each graph's stats
             carry the same stream occupancy numbers *)
          List.iter
            (fun g ->
              let s = g.Cfg.stats in
              Atomic.set s.Cfg.stream_hwm (Channel.high_water ch);
              Atomic.set s.Cfg.stream_consumer_idle_us
                (int_of_float (Channel.consumer_idle_wall ch *. 1e6));
              Atomic.set s.Cfg.stream_producer_block_us
                (int_of_float (Channel.producer_block_wall ch *. 1e6)))
            cfgs
        end;
        Pbca_obs.Trace.drain otrace)
  in
  {
    stages =
      [
        {
          st_name = "stream";
          st_wall = wall;
          st_trace = trace;
          st_work = Trace.total_work trace;
        };
      ];
    index;
    n_binaries = List.length images;
    n_funcs = Atomic.get n_funcs;
    n_features = Hashtbl.length index;
  }

let stage_wall r name =
  List.fold_left
    (fun acc s -> if s.st_name = name then acc +. s.st_wall else acc)
    0.0 r.stages

let total_wall r = List.fold_left (fun acc s -> acc +. s.st_wall) 0.0 r.stages

let top_features r n =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.index []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.filteri (fun i _ -> i < n)
