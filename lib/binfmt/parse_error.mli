(** Structured parse and analysis errors.

    One taxonomy shared by every layer that touches untrusted bytes: the
    container reader ({!Image}), section byte accessors ({!Section}), the
    symbol table ({!Symtab}) and the downstream analyses. Malformed input
    must surface as a value of this type — never as [Failure _],
    [Not_found] or [Invalid_argument _] — so that tools can distinguish
    "hostile binary" (expected, exit code 2) from "internal bug" (exit
    code 3), and so a fuzzer can assert that no other exception ever
    escapes. *)

type t =
  | Truncated of { what : string; pos : int }
      (** input ended inside [what]; [pos] is the reader offset *)
  | Bad_magic of { got : string }
  | Bad_section of { name : string; reason : string }
      (** a structurally invalid section, symbol or header field *)
  | Decode_fault of { addr : int; section : string }
      (** a byte read outside section bounds, at the faulting address *)
  | Budget_exhausted of { site : string; addr : int; limit : int }
      (** an analysis budget ran out at [addr]; the analysis degraded to
          its safe over-approximation rather than aborting *)
  | Task_failed of { site : string; detail : string }
      (** a parallel task died; the region drained and the result is a
          partial CFG *)

exception Error of t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
