(** Multi-keyed parallel symbol table (paper Section 6.2, Listing 6).

    Supports lookup by offset, mangled name, pretty name and typed name. The
    original Dyninst structure was a Boost [multi_index_container] behind one
    mutex; the redesign — reproduced here — keys a master concurrent map by
    the symbol itself, and lets the thread that wins the master insertion
    update the four secondary indices while holding the master entry's lock,
    so the collective entries are updated in a total order. Lookups are only
    issued in quiescent phases, so they need no locking discipline beyond the
    per-entry atomicity the maps already give. *)

type t

val create : ?shards:int -> unit -> t

val insert : t -> Symbol.t -> bool
(** [insert t s] adds [s] to every index. Returns [false] (and changes
    nothing) if an equal symbol was already present. Safe to call from many
    domains concurrently. *)

val by_offset : t -> int -> Symbol.t list
val by_mangled : t -> string -> Symbol.t list
val by_pretty : t -> string -> Symbol.t list
val by_typed : t -> string -> Symbol.t list
val length : t -> int

val functions : t -> Symbol.t list
(** All [Func] symbols, unordered. *)

val fold : (Symbol.t -> 'a -> 'a) -> t -> 'a -> 'a
val write : Bio.W.t -> t -> unit

val read : Bio.R.t -> t
(** Raises [Parse_error.Error (Truncated _)] when the reader runs dry
    mid-table. *)
