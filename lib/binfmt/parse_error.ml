type t =
  | Truncated of { what : string; pos : int }
  | Bad_magic of { got : string }
  | Bad_section of { name : string; reason : string }
  | Decode_fault of { addr : int; section : string }
  | Budget_exhausted of { site : string; addr : int; limit : int }
  | Task_failed of { site : string; detail : string }

exception Error of t

let to_string = function
  | Truncated { what; pos } -> Printf.sprintf "truncated %s at byte %d" what pos
  | Bad_magic { got } -> Printf.sprintf "bad magic %S" got
  | Bad_section { name; reason } ->
    Printf.sprintf "bad section %s: %s" name reason
  | Decode_fault { addr; section } ->
    Printf.sprintf "decode fault at 0x%x in %s" addr section
  | Budget_exhausted { site; addr; limit } ->
    Printf.sprintf "budget exhausted at 0x%x (%s, limit %d)" addr site limit
  | Task_failed { site; detail } ->
    Printf.sprintf "task failed (%s): %s" site detail

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Parse_error: " ^ to_string e)
    | _ -> None)
