(** A loaded binary: the SBF (Simple Binary Format) container.

    Plays the role of an ELF image in the paper: a [.text] section holding
    encoded instructions, [.rodata] holding jump-table data, [.symtab] the
    multi-keyed symbol table, and an optional [.debug] blob parsed by
    {!Pbca_debuginfo}. Byte and instruction reads are pure, so any number of
    threads may decode concurrently. *)

type t = {
  name : string;
  sections : Section.t list;
  symtab : Symtab.t;
  entry : int;  (** program entry point address, 0 if none *)
  dcache : Decode_cache.t;
      (** shared decoded-instruction cache over [.text]; consulted by
          {!decode_at}, so every analysis pass (parse, traversal, jump-table
          slicing, finalization) reuses every other pass's decode work *)
}

val make :
  name:string -> ?entry:int -> sections:Section.t list -> Symtab.t -> t

val section : t -> string -> Section.t option

val text_opt : t -> Section.t option
(** The [.text] section, when the image has one. *)

val text : t -> Section.t
(** The [.text] section. Raises [Parse_error.Error (Bad_section _)] if the
    image has none. *)

val find_section_at : t -> int -> Section.t option
val u8 : t -> int -> int option
val u32 : t -> int -> int option

val in_text : t -> int -> bool
(** True when the address lies inside [.text]. *)

val decode_at : t -> int -> (Pbca_isa.Insn.t * int) option
(** Decode the instruction at a virtual address in [.text], memoized
    through {!dcache} (both successes and failures are cached). *)

val text_size : t -> int
val total_size : t -> int

val write : t -> Bytes.t
(** Serialize to the SBF byte format. *)

val read_result : ?name:string -> Bytes.t -> (t, Parse_error.t) result
(** Parse an SBF byte image. Malformed input — wrong magic, truncation
    anywhere, or out-of-range section/symbol/entry addresses — yields a
    structured [Error]; no other exception escapes for any input bytes. *)

val read : ?name:string -> Bytes.t -> t
(** Like {!read_result} but raises [Parse_error.Error] on malformed
    input. *)

val strip : ?keep:(Symbol.t -> bool) -> t -> t
(** Remove symbols, as [strip] does to a real binary (paper Section 9:
    stripped binaries lose [.symtab] but keep dynamic symbols). [keep]
    selects survivors; by default only [Object] symbols remain, so every
    function must be discovered through control flow from the entry
    point. *)

val save : t -> string -> unit
val load : string -> t
