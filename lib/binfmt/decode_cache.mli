(** Shared per-image decoded-instruction cache.

    One slot per [.text] byte offset memoizing {!Pbca_isa.Codec.decode} at
    that address — including decode {e failures}, which jump-table target
    validation probes repeatedly. Decoding is pure, so the cache is written
    racily without per-slot synchronization: concurrent writers store
    semantically identical values, and a stale read merely costs one
    redundant decode (the rationale is spelled out in the implementation).

    This replaces per-call-site re-decoding in block queries
    ([Disasm.block_insns]), finalization's instruction recount, and the
    jump-table slicer, and supersedes the parser's old thread-local decoded
    set: every thread now benefits from every other thread's decode work.

    Hit/miss counters are the observability half: a healthy parallel parse
    shows a high hit rate because blocks are re-walked by traversal,
    slicing and finalization long after their first linear scan. *)

type slot = Unknown | Bad | Ins of Pbca_isa.Insn.t * int
(** [Bad]: the address decodes to nothing (memoized failure). [Ins (i,
    len)]: instruction and its encoded length. *)

type t

val create : base:int -> size:int -> t
(** Cache for addresses [base, base + size). *)

val find : t -> int -> slot
(** [Unknown] for out-of-range addresses or not-yet-decoded slots; counts
    a hit or miss for in-range lookups. *)

val store : t -> int -> (Pbca_isa.Insn.t * int) option -> unit
(** Memoize a decode result; out-of-range stores are ignored. *)

val hits : t -> int
val misses : t -> int
val hit_rate : t -> float
