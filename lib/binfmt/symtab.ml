module Sym_key = struct
  type t = Symbol.t

  let equal = Symbol.equal
  let hash = Symbol.hash
end

module Master = Pbca_concurrent.Conc_hash.Make (Sym_key)

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end

module By_int = Pbca_concurrent.Conc_hash.Make (Int_key)

module Str_key = struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end

module By_str = Pbca_concurrent.Conc_hash.Make (Str_key)

type t = {
  master : unit Master.t;
  by_offset : Symbol.t list By_int.t;
  by_mangled : Symbol.t list By_str.t;
  by_pretty : Symbol.t list By_str.t;
  by_typed : Symbol.t list By_str.t;
}

let create ?(shards = 64) () =
  {
    master = Master.create ~shards ();
    by_offset = By_int.create ~shards ();
    by_mangled = By_str.create ~shards ();
    by_pretty = By_str.create ~shards ();
    by_typed = By_str.create ~shards ();
  }

let push_int m k s =
  By_int.update m k (fun cur ->
      (Some (s :: Option.value cur ~default:[]), ()))

let push_str m k s =
  By_str.update m k (fun cur ->
      (Some (s :: Option.value cur ~default:[]), ()))

let insert t s =
  (* The master insertion mediates between threads: only the winner updates
     the secondary indices (paper Listing 6). *)
  if Master.insert_if_absent t.master s () then begin
    push_int t.by_offset s.Symbol.offset s;
    push_str t.by_mangled s.Symbol.mangled s;
    push_str t.by_pretty (Symbol.pretty s) s;
    push_str t.by_typed (Symbol.typed s) s;
    true
  end
  else false

let by_offset t off = Option.value (By_int.find t.by_offset off) ~default:[]
let by_mangled t n = Option.value (By_str.find t.by_mangled n) ~default:[]
let by_pretty t n = Option.value (By_str.find t.by_pretty n) ~default:[]
let by_typed t n = Option.value (By_str.find t.by_typed n) ~default:[]
let length t = Master.length t.master
let fold f t init = Master.fold (fun s () acc -> f s acc) t.master init

let functions t =
  fold (fun s acc -> if Symbol.is_func s then s :: acc else acc) t []

let write w t =
  let all = fold (fun s acc -> s :: acc) t [] in
  let all =
    List.sort
      (fun a b ->
        match compare a.Symbol.offset b.Symbol.offset with
        | 0 -> compare a.Symbol.mangled b.Symbol.mangled
        | c -> c)
      all
  in
  Bio.W.u32 w (List.length all);
  List.iter (Symbol.write w) all

let read r =
  let n = Bio.R.u32 r in
  let t = create () in
  (try
     for _ = 1 to n do
       ignore (insert t (Symbol.read r))
     done
   with Bio.R.Truncated ->
     raise
       (Parse_error.Error
          (Parse_error.Truncated { what = "symbol table"; pos = Bio.R.pos r })));
  t
