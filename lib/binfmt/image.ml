type t = {
  name : string;
  sections : Section.t list;
  symtab : Symtab.t;
  entry : int;
  dcache : Decode_cache.t;
}

let dcache_of_sections sections =
  match List.find_opt (fun s -> s.Section.name = ".text") sections with
  | Some s -> Decode_cache.create ~base:s.Section.addr ~size:(Section.size s)
  | None -> Decode_cache.create ~base:0 ~size:0

let make ~name ?(entry = 0) ~sections symtab =
  { name; sections; symtab; entry; dcache = dcache_of_sections sections }

let section t n = List.find_opt (fun s -> s.Section.name = n) t.sections

let text t =
  match section t ".text" with Some s -> s | None -> raise Not_found

let find_section_at t a = List.find_opt (fun s -> Section.contains s a) t.sections

let u8 t a =
  match find_section_at t a with Some s -> Some (Section.u8 s a) | None -> None

let u32 t a =
  match find_section_at t a with
  | Some s when Section.contains s (a + 3) -> Some (Section.u32 s a)
  | _ -> None

let in_text t a =
  match section t ".text" with Some s -> Section.contains s a | None -> false

let decode_at t a =
  match Decode_cache.find t.dcache a with
  | Decode_cache.Ins (i, len) -> Some (i, len)
  | Decode_cache.Bad -> None
  | Decode_cache.Unknown -> (
    match section t ".text" with
    | Some s when Section.contains s a ->
      let r = Pbca_isa.Codec.decode s.Section.data ~pos:(a - s.Section.addr) in
      Decode_cache.store t.dcache a r;
      r
    | _ -> None)

let text_size t = match section t ".text" with Some s -> Section.size s | None -> 0
let total_size t = List.fold_left (fun acc s -> acc + Section.size s) 0 t.sections

let magic = "SBF1"

let write t =
  let w = Bio.W.create () in
  Bio.W.str w magic;
  Bio.W.str w t.name;
  Bio.W.u64 w t.entry;
  Bio.W.u32 w (List.length t.sections);
  List.iter
    (fun s ->
      Bio.W.str w s.Section.name;
      Bio.W.u64 w s.Section.addr;
      Bio.W.bytes w s.Section.data)
    t.sections;
  let symw = Bio.W.create () in
  Symtab.write symw t.symtab;
  Bio.W.bytes w (Bio.W.contents symw);
  Bio.W.contents w

let read ?name data =
  let r = Bio.R.of_bytes data in
  (try if Bio.R.str r <> magic then failwith "Image.read: bad magic"
   with Bio.R.Truncated -> failwith "Image.read: truncated header");
  try
    let stored_name = Bio.R.str r in
    let entry = Bio.R.u64 r in
    let n = Bio.R.u32 r in
    let sections =
      List.init n (fun _ ->
          let sname = Bio.R.str r in
          let addr = Bio.R.u64 r in
          let data = Bio.R.bytes r in
          Section.make ~name:sname ~addr data)
    in
    let symtab = Symtab.read (Bio.R.of_bytes (Bio.R.bytes r)) in
    {
      name = Option.value name ~default:stored_name;
      sections;
      symtab;
      entry;
      dcache = dcache_of_sections sections;
    }
  with Bio.R.Truncated -> failwith "Image.read: truncated container"

let strip ?keep t =
  let keep =
    match keep with
    | Some f -> f
    | None -> fun (s : Symbol.t) -> not (Symbol.is_func s)
  in
  let tab = Symtab.create () in
  Symtab.fold
    (fun s () -> if keep s then ignore (Symtab.insert tab s))
    t.symtab ();
  { t with symtab = tab }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (write t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      read ~name:(Filename.basename path) data)
