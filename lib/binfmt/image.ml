type t = {
  name : string;
  sections : Section.t list;
  symtab : Symtab.t;
  entry : int;
  dcache : Decode_cache.t;
}

let dcache_of_sections sections =
  match List.find_opt (fun s -> s.Section.name = ".text") sections with
  | Some s -> Decode_cache.create ~base:s.Section.addr ~size:(Section.size s)
  | None -> Decode_cache.create ~base:0 ~size:0

let make ~name ?(entry = 0) ~sections symtab =
  { name; sections; symtab; entry; dcache = dcache_of_sections sections }

let section t n = List.find_opt (fun s -> s.Section.name = n) t.sections

let text_opt t = section t ".text"

let text t =
  match section t ".text" with
  | Some s -> s
  | None ->
    raise
      (Parse_error.Error
         (Parse_error.Bad_section { name = ".text"; reason = "missing" }))

let find_section_at t a = List.find_opt (fun s -> Section.contains s a) t.sections

let u8 t a =
  match find_section_at t a with Some s -> Some (Section.u8 s a) | None -> None

let u32 t a =
  match find_section_at t a with
  | Some s when Section.contains s (a + 3) -> Some (Section.u32 s a)
  | _ -> None

let in_text t a =
  match section t ".text" with Some s -> Section.contains s a | None -> false

let decode_at t a =
  match Decode_cache.find t.dcache a with
  | Decode_cache.Ins (i, len) -> Some (i, len)
  | Decode_cache.Bad -> None
  | Decode_cache.Unknown -> (
    match section t ".text" with
    | Some s when Section.contains s a ->
      let r = Pbca_isa.Codec.decode s.Section.data ~pos:(a - s.Section.addr) in
      Decode_cache.store t.dcache a r;
      r
    | _ -> None)

let text_size t = match section t ".text" with Some s -> Section.size s | None -> 0
let total_size t = List.fold_left (fun acc s -> acc + Section.size s) 0 t.sections

let magic = "SBF1"

let write t =
  let w = Bio.W.create () in
  Bio.W.str w magic;
  Bio.W.str w t.name;
  Bio.W.u64 w t.entry;
  Bio.W.u32 w (List.length t.sections);
  List.iter
    (fun s ->
      Bio.W.str w s.Section.name;
      Bio.W.u64 w s.Section.addr;
      Bio.W.bytes w s.Section.data)
    t.sections;
  let symw = Bio.W.create () in
  Symtab.write symw t.symtab;
  Bio.W.bytes w (Bio.W.contents symw);
  Bio.W.contents w

(* Addresses above this bound (or negative ones: a hostile u64 with bit 63
   set reads back as a negative OCaml int) would poison downstream integer
   sets and allocators, so the reader rejects them up front. *)
let max_valid_addr = 1 lsl 52

let read_result ?name data =
  let r = Bio.R.of_bytes data in
  let fail e = raise (Parse_error.Error e) in
  try
    let m = try Bio.R.str r with Bio.R.Truncated -> "" in
    if m <> magic then fail (Parse_error.Bad_magic { got = m });
    let stored_name = Bio.R.str r in
    let entry = Bio.R.u64 r in
    if entry < 0 || entry >= max_valid_addr then
      fail
        (Parse_error.Bad_section
           {
             name = "header";
             reason = Printf.sprintf "entry 0x%x out of range" entry;
           });
    let n = Bio.R.u32 r in
    if n > Bytes.length data then
      fail
        (Parse_error.Bad_section
           {
             name = "header";
             reason =
               Printf.sprintf "section count %d exceeds container size" n;
           });
    let sections =
      List.init n (fun _ ->
          let sname = Bio.R.str r in
          let addr = Bio.R.u64 r in
          let sdata = Bio.R.bytes r in
          if addr < 0 || addr + Bytes.length sdata > max_valid_addr then
            fail
              (Parse_error.Bad_section
                 {
                   name = sname;
                   reason =
                     Printf.sprintf "range [0x%x,0x%x) out of bounds" addr
                       (addr + Bytes.length sdata);
                 });
          Section.make ~name:sname ~addr sdata)
    in
    let symtab = Symtab.read (Bio.R.of_bytes (Bio.R.bytes r)) in
    Symtab.fold
      (fun (s : Symbol.t) () ->
        if s.offset < 0 || s.offset >= max_valid_addr then
          fail
            (Parse_error.Bad_section
               {
                 name = ".symtab";
                 reason =
                   Printf.sprintf "symbol %s offset 0x%x out of range"
                     s.mangled s.offset;
               }))
      symtab ();
    Ok
      {
        name = Option.value name ~default:stored_name;
        sections;
        symtab;
        entry;
        dcache = dcache_of_sections sections;
      }
  with
  | Bio.R.Truncated ->
    Error (Parse_error.Truncated { what = "container"; pos = Bio.R.pos r })
  | Parse_error.Error e -> Error e

let read ?name data =
  match read_result ?name data with
  | Ok t -> t
  | Error e -> raise (Parse_error.Error e)

let strip ?keep t =
  let keep =
    match keep with
    | Some f -> f
    | None -> fun (s : Symbol.t) -> not (Symbol.is_func s)
  in
  let tab = Symtab.create () in
  Symtab.fold
    (fun s () -> if keep s then ignore (Symtab.insert tab s))
    t.symtab ();
  { t with symtab = tab }

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (write t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      read ~name:(Filename.basename path) data)
