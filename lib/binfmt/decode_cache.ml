type slot = Unknown | Bad | Ins of Pbca_isa.Insn.t * int

type t = {
  base : int;
  slots : slot array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ~base ~size =
  {
    base;
    slots = Array.make (max 0 size) Unknown;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let in_range t a = a >= t.base && a - t.base < Array.length t.slots

(* The slot array is written racily on purpose: decode is a pure function
   of the immutable image bytes, so every writer of a slot writes the same
   (semantically equal) value. Under the OCaml 5 memory model a racy read
   returns either the initial [Unknown] (harmless: the caller re-decodes)
   or some previously written slot, and published immutable blocks are
   always seen fully initialized — so the cache needs no per-slot atomics,
   keeping it one word per text byte. *)
let find t a =
  if not (in_range t a) then Unknown
  else begin
    let s = t.slots.(a - t.base) in
    (match s with
    | Unknown -> Atomic.incr t.misses
    | Bad | Ins _ -> Atomic.incr t.hits);
    s
  end

let store t a r =
  if in_range t a then
    t.slots.(a - t.base) <-
      (match r with None -> Bad | Some (i, len) -> Ins (i, len))

let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses

let hit_rate t =
  let h = hits t and m = misses t in
  if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
