type t = { name : string; addr : int; data : Bytes.t }

let make ~name ~addr data = { name; addr; data }
let size t = Bytes.length t.data
let contains t a = a >= t.addr && a < t.addr + Bytes.length t.data

let u8 t a =
  if not (contains t a) then
    raise (Parse_error.Error (Parse_error.Decode_fault { addr = a; section = t.name }));
  Char.code (Bytes.get t.data (a - t.addr))

let u32 t a = u8 t a lor (u8 t (a + 1) lsl 8) lor (u8 t (a + 2) lsl 16)
              lor (u8 t (a + 3) lsl 24)

let pp fmt t =
  Format.fprintf fmt "%s [0x%x, 0x%x) %d bytes" t.name t.addr
    (t.addr + Bytes.length t.data)
    (Bytes.length t.data)
