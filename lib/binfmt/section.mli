(** A named, addressed region of the binary. *)

type t = { name : string; addr : int; data : Bytes.t }

val make : name:string -> addr:int -> Bytes.t -> t
val size : t -> int
val contains : t -> int -> bool
(** [contains s a] is true when virtual address [a] falls inside [s]. *)

val u8 : t -> int -> int
(** [u8 s a] reads the byte at virtual address [a]. Raises
    [Parse_error.Error (Decode_fault _)] carrying the faulting address when
    [a] is out of range. *)

val u32 : t -> int -> int
(** Little-endian 32-bit read at virtual address [a]. *)

val pp : Format.formatter -> t -> unit
