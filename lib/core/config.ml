type t = {
  eager_noreturn : bool;
  decode_cache : bool;
  jt_union : bool;
  jt_max_scan : int;
  shards : int;
  max_block_bytes : int;
  max_slice_steps : int;
  max_table_entries : int;
  deadline_s : float;
  deadline_poll_every : int;
  csr_compact_threshold : float;
  gap_parse : bool;
  gap_align : int;
  gap_max_rounds : int;
}

let default =
  {
    eager_noreturn = true;
    decode_cache = true;
    jt_union = true;
    jt_max_scan = 128;
    shards = 128;
    max_block_bytes = 65536;
    max_slice_steps = 4096;
    max_table_entries = 4096;
    deadline_s = 0.0;
    deadline_poll_every = 32;
    csr_compact_threshold = 0.25;
    gap_parse = false;
    gap_align = 16;
    gap_max_rounds = 8;
  }
