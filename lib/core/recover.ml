module Parse_error = Pbca_binfmt.Parse_error

type source = { src_checkpoint : string option; src_journal : string option }

type plan = {
  pl_ops : Journal.op list;
  pl_round : int;
  pl_resume_count : int;
  pl_progress_s : float;
  pl_counters : int array;
  pl_seq_max : int;
  pl_journal_torn : bool;
}

let load src =
  let base, floor, round, resume_count, progress_s, counters =
    match src.src_checkpoint with
    | None -> (Ok [], -1, -1, 0, 0.0, [||])
    | Some path -> (
      match Checkpoint.load ~path with
      | Error e -> (Error e, -1, -1, 0, 0.0, [||])
      | Ok snap ->
        ( Ok snap.Checkpoint.cp_ops,
          snap.Checkpoint.cp_seq_floor,
          snap.Checkpoint.cp_round,
          snap.Checkpoint.cp_resume_count,
          snap.Checkpoint.cp_progress_s,
          snap.Checkpoint.cp_counters ))
  in
  match base with
  | Error e -> Error e
  | Ok base_ops ->
    let tail =
      match src.src_journal with
      | None -> Journal.empty_tail ~torn:false
      | Some path -> Journal.read_committed path
    in
    (* ops already folded into the checkpoint are skipped; the rest were
       committed after the snapshot and are re-applied (idempotently — some
       may describe state the snapshot already contains if the two files
       raced, which re-application converges through) *)
    let tail_ops =
      List.filter_map
        (fun (seq, op) -> if seq > floor then Some op else None)
        tail.Journal.t_ops
    in
    Ok
      {
        pl_ops = base_ops @ tail_ops;
        pl_round = max round tail.Journal.t_last_round;
        pl_resume_count = resume_count;
        pl_progress_s = progress_s;
        pl_counters = counters;
        pl_seq_max = max floor tail.Journal.t_max_seq;
        pl_journal_torn = tail.Journal.t_torn;
      }

(* ------------------------------------------------------------------ *)
(* Replay. Runs on the master domain against a freshly created graph
   with {e no} journal attached — replayed ops must not re-journal
   themselves; the resumed run starts a fresh journal (plus an immediate
   checkpoint) once the graph is rebuilt.                               *)

let counter_cell (s : Cfg.stats) = function
  | "insns_decoded" -> Some s.Cfg.insns_decoded
  | "splits" -> Some s.Cfg.splits
  | "jt_analyses" -> Some s.Cfg.jt_analyses
  | "jt_unresolved" -> Some s.Cfg.jt_unresolved
  | "budget_block" -> Some s.Cfg.budget_block
  | "budget_slice" -> Some s.Cfg.budget_slice
  | "budget_table" -> Some s.Cfg.budget_table
  | "journal_records" -> Some s.Cfg.journal_records
  | "replayed_ops" -> Some s.Cfg.replayed_ops
  | "gap_gaps_scanned" -> Some s.Cfg.gap_gaps_scanned
  | "gap_entries_proposed" -> Some s.Cfg.gap_entries_proposed
  | "gap_entries_accepted" -> Some s.Cfg.gap_entries_accepted
  | "gap_entries_rejected" -> Some s.Cfg.gap_entries_rejected
  | _ -> None

let apply (g : Cfg.t) plan ~on_jt_pending =
  assert (g.Cfg.journal = None);
  let replayed = ref 0 in
  (* (src, dst, kind) -> live replayed edges, for dead/move resolution *)
  let registry : (int * int * int, Cfg.edge list) Hashtbl.t =
    Hashtbl.create 256
  in
  let reg_add key e =
    Hashtbl.replace registry key
      (e :: (try Hashtbl.find registry key with Not_found -> []))
  in
  let reg_pop key =
    match Hashtbl.find_opt registry key with
    | None | Some [] -> None
    | Some (e :: rest) ->
      Hashtbl.replace registry key rest;
      Some e
  in
  let deadline_marks = ref [] in
  (* Replay is single-threaded over a graph nobody else sees, so a plain
     hashtable can front the concurrent block map: the op stream touches
     each block several times (creation, end, terminator, every incident
     edge) and the memoized lookup makes replay cheaper than the decode
     work it replaces. *)
  let known : (int, Cfg.block) Hashtbl.t = Hashtbl.create 4096 in
  let block a =
    match Hashtbl.find_opt known a with
    | Some b -> b
    | None ->
      let b = fst (Cfg.find_or_create_block g a) in
      Hashtbl.add known a b;
      b
  in
  List.iter
    (fun op ->
      incr replayed;
      match (op : Journal.op) with
      | Journal.Op_block a -> if a >= 0 then ignore (block a)
      | Journal.Op_end { start; end_; ninsns } ->
        let b = block start in
        Atomic.set b.Cfg.b_end end_;
        Atomic.set b.Cfg.b_ninsns ninsns
      | Journal.Op_term { start; insn } ->
        Atomic.set (block start).Cfg.b_term insn
      | Journal.Op_edge { src; dst; kind; jt } ->
        let e =
          Cfg.add_edge g ?jt (block src) (block dst)
            (Cfg.edge_kind_of_code kind)
        in
        reg_add (src, dst, kind) e
      | Journal.Op_edge_dead { src; dst; kind } -> (
        match reg_pop (src, dst, kind) with
        | Some e -> Atomic.set e.Cfg.e_dead true
        | None -> ())
      | Journal.Op_edge_move { src; dst; kind; new_src } -> (
        match reg_pop (src, dst, kind) with
        | None -> ()
        | Some e ->
          let old = e.Cfg.e_src in
          let nb = block new_src in
          Atomic.set old.Cfg.b_out
            (List.filter (fun e' -> e' != e) (Atomic.get old.Cfg.b_out));
          e.Cfg.e_src <- nb;
          Atomic.set nb.Cfg.b_out (e :: Atomic.get nb.Cfg.b_out);
          reg_add (new_src, dst, kind) e)
      | Journal.Op_func { entry; name; from_symtab } ->
        if entry >= 0 then
          ignore (Cfg.find_or_create_func g ~name ~from_symtab entry)
      | Journal.Op_conf { addr; conf } ->
        (* write-once, so insert_if_absent makes re-application converge;
           seq order preserves which writer really won. [Op_conf] for a
           heuristic proposal precedes its [Op_func] in both live and
           materialized streams, so the replayed find_or_create_func's
           derived tag never shadows the stored one. *)
        Cfg.set_conf g addr conf
      | Journal.Op_degraded { addr; deadline } ->
        if deadline then deadline_marks := addr :: !deadline_marks
        else Cfg.mark_degraded g addr
      | Journal.Op_jt_pending { end_; reg } -> on_jt_pending ~end_ ~reg
      | Journal.Op_ret { entry; status } -> (
        (* checkpoint-only op; Op_func for [entry] precedes it in the
           materialized stream, so a miss means damage — skip, the
           resumed traversal re-derives the status. Only Returns (1) is
           applied: Noreturn is never emitted and would not be safe. *)
        match Addr_map.find g.Cfg.funcs entry with
        | Some f when status = 1 -> Atomic.set f.Cfg.f_ret Cfg.Returns
        | _ -> ())
      | Journal.Op_commit _ -> ())
    plan.pl_ops;
  (* Deadline-degraded degenerate blocks go back to candidates: their cut
     was an artifact of the old deadline, and the resumed run re-parses
     them under the renewed one. Their marks are dropped entirely (walk
     abandonments and skipped table analyses are also re-done: every
     function is re-walked and the jump-table frontier was preserved). *)
  List.iter
    (fun addr ->
      match Addr_map.find g.Cfg.blocks addr with
      | Some b when Cfg.block_end b = b.Cfg.b_start ->
        Atomic.set b.Cfg.b_end (-1);
        Atomic.set b.Cfg.b_term None;
        Atomic.set b.Cfg.b_ninsns 0
      | _ -> ())
    !deadline_marks;
  (* The ends map is not replayed op by op (split shrink ops would need
     their non-effects distinguished); at a quiescent commit it is exactly
     "every resolved non-degenerate block, keyed by its end" (Invariant 2),
     so rebuild it from the final block states. *)
  Addr_map.iter
    (fun _ (b : Cfg.block) ->
      let e = Cfg.block_end b in
      if e > b.Cfg.b_start then
        Addr_map.update g.Cfg.ends e (fun _ -> (Some b, ())))
    g.Cfg.blocks;
  (* Fall-through guards: every call site whose fall-through edge already
     exists must not fire a second one when the resumed traversal re-runs
     the noreturn protocol. *)
  Addr_map.iter
    (fun _ (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          if e.Cfg.e_kind = Cfg.Call_fallthrough then
            ignore
              (Addr_map.insert_if_absent g.Cfg.ft_guard
                 e.Cfg.e_dst.Cfg.b_start ()))
        (Cfg.out_edges b))
    g.Cfg.blocks;
  (* Counters that replay cannot reconstruct (blocks/edges recount
     naturally; budget_deadline resets with the renewed deadline). *)
  Array.iteri
    (fun i v ->
      if i < Array.length Checkpoint.counter_names then
        match counter_cell g.Cfg.stats Checkpoint.counter_names.(i) with
        | Some cell -> Atomic.set cell v
        | None -> ())
    plan.pl_counters;
  ignore (Atomic.fetch_and_add g.Cfg.stats.Cfg.replayed_ops !replayed);
  Atomic.set g.Cfg.stats.Cfg.resume_count (plan.pl_resume_count + 1);
  !replayed
