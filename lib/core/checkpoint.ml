module Parse_error = Pbca_binfmt.Parse_error

let magic = "PBCK"

(* v3: confidence tags ([Op_conf]) materialize with the graph and the gap
   counters join the header block. Strictly checked on load — a v2 file is
   rejected as unsupported, never half-read. *)
let version = 3

type snapshot = {
  cp_round : int;
  cp_resume_count : int;
  cp_seq_floor : int;
  cp_progress_s : float;
  cp_counters : int array;
  cp_ops : Journal.op list;
}

(* Counter order is part of the format (version-gated): a loader seeing a
   different count restores the prefix it knows about. *)
let counter_names =
  [|
    "insns_decoded";
    "splits";
    "jt_analyses";
    "jt_unresolved";
    "budget_block";
    "budget_slice";
    "budget_table";
    "journal_records";
    "replayed_ops";
    "gap_gaps_scanned";
    "gap_entries_proposed";
    "gap_entries_accepted";
    "gap_entries_rejected";
  |]

let counter_cells (s : Cfg.stats) =
  [|
    s.Cfg.insns_decoded;
    s.Cfg.splits;
    s.Cfg.jt_analyses;
    s.Cfg.jt_unresolved;
    s.Cfg.budget_block;
    s.Cfg.budget_slice;
    s.Cfg.budget_table;
    s.Cfg.journal_records;
    s.Cfg.replayed_ops;
    s.Cfg.gap_gaps_scanned;
    s.Cfg.gap_entries_proposed;
    s.Cfg.gap_entries_accepted;
    s.Cfg.gap_entries_rejected;
  |]

(* ------------------------------------------------------------------ *)
(* Materialization: the live (quiescent) graph compacted to an op
   stream. Only live state is described — dead edges, watcher lists and
   waiter lists are all reconstructed by the resumed traversal, and the
   journal's dead/move ops have already been applied to whatever
   produced this graph. Resolved return statuses ARE recorded (v2):
   they are monotone facts at the quiescent point, and replaying them
   lets a complete artifact skip the traversal re-seeding entirely.
   Confidence tags are recorded too (v3): provenance is a write-once
   fact, and a resumed gap scan must see which entries were already
   proposed heuristically.                                              *)

let materialize_ops ~pending (g : Cfg.t) =
  let ops = ref [] in
  let push op = ops := op :: !ops in
  let blocks = Cfg.blocks_list g in
  List.iter (fun (b : Cfg.block) -> push (Journal.Op_block b.Cfg.b_start)) blocks;
  List.iter
    (fun (b : Cfg.block) ->
      let e = Cfg.block_end b in
      if e >= 0 then begin
        push
          (Journal.Op_end
             {
               start = b.Cfg.b_start;
               end_ = e;
               ninsns = Atomic.get b.Cfg.b_ninsns;
             });
        match Atomic.get b.Cfg.b_term with
        | None -> ()
        | Some insn -> push (Journal.Op_term { start = b.Cfg.b_start; insn = Some insn })
      end)
    blocks;
  List.iter
    (fun (b : Cfg.block) ->
      List.iter
        (fun (e : Cfg.edge) ->
          push
            (Journal.Op_edge
               {
                 src = e.Cfg.e_src.Cfg.b_start;
                 dst = e.Cfg.e_dst.Cfg.b_start;
                 kind = Cfg.edge_kind_code e.Cfg.e_kind;
                 jt = e.Cfg.e_jt;
               }))
        (Cfg.out_edges b))
    blocks;
  (* confidence tags strictly before the functions they describe: the
     replayed Op_func re-derives a call-target tag (write-once), so a
     stored heuristic tag must already be present when it lands *)
  List.iter
    (fun (addr, conf) -> push (Journal.Op_conf { addr; conf }))
    (Cfg.conf_list g);
  List.iter
    (fun (f : Cfg.func) ->
      push
        (Journal.Op_func
           {
             entry = f.Cfg.f_entry_addr;
             name = f.Cfg.f_name;
             from_symtab = f.Cfg.f_from_symtab;
           }))
    (Cfg.funcs_list g);
  List.iter
    (fun (f : Cfg.func) ->
      (* Returns only: it is the one monotone status. Noreturn at this
         quiescent point may just mean "return point not found yet" under
         a cut deadline — a resumed walk must be free to overturn it,
         and set_returns only flips Unset. *)
      match Atomic.get f.Cfg.f_ret with
      | Cfg.Returns ->
        push (Journal.Op_ret { entry = f.Cfg.f_entry_addr; status = 1 })
      | Cfg.Unset | Cfg.Noreturn -> ())
    (Cfg.funcs_list g);
  List.iter
    (fun (addr, deadline) -> push (Journal.Op_degraded { addr; deadline }))
    (Cfg.degraded_list g);
  List.iter
    (fun (end_, reg) -> push (Journal.Op_jt_pending { end_; reg }))
    (List.sort compare pending);
  List.rev !ops

(* ------------------------------------------------------------------ *)
(* Save. The header carries its own CRC-framed payload; op records use
   the journal framing with synthetic seqs, and the stream is terminated
   by an [Op_commit] footer — a load that never sees the footer knows the
   file is truncated. The write is atomic: tmp file + rename.           *)

let frame buf payload =
  let pb = Buffer.to_bytes payload in
  let len = Bytes.length pb in
  Buffer.add_int32_le buf (Int32.of_int len);
  Buffer.add_int32_le buf (Int32.of_int (Journal.crc32 pb 0 len));
  Buffer.add_bytes buf pb

let save ~path ~round ~pending ~seq_floor ~progress_s (g : Cfg.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int32_le buf (Int32.of_int version);
  let hdr = Buffer.create 64 in
  Buffer.add_int32_le hdr (Int32.of_int round);
  Buffer.add_int32_le hdr (Int32.of_int (Atomic.get g.Cfg.stats.Cfg.resume_count));
  Buffer.add_int64_le hdr (Int64.of_int seq_floor);
  Buffer.add_int64_le hdr (Int64.bits_of_float progress_s);
  let cells = counter_cells g.Cfg.stats in
  Buffer.add_uint16_le hdr (Array.length cells);
  Array.iter
    (fun c -> Buffer.add_int64_le hdr (Int64.of_int (Atomic.get c)))
    cells;
  frame buf hdr;
  let seq = ref 0 in
  List.iter
    (fun op ->
      Journal.append_record buf ~seq:!seq op;
      incr seq)
    (materialize_ops ~pending g);
  Journal.append_record buf ~seq:!seq (Journal.Op_commit round);
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Sys.rename tmp path

(* ------------------------------------------------------------------ *)
(* Load: total, and strict. A checkpoint is trusted state — any framing
   damage is a hard structured error (the caller decides whether to fall
   back to journal-only recovery), unlike the journal whose tail is
   allowed to tear.                                                     *)

let err e = Error e

let load ~path =
  if not (Sys.file_exists path) then
    err (Parse_error.Truncated { what = "checkpoint"; pos = 0 })
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let hdr_len = String.length magic + 4 in
        let head = Bytes.create hdr_len in
        match really_input ic head 0 hdr_len with
        | exception End_of_file ->
          err (Parse_error.Truncated { what = "checkpoint header"; pos = 0 })
        | () ->
          if Bytes.sub_string head 0 (String.length magic) <> magic then
            err
              (Parse_error.Bad_magic
                 { got = Bytes.sub_string head 0 (String.length magic) })
          else begin
            let v =
              Int32.to_int (Bytes.get_int32_le head (String.length magic))
            in
            if v <> version then
              err
                (Parse_error.Bad_section
                   {
                     name = "checkpoint";
                     reason = Printf.sprintf "unsupported version %d" v;
                   })
            else begin
              (* header record: [u32 len][u32 crc][fields] *)
              let read_n n =
                let b = Bytes.create n in
                match really_input ic b 0 n with
                | exception End_of_file -> None
                | () -> Some b
              in
              match read_n 8 with
              | None ->
                err
                  (Parse_error.Truncated
                     { what = "checkpoint header"; pos = hdr_len })
              | Some fr -> (
                let len = Int32.to_int (Bytes.get_int32_le fr 0) in
                let crc =
                  Int32.to_int (Bytes.get_int32_le fr 4) land 0xFFFFFFFF
                in
                if len < 24 || len > 65536 then
                  err
                    (Parse_error.Bad_section
                       { name = "checkpoint"; reason = "bad header length" })
                else
                  match read_n len with
                  | None ->
                    err
                      (Parse_error.Truncated
                         { what = "checkpoint header"; pos = hdr_len + 8 })
                  | Some hb ->
                    if Journal.crc32 hb 0 len <> crc then
                      err
                        (Parse_error.Bad_section
                           {
                             name = "checkpoint";
                             reason = "header crc mismatch";
                           })
                    else begin
                      let cp_round = Int32.to_int (Bytes.get_int32_le hb 0) in
                      let cp_resume_count =
                        Int32.to_int (Bytes.get_int32_le hb 4)
                      in
                      let cp_seq_floor =
                        Int64.to_int (Bytes.get_int64_le hb 8)
                      in
                      let cp_progress_s =
                        Int64.float_of_bits (Bytes.get_int64_le hb 16)
                      in
                      let n = Bytes.get_uint16_le hb 24 in
                      if len < 26 + (8 * n) then
                        err
                          (Parse_error.Bad_section
                             {
                               name = "checkpoint";
                               reason = "counter block short";
                             })
                      else begin
                        let cp_counters =
                          Array.init n (fun i ->
                              Int64.to_int (Bytes.get_int64_le hb (26 + (8 * i))))
                        in
                        (* op records until the Op_commit footer *)
                        let ops = ref [] in
                        let rec go () =
                          match Journal.read_record ic with
                          | Journal.End_clean ->
                            err
                              (Parse_error.Truncated
                                 {
                                   what = "checkpoint (missing commit footer)";
                                   pos = pos_in ic;
                                 })
                          | Journal.End_torn reason ->
                            err
                              (Parse_error.Bad_section
                                 { name = "checkpoint"; reason })
                          | Journal.Rec (_, Journal.Op_commit r) ->
                            if r <> cp_round then
                              err
                                (Parse_error.Bad_section
                                   {
                                     name = "checkpoint";
                                     reason = "footer round mismatch";
                                   })
                            else
                              Ok
                                {
                                  cp_round;
                                  cp_resume_count;
                                  cp_seq_floor;
                                  cp_progress_s;
                                  cp_counters;
                                  cp_ops = List.rev !ops;
                                }
                          | Journal.Rec (_, op) ->
                            ops := op :: !ops;
                            go ()
                        in
                        go ()
                      end
                    end)
            end
          end)
  end
