(** Canonical, order-independent summaries of a finished CFG.

    The parallel algorithm's correctness claim is that "the relative speed
    of threads will not impact the final results" (paper Section 5.2). The
    summary normalizes a CFG into sorted value data so two runs — different
    thread counts, different schedules, serial vs parallel — can be
    compared for exact equality. *)

type block_sum = {
  bs_start : int;
  bs_end : int;
  bs_insns : int;
  bs_conf : int;
      (** strongest {!Cfg.confidence} code among the owning functions
          (post-finalize boundary assignment); falls back to the block's
          own entry tag, then [From_symbol] *)
}

type edge_sum = {
  es_src : int;  (** source block start *)
  es_dst : int;
  es_kind : Cfg.edge_kind;
}

type func_sum = {
  fs_entry : int;
  fs_name : string;
  fs_returns : bool;
  fs_blocks : int list;  (** starts of boundary blocks, sorted *)
  fs_conf : int;  (** {!Cfg.confidence} code ({!Cfg.func_confidence}) *)
}

type t = {
  blocks : block_sum list;
  edges : edge_sum list;
  funcs : func_sum list;
}

val of_cfg : Cfg.t -> t
(** Live blocks/edges/functions only, each list sorted. *)

val equal : t -> t -> bool
val fingerprint : t -> string
(** Short hex digest, for quick test assertions. *)

val diff : t -> t -> string list
(** Human-readable differences (empty when equal); capped at 50 lines. *)

val func_ranges : Cfg.t -> Cfg.func -> (int * int) list
(** Coalesced address ranges of a function's boundary blocks — comparable
    with ground-truth ranges. *)

val pp_stats : Format.formatter -> Cfg.t -> unit
(** One-line-per-group parse statistics: graph counts, the graph's
    {!Pbca_concurrent.Contention} counters, the image's decode-cache hit
    rate, and this run's scheduler counters ([stats.sched_*], the
    snapshot-diff of the pool's counters around the parse). When the
    graph has been finalized ([fz_rounds > 0]), also the finalization
    round/snapshot counts, per-round dirty-set sizes and per-step wall
    times in milliseconds from [stats.finalize]. When gap parsing ran, a
    [gap:] line with gaps scanned, entries proposed/accepted/rejected and
    the per-confidence function census. When a span trace was attached, a
    [phase_wall_ms] breakdown of span wall per phase. *)
