(** Crash recovery: rebuild a quiescent CFG from checkpoint + journal.

    Recovery has two layers with different trust models:

    - the {!Checkpoint} is authoritative — if a path is given and the file
      is damaged, {!load} returns the structured error (exit 2 at the CLI:
      the operator must decide; a caller may deliberately retry with
      [src_checkpoint = None] to fall back to journal-only replay);
    - the {!Journal} is advisory — its committed prefix extends the
      snapshot, its torn tail is discarded silently, and a missing or
      corrupt journal merely means "nothing after the snapshot survived".

    Replay is idempotent thanks to the construction algebra's monotonicity
    (the paper's Section 5.2 invariants): re-applying a block/edge/function
    creation that already took effect converges, block ends only ever
    shrink, and the few destructive ops (split-protocol edge kills/moves)
    are resolved against an explicit edge registry. *)

type source = {
  src_checkpoint : string option;
  src_journal : string option;
}

type plan = {
  pl_ops : Journal.op list;
      (** checkpoint stream followed by the committed journal ops above the
          snapshot's sequence floor, in application order *)
  pl_round : int;  (** last durable construction round, [-1] if none *)
  pl_resume_count : int;  (** resumes before this one *)
  pl_progress_s : float;  (** parse progress the snapshot preserves *)
  pl_counters : int array;  (** {!Checkpoint.counter_names} values *)
  pl_seq_max : int;
      (** highest durable journal seq — the fresh journal's sequence floor,
          so seqs stay monotone across resumes *)
  pl_journal_torn : bool;  (** a torn journal tail was discarded *)
}

val load : source -> (plan, Pbca_binfmt.Parse_error.t) result

val apply :
  Cfg.t -> plan -> on_jt_pending:(end_:int -> reg:int -> unit) -> int
(** Replay the plan into a freshly created graph (no journal attached —
    asserted), then reconstruct the derived state: the ends map (from
    final block states — Invariant 2 makes this exact at a commit point),
    the fall-through guards (from existing [Call_fallthrough] edges), and
    stats counters. Deadline-degraded degenerate blocks are reset to
    candidates and their marks dropped — the resumed run re-does that lost
    work under its renewed deadline. Returns the number of replayed ops
    (also added to [stats.replayed_ops]; [stats.resume_count] becomes
    [pl_resume_count + 1]).

    Watcher lists, waiter lists and visited sets are deliberately {e not}
    persisted: the resumed parse re-seeds every function's traversal,
    which rebuilds them from the recovered graph. [Returns] statuses
    resolved at the checkpoint's quiescent point {e are} replayed
    (checkpoint v2, [Op_ret]) — a decoded return point is a monotone
    fact, so re-seeding merely confirms it, and a complete artifact (no
    pending frontier, no candidates) can skip the re-walk altogether and
    go straight to finalization (the serve-layer cache-hit path).
    [Noreturn] stays derived: under a cut deadline it may only mean "not
    found yet", and a replayed Noreturn would pin set_returns shut. *)
