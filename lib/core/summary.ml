type block_sum = {
  bs_start : int;
  bs_end : int;
  bs_insns : int;
  bs_conf : int;
}

type edge_sum = { es_src : int; es_dst : int; es_kind : Cfg.edge_kind }

type func_sum = {
  fs_entry : int;
  fs_name : string;
  fs_returns : bool;
  fs_blocks : int list;
  fs_conf : int;
}

type t = {
  blocks : block_sum list;
  edges : edge_sum list;
  funcs : func_sum list;
}

let of_cfg g =
  (* Block confidence is derived, not stored: the strongest (lowest-code)
     confidence among the functions that own the block after boundary
     assignment. Blocks not owned by any function (pre-finalize, or
     stranded) fall back to their own entry tag, then to [From_symbol]. *)
  let fconf f = Cfg.conf_code (Cfg.func_confidence g f) in
  let block_conf = Hashtbl.create 1024 in
  List.iter
    (fun (f : Cfg.func) ->
      let c = fconf f in
      List.iter
        (fun (b : Cfg.block) ->
          let s = b.Cfg.b_start in
          match Hashtbl.find_opt block_conf s with
          | Some c' when c' <= c -> ()
          | _ -> Hashtbl.replace block_conf s c)
        f.Cfg.f_blocks)
    (Cfg.funcs_list g);
  let bconf (b : Cfg.block) =
    match Hashtbl.find_opt block_conf b.Cfg.b_start with
    | Some c -> c
    | None -> ( match Cfg.conf_at g b.Cfg.b_start with Some c -> c | None -> 0)
  in
  let blocks =
    List.map
      (fun (b : Cfg.block) ->
        {
          bs_start = b.b_start;
          bs_end = Cfg.block_end b;
          bs_insns = Atomic.get b.Cfg.b_ninsns;
          bs_conf = bconf b;
        })
      (Cfg.blocks_list g)
  in
  let edges =
    List.concat_map
      (fun (b : Cfg.block) ->
        List.map
          (fun (e : Cfg.edge) ->
            {
              es_src = e.e_src.Cfg.b_start;
              es_dst = e.e_dst.Cfg.b_start;
              es_kind = e.e_kind;
            })
          (Cfg.out_edges b))
      (Cfg.blocks_list g)
    |> List.sort_uniq compare
  in
  let funcs =
    List.map
      (fun (f : Cfg.func) ->
        {
          fs_entry = f.f_entry_addr;
          fs_name = f.f_name;
          fs_returns = Atomic.get f.Cfg.f_ret = Cfg.Returns;
          fs_blocks =
            List.sort compare
              (List.map (fun (b : Cfg.block) -> b.Cfg.b_start) f.Cfg.f_blocks);
          fs_conf = fconf f;
        })
      (Cfg.funcs_list g)
  in
  { blocks; edges; funcs }

let equal a b = a = b

let fingerprint t =
  Digest.to_hex (Digest.string (Marshal.to_string t []))

let kind_str k = Format.asprintf "%a" Cfg.pp_edge_kind k

let diff a b =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let module S = Set.Make (String) in
  let keyed name f xs = List.map (fun x -> name ^ " " ^ f x) xs in
  let bset t =
    S.of_list
      (keyed "block"
         (fun b ->
           Printf.sprintf "[0x%x,0x%x) n=%d conf=%s" b.bs_start b.bs_end
             b.bs_insns
             (Cfg.confidence_name (Cfg.conf_of_code b.bs_conf)))
         t.blocks)
  in
  let eset t =
    S.of_list
      (keyed "edge"
         (fun e -> Printf.sprintf "0x%x->0x%x %s" e.es_src e.es_dst (kind_str e.es_kind))
         t.edges)
  in
  let fset t =
    S.of_list
      (keyed "func"
         (fun f ->
           Printf.sprintf "0x%x %s ret=%b conf=%s blocks=%s" f.fs_entry
             f.fs_name f.fs_returns
             (Cfg.confidence_name (Cfg.conf_of_code f.fs_conf))
             (String.concat "," (List.map (Printf.sprintf "0x%x") f.fs_blocks)))
         t.funcs)
  in
  let report tag sa sb =
    S.iter (fun x -> add "only in %s: %s" tag x) (S.diff sa sb)
  in
  report "A" (bset a) (bset b);
  report "B" (bset b) (bset a);
  report "A" (eset a) (eset b);
  report "B" (eset b) (eset a);
  report "A" (fset a) (fset b);
  report "B" (fset b) (fset a);
  let all = List.rev !out in
  if List.length all > 50 then
    List.filteri (fun i _ -> i < 50) all @ [ "... (truncated)" ]
  else all

let func_ranges _g (f : Cfg.func) =
  let ranges =
    List.map
      (fun (b : Cfg.block) -> (b.Cfg.b_start, Cfg.block_end b))
      f.Cfg.f_blocks
  in
  let sorted = List.sort compare ranges in
  let rec merge = function
    | (a1, b1) :: (a2, b2) :: rest when a2 <= b1 -> merge ((a1, max b1 b2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

let pp_stats fmt (g : Cfg.t) =
  let s = g.Cfg.stats in
  let dc = g.Cfg.image.Pbca_binfmt.Image.dcache in
  (* scheduler numbers are this run's snapshot-diff (recorded by
     Parallel), not a process-global — a concurrent parse on another
     pool cannot leak into them *)
  Format.fprintf fmt
    "blocks=%d funcs=%d insns=%d splits=%d edges=%d jt=%d jt_unresolved=%d@ \
     %a@ decode_hits=%d decode_misses=%d decode_hit_rate=%.2f@ steals=%d \
     steal_attempts=%d idle_sleeps=%d"
    (Addr_map.length g.Cfg.blocks)
    (Addr_map.length g.Cfg.funcs)
    (Atomic.get s.insns_decoded) (Atomic.get s.splits)
    (Atomic.get s.edges_created) (Atomic.get s.jt_analyses)
    (Atomic.get s.jt_unresolved) Pbca_concurrent.Contention.pp s.contention
    (Pbca_binfmt.Decode_cache.hits dc)
    (Pbca_binfmt.Decode_cache.misses dc)
    (Pbca_binfmt.Decode_cache.hit_rate dc)
    (Atomic.get s.sched_steals)
    (Atomic.get s.sched_steal_attempts)
    (Atomic.get s.sched_idle_sleeps);
  let degraded = Cfg.degraded_count g in
  let failures = Cfg.task_failure_count g in
  if
    degraded > 0 || failures > 0
    || Atomic.get s.budget_block > 0
    || Atomic.get s.budget_slice > 0
    || Atomic.get s.budget_table > 0
    || Atomic.get s.budget_deadline > 0
  then
    Format.fprintf fmt
      "@ robustness: degraded=%d budget[block=%d slice=%d table=%d \
       deadline=%d] task_failures=%d"
      degraded
      (Atomic.get s.budget_block)
      (Atomic.get s.budget_slice)
      (Atomic.get s.budget_table)
      (Atomic.get s.budget_deadline)
      failures;
  if
    Atomic.get s.journal_records > 0
    || Atomic.get s.replayed_ops > 0
    || Atomic.get s.resume_count > 0
    || Atomic.get s.supervisor_restarts > 0
  then
    Format.fprintf fmt
      "@ recovery: journal_records=%d replayed_ops=%d resume_count=%d \
       supervisor_restarts=%d"
      (Atomic.get s.journal_records)
      (Atomic.get s.replayed_ops)
      (Atomic.get s.resume_count)
      (Atomic.get s.supervisor_restarts);
  if
    Atomic.get s.gap_gaps_scanned > 0
    || Atomic.get s.gap_entries_proposed > 0
  then begin
    let sym, ct, heur = Cfg.conf_counts g in
    Format.fprintf fmt
      "@ gap: gaps=%d proposed=%d accepted=%d rejected=%d \
       confidence[symbol=%d call-target=%d heuristic=%d]"
      (Atomic.get s.gap_gaps_scanned)
      (Atomic.get s.gap_entries_proposed)
      (Atomic.get s.gap_entries_accepted)
      (Atomic.get s.gap_entries_rejected)
      sym ct heur
  end;
  if Atomic.get s.deadline_checks > 0 then
    Format.fprintf fmt
      "@ deadline_clock: checks=%d polls=%d syscalls_saved=%d"
      (Atomic.get s.deadline_checks)
      (Atomic.get s.deadline_polls)
      (Atomic.get s.deadline_checks - Atomic.get s.deadline_polls);
  let fz = s.finalize in
  if fz.Cfg.fz_rounds > 0 then
    Format.fprintf fmt
      "@ finalize: rounds=%d snapshots=%d csr_deltas=%d csr_compactions=%d \
       dirty=[%s]@ finalize_wall_ms: \
       jt=%.2f reach=%.2f bounds=%.2f rules=%.2f prune=%.2f recount=%.2f \
       snapshot=%.2f"
      fz.Cfg.fz_rounds fz.Cfg.fz_snapshots
      (Atomic.get s.csr_deltas)
      (Atomic.get s.csr_compactions)
      (String.concat ";" (List.map string_of_int fz.Cfg.fz_dirty))
      (1000. *. fz.Cfg.fz_jt_wall)
      (1000. *. fz.Cfg.fz_reach_wall)
      (1000. *. fz.Cfg.fz_bounds_wall)
      (1000. *. fz.Cfg.fz_rules_wall)
      (1000. *. fz.Cfg.fz_prune_wall)
      (1000. *. fz.Cfg.fz_recount_wall)
      (1000. *. fz.Cfg.fz_snapshot_wall);
  (* per-stage occupancy of the streaming pipeline (PR7): printed only
     when the readiness protocol actually published functions, so barrier
     runs keep their output unchanged *)
  if Atomic.get s.stream_published > 0 then
    Format.fprintf fmt
      "@ stream: published=%d channel_hwm=%d consumer_idle_ms=%.2f \
       producer_block_ms=%.2f"
      (Atomic.get s.stream_published)
      (Atomic.get s.stream_hwm)
      (float_of_int (Atomic.get s.stream_consumer_idle_us) /. 1e3)
      (float_of_int (Atomic.get s.stream_producer_block_us) /. 1e3);
  (* phase breakdown from the span trace (when one was attached): total
     span wall per phase, the per-run answer to "where did time go" *)
  if Pbca_obs.Trace.enabled g.Cfg.otrace then begin
    match Pbca_obs.Trace.phase_walls g.Cfg.otrace with
    | [] -> ()
    | walls ->
      Format.fprintf fmt "@ phase_wall_ms:";
      List.iter
        (fun (phase, w) ->
          Format.fprintf fmt " %s=%.2f" phase (1000. *. w))
        walls
  end
