(* CSR-style CFG snapshot with a delta-kill layer. See the .mli for the
   liveness invariants; this file is the parallel construction plus the
   O(1) kill operations. *)

module Task_pool = Pbca_concurrent.Task_pool
module Atomic_bitset = Pbca_concurrent.Atomic_bitset

type t = {
  blocks : Cfg.block array;
  starts : int array;
  edges : Cfg.edge array;
  e_src : int array;
  e_dst : int array;
  fwd_off : int array;
  bwd_off : int array;
  bwd : int array;
  dead_edge : Atomic_bitset.t;
  dead_block : Atomic_bitset.t;
  version : int Atomic.t;
}

let n_blocks t = Array.length t.blocks
let n_edges t = Array.length t.edges

let find_index starts addr =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let v = starts.(mid) in
      if v = addr then mid else if v < addr then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length starts)

let index_of t addr =
  match find_index t.starts addr with -1 -> None | i -> Some i

(* In-place insertion sort of a slice: backward-adjacency groups are
   small, and the slices of distinct blocks are disjoint so the per-block
   parallel pass below can sort them concurrently. *)
let sort_slice a lo hi =
  for i = lo + 1 to hi - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let mk ~blocks ~starts ~edges ~e_src ~e_dst ~fwd_off ~bwd_off ~bwd =
  {
    blocks;
    starts;
    edges;
    e_src;
    e_dst;
    fwd_off;
    bwd_off;
    bwd;
    dead_edge = Atomic_bitset.create (Array.length edges);
    dead_block = Atomic_bitset.create (Array.length blocks);
    version = Atomic.make 0;
  }

let build ~pool (g : Cfg.t) =
  let blocks = Array.of_list (Cfg.blocks_list g) in
  let n = Array.length blocks in
  let starts = Array.map (fun (b : Cfg.block) -> b.Cfg.b_start) blocks in
  (* live out-edges per block, gathered and counted in one parallel pass;
     the counts array feeds the serial prefix sum so [List.length] runs
     once per block, not twice *)
  let outs = Array.make n [] in
  let counts = Array.make n 0 in
  let m =
    Task_pool.parallel_for_reduce pool 0 n ~init:0
      ~map:(fun i ->
        let es = Cfg.out_edges blocks.(i) in
        outs.(i) <- es;
        let c = List.length es in
        counts.(i) <- c;
        c)
      ~combine:( + )
  in
  let fwd_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    fwd_off.(i + 1) <- fwd_off.(i) + counts.(i)
  done;
  if m = 0 then
    mk ~blocks ~starts ~edges:[||] ~e_src:[||] ~e_dst:[||] ~fwd_off
      ~bwd_off:(Array.make (n + 1) 0) ~bwd:[||]
  else begin
    let dummy =
      let rec first i =
        match outs.(i) with e :: _ -> e | [] -> first (i + 1)
      in
      first 0
    in
    let edges = Array.make m dummy in
    let e_src = Array.make m 0 in
    let e_dst = Array.make m 0 in
    (* fill the per-source groups; each block writes a disjoint slice, and
       destination lookups (binary search) dominate, so this parallelizes *)
    Task_pool.parallel_for pool 0 n (fun i ->
        let k = ref fwd_off.(i) in
        List.iter
          (fun (e : Cfg.edge) ->
            let d = find_index starts e.e_dst.Cfg.b_start in
            if d < 0 then
              invalid_arg "Csr.build: live edge to a block missing from the map";
            edges.(!k) <- e;
            e_src.(!k) <- i;
            e_dst.(!k) <- d;
            incr k)
          outs.(i));
    (* backward adjacency: serial O(m) count, prefix sum, then parallel
       placement through per-destination atomic cursors *)
    let bwd_off = Array.make (n + 1) 0 in
    Array.iter (fun d -> bwd_off.(d + 1) <- bwd_off.(d + 1) + 1) e_dst;
    for i = 0 to n - 1 do
      bwd_off.(i + 1) <- bwd_off.(i + 1) + bwd_off.(i)
    done;
    let cursor = Array.init n (fun i -> Atomic.make bwd_off.(i)) in
    let bwd = Array.make m 0 in
    Task_pool.parallel_for pool ~chunk:1024 0 m (fun k ->
        let pos = Atomic.fetch_and_add cursor.(e_dst.(k)) 1 in
        bwd.(pos) <- k);
    (* placement order is schedule-dependent; sort each group so the
       snapshot layout is deterministic *)
    Task_pool.parallel_for pool 0 n (fun i ->
        sort_slice bwd bwd_off.(i) bwd_off.(i + 1));
    mk ~blocks ~starts ~edges ~e_src ~e_dst ~fwd_off ~bwd_off ~bwd
  end

(* ---- delta layer ---- *)

let edge_live t k = not (Atomic_bitset.test t.dead_edge k)
let block_live t i = not (Atomic_bitset.test t.dead_block i)

let kill_edge t k =
  if Atomic_bitset.set t.dead_edge k then begin
    (* the graph-level flag is the source of truth for the next [build];
       setting it here keeps snapshot liveness and graph liveness in
       lock-step, so a compaction can never resurrect a killed edge *)
    Atomic.set t.edges.(k).Cfg.e_dead true;
    Atomic.incr t.version;
    true
  end
  else false

let kill_block t i =
  if Atomic_bitset.set t.dead_block i then begin
    for k = t.fwd_off.(i) to t.fwd_off.(i + 1) - 1 do
      ignore (kill_edge t k)
    done;
    for p = t.bwd_off.(i) to t.bwd_off.(i + 1) - 1 do
      ignore (kill_edge t t.bwd.(p))
    done;
    Atomic.incr t.version;
    true
  end
  else false

let dead_edges t = Atomic_bitset.count t.dead_edge
let dead_blocks t = Atomic_bitset.count t.dead_block
let version t = Atomic.get t.version

let dead_fraction t =
  let total = n_edges t + n_blocks t in
  if total = 0 then 0.0
  else float_of_int (dead_edges t + dead_blocks t) /. float_of_int total

let needs_compact t ~threshold =
  version t > 0 && dead_fraction t > threshold

(* ---- live-aware readers ---- *)

let iter_out t i f =
  for k = t.fwd_off.(i) to t.fwd_off.(i + 1) - 1 do
    if edge_live t k then f k t.edges.(k)
  done

let iter_in t i f =
  for p = t.bwd_off.(i) to t.bwd_off.(i + 1) - 1 do
    let k = t.bwd.(p) in
    if edge_live t k then f k t.edges.(k)
  done

let in_degree t i =
  let d = ref 0 in
  for p = t.bwd_off.(i) to t.bwd_off.(i + 1) - 1 do
    if edge_live t t.bwd.(p) then incr d
  done;
  !d

let sole_in t i =
  let found = ref None in
  let several = ref false in
  (try
     for p = t.bwd_off.(i) to t.bwd_off.(i + 1) - 1 do
       let k = t.bwd.(p) in
       if edge_live t k then
         match !found with
         | None -> found := Some t.edges.(k)
         | Some _ ->
           several := true;
           raise Exit
     done
   with Exit -> ());
  if !several then None else !found
