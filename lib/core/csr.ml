(* Immutable CSR-style CFG snapshot. See the .mli for the live-edge
   invariants; this file is only the parallel construction. *)

module Task_pool = Pbca_concurrent.Task_pool

type t = {
  blocks : Cfg.block array;
  starts : int array;
  edges : Cfg.edge array;
  e_src : int array;
  e_dst : int array;
  fwd_off : int array;
  bwd_off : int array;
  bwd : int array;
}

let n_blocks t = Array.length t.blocks
let n_edges t = Array.length t.edges

let find_index starts addr =
  let rec go lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      let v = starts.(mid) in
      if v = addr then mid else if v < addr then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length starts)

let index_of t addr =
  match find_index t.starts addr with -1 -> None | i -> Some i

(* In-place insertion sort of a slice: backward-adjacency groups are
   small, and the slices of distinct blocks are disjoint so the per-block
   parallel pass below can sort them concurrently. *)
let sort_slice a lo hi =
  for i = lo + 1 to hi - 1 do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

let build ~pool (g : Cfg.t) =
  let blocks = Array.of_list (Cfg.blocks_list g) in
  let n = Array.length blocks in
  let starts = Array.map (fun (b : Cfg.block) -> b.Cfg.b_start) blocks in
  (* live out-edges per block, gathered and counted in one parallel pass *)
  let outs = Array.make n [] in
  let m =
    Task_pool.parallel_for_reduce pool 0 n ~init:0
      ~map:(fun i ->
        let es = Cfg.out_edges blocks.(i) in
        outs.(i) <- es;
        List.length es)
      ~combine:( + )
  in
  let fwd_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    fwd_off.(i + 1) <- fwd_off.(i) + List.length outs.(i)
  done;
  if m = 0 then
    {
      blocks;
      starts;
      edges = [||];
      e_src = [||];
      e_dst = [||];
      fwd_off;
      bwd_off = Array.make (n + 1) 0;
      bwd = [||];
    }
  else begin
    let dummy =
      let rec first i =
        match outs.(i) with e :: _ -> e | [] -> first (i + 1)
      in
      first 0
    in
    let edges = Array.make m dummy in
    let e_src = Array.make m 0 in
    let e_dst = Array.make m 0 in
    (* fill the per-source groups; each block writes a disjoint slice, and
       destination lookups (binary search) dominate, so this parallelizes *)
    Task_pool.parallel_for pool 0 n (fun i ->
        let k = ref fwd_off.(i) in
        List.iter
          (fun (e : Cfg.edge) ->
            let d = find_index starts e.e_dst.Cfg.b_start in
            if d < 0 then
              invalid_arg "Csr.build: live edge to a block missing from the map";
            edges.(!k) <- e;
            e_src.(!k) <- i;
            e_dst.(!k) <- d;
            incr k)
          outs.(i));
    (* backward adjacency: serial O(m) count, prefix sum, then parallel
       placement through per-destination atomic cursors *)
    let bwd_off = Array.make (n + 1) 0 in
    Array.iter (fun d -> bwd_off.(d + 1) <- bwd_off.(d + 1) + 1) e_dst;
    for i = 0 to n - 1 do
      bwd_off.(i + 1) <- bwd_off.(i + 1) + bwd_off.(i)
    done;
    let cursor = Array.init n (fun i -> Atomic.make bwd_off.(i)) in
    let bwd = Array.make m 0 in
    Task_pool.parallel_for pool ~chunk:1024 0 m (fun k ->
        let pos = Atomic.fetch_and_add cursor.(e_dst.(k)) 1 in
        bwd.(pos) <- k);
    (* placement order is schedule-dependent; sort each group so the
       snapshot layout is deterministic *)
    Task_pool.parallel_for pool 0 n (fun i ->
        sort_slice bwd bwd_off.(i) bwd_off.(i + 1));
    { blocks; starts; edges; e_src; e_dst; fwd_off; bwd_off; bwd }
  end

let iter_out t i f =
  for k = t.fwd_off.(i) to t.fwd_off.(i + 1) - 1 do
    f k t.edges.(k)
  done

let iter_in t i f =
  for p = t.bwd_off.(i) to t.bwd_off.(i + 1) - 1 do
    let k = t.bwd.(p) in
    f k t.edges.(k)
  done

let in_degree t i = t.bwd_off.(i + 1) - t.bwd_off.(i)

let sole_in t i =
  if in_degree t i = 1 then Some t.edges.(t.bwd.(t.bwd_off.(i)))
  else None
