(* Concurrent map keyed by virtual address.

   Backed by the lock-free table so the parser's read-dominated paths —
   block lookups in [find_or_create_block], candidate checks against the
   global blocks map, function lookups — never take a lock. The mutex-
   sharded [Conc_hash] remains available for write-heavy tables (Symtab)
   and as the bench comparison baseline. *)
include Pbca_concurrent.Lockfree_map.Make (struct
  type t = int

  let equal = Int.equal

  (* Addresses are 16-byte-aligned-ish; fold the high bits in so bucket
     selection stays uniform. *)
  let hash a = (a * 0x9E3779B1) lxor (a lsr 16)
end)
