(** Parallel CFG construction (paper Section 5).

    The expansion phase of the analysis: starting from the symbol table's
    function entries (plus the program entry point), blocks are discovered,
    linearly parsed and registered under the five invariants of
    Section 5.2, functions traverse the evolving graph to learn their
    return status, call-fall-through edges are released eagerly as return
    instructions are found, and jump tables are resolved to a fixed point
    in quiescent rounds (each round's input graph is deterministic, so the
    final CFG is identical under any schedule — including the serial
    one). The correction phase is {!Finalize.run}.

    Work is scheduled on a work-stealing task pool; one task parses one
    block, walks one function fragment, or analyzes one jump table. When a
    trace is supplied, every task records its cost and dependencies for
    {!Pbca_simsched.Replay}. When an [?otrace] ({!Pbca_obs.Trace}) is
    supplied, every task, region, jump-table round and durable-I/O step
    additionally records a real wall-time span (per-domain buffers,
    drained at each quiescent point), and the run's scheduler activity is
    snapshot-diffed into [stats.sched_*].

    {2 Durability}

    With [?persist], the parse journals every construction op and commits
    at quiescent points (after init, after every jump-table round, and
    once more before returning), checkpointing the graph every
    [p_every] rounds plus once at the very start and once at the end.
    With [?resume], the worklist is seeded from a {!Recover.plan}: the
    durable op stream is replayed first, then every candidate block
    re-parses, every function re-walks, and every resolved call terminator
    re-fires its noreturn bookkeeping (idempotently, behind the
    fall-through guard). A {!Pbca_concurrent.Fault} [Crash] fault aborts
    the parse with [Fault.Crashed] at the next quiescent point, {e before}
    that round commits — the on-disk artifacts then look exactly like a
    process kill. *)

type persist = {
  p_journal : string;  (** journal path (created/truncated) *)
  p_checkpoint : string;  (** checkpoint path (atomically replaced) *)
  p_every : int;  (** checkpoint every N rounds; [<= 1] = every round *)
}

val parse :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  ?otrace:Pbca_obs.Trace.t ->
  ?persist:persist ->
  ?resume:Recover.plan ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t
(** Expansion phase only; call {!Finalize.run} afterwards for the full
    pipeline (or use {!parse_and_finalize}). May raise
    [Pbca_concurrent.Fault.Crashed] when a simulated crash is armed. *)

val parse_and_finalize :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  ?otrace:Pbca_obs.Trace.t ->
  ?persist:persist ->
  ?resume:Recover.plan ->
  ?on_ready:(Cfg.func -> unit) ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  Cfg.t
(** [?on_ready] is forwarded to {!Finalize.run}: the per-function
    readiness protocol of the streaming pipeline. When supplied, each
    function of the final graph is published to it (from pool workers,
    concurrently) as soon as its blocks and cross-function
    noreturn/tail-call facts are settled, letting downstream stages
    consume per-function work before finalization has finished the whole
    graph. *)
