(** Concurrent control-flow-graph structures.

    The containers and primitives realizing the paper's five invariants
    (Section 5.2):

    - Invariant 1 / 5 (unique block / function creation): {!find_or_create_block}
      and {!find_or_create_func} are backed by concurrent hash maps keyed by
      start address; the first inserter wins (Listing 4).
    - Invariant 2 (unique block end) / 3 (the end registrant creates the
      out-edges) / 4 (eager block split): {!register_end} holds the
      [ends]-map entry lock for the end address while either running the
      caller's edge-creation callback (winner) or performing one iteration
      of the eager split loop (Listing 5). Each split iteration re-registers
      a strictly smaller end address, so the loop converges.

    Blocks, edges and functions are mutable records whose cross-thread
    fields are [Atomic]; quiescent phases (finalization, client analyses)
    may read everything freely. *)

type edge_kind =
  | Fallthrough  (** linear flow after a split or early block end *)
  | Jump
  | Cond_taken
  | Cond_fall
  | Call
  | Call_fallthrough
  | Indirect  (** resolved jump-table edge *)
  | Tail_call

type block = {
  b_start : int;
  b_end : int Atomic.t;  (** exclusive; -1 while still a candidate *)
  b_term : Pbca_isa.Insn.t option Atomic.t;
      (** terminating control-flow instruction, once the end is resolved and
          this block owns it *)
  b_ninsns : int Atomic.t;
  b_out : edge list Atomic.t;
  b_in : edge list Atomic.t;
  b_watchers : func list Atomic.t;
      (** functions whose traversal passed through and must be re-run when
          this block gains edges or resolves *)
}

and edge = {
  mutable e_src : block;  (** mutated only under the split lock *)
  e_dst : block;
  mutable e_kind : edge_kind;  (** flipped only during finalization *)
  mutable e_flipped : bool;
      (** finalization flips each edge's tail-call classification at most
          once, guaranteeing convergence (Section 5.4) *)
  e_dead : bool Atomic.t;
  e_jt : (int * int) option;  (** (table id, entry index) for [Indirect] *)
}

and ret_status = Unset | Returns | Noreturn

and waiter =
  | W_fallthrough of int  (** call-site end address: create its call-fall-through *)
  | W_status of func  (** tail-calling caller inherits [Returns] *)

and func = {
  f_entry_addr : int;
  f_entry : block;
  f_name : string;
  f_from_symtab : bool;
  f_ret : ret_status Atomic.t;
  f_ret_dep : Pbca_simsched.Trace.dep option Atomic.t;
      (** trace progress point at which the status became [Returns]; tasks
          enabled by that status (call-fall-through parses) record it as a
          dependency so the replay model sees the noreturn serialization
          even when the status race was already won *)
  f_waiters : waiter list Atomic.t;
  f_visited : Pbca_concurrent.Atomic_intset.t;
      (** per-function traversal visited-set; [Atomic_intset.add] is the
          lock-free "first visitor wins" test the traversal runs per edge
          (previously a [Hashtbl] behind a per-function mutex) *)
  mutable f_blocks : block list;  (** set by finalization *)
}

type jt_record = {
  jt_id : int;
  jt_block : block;  (** the block ending with the indirect jump *)
  jt_jump_addr : int;
  jt_base : int;
  jt_bounded : bool;
  jt_count : int;  (** entries materialized as edges *)
}

(** Per-step finalization observability, written by {!Finalize} (both the
    snapshot-indexed path and the legacy whole-graph path): wall seconds
    per step, fix-round count, CSR snapshot rebuild count, and the
    dirty-set size of each tail-call fix round ([fz_dirty], oldest round
    first; the legacy path records the full function count each round
    since it recomputes every boundary). Mutated only from the master
    thread between parallel steps. *)
type finalize_stats = {
  mutable fz_jt_wall : float;  (** jump-table over-approximation cleanup *)
  mutable fz_reach_wall : float;  (** unreachable-block pruning (all rounds) *)
  mutable fz_bounds_wall : float;  (** function-boundary recomputation *)
  mutable fz_rules_wall : float;  (** tail-call correction rule scans *)
  mutable fz_prune_wall : float;  (** function pruning rounds *)
  mutable fz_recount_wall : float;  (** final instruction recount *)
  mutable fz_snapshot_wall : float;  (** CSR snapshot builds (snapshot path) *)
  mutable fz_rounds : int;  (** tail-call fix rounds executed *)
  mutable fz_snapshots : int;  (** CSR snapshots built (snapshot path) *)
  mutable fz_dirty : int list;  (** boundary recomputations per fix round *)
}

(** Which budget a degradation charged against. [B_deadline] also covers
    work skipped because the global work-unit deadline passed. *)
type budget_site = B_block | B_slice | B_table | B_deadline

(** Provenance of a function entry, strongest first: named by a symbol (or
    the image entry point), decoded as the target of a direct call in
    already-trusted code, or proposed by the gap-parsing heuristics. The
    wire codes ({!conf_code}) are part of the journal/checkpoint format. *)
type confidence = From_symbol | From_call_target | From_heuristic

val conf_code : confidence -> int
(** [0 / 1 / 2] in declaration order. *)

val conf_of_code : int -> confidence
(** Raises [Invalid_argument] outside [0..2]. *)

val confidence_name : confidence -> string
(** ["symbol" / "call-target" / "heuristic"]. *)

type stats = {
  insns_decoded : int Atomic.t;
  blocks_created : int Atomic.t;
  splits : int Atomic.t;
  edges_created : int Atomic.t;
  jt_analyses : int Atomic.t;
  jt_unresolved : int Atomic.t;
  budget_block : int Atomic.t;
      (** block scans cut by [Config.max_block_bytes] *)
  budget_slice : int Atomic.t;
      (** jump-table slices cut by [Config.max_slice_steps] *)
  budget_table : int Atomic.t;
      (** table reads cut by [Config.max_table_entries] *)
  budget_deadline : int Atomic.t;
      (** work units skipped past [Config.deadline_s] *)
  task_failures : (string * string) Pbca_concurrent.Conc_bag.t;
      (** (site label, exception text) for every contained task crash; the
          parse survives these and reports them as diagnostics *)
  contention : Pbca_concurrent.Contention.t;
      (** probe / CAS-retry / resize / frozen-wait counters shared by every
          address map and visited-set of this graph — the direct measure of
          how contended the lock-free hot paths actually were *)
  finalize : finalize_stats;
  journal_records : int Atomic.t;
      (** construction ops emitted to an attached {!Journal} writer *)
  replayed_ops : int Atomic.t;
      (** ops re-applied from a checkpoint/journal during resume *)
  resume_count : int Atomic.t;
      (** times this graph was resumed from persisted state *)
  supervisor_restarts : int Atomic.t;
      (** restarts the {!Pbca_concurrent.Supervisor} performed for the job
          that produced this graph (set by the batch driver) *)
  deadline_checks : int Atomic.t;
      (** {!past_deadline} calls while a deadline was armed and not latched *)
  deadline_polls : int Atomic.t;
      (** of those, how many actually paid the monotonic clock read;
          [checks - polls] is the syscall saving of the coarsened clock *)
  sched_steals : int Atomic.t;
  sched_steal_attempts : int Atomic.t;
  sched_idle_sleeps : int Atomic.t;
      (** this run's work-stealing scheduler activity: {!Parallel}
          snapshot-diffs the pool's per-pool cumulative counters around
          the parse, so a concurrent run on another pool never leaks into
          these numbers *)
  csr_deltas : int Atomic.t;
      (** winning delta kills (edges + blocks) absorbed by the finalize
          CSR snapshot in place, i.e. rebuilds avoided by the delta layer *)
  csr_compactions : int Atomic.t;
      (** finalize CSR snapshot rebuilds forced by the dead fraction
          crossing [Config.csr_compact_threshold] *)
  stream_published : int Atomic.t;
      (** functions published on the pipeline channel by the finalize
          readiness protocol (0 on the barrier path) *)
  stream_hwm : int Atomic.t;
      (** pipeline channel depth high-water mark; equal to the channel
          capacity when the producer hit the bound *)
  stream_consumer_idle_us : int Atomic.t;
      (** cumulative microseconds pipeline consumers spent blocked on an
          empty channel (starvation: the producer was the bottleneck) *)
  stream_producer_block_us : int Atomic.t;
      (** cumulative microseconds producers spent blocked on a full
          channel (backpressure: the consumers were the bottleneck) *)
  gap_gaps_scanned : int Atomic.t;
      (** unclaimed [.text] gaps examined by the gap-parsing rounds *)
  gap_entries_proposed : int Atomic.t;
      (** entry addresses the gap heuristics proposed *)
  gap_entries_accepted : int Atomic.t;
      (** proposals whose parse produced a real (non-degenerate) entry *)
  gap_entries_rejected : int Atomic.t;
      (** proposals that decoded to nothing and were discarded *)
}

type t = {
  image : Pbca_binfmt.Image.t;
  config : Config.t;
  blocks : block Addr_map.t;
  ends : block Addr_map.t;
  funcs : func Addr_map.t;
  tables : jt_record Pbca_concurrent.Conc_bag.t;
  next_table_id : int Atomic.t;
  static_entries : unit Addr_map.t;
      (** function entries known from the symbol table before traversal
          starts. Tail-call and jump-table heuristics consult this static
          set rather than the evolving [funcs] map, so their answers do not
          depend on thread timing — the finalization rules then converge on
          the canonical classification (Section 5.4). *)
  ft_guard : unit Addr_map.t;
      (** once-guard per call site: the call-fall-through edge of a given
          call end address is created exactly once even when the waiter
          registration races with the callee's status transition *)
  degraded : bool Addr_map.t;
      (** addresses at which a budget cut, deadline skip or task failure
          forced the safe over-approximation (block kept but truncated,
          table left unresolved, traversal abandoned); the checker treats
          differences explained by these marks as [Expected]. The value is
          true for deadline-caused marks, which resume drops and re-does *)
  conf : int Addr_map.t;
      (** function-entry confidence overrides ({!conf_code} values), keyed
          by entry address. Absent means derived: [From_symbol] for symtab
          entries and the image entry point, [From_call_target] otherwise.
          First writer wins and every stored tag is journaled ([Op_conf]),
          so tags survive checkpoint/resume verbatim. *)
  deadline : float;
      (** absolute {e monotonic} bound: [Pbca_obs.Clock.now] at {!create}
          plus [Config.deadline_s]; [infinity] when the deadline is off.
          Monotonic so an NTP step can neither fire the deadline early
          nor keep it from ever firing *)
  dl_counter : int Atomic.t;
      (** deadline checks since the last real clock poll *)
  dl_past : bool Atomic.t;
      (** latched deadline verdict: once past, always past — lets
          {!past_deadline} skip the clock entirely after the first hit *)
  mutable journal : Journal.writer option;
      (** attached by {!Parallel} for persistent parses; every structural
          mutation emits a {!Journal.op} while set. Attach/detach only at
          quiescent points (use {!set_journal}). *)
  stats : stats;
  trace : Pbca_simsched.Trace.t;
  otrace : Pbca_obs.Trace.t;
      (** per-domain execution spans (real wall time, Chrome-exportable);
          distinct from [trace], the replay-simulation DAG *)
  metrics : Pbca_obs.Metrics.t;
      (** per-run registry adopting every counter above by name (plus the
          contention counters and decode-cache gauges), for [--metrics]
          dumps and snapshot-diff scoping *)
}

val create :
  ?config:Config.t ->
  ?trace:Pbca_simsched.Trace.t ->
  ?otrace:Pbca_obs.Trace.t ->
  Pbca_binfmt.Image.t ->
  t

(** {2 Robustness bookkeeping}

    Budgets, degradation marks and contained task failures. All operations
    are safe from any task; reads are wait-free. *)

val note_budget : t -> budget_site -> unit
(** Bump the counter for [site] without marking an address. *)

val mark_degraded : ?deadline:bool -> t -> int -> unit
(** Mark an address degraded without charging a budget (negative addresses
    — hostile jump targets — are counted nowhere and silently dropped).
    [~deadline:true] tags the mark as deadline-caused in the journal, so
    resume drops it: the lost work is re-done under the renewed deadline. *)

val record_degraded : t -> budget_site -> int -> unit
(** [note_budget] + [mark_degraded]. *)

val record_task_failure : t -> site:string -> detail:string -> unit
val degraded_at : t -> int -> bool
val degraded_count : t -> int
val degraded_within : t -> lo:int -> hi:int -> bool

val unmark_degraded : t -> int -> unit
(** Drop a mark (resume only: the work is about to be re-done). *)

val degraded_list : t -> (int * bool) list
(** Sorted [(addr, deadline_caused)] marks. Quiescent use only. *)

val func_degraded : t -> func -> bool
(** True when the function's entry, any visited block or any finalized
    block start carries a degradation mark. *)

val task_failure_count : t -> int
val task_failures : t -> (string * string) list

(** {2 Confidence tagging} *)

val set_conf : t -> int -> int -> unit
(** [set_conf t addr code] — tag [addr] with a {!conf_code} unless it
    already carries one (first writer wins; negative addresses dropped).
    A winning insert is journaled as [Op_conf]. *)

val conf_at : t -> int -> int option
(** The stored tag at [addr], if any (no derivation). *)

val func_confidence : t -> func -> confidence
(** The function's effective confidence: its stored tag, else
    [From_symbol] for symtab entries and the image entry point, else
    [From_call_target]. *)

val conf_list : t -> (int * int) list
(** Sorted [(addr, code)] stored tags. Quiescent use only. *)

val conf_counts : t -> int * int * int
(** Function counts per confidence level, [(symbol, call_target,
    heuristic)]. Quiescent use only. *)

val past_deadline : t -> bool
(** True once the work-unit deadline has passed (never true when off). *)

val effective_budget : int -> int
(** The budget value analyses should obey: the configured value, or 1 when
    a {!Pbca_concurrent.Fault} [Starve] fault is live (0 = disabled stays
    0). *)

val is_candidate : block -> bool
val block_end : block -> int
val out_edges : block -> edge list
(** Live (non-dead) out-edges. *)

val in_edges : block -> edge list
val is_intra : edge_kind -> bool
(** Edges followed when computing function boundaries. *)

val find_or_create_block : t -> int -> block * bool
(** Invariant 1: at most one block per start address. *)

val find_or_create_func : t -> name:string -> from_symtab:bool -> int -> func * bool
(** Invariant 5: at most one function per entry address. The entry block is
    created (Invariant 1) as a side effect. *)

val add_edge : t -> ?jt:int * int -> block -> block -> edge_kind -> edge
(** Append an edge; both endpoint lists are updated. *)

val set_term : t -> block -> Pbca_isa.Insn.t option -> unit
(** Set (or clear) a block's terminator, journaling the change. Same
    locking discipline as the rest of the split protocol: call only under
    the ends-entry lock or on a block no one else owns yet. *)

val set_degenerate : t -> block -> unit
(** Collapse a candidate to the degenerate empty block ([end = start]),
    journaling the change. Degenerate blocks own no ends-map entry. *)

(** {2 Journal plumbing} *)

val edge_kind_code : edge_kind -> int
val edge_kind_of_code : int -> edge_kind
(** Stable wire codes for {!Journal.Op_edge}. [edge_kind_of_code] raises
    [Invalid_argument] outside [0..7]. *)

val set_journal : t -> Journal.writer option -> unit
(** Attach/detach the journal. Quiescent points only: detach {e before}
    finalization (finalize removals are deliberately not journaled — the
    checkpoint/journal pair always describes a pre-finalize graph). *)

val journal_emit : t -> Journal.op -> unit
(** Emit an op through the attached writer (no-op when detached), counting
    it in [stats.journal_records]. For emission sites that live outside
    [Cfg] itself, e.g. the jump-table frontier in {!Parallel}. *)

val register_end :
  t ->
  block ->
  end_:int ->
  on_win:(block -> unit) ->
  on_done:(block -> unit) ->
  unit
(** Invariants 2-4. [on_win b] runs while holding the entry lock if [b] is
    the unique registrant for [end_] — it must create the block's
    terminator out-edges (Invariant 3) and set [b_term]. Otherwise the
    eager split algorithm runs, possibly over several strictly decreasing
    end addresses. [on_done b] is called (outside the lock) for every block
    whose shape changed, so traversal watchers can be notified.

    Locking discipline: a resolved block's out-edge list is only ever
    mutated while holding the [ends] entry lock of the block's current end
    address — by the winner's [on_win], by the split loop when it moves
    edges between blocks, and by {!add_edge_at_end} for deferred
    call-fall-through edges. This is what makes "edges are never created
    while being moved" hold (paper Listing 5). *)

val add_edge_at_end :
  t -> end_:int -> dst_addr:int -> edge_kind -> (block * block * bool) option
(** Add an out-edge (typically [Call_fallthrough]) to whichever block
    currently owns [end_], atomically with respect to splits. Returns
    [(owner, dst, dst_created)], or [None] when no block owns [end_] (the
    call site itself was unreachable and never resolved). *)

val watch : block -> func -> unit
(** Subscribe a function to a block's shape changes. *)

val blocks_list : t -> block list
(** All blocks, sorted by start address. Quiescent use only. *)

val funcs_list : t -> func list
(** All functions, sorted by entry address. Quiescent use only. *)

val pp_edge_kind : Format.formatter -> edge_kind -> unit
