module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Semantics = Pbca_isa.Semantics
module Image = Pbca_binfmt.Image
module Symtab = Pbca_binfmt.Symtab
module Symbol = Pbca_binfmt.Symbol
module Task_pool = Pbca_concurrent.Task_pool
module Atomic_intset = Pbca_concurrent.Atomic_intset
module Trace = Pbca_simsched.Trace
module Otrace = Pbca_obs.Trace
module Clock = Pbca_obs.Clock

type ctx = {
  g : Cfg.t;
  mutable spawn : (unit -> unit) -> unit;
  jt_pending : Reg.t Addr_map.t;
      (* keyed by the indirect jump's end address, which is stable across
         splits (Invariant 2); the owning block is looked up at analysis
         time *)
  jt_last : Jump_table.outcome Addr_map.t; (* latest outcome per end addr *)
}

let spawn_traced ?(addr = -1) ctx label f =
  let d = Trace.capture ctx.g.Cfg.trace in
  let ot = ctx.g.Cfg.otrace in
  ctx.spawn (fun () ->
      Trace.run ctx.g.Cfg.trace ~label ~deps:[ d ] (fun () ->
          Otrace.with_span ot ~phase:label ~addr label f))

(* ------------------------------------------------------------------ *)
(* Function bookkeeping.                                               *)

let func_name ctx addr =
  match Symtab.by_offset ctx.g.Cfg.image.Image.symtab addr with
  | s :: _ when Symbol.is_func s -> Symbol.pretty s
  | _ -> Printf.sprintf "func_0x%x" addr

let rec notify_watchers ctx (b : Cfg.block) =
  List.iter
    (fun f -> spawn_traced ctx "walk" (fun () -> process_block ctx f b))
    (Atomic.get b.Cfg.b_watchers)

and fire_fallthrough ctx ~dep ~call_end =
  match
    Cfg.add_edge_at_end ctx.g ~end_:call_end ~dst_addr:call_end
      Cfg.Call_fallthrough
  with
  | None -> ()
  | Some (owner, dst, created) ->
    (* the spawned work semantically depends on the callee's return status
       becoming known, not only on this call site's discovery *)
    let spawn_dep label f =
      let d = Trace.capture ctx.g.Cfg.trace in
      let ot = ctx.g.Cfg.otrace in
      ctx.spawn (fun () ->
          Trace.run ctx.g.Cfg.trace ~label ~deps:[ d; dep ] (fun () ->
              Otrace.with_span ot ~phase:label label f))
    in
    if created then spawn_dep "parse" (fun () -> parse_block ctx dst);
    List.iter
      (fun f -> spawn_dep "walk" (fun () -> process_block ctx f owner))
      (Atomic.get owner.Cfg.b_watchers)

and ensure_func ctx addr =
  let b, bcreated = Cfg.find_or_create_block ctx.g addr in
  if bcreated then
    spawn_traced ~addr ctx "parse" (fun () -> parse_block ctx b);
  let f, created =
    Cfg.find_or_create_func ctx.g ~name:(func_name ctx addr)
      ~from_symtab:(Addr_map.mem ctx.g.Cfg.static_entries addr)
      addr
  in
  if created then begin
    Noreturn.seed_status ctx.g f;
    let entry = f.Cfg.f_entry in
    spawn_traced ctx "walk" (fun () -> process_block ctx f entry)
  end;
  f

(* ------------------------------------------------------------------ *)
(* Function traversal (Listing 3): walk the evolving graph from the
   function's entry, subscribing to every visited block so new edges and
   late block resolutions re-trigger the walk.                          *)

and process_block ctx (f : Cfg.func) (b0 : Cfg.block) =
  let g = ctx.g in
  if Cfg.past_deadline g then
    (* abandon the walk; the function keeps whatever was discovered *)
    Cfg.record_degraded g Cfg.B_deadline f.Cfg.f_entry_addr
  else begin
    process_block_loop ctx f b0
  end

and process_block_loop ctx (f : Cfg.func) (b0 : Cfg.block) =
  let g = ctx.g in
  let stack = ref [ b0 ] in
  let fire = fire_fallthrough ctx in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | b :: rest ->
      stack := rest;
      Trace.tick g.Cfg.trace 1;
      (* lock-free "first visitor wins": one CAS, no per-function mutex *)
      let first = Atomic_intset.add f.Cfg.f_visited b.Cfg.b_start in
      if first then Cfg.watch b f;
      if not (Cfg.is_candidate b) then begin
        (match Atomic.get b.Cfg.b_term with
        | Some Insn.Ret -> Noreturn.set_returns g f ~fire
        | _ -> ());
        List.iter
          (fun (e : Cfg.edge) ->
            match e.e_kind with
            | Cfg.Call -> () (* fall-through handled at the call site *)
            | Cfg.Tail_call ->
              (match Addr_map.find g.Cfg.funcs e.e_dst.Cfg.b_start with
              | Some callee ->
                Noreturn.subscribe_tail_status g ~caller:f ~callee ~fire
              | None -> ())
            | Cfg.Fallthrough | Cfg.Jump | Cfg.Cond_taken | Cfg.Cond_fall
            | Cfg.Call_fallthrough | Cfg.Indirect ->
              let dst = e.e_dst in
              if not (Atomic_intset.mem f.Cfg.f_visited dst.Cfg.b_start) then
                stack := dst :: !stack)
          (Cfg.out_edges b)
      end
  done

(* ------------------------------------------------------------------ *)
(* Linear parsing and block-end registration (Invariants 2-4).         *)

and parse_block ctx (b : Cfg.block) =
  let g = ctx.g in
  if Cfg.past_deadline g then begin
    (* out of time: leave the block degenerate (same shape as "nothing
       decodable") so watchers unblock and the region can drain *)
    if Cfg.is_candidate b then begin
      Cfg.record_degraded g Cfg.B_deadline b.Cfg.b_start;
      Cfg.set_degenerate g b;
      notify_watchers ctx b
    end
  end
  else if Cfg.is_candidate b then begin
    let post : (unit -> unit) list ref = ref [] in
    let add_post a = post := a :: !post in
    (* terminator-edge creation, run under the ends-entry lock when this
       block wins the registration (Invariant 3) *)
    let on_win_cf insn ~addr ~len ~prev (blk : Cfg.block) =
      Cfg.set_term g blk (Some insn);
      let target kind t =
        (* A hostile relative branch can aim below address zero; no block
           can live there, so drop the edge and flag the site instead of
           poisoning the address-keyed structures. *)
        if t < 0 then Cfg.mark_degraded g blk.Cfg.b_start
        else begin
          let dst, created = Cfg.find_or_create_block g t in
          ignore (Cfg.add_edge g blk dst kind);
          if created then
            add_post (fun () ->
                spawn_traced ~addr:t ctx "parse" (fun () ->
                    parse_block ctx dst))
        end
      in
      let is_tail t =
        Addr_map.mem g.Cfg.static_entries t
        || (match prev with
           | Some p -> Semantics.is_stack_teardown p
           | None -> false)
      in
      match Semantics.flow ~addr ~len insn with
      | Semantics.Jump t ->
        if is_tail t then begin
          target Cfg.Tail_call t;
          if t >= 0 then add_post (fun () -> ignore (ensure_func ctx t))
        end
        else target Cfg.Jump t
      | Semantics.Cond_jump t ->
        if Addr_map.mem g.Cfg.static_entries t then begin
          target Cfg.Tail_call t;
          if t >= 0 then add_post (fun () -> ignore (ensure_func ctx t))
        end
        else target Cfg.Cond_taken t;
        target Cfg.Cond_fall (addr + len)
      | Semantics.Jump_indirect ->
        let reg =
          match insn with Insn.Jmp_ind r -> r | _ -> assert false
        in
        if Addr_map.insert_if_absent ctx.jt_pending (addr + len) reg then
          Cfg.journal_emit g
            (Journal.Op_jt_pending
               { end_ = addr + len; reg = Reg.to_int reg })
      | Semantics.Call_direct t ->
        target Cfg.Call t;
        let call_end = addr + len in
        if t >= 0 then
          add_post (fun () ->
              let callee = ensure_func ctx t in
              Noreturn.request_fallthrough g ~callee ~call_end
                ~fire:(fire_fallthrough ctx))
      | Semantics.Call_indirect ->
        (* no static callee: assume it returns (standard practice) *)
        target Cfg.Call_fallthrough (addr + len)
      | Semantics.Return | Semantics.Stop -> ()
      | Semantics.Fallthrough -> assert false
    in
    let max_bytes =
      Cfg.effective_budget g.Cfg.config.Config.max_block_bytes
    in
    let rec scan a n prev =
      (* Decode-byte budget: hostile bytes can form one endless straight
         line (no terminator before the section edge). Cut the scan here,
         keep the block (safe over-approximation) and mark it degraded. *)
      if max_bytes > 0 && a - b.Cfg.b_start >= max_bytes then begin
        Cfg.record_degraded g Cfg.B_block b.Cfg.b_start;
        Atomic.set b.Cfg.b_ninsns n;
        Cfg.register_end g b ~end_:a
          ~on_win:(fun _ -> ())
          ~on_done:(fun blk -> notify_watchers ctx blk)
      end
      (* Early stop at any already-known block start: the split protocol
         would produce the identical Fallthrough edge if we scanned on, so
         stopping here saves the work without changing the CFG. Now that
         [blocks] reads are wait-free this consults the *global* map — the
         old thread-local set only saw this thread's own parses. *)
      else if
        g.Cfg.config.Config.decode_cache
        && a <> b.Cfg.b_start
        && Addr_map.mem g.Cfg.blocks a
      then begin
        Atomic.set b.Cfg.b_ninsns n;
        Cfg.register_end g b ~end_:a
          ~on_win:(fun blk ->
            match Addr_map.find g.Cfg.blocks a with
            | Some dst -> ignore (Cfg.add_edge g blk dst Cfg.Fallthrough)
            | None -> ())
          ~on_done:(fun blk -> notify_watchers ctx blk)
      end
      else (
        match Image.decode_at g.Cfg.image a with
        | None ->
          Atomic.set b.Cfg.b_ninsns n;
          if a = b.Cfg.b_start then begin
            (* nothing decodable here: degenerate empty block *)
            Cfg.set_degenerate g b;
            notify_watchers ctx b
          end
          else
            Cfg.register_end g b ~end_:a
              ~on_win:(fun _ -> ())
              ~on_done:(fun blk -> notify_watchers ctx blk)
        | Some (insn, len) ->
          Atomic.incr g.Cfg.stats.insns_decoded;
          Trace.tick g.Cfg.trace 2;
          if Semantics.is_control_flow insn then begin
            Atomic.set b.Cfg.b_ninsns (n + 1);
            Cfg.register_end g b ~end_:(a + len)
              ~on_win:(on_win_cf insn ~addr:a ~len ~prev)
              ~on_done:(fun blk -> notify_watchers ctx blk)
          end
          else scan (a + len) (n + 1) (Some insn))
    in
    scan b.Cfg.b_start 0 None;
    List.iter (fun a -> a ()) (List.rev !post)
  end

(* ------------------------------------------------------------------ *)
(* Deferred jump-table analysis rounds (the fixed point of Section 5.3,
   run on quiescent graphs so every round's input is deterministic).    *)

let run_jt_analysis ctx end_addr reg =
  let g = ctx.g in
  match Addr_map.find g.Cfg.ends end_addr with
  | None -> ()
  | Some blk when Cfg.past_deadline g ->
    (* skip the analysis: the table stays unresolved, which is the safe
       over-approximation; mark the site so the checker can explain it *)
    Cfg.record_degraded g Cfg.B_deadline blk.Cfg.b_start;
    (match Disasm.terminator g blk with
    | Some (a, _, _) -> Cfg.mark_degraded ~deadline:true g a
    | None -> ())
  | Some blk ->
    let outcome = Jump_table.analyze g blk reg in
    Addr_map.update ctx.jt_last end_addr (fun _ -> (Some outcome, ()));
    let have = Hashtbl.create 16 in
    List.iter
      (fun (e : Cfg.edge) ->
        if e.e_kind = Cfg.Indirect then
          Hashtbl.replace have e.e_dst.Cfg.b_start ())
      (Cfg.out_edges blk);
    List.iter
      (fun t ->
        if not (Hashtbl.mem have t) then begin
          Hashtbl.replace have t ();
          match Cfg.add_edge_at_end g ~end_:end_addr ~dst_addr:t Cfg.Indirect with
          | None -> ()
          | Some (owner, dst, created) ->
            if created then
              spawn_traced ~addr:t ctx "parse" (fun () ->
                  parse_block ctx dst);
            notify_watchers ctx owner
        end)
      outcome.Jump_table.targets

let finish_tables ctx =
  let g = ctx.g in
  Addr_map.iter
    (fun jump_end _reg ->
      match (Addr_map.find g.Cfg.ends jump_end, Addr_map.find ctx.jt_last jump_end) with
      | Some blk, Some o when o.Jump_table.base <> None ->
        let count = o.Jump_table.entries in
        Pbca_concurrent.Conc_bag.add g.Cfg.tables
          {
            Cfg.jt_id = Atomic.fetch_and_add g.Cfg.next_table_id 1;
            jt_block = blk;
            jt_jump_addr =
              (match Disasm.terminator g blk with
              | Some (a, _, _) -> a
              | None -> jump_end);
            jt_base = Option.get o.Jump_table.base;
            jt_bounded = o.Jump_table.bounded;
            jt_count = count;
          }
      | _ -> ())
    ctx.jt_pending

(* ------------------------------------------------------------------ *)
(* Gap parsing (opt-in, [Config.gap_parse]): entry heuristics over the
   unclaimed [.text] ranges left by the symbol-seeded fixed point.
   Stripped binaries leave almost the whole section unclaimed; the
   proposals below recover function entries without symtab help and are
   tagged [From_heuristic] so consumers see the provenance honestly.    *)

(* Unclaimed ranges of [\[lo, hi)] given the quiescent block map. Every
   block claims at least its start byte — candidates and degenerates
   included: an address the traversal already proposed is not a gap,
   whatever came of it. [blocks_list] is sorted by start, so one sweep
   suffices. Zero-length ranges are never emitted.                      *)
let unclaimed_gaps g ~lo ~hi =
  let gaps = ref [] in
  let pos = ref lo in
  List.iter
    (fun (b : Cfg.block) ->
      let s = b.Cfg.b_start in
      if s >= lo && s < hi then begin
        if s > !pos then gaps := (!pos, s) :: !gaps;
        let e = max (s + 1) (min hi (Cfg.block_end b)) in
        pos := max !pos e
      end)
    (Cfg.blocks_list g);
  if !pos < hi then gaps := (!pos, hi) :: !gaps;
  List.rev !gaps

(* Entry proposals for one gap, in decreasing signal strength:
   - prologue: a frame-setup instruction at any position the in-gap
     linear sweep reaches opens a function;
   - call target: a direct call decoded inside the gap whose target also
     lies in unclaimed space — stripped code calling stripped code;
   - alignment: the first non-padding decodable offset of the gap when it
     sits on a unit boundary — unreferenced frameless functions follow
     their predecessor's padding.
   Direct-jump targets are deliberately NOT proposed: intra-function
   branches inside the same gap would mint spurious entries; genuine tail
   calls are recovered by the normal traversal once the proposal parses. *)
let propose_in_gap image ~in_gap ~gap_align (lo, hi) =
  let props = ref [] in
  let add a = if in_gap a then props := a :: !props in
  let rs = Linear_sweep.sweep_range image lo hi in
  Hashtbl.iter
    (fun a () ->
      match Image.decode_at image a with
      | Some (Insn.Enter _, _) -> add a
      | _ -> ())
    rs.Linear_sweep.rs_positions;
  List.iter
    (fun (blk : Linear_sweep.block) ->
      match blk.Linear_sweep.term with
      | None -> ()
      | Some insn -> (
        let len = Pbca_isa.Codec.encoded_length insn in
        let addr = blk.Linear_sweep.e - len in
        match Semantics.flow ~addr ~len insn with
        | Semantics.Call_direct t -> add t
        | _ -> ()))
    rs.Linear_sweep.rs_blocks;
  if gap_align > 0 then begin
    let rec skip_pad a =
      if a < hi then
        match Image.decode_at image a with
        | Some (Insn.Nop, len) -> skip_pad (a + len)
        | Some _ when a mod gap_align = 0 -> add a
        | _ -> ()
    in
    skip_pad lo
  end;
  List.sort_uniq compare !props

(* ------------------------------------------------------------------ *)

type persist = { p_journal : string; p_checkpoint : string; p_every : int }

let parse ?(config = Config.default) ?(trace = Pbca_simsched.Trace.disabled)
    ?(otrace = Otrace.disabled) ?persist ?resume ~pool image =
  (* monotonic start: wall-clock steps (NTP, manual set) must not
     corrupt the recorded progress or the deadline *)
  let t0 = Clock.now () in
  let sched0 = Task_pool.stats pool in
  let g = Cfg.create ~config ~trace ~otrace image in
  (* root span: everything below (replay, regions, rounds, durable I/O)
     nests inside it, so span coverage accounts for the whole parse *)
  let root = Otrace.begin_span otrace ~phase:"total" "parse" in
  let ctx =
    {
      g;
      spawn = (fun _ -> invalid_arg "Parallel: spawn outside region");
      jt_pending = Addr_map.create ~counters:g.Cfg.stats.contention ();
      jt_last = Addr_map.create ~counters:g.Cfg.stats.contention ();
    }
  in
  (* Resume: replay the durable op stream into the fresh graph before any
     region opens — replay is strictly single-threaded and unjournaled. *)
  let resumed_progress =
    match resume with
    | None -> 0.0
    | Some plan ->
      Otrace.with_span otrace ~phase:"recovery" "resume-replay" (fun () ->
          ignore
            (Recover.apply g plan ~on_jt_pending:(fun ~end_ ~reg ->
                 ignore
                   (Addr_map.insert_if_absent ctx.jt_pending end_
                      (Reg.of_int reg)))));
      plan.Recover.pl_progress_s
  in
  (* Resume seeding, captured while still quiescent: candidates re-parse,
     every function re-walks (rebuilding watchers, visited sets and the
     return-status fixed point), and every resolved call terminator
     re-fires its noreturn bookkeeping — waiter lists are not persisted,
     and the fall-through guard makes the re-fire idempotent. *)
  let resume_seed =
    match resume with
    | None -> None
    | Some _ ->
      let blocks = Cfg.blocks_list g in
      let candidates = List.filter Cfg.is_candidate blocks in
      let calls =
        List.filter_map
          (fun (b : Cfg.block) ->
            if Cfg.block_end b >= 0 then
              match Atomic.get b.Cfg.b_term with
              | Some insn -> Some (b, insn)
              | None -> None
            else None)
          blocks
      in
      Some (candidates, Cfg.funcs_list g, calls)
  in
  let round =
    ref (match resume with Some plan -> plan.Recover.pl_round + 1 | None -> 0)
  in
  let round_base = !round in
  let journal =
    match persist with
    | None -> None
    | Some p ->
      let w = Journal.create_writer ~path:p.p_journal in
      (match resume with
      | Some plan -> Journal.set_seq_floor w plan.Recover.pl_seq_max
      | None -> ());
      Some w
  in
  Cfg.set_journal g journal;
  let save_checkpoint () =
    match (persist, journal) with
    | Some p, Some w ->
      Otrace.with_span otrace ~phase:"recovery" "checkpoint-save" (fun () ->
          Checkpoint.save ~path:p.p_checkpoint ~round:!round
            ~pending:
              (List.map
                 (fun (a, r) -> (a, Reg.to_int r))
                 (Addr_map.to_list ctx.jt_pending))
            ~seq_floor:(Journal.last_seq w)
            ~progress_s:(resumed_progress +. Clock.elapsed t0)
            g)
    | _ -> ()
  in
  (* Quiescent point: regions drained, no emitter active. A pending
     simulated crash fires *before* the flush, so the dying round leaves
     no commit — exactly a process kill between two durable points. *)
  let quiesce ~checkpoint =
    Pbca_concurrent.Fault.check_crash ();
    (* quiescent point doubles as the span-buffer drain barrier: no task
       is mid-append, so the per-domain batches can move safely *)
    Otrace.drain otrace;
    match journal with
    | None -> ()
    | Some w ->
      Otrace.with_span otrace ~phase:"recovery" "journal-flush" (fun () ->
          Journal.flush w ~round:!round);
      (match persist with
      | Some p
        when checkpoint
             && (p.p_every <= 1 || (!round - round_base) mod p.p_every = 0) ->
        save_checkpoint ()
      | _ -> ());
      incr round
  in
  (* The initial checkpoint makes the artifact pair valid from the very
     first instant: a crash inside round 0 (or a second crash right after
     a resume, before new progress commits) resumes from here instead of
     failing to load anything. *)
  save_checkpoint ();
  let symbols =
    let funcs = Symtab.functions image.Image.symtab in
    let entries =
      List.sort_uniq compare
        ((if image.Image.entry <> 0 then [ image.Image.entry ] else [])
        @ List.map (fun (s : Symbol.t) -> s.offset) funcs)
    in
    Array.of_list entries
  in
  (* Fault containment: a crashing task must not take the parse down with
     it. Every region runs in collect mode; failures become diagnostics in
     [stats.task_failures] and the affected work degrades like any other
     budget cut. *)
  let run_contained site root =
    (* one region = one span: each jump-table fixed-point iteration shows
       up as its own "jt-round" interval in the trace *)
    Otrace.with_span otrace ~phase:"region" site (fun () ->
        List.iter
          (fun e ->
            Cfg.record_task_failure g ~site ~detail:(Printexc.to_string e))
          (Task_pool.run_collect pool root))
  in
  let journal_done = ref false in
  let detach_journal () =
    if not !journal_done then begin
      journal_done := true;
      Cfg.set_journal g None;
      match journal with None -> () | Some w -> Journal.close w
    end
  in
  (* This run's scheduler activity is the snapshot-diff of the pool's
     per-pool counters — immune to a concurrent parse on another pool
     and to resets racing this run. *)
  let record_run_stats () =
    let d =
      Task_pool.diff_stats ~before:sched0 ~after:(Task_pool.stats pool)
    in
    Atomic.set g.Cfg.stats.sched_steals d.Task_pool.steals;
    Atomic.set g.Cfg.stats.sched_steal_attempts d.Task_pool.steal_attempts;
    Atomic.set g.Cfg.stats.sched_idle_sleeps d.Task_pool.idle_sleeps;
    Otrace.end_span otrace root
  in
  Fun.protect
    ~finally:(fun () ->
      record_run_stats ();
      detach_journal ())
    (fun () ->
      (* Stage 1: initialize functions from the symbol table, in parallel
         (Listing 2 line 1), then drain the traversal. On resume the same
         region also re-seeds the recovered frontier. *)
      run_contained "init" (fun spawn ->
          ctx.spawn <- spawn;
          Trace.run trace ~label:"init" ~deps:[] (fun () ->
              let chunk = 64 in
              let n = Array.length symbols in
              let rec spawn_chunks i =
                if i < n then begin
                  let hi = min n (i + chunk) in
                  spawn_traced ctx "init" (fun () ->
                      for k = i to hi - 1 do
                        Trace.tick trace 4;
                        ignore (ensure_func ctx symbols.(k))
                      done);
                  spawn_chunks hi
                end
              in
              spawn_chunks 0;
              match resume_seed with
              | None -> ()
              | Some (candidates, funcs, calls) ->
                List.iter
                  (fun b ->
                    spawn_traced ctx "parse" (fun () -> parse_block ctx b))
                  candidates;
                List.iter
                  (fun (f : Cfg.func) ->
                    Noreturn.seed_status g f;
                    spawn_traced ctx "walk" (fun () ->
                        process_block ctx f f.Cfg.f_entry))
                  funcs;
                List.iter
                  (fun ((b : Cfg.block), insn) ->
                    let len = Pbca_isa.Codec.encoded_length insn in
                    let call_end = Cfg.block_end b in
                    match
                      Semantics.flow ~addr:(call_end - len) ~len insn
                    with
                    | Semantics.Call_direct t when t >= 0 ->
                      let callee = ensure_func ctx t in
                      Noreturn.request_fallthrough g ~callee ~call_end
                        ~fire:(fire_fallthrough ctx)
                    | _ -> ())
                  calls));
      quiesce ~checkpoint:false;
      (* Stage 2: jump-table fixed point + deferred non-returning drains.
         Each round is a full synchronization: record it for the replay
         model, and commit it to the journal. *)
      let rec rounds n =
        let edges_before = Atomic.get g.Cfg.stats.edges_created in
        Trace.barrier trace;
        run_contained "jt-round" (fun spawn ->
            ctx.spawn <- spawn;
            Trace.run trace ~label:"jt-round" ~deps:[] (fun () ->
                Addr_map.iter
                  (fun end_addr reg ->
                    spawn_traced ~addr:end_addr ctx "jt" (fun () ->
                        run_jt_analysis ctx end_addr reg))
                  ctx.jt_pending));
        let fired =
          if not config.Config.eager_noreturn then begin
            let fired = ref false in
            run_contained "noreturn-drain" (fun spawn ->
                ctx.spawn <- spawn;
                fired := Noreturn.drain_pending g ~fire:(fire_fallthrough ctx));
            !fired
          end
          else false
        in
        let progress =
          Atomic.get g.Cfg.stats.edges_created <> edges_before || fired
        in
        quiesce ~checkpoint:true;
        if progress && n < 100_000 && not (Cfg.past_deadline g) then
          rounds (n + 1)
      in
      rounds 0;
      (* Stage 2.5 (opt-in): gap parsing. On the quiescent graph the
         unclaimed [.text] ranges are scanned for entry proposals;
         accepted proposals run through the ordinary traversal — budgets,
         journal and jump-table rounds included — tagged
         [From_heuristic]. Each round is a deterministic function of the
         quiescent graph, so a killed-and-resumed scan converges to the
         same CFG as an uninterrupted one.                               *)
      if config.Config.gap_parse then begin
        match Image.text_opt image with
        | None -> ()
        | Some text ->
          let stats = g.Cfg.stats in
          let lo = text.Pbca_binfmt.Section.addr in
          let hi = lo + Pbca_binfmt.Section.size text in
          let max_rounds = max 1 config.Config.gap_max_rounds in
          let rec gap_round n =
            if n < max_rounds && not (Cfg.past_deadline g) then begin
              let gaps = unclaimed_gaps g ~lo ~hi in
              ignore
                (Atomic.fetch_and_add stats.Cfg.gap_gaps_scanned
                   (List.length gaps));
              let in_gap a =
                List.exists (fun (l, h) -> a >= l && a < h) gaps
              in
              let proposals =
                List.sort_uniq compare
                  (List.concat_map
                     (propose_in_gap image ~in_gap
                        ~gap_align:config.Config.gap_align)
                     gaps)
              in
              (* an address already carrying a tag was proposed by an
                 earlier (possibly pre-crash, replayed) round *)
              let proposals =
                List.filter (fun a -> Cfg.conf_at g a = None) proposals
              in
              if proposals <> [] then begin
                ignore
                  (Atomic.fetch_and_add stats.Cfg.gap_entries_proposed
                     (List.length proposals));
                Trace.barrier trace;
                (* provenance first, for ALL proposals, before ANY spawn:
                   the heuristic tag must reach the journal strictly
                   before the Op_func it describes (or replay would keep
                   the derived call-target tag), and a spawned walk that
                   calls into a later proposal must find it already
                   tagged — the write-once race would otherwise make the
                   tag schedule-dependent *)
                List.iter
                  (fun a ->
                    Cfg.set_conf g a (Cfg.conf_code Cfg.From_heuristic))
                  proposals;
                run_contained "gap-seed" (fun spawn ->
                    ctx.spawn <- spawn;
                    Trace.run trace ~label:"gap-seed" ~deps:[] (fun () ->
                        List.iter
                          (fun a ->
                            spawn_traced ~addr:a ctx "gap" (fun () ->
                                ignore (ensure_func ctx a)))
                          proposals));
                quiesce ~checkpoint:true;
                rounds 0 (* jump tables discovered inside gap code *);
                List.iter
                  (fun a ->
                    match Addr_map.find g.Cfg.blocks a with
                    | Some b when Cfg.block_end b > a ->
                      Atomic.incr stats.Cfg.gap_entries_accepted
                    | _ -> Atomic.incr stats.Cfg.gap_entries_rejected)
                  proposals;
                gap_round (n + 1)
              end
            end
          in
          gap_round 0
      end;
      (* Stage 3: unresolved statuses are non-returning (cyclic rule); no
         new fall-throughs can arise from that, so traversal is complete. *)
      Otrace.with_span otrace ~phase:"region" "finish-tables" (fun () ->
          Noreturn.resolve_unset g;
          finish_tables ctx);
      Trace.barrier trace;
      ctx.spawn <- (fun _ -> invalid_arg "Parallel: region closed");
      (* Final durable point: flush, snapshot the completed (pre-finalize)
         graph, then detach — finalization mutations are never journaled. *)
      quiesce ~checkpoint:false;
      save_checkpoint ();
      detach_journal ();
      g)

let parse_and_finalize ?config ?trace ?otrace ?persist ?resume ?on_ready ~pool
    image =
  let g = parse ?config ?trace ?otrace ?persist ?resume ~pool image in
  Otrace.with_span g.Cfg.otrace ~phase:"finalize" "finalize" (fun () ->
      Finalize.run ?on_ready ~pool g);
  Otrace.drain g.Cfg.otrace;
  g
