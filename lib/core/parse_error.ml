(* Re-export: the taxonomy lives in [Pbca_binfmt] (the lowest layer that
   touches untrusted bytes); core-level analyses raise the same type so a
   caller only ever matches one exception. *)
include Pbca_binfmt.Parse_error
