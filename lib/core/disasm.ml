module Image = Pbca_binfmt.Image
module Semantics = Pbca_isa.Semantics

let insns_between image ~lo ~hi =
  let rec go a acc =
    if a >= hi then List.rev acc
    else
      match Image.decode_at image a with
      | Some (i, len) when a + len <= hi -> go (a + len) ((a, i, len) :: acc)
      | _ -> List.rev acc
  in
  go lo []

let block_insns (g : Cfg.t) (b : Cfg.block) =
  let e = Cfg.block_end b in
  if e < 0 then [] else insns_between g.Cfg.image ~lo:b.Cfg.b_start ~hi:e

let terminator g b =
  match Atomic.get b.Cfg.b_term with
  | Some i ->
    (* the parser stored the terminator when it registered the block end:
       reconstruct (addr, insn, len) from it instead of re-decoding the
       whole block *)
    let len = Pbca_isa.Codec.encoded_length i in
    Some (Cfg.block_end b - len, i, len)
  | None -> (
    (* split fall-through fragments and candidates carry no terminator;
       only then decode to check the final instruction *)
    match List.rev (block_insns g b) with
    | ((_, i, _) as last) :: _ when Semantics.is_control_flow i -> Some last
    | _ -> None)

let ends_with_teardown_jump g b =
  match List.rev (block_insns g b) with
  | (_, Pbca_isa.Insn.Jmp _, _) :: (_, prev, _) :: _ ->
    Semantics.is_stack_teardown prev
  | _ -> false
