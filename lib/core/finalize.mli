(** CFG finalization — the correction phase (paper Section 5.4).

    Four steps, each deterministic given the expansion-phase graph:

    1. Jump-table cleanup: tables are sorted by base address; using the
       observation that compilers do not emit overlapping jump tables, a
       table's entries are clamped at the next table's base — found by
       binary search over the sorted base array — or the end of the
       table's section, and indirect edges pointing outside the clamped
       entry set are removed (O_ER).
    2. Unreachable-code removal: blocks no longer reachable from any
       function entry are dropped along with their edges.
    3. Tail-call correction and function boundaries: function bodies are
       recomputed by traversing intra-procedural edges from each entry,
       then the three correction rules run; each edge's classification
       flips at most once, guaranteeing convergence.
    4. Function pruning: functions discovered during traversal that ended
       up with no incoming inter-procedural edges (and are not in the
       symbol table) are removed.

    {!run} executes these over an incrementally maintained {!Csr}
    snapshot of the live graph: reachability is a frontier-based parallel
    BFS over dense block indices, and the correction rules scan flat edge
    indices in parallel chunks (decisions are collected and applied
    serially — within a round the rules read only state a flip cannot
    change, so this equals the serial sorted pass). Fix rounds after the
    first recompute boundaries only for the {e dirty} functions whose
    boundary contained the source block of an edge flipped in the
    previous round, and their rule scan covers only the {e dirty
    frontier} — the out-edges of the old and new boundary blocks of those
    functions, the only edges whose decision can have changed. Steps that
    kill edges or blocks mark them dead through the snapshot's delta
    layer ({!Csr.kill_block}) instead of forcing a rebuild; a compaction
    (fresh {!Csr.build}) runs only when the dead fraction crosses
    [Config.csr_compact_threshold]. Kind flips mutate the shared edge
    records in place and never stale anything. [Cfg.stats] counts the
    absorbed kills ([csr_deltas]) and the compactions
    ([csr_compactions]); snapshot build and compaction cost is traced
    under the [csr-build] / [csr-compact] phases, separate from
    [fz-step].

    {!run_legacy} is the pre-snapshot baseline — serial hash-table
    reachability and whole-graph boundary/rule passes every round — kept
    for the [bench finalize] comparison. Both paths produce
    {!Cfg_diff}-identical graphs and record per-step wall timings into
    the graph's [stats.finalize].

    Afterwards, [f_blocks] holds each function's body, every dead edge and
    block is gone from the maps, and the CFG is read-only for clients
    (paper Section 7.2). *)

val run :
  ?on_ready:(Cfg.func -> unit) -> pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Snapshot-indexed finalization (the default path).

    [?on_ready] is the per-function readiness protocol of the streaming
    pipeline (PR7): when supplied, each function is passed to it the
    moment its facts are settled — after the tail-call fix rounds and the
    prune fixed point have converged globally (cross-function
    noreturn/tail-call facts and liveness are final then, which is the
    publishable-after-the-last-fix-round-that-touched-it
    over-approximation) and after the function's own final boundary
    recompute and instruction recount have completed. The callback runs
    concurrently from pool workers and must be thread-safe (e.g.
    {!Pbca_concurrent.Channel.send}). Every function alive in the final
    graph is published exactly once; the resulting graph is
    {!Cfg_diff}-identical to a run without the callback. *)

val run_legacy : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Whole-graph baseline, semantically identical to {!run}. *)

val clean_jump_tables : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Step 1 alone (exposed for direct unit testing of the clamp rule). *)
