(** CFG finalization — the correction phase (paper Section 5.4).

    Four steps, each deterministic given the expansion-phase graph:

    1. Jump-table cleanup: tables are sorted by base address; using the
       observation that compilers do not emit overlapping jump tables, a
       table's entries are clamped at the next table's base — found by
       binary search over the sorted base array — or the end of the
       table's section, and indirect edges pointing outside the clamped
       entry set are removed (O_ER).
    2. Unreachable-code removal: blocks no longer reachable from any
       function entry are dropped along with their edges.
    3. Tail-call correction and function boundaries: function bodies are
       recomputed by traversing intra-procedural edges from each entry,
       then the three correction rules run; each edge's classification
       flips at most once, guaranteeing convergence.
    4. Function pruning: functions discovered during traversal that ended
       up with no incoming inter-procedural edges (and are not in the
       symbol table) are removed.

    {!run} executes these over an immutable {!Csr} snapshot of the live
    graph: reachability is a frontier-based parallel BFS over dense block
    indices, the correction rules scan the flat edge array in parallel
    chunks (decisions are collected and applied serially — within a round
    the rules read only state a flip cannot change, so this equals the
    serial sorted pass), and fix rounds after the first recompute
    boundaries only for the {e dirty} functions whose boundary contained
    the source block of an edge flipped in the previous round. The
    snapshot is rebuilt only when a step actually killed edges or removed
    blocks; kind flips mutate the shared edge records in place and never
    stale it.

    {!run_legacy} is the pre-snapshot baseline — serial hash-table
    reachability and whole-graph boundary/rule passes every round — kept
    for the [bench finalize] comparison. Both paths produce
    {!Cfg_diff}-identical graphs and record per-step wall timings into
    the graph's [stats.finalize].

    Afterwards, [f_blocks] holds each function's body, every dead edge and
    block is gone from the maps, and the CFG is read-only for clients
    (paper Section 7.2). *)

val run : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Snapshot-indexed finalization (the default path). *)

val run_legacy : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Whole-graph baseline, semantically identical to {!run}. *)

val clean_jump_tables : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> unit
(** Step 1 alone (exposed for direct unit testing of the clamp rule). *)
