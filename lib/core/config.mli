(** Parser configuration knobs.

    The defaults reproduce the paper's final design; the switches exist for
    the ablation benchmarks (which design decision buys what). *)

type t = {
  eager_noreturn : bool;
      (** notify callers the moment a return instruction is found in the
          callee, instead of waiting for the callee's analysis to finish
          (paper Section 5.3) *)
  decode_cache : bool;
      (** per-thread cache of block starts to cut redundant decoding
          (paper Section 6.3) *)
  jt_union : bool;
      (** take the union of jump-table targets over analyzable paths instead
          of failing the whole table when one path resists analysis
          (paper Section 5.3) *)
  jt_max_scan : int;
      (** over-approximation cap when no bound is recoverable *)
  shards : int;  (** shard count for the concurrent maps *)
  max_block_bytes : int;
      (** decode-byte budget per block scan; a block that keeps decoding
          past this many bytes (hostile input: no terminator in sight) is
          cut there and marked degraded. 0 disables. *)
  max_slice_steps : int;
      (** instruction-visit budget for one jump-table backward slice; on
          exhaustion the table degrades to unresolved. 0 disables. *)
  max_table_entries : int;
      (** cap on materialized entries per jump table, below which
          [jt_max_scan] and recovered bounds operate normally; a table cut
          by this cap degrades to unresolved. 0 disables. *)
  deadline_s : float;
      (** global work-unit deadline in seconds, measured from [Cfg.create];
          once past, remaining parse/traversal/table work is skipped and
          the affected sites marked degraded. 0 disables. *)
  deadline_poll_every : int;
      (** poll the real clock only every N deadline checks (the verdict is
          latched once true, so coarsening only delays detection by at most
          N-1 work units); [Cfg.stats] counts checks vs. polls so the bench
          can report the syscalls saved *)
  csr_compact_threshold : float;
      (** dead fraction of the finalize CSR snapshot above which delta
          kills trigger a compaction (a fresh {!Csr.build}) instead of
          letting readers keep skipping dead entries; [1.0] effectively
          disables compaction, [0.0] compacts after any kill *)
  gap_parse : bool;
      (** after the symbol-seeded parse reaches its fixed point, scan the
          unclaimed [.text] gaps for function entries (prologue,
          call-target and alignment heuristics) and parse the proposals
          through the normal traversal, tagging everything discovered
          this way [From_heuristic]. Off by default: symbol-rich binaries
          don't need it and clients must opt into heuristic results. *)
  gap_align : int;
      (** alignment modulus of the gap-entry alignment heuristic: an
          aligned gap offset whose bytes decode to a frame-setup prologue
          is proposed as an entry. 0 disables the alignment heuristic
          (prologue and call-target proposals still run). *)
  gap_max_rounds : int;
      (** bound on gap-scan rounds (each round re-scans the gaps left by
          the previous one's discoveries); hostile images cannot keep the
          scanner alive past this many rounds *)
}

val default : t
(** The paper's design with generous robustness budgets: correct binaries
    never hit them; hostile ones degrade instead of wedging. *)
