module Thread_local = Pbca_concurrent.Thread_local

type op =
  | Op_block of int
  | Op_end of { start : int; end_ : int; ninsns : int }
  | Op_term of { start : int; insn : Pbca_isa.Insn.t option }
  | Op_edge of { src : int; dst : int; kind : int; jt : (int * int) option }
  | Op_edge_dead of { src : int; dst : int; kind : int }
  | Op_edge_move of { src : int; dst : int; kind : int; new_src : int }
  | Op_func of { entry : int; name : string; from_symtab : bool }
  | Op_jt_pending of { end_ : int; reg : int }
  | Op_degraded of { addr : int; deadline : bool }
  | Op_ret of { entry : int; status : int }
  | Op_conf of { addr : int; conf : int }
  | Op_commit of int

let magic = "PBCJ"
let version = 1

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, as in zlib).                          *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 b off len =
  let tbl = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  (!c lxor 0xFFFFFFFF) land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Record encoding.                                                    *)

let tag_of_op = function
  | Op_block _ -> 1
  | Op_end _ -> 2
  | Op_term _ -> 3
  | Op_edge _ -> 4
  | Op_edge_dead _ -> 5
  | Op_edge_move _ -> 6
  | Op_func _ -> 7
  | Op_jt_pending _ -> 8
  | Op_degraded _ -> 9
  | Op_ret _ -> 11
  | Op_conf _ -> 12
  | Op_commit _ -> 10

let add_addr b a = Buffer.add_int64_le b (Int64.of_int a)

let encode_payload buf ~seq op =
  Buffer.add_int64_le buf (Int64.of_int seq);
  Buffer.add_uint8 buf (tag_of_op op);
  match op with
  | Op_block a -> add_addr buf a
  | Op_end { start; end_; ninsns } ->
    add_addr buf start;
    add_addr buf end_;
    Buffer.add_int32_le buf (Int32.of_int ninsns)
  | Op_term { start; insn } -> (
    add_addr buf start;
    match insn with
    | None -> Buffer.add_uint8 buf 0
    | Some i ->
      Buffer.add_uint8 buf 1;
      Buffer.add_uint8 buf (Pbca_isa.Codec.encoded_length i);
      Pbca_isa.Codec.encode buf i)
  | Op_edge { src; dst; kind; jt } -> (
    add_addr buf src;
    add_addr buf dst;
    Buffer.add_uint8 buf kind;
    match jt with
    | None -> Buffer.add_uint8 buf 0
    | Some (t, i) ->
      Buffer.add_uint8 buf 1;
      Buffer.add_int32_le buf (Int32.of_int t);
      Buffer.add_int32_le buf (Int32.of_int i))
  | Op_edge_dead { src; dst; kind } ->
    add_addr buf src;
    add_addr buf dst;
    Buffer.add_uint8 buf kind
  | Op_edge_move { src; dst; kind; new_src } ->
    add_addr buf src;
    add_addr buf dst;
    Buffer.add_uint8 buf kind;
    add_addr buf new_src
  | Op_func { entry; name; from_symtab } ->
    add_addr buf entry;
    Buffer.add_uint8 buf (if from_symtab then 1 else 0);
    let name =
      if String.length name > 0xffff then String.sub name 0 0xffff else name
    in
    Buffer.add_uint16_le buf (String.length name);
    Buffer.add_string buf name
  | Op_jt_pending { end_; reg } ->
    add_addr buf end_;
    Buffer.add_uint8 buf reg
  | Op_degraded { addr; deadline } ->
    add_addr buf addr;
    Buffer.add_uint8 buf (if deadline then 1 else 0)
  | Op_ret { entry; status } ->
    add_addr buf entry;
    Buffer.add_uint8 buf status
  | Op_conf { addr; conf } ->
    add_addr buf addr;
    Buffer.add_uint8 buf conf
  | Op_commit round -> Buffer.add_int32_le buf (Int32.of_int round)

let append_record buf ~seq op =
  let payload = Buffer.create 32 in
  encode_payload payload ~seq op;
  let pb = Buffer.to_bytes payload in
  let len = Bytes.length pb in
  Buffer.add_int32_le buf (Int32.of_int len);
  Buffer.add_int32_le buf (Int32.of_int (crc32 pb 0 len));
  Buffer.add_bytes buf pb

(* ------------------------------------------------------------------ *)
(* Record decoding. A cursor over the payload bytes; any short read or
   malformed field surfaces as [End_torn] at the record level.          *)

exception Short

let get_addr b pos =
  if pos + 8 > Bytes.length b then raise Short;
  (Int64.to_int (Bytes.get_int64_le b pos), pos + 8)

let get_i32 b pos =
  if pos + 4 > Bytes.length b then raise Short;
  (Int32.to_int (Bytes.get_int32_le b pos), pos + 4)

let get_u8 b pos =
  if pos + 1 > Bytes.length b then raise Short;
  (Bytes.get_uint8 b pos, pos + 1)

let get_u16 b pos =
  if pos + 2 > Bytes.length b then raise Short;
  (Bytes.get_uint16_le b pos, pos + 2)

let decode_payload b =
  let seq, pos = get_addr b 0 in
  let tag, pos = get_u8 b pos in
  let op =
    match tag with
    | 1 ->
      let a, _ = get_addr b pos in
      Op_block a
    | 2 ->
      let start, pos = get_addr b pos in
      let end_, pos = get_addr b pos in
      let ninsns, _ = get_i32 b pos in
      Op_end { start; end_; ninsns }
    | 3 ->
      let start, pos = get_addr b pos in
      let flag, pos = get_u8 b pos in
      if flag = 0 then Op_term { start; insn = None }
      else begin
        let len, pos = get_u8 b pos in
        if pos + len > Bytes.length b then raise Short;
        match Pbca_isa.Codec.decode b ~pos with
        | Some (insn, l) when l = len -> Op_term { start; insn = Some insn }
        | _ -> raise Short
      end
    | 4 ->
      let src, pos = get_addr b pos in
      let dst, pos = get_addr b pos in
      let kind, pos = get_u8 b pos in
      let flag, pos = get_u8 b pos in
      if flag = 0 then Op_edge { src; dst; kind; jt = None }
      else
        let t, pos = get_i32 b pos in
        let i, _ = get_i32 b pos in
        Op_edge { src; dst; kind; jt = Some (t, i) }
    | 5 ->
      let src, pos = get_addr b pos in
      let dst, pos = get_addr b pos in
      let kind, _ = get_u8 b pos in
      Op_edge_dead { src; dst; kind }
    | 6 ->
      let src, pos = get_addr b pos in
      let dst, pos = get_addr b pos in
      let kind, pos = get_u8 b pos in
      let new_src, _ = get_addr b pos in
      Op_edge_move { src; dst; kind; new_src }
    | 7 ->
      let entry, pos = get_addr b pos in
      let fs, pos = get_u8 b pos in
      let n, pos = get_u16 b pos in
      if pos + n > Bytes.length b then raise Short;
      Op_func
        {
          entry;
          name = Bytes.sub_string b pos n;
          from_symtab = fs <> 0;
        }
    | 8 ->
      let end_, pos = get_addr b pos in
      let reg, _ = get_u8 b pos in
      Op_jt_pending { end_; reg }
    | 9 ->
      let addr, pos = get_addr b pos in
      let dl, _ = get_u8 b pos in
      Op_degraded { addr; deadline = dl <> 0 }
    | 10 ->
      let round, _ = get_i32 b pos in
      Op_commit round
    | 11 ->
      let entry, pos = get_addr b pos in
      let st, _ = get_u8 b pos in
      if st <> 1 && st <> 2 then raise Short;
      Op_ret { entry; status = st }
    | 12 ->
      let addr, pos = get_addr b pos in
      let conf, _ = get_u8 b pos in
      if conf > 2 then raise Short;
      Op_conf { addr; conf }
    | _ -> raise Short
  in
  (seq, op)

type read_outcome = Rec of int * op | End_clean | End_torn of string

(* An op payload is at most seq+tag+4 addresses and a name; anything
   claiming more than this is framing garbage, not a record. *)
let max_payload = 9 + 64 + 0x10000

let read_exact ic n =
  let b = Bytes.create n in
  try
    really_input ic b 0 n;
    Some b
  with End_of_file -> None

let read_record ic =
  match read_exact ic 4 with
  | None -> End_clean
  | Some lenb -> (
    let len = Int32.to_int (Bytes.get_int32_le lenb 0) in
    if len < 9 || len > max_payload then End_torn "bad record length"
    else
      match read_exact ic 4 with
      | None -> End_torn "torn crc"
      | Some crcb -> (
        let crc = Int32.to_int (Bytes.get_int32_le crcb 0) land 0xFFFFFFFF in
        match read_exact ic len with
        | None -> End_torn "torn payload"
        | Some payload ->
          if crc32 payload 0 len <> crc then End_torn "crc mismatch"
          else (
            try
              let seq, op = decode_payload payload in
              Rec (seq, op)
            with Short -> End_torn "malformed payload")))

(* ------------------------------------------------------------------ *)
(* Writer.                                                             *)

type dbuf = { mutable pending : (int * op) list }

type writer = {
  w_chan : out_channel;
  w_seq : int Atomic.t;
  w_records : int Atomic.t;
  w_bufs : dbuf Thread_local.t;
}

let write_header ch ~magic ~version =
  let b = Buffer.create 8 in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  output_string ch (Buffer.contents b)

let create_writer ~path =
  let ch = open_out_bin path in
  write_header ch ~magic ~version;
  flush ch;
  {
    w_chan = ch;
    w_seq = Atomic.make 0;
    w_records = Atomic.make 0;
    w_bufs = Thread_local.create (fun () -> { pending = [] });
  }

let set_seq_floor w floor =
  let rec go () =
    let cur = Atomic.get w.w_seq in
    if cur <= floor && not (Atomic.compare_and_set w.w_seq cur (floor + 1))
    then go ()
  in
  go ()

let emit w op =
  let seq = Atomic.fetch_and_add w.w_seq 1 in
  let b = Thread_local.get w.w_bufs in
  b.pending <- (seq, op) :: b.pending

let write_one w ~seq op =
  let b = Buffer.create 48 in
  append_record b ~seq op;
  output_string w.w_chan (Buffer.contents b);
  Atomic.incr w.w_records

let flush w ~round =
  let items =
    Thread_local.fold w.w_bufs ~init:[] ~f:(fun acc b ->
        let xs = b.pending in
        b.pending <- [];
        List.rev_append xs acc)
  in
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  List.iter (fun (seq, op) -> write_one w ~seq op) items;
  let cseq = Atomic.fetch_and_add w.w_seq 1 in
  write_one w ~seq:cseq (Op_commit round);
  Stdlib.flush w.w_chan

let records_written w = Atomic.get w.w_records
let last_seq w = Atomic.get w.w_seq - 1
let close w = close_out w.w_chan

(* ------------------------------------------------------------------ *)
(* Reader.                                                             *)

type tail = {
  t_ops : (int * op) list;
  t_last_round : int;
  t_max_seq : int;
  t_torn : bool;
}

let empty_tail ~torn =
  { t_ops = []; t_last_round = -1; t_max_seq = -1; t_torn = torn }

let read_committed path =
  if not (Sys.file_exists path) then empty_tail ~torn:false
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match read_exact ic (String.length magic + 4) with
        | None -> empty_tail ~torn:true
        | Some hdr
          when Bytes.sub_string hdr 0 (String.length magic) <> magic ->
          empty_tail ~torn:true
        | Some _ ->
          let committed = ref [] in
          let pending = ref [] in
          let last_round = ref (-1) in
          let max_seq = ref (-1) in
          let torn = ref false in
          let rec go () =
            match read_record ic with
            | End_clean -> ()
            | End_torn _ -> torn := true
            | Rec (seq, Op_commit round) ->
              (* [pending] is newest-first; keep [committed] newest-first
                 too, so the single final [List.rev] yields ascending seq *)
              committed := !pending @ !committed;
              pending := [];
              last_round := round;
              max_seq := seq;
              go ()
            | Rec (seq, op) ->
              pending := (seq, op) :: !pending;
              go ()
          in
          go ();
          {
            t_ops = List.rev !committed;
            t_last_round = !last_round;
            t_max_seq = !max_seq;
            t_torn = !torn;
          })
  end
