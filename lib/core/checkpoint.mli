(** Consistent CFG snapshots for crash-durable parsing.

    A checkpoint is the quiescent graph compacted to a {!Journal.op}
    stream: blocks, resolved ends and terminators, live edges, functions,
    confidence tags (v3), degradation marks and the pending jump-table
    frontier, preceded by a
    CRC-framed versioned header (round, resume count, journal sequence
    floor, elapsed progress, stats counters) and terminated by an
    [Op_commit] footer. Op records share the journal's CRC framing, and
    the file is written atomically (tmp + rename), so a reader sees either
    the old checkpoint or the new one — never a blend.

    Trust model: a checkpoint is {e authoritative} state, so unlike the
    journal (whose torn tail is silently discarded) any damage here is a
    hard {!Pbca_binfmt.Parse_error} — the caller may then retry recovery
    from the journal alone, which rebuilds the same graph from scratch. *)

val magic : string
(** ["PBCK"]. *)

val version : int

val counter_names : string array
(** Names of the header counters, in wire order. *)

type snapshot = {
  cp_round : int;  (** construction round the snapshot was taken at *)
  cp_resume_count : int;  (** resumes performed before this snapshot *)
  cp_seq_floor : int;
      (** highest journal seq already folded into this snapshot; journal
          ops at or below it are skipped during replay *)
  cp_progress_s : float;
      (** wall seconds of parse progress the snapshot preserves — the work
          a resume does {e not} have to redo *)
  cp_counters : int array;  (** values for {!counter_names} *)
  cp_ops : Journal.op list;  (** the compacted construction stream *)
}

val materialize_ops : pending:(int * int) list -> Cfg.t -> Journal.op list
(** The compacted op stream for a quiescent graph; [pending] is the
    jump-table frontier as [(end address, register code)]. Exposed for
    tests. *)

val save :
  path:string ->
  round:int ->
  pending:(int * int) list ->
  seq_floor:int ->
  progress_s:float ->
  Cfg.t ->
  unit
(** Write atomically. Quiescent points only. *)

val load :
  path:string -> (snapshot, Pbca_binfmt.Parse_error.t) result
(** Total: every failure mode (missing file, bad magic, unsupported
    version, CRC mismatch, truncation, missing footer) is a structured
    error, never an exception. *)
