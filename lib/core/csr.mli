(** Immutable CSR-style snapshot of the live CFG.

    Finalization (paper Section 5.4) is read-dominated: every correction
    round re-examines the whole edge set, reachability walks every live
    edge, and boundary assignment traverses intra-procedural adjacency.
    Doing that through the concurrent maps and per-block [edge list]s
    costs a filtered list allocation per visit. This module compacts the
    quiescent graph once into flat arrays — blocks sorted by start
    address, live edges grouped by source block with forward and backward
    adjacency offsets — so the finalization steps become cache-friendly
    array scans and index arithmetic.

    Invariants (the contract {!Finalize} maintains):

    - A {e live edge} is an edge whose [e_dead] flag was false at build
      time. The snapshot holds exactly the live edges, each once.
    - Edge {e kind} mutations (the tail-call correction flips) do NOT
      invalidate a snapshot: [edges] aliases the graph's edge records, so
      kinds are always read current. Only changes to the live-edge set —
      killing edges, removing blocks — stale a snapshot; the consumer
      must rebuild before the next step that reads it.
    - Blocks are sorted by [b_start]; block indices are dense [0, n)
      ints, which is what lets reachability use {!Pbca_concurrent.Atomic_intset}
      over indices instead of a hash table over addresses. *)

type t = {
  blocks : Cfg.block array;  (** sorted by [b_start] *)
  starts : int array;  (** [b_start] per block, same order (binary-search key) *)
  edges : Cfg.edge array;
      (** live edges grouped by source block: block [i]'s out-edges are
          exactly indices [fwd_off.(i) .. fwd_off.(i+1) - 1] *)
  e_src : int array;  (** source block index per edge *)
  e_dst : int array;  (** destination block index per edge *)
  fwd_off : int array;  (** length [n_blocks + 1] *)
  bwd_off : int array;  (** length [n_blocks + 1] *)
  bwd : int array;
      (** edge indices grouped by destination block (each group sorted
          ascending): block [i]'s in-edges are
          [bwd.(bwd_off.(i)) .. bwd.(bwd_off.(i+1) - 1)] *)
}

val build : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> t
(** Snapshot the graph's current live blocks and edges. Quiescent use
    only (no concurrent mutators). Destination-index resolution and array
    filling run in parallel over the pool. *)

val n_blocks : t -> int
val n_edges : t -> int

val index_of : t -> int -> int option
(** Block index of the block starting at an address, by binary search. *)

val iter_out : t -> int -> (int -> Cfg.edge -> unit) -> unit
(** [iter_out t i f] applies [f k e] to each out-edge [e = edges.(k)] of
    block [i]. *)

val iter_in : t -> int -> (int -> Cfg.edge -> unit) -> unit
(** Same over in-edges (via the backward adjacency). *)

val in_degree : t -> int -> int
val sole_in : t -> int -> Cfg.edge option
(** The unique in-edge of block [i], if its in-degree is exactly 1
    (tail-call correction rule 3's test). *)
