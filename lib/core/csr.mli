(** CSR-style snapshot of the live CFG, incrementally maintained.

    Finalization (paper Section 5.4) is read-dominated: every correction
    round re-examines edges, reachability walks every live edge, and
    boundary assignment traverses intra-procedural adjacency. Doing that
    through the concurrent maps and per-block [edge list]s costs a
    filtered list allocation per visit. This module compacts the
    quiescent graph once into flat arrays — blocks sorted by start
    address, live edges grouped by source block with forward and backward
    adjacency offsets — so the finalization steps become cache-friendly
    array scans and index arithmetic.

    {2 Delta-kill layer}

    Rebuilding the snapshot after every edge-killing step was the
    finalize bottleneck, so kills are now deltas: {!kill_edge} and
    {!kill_block} mark entries dead in O(1) kill bitmaps
    ({!Pbca_concurrent.Atomic_bitset}) and every reader skips dead
    entries, so a snapshot stays usable across kills without a rebuild.
    The consumer compacts (a fresh {!build}) only when {!needs_compact}
    says the dead fraction crossed its threshold.

    Invariants (the contract {!Finalize} maintains):

    - A {e live edge} is an edge that was live ([e_dead] false) at build
      time and has not been {!kill_edge}d since. The arrays hold every
      build-time-live edge once; the [dead_edge] bitmap says which have
      died. Readers ({!iter_out}, {!iter_in}, {!in_degree}, {!sole_in})
      present only live edges.
    - Kills are monotone: the bitmaps only grow between builds, and the
      winning {!kill_edge} also sets the graph-level [e_dead] flag, so a
      later {!build} (compaction) sees exactly the surviving edges — a
      reader can never observe a resurrected edge, before or after a
      compaction.
    - Edge {e kind} mutations (the tail-call correction flips) do NOT
      touch liveness: [edges] aliases the graph's edge records, so kinds
      are always read current, with no version bump.
    - {!kill_block} kills the block's bit and every incident edge, so
      edge liveness alone decides adjacency visibility; {!block_live}
      exists for consumers that scan [blocks] directly.
    - Killing through any other door (setting [e_dead] on the graph
      without {!kill_edge}, removing blocks from the maps) still stales
      the snapshot and requires a rebuild, exactly as before.
    - Blocks are sorted by [b_start]; block indices are dense [0, n)
      ints, which is what lets reachability use {!Pbca_concurrent.Atomic_intset}
      over indices instead of a hash table over addresses. *)

type t = {
  blocks : Cfg.block array;  (** sorted by [b_start] *)
  starts : int array;  (** [b_start] per block, same order (binary-search key) *)
  edges : Cfg.edge array;
      (** build-time-live edges grouped by source block: block [i]'s
          out-edges are exactly indices [fwd_off.(i) .. fwd_off.(i+1) - 1]
          (minus those since killed — test {!edge_live}) *)
  e_src : int array;  (** source block index per edge *)
  e_dst : int array;  (** destination block index per edge *)
  fwd_off : int array;  (** length [n_blocks + 1] *)
  bwd_off : int array;  (** length [n_blocks + 1] *)
  bwd : int array;
      (** edge indices grouped by destination block (each group sorted
          ascending): block [i]'s in-edges are
          [bwd.(bwd_off.(i)) .. bwd.(bwd_off.(i+1) - 1)] *)
  dead_edge : Pbca_concurrent.Atomic_bitset.t;  (** killed edge indices *)
  dead_block : Pbca_concurrent.Atomic_bitset.t;  (** killed block indices *)
  version : int Atomic.t;
      (** bumped by every winning kill; [0] means pristine *)
}

val build : pool:Pbca_concurrent.Task_pool.t -> Cfg.t -> t
(** Snapshot the graph's current live blocks and edges, with clear kill
    bitmaps. Quiescent use only (no concurrent mutators). Destination
    index resolution and array filling run in parallel over the pool. *)

val n_blocks : t -> int
val n_edges : t -> int
(** Array lengths, i.e. build-time counts — dead entries included.
    Subtract {!dead_blocks} / {!dead_edges} for live counts. *)

val index_of : t -> int -> int option
(** Block index of the block starting at an address, by binary search.
    Dead blocks still resolve; test {!block_live}. *)

val edge_live : t -> int -> bool
val block_live : t -> int -> bool

val kill_edge : t -> int -> bool
(** [kill_edge t k] marks edge [k] dead in the snapshot AND sets the
    graph-level [e_dead] flag; [true] iff this call was the one that
    killed it. O(1), lock-free, callable from parallel finalize steps. *)

val kill_block : t -> int -> bool
(** [kill_block t i] marks block [i] dead and kills every incident edge
    (out and in). [true] iff this call killed the block. The caller is
    responsible for un-mapping the block from the graph's maps. *)

val dead_edges : t -> int
val dead_blocks : t -> int

val version : t -> int
(** Number of winning kills since build; [0] means the snapshot is
    pristine. *)

val dead_fraction : t -> float
(** [(dead_edges + dead_blocks) / (n_edges + n_blocks)]; [0.] when the
    snapshot is empty. *)

val needs_compact : t -> threshold:float -> bool
(** True when there are any kills and {!dead_fraction} exceeds
    [threshold] — the consumer should rebuild ({e compact}) before the
    dead entries slow scans down. *)

val iter_out : t -> int -> (int -> Cfg.edge -> unit) -> unit
(** [iter_out t i f] applies [f k e] to each {e live} out-edge
    [e = edges.(k)] of block [i]. *)

val iter_in : t -> int -> (int -> Cfg.edge -> unit) -> unit
(** Same over live in-edges (via the backward adjacency). *)

val in_degree : t -> int -> int
(** Live in-degree: O(group size), skipping killed edges. *)

val sole_in : t -> int -> Cfg.edge option
(** The unique live in-edge of block [i], if its live in-degree is
    exactly 1 (tail-call correction rule 3's test). *)
