(** Append-only operation journal for crash-durable CFG construction.

    The paper's construction algebra is monotonic — blocks, edges and
    functions only accumulate while parsing runs (removals are confined to
    finalization) — so a log of the constructive operations can be replayed
    idempotently: re-applying an op that already took effect converges to
    the same graph. {!Cfg} emits one {!op} per structural mutation; ops are
    buffered per-domain ({!Pbca_concurrent.Thread_local}) so the hot paths
    never contend on the log, and the whole buffer set is drained by the
    master at quiescent points (round barriers), terminated by an
    [Op_commit] marker and an [fsync]-style channel flush.

    Durability contract: everything up to the last [Op_commit] whose CRC
    checks out is trusted; anything after it — a torn tail from a crash
    mid-write, flipped bits from a dying disk — is silently discarded.
    A journal can therefore never make recovery {e fail}; at worst it
    contributes nothing (checkpoint corruption, by contrast, is a hard
    {!Pbca_binfmt.Parse_error} — see {!Checkpoint}).

    Record framing (little-endian):
    {v [u32 len][u32 crc32][payload]   payload = [u64 seq][u8 tag][fields] v}
    where [crc32] covers the payload and [len] is the payload length. The
    global sequence number is assigned at emit time {e inside} the critical
    section performing the mutation, so for any two conflicting ops (same
    block, same ends-map entry) seq order respects their real order; replay
    applies ops in ascending seq. *)

type op =
  | Op_block of int  (** block created at start address *)
  | Op_end of { start : int; end_ : int; ninsns : int }
      (** block end resolved (or shrunk by a split); [end_ = start] is the
          degenerate empty block, which owns no ends-map entry *)
  | Op_term of { start : int; insn : Pbca_isa.Insn.t option }
      (** terminator instruction set (or cleared, when a split moves it) *)
  | Op_edge of { src : int; dst : int; kind : int; jt : (int * int) option }
      (** edge created; [kind] is {!Cfg.edge_kind_code} *)
  | Op_edge_dead of { src : int; dst : int; kind : int }
      (** edge killed by the split protocol (duplicate drop) *)
  | Op_edge_move of { src : int; dst : int; kind : int; new_src : int }
      (** edge re-sourced by the split protocol (upper fragment takes it) *)
  | Op_func of { entry : int; name : string; from_symtab : bool }
  | Op_jt_pending of { end_ : int; reg : int }
      (** indirect jump discovered: (end address, operand register) joined
          the jump-table frontier *)
  | Op_degraded of { addr : int; deadline : bool }
      (** degradation mark; [deadline] marks are dropped on resume because
          the lost work is re-done under the renewed deadline *)
  | Op_ret of { entry : int; status : int }
      (** function return status at a quiescent point; only 1 = [Returns]
          is ever emitted (checkpoint materialization, never live
          journaling). [Returns] is the one monotone status — a return
          point was decoded, which no amount of further work un-decodes —
          so replaying it is always safe; [Noreturn] is a quiescence
          default that a resumed traversal may legitimately overturn, so
          it stays derived *)
  | Op_conf of { addr : int; conf : int }
      (** function-entry confidence tag ({!Cfg.conf_code}: 0 symbol, 1
          call target, 2 heuristic). Emitted when a tag is first stored —
          notably for every gap-parse proposal — so resumed parses carry
          the same provenance the uninterrupted run recorded. Tags are
          write-once (first writer wins), making replay idempotent. *)
  | Op_commit of int  (** round barrier: everything before this is durable *)

val magic : string
(** ["PBCJ"] — journal file magic. *)

val version : int

(** {2 Writing} *)

type writer

val create_writer : path:string -> writer
(** Truncate/create [path] and write the header. The writer starts with
    sequence numbers at [0]; pass [?seq_floor] via {!set_seq_floor} when
    appending after a checkpoint so journal seqs stay above it. *)

val set_seq_floor : writer -> int -> unit
(** Force the next assigned seq to be at least [floor + 1]. *)

val emit : writer -> op -> unit
(** Buffer one op in the calling domain's buffer, assigning its global
    seq now. Wait-free except for one [fetch_and_add]. *)

val flush : writer -> round:int -> unit
(** Quiescent-point drain: collect every domain's buffered ops, write them
    in seq order, terminate with [Op_commit round], flush the channel.
    Must only run while no emitter is active (round barrier). *)

val records_written : writer -> int

val last_seq : writer -> int
(** Highest sequence number assigned so far ([-1] if none). At a quiescent
    point this is the checkpoint's sequence floor. *)

val close : writer -> unit
(** Close the file. Buffered-but-unflushed ops are {e dropped} — exactly
    the crash semantics: uncommitted work never reaches the disk. *)

(** {2 Record-level IO (shared with {!Checkpoint})} *)

val append_record : Buffer.t -> seq:int -> op -> unit
(** Append one framed record to a buffer. *)

type read_outcome =
  | Rec of int * op  (** (seq, op) *)
  | End_clean  (** exact end of file *)
  | End_torn of string  (** torn tail / CRC mismatch / garbage — reason *)

val read_record : in_channel -> read_outcome

(** {2 Reading a journal} *)

type tail = {
  t_ops : (int * op) list;
      (** committed ops in ascending seq order, [Op_commit]s excluded *)
  t_last_round : int;  (** round of the last commit, [-1] if none *)
  t_max_seq : int;  (** highest committed seq, [-1] if none *)
  t_torn : bool;  (** the file had a discarded torn/corrupt tail *)
}

val read_committed : string -> tail
(** Total: a missing file, bad header, torn tail or CRC failure can only
    shrink the result, never raise. Records after the last valid
    [Op_commit] are discarded (they were in flight at the crash). *)

val empty_tail : torn:bool -> tail

(** {2 Checksums} *)

val crc32 : Bytes.t -> int -> int -> int
(** [crc32 b off len] — IEEE 802.3 polynomial, as in zlib. *)
