(** Linear-sweep disassembly — the classic alternative to control-flow
    traversal (Schwarz et al., cited in paper Section 2).

    Decodes [.text] from its first byte to its last, starting a new block
    after every control-flow instruction. No reachability reasoning: fast
    and embarrassingly parallel (the section is chunked across the pool),
    but it decodes padding and data as if they were code and cannot
    attribute blocks to functions. Provided as a baseline comparator: the
    tests and ablations quantify its over-approximation against the
    traversal parser on the same binaries. *)

type block = { s : int; e : int; term : Pbca_isa.Insn.t option }

type t = {
  blocks : block list;  (** sorted by start *)
  insns : int;
  undecodable : int;  (** bytes skipped because no instruction fit *)
}

(** One chunk of a sweep over [\[lo, cap)]: decoded blocks (reverse
    order), every decode position (for seam resynchronization), and the
    true end of the stream (the final instruction may overshoot the cap).
    Exposed for the gap-parsing heuristics, which sweep exactly the
    unclaimed [.text] ranges. *)
type range_sweep = {
  rs_blocks : block list;  (** reverse order *)
  rs_positions : (int, unit) Hashtbl.t;
  rs_insns : int;
  rs_skipped : int;  (** bytes skipped because no instruction fit *)
  rs_end : int;
}

val sweep_range : Pbca_binfmt.Image.t -> int -> int -> range_sweep
(** [sweep_range image lo cap] — serial sweep of one address range. *)

val sweep :
  ?pool:Pbca_concurrent.Task_pool.t -> Pbca_binfmt.Image.t -> t

val coverage : t -> int
(** Total bytes covered by decoded blocks. *)

val compare_with_traversal : t -> Cfg.t -> int * int * int
(** [(both, sweep_only, traversal_only)] — code bytes found by both
    strategies, by the sweep alone (padding/data decoded as code), and by
    traversal alone (bytes the sweep lost to desynchronization). *)
