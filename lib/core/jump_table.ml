module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Semantics = Pbca_isa.Semantics
module Image = Pbca_binfmt.Image

type outcome = {
  targets : int list;
  base : int option;
  bounded : bool;
  entries : int;
}

let empty_outcome = { targets = []; base = None; bounded = false; entries = 0 }

type value = V_const of int | V_table of { base : int; scale : int; index : Reg.t }

let defines reg insn = Reg.Set.mem reg (Semantics.defs insn)

(* Predecessors reachable through intra-procedural edges, for slicing across
   block boundaries. *)
let slice_preds (b : Cfg.block) =
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.e_kind with
      | Cfg.Fallthrough | Cfg.Cond_fall | Cfg.Jump | Cfg.Cond_taken ->
        Some e.e_src
      | Cfg.Call | Cfg.Call_fallthrough | Cfg.Indirect | Cfg.Tail_call -> None)
    (Cfg.in_edges b)

(* Backward chase of [reg]'s definition, starting just above instruction
   index [idx] of [block]. Returns the possible values and whether every
   explored path produced one. [steps] is the remaining slice budget
   (decremented per instruction visited across the whole slice, all paths
   included); when it runs dry [exhausted] is set and the slice gives up,
   which the caller records as a [B_slice] degradation. *)
let rec resolve g ~steps ~exhausted (block : Cfg.block) insns idx reg depth :
    value list * bool =
  Pbca_simsched.Trace.tick g.Cfg.trace 1;
  if depth <= 0 then ([], false)
  else begin
    let rec scan i =
      if !exhausted then ([], false)
      else if i < 0 then from_preds ()
      else begin
        decr steps;
        if !steps < 0 then begin
          exhausted := true;
          ([], false)
        end
        else
          let _, insn, _ = List.nth insns i in
          if defines reg insn then
            match insn with
            | Insn.Mov_ri (_, v) -> ([ V_const v ], true)
            | Insn.Lea (_, disp) ->
              let a, _, len = List.nth insns i in
              ([ V_const (a + len + disp) ], true)
            | Insn.Mov_rr (_, src) ->
              resolve g ~steps ~exhausted block insns i src depth
            | Insn.Load_idx (_, base_r, idx_r, sc) ->
              let bases, ok =
                resolve g ~steps ~exhausted block insns i base_r depth
              in
              let tables =
                List.filter_map
                  (function
                    | V_const b -> Some (V_table { base = b; scale = sc; index = idx_r })
                    | V_table _ -> None)
                  bases
              in
              (tables, ok && List.length tables = List.length bases)
            | _ -> ([], false) (* arithmetic, pop, load...: give up on this path *)
          else scan (i - 1)
      end
    and from_preds () =
      match slice_preds block with
      | [] -> ([], false)
      | preds ->
        List.fold_left
          (fun (acc, ok) (p : Cfg.block) ->
            let pinsns = Disasm.block_insns g p in
            let vs, pok =
              resolve g ~steps ~exhausted p pinsns (List.length pinsns) reg
                (depth - 1)
            in
            (vs @ acc, ok && pok))
          ([], true) preds
    in
    scan (idx - 1)
  end

(* Find an upper bound for [index]: a dominating [Cmp_ri (index, k)] feeding
   a [Jcc (Ge|Gt)] whose not-taken path leads here. *)
let find_bound g (block : Cfg.block) insns index =
  (* nearest dominating compare wins; stop at any redefinition of the
     index register *)
  let in_block_bound insns limit =
    let rec scan i =
      if i < 0 || i >= limit then None
      else
        let _, insn, _ = List.nth insns i in
        match insn with
        | Insn.Cmp_ri (r, k) when Reg.equal r index -> Some k
        | _ when defines index insn -> None
        | _ -> scan (i - 1)
    in
    scan (limit - 1)
  in
  match in_block_bound insns (List.length insns) with
  | Some k -> Some k
  | None ->
    (* look in conditional predecessors: [cmp index, k; jge default] with the
       fall-through edge entering this block *)
    let bounds =
      List.filter_map
        (fun (e : Cfg.edge) ->
          match e.e_kind with
          | Cfg.Cond_fall | Cfg.Fallthrough -> begin
            let p = e.e_src in
            match Disasm.terminator g p with
            | Some (_, Insn.Jcc (Insn.Ge, _), _) ->
              let pinsns = Disasm.block_insns g p in
              in_block_bound pinsns (List.length pinsns)
            | Some (_, Insn.Jcc (Insn.Gt, _), _) ->
              let pinsns = Disasm.block_insns g p in
              Option.map (fun k -> k + 1)
                (in_block_bound pinsns (List.length pinsns))
            | _ -> None
          end
          | _ -> None)
        (Cfg.in_edges block)
    in
    (match bounds with [] -> None | bs -> Some (List.fold_left max 0 bs))

let is_static_entry g addr = Addr_map.mem g.Cfg.static_entries addr

let valid_unbounded_target g addr =
  Image.in_text g.Cfg.image addr
  && (not (is_static_entry g addr))
  && Option.is_some (Image.decode_at g.Cfg.image addr)

(* The third result is true when the scan was cut by the
   [max_table_entries] budget while entries were still flowing — as opposed
   to stopping at the recovered bound or the [jt_max_scan]
   over-approximation cap, which are normal outcomes. *)
let read_table g ~base ~scale ~bound =
  let image = g.Cfg.image in
  let read i = Image.u32 image (base + (i * scale)) in
  let budget = Cfg.effective_budget g.Cfg.config.Config.max_table_entries in
  let limit = if budget > 0 then budget else max_int in
  match bound with
  | Some k ->
    let rec go i acc =
      if i >= min k limit then (List.rev acc, i, i >= limit && limit < k)
      else
        match read i with
        | Some t when Image.in_text image t -> go (i + 1) (t :: acc)
        | _ -> (List.rev acc, i, false)
    in
    go 0 []
  | None ->
    (* over-approximating scan: accept entries while they look like code
       addresses that are not known function entries *)
    let cap = g.Cfg.config.Config.jt_max_scan in
    let rec go i acc =
      if i >= min cap limit then
        (List.rev acc, i, i >= limit && limit < cap)
      else
        match read i with
        | Some t when valid_unbounded_target g t -> go (i + 1) (t :: acc)
        | _ -> (List.rev acc, i, false)
    in
    go 0 []

(* Mark the table's block and jump-instruction addresses degraded so the
   checker can attribute the resulting unresolved table (and any function
   shape change downstream of it) to the budget cut. *)
let degrade_table g (block : Cfg.block) site =
  Cfg.record_degraded g site block.Cfg.b_start;
  (match Disasm.terminator g block with
  | Some (a, _, _) -> Cfg.mark_degraded g a
  | None -> ())

let analyze g (block : Cfg.block) reg : outcome =
  Atomic.incr g.Cfg.stats.jt_analyses;
  let insns = Disasm.block_insns g block in
  let n = List.length insns in
  Pbca_simsched.Trace.tick g.Cfg.trace (8 * n);
  let budget = Cfg.effective_budget g.Cfg.config.Config.max_slice_steps in
  let steps = ref (if budget > 0 then budget else max_int) in
  let exhausted = ref false in
  let values, all_ok = resolve g ~steps ~exhausted block insns n reg 4 in
  if !exhausted then degrade_table g block Cfg.B_slice;
  let values = if all_ok || g.Cfg.config.Config.jt_union then values else [] in
  let tables =
    List.filter_map
      (function
        | V_table { base; scale; index } -> Some (base, scale, index)
        | V_const _ -> None)
      values
  in
  match tables with
  | [] ->
    Atomic.incr g.Cfg.stats.jt_unresolved;
    empty_outcome
  | _ ->
    let targets = ref [] in
    let first_base = ref None in
    let any_bounded = ref false in
    let max_entries = ref 0 in
    let capped = ref false in
    List.iter
      (fun (base, scale, index) ->
        if scale = 4 then begin
          let bound = find_bound g block insns index in
          if bound <> None then any_bounded := true;
          let ts, entries, cut = read_table g ~base ~scale ~bound in
          Pbca_simsched.Trace.tick g.Cfg.trace (4 * entries);
          if cut then capped := true;
          if !first_base = None then first_base := Some base;
          max_entries := max !max_entries entries;
          targets := !targets @ ts
        end)
      tables;
    if !capped then begin
      (* a truncated target list is not a safe answer; degrade the whole
         table to the unresolved over-approximation *)
      degrade_table g block Cfg.B_table;
      Atomic.incr g.Cfg.stats.jt_unresolved;
      empty_outcome
    end
    else begin
      if !targets = [] then Atomic.incr g.Cfg.stats.jt_unresolved;
      {
        targets = !targets;
        base = !first_base;
        bounded = !any_bounded;
        entries = !max_entries;
      }
    end
