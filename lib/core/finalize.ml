module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Task_pool = Pbca_concurrent.Task_pool
module Atomic_intset = Pbca_concurrent.Atomic_intset
module Frontier = Pbca_concurrent.Frontier
module Trace = Pbca_simsched.Trace

(* ------------------------------------------------------------------ *)
(* Per-step observability: both entry points reset the graph's         *)
(* [finalize_stats] and attribute wall time to the step that spent it. *)
(* Monotonic clock — a wall-clock step mid-finalize must not produce   *)
(* negative (or inflated) per-step walls. Each timed call is also a    *)
(* span in the graph's observability trace.                            *)

let timed ?(phase = "fz-step") g name cell f =
  Pbca_obs.Trace.with_span g.Cfg.otrace ~phase name (fun () ->
      let t0 = Pbca_obs.Clock.now () in
      let r = f () in
      cell (Pbca_obs.Clock.elapsed t0);
      r)

let reset_stats (fz : Cfg.finalize_stats) =
  fz.Cfg.fz_jt_wall <- 0.0;
  fz.Cfg.fz_reach_wall <- 0.0;
  fz.Cfg.fz_bounds_wall <- 0.0;
  fz.Cfg.fz_rules_wall <- 0.0;
  fz.Cfg.fz_prune_wall <- 0.0;
  fz.Cfg.fz_recount_wall <- 0.0;
  fz.Cfg.fz_snapshot_wall <- 0.0;
  fz.Cfg.fz_rounds <- 0;
  fz.Cfg.fz_snapshots <- 0;
  fz.Cfg.fz_dirty <- []

let t_jt fz dt = fz.Cfg.fz_jt_wall <- fz.Cfg.fz_jt_wall +. dt
let t_reach fz dt = fz.Cfg.fz_reach_wall <- fz.Cfg.fz_reach_wall +. dt
let t_bounds fz dt = fz.Cfg.fz_bounds_wall <- fz.Cfg.fz_bounds_wall +. dt
let t_rules fz dt = fz.Cfg.fz_rules_wall <- fz.Cfg.fz_rules_wall +. dt
let t_prune fz dt = fz.Cfg.fz_prune_wall <- fz.Cfg.fz_prune_wall +. dt
let t_recount fz dt = fz.Cfg.fz_recount_wall <- fz.Cfg.fz_recount_wall +. dt
let t_snap fz dt = fz.Cfg.fz_snapshot_wall <- fz.Cfg.fz_snapshot_wall +. dt

(* ------------------------------------------------------------------ *)
(* Step 1: jump-table over-approximation cleanup.                      *)

let table_limit g (bases : int array) base =
  (* entries may extend to the next discovered table or the end of the
     enclosing section; the next table is the upper bound of [base] in
     the sorted base array *)
  let n = Array.length bases in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bases.(mid) <= base then lo := mid + 1 else hi := mid
  done;
  let section_end =
    match Image.find_section_at g.Cfg.image base with
    | Some s -> s.Section.addr + Section.size s
    | None -> base
  in
  if !lo < n then min bases.(!lo) section_end else section_end

let clean_jump_tables ~pool g =
  let tables = Pbca_concurrent.Conc_bag.to_list g.Cfg.tables in
  let bases =
    Array.of_list (List.sort compare (List.map (fun t -> t.Cfg.jt_base) tables))
  in
  let tarr = Array.of_list tables in
  Task_pool.parallel_for pool 0 (Array.length tarr) (fun i ->
      let t = tarr.(i) in
      Trace.tick g.Cfg.trace 8;
      let limit = table_limit g bases t.Cfg.jt_base in
      let max_entries = max 0 ((limit - t.Cfg.jt_base) / 4) in
      (* valid targets: the table's words up to the clamp *)
      let valid = Hashtbl.create 16 in
      for k = 0 to max_entries - 1 do
        match Image.u32 g.Cfg.image (t.Cfg.jt_base + (4 * k)) with
        | Some w -> Hashtbl.replace valid w ()
        | None -> ()
      done;
      List.iter
        (fun (e : Cfg.edge) ->
          if e.e_kind = Cfg.Indirect && not (Hashtbl.mem valid e.e_dst.Cfg.b_start)
          then Atomic.set e.e_dead true)
        (Cfg.out_edges t.Cfg.jt_block))

(* ------------------------------------------------------------------ *)
(* Legacy whole-graph steps (serial reachability, full boundary and    *)
(* rule passes each round). Kept as the baseline [run_legacy] path.    *)

let reachable_blocks g =
  let seen = Hashtbl.create 4096 in
  let stack = ref [] in
  Addr_map.iter
    (fun addr _ ->
      if not (Hashtbl.mem seen addr) then begin
        Hashtbl.replace seen addr ();
        stack := addr :: !stack
      end)
    g.Cfg.funcs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | addr :: rest ->
      stack := rest;
      (match Addr_map.find g.Cfg.blocks addr with
      | None -> ()
      | Some b ->
        List.iter
          (fun (e : Cfg.edge) ->
            let d = e.e_dst.Cfg.b_start in
            if not (Hashtbl.mem seen d) then begin
              Hashtbl.replace seen d ();
              stack := d :: !stack
            end)
          (Cfg.out_edges b));
      drain ()
  in
  drain ();
  seen

(* Drop a block from the address maps (the part of a block kill that the
   snapshot's own [Csr.kill_block] cannot do). *)
let unmap_block g (b : Cfg.block) =
  ignore (Addr_map.remove g.Cfg.blocks b.Cfg.b_start);
  let e = Cfg.block_end b in
  match Addr_map.find g.Cfg.ends e with
  | Some owner when owner == b -> ignore (Addr_map.remove g.Cfg.ends e)
  | _ -> ()

let kill_block g (b : Cfg.block) =
  List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_out);
  List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_in);
  unmap_block g b

let prune_unreachable g =
  let seen = reachable_blocks g in
  let dead = ref [] in
  Addr_map.iter
    (fun addr b -> if not (Hashtbl.mem seen addr) then dead := b :: !dead)
    g.Cfg.blocks;
  List.iter (kill_block g) !dead;
  !dead <> []

(* Worklist traversal of the intra-procedural out-edges from a function
   entry (the explicit stack replaces an unbounded recursion: degenerate
   fall-through chains are as deep as the function is long). *)
let boundary_blocks g (f : Cfg.func) =
  let seen = Hashtbl.create 64 in
  (match Addr_map.find g.Cfg.blocks f.Cfg.f_entry_addr with
  | None -> ()
  | Some entry ->
    let stack = ref [ entry ] in
    let rec drain () =
      match !stack with
      | [] -> ()
      | b :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen b.Cfg.b_start) then begin
          Hashtbl.replace seen b.Cfg.b_start b;
          Trace.tick g.Cfg.trace 1;
          List.iter
            (fun (e : Cfg.edge) ->
              if Cfg.is_intra e.e_kind then stack := e.e_dst :: !stack)
            (Cfg.out_edges b)
        end;
        drain ()
    in
    drain ());
  Hashtbl.fold (fun _ b acc -> b :: acc) seen []
  |> List.sort (fun (a : Cfg.block) b -> compare a.Cfg.b_start b.Cfg.b_start)

let compute_boundaries ~pool g =
  let funcs = Array.of_list (Cfg.funcs_list g) in
  Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
      let f = funcs.(i) in
      f.Cfg.f_blocks <- boundary_blocks g f);
  Array.length funcs

(* Membership map: block start -> functions containing it. *)
let funcs_of members addr =
  Option.value (Hashtbl.find_opt members addr) ~default:[]

let membership_add members (f : Cfg.func) =
  List.iter
    (fun (b : Cfg.block) ->
      Hashtbl.replace members b.Cfg.b_start (f :: funcs_of members b.Cfg.b_start))
    f.Cfg.f_blocks

let membership_remove members (f : Cfg.func) old_blocks =
  List.iter
    (fun (b : Cfg.block) ->
      match List.filter (fun g -> g != f) (funcs_of members b.Cfg.b_start) with
      | [] -> Hashtbl.remove members b.Cfg.b_start
      | fs -> Hashtbl.replace members b.Cfg.b_start fs)
    old_blocks

let membership g =
  let tbl = Hashtbl.create 4096 in
  List.iter (membership_add tbl) (Cfg.funcs_list g);
  tbl

let live_in_edges (b : Cfg.block) = Cfg.in_edges b

let correct_tail_calls g =
  let members = membership g in
  let flips = ref 0 in
  let all_edges =
    List.concat_map
      (fun (b : Cfg.block) -> Cfg.out_edges b)
      (Cfg.blocks_list g)
  in
  let edges =
    List.sort
      (fun (a : Cfg.edge) b ->
        compare
          (a.e_src.Cfg.b_start, a.e_dst.Cfg.b_start)
          (b.e_src.Cfg.b_start, b.e_dst.Cfg.b_start))
      all_edges
  in
  List.iter
    (fun (e : Cfg.edge) ->
      if not e.e_flipped then begin
        let dst = e.e_dst.Cfg.b_start in
        match e.e_kind with
        | Cfg.Jump | Cfg.Cond_taken ->
          (* rule 1: a branch marked not-a-tail-call whose target is a
             function entry (or has an incoming CALL edge), and is not a
             self-loop to the containing function's entry *)
          let target_is_entry =
            Addr_map.mem g.Cfg.funcs dst
            || List.exists
                 (fun (ie : Cfg.edge) -> ie.e_kind = Cfg.Call)
                 (live_in_edges e.e_dst)
          in
          let self_loop =
            List.exists
              (fun (f : Cfg.func) -> f.Cfg.f_entry_addr = dst)
              (funcs_of members e.e_src.Cfg.b_start)
          in
          if target_is_entry && not self_loop then begin
            e.e_kind <- Cfg.Tail_call;
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Tail_call ->
          (* rule 2: target lies within the boundary of a function that
             also contains the source *)
          let src_funcs = funcs_of members e.e_src.Cfg.b_start in
          let within =
            List.exists
              (fun (f : Cfg.func) ->
                f.Cfg.f_entry_addr <> dst
                && List.exists
                     (fun (b : Cfg.block) -> b.Cfg.b_start = dst)
                     f.Cfg.f_blocks)
              src_funcs
          in
          (* rule 3: the target's only incoming edge is this one (outlined
             code) *)
          let sole_in =
            match live_in_edges e.e_dst with [ only ] -> only == e | _ -> false
          in
          if
            (within || sole_in)
            && not (Addr_map.mem g.Cfg.static_entries dst)
          then begin
            e.e_kind <-
              (match Atomic.get e.e_src.Cfg.b_term with
              | Some (Pbca_isa.Insn.Jcc _) -> Cfg.Cond_taken
              | _ -> Cfg.Jump);
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Fallthrough | Cfg.Cond_fall | Cfg.Call | Cfg.Call_fallthrough
        | Cfg.Indirect ->
          ()
      end)
    edges;
  !flips > 0

(* Heuristic gap entries have no symbol and typically no incoming call —
   that absence is exactly why the gap scanner had to propose them, so it
   cannot be grounds for pruning. Keep the ones whose entry actually
   decoded; degenerate proposals (nothing decodable at the address) prune
   like any other stray function. *)
let keep_heuristic g addr =
  match Cfg.conf_at g addr with
  | Some c when Cfg.conf_of_code c = Cfg.From_heuristic -> (
    match Addr_map.find g.Cfg.blocks addr with
    | Some b -> Cfg.block_end b > addr
    | None -> false)
  | _ -> false

let prune_functions g =
  let doomed = ref [] in
  Addr_map.iter
    (fun addr (f : Cfg.func) ->
      if
        (not f.Cfg.f_from_symtab)
        && addr <> g.Cfg.image.Image.entry
        && not (keep_heuristic g addr)
      then begin
        let has_interproc_in =
          match Addr_map.find g.Cfg.blocks addr with
          | None -> false
          | Some b ->
            List.exists
              (fun (e : Cfg.edge) ->
                match e.e_kind with
                | Cfg.Call | Cfg.Tail_call -> true
                | _ -> false)
              (live_in_edges b)
        in
        if not has_interproc_in then doomed := addr :: !doomed
      end)
    g.Cfg.funcs;
  List.iter (fun addr -> ignore (Addr_map.remove g.Cfg.funcs addr)) !doomed;
  !doomed <> []

(* ------------------------------------------------------------------ *)
(* Snapshot-indexed steps. All of them read a [Csr.t] built from the   *)
(* current live graph. Steps that kill edges or blocks mark them dead  *)
(* through the snapshot's delta layer ([Csr.kill_block]) — O(1) per    *)
(* kill, no rebuild — and every reader below skips dead entries; the   *)
(* caller compacts (a fresh build) only when [Csr.needs_compact] says  *)
(* the dead fraction crossed the configured threshold. Kind flips      *)
(* mutate the shared edge records in place and never stale anything.   *)

(* Frontier-based level-synchronous parallel BFS over the snapshot's
   forward adjacency. [Atomic_intset.add] is the first-visitor-wins test,
   so each block index is pushed to a frontier at most once and the
   fixed-capacity buffers cannot overflow. Unreachable blocks are delta-
   killed in the snapshot and un-mapped from the graph. *)
let prune_unreachable_snap ~pool g (snap : Csr.t) =
  let n = Csr.n_blocks snap in
  if n = 0 then false
  else begin
    let visited =
      Atomic_intset.create ~capacity:(2 * n)
        ~counters:g.Cfg.stats.Cfg.contention ()
    in
    let cur = Frontier.create ~capacity:n in
    let nxt = Frontier.create ~capacity:n in
    Addr_map.iter
      (fun addr _ ->
        match Csr.index_of snap addr with
        | Some i ->
          if Csr.block_live snap i && Atomic_intset.add visited i then
            Frontier.push cur i
        | None -> ())
      g.Cfg.funcs;
    let rec levels cur nxt =
      let len = Frontier.length cur in
      if len > 0 then begin
        Task_pool.parallel_for pool ~chunk:64 0 len (fun p ->
            let i = Frontier.get cur p in
            Csr.iter_out snap i (fun k _ ->
                let d = snap.Csr.e_dst.(k) in
                if Atomic_intset.add visited d then Frontier.push nxt d));
        Frontier.clear cur;
        levels nxt cur
      end
    in
    levels cur nxt;
    (* already-dead blocks are not "newly unreachable": without the
       liveness filter the prune fixed point would spin on them forever *)
    let dead =
      Task_pool.parallel_for_reduce pool ~chunk:256 0 n ~init:[]
        ~map:(fun i ->
          if Atomic_intset.mem visited i || not (Csr.block_live snap i) then []
          else [ i ])
        ~combine:List.rev_append
    in
    List.iter
      (fun i ->
        ignore (Csr.kill_block snap i);
        unmap_block g snap.Csr.blocks.(i))
      dead;
    dead <> []
  end

(* Same traversal as [boundary_blocks] but over snapshot indices: no
   per-visit list filtering, no address hashing on the edge walk.
   Returns sorted block indices ([iter_out] already skips dead edges,
   and a killed entry block yields the empty boundary). *)
let boundary_idx g (snap : Csr.t) (f : Cfg.func) =
  match Csr.index_of snap f.Cfg.f_entry_addr with
  | None -> []
  | Some entry when not (Csr.block_live snap entry) -> []
  | Some entry ->
    let seen = Hashtbl.create 64 in
    let stack = ref [ entry ] in
    let acc = ref [] in
    while !stack <> [] do
      (match !stack with
      | [] -> ()
      | i :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen i) then begin
          Hashtbl.replace seen i ();
          Trace.tick g.Cfg.trace 1;
          acc := i :: !acc;
          Csr.iter_out snap i (fun k (e : Cfg.edge) ->
              if Cfg.is_intra e.e_kind then
                stack := snap.Csr.e_dst.(k) :: !stack)
        end)
    done;
    List.sort compare !acc

let boundary_blocks_snap g (snap : Csr.t) (f : Cfg.func) =
  List.map (fun i -> snap.Csr.blocks.(i)) (boundary_idx g snap f)

(* Decide the correction rules for snapshot edge [k]. Pure reads: within
   a round the rules only consult Call-kind in-edges (flips never create
   or destroy a [Call]), boundary membership, the funcs map,
   [static_entries] and edge liveness — all stable while a round's scan
   runs — so evaluating edges in parallel chunks and applying the flips
   serially afterwards is equivalent to the legacy serial sorted pass. *)
let eval_rule g (snap : Csr.t) members k =
  let e : Cfg.edge = snap.Csr.edges.(k) in
  if e.e_flipped || not (Csr.edge_live snap k) then None
  else begin
    let dst = e.e_dst.Cfg.b_start in
    match e.e_kind with
    | Cfg.Jump | Cfg.Cond_taken ->
      let target_is_entry =
        Addr_map.mem g.Cfg.funcs dst
        ||
        let found = ref false in
        Csr.iter_in snap snap.Csr.e_dst.(k) (fun _ (ie : Cfg.edge) ->
            if ie.e_kind = Cfg.Call then found := true);
        !found
      in
      let self_loop =
        List.exists
          (fun (f : Cfg.func) -> f.Cfg.f_entry_addr = dst)
          (funcs_of members e.e_src.Cfg.b_start)
      in
      if target_is_entry && not self_loop then Some (k, Cfg.Tail_call)
      else None
    | Cfg.Tail_call ->
      let src_funcs = funcs_of members e.e_src.Cfg.b_start in
      let within =
        List.exists
          (fun (f : Cfg.func) ->
            f.Cfg.f_entry_addr <> dst
            && List.exists
                 (fun (b : Cfg.block) -> b.Cfg.b_start = dst)
                 f.Cfg.f_blocks)
          src_funcs
      in
      let sole_in =
        match Csr.sole_in snap snap.Csr.e_dst.(k) with
        | Some only -> only == e
        | None -> false
      in
      if (within || sole_in) && not (Addr_map.mem g.Cfg.static_entries dst)
      then
        Some
          ( k,
            match Atomic.get e.e_src.Cfg.b_term with
            | Some (Pbca_isa.Insn.Jcc _) -> Cfg.Cond_taken
            | _ -> Cfg.Jump )
      else None
    | _ -> None
  end

let prune_functions_snap g (snap : Csr.t) =
  let doomed = ref [] in
  Addr_map.iter
    (fun addr (f : Cfg.func) ->
      if
        (not f.Cfg.f_from_symtab)
        && addr <> g.Cfg.image.Image.entry
        && not (keep_heuristic g addr)
      then begin
        let has_interproc_in =
          match Csr.index_of snap addr with
          | None -> false
          | Some i ->
            let found = ref false in
            Csr.iter_in snap i (fun _ (e : Cfg.edge) ->
                match e.e_kind with
                | Cfg.Call | Cfg.Tail_call -> found := true
                | _ -> ());
            !found
        in
        if not has_interproc_in then doomed := addr :: !doomed
      end)
    g.Cfg.funcs;
  List.iter (fun addr -> ignore (Addr_map.remove g.Cfg.funcs addr)) !doomed;
  !doomed <> []

(* ------------------------------------------------------------------ *)

let run_legacy ~pool g =
  let fz = g.Cfg.stats.Cfg.finalize in
  reset_stats fz;
  timed g "jt-clean" (t_jt fz) (fun () -> clean_jump_tables ~pool g);
  ignore (timed g "reach" (t_reach fz) (fun () -> prune_unreachable g));
  (* tail-call correction: boundaries and rules alternate; each edge flips
     at most once so this converges quickly *)
  let rec fix n =
    let nfuncs = timed g "bounds" (t_bounds fz) (fun () -> compute_boundaries ~pool g) in
    (* accumulate newest-first, one [List.rev] at the end: the append
       form was quadratic in the round count *)
    fz.Cfg.fz_dirty <- nfuncs :: fz.Cfg.fz_dirty;
    let flipped = timed g "rules" (t_rules fz) (fun () -> correct_tail_calls g) in
    fz.Cfg.fz_rounds <- fz.Cfg.fz_rounds + 1;
    if flipped && n < 8 then fix (n + 1)
  in
  fix 0;
  (* removing functions can strand their blocks; removing blocks can strip
     a function's last incoming call — iterate to a (small) fixed point *)
  let rec prune n =
    let a = timed g "prune" (t_prune fz) (fun () -> prune_functions g) in
    let b =
      if a then timed g "reach" (t_reach fz) (fun () -> prune_unreachable g) else false
    in
    if (a || b) && n < 8 then prune (n + 1)
  in
  prune 0;
  ignore (timed g "bounds" (t_bounds fz) (fun () -> compute_boundaries ~pool g));
  (* instruction counts are approximate during parsing (splits shrink blocks
     concurrently); recompute them from the final block extents *)
  timed g "recount" (t_recount fz) (fun () ->
      let blocks = Array.of_list (Cfg.blocks_list g) in
      Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
          let b = blocks.(i) in
          Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b))));
  fz.Cfg.fz_dirty <- List.rev fz.Cfg.fz_dirty

let run ?on_ready ~pool g =
  let fz = g.Cfg.stats.Cfg.finalize in
  reset_stats fz;
  timed g "jt-clean" (t_jt fz) (fun () -> clean_jump_tables ~pool g);
  let build ~phase =
    timed ~phase g phase (t_snap fz) (fun () ->
        fz.Cfg.fz_snapshots <- fz.Cfg.fz_snapshots + 1;
        Csr.build ~pool g)
  in
  let snap = ref (build ~phase:"csr-build") in
  (* Kills are deltas absorbed by the snapshot in place; a fresh build
     (compaction) happens only when the dead fraction crosses the
     configured threshold. [csr_deltas] counts the winning kills (the
     rebuilds the delta layer absorbed), [csr_compactions] the rebuilds
     it did not. *)
  let threshold = g.Cfg.config.Config.csr_compact_threshold in
  let counting_kills f =
    let v0 = Csr.version !snap in
    let r = f () in
    let dv = Csr.version !snap - v0 in
    if dv > 0 then
      ignore (Atomic.fetch_and_add g.Cfg.stats.Cfg.csr_deltas dv);
    r
  in
  let maybe_compact () =
    if Csr.needs_compact !snap ~threshold then begin
      Atomic.incr g.Cfg.stats.Cfg.csr_compactions;
      snap := build ~phase:"csr-compact"
    end
  in
  if
    timed g "reach" (t_reach fz) (fun () ->
        counting_kills (fun () -> prune_unreachable_snap ~pool g !snap))
  then maybe_compact ();
  (* Tail-call fix rounds: round 0 computes every boundary and scans every
     edge; later rounds recompute only the *dirty* functions — those whose
     boundary contained the source of an edge flipped in the previous
     round, the only boundaries a flip can change, since a traversal that
     never visits the flipped edge's source never follows (or stops
     following) that edge. The rule scan of a later round is fused with
     the boundary recompute into one sweep over the {e dirty frontier}:
     the out-edges of the blocks in the old and new boundaries of the
     dirty functions. That set covers every edge whose rule decision can
     have changed — within fix rounds edge liveness, the [Call]-edge set,
     the funcs map and [static_entries] are all invariant (flips never
     make or unmake a [Call]), so a decision changes only through the
     membership or boundary content of the edge's source block, and a
     source whose membership or containing boundary changed lies in an
     old or new boundary of a dirty function by definition. Flipped edges
     are final ([eval_rule] returns [None] forever), so skipping the rest
     of the edge array loses nothing.

     No fix step kills edges or blocks, so the snapshot (and its index
     space) is stable for the whole loop; the per-round scratch below is
     allocated once and reused (arena style) instead of per round. *)
  let members = Hashtbl.create 4096 in
  let all_funcs = Array.of_list (Cfg.funcs_list g) in
  let nfuncs = Array.length all_funcs in
  (* arenas: new-boundary slots, entry -> boundary indices, the frontier
     dedup bitset and the candidate-edge buffer (block dedup is edge
     dedup: distinct blocks own disjoint fwd slices) *)
  let newb = Array.make nfuncs [] in
  let bidx : (int, int list) Hashtbl.t = Hashtbl.create (2 * nfuncs) in
  let blk_seen = Pbca_concurrent.Atomic_bitset.create (Csr.n_blocks !snap) in
  let cand = Array.make (max 1 (Csr.n_edges !snap)) 0 in
  let cand_len = ref 0 in
  let mark_frontier i =
    if Pbca_concurrent.Atomic_bitset.set blk_seen i then begin
      let s = !snap in
      for k = s.Csr.fwd_off.(i) to s.Csr.fwd_off.(i + 1) - 1 do
        cand.(!cand_len) <- k;
        incr cand_len
      done
    end
  in
  let recompute ~collect (dirty : Cfg.func array) =
    timed g "bounds" (t_bounds fz) (fun () ->
        let nd = Array.length dirty in
        Task_pool.parallel_for pool 0 nd (fun i ->
            newb.(i) <- boundary_idx g !snap dirty.(i));
        for i = 0 to nd - 1 do
          let f = dirty.(i) in
          let old_idx =
            Option.value (Hashtbl.find_opt bidx f.Cfg.f_entry_addr) ~default:[]
          in
          membership_remove members f f.Cfg.f_blocks;
          f.Cfg.f_blocks <-
            List.map (fun j -> (!snap).Csr.blocks.(j)) newb.(i);
          membership_add members f;
          Hashtbl.replace bidx f.Cfg.f_entry_addr newb.(i);
          if collect then begin
            List.iter mark_frontier old_idx;
            List.iter mark_frontier newb.(i)
          end;
          newb.(i) <- []
        done)
  in
  let rec fix round (dirty : Cfg.func array) =
    fz.Cfg.fz_dirty <- Array.length dirty :: fz.Cfg.fz_dirty;
    let collect = round > 0 in
    if collect then begin
      Pbca_concurrent.Atomic_bitset.reset blk_seen;
      cand_len := 0
    end;
    recompute ~collect dirty;
    let decisions =
      timed g "rules" (t_rules fz) (fun () ->
          if collect then
            Task_pool.parallel_for_reduce pool ~chunk:256 0 !cand_len ~init:[]
              ~map:(fun p ->
                match eval_rule g !snap members cand.(p) with
                | Some d -> [ d ]
                | None -> [])
              ~combine:List.rev_append
          else
            Task_pool.parallel_for_reduce pool ~chunk:512 0
              (Csr.n_edges !snap) ~init:[]
              ~map:(fun k ->
                match eval_rule g !snap members k with
                | Some d -> [ d ]
                | None -> [])
              ~combine:List.rev_append)
    in
    fz.Cfg.fz_rounds <- fz.Cfg.fz_rounds + 1;
    if decisions <> [] then begin
      let next = Hashtbl.create 64 in
      List.iter
        (fun (k, nk) ->
          let e : Cfg.edge = (!snap).Csr.edges.(k) in
          e.e_kind <- nk;
          e.e_flipped <- true;
          List.iter
            (fun (f : Cfg.func) -> Hashtbl.replace next f.Cfg.f_entry_addr f)
            (funcs_of members e.e_src.Cfg.b_start))
        decisions;
      if round < 8 then
        fix (round + 1)
          (Hashtbl.fold (fun _ f acc -> f :: acc) next []
          |> List.sort (fun (a : Cfg.func) b ->
                 compare a.Cfg.f_entry_addr b.Cfg.f_entry_addr)
          |> Array.of_list)
    end
  in
  fix 0 all_funcs;
  (* function/block pruning to a fixed point; the unreachable prune kills
     through the delta layer, so every reader stays valid without a
     rebuild and compaction is purely a scan-speed decision *)
  let rec prune n =
    let a = timed g "prune" (t_prune fz) (fun () -> prune_functions_snap g !snap) in
    let b =
      if a then begin
        let p =
          timed g "reach" (t_reach fz) (fun () ->
              counting_kills (fun () -> prune_unreachable_snap ~pool g !snap))
        in
        if p then maybe_compact ();
        p
      end
      else false
    in
    if (a || b) && n < 8 then prune (n + 1)
  in
  prune 0;
  let funcs = Array.of_list (Cfg.funcs_list g) in
  (* the per-function passes below are recorded as tasks in their own
     trace epoch: the bounds work was previously tick'd outside any
     active task (and thus dropped), which hid a real parallel phase
     from the replay model *)
  Trace.barrier g.Cfg.trace;
  (match on_ready with
  | None ->
    timed g "bounds" (t_bounds fz) (fun () ->
        Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
            let f = funcs.(i) in
            Trace.run g.Cfg.trace ~label:"bounds" ~deps:[] (fun () ->
                f.Cfg.f_blocks <- boundary_blocks_snap g !snap f)));
    (* instruction counts are approximate during parsing (splits shrink
       blocks concurrently); recompute them from the final block extents —
       of the blocks still live in the (possibly delta-carrying) snapshot *)
    timed g "recount" (t_recount fz) (fun () ->
        let s = !snap in
        let blocks = s.Csr.blocks in
        Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
            if Csr.block_live s i then begin
              let b = blocks.(i) in
              Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b))
            end))
  | Some publish ->
    (* Per-function readiness protocol (PR7): everything cross-function is
       already settled here — jump tables clamped, reachability and
       function pruning at their fixed points, every tail-call flip final
       (fix rounds converged), noreturn statuses resolved during parse —
       so the only facts still pending are each function's own boundary
       and its blocks' final instruction counts. Fuse those two
       per-function passes and publish each function the moment its own
       pass completes: downstream stages (skeleton fill, feature
       extraction) start on it immediately instead of after the last
       function's. A shared bitset dedups the recount of blocks reachable
       from several entries; blocks outside every boundary get their
       recount in a sweep afterwards (no consumer reads those). *)
    let s = !snap in
    let counted =
      Pbca_concurrent.Atomic_bitset.create (max 1 (Csr.n_blocks s))
    in
    timed g "bounds" (t_bounds fz) (fun () ->
        Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
            let f = funcs.(i) in
            Trace.run g.Cfg.trace ~label:"publish" ~deps:[] (fun () ->
                let idx = boundary_idx g s f in
                f.Cfg.f_blocks <- List.map (fun j -> s.Csr.blocks.(j)) idx;
                List.iter
                  (fun j ->
                    if Pbca_concurrent.Atomic_bitset.set counted j then begin
                      let b = s.Csr.blocks.(j) in
                      Trace.tick g.Cfg.trace 1;
                      Atomic.set b.Cfg.b_ninsns
                        (List.length (Disasm.block_insns g b))
                    end)
                  idx;
                Atomic.incr g.Cfg.stats.Cfg.stream_published;
                publish f)));
    timed g "recount" (t_recount fz) (fun () ->
        let blocks = s.Csr.blocks in
        Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
            if
              Csr.block_live s i
              && not (Pbca_concurrent.Atomic_bitset.test counted i)
            then begin
              let b = blocks.(i) in
              Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b))
            end)));
  fz.Cfg.fz_dirty <- List.rev fz.Cfg.fz_dirty
