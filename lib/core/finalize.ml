module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Task_pool = Pbca_concurrent.Task_pool
module Atomic_intset = Pbca_concurrent.Atomic_intset
module Frontier = Pbca_concurrent.Frontier
module Trace = Pbca_simsched.Trace

(* ------------------------------------------------------------------ *)
(* Per-step observability: both entry points reset the graph's         *)
(* [finalize_stats] and attribute wall time to the step that spent it. *)
(* Monotonic clock — a wall-clock step mid-finalize must not produce   *)
(* negative (or inflated) per-step walls. Each timed call is also a    *)
(* span in the graph's observability trace.                            *)

let timed g name cell f =
  Pbca_obs.Trace.with_span g.Cfg.otrace ~phase:"fz-step" name (fun () ->
      let t0 = Pbca_obs.Clock.now () in
      let r = f () in
      cell (Pbca_obs.Clock.elapsed t0);
      r)

let reset_stats (fz : Cfg.finalize_stats) =
  fz.Cfg.fz_jt_wall <- 0.0;
  fz.Cfg.fz_reach_wall <- 0.0;
  fz.Cfg.fz_bounds_wall <- 0.0;
  fz.Cfg.fz_rules_wall <- 0.0;
  fz.Cfg.fz_prune_wall <- 0.0;
  fz.Cfg.fz_recount_wall <- 0.0;
  fz.Cfg.fz_snapshot_wall <- 0.0;
  fz.Cfg.fz_rounds <- 0;
  fz.Cfg.fz_snapshots <- 0;
  fz.Cfg.fz_dirty <- []

let t_jt fz dt = fz.Cfg.fz_jt_wall <- fz.Cfg.fz_jt_wall +. dt
let t_reach fz dt = fz.Cfg.fz_reach_wall <- fz.Cfg.fz_reach_wall +. dt
let t_bounds fz dt = fz.Cfg.fz_bounds_wall <- fz.Cfg.fz_bounds_wall +. dt
let t_rules fz dt = fz.Cfg.fz_rules_wall <- fz.Cfg.fz_rules_wall +. dt
let t_prune fz dt = fz.Cfg.fz_prune_wall <- fz.Cfg.fz_prune_wall +. dt
let t_recount fz dt = fz.Cfg.fz_recount_wall <- fz.Cfg.fz_recount_wall +. dt
let t_snap fz dt = fz.Cfg.fz_snapshot_wall <- fz.Cfg.fz_snapshot_wall +. dt

(* ------------------------------------------------------------------ *)
(* Step 1: jump-table over-approximation cleanup.                      *)

let table_limit g (bases : int array) base =
  (* entries may extend to the next discovered table or the end of the
     enclosing section; the next table is the upper bound of [base] in
     the sorted base array *)
  let n = Array.length bases in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bases.(mid) <= base then lo := mid + 1 else hi := mid
  done;
  let section_end =
    match Image.find_section_at g.Cfg.image base with
    | Some s -> s.Section.addr + Section.size s
    | None -> base
  in
  if !lo < n then min bases.(!lo) section_end else section_end

let clean_jump_tables ~pool g =
  let tables = Pbca_concurrent.Conc_bag.to_list g.Cfg.tables in
  let bases =
    Array.of_list (List.sort compare (List.map (fun t -> t.Cfg.jt_base) tables))
  in
  let tarr = Array.of_list tables in
  Task_pool.parallel_for pool 0 (Array.length tarr) (fun i ->
      let t = tarr.(i) in
      Trace.tick g.Cfg.trace 8;
      let limit = table_limit g bases t.Cfg.jt_base in
      let max_entries = max 0 ((limit - t.Cfg.jt_base) / 4) in
      (* valid targets: the table's words up to the clamp *)
      let valid = Hashtbl.create 16 in
      for k = 0 to max_entries - 1 do
        match Image.u32 g.Cfg.image (t.Cfg.jt_base + (4 * k)) with
        | Some w -> Hashtbl.replace valid w ()
        | None -> ()
      done;
      List.iter
        (fun (e : Cfg.edge) ->
          if e.e_kind = Cfg.Indirect && not (Hashtbl.mem valid e.e_dst.Cfg.b_start)
          then Atomic.set e.e_dead true)
        (Cfg.out_edges t.Cfg.jt_block))

(* ------------------------------------------------------------------ *)
(* Legacy whole-graph steps (serial reachability, full boundary and    *)
(* rule passes each round). Kept as the baseline [run_legacy] path.    *)

let reachable_blocks g =
  let seen = Hashtbl.create 4096 in
  let stack = ref [] in
  Addr_map.iter
    (fun addr _ ->
      if not (Hashtbl.mem seen addr) then begin
        Hashtbl.replace seen addr ();
        stack := addr :: !stack
      end)
    g.Cfg.funcs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | addr :: rest ->
      stack := rest;
      (match Addr_map.find g.Cfg.blocks addr with
      | None -> ()
      | Some b ->
        List.iter
          (fun (e : Cfg.edge) ->
            let d = e.e_dst.Cfg.b_start in
            if not (Hashtbl.mem seen d) then begin
              Hashtbl.replace seen d ();
              stack := d :: !stack
            end)
          (Cfg.out_edges b));
      drain ()
  in
  drain ();
  seen

let kill_block g (b : Cfg.block) =
  List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_out);
  List.iter (fun (e : Cfg.edge) -> Atomic.set e.e_dead true) (Atomic.get b.Cfg.b_in);
  ignore (Addr_map.remove g.Cfg.blocks b.Cfg.b_start);
  let e = Cfg.block_end b in
  match Addr_map.find g.Cfg.ends e with
  | Some owner when owner == b -> ignore (Addr_map.remove g.Cfg.ends e)
  | _ -> ()

let prune_unreachable g =
  let seen = reachable_blocks g in
  let dead = ref [] in
  Addr_map.iter
    (fun addr b -> if not (Hashtbl.mem seen addr) then dead := b :: !dead)
    g.Cfg.blocks;
  List.iter (kill_block g) !dead;
  !dead <> []

(* Worklist traversal of the intra-procedural out-edges from a function
   entry (the explicit stack replaces an unbounded recursion: degenerate
   fall-through chains are as deep as the function is long). *)
let boundary_blocks g (f : Cfg.func) =
  let seen = Hashtbl.create 64 in
  (match Addr_map.find g.Cfg.blocks f.Cfg.f_entry_addr with
  | None -> ()
  | Some entry ->
    let stack = ref [ entry ] in
    let rec drain () =
      match !stack with
      | [] -> ()
      | b :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen b.Cfg.b_start) then begin
          Hashtbl.replace seen b.Cfg.b_start b;
          Trace.tick g.Cfg.trace 1;
          List.iter
            (fun (e : Cfg.edge) ->
              if Cfg.is_intra e.e_kind then stack := e.e_dst :: !stack)
            (Cfg.out_edges b)
        end;
        drain ()
    in
    drain ());
  Hashtbl.fold (fun _ b acc -> b :: acc) seen []
  |> List.sort (fun (a : Cfg.block) b -> compare a.Cfg.b_start b.Cfg.b_start)

let compute_boundaries ~pool g =
  let funcs = Array.of_list (Cfg.funcs_list g) in
  Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
      let f = funcs.(i) in
      f.Cfg.f_blocks <- boundary_blocks g f);
  Array.length funcs

(* Membership map: block start -> functions containing it. *)
let funcs_of members addr =
  Option.value (Hashtbl.find_opt members addr) ~default:[]

let membership_add members (f : Cfg.func) =
  List.iter
    (fun (b : Cfg.block) ->
      Hashtbl.replace members b.Cfg.b_start (f :: funcs_of members b.Cfg.b_start))
    f.Cfg.f_blocks

let membership_remove members (f : Cfg.func) old_blocks =
  List.iter
    (fun (b : Cfg.block) ->
      match List.filter (fun g -> g != f) (funcs_of members b.Cfg.b_start) with
      | [] -> Hashtbl.remove members b.Cfg.b_start
      | fs -> Hashtbl.replace members b.Cfg.b_start fs)
    old_blocks

let membership g =
  let tbl = Hashtbl.create 4096 in
  List.iter (membership_add tbl) (Cfg.funcs_list g);
  tbl

let live_in_edges (b : Cfg.block) = Cfg.in_edges b

let correct_tail_calls g =
  let members = membership g in
  let flips = ref 0 in
  let all_edges =
    List.concat_map
      (fun (b : Cfg.block) -> Cfg.out_edges b)
      (Cfg.blocks_list g)
  in
  let edges =
    List.sort
      (fun (a : Cfg.edge) b ->
        compare
          (a.e_src.Cfg.b_start, a.e_dst.Cfg.b_start)
          (b.e_src.Cfg.b_start, b.e_dst.Cfg.b_start))
      all_edges
  in
  List.iter
    (fun (e : Cfg.edge) ->
      if not e.e_flipped then begin
        let dst = e.e_dst.Cfg.b_start in
        match e.e_kind with
        | Cfg.Jump | Cfg.Cond_taken ->
          (* rule 1: a branch marked not-a-tail-call whose target is a
             function entry (or has an incoming CALL edge), and is not a
             self-loop to the containing function's entry *)
          let target_is_entry =
            Addr_map.mem g.Cfg.funcs dst
            || List.exists
                 (fun (ie : Cfg.edge) -> ie.e_kind = Cfg.Call)
                 (live_in_edges e.e_dst)
          in
          let self_loop =
            List.exists
              (fun (f : Cfg.func) -> f.Cfg.f_entry_addr = dst)
              (funcs_of members e.e_src.Cfg.b_start)
          in
          if target_is_entry && not self_loop then begin
            e.e_kind <- Cfg.Tail_call;
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Tail_call ->
          (* rule 2: target lies within the boundary of a function that
             also contains the source *)
          let src_funcs = funcs_of members e.e_src.Cfg.b_start in
          let within =
            List.exists
              (fun (f : Cfg.func) ->
                f.Cfg.f_entry_addr <> dst
                && List.exists
                     (fun (b : Cfg.block) -> b.Cfg.b_start = dst)
                     f.Cfg.f_blocks)
              src_funcs
          in
          (* rule 3: the target's only incoming edge is this one (outlined
             code) *)
          let sole_in =
            match live_in_edges e.e_dst with [ only ] -> only == e | _ -> false
          in
          if
            (within || sole_in)
            && not (Addr_map.mem g.Cfg.static_entries dst)
          then begin
            e.e_kind <-
              (match Atomic.get e.e_src.Cfg.b_term with
              | Some (Pbca_isa.Insn.Jcc _) -> Cfg.Cond_taken
              | _ -> Cfg.Jump);
            e.e_flipped <- true;
            incr flips
          end
        | Cfg.Fallthrough | Cfg.Cond_fall | Cfg.Call | Cfg.Call_fallthrough
        | Cfg.Indirect ->
          ()
      end)
    edges;
  !flips > 0

let prune_functions g =
  let doomed = ref [] in
  Addr_map.iter
    (fun addr (f : Cfg.func) ->
      if (not f.Cfg.f_from_symtab) && addr <> g.Cfg.image.Image.entry then begin
        let has_interproc_in =
          match Addr_map.find g.Cfg.blocks addr with
          | None -> false
          | Some b ->
            List.exists
              (fun (e : Cfg.edge) ->
                match e.e_kind with
                | Cfg.Call | Cfg.Tail_call -> true
                | _ -> false)
              (live_in_edges b)
        in
        if not has_interproc_in then doomed := addr :: !doomed
      end)
    g.Cfg.funcs;
  List.iter (fun addr -> ignore (Addr_map.remove g.Cfg.funcs addr)) !doomed;
  !doomed <> []

(* ------------------------------------------------------------------ *)
(* Snapshot-indexed steps. All of them read a [Csr.t] built from the   *)
(* current live graph; the caller rebuilds it whenever a step killed   *)
(* edges or removed blocks (kind flips alone never stale a snapshot).  *)

(* Frontier-based level-synchronous parallel BFS over the snapshot's
   forward adjacency. [Atomic_intset.add] is the first-visitor-wins test,
   so each block index is pushed to a frontier at most once and the
   fixed-capacity buffers cannot overflow. *)
let prune_unreachable_snap ~pool g (snap : Csr.t) =
  let n = Csr.n_blocks snap in
  if n = 0 then false
  else begin
    let visited =
      Atomic_intset.create ~capacity:(2 * n)
        ~counters:g.Cfg.stats.Cfg.contention ()
    in
    let cur = Frontier.create ~capacity:n in
    let nxt = Frontier.create ~capacity:n in
    Addr_map.iter
      (fun addr _ ->
        match Csr.index_of snap addr with
        | Some i -> if Atomic_intset.add visited i then Frontier.push cur i
        | None -> ())
      g.Cfg.funcs;
    let rec levels cur nxt =
      let len = Frontier.length cur in
      if len > 0 then begin
        Task_pool.parallel_for pool ~chunk:64 0 len (fun p ->
            let i = Frontier.get cur p in
            Csr.iter_out snap i (fun k _ ->
                let d = snap.Csr.e_dst.(k) in
                if Atomic_intset.add visited d then Frontier.push nxt d));
        Frontier.clear cur;
        levels nxt cur
      end
    in
    levels cur nxt;
    let dead =
      Task_pool.parallel_for_reduce pool ~chunk:256 0 n ~init:[]
        ~map:(fun i -> if Atomic_intset.mem visited i then [] else [ i ])
        ~combine:List.rev_append
    in
    List.iter (fun i -> kill_block g snap.Csr.blocks.(i)) dead;
    dead <> []
  end

(* Same traversal as [boundary_blocks] but over snapshot indices: no
   per-visit list filtering, no address hashing on the edge walk. *)
let boundary_blocks_snap g (snap : Csr.t) (f : Cfg.func) =
  match Csr.index_of snap f.Cfg.f_entry_addr with
  | None -> []
  | Some entry ->
    let seen = Hashtbl.create 64 in
    let stack = ref [ entry ] in
    let acc = ref [] in
    while !stack <> [] do
      (match !stack with
      | [] -> ()
      | i :: rest ->
        stack := rest;
        if not (Hashtbl.mem seen i) then begin
          Hashtbl.replace seen i ();
          Trace.tick g.Cfg.trace 1;
          acc := i :: !acc;
          Csr.iter_out snap i (fun k (e : Cfg.edge) ->
              if Cfg.is_intra e.e_kind then
                stack := snap.Csr.e_dst.(k) :: !stack)
        end)
    done;
    List.sort compare !acc |> List.map (fun i -> snap.Csr.blocks.(i))

(* Decide the correction rules for snapshot edge [k]. Pure reads: within
   a round the rules only consult Call-kind in-edges (flips never create
   or destroy a [Call]), boundary membership, the funcs map,
   [static_entries] and edge liveness — all stable while a round's scan
   runs — so evaluating edges in parallel chunks and applying the flips
   serially afterwards is equivalent to the legacy serial sorted pass. *)
let eval_rule g (snap : Csr.t) members k =
  let e : Cfg.edge = snap.Csr.edges.(k) in
  if e.e_flipped then None
  else begin
    let dst = e.e_dst.Cfg.b_start in
    match e.e_kind with
    | Cfg.Jump | Cfg.Cond_taken ->
      let target_is_entry =
        Addr_map.mem g.Cfg.funcs dst
        ||
        let found = ref false in
        Csr.iter_in snap snap.Csr.e_dst.(k) (fun _ (ie : Cfg.edge) ->
            if ie.e_kind = Cfg.Call then found := true);
        !found
      in
      let self_loop =
        List.exists
          (fun (f : Cfg.func) -> f.Cfg.f_entry_addr = dst)
          (funcs_of members e.e_src.Cfg.b_start)
      in
      if target_is_entry && not self_loop then Some (k, Cfg.Tail_call)
      else None
    | Cfg.Tail_call ->
      let src_funcs = funcs_of members e.e_src.Cfg.b_start in
      let within =
        List.exists
          (fun (f : Cfg.func) ->
            f.Cfg.f_entry_addr <> dst
            && List.exists
                 (fun (b : Cfg.block) -> b.Cfg.b_start = dst)
                 f.Cfg.f_blocks)
          src_funcs
      in
      let sole_in =
        match Csr.sole_in snap snap.Csr.e_dst.(k) with
        | Some only -> only == e
        | None -> false
      in
      if (within || sole_in) && not (Addr_map.mem g.Cfg.static_entries dst)
      then
        Some
          ( k,
            match Atomic.get e.e_src.Cfg.b_term with
            | Some (Pbca_isa.Insn.Jcc _) -> Cfg.Cond_taken
            | _ -> Cfg.Jump )
      else None
    | _ -> None
  end

let prune_functions_snap g (snap : Csr.t) =
  let doomed = ref [] in
  Addr_map.iter
    (fun addr (f : Cfg.func) ->
      if (not f.Cfg.f_from_symtab) && addr <> g.Cfg.image.Image.entry then begin
        let has_interproc_in =
          match Csr.index_of snap addr with
          | None -> false
          | Some i ->
            let found = ref false in
            Csr.iter_in snap i (fun _ (e : Cfg.edge) ->
                match e.e_kind with
                | Cfg.Call | Cfg.Tail_call -> found := true
                | _ -> ());
            !found
        in
        if not has_interproc_in then doomed := addr :: !doomed
      end)
    g.Cfg.funcs;
  List.iter (fun addr -> ignore (Addr_map.remove g.Cfg.funcs addr)) !doomed;
  !doomed <> []

(* ------------------------------------------------------------------ *)

let run_legacy ~pool g =
  let fz = g.Cfg.stats.Cfg.finalize in
  reset_stats fz;
  timed g "jt-clean" (t_jt fz) (fun () -> clean_jump_tables ~pool g);
  ignore (timed g "reach" (t_reach fz) (fun () -> prune_unreachable g));
  (* tail-call correction: boundaries and rules alternate; each edge flips
     at most once so this converges quickly *)
  let rec fix n =
    let nfuncs = timed g "bounds" (t_bounds fz) (fun () -> compute_boundaries ~pool g) in
    fz.Cfg.fz_dirty <- fz.Cfg.fz_dirty @ [ nfuncs ];
    let flipped = timed g "rules" (t_rules fz) (fun () -> correct_tail_calls g) in
    fz.Cfg.fz_rounds <- fz.Cfg.fz_rounds + 1;
    if flipped && n < 8 then fix (n + 1)
  in
  fix 0;
  (* removing functions can strand their blocks; removing blocks can strip
     a function's last incoming call — iterate to a (small) fixed point *)
  let rec prune n =
    let a = timed g "prune" (t_prune fz) (fun () -> prune_functions g) in
    let b =
      if a then timed g "reach" (t_reach fz) (fun () -> prune_unreachable g) else false
    in
    if (a || b) && n < 8 then prune (n + 1)
  in
  prune 0;
  ignore (timed g "bounds" (t_bounds fz) (fun () -> compute_boundaries ~pool g));
  (* instruction counts are approximate during parsing (splits shrink blocks
     concurrently); recompute them from the final block extents *)
  timed g "recount" (t_recount fz) (fun () ->
      let blocks = Array.of_list (Cfg.blocks_list g) in
      Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
          let b = blocks.(i) in
          Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b))))

let run ~pool g =
  let fz = g.Cfg.stats.Cfg.finalize in
  reset_stats fz;
  timed g "jt-clean" (t_jt fz) (fun () -> clean_jump_tables ~pool g);
  let build () =
    timed g "snapshot" (t_snap fz) (fun () ->
        fz.Cfg.fz_snapshots <- fz.Cfg.fz_snapshots + 1;
        Csr.build ~pool g)
  in
  let snap = ref (build ()) in
  let rebuild () = snap := build () in
  if timed g "reach" (t_reach fz) (fun () -> prune_unreachable_snap ~pool g !snap) then
    rebuild ();
  (* tail-call fix rounds: round 0 computes every boundary; later rounds
     recompute only the functions whose boundary contained the source of
     an edge flipped in the previous round — the only boundaries a flip
     can change, since a traversal that never visits the flipped edge's
     source never follows (or stops following) that edge. The membership
     table is patched incrementally in step with the dirty recomputes. *)
  let members = Hashtbl.create 4096 in
  let recompute (dirty : Cfg.func array) =
    timed g "bounds" (t_bounds fz) (fun () ->
        let nd = Array.length dirty in
        let newb = Array.make nd [] in
        Task_pool.parallel_for pool 0 nd (fun i ->
            newb.(i) <- boundary_blocks_snap g !snap dirty.(i));
        for i = 0 to nd - 1 do
          let f = dirty.(i) in
          membership_remove members f f.Cfg.f_blocks;
          f.Cfg.f_blocks <- newb.(i);
          membership_add members f
        done)
  in
  let rec fix round (dirty : Cfg.func array) =
    fz.Cfg.fz_dirty <- fz.Cfg.fz_dirty @ [ Array.length dirty ];
    recompute dirty;
    let decisions =
      timed g "rules" (t_rules fz) (fun () ->
          Task_pool.parallel_for_reduce pool ~chunk:512 0
            (Csr.n_edges !snap) ~init:[]
            ~map:(fun k ->
              match eval_rule g !snap members k with
              | Some d -> [ d ]
              | None -> [])
            ~combine:List.rev_append)
    in
    fz.Cfg.fz_rounds <- fz.Cfg.fz_rounds + 1;
    if decisions <> [] then begin
      let next = Hashtbl.create 64 in
      List.iter
        (fun (k, nk) ->
          let e : Cfg.edge = (!snap).Csr.edges.(k) in
          e.e_kind <- nk;
          e.e_flipped <- true;
          List.iter
            (fun (f : Cfg.func) -> Hashtbl.replace next f.Cfg.f_entry_addr f)
            (funcs_of members e.e_src.Cfg.b_start))
        decisions;
      if round < 8 then
        fix (round + 1)
          (Hashtbl.fold (fun _ f acc -> f :: acc) next []
          |> List.sort (fun (a : Cfg.func) b ->
                 compare a.Cfg.f_entry_addr b.Cfg.f_entry_addr)
          |> Array.of_list)
    end
  in
  fix 0 (Array.of_list (Cfg.funcs_list g));
  (* function/block pruning to a fixed point; only the unreachable prune
     mutates the live-edge set, so that is the only stale trigger *)
  let stale = ref false in
  let rec prune n =
    if !stale then begin
      rebuild ();
      stale := false
    end;
    let a = timed g "prune" (t_prune fz) (fun () -> prune_functions_snap g !snap) in
    let b =
      if a then begin
        let p =
          timed g "reach" (t_reach fz) (fun () -> prune_unreachable_snap ~pool g !snap)
        in
        if p then stale := true;
        p
      end
      else false
    in
    if (a || b) && n < 8 then prune (n + 1)
  in
  prune 0;
  if !stale then rebuild ();
  let funcs = Array.of_list (Cfg.funcs_list g) in
  timed g "bounds" (t_bounds fz) (fun () ->
      Task_pool.parallel_for pool 0 (Array.length funcs) (fun i ->
          let f = funcs.(i) in
          f.Cfg.f_blocks <- boundary_blocks_snap g !snap f));
  (* instruction counts are approximate during parsing (splits shrink blocks
     concurrently); recompute them from the final block extents *)
  timed g "recount" (t_recount fz) (fun () ->
      let blocks = (!snap).Csr.blocks in
      Task_pool.parallel_for pool 0 (Array.length blocks) (fun i ->
          let b = blocks.(i) in
          Atomic.set b.Cfg.b_ninsns (List.length (Disasm.block_insns g b))))
