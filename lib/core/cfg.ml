type edge_kind =
  | Fallthrough
  | Jump
  | Cond_taken
  | Cond_fall
  | Call
  | Call_fallthrough
  | Indirect
  | Tail_call

type block = {
  b_start : int;
  b_end : int Atomic.t;
  b_term : Pbca_isa.Insn.t option Atomic.t;
  b_ninsns : int Atomic.t;
  b_out : edge list Atomic.t;
  b_in : edge list Atomic.t;
  b_watchers : func list Atomic.t;
}

and edge = {
  mutable e_src : block;
  e_dst : block;
  mutable e_kind : edge_kind;
  mutable e_flipped : bool;
  e_dead : bool Atomic.t;
  e_jt : (int * int) option;
}

and ret_status = Unset | Returns | Noreturn
and waiter = W_fallthrough of int | W_status of func

and func = {
  f_entry_addr : int;
  f_entry : block;
  f_name : string;
  f_from_symtab : bool;
  f_ret : ret_status Atomic.t;
  f_ret_dep : Pbca_simsched.Trace.dep option Atomic.t;
  f_waiters : waiter list Atomic.t;
  f_visited : Pbca_concurrent.Atomic_intset.t;
  mutable f_blocks : block list;
}

type jt_record = {
  jt_id : int;
  jt_block : block;
  jt_jump_addr : int;
  jt_base : int;
  jt_bounded : bool;
  jt_count : int;
}

type finalize_stats = {
  mutable fz_jt_wall : float;
  mutable fz_reach_wall : float;
  mutable fz_bounds_wall : float;
  mutable fz_rules_wall : float;
  mutable fz_prune_wall : float;
  mutable fz_recount_wall : float;
  mutable fz_snapshot_wall : float;
  mutable fz_rounds : int;
  mutable fz_snapshots : int;
  mutable fz_dirty : int list;
}

let fresh_finalize_stats () =
  {
    fz_jt_wall = 0.0;
    fz_reach_wall = 0.0;
    fz_bounds_wall = 0.0;
    fz_rules_wall = 0.0;
    fz_prune_wall = 0.0;
    fz_recount_wall = 0.0;
    fz_snapshot_wall = 0.0;
    fz_rounds = 0;
    fz_snapshots = 0;
    fz_dirty = [];
  }

(* Which budget a degradation charged against; [B_deadline] also covers
   work skipped because the global deadline passed. *)
type budget_site = B_block | B_slice | B_table | B_deadline

(* Provenance of a function entry: how sure we are the address really
   starts a function. Ordered strongest first; the wire codes are part of
   the journal/checkpoint format. *)
type confidence = From_symbol | From_call_target | From_heuristic

let conf_code = function
  | From_symbol -> 0
  | From_call_target -> 1
  | From_heuristic -> 2

let conf_of_code = function
  | 0 -> From_symbol
  | 1 -> From_call_target
  | 2 -> From_heuristic
  | n -> invalid_arg (Printf.sprintf "Cfg.conf_of_code: %d" n)

let confidence_name = function
  | From_symbol -> "symbol"
  | From_call_target -> "call-target"
  | From_heuristic -> "heuristic"

type stats = {
  insns_decoded : int Atomic.t;
  blocks_created : int Atomic.t;
  splits : int Atomic.t;
  edges_created : int Atomic.t;
  jt_analyses : int Atomic.t;
  jt_unresolved : int Atomic.t;
  budget_block : int Atomic.t;
  budget_slice : int Atomic.t;
  budget_table : int Atomic.t;
  budget_deadline : int Atomic.t;
  task_failures : (string * string) Pbca_concurrent.Conc_bag.t;
      (* (site label, exception text) per contained task crash *)
  contention : Pbca_concurrent.Contention.t;
      (* shared by every Addr_map and visited-set of this graph *)
  finalize : finalize_stats;
  journal_records : int Atomic.t;
  replayed_ops : int Atomic.t;
  resume_count : int Atomic.t;
  supervisor_restarts : int Atomic.t;
  deadline_checks : int Atomic.t;
  deadline_polls : int Atomic.t;
  sched_steals : int Atomic.t;
  sched_steal_attempts : int Atomic.t;
  sched_idle_sleeps : int Atomic.t;
      (* per-run scheduler counters: Parallel snapshot-diffs the pool's
         cumulative counters around the parse, so these never mix with a
         concurrent run on another pool *)
  csr_deltas : int Atomic.t;
      (* winning delta kills (edges + blocks) applied to finalize CSR
         snapshots instead of forcing a rebuild *)
  csr_compactions : int Atomic.t;
      (* snapshot rebuilds forced by the dead fraction crossing
         [Config.csr_compact_threshold] *)
  stream_published : int Atomic.t;
      (* functions published on the pipeline channel (0 = barrier path) *)
  stream_hwm : int Atomic.t;
      (* pipeline channel depth high-water mark *)
  stream_consumer_idle_us : int Atomic.t;
      (* microseconds consumers spent blocked on an empty channel *)
  stream_producer_block_us : int Atomic.t;
      (* microseconds producers spent blocked on a full channel *)
  gap_gaps_scanned : int Atomic.t;
      (* unclaimed .text gaps examined by the gap-parsing rounds *)
  gap_entries_proposed : int Atomic.t;
      (* entry addresses the gap heuristics proposed *)
  gap_entries_accepted : int Atomic.t;
      (* proposals whose parse produced a real (non-degenerate) entry *)
  gap_entries_rejected : int Atomic.t;
      (* proposals that decoded to nothing and were discarded *)
}

type t = {
  image : Pbca_binfmt.Image.t;
  config : Config.t;
  blocks : block Addr_map.t;
  ends : block Addr_map.t;
  funcs : func Addr_map.t;
  tables : jt_record Pbca_concurrent.Conc_bag.t;
  next_table_id : int Atomic.t;
  static_entries : unit Addr_map.t;
  ft_guard : unit Addr_map.t;
  degraded : bool Addr_map.t;
      (* addresses where a budget cut or task failure forced the safe
         over-approximation; consulted by the checker and diff tooling.
         The value records whether the mark was deadline-caused: those are
         dropped on resume because the lost work is re-done. *)
  conf : int Addr_map.t;
      (* function-entry confidence overrides, keyed by entry address and
         holding a [conf_code]. Absent means derived: [From_symbol] for
         symtab entries and the image entry point, [From_call_target]
         otherwise. First writer wins, so a heuristic proposal tagged
         before its function is created keeps its tag. *)
  deadline : float;
      (* absolute *monotonic* bound: [Clock.now] at create plus the
         configured budget ([infinity] when off). Monotonic, not wall: an
         NTP step must not fire the deadline early or keep it from ever
         firing. *)
  dl_counter : int Atomic.t;
      (* deadline checks since the last real clock poll; the clock is only
         consulted every [Config.deadline_poll_every] checks *)
  dl_past : bool Atomic.t; (* latched: once past, always past *)
  mutable journal : Journal.writer option;
      (* set by Parallel while a persistent parse runs; mutations emit ops
         through [jemit] while attached. Single-writer: attached/detached
         only at quiescent points. *)
  stats : stats;
  trace : Pbca_simsched.Trace.t;
  otrace : Pbca_obs.Trace.t;
  metrics : Pbca_obs.Metrics.t;
}

let create ?(config = Config.default) ?(trace = Pbca_simsched.Trace.disabled)
    ?(otrace = Pbca_obs.Trace.disabled) image =
  let counters = Pbca_concurrent.Contention.create () in
  let amap () = Addr_map.create ~shards:config.Config.shards ~counters () in
  let static_entries = amap () in
  List.iter
    (fun (s : Pbca_binfmt.Symbol.t) ->
      ignore (Addr_map.insert_if_absent static_entries s.offset ()))
    (Pbca_binfmt.Symtab.functions image.Pbca_binfmt.Image.symtab);
  let stats =
    {
      insns_decoded = Atomic.make 0;
      blocks_created = Atomic.make 0;
      splits = Atomic.make 0;
      edges_created = Atomic.make 0;
      jt_analyses = Atomic.make 0;
      jt_unresolved = Atomic.make 0;
      budget_block = Atomic.make 0;
      budget_slice = Atomic.make 0;
      budget_table = Atomic.make 0;
      budget_deadline = Atomic.make 0;
      task_failures = Pbca_concurrent.Conc_bag.create ();
      contention = counters;
      finalize = fresh_finalize_stats ();
      journal_records = Atomic.make 0;
      replayed_ops = Atomic.make 0;
      resume_count = Atomic.make 0;
      supervisor_restarts = Atomic.make 0;
      deadline_checks = Atomic.make 0;
      deadline_polls = Atomic.make 0;
      sched_steals = Atomic.make 0;
      sched_steal_attempts = Atomic.make 0;
      sched_idle_sleeps = Atomic.make 0;
      csr_deltas = Atomic.make 0;
      csr_compactions = Atomic.make 0;
      stream_published = Atomic.make 0;
      stream_hwm = Atomic.make 0;
      stream_consumer_idle_us = Atomic.make 0;
      stream_producer_block_us = Atomic.make 0;
      gap_gaps_scanned = Atomic.make 0;
      gap_entries_proposed = Atomic.make 0;
      gap_entries_accepted = Atomic.make 0;
      gap_entries_rejected = Atomic.make 0;
    }
  in
  (* Per-run metrics registry: the scattered hot-path atomics are adopted
     by name (the registry holds the very cells the parse increments), so
     one [--metrics] dump or snapshot sees everything without the hot
     paths paying for the unification. *)
  let metrics = Pbca_obs.Metrics.create () in
  let () =
    let c = Pbca_obs.Metrics.register_counter metrics in
    c "insns_decoded" stats.insns_decoded;
    c "blocks_created" stats.blocks_created;
    c "splits" stats.splits;
    c "edges_created" stats.edges_created;
    c "jt_analyses" stats.jt_analyses;
    c "jt_unresolved" stats.jt_unresolved;
    c "budget_block" stats.budget_block;
    c "budget_slice" stats.budget_slice;
    c "budget_table" stats.budget_table;
    c "budget_deadline" stats.budget_deadline;
    c "journal_records" stats.journal_records;
    c "replayed_ops" stats.replayed_ops;
    c "resume_count" stats.resume_count;
    c "supervisor_restarts" stats.supervisor_restarts;
    c "deadline_checks" stats.deadline_checks;
    c "deadline_polls" stats.deadline_polls;
    c "sched_steals" stats.sched_steals;
    c "sched_steal_attempts" stats.sched_steal_attempts;
    c "sched_idle_sleeps" stats.sched_idle_sleeps;
    c "csr_deltas" stats.csr_deltas;
    c "csr_compactions" stats.csr_compactions;
    c "stream_published" stats.stream_published;
    c "gap_gaps_scanned" stats.gap_gaps_scanned;
    c "gap_entries_proposed" stats.gap_entries_proposed;
    c "gap_entries_accepted" stats.gap_entries_accepted;
    c "gap_entries_rejected" stats.gap_entries_rejected;
    (* per-stage occupancy as gauges: snapshot-time reads of the stream
       counters the pipeline drivers record after their channels close *)
    let gf = Pbca_obs.Metrics.register_gauge_fn metrics in
    gf "stream_channel_hwm" (fun () ->
        float_of_int (Atomic.get stats.stream_hwm));
    gf "stream_consumer_idle_s" (fun () ->
        float_of_int (Atomic.get stats.stream_consumer_idle_us) /. 1e6);
    gf "stream_producer_block_s" (fun () ->
        float_of_int (Atomic.get stats.stream_producer_block_us) /. 1e6);
    c "contention_probes" counters.Pbca_concurrent.Contention.probes;
    c "contention_cas_retries" counters.Pbca_concurrent.Contention.cas_retries;
    c "contention_resizes" counters.Pbca_concurrent.Contention.resizes;
    c "contention_frozen_waits" counters.Pbca_concurrent.Contention.frozen_waits
  in
  let t =
    {
      image;
      config;
      blocks = amap ();
      ends = amap ();
      funcs = amap ();
      tables = Pbca_concurrent.Conc_bag.create ();
      next_table_id = Atomic.make 0;
      static_entries;
      ft_guard = amap ();
      degraded = amap ();
      conf = amap ();
      deadline =
        (if config.Config.deadline_s > 0.0 then
           Pbca_obs.Clock.now () +. config.Config.deadline_s
         else infinity);
      dl_counter = Atomic.make 0;
      dl_past = Atomic.make false;
      journal = None;
      stats;
      trace;
      otrace;
      metrics;
    }
  in
  let gf = Pbca_obs.Metrics.register_gauge_fn metrics in
  gf "blocks" (fun () -> float_of_int (Addr_map.length t.blocks));
  gf "funcs" (fun () -> float_of_int (Addr_map.length t.funcs));
  gf "degraded" (fun () -> float_of_int (Addr_map.length t.degraded));
  gf "task_failures" (fun () ->
      float_of_int (Pbca_concurrent.Conc_bag.length stats.task_failures));
  let dc = image.Pbca_binfmt.Image.dcache in
  gf "decode_hits" (fun () -> float_of_int (Pbca_binfmt.Decode_cache.hits dc));
  gf "decode_misses" (fun () ->
      float_of_int (Pbca_binfmt.Decode_cache.misses dc));
  t

(* ------------------------------------------------------------------ *)
(* Journal plumbing. Emission points sit inside the same critical
   sections as the mutations they describe, so sequence order respects
   the real order of any two conflicting ops.                          *)

let edge_kind_code = function
  | Fallthrough -> 0
  | Jump -> 1
  | Cond_taken -> 2
  | Cond_fall -> 3
  | Call -> 4
  | Call_fallthrough -> 5
  | Indirect -> 6
  | Tail_call -> 7

let edge_kind_of_code = function
  | 0 -> Fallthrough
  | 1 -> Jump
  | 2 -> Cond_taken
  | 3 -> Cond_fall
  | 4 -> Call
  | 5 -> Call_fallthrough
  | 6 -> Indirect
  | 7 -> Tail_call
  | n -> invalid_arg (Printf.sprintf "Cfg.edge_kind_of_code: %d" n)

let set_journal t w = t.journal <- w

let jemit t op =
  match t.journal with
  | None -> ()
  | Some w ->
    Journal.emit w op;
    Atomic.incr t.stats.journal_records

let journal_emit = jemit

(* ------------------------------------------------------------------ *)
(* Robustness bookkeeping: budgets, degradation marks, task failures.  *)

let budget_counter t = function
  | B_block -> t.stats.budget_block
  | B_slice -> t.stats.budget_slice
  | B_table -> t.stats.budget_table
  | B_deadline -> t.stats.budget_deadline

let mark_degraded ?(deadline = false) t addr =
  if addr >= 0 && Addr_map.insert_if_absent t.degraded addr deadline then
    jemit t (Journal.Op_degraded { addr; deadline })

let unmark_degraded t addr = ignore (Addr_map.remove t.degraded addr)

(* Confidence tagging. First writer wins (a heuristic proposal tagged
   before the traversal reaches the same address keeps its tag); every
   stored tag is journaled so resume replays it verbatim. *)
let set_conf t addr code =
  if addr >= 0 && Addr_map.insert_if_absent t.conf addr code then
    jemit t (Journal.Op_conf { addr; conf = code })

let conf_at t addr = Addr_map.find t.conf addr

let func_confidence t (f : func) =
  match Addr_map.find t.conf f.f_entry_addr with
  | Some c -> conf_of_code c
  | None ->
    if f.f_from_symtab || f.f_entry_addr = t.image.Pbca_binfmt.Image.entry then
      From_symbol
    else From_call_target

let conf_list t =
  Addr_map.fold (fun a c acc -> (a, c) :: acc) t.conf [] |> List.sort compare

(* (symbol, call-target, heuristic) function counts. Quiescent use only. *)
let conf_counts t =
  Addr_map.fold
    (fun _ f (s, c, h) ->
      match func_confidence t f with
      | From_symbol -> (s + 1, c, h)
      | From_call_target -> (s, c + 1, h)
      | From_heuristic -> (s, c, h + 1))
    t.funcs (0, 0, 0)

let degraded_list t =
  Addr_map.fold (fun a dl acc -> (a, dl) :: acc) t.degraded []
  |> List.sort compare

let note_budget t site = Atomic.incr (budget_counter t site)

let record_degraded t site addr =
  note_budget t site;
  mark_degraded ~deadline:(site = B_deadline) t addr

let record_task_failure t ~site ~detail =
  Pbca_concurrent.Conc_bag.add t.stats.task_failures (site, detail)

let degraded_at t addr = Addr_map.mem t.degraded addr
let degraded_count t = Addr_map.length t.degraded

let degraded_within t ~lo ~hi =
  Addr_map.fold
    (fun a _ acc -> acc || (a >= lo && a < hi))
    t.degraded false

let func_degraded t (f : func) =
  degraded_at t f.f_entry_addr
  || List.exists (fun (b : block) -> degraded_at t b.b_start) f.f_blocks
  || List.exists (degraded_at t)
       (Pbca_concurrent.Atomic_intset.to_list f.f_visited)

let task_failure_count t =
  Pbca_concurrent.Conc_bag.length t.stats.task_failures

let task_failures t = Pbca_concurrent.Conc_bag.to_list t.stats.task_failures

(* Deadline checks run on every parse/traversal/table work unit; paying a
   clock read each time dominated the hot path. The clock is polled only
   every [deadline_poll_every] checks and the verdict latched once true —
   a deadline can only ever be *more* past (the monotonic clock never
   runs backwards, and [t.deadline] is a monotonic instant, so a stepped
   wall clock cannot unlatch or mis-fire it). The coarsening delays
   detection by at most N-1 work units, all of which would have been
   legal before the poll anyway. *)
let past_deadline t =
  if t.deadline = infinity then false
  else if Atomic.get t.dl_past then true
  else begin
    Atomic.incr t.stats.deadline_checks;
    let every = max 1 t.config.Config.deadline_poll_every in
    let k = Atomic.fetch_and_add t.dl_counter 1 in
    if k mod every = 0 then begin
      Atomic.incr t.stats.deadline_polls;
      if Pbca_obs.Clock.now () > t.deadline then begin
        Atomic.set t.dl_past true;
        true
      end
      else false
    end
    else false
  end

(* Budget-starvation fault injection: while a [Starve] fault is live, every
   enabled budget reads as 1, forcing the degradation paths without any
   hostile input. *)
let effective_budget v =
  if v > 0 && Pbca_concurrent.Fault.starved () then 1 else v

let is_candidate b = Atomic.get b.b_end < 0
let block_end b = Atomic.get b.b_end

let out_edges b =
  List.filter (fun e -> not (Atomic.get e.e_dead)) (Atomic.get b.b_out)

let in_edges b =
  List.filter (fun e -> not (Atomic.get e.e_dead)) (Atomic.get b.b_in)

let is_intra = function
  | Fallthrough | Jump | Cond_taken | Cond_fall | Call_fallthrough | Indirect
    ->
    true
  | Call | Tail_call -> false

let rec push_atomic cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (x :: cur)) then push_atomic cell x

let new_block start =
  {
    b_start = start;
    b_end = Atomic.make (-1);
    b_term = Atomic.make None;
    b_ninsns = Atomic.make 0;
    b_out = Atomic.make [];
    b_in = Atomic.make [];
    b_watchers = Atomic.make [];
  }

let find_or_create_block t addr =
  let b, created = Addr_map.find_or_insert t.blocks addr (fun () -> new_block addr) in
  if created then begin
    Atomic.incr t.stats.blocks_created;
    jemit t (Journal.Op_block addr)
  end;
  (b, created)

let find_or_create_func t ~name ~from_symtab addr =
  let entry, _ = find_or_create_block t addr in
  let f, created =
    Addr_map.find_or_insert t.funcs addr (fun () ->
        {
          f_entry_addr = addr;
          f_entry = entry;
          f_name = name;
          f_from_symtab = from_symtab;
          f_ret = Atomic.make Unset;
          f_ret_dep = Atomic.make None;
          f_waiters = Atomic.make [];
          f_visited =
            Pbca_concurrent.Atomic_intset.create ~capacity:16
              ~counters:t.stats.contention ();
          f_blocks = [];
        })
  in
  if created then begin
    jemit t (Journal.Op_func { entry = addr; name; from_symtab });
    (* derived-confidence entries ([From_symbol]) stay out of the map;
       only call-target discoveries need a stored tag, and a heuristic
       proposal that tagged this entry first keeps its tag *)
    if (not from_symtab) && addr <> t.image.Pbca_binfmt.Image.entry then
      set_conf t addr (conf_code From_call_target)
  end;
  (f, created)

let add_edge t ?jt src dst kind =
  let e =
    {
      e_src = src;
      e_dst = dst;
      e_kind = kind;
      e_flipped = false;
      e_dead = Atomic.make false;
      e_jt = jt;
    }
  in
  push_atomic src.b_out e;
  push_atomic dst.b_in e;
  Atomic.incr t.stats.edges_created;
  jemit t
    (Journal.Op_edge
       { src = src.b_start; dst = dst.b_start; kind = edge_kind_code kind; jt });
  e

let set_term t b insn =
  Atomic.set b.b_term insn;
  jemit t (Journal.Op_term { start = b.b_start; insn })

let set_degenerate t b =
  Atomic.set b.b_end b.b_start;
  jemit t
    (Journal.Op_end
       {
         start = b.b_start;
         end_ = b.b_start;
         ninsns = Atomic.get b.b_ninsns;
       })

let jemit_end t b end_ =
  jemit t
    (Journal.Op_end
       { start = b.b_start; end_; ninsns = Atomic.get b.b_ninsns })

let watch b f = push_atomic b.b_watchers f

(* Invariants 2-4: see the interface. The entry callback never touches the
   [ends] map again, so the per-shard lock cannot deadlock; it may touch
   [blocks] and [funcs] (different maps). *)
let register_end t block0 ~end_:end0 ~on_win ~on_done =
  let changed = ref [] in
  let rec go block end_ ~first =
    let continue_with =
      Addr_map.update t.ends end_ (fun cur ->
          match cur with
          | None ->
            Atomic.set block.b_end end_;
            if first then on_win block;
            jemit_end t block end_;
            changed := block :: !changed;
            (Some block, None)
          | Some other when other == block -> (Some other, None)
          | Some other ->
            Atomic.incr t.stats.splits;
            if other.b_start > block.b_start then begin
              (* we start earlier: shrink ourselves to [start, other.start)
                 and re-register at the smaller end; [other] keeps the
                 terminator. Out-edges we carried from an earlier split
                 iteration emanated from [end_] and are owned by [other],
                 which already holds the canonical copies — drop ours
                 (O_BER: outgoing edges go with the upper fragment). *)
              List.iter
                (fun e ->
                  Atomic.set e.e_dead true;
                  jemit t
                    (Journal.Op_edge_dead
                       {
                         src = e.e_src.b_start;
                         dst = e.e_dst.b_start;
                         kind = edge_kind_code e.e_kind;
                       }))
                (Atomic.exchange block.b_out []);
              Atomic.set block.b_end other.b_start;
              set_term t block None;
              jemit_end t block other.b_start;
              ignore (add_edge t block other Fallthrough);
              changed := block :: !changed;
              (Some other, Some (block, other.b_start))
            end
            else begin
              (* [other] starts earlier: it shrinks to [other.start, start);
                 we take over the terminator and its out-edges. If we
                 already carry canonical edges for [end_] from an earlier
                 split iteration, [other]'s copies are duplicates. *)
              let moved = Atomic.exchange other.b_out [] in
              if Atomic.get block.b_out = [] then
                List.iter
                  (fun e ->
                    let old_src = e.e_src.b_start in
                    e.e_src <- block;
                    push_atomic block.b_out e;
                    jemit t
                      (Journal.Op_edge_move
                         {
                           src = old_src;
                           dst = e.e_dst.b_start;
                           kind = edge_kind_code e.e_kind;
                           new_src = block.b_start;
                         }))
                  moved
              else
                List.iter
                  (fun e ->
                    Atomic.set e.e_dead true;
                    jemit t
                      (Journal.Op_edge_dead
                         {
                           src = e.e_src.b_start;
                           dst = e.e_dst.b_start;
                           kind = edge_kind_code e.e_kind;
                         }))
                  moved;
              set_term t block (Atomic.get other.b_term);
              set_term t other None;
              Atomic.set other.b_end block.b_start;
              jemit_end t other block.b_start;
              Atomic.set block.b_end end_;
              jemit_end t block end_;
              ignore (add_edge t other block Fallthrough);
              changed := other :: block :: !changed;
              (Some block, Some (other, block.b_start))
            end)
    in
    match continue_with with
    | None -> ()
    | Some (blk, e) -> go blk e ~first:false
  in
  go block0 end0 ~first:true;
  List.iter on_done !changed

let add_edge_at_end t ~end_ ~dst_addr kind =
  Addr_map.update t.ends end_ (fun cur ->
      match cur with
      | None -> (None, None)
      | Some owner ->
        let dst, created = find_or_create_block t dst_addr in
        ignore (add_edge t owner dst kind);
        (Some owner, Some (owner, dst, created)))

let blocks_list t =
  Addr_map.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun a b -> compare a.b_start b.b_start)

let funcs_list t =
  Addr_map.fold (fun _ f acc -> f :: acc) t.funcs []
  |> List.sort (fun a b -> compare a.f_entry_addr b.f_entry_addr)

let pp_edge_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | Fallthrough -> "fallthrough"
    | Jump -> "jump"
    | Cond_taken -> "cond-taken"
    | Cond_fall -> "cond-fall"
    | Call -> "call"
    | Call_fallthrough -> "call-ft"
    | Indirect -> "indirect"
    | Tail_call -> "tailcall")
