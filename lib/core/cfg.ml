type edge_kind =
  | Fallthrough
  | Jump
  | Cond_taken
  | Cond_fall
  | Call
  | Call_fallthrough
  | Indirect
  | Tail_call

type block = {
  b_start : int;
  b_end : int Atomic.t;
  b_term : Pbca_isa.Insn.t option Atomic.t;
  b_ninsns : int Atomic.t;
  b_out : edge list Atomic.t;
  b_in : edge list Atomic.t;
  b_watchers : func list Atomic.t;
}

and edge = {
  mutable e_src : block;
  e_dst : block;
  mutable e_kind : edge_kind;
  mutable e_flipped : bool;
  e_dead : bool Atomic.t;
  e_jt : (int * int) option;
}

and ret_status = Unset | Returns | Noreturn
and waiter = W_fallthrough of int | W_status of func

and func = {
  f_entry_addr : int;
  f_entry : block;
  f_name : string;
  f_from_symtab : bool;
  f_ret : ret_status Atomic.t;
  f_ret_dep : Pbca_simsched.Trace.dep option Atomic.t;
  f_waiters : waiter list Atomic.t;
  f_visited : Pbca_concurrent.Atomic_intset.t;
  mutable f_blocks : block list;
}

type jt_record = {
  jt_id : int;
  jt_block : block;
  jt_jump_addr : int;
  jt_base : int;
  jt_bounded : bool;
  jt_count : int;
}

type finalize_stats = {
  mutable fz_jt_wall : float;
  mutable fz_reach_wall : float;
  mutable fz_bounds_wall : float;
  mutable fz_rules_wall : float;
  mutable fz_prune_wall : float;
  mutable fz_recount_wall : float;
  mutable fz_snapshot_wall : float;
  mutable fz_rounds : int;
  mutable fz_snapshots : int;
  mutable fz_dirty : int list;
}

let fresh_finalize_stats () =
  {
    fz_jt_wall = 0.0;
    fz_reach_wall = 0.0;
    fz_bounds_wall = 0.0;
    fz_rules_wall = 0.0;
    fz_prune_wall = 0.0;
    fz_recount_wall = 0.0;
    fz_snapshot_wall = 0.0;
    fz_rounds = 0;
    fz_snapshots = 0;
    fz_dirty = [];
  }

(* Which budget a degradation charged against; [B_deadline] also covers
   work skipped because the global deadline passed. *)
type budget_site = B_block | B_slice | B_table | B_deadline

type stats = {
  insns_decoded : int Atomic.t;
  blocks_created : int Atomic.t;
  splits : int Atomic.t;
  edges_created : int Atomic.t;
  jt_analyses : int Atomic.t;
  jt_unresolved : int Atomic.t;
  budget_block : int Atomic.t;
  budget_slice : int Atomic.t;
  budget_table : int Atomic.t;
  budget_deadline : int Atomic.t;
  task_failures : (string * string) Pbca_concurrent.Conc_bag.t;
      (* (site label, exception text) per contained task crash *)
  contention : Pbca_concurrent.Contention.t;
      (* shared by every Addr_map and visited-set of this graph *)
  finalize : finalize_stats;
}

type t = {
  image : Pbca_binfmt.Image.t;
  config : Config.t;
  blocks : block Addr_map.t;
  ends : block Addr_map.t;
  funcs : func Addr_map.t;
  tables : jt_record Pbca_concurrent.Conc_bag.t;
  next_table_id : int Atomic.t;
  static_entries : unit Addr_map.t;
  ft_guard : unit Addr_map.t;
  degraded : unit Addr_map.t;
      (* addresses where a budget cut or task failure forced the safe
         over-approximation; consulted by the checker and diff tooling *)
  deadline : float; (* absolute wall-clock bound, [infinity] when off *)
  stats : stats;
  trace : Pbca_simsched.Trace.t;
}

let create ?(config = Config.default) ?(trace = Pbca_simsched.Trace.disabled)
    image =
  let counters = Pbca_concurrent.Contention.create () in
  let amap () = Addr_map.create ~shards:config.Config.shards ~counters () in
  let static_entries = amap () in
  List.iter
    (fun (s : Pbca_binfmt.Symbol.t) ->
      ignore (Addr_map.insert_if_absent static_entries s.offset ()))
    (Pbca_binfmt.Symtab.functions image.Pbca_binfmt.Image.symtab);
  {
    image;
    config;
    blocks = amap ();
    ends = amap ();
    funcs = amap ();
    tables = Pbca_concurrent.Conc_bag.create ();
    next_table_id = Atomic.make 0;
    static_entries;
    ft_guard = amap ();
    degraded = amap ();
    deadline =
      (if config.Config.deadline_s > 0.0 then
         Unix.gettimeofday () +. config.Config.deadline_s
       else infinity);
    stats =
      {
        insns_decoded = Atomic.make 0;
        blocks_created = Atomic.make 0;
        splits = Atomic.make 0;
        edges_created = Atomic.make 0;
        jt_analyses = Atomic.make 0;
        jt_unresolved = Atomic.make 0;
        budget_block = Atomic.make 0;
        budget_slice = Atomic.make 0;
        budget_table = Atomic.make 0;
        budget_deadline = Atomic.make 0;
        task_failures = Pbca_concurrent.Conc_bag.create ();
        contention = counters;
        finalize = fresh_finalize_stats ();
      };
    trace;
  }

(* ------------------------------------------------------------------ *)
(* Robustness bookkeeping: budgets, degradation marks, task failures.  *)

let budget_counter t = function
  | B_block -> t.stats.budget_block
  | B_slice -> t.stats.budget_slice
  | B_table -> t.stats.budget_table
  | B_deadline -> t.stats.budget_deadline

let mark_degraded t addr =
  if addr >= 0 then ignore (Addr_map.insert_if_absent t.degraded addr ())

let note_budget t site = Atomic.incr (budget_counter t site)

let record_degraded t site addr =
  note_budget t site;
  mark_degraded t addr

let record_task_failure t ~site ~detail =
  Pbca_concurrent.Conc_bag.add t.stats.task_failures (site, detail)

let degraded_at t addr = Addr_map.mem t.degraded addr
let degraded_count t = Addr_map.length t.degraded

let degraded_within t ~lo ~hi =
  Addr_map.fold
    (fun a () acc -> acc || (a >= lo && a < hi))
    t.degraded false

let func_degraded t (f : func) =
  degraded_at t f.f_entry_addr
  || List.exists (fun (b : block) -> degraded_at t b.b_start) f.f_blocks
  || List.exists (degraded_at t)
       (Pbca_concurrent.Atomic_intset.to_list f.f_visited)

let task_failure_count t =
  Pbca_concurrent.Conc_bag.length t.stats.task_failures

let task_failures t = Pbca_concurrent.Conc_bag.to_list t.stats.task_failures
let past_deadline t = t.deadline < infinity && Unix.gettimeofday () > t.deadline

(* Budget-starvation fault injection: while a [Starve] fault is live, every
   enabled budget reads as 1, forcing the degradation paths without any
   hostile input. *)
let effective_budget v =
  if v > 0 && Pbca_concurrent.Fault.starved () then 1 else v

let is_candidate b = Atomic.get b.b_end < 0
let block_end b = Atomic.get b.b_end

let out_edges b =
  List.filter (fun e -> not (Atomic.get e.e_dead)) (Atomic.get b.b_out)

let in_edges b =
  List.filter (fun e -> not (Atomic.get e.e_dead)) (Atomic.get b.b_in)

let is_intra = function
  | Fallthrough | Jump | Cond_taken | Cond_fall | Call_fallthrough | Indirect
    ->
    true
  | Call | Tail_call -> false

let rec push_atomic cell x =
  let cur = Atomic.get cell in
  if not (Atomic.compare_and_set cell cur (x :: cur)) then push_atomic cell x

let new_block start =
  {
    b_start = start;
    b_end = Atomic.make (-1);
    b_term = Atomic.make None;
    b_ninsns = Atomic.make 0;
    b_out = Atomic.make [];
    b_in = Atomic.make [];
    b_watchers = Atomic.make [];
  }

let find_or_create_block t addr =
  let b, created = Addr_map.find_or_insert t.blocks addr (fun () -> new_block addr) in
  if created then Atomic.incr t.stats.blocks_created;
  (b, created)

let find_or_create_func t ~name ~from_symtab addr =
  let entry, _ = find_or_create_block t addr in
  Addr_map.find_or_insert t.funcs addr (fun () ->
      {
        f_entry_addr = addr;
        f_entry = entry;
        f_name = name;
        f_from_symtab = from_symtab;
        f_ret = Atomic.make Unset;
        f_ret_dep = Atomic.make None;
        f_waiters = Atomic.make [];
        f_visited =
          Pbca_concurrent.Atomic_intset.create ~capacity:16
            ~counters:t.stats.contention ();
        f_blocks = [];
      })

let add_edge t ?jt src dst kind =
  let e =
    {
      e_src = src;
      e_dst = dst;
      e_kind = kind;
      e_flipped = false;
      e_dead = Atomic.make false;
      e_jt = jt;
    }
  in
  push_atomic src.b_out e;
  push_atomic dst.b_in e;
  Atomic.incr t.stats.edges_created;
  e

let watch b f = push_atomic b.b_watchers f

(* Invariants 2-4: see the interface. The entry callback never touches the
   [ends] map again, so the per-shard lock cannot deadlock; it may touch
   [blocks] and [funcs] (different maps). *)
let register_end t block0 ~end_:end0 ~on_win ~on_done =
  let changed = ref [] in
  let rec go block end_ ~first =
    let continue_with =
      Addr_map.update t.ends end_ (fun cur ->
          match cur with
          | None ->
            Atomic.set block.b_end end_;
            if first then on_win block;
            changed := block :: !changed;
            (Some block, None)
          | Some other when other == block -> (Some other, None)
          | Some other ->
            Atomic.incr t.stats.splits;
            if other.b_start > block.b_start then begin
              (* we start earlier: shrink ourselves to [start, other.start)
                 and re-register at the smaller end; [other] keeps the
                 terminator. Out-edges we carried from an earlier split
                 iteration emanated from [end_] and are owned by [other],
                 which already holds the canonical copies — drop ours
                 (O_BER: outgoing edges go with the upper fragment). *)
              List.iter
                (fun e -> Atomic.set e.e_dead true)
                (Atomic.exchange block.b_out []);
              Atomic.set block.b_end other.b_start;
              Atomic.set block.b_term None;
              ignore (add_edge t block other Fallthrough);
              changed := block :: !changed;
              (Some other, Some (block, other.b_start))
            end
            else begin
              (* [other] starts earlier: it shrinks to [other.start, start);
                 we take over the terminator and its out-edges. If we
                 already carry canonical edges for [end_] from an earlier
                 split iteration, [other]'s copies are duplicates. *)
              let moved = Atomic.exchange other.b_out [] in
              if Atomic.get block.b_out = [] then
                List.iter
                  (fun e ->
                    e.e_src <- block;
                    push_atomic block.b_out e)
                  moved
              else List.iter (fun e -> Atomic.set e.e_dead true) moved;
              Atomic.set block.b_term (Atomic.get other.b_term);
              Atomic.set other.b_term None;
              Atomic.set other.b_end block.b_start;
              Atomic.set block.b_end end_;
              ignore (add_edge t other block Fallthrough);
              changed := other :: block :: !changed;
              (Some block, Some (other, block.b_start))
            end)
    in
    match continue_with with
    | None -> ()
    | Some (blk, e) -> go blk e ~first:false
  in
  go block0 end0 ~first:true;
  List.iter on_done !changed

let add_edge_at_end t ~end_ ~dst_addr kind =
  Addr_map.update t.ends end_ (fun cur ->
      match cur with
      | None -> (None, None)
      | Some owner ->
        let dst, created = find_or_create_block t dst_addr in
        ignore (add_edge t owner dst kind);
        (Some owner, Some (owner, dst, created)))

let blocks_list t =
  Addr_map.fold (fun _ b acc -> b :: acc) t.blocks []
  |> List.sort (fun a b -> compare a.b_start b.b_start)

let funcs_list t =
  Addr_map.fold (fun _ f acc -> f :: acc) t.funcs []
  |> List.sort (fun a b -> compare a.f_entry_addr b.f_entry_addr)

let pp_edge_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | Fallthrough -> "fallthrough"
    | Jump -> "jump"
    | Cond_taken -> "cond-taken"
    | Cond_fall -> "cond-fall"
    | Call -> "call"
    | Call_fallthrough -> "call-ft"
    | Indirect -> "indirect"
    | Tail_call -> "tailcall")
