module Image = Pbca_binfmt.Image
module Dbg = Pbca_debuginfo.Types
module Dbg_codec = Pbca_debuginfo.Codec
module Line_map = Pbca_debuginfo.Line_map
module Cfg = Pbca_core.Cfg
module Task_pool = Pbca_concurrent.Task_pool
module Trace = Pbca_simsched.Trace

type phase = {
  ph_name : string;
  ph_wall : float;
  ph_trace : Trace.t option;
  ph_work : int;
}

type result = {
  output : string;
  phases : phase list;
  cfg : Cfg.t;
  n_funcs : int;
  n_loops : int;
  n_stmts : int;
}

(* monotonic: a wall-clock step mid-phase must not skew phase walls *)
let time f =
  let t0 = Pbca_obs.Clock.now () in
  let v = f () in
  (v, Pbca_obs.Clock.elapsed t0)

(* phase 2: parallel per-CU debug parsing with task tracing *)
let parse_debug ~pool trace data =
  let blobs = Dbg_codec.cu_blobs data in
  let out = Array.make (Array.length blobs) None in
  Task_pool.run pool (fun spawn ->
      Array.iteri
        (fun i blob ->
          let d = Trace.capture trace in
          spawn (fun () ->
              Trace.run trace ~label:"cu" ~deps:[ d ] (fun () ->
                  Trace.tick trace (16 + (Bytes.length blob / 16));
                  out.(i) <- Some (Dbg_codec.decode_cu blob))))
        blobs);
  { Dbg.cus = Array.map Option.get out }

(* skeleton: one record per function, filled in parallel in phase 6 *)
type skeleton = {
  sk_func : Cfg.func;
  mutable sk_file : string;
  mutable sk_line : int;
  mutable sk_inline : string list;
  mutable sk_loops : (int * int * int) list;  (** header addr, depth, line *)
  mutable sk_stmts : (int * int) list;  (** addr, line *)
}

let fill_skeleton g dbg line_map trace sk =
  let f = sk.sk_func in
  Trace.tick trace 4;
  let fv = Pbca_analysis.Func_view.make g f in
  let dom = Pbca_analysis.Dominators.compute fv in
  let loops = Pbca_analysis.Loops.compute fv dom in
  Trace.tick trace (4 * Pbca_analysis.Func_view.n_blocks fv);
  (match Line_map.lookup line_map f.Cfg.f_entry_addr with
  | Some le ->
    sk.sk_file <- le.Dbg.file;
    sk.sk_line <- le.Dbg.line
  | None -> ());
  sk.sk_inline <- Line_map.inline_context dbg f.Cfg.f_entry_addr;
  sk.sk_loops <-
    Array.to_list loops.Pbca_analysis.Loops.loops
    |> List.map (fun (l : Pbca_analysis.Loops.loop) ->
           let header_addr = fv.blocks.(l.header).Cfg.b_start in
           let line =
             match Line_map.lookup line_map header_addr with
             | Some le -> le.Dbg.line
             | None -> 0
           in
           ( header_addr,
             loops.Pbca_analysis.Loops.depth.(l.header),
             line ));
  (* statement list: one entry per block head *)
  sk.sk_stmts <-
    List.filter_map
      (fun (b : Cfg.block) ->
        Trace.tick trace 1;
        match Line_map.lookup line_map b.Cfg.b_start with
        | Some le -> Some (b.Cfg.b_start, le.Dbg.line)
        | None -> None)
      f.Cfg.f_blocks

let serialize skeletons =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "<structure>\n";
  List.iter
    (fun sk ->
      let f = sk.sk_func in
      Buffer.add_string buf
        (Printf.sprintf "  <func name=%S entry=\"0x%x\" file=%S line=\"%d\"%s>\n"
           f.Cfg.f_name f.Cfg.f_entry_addr sk.sk_file sk.sk_line
           (match sk.sk_inline with
           | [] -> ""
           | ctx -> Printf.sprintf " inline=%S" (String.concat "<" ctx)));
      List.iter
        (fun (addr, depth, line) ->
          Buffer.add_string buf
            (Printf.sprintf "    <loop head=\"0x%x\" depth=\"%d\" line=\"%d\"/>\n"
               addr depth line))
        (List.sort compare sk.sk_loops);
      List.iter
        (fun (addr, line) ->
          Buffer.add_string buf
            (Printf.sprintf "    <stmt addr=\"0x%x\" line=\"%d\"/>\n" addr line))
        (List.sort compare sk.sk_stmts);
      Buffer.add_string buf "  </func>\n")
    skeletons;
  Buffer.add_string buf "</structure>\n";
  Buffer.contents buf

let run_phases ?(config = Pbca_core.Config.default) ~pool image read_phase =
  let phases = ref (Option.to_list read_phase) in
  let add name wall trace work =
    phases := { ph_name = name; ph_wall = wall; ph_trace = trace; ph_work = work } :: !phases
  in
  (* phase 2: DWARF *)
  let debug_data =
    match Image.section image ".debug" with
    | Some s -> s.Pbca_binfmt.Section.data
    | None -> Bytes.empty
  in
  let dwarf_trace = Trace.create () in
  let dbg, t2 = time (fun () -> parse_debug ~pool dwarf_trace debug_data) in
  add "dwarf" t2 (Some dwarf_trace) (Trace.total_work dwarf_trace);
  (* phase 3: line map (serial by design; paper footnote 3) *)
  let line_map, t3 = time (fun () -> Line_map.build dbg) in
  add "linemap" t3 None (Line_map.length line_map);
  (* phase 4: CFG *)
  let cfg_trace = Trace.create () in
  let g, t4 =
    time (fun () ->
        Pbca_core.Parallel.parse_and_finalize ~config ~trace:cfg_trace ~pool
          image)
  in
  add "cfg" t4 (Some cfg_trace) (Trace.total_work cfg_trace);
  (* phase 5: skeletons (serial) *)
  let funcs = Cfg.funcs_list g in
  let skeletons, t5 =
    time (fun () ->
        List.map
          (fun f ->
            {
              sk_func = f;
              sk_file = "";
              sk_line = 0;
              sk_inline = [];
              sk_loops = [];
              sk_stmts = [];
            })
          funcs)
  in
  add "skeleton" t5 None (List.length funcs);
  (* phase 6: fill, parallel over functions sorted large-first for load
     balance (paper Listing 7) *)
  let fill_trace = Trace.create () in
  let arr = Array.of_list skeletons in
  Array.sort
    (fun a b ->
      compare
        (List.length b.sk_func.Cfg.f_blocks)
        (List.length a.sk_func.Cfg.f_blocks))
    arr;
  let (), t6 =
    time (fun () ->
        Task_pool.run pool (fun spawn ->
            Array.iter
              (fun sk ->
                let d = Trace.capture fill_trace in
                spawn (fun () ->
                    Trace.run fill_trace ~label:"fill" ~deps:[ d ] (fun () ->
                        fill_skeleton g dbg line_map fill_trace sk)))
              arr))
  in
  add "fill" t6 (Some fill_trace) (Trace.total_work fill_trace);
  (* phase 7: serialize *)
  let output, t7 = time (fun () -> serialize skeletons) in
  add "emit" t7 None (String.length output / 64);
  let n_loops = List.fold_left (fun acc sk -> acc + List.length sk.sk_loops) 0 skeletons in
  let n_stmts = List.fold_left (fun acc sk -> acc + List.length sk.sk_stmts) 0 skeletons in
  {
    output;
    phases = List.rev !phases;
    cfg = g;
    n_funcs = List.length funcs;
    n_loops;
    n_stmts;
  }

let run ?config ~pool bytes =
  let image, t1 = time (fun () -> Image.read bytes) in
  let read_phase =
    Some
      {
        ph_name = "read";
        ph_wall = t1;
        ph_trace = None;
        ph_work = Bytes.length bytes / 256;
      }
  in
  run_phases ?config ~pool image read_phase

let run_image ?config ~pool image = run_phases ?config ~pool image None

let phase_wall r sub =
  List.fold_left
    (fun acc p ->
      if
        String.length p.ph_name >= String.length sub
        && String.exists (fun _ -> true) p.ph_name
        &&
        (* substring containment *)
        let rec find i =
          if i + String.length sub > String.length p.ph_name then false
          else if String.sub p.ph_name i (String.length sub) = sub then true
          else find (i + 1)
        in
        find 0
      then acc +. p.ph_wall
      else acc)
    0.0 r.phases

let total_wall r = List.fold_left (fun acc p -> acc +. p.ph_wall) 0.0 r.phases
