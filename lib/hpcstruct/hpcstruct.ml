module Image = Pbca_binfmt.Image
module Dbg = Pbca_debuginfo.Types
module Dbg_codec = Pbca_debuginfo.Codec
module Line_map = Pbca_debuginfo.Line_map
module Cfg = Pbca_core.Cfg
module Task_pool = Pbca_concurrent.Task_pool
module Channel = Pbca_concurrent.Channel
module Trace = Pbca_simsched.Trace
module Otrace = Pbca_obs.Trace

type phase = {
  ph_name : string;
  ph_wall : float;
  ph_trace : Trace.t option;
  ph_work : int;
}

type result = {
  output : string;
  phases : phase list;
  cfg : Cfg.t;
  n_funcs : int;
  n_loops : int;
  n_stmts : int;
}

(* monotonic: a wall-clock step mid-phase must not skew phase walls *)
let time f =
  let t0 = Pbca_obs.Clock.now () in
  let v = f () in
  (v, Pbca_obs.Clock.elapsed t0)

(* phase 2: parallel per-CU debug parsing with task tracing *)
let parse_debug ~pool trace data =
  let blobs = Dbg_codec.cu_blobs data in
  let out = Array.make (Array.length blobs) None in
  Task_pool.run pool (fun spawn ->
      Array.iteri
        (fun i blob ->
          let d = Trace.capture trace in
          spawn (fun () ->
              Trace.run trace ~label:"cu" ~deps:[ d ] (fun () ->
                  Trace.tick trace (16 + (Bytes.length blob / 16));
                  out.(i) <- Some (Dbg_codec.decode_cu blob))))
        blobs);
  { Dbg.cus = Array.map Option.get out }

(* skeleton: one record per function, filled in parallel in phase 6 *)
type skeleton = {
  sk_func : Cfg.func;
  mutable sk_file : string;
  mutable sk_line : int;
  mutable sk_inline : string list;
  mutable sk_loops : (int * int * int) list;  (** header addr, depth, line *)
  mutable sk_stmts : (int * int) list;  (** addr, line *)
}

let make_skeleton f =
  {
    sk_func = f;
    sk_file = "";
    sk_line = 0;
    sk_inline = [];
    sk_loops = [];
    sk_stmts = [];
  }

let fill_skeleton g dbg line_map trace sk =
  let f = sk.sk_func in
  Trace.tick trace 4;
  let fv = Pbca_analysis.Func_view.make g f in
  let dom = Pbca_analysis.Dominators.compute fv in
  let loops = Pbca_analysis.Loops.compute fv dom in
  Trace.tick trace (4 * Pbca_analysis.Func_view.n_blocks fv);
  (match Line_map.lookup line_map f.Cfg.f_entry_addr with
  | Some le ->
    sk.sk_file <- le.Dbg.file;
    sk.sk_line <- le.Dbg.line
  | None -> ());
  sk.sk_inline <- Line_map.inline_context dbg f.Cfg.f_entry_addr;
  sk.sk_loops <-
    Array.to_list loops.Pbca_analysis.Loops.loops
    |> List.map (fun (l : Pbca_analysis.Loops.loop) ->
           let header_addr = fv.blocks.(l.header).Cfg.b_start in
           let line =
             match Line_map.lookup line_map header_addr with
             | Some le -> le.Dbg.line
             | None -> 0
           in
           ( header_addr,
             loops.Pbca_analysis.Loops.depth.(l.header),
             line ));
  (* statement list: one entry per block head *)
  sk.sk_stmts <-
    List.filter_map
      (fun (b : Cfg.block) ->
        Trace.tick trace 1;
        match Line_map.lookup line_map b.Cfg.b_start with
        | Some le -> Some (b.Cfg.b_start, le.Dbg.line)
        | None -> None)
      f.Cfg.f_blocks

let serialize skeletons =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "<structure>\n";
  List.iter
    (fun sk ->
      let f = sk.sk_func in
      Buffer.add_string buf
        (Printf.sprintf "  <func name=%S entry=\"0x%x\" file=%S line=\"%d\"%s>\n"
           f.Cfg.f_name f.Cfg.f_entry_addr sk.sk_file sk.sk_line
           (match sk.sk_inline with
           | [] -> ""
           | ctx -> Printf.sprintf " inline=%S" (String.concat "<" ctx)));
      List.iter
        (fun (addr, depth, line) ->
          Buffer.add_string buf
            (Printf.sprintf "    <loop head=\"0x%x\" depth=\"%d\" line=\"%d\"/>\n"
               addr depth line))
        (List.sort compare sk.sk_loops);
      List.iter
        (fun (addr, line) ->
          Buffer.add_string buf
            (Printf.sprintf "    <stmt addr=\"0x%x\" line=\"%d\"/>\n" addr line))
        (List.sort compare sk.sk_stmts);
      Buffer.add_string buf "  </func>\n")
    skeletons;
  Buffer.add_string buf "</structure>\n";
  Buffer.contents buf

let count_result output phases g skeletons =
  let n_loops =
    List.fold_left (fun acc sk -> acc + List.length sk.sk_loops) 0 skeletons
  in
  let n_stmts =
    List.fold_left (fun acc sk -> acc + List.length sk.sk_stmts) 0 skeletons
  in
  {
    output;
    phases;
    cfg = g;
    n_funcs = List.length skeletons;
    n_loops;
    n_stmts;
  }

let debug_section image =
  match Image.section image ".debug" with
  | Some s -> s.Pbca_binfmt.Section.data
  | None -> Bytes.empty

let run_phases ?(config = Pbca_core.Config.default) ~pool image read_phase =
  let phases = ref (Option.to_list read_phase) in
  let add name wall trace work =
    phases := { ph_name = name; ph_wall = wall; ph_trace = trace; ph_work = work } :: !phases
  in
  (* phase 2: DWARF *)
  let debug_data = debug_section image in
  let dwarf_trace = Trace.create () in
  let dbg, t2 = time (fun () -> parse_debug ~pool dwarf_trace debug_data) in
  add "dwarf" t2 (Some dwarf_trace) (Trace.total_work dwarf_trace);
  (* phase 3: line map (serial by design; paper footnote 3) *)
  let line_map, t3 = time (fun () -> Line_map.build dbg) in
  add "linemap" t3 None (Line_map.length line_map);
  (* phase 4: CFG *)
  let cfg_trace = Trace.create () in
  let g, t4 =
    time (fun () ->
        Pbca_core.Parallel.parse_and_finalize ~config ~trace:cfg_trace ~pool
          image)
  in
  add "cfg" t4 (Some cfg_trace) (Trace.total_work cfg_trace);
  (* phase 5: skeletons. The function array is materialized once here and
     passed through skeleton, fill and emit — the phases downstream must
     not re-walk the graph's function map for a list they already have. *)
  let funcs = Array.of_list (Cfg.funcs_list g) in
  let skeletons, t5 = time (fun () -> Array.map make_skeleton funcs) in
  add "skeleton" t5 None (Array.length funcs);
  (* phase 6: fill, parallel over functions sorted large-first for load
     balance (paper Listing 7). Schwartzian decorate: the block count is
     computed once per skeleton, not O(log n) times per element inside
     the comparator ([List.length] per comparison made the sort
     O(n log n * len)). *)
  let fill_trace = Trace.create () in
  let decorated =
    Array.map (fun sk -> (List.length sk.sk_func.Cfg.f_blocks, sk)) skeletons
  in
  Array.sort (fun (na, _) (nb, _) -> compare nb na) decorated;
  let (), t6 =
    time (fun () ->
        Task_pool.run pool (fun spawn ->
            Array.iter
              (fun (_, sk) ->
                let d = Trace.capture fill_trace in
                spawn (fun () ->
                    Trace.run fill_trace ~label:"fill" ~deps:[ d ] (fun () ->
                        fill_skeleton g dbg line_map fill_trace sk)))
              decorated))
  in
  add "fill" t6 (Some fill_trace) (Trace.total_work fill_trace);
  (* phase 7: serialize, in the skeleton array's (entry address) order *)
  let skeleton_list = Array.to_list skeletons in
  let output, t7 = time (fun () -> serialize skeleton_list) in
  add "emit" t7 None (String.length output / 64);
  count_result output (List.rev !phases) g skeleton_list

(* ------------------------------------------------------------------ *)
(* Streaming pipeline (PR7): no phase barriers after [read]. DWARF
   parsing runs in a high-priority pool region overlapping CFG
   construction; the finalize readiness protocol publishes each function
   on a bounded channel the moment its facts are settled, and consumer
   tasks fill skeletons as functions arrive instead of after the
   whole-graph barrier. Output is byte-identical to [run_phases]: the
   filled skeletons are re-ordered by entry address before emission. *)

let stream_channel_capacity = 64

(* record the channel's occupancy into the graph's stats so
   [Summary.pp_stats] (and the adopted metrics gauges) can report it *)
let record_occupancy g ch =
  let s = g.Cfg.stats in
  Atomic.set s.Cfg.stream_hwm (Channel.high_water ch);
  Atomic.set s.Cfg.stream_consumer_idle_us
    (int_of_float (Channel.consumer_idle_wall ch *. 1e6));
  Atomic.set s.Cfg.stream_producer_block_us
    (int_of_float (Channel.producer_block_wall ch *. 1e6))

let run_phases_streamed ?(config = Pbca_core.Config.default)
    ?(otrace = Otrace.disabled) ~pool image read_phase =
  let phases = ref (Option.to_list read_phase) in
  let add name wall trace work =
    phases := { ph_name = name; ph_wall = wall; ph_trace = trace; ph_work = work } :: !phases
  in
  let debug_data = debug_section image in
  let dwarf_trace = Trace.create () in
  let cfg_trace = Trace.create () in
  let fill_trace = Trace.create () in
  let n = Task_pool.threads pool in
  if n = 1 then begin
    (* Sequential streaming: same pipeline shape with the calling domain
       as the only worker, so no channel and no helper domains — each
       published function is filled synchronously inside [on_ready].
       There is still no barrier between finalization and fill. *)
    let dbg, t2 = time (fun () -> parse_debug ~pool dwarf_trace debug_data) in
    add "dwarf" t2 (Some dwarf_trace) (Trace.total_work dwarf_trace);
    let line_map, t3 = time (fun () -> Line_map.build dbg) in
    add "linemap" t3 None (Line_map.length line_map);
    let filled = ref [] in
    let g, t4 =
      time (fun () ->
          let g =
            Pbca_core.Parallel.parse ~config ~trace:cfg_trace ~otrace ~pool
              image
          in
          Otrace.with_span otrace ~phase:"finalize" "finalize" (fun () ->
              Pbca_core.Finalize.run ~pool g
                ~on_ready:(fun f ->
                  let sk = make_skeleton f in
                  Otrace.with_span otrace ~phase:"stage" "fill" (fun () ->
                      Trace.run fill_trace ~label:"fill" ~deps:[] (fun () ->
                          fill_skeleton g dbg line_map fill_trace sk));
                  filled := sk :: !filled));
          Otrace.drain otrace;
          g)
    in
    add "stream" t4 (Some cfg_trace)
      (Trace.total_work cfg_trace + Trace.total_work fill_trace);
    let skeletons =
      List.sort
        (fun a b ->
          compare a.sk_func.Cfg.f_entry_addr b.sk_func.Cfg.f_entry_addr)
        !filled
    in
    let output, t7 = time (fun () -> serialize skeletons) in
    add "emit" t7 None (String.length output / 64);
    count_result output (List.rev !phases) g skeletons
  end
  else begin
    (* Overlapping regions: the dwarf region (priority 2) outranks the
       parse's internal regions (priority 0), so workers clear the small
       debug-info parse first — it gates the fill consumers. The consumer
       region takes the lowest priority: its tasks block in [recv] until
       the channel closes, and nothing else in the pool may wander into
       them (a master awaiting another region only helps strictly
       higher-priority regions). *)
    let blobs = Dbg_codec.cu_blobs debug_data in
    let dwarf_out = Array.make (Array.length blobs) None in
    let dwarf_h =
      Task_pool.submit ~priority:2 pool (fun spawn ->
          Array.iteri
            (fun i blob ->
              let d = Trace.capture dwarf_trace in
              spawn (fun () ->
                  Trace.run dwarf_trace ~label:"cu" ~deps:[ d ] (fun () ->
                      Trace.tick dwarf_trace (16 + (Bytes.length blob / 16));
                      dwarf_out.(i) <- Some (Dbg_codec.decode_cu blob))))
            blobs)
    in
    let ch =
      Channel.create ~otrace ~name:"funcs" ~capacity:stream_channel_capacity ()
    in
    (* gate: dwarf + line map ready. Opened by a dedicated task in the
       consumer region (spawned last, so its worker pops it first). *)
    let gate = Atomic.make None in
    let gref = Atomic.make None in
    let filled = Atomic.make [] in
    let rec push_filled sk =
      let cur = Atomic.get filled in
      if not (Atomic.compare_and_set filled cur (sk :: cur)) then
        push_filled sk
    in
    let fill_now g dbg line_map f =
      let sk = make_skeleton f in
      Otrace.with_span otrace ~phase:"stage" "fill" (fun () ->
          Trace.run fill_trace ~label:"fill" ~deps:[] (fun () ->
              fill_skeleton g dbg line_map fill_trace sk));
      push_filled sk
    in
    let consumer () =
      (* functions that arrive before the gate opens are deferred, never
         blocked on: the channel must keep draining so the publisher is
         only ever backpressured by fill throughput, not by dwarf *)
      let deferred = ref [] in
      let flush_deferred () =
        match (Atomic.get gate, Atomic.get gref) with
        | Some (dbg, lm), Some g ->
          List.iter (fun f -> fill_now g dbg lm f) (List.rev !deferred);
          deferred := []
        | _ -> ()
      in
      let rec loop () =
        match Channel.recv ch with
        | Some f ->
          (match (Atomic.get gate, Atomic.get gref) with
          | Some (dbg, lm), Some g ->
            flush_deferred ();
            fill_now g dbg lm f
          | _ -> deferred := f :: !deferred);
          loop ()
        | None ->
          (* the producer opens the gate before closing the channel *)
          flush_deferred ()
      in
      loop ()
    in
    let consumers_h =
      Task_pool.submit ~priority:(-1) pool (fun spawn ->
          for _ = 1 to max 1 (n - 1) do
            spawn consumer
          done;
          spawn (fun () ->
              (* the gate task helps drain the dwarf region, then builds
                 the line map and opens the gate for the consumers *)
              Task_pool.await dwarf_h;
              let dbg = { Dbg.cus = Array.map Option.get dwarf_out } in
              let lm = Line_map.build dbg in
              Atomic.set gate (Some (dbg, lm))))
    in
    let g, t_stream =
      time (fun () ->
          let g =
            Pbca_core.Parallel.parse ~config ~trace:cfg_trace ~otrace ~pool
              image
          in
          Atomic.set gref (Some g);
          Otrace.with_span otrace ~phase:"finalize" "finalize" (fun () ->
              Pbca_core.Finalize.run ~pool g
                ~on_ready:(fun f -> Channel.send ch f));
          (* consumers flush deferred work when the channel closes, so the
             gate must be open by then; the gate task cannot be wedged
             (the dwarf region drains independently of this wait) *)
          while Atomic.get gate = None do
            Domain.cpu_relax ()
          done;
          Channel.close ch;
          Task_pool.await consumers_h;
          record_occupancy g ch;
          Otrace.drain otrace;
          g)
    in
    add "stream" t_stream (Some cfg_trace)
      (Trace.total_work dwarf_trace
      + Trace.total_work cfg_trace
      + Trace.total_work fill_trace);
    let skeletons =
      List.sort
        (fun a b ->
          compare a.sk_func.Cfg.f_entry_addr b.sk_func.Cfg.f_entry_addr)
        (Atomic.get filled)
    in
    let output, t7 = time (fun () -> serialize skeletons) in
    add "emit" t7 None (String.length output / 64);
    count_result output (List.rev !phases) g skeletons
  end

let read_phase_of bytes =
  let image, t1 = time (fun () -> Image.read bytes) in
  ( image,
    Some
      {
        ph_name = "read";
        ph_wall = t1;
        ph_trace = None;
        ph_work = Bytes.length bytes / 256;
      } )

let run ?config ~pool bytes =
  let image, read_phase = read_phase_of bytes in
  run_phases ?config ~pool image read_phase

let run_image ?config ~pool image = run_phases ?config ~pool image None

let run_streamed ?config ?otrace ~pool bytes =
  let image, read_phase = read_phase_of bytes in
  run_phases_streamed ?config ?otrace ~pool image read_phase

let run_image_streamed ?config ?otrace ~pool image =
  run_phases_streamed ?config ?otrace ~pool image None

let phase_wall r sub =
  List.fold_left
    (fun acc p ->
      if
        String.length p.ph_name >= String.length sub
        && String.exists (fun _ -> true) p.ph_name
        &&
        (* substring containment *)
        let rec find i =
          if i + String.length sub > String.length p.ph_name then false
          else if String.sub p.ph_name i (String.length sub) = sub then true
          else find (i + 1)
        in
        find 0
      then acc +. p.ph_wall
      else acc)
    0.0 r.phases

let total_wall r = List.fold_left (fun acc p -> acc +. p.ph_wall) 0.0 r.phases
