(** Program-structure recovery: the hpcstruct case study (paper Section 7).

    Relates machine instructions back to source constructs: for every
    function, its source file and line, loop nests (with the line of each
    loop head), inline call contexts, and per-block line ranges — the
    information HPCToolkit uses to attribute performance measurements.

    Execution follows the seven phases of paper Figure 2:
    1. read the binary image from bytes           (serial)
    2. parse debug-info compilation units         (parallel)
    3. build the address-to-line lookup structure (serial, by design)
    4. construct the CFG                          (parallel)
    5. build output skeletons                     (serial)
    6. fill skeletons with loops/lines/inlines    (parallel)
    7. serialize                                  (serial tail)

    Each phase is timed and, when parallel, records a task trace so the
    schedule simulator can replay it at any thread count. *)

type phase = {
  ph_name : string;
  ph_wall : float;  (** measured wall-clock seconds on this machine *)
  ph_trace : Pbca_simsched.Trace.t option;  (** None for serial phases *)
  ph_work : int;  (** work units (trace total, or a serial estimate) *)
}

type result = {
  output : string;  (** the serialized structure file *)
  phases : phase list;
  cfg : Pbca_core.Cfg.t;
  n_funcs : int;
  n_loops : int;
  n_stmts : int;
}

val run :
  ?config:Pbca_core.Config.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Bytes.t ->
  result
(** [run ~pool bytes] processes a serialized SBF image. *)

val run_image :
  ?config:Pbca_core.Config.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  result
(** Like {!run} but skips phase 1 (the image is already loaded). *)

val run_streamed :
  ?config:Pbca_core.Config.t ->
  ?otrace:Pbca_obs.Trace.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Bytes.t ->
  result
(** Streaming pipeline (PR7): instead of the phase barriers of {!run},
    debug-info parsing runs in a high-priority pool region overlapping
    CFG construction, and the finalize readiness protocol publishes each
    function on a bounded {!Pbca_concurrent.Channel} as soon as its facts
    settle; consumer tasks in a low-priority region fill skeletons as
    functions arrive. Phases after [read] collapse into one overlapped
    [stream] phase plus the serial [emit] tail ([dwarf]/[linemap] stay
    separate at one thread, where the pipeline degenerates to the calling
    domain filling each function synchronously at publication). The
    output is byte-identical to {!run}. Channel occupancy (high-water
    mark, consumer idle and producer block wall) is recorded into the
    graph's stats and surfaces through {!Pbca_core.Summary.pp_stats} and
    the metrics gauges. When [?otrace] is supplied, channel waits and
    per-function fills record spans under the [channel] and [stage]
    phases. *)

val run_image_streamed :
  ?config:Pbca_core.Config.t ->
  ?otrace:Pbca_obs.Trace.t ->
  pool:Pbca_concurrent.Task_pool.t ->
  Pbca_binfmt.Image.t ->
  result
(** Like {!run_streamed} but skips phase 1 (the image is already loaded). *)

val phase_wall : result -> string -> float
(** Total wall time of phases whose name contains the given substring. *)

val total_wall : result -> float
