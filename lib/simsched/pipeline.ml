type spec = {
  sp_pre : (string * int array) list;
  sp_produce : int array;
  sp_consume : int array;
  sp_tail : int;
}

let check spec =
  if Array.length spec.sp_produce <> Array.length spec.sp_consume then
    invalid_arg "Pipeline: produce/consume length mismatch"

(* Barrier DAG: each stage is an epoch of independent tasks; the replay's
   epoch rule (later epochs start only after earlier ones drain) IS the
   phase barrier being modelled. *)
let barrier_tasks spec =
  check spec;
  let out = ref [] and id = ref 0 and epoch = ref 0 in
  let task label cost deps =
    let t = { Trace.id = !id; label; cost; deps; epoch = !epoch } in
    incr id;
    out := t :: !out;
    t.id
  in
  List.iter
    (fun (name, costs) ->
      Array.iter (fun c -> ignore (task name c [])) costs;
      incr epoch)
    spec.sp_pre;
  Array.iter (fun c -> ignore (task "produce" c [])) spec.sp_produce;
  incr epoch;
  Array.iter (fun c -> ignore (task "consume" c [])) spec.sp_consume;
  incr epoch;
  if spec.sp_tail > 0 then ignore (task "tail" spec.sp_tail []);
  List.rev !out

(* Streamed DAG: a single epoch; ordering is only what the data demands.
   Pre-stages chain (each task needs all of the previous pre-stage),
   production is unordered, and consumer [i] needs exactly its own
   producer plus the last pre-stage — so consumption starts as soon as
   the first function settles instead of after the whole phase. *)
let streamed_tasks spec =
  check spec;
  let out = ref [] and id = ref 0 in
  let dep_on i = { Trace.dep_task = i; dep_offset = max_int } in
  let task label cost deps =
    let t = { Trace.id = !id; label; cost; deps; epoch = 0 } in
    incr id;
    out := t :: !out;
    t.id
  in
  let prev_stage = ref [] in
  List.iter
    (fun (name, costs) ->
      let deps = List.map dep_on !prev_stage in
      prev_stage :=
        Array.to_list (Array.map (fun c -> task name c deps) costs))
    spec.sp_pre;
  let gate = List.map dep_on !prev_stage in
  let consumers =
    Array.map
      (fun i ->
        let p = task "produce" spec.sp_produce.(i) [] in
        task "consume" spec.sp_consume.(i) (dep_on p :: gate))
      (Array.init (Array.length spec.sp_produce) Fun.id)
  in
  if spec.sp_tail > 0 then
    ignore
      (task "tail" spec.sp_tail
         (Array.to_list (Array.map dep_on consumers)));
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Trace-fed variant: the produce stage keeps the {e recorded} task DAG
   of the real CFG construction (quiescence rounds and wake-up deps
   included) instead of a flat per-function decomposition — the rounds'
   dependency stalls are exactly the idle slots streaming fills with
   dwarf and fill work, so flattening them understates the barrier
   driver. Internal barriers of a component are preserved: as epochs in
   the barrier model, as explicit join-task dependencies in the
   streamed one (a zero-cost join task per internal epoch keeps the
   dependency count linear). *)

type staged = {
  tg_pre : (string * Trace.task list) list;
  tg_produce : Trace.task list;
  tg_publish_label : string option;
  tg_consume : int array;
  tg_tail : int;
}

(* split a component's tasks into its internal epochs, in order *)
let epochs_of tasks =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (t : Trace.task) ->
      match Hashtbl.find_opt tbl t.Trace.epoch with
      | Some l -> l := t :: !l
      | None -> Hashtbl.replace tbl t.Trace.epoch (ref [ t ]))
    tasks;
  Hashtbl.fold (fun e l acc -> (e, List.rev !l) :: acc) tbl []
  |> List.sort compare |> List.map snd

type emitter = {
  mutable next_id : int;
  mutable acc : Trace.task list;
}

let emit em label cost deps epoch =
  let t = { Trace.id = em.next_id; label; cost; deps; epoch } in
  em.next_id <- em.next_id + 1;
  em.acc <- t :: em.acc;
  t.id

(* re-emit a component's tasks with fresh ids; [epoch_of] maps the
   internal epoch index, [extra_deps] gates the whole component.
   In-component deps are remapped; deps on tasks outside the component
   (or progress-point offsets) collapse to completion deps on the
   remapped source when present, and are dropped otherwise. *)
let re_emit em tasks ~epoch_of ~extra_deps =
  let remap = Hashtbl.create (List.length tasks * 2) in
  let out_ids = ref [] in
  List.iteri
    (fun ei epoch_tasks ->
      List.iter
        (fun (t : Trace.task) ->
          let deps =
            List.filter_map
              (fun (d : Trace.dep) ->
                match Hashtbl.find_opt remap d.Trace.dep_task with
                | Some id ->
                  Some { Trace.dep_task = id; dep_offset = d.Trace.dep_offset }
                | None -> None)
              t.Trace.deps
          in
          let id = emit em t.Trace.label t.Trace.cost (deps @ extra_deps) (epoch_of ei) in
          Hashtbl.replace remap t.Trace.id id;
          out_ids := id :: !out_ids)
        epoch_tasks)
    (epochs_of tasks);
  List.rev !out_ids

let dep_on i = { Trace.dep_task = i; dep_offset = max_int }

(* barrier model: every component epoch is a global barrier epoch *)
let staged_barrier st =
  let em = { next_id = 0; acc = [] } in
  let base = ref 0 in
  let component tasks =
    let n_epochs = max 1 (List.length (epochs_of tasks)) in
    let b = !base in
    ignore (re_emit em tasks ~epoch_of:(fun ei -> b + ei) ~extra_deps:[]);
    base := b + n_epochs
  in
  List.iter (fun (_, tasks) -> component tasks) st.tg_pre;
  component st.tg_produce;
  Array.iter (fun c -> ignore (emit em "consume" c [] !base)) st.tg_consume;
  incr base;
  if st.tg_tail > 0 then ignore (emit em "tail" st.tg_tail [] !base);
  List.rev em.acc

(* streamed model: one epoch; internal barriers become join-task deps,
   cross-component ordering is only what the data demands *)
let staged_streamed st =
  let em = { next_id = 0; acc = [] } in
  (* re-emit with internal epochs turned into chained zero-cost joins;
     recorded in-component deps are kept (remapped) so the streamed
     model is no more parallel than the real trace within a round *)
  let run_epochs ?(extra_deps = []) epoch_list =
    let remap = Hashtbl.create 64 in
    let gate = ref extra_deps in
    List.iter
      (fun epoch_tasks ->
        let ids =
          List.map
            (fun (t : Trace.task) ->
              let deps =
                List.filter_map
                  (fun (d : Trace.dep) ->
                    match Hashtbl.find_opt remap d.Trace.dep_task with
                    | Some id ->
                      Some
                        { Trace.dep_task = id; dep_offset = d.Trace.dep_offset }
                    | None -> None)
                  t.Trace.deps
              in
              let id = emit em t.Trace.label t.Trace.cost (deps @ !gate) 0 in
              Hashtbl.replace remap t.Trace.id id;
              id)
            epoch_tasks
        in
        gate := [ dep_on (emit em "join" 0 (List.map dep_on ids) 0) ])
      epoch_list;
    !gate
  in
  let component ?extra_deps tasks = run_epochs ?extra_deps (epochs_of tasks) in
  let pre_gate =
    List.fold_left
      (fun gate (_, tasks) -> component ~extra_deps:gate tasks)
      [] st.tg_pre
  in
  (* The readiness protocol publishes each function the moment its own
     fused boundary pass (the last produce epoch, when labelled as the
     publish pass) completes — so consumer [i] waits for one publish
     task, not the whole epoch. Pairing by position is a permutation of
     the real function->task assignment; it conserves work and the
     makespan effect of the permutation is second order. Without a
     publish epoch, publication is conservative: the full produce DAG. *)
  let produce_epochs = epochs_of st.tg_produce in
  let publish_tasks =
    match (st.tg_publish_label, List.rev produce_epochs) with
    | Some lbl, last :: _ :: _
      when last <> [] && List.for_all (fun (t : Trace.task) -> t.Trace.label = lbl) last ->
      Some last
    | _ -> None
  in
  let consume_ids =
    match publish_tasks with
    | Some last ->
      let rounds_gate =
        run_epochs (List.filteri (fun i _ -> i < List.length produce_epochs - 1)
                      produce_epochs)
      in
      let publish_ids =
        Array.of_list
          (List.map
             (fun (t : Trace.task) ->
               emit em t.Trace.label t.Trace.cost rounds_gate 0)
             last)
      in
      let n = Array.length publish_ids in
      Array.mapi
        (fun i c ->
          emit em "consume" c (dep_on publish_ids.(i mod n) :: pre_gate) 0)
        st.tg_consume
    | None ->
      let produce_gate = component st.tg_produce in
      Array.map
        (fun c -> emit em "consume" c (produce_gate @ pre_gate) 0)
        st.tg_consume
  in
  if st.tg_tail > 0 then
    ignore
      (emit em "tail" st.tg_tail
         (Array.to_list (Array.map dep_on consume_ids))
         0);
  List.rev em.acc

(* Amdahl back-fit: with speedup [s] at [t] threads, the serial fraction
   a workload would need under Amdahl's law to scale exactly like this —
   s = 1 / (f + (1-f)/t)  =>  f = (t/s - 1) / (t - 1). *)
let serial_fraction ~threads ~speedup =
  if threads <= 1 then 0.0
  else
    let t = float_of_int threads in
    Float.max 0.0 ((t /. speedup) -. 1.0) /. (t -. 1.0)

type point = {
  pt_threads : int;
  pt_barrier_makespan : int;
  pt_streamed_makespan : int;
  pt_pipeline_speedup : float;
  pt_barrier_serial_fraction : float;
  pt_streamed_serial_fraction : float;
}

let scan_pair ~bus ~threads barrier streamed =
  let base tasks = (Replay.simulate ~bus ~threads:1 tasks).Replay.makespan in
  let b1 = base barrier and s1 = base streamed in
  List.map
    (fun n ->
      let bm = (Replay.simulate ~bus ~threads:n barrier).Replay.makespan in
      let sm = (Replay.simulate ~bus ~threads:n streamed).Replay.makespan in
      {
        pt_threads = n;
        pt_barrier_makespan = bm;
        pt_streamed_makespan = sm;
        pt_pipeline_speedup = float_of_int bm /. float_of_int (max 1 sm);
        pt_barrier_serial_fraction =
          serial_fraction ~threads:n
            ~speedup:(float_of_int b1 /. float_of_int (max 1 bm));
        pt_streamed_serial_fraction =
          serial_fraction ~threads:n
            ~speedup:(float_of_int s1 /. float_of_int (max 1 sm));
      })
    threads

let scan ?(bus = 0.0) ~threads spec =
  scan_pair ~bus ~threads (barrier_tasks spec) (streamed_tasks spec)

let staged_scan ?(bus = 0.0) ~threads st =
  scan_pair ~bus ~threads (staged_barrier st) (staged_streamed st)

let costs_of tasks label =
  List.filter (fun (t : Trace.task) -> t.label = label) tasks
  |> List.sort (fun (a : Trace.task) (b : Trace.task) -> compare a.id b.id)
  |> List.map (fun (t : Trace.task) -> t.cost)
  |> Array.of_list
