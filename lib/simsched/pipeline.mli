(** Pipelined-DAG scaling model (PR7).

    The streaming pipeline replaces phase barriers with per-function
    dataflow, and this module quantifies where that moves the Amdahl
    ceiling: the same per-task costs are scheduled by {!Replay} twice —
    once with each stage as a barrier epoch (the pre-PR7 drivers) and
    once as a single epoch whose only ordering edges are the data
    dependencies (pre-stages chain, consumer [i] waits for producer [i]
    and the last pre-stage, the serial tail waits for all consumers).
    At high simulated thread counts the barrier model's makespan is
    bounded below by the sum of per-stage critical paths plus every
    serial stage, while the streamed model hides the pre-stages and
    consumer work behind production — the measured serial-fraction drop
    is the pipeline's headroom gain. *)

type spec = {
  sp_pre : (string * int array) list;
      (** gating pre-stages in order (e.g. DWARF CUs, then the serial
          line map as a singleton array); each chains on the previous *)
  sp_produce : int array;  (** per-function production cost (CFG share) *)
  sp_consume : int array;
      (** per-function consumer cost (fill / feature extraction); same
          length as [sp_produce] *)
  sp_tail : int;  (** serial tail (emit); [0] = none *)
}

val barrier_tasks : spec -> Trace.task list
(** One barrier epoch per stage, matching the phase-barrier drivers. *)

val streamed_tasks : spec -> Trace.task list
(** Single epoch; ordering is only the data dependencies above. *)

type staged = {
  tg_pre : (string * Trace.task list) list;
      (** gating pre-stages in order, each a recorded task list (internal
          epochs preserved); each stage chains on the previous one *)
  tg_produce : Trace.task list;
      (** the recorded CFG-construction trace, quiescence rounds and
          wake-up dependencies included — flattening these to a per-
          function array (as {!spec} does) lets the barrier model scale
          perfectly and understates what streaming buys, because the
          rounds' dependency stalls are exactly the idle slots the
          streamed schedule fills with pre-stage and consumer work *)
  tg_publish_label : string option;
      (** label of the per-function publish pass ({!Finalize}'s fused
          boundary epoch — the last produce epoch). When set and the
          last produce epoch carries it, the streamed model gates
          consumer [i] on its own publish task (the readiness protocol)
          instead of the full produce join; [None] falls back to the
          conservative full join. *)
  tg_consume : int array;  (** per-function consumer cost *)
  tg_tail : int;  (** serial tail; [0] = none *)
}

val staged_barrier : staged -> Trace.task list
(** Barrier model from recorded traces: every internal epoch of every
    component is a global barrier epoch, components run strictly in
    sequence — the pre-PR7 drivers. *)

val staged_streamed : staged -> Trace.task list
(** Streamed model from recorded traces: a single epoch in which each
    component's internal rounds become zero-cost join-task dependencies
    (recorded in-round dependencies are kept), pre-stages chain,
    production is unordered relative to the pre-stages, and each
    consumer waits for the last pre-stage plus its publish task when
    [tg_publish_label] matches (the full produce DAG otherwise). *)

val serial_fraction : threads:int -> speedup:float -> float
(** Amdahl back-fit: the serial fraction [f] with
    [speedup = 1 / (f + (1-f)/threads)]; [0.] at one thread. *)

type point = {
  pt_threads : int;
  pt_barrier_makespan : int;
  pt_streamed_makespan : int;
  pt_pipeline_speedup : float;  (** barrier / streamed makespan *)
  pt_barrier_serial_fraction : float;
  pt_streamed_serial_fraction : float;
}

val scan : ?bus:float -> threads:int list -> spec -> point list
(** Simulate both models at each thread count. [bus] defaults to [0.0]
    (pure task-graph bound) so the serial fractions measure DAG shape,
    not the memory-system ceiling. *)

val staged_scan : ?bus:float -> threads:int list -> staged -> point list
(** {!scan} over {!staged_barrier} / {!staged_streamed}. *)

val costs_of : Trace.task list -> string -> int array
(** Per-task costs of every task with the given label, in id order —
    for building a {!spec} from a recorded run. *)
