module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg

type term =
  | T_ret
  | T_halt
  | T_jmp of int
  | T_cond of Insn.cond * int
  | T_call of int
  | T_call_noret of int
  | T_icall of int
  | T_tailcall of int
  | T_jumptable of { targets : int list; spilled : bool }
  | T_stub of int
  | T_fall

type bspec = { bs_body : Insn.t list; bs_term : term }

type fspec = {
  fs_name : string;
  fs_blocks : bspec array;
  fs_frame : bool;
  fs_cold : int option;
  fs_secondary : int option;
  fs_cu : int;
  fs_error_style : bool;
  fs_noreturn_leaf : bool;
}

type stub_mode = Shared | Tail | Mixed

type sspec = {
  ss_body : Insn.t list;
  ss_ret : bool;
  ss_mode : stub_mode;
  ss_sharers : int list;
}

type t = {
  sp_profile : Profile.t;
  sp_funcs : fspec array;
  sp_stubs : sspec array;
  sp_fptable : int array;
  sp_data : Bytes.t option array;
}

(* ------------------------------------------------------------------ *)
(* Random straight-line bodies.                                        *)

let body_regs = Array.init 14 Reg.of_int (* r0-r13: never touch fp/sp *)

let gen_insn rng ~frame : Insn.t =
  let r () = Rng.choose_arr rng body_regs in
  match Rng.int rng 12 with
  | 0 -> Mov_ri (r (), Rng.range rng (-1000) 1000)
  | 1 -> Mov_rr (r (), r ())
  | 2 -> Add (r (), r ())
  | 3 -> Sub (r (), r ())
  | 4 -> Mul (r (), r ())
  | 5 -> Xor (r (), r ())
  | 6 -> And_ (r (), r ())
  | 7 -> Shl (r (), 1 + Rng.int rng 31)
  | 8 ->
    if frame then Load (r (), Reg.fp, -8 * (1 + Rng.int rng 8))
    else Load (r (), r (), 8 * Rng.int rng 8)
  | 9 ->
    if frame then Store (Reg.fp, -8 * (1 + Rng.int rng 8), r ())
    else Cmp_rr (r (), r ())
  | 10 -> Cmp_ri (r (), Rng.range rng 0 255)
  | _ -> Lea (r (), Rng.range rng (-4096) 4096)

let gen_body rng ~frame n = List.init n (fun _ -> gen_insn rng ~frame)

(* ------------------------------------------------------------------ *)
(* Function skeletons: a forward scan that keeps the invariant "block i
   is reachable when its terminator is chosen" — either block i-1 falls
   through into it, or an earlier block targeted it explicitly. *)

type gen_ctx = {
  p : Profile.t;
  rng : Rng.t;
  n_funcs : int;
  noreturn_leaves : int list;
  error_idx : int option;
}

let is_fallthrough_term = function
  | T_cond _ | T_call _ | T_icall _ | T_fall -> true
  | T_ret | T_halt | T_jmp _ | T_call_noret _ | T_tailcall _ | T_jumptable _
  | T_stub _ ->
    false

let any_cond rng : Insn.cond =
  Rng.choose rng [ Insn.Eq; Insn.Ne; Insn.Lt; Insn.Ge; Insn.Gt; Insn.Le ]

(* Choose a forward conditional target, preferring blocks not yet reachable
   so the whole function gets covered. *)
let pick_forward rng targeted lo hi =
  let untargeted = ref [] in
  for j = lo to hi do
    if not targeted.(j) then untargeted := j :: !untargeted
  done;
  match !untargeted with
  | [] -> Rng.range rng lo hi
  | us when Rng.bool rng 0.7 -> Rng.choose rng us
  | _ -> Rng.range rng lo hi

let gen_ender ctx ~fidx ~frame:_ ~i ~n rng : term =
  let p = ctx.p in
  let pick_callee () = Rng.int rng ctx.n_funcs in
  let r = Rng.float rng in
  if r < p.p_tail_call && ctx.n_funcs > 1 then begin
    (* avoid self tail calls: they are just loops to the entry *)
    let callee = pick_callee () in
    if callee = fidx then T_ret else T_tailcall callee
  end
  else if r < p.p_tail_call +. p.p_noreturn_call && ctx.noreturn_leaves <> []
  then begin
    match (ctx.error_idx, Rng.bool rng 0.3) with
    | Some e, true -> T_call_noret e (* error(nonzero): unmatchable *)
    | _ -> T_call_noret (Rng.choose rng ctx.noreturn_leaves)
  end
  else if r < p.p_tail_call +. p.p_noreturn_call +. 0.08 && i > 0 then
    T_jmp (Rng.int rng (max 1 i)) (* back edge: loop *)
  else if n - 1 = i || Rng.bool rng 0.9 then T_ret
  else T_ret

(* Flattened / opaque obfuscated shape (PR9): an opaque conditional chain
   (blocks 0..k-1) funnels into a jump-table dispatcher (block k) whose
   case blocks all branch back to it; block k+1 is the bounds-check
   default and the only exit. The dispatcher is deliberately not block 0:
   a branch back to the entry reads as a tail call (see [block_reachable]
   below), which would make ground truth depend on whether the image
   still carries its symbols. *)
let gen_flattened ctx ~fidx ~cu rng : fspec =
  let p = ctx.p in
  let frame = Rng.bool rng p.p_frame in
  let k = 2 + Rng.int rng 3 in
  let m =
    Rng.range rng p.jt_min_targets (max p.jt_min_targets p.jt_max_targets)
  in
  let n = k + 2 + m in
  let block i =
    let body_n = Rng.range rng p.min_body_insns p.max_body_insns in
    let body = gen_body rng ~frame body_n in
    let term =
      if i < k then T_cond (any_cond rng, Rng.range rng (i + 1) k)
      else if i = k then
        T_jumptable
          { targets = List.init m (fun j -> k + 2 + j); spilled = false }
      else if i = k + 1 then T_ret
      else T_jmp k
    in
    { bs_body = body; bs_term = term }
  in
  {
    fs_name = Printf.sprintf "fn_%04d" fidx;
    fs_blocks = Array.init n block;
    fs_frame = frame;
    fs_cold = None;
    fs_secondary = None;
    fs_cu = cu;
    fs_error_style = false;
    fs_noreturn_leaf = false;
  }

let gen_function ctx ~fidx ~cu : fspec =
  let p = ctx.p in
  let rng = Rng.split ctx.rng in
  if
    p.p_flatten > 0.0
    && (not (List.mem fidx ctx.noreturn_leaves))
    && Rng.bool rng p.p_flatten
  then gen_flattened ctx ~fidx ~cu rng
  else
  let frame = Rng.bool rng p.p_frame in
  let noreturn_leaf = List.mem fidx ctx.noreturn_leaves in
  (* Reserve the last block as a secondary-entry region when drawn. *)
  let want_secondary =
    (not noreturn_leaf) && Rng.bool rng p.p_secondary_entry
  in
  let n_main =
    let n = Rng.range rng p.min_blocks p.max_blocks in
    if noreturn_leaf then 1 else n
  in
  let n = n_main + if want_secondary then 1 else 0 in
  let targeted = Array.make (n + 1) false in
  let terms = Array.make n T_ret in
  let bodies = Array.make n [] in
  let jt_budget = ref (if Rng.bool rng p.p_jump_table then 1 + Rng.int rng 2 else 0) in
  let i = ref 0 in
  while !i < n_main do
    let idx = !i in
    let body_n = Rng.range rng p.min_body_insns p.max_body_insns in
    bodies.(idx) <- gen_body rng ~frame body_n;
    let remaining = n_main - idx - 1 in
    let term =
      if noreturn_leaf then T_halt
      else if remaining = 0 then
        (* last main block: must not fall through *)
        gen_ender ctx ~fidx ~frame ~i:idx ~n:n_main rng
      else if
        !jt_budget > 0
        && remaining >= p.jt_min_targets + 1
        && Rng.bool rng 0.8
      then begin
        decr jt_budget;
        let k =
          Rng.range rng p.jt_min_targets (min p.jt_max_targets (remaining - 1))
        in
        let targets = List.init k (fun j -> idx + 2 + j) in
        List.iter (fun t -> targeted.(t) <- true) targets;
        (* the default case is reached through the bounds-check branch *)
        targeted.(idx + 1) <- true;
        (* a couple of extra entries reusing earlier targets keeps tables
           realistic (duplicate entries are legal) *)
        let extras =
          if Rng.bool rng 0.3 then [ Rng.choose rng targets ] else []
        in
        T_jumptable
          { targets = targets @ extras; spilled = Rng.bool rng p.p_jt_spilled }
      end
      else if targeted.(idx + 1) && Rng.bool rng 0.25 then
        (* next block is already reachable: this one may end the chain *)
        gen_ender ctx ~fidx ~frame ~i:idx ~n:n_main rng
      else begin
        (* fallthrough-kind terminator *)
        let r = Rng.float rng in
        if r < p.p_call then begin
          match ctx.error_idx with
          | Some e when Rng.bool rng 0.08 ->
            (* returning call to error: first argument zero *)
            bodies.(idx) <- bodies.(idx) @ [ Insn.Mov_ri (Reg.r1, 0) ];
            T_call e
          | _ -> T_call (Rng.int rng ctx.n_funcs)
        end
        else if r < p.p_call +. p.p_icall then T_icall (Rng.int rng 64)
        else if r < p.p_call +. p.p_icall +. 0.25 && remaining >= 2 then begin
          let tgt = pick_forward rng targeted (idx + 2) (n_main - 1) in
          targeted.(tgt) <- true;
          T_cond (any_cond rng, tgt)
        end
        else if r < p.p_call +. p.p_icall +. 0.35 && idx > 0 then
          (* loop back edge; still falls through *)
          T_cond (any_cond rng, Rng.int rng (idx + 1))
        else T_fall
      end
    in
    terms.(idx) <- term;
    incr i
  done;
  (* Secondary-entry region: one block reachable only through its symbol,
     flowing back into the middle of the function (Fortran ENTRY / Power
     multi-entry functions: functions sharing code). *)
  let secondary =
    if want_secondary && n_main >= 2 then begin
      let m = 1 + Rng.int rng (n_main - 1) in
      bodies.(n - 1) <- gen_body rng ~frame 2;
      terms.(n - 1) <- T_jmp m;
      Some (n - 1)
    end
    else None
  in
  (* Cold outlining: a block that is branch-targeted only, whose physical
     predecessor does not fall into it, and that ends without fallthrough. *)
  let cold =
    if (not noreturn_leaf) && secondary = None && Rng.bool rng p.p_cold then begin
      let eligible = ref [] in
      for c = 1 to n_main - 1 do
        let self_ok =
          match terms.(c) with T_halt | T_call_noret _ -> true | _ -> false
        in
        let pred_ok = not (is_fallthrough_term terms.(c - 1)) in
        (* jump-table targets cannot move: the table stores their address,
           which is fine, but the default chain must stay adjacent; simplest
           is to exclude JT-involved blocks *)
        let not_jt_involved =
          not
            (Array.exists
               (function
                 | T_jumptable { targets; _ } -> List.mem c targets
                 | _ -> false)
               terms)
        in
        if self_ok && pred_ok && targeted.(c) && not_jt_involved then
          eligible := c :: !eligible
      done;
      match !eligible with [] -> None | cs -> Some (Rng.choose rng cs)
    end
    else None
  in
  let blocks =
    Array.init n (fun j -> { bs_body = bodies.(j); bs_term = terms.(j) })
  in
  {
    fs_name = Printf.sprintf "fn_%04d" fidx;
    fs_blocks = blocks;
    fs_frame = frame;
    fs_cold = cold;
    fs_secondary = secondary;
    fs_cu = cu;
    fs_error_style = false;
    fs_noreturn_leaf = noreturn_leaf;
  }

let error_fspec ~cu : fspec =
  {
    fs_name = "error";
    fs_blocks =
      [|
        { bs_body = [ Insn.Cmp_ri (Reg.r1, 0) ]; bs_term = T_cond (Eq, 2) };
        { bs_body = []; bs_term = T_halt };
        { bs_body = []; bs_term = T_ret };
      |];
    fs_frame = true;
    fs_cold = None;
    fs_secondary = None;
    fs_cu = cu;
    fs_error_style = true;
    fs_noreturn_leaf = false;
  }

let generate (p : Profile.t) : t =
  let rng = Rng.create p.seed in
  let n_normal = p.n_funcs in
  let n_total = n_normal + if p.with_error_style then 1 else 0 in
  let error_idx = if p.with_error_style then Some n_normal else None in
  (* exit-like leaves among the normal functions *)
  let n_leaves =
    let base = int_of_float (p.p_noreturn_leaf *. float_of_int n_normal) in
    if p.p_noreturn_call > 0.0 then max 1 base else base
  in
  let noreturn_leaves =
    List.init n_leaves (fun k -> (k * 37 mod max 1 (n_normal - 1)) + 1)
    |> List.sort_uniq compare
    |> List.filter (fun i -> i < n_normal)
  in
  let ctx = { p; rng; n_funcs = n_normal; noreturn_leaves; error_idx } in
  let funcs =
    Array.init n_total (fun fidx ->
        if Some fidx = error_idx then error_fspec ~cu:(fidx mod p.n_cus)
        else gen_function ctx ~fidx ~cu:(fidx mod p.n_cus))
  in
  (* Rename the leaves so the name-matching non-returning analysis finds
     them (paper Section 2.1: matching against exit/abort). *)
  List.iteri
    (fun k i ->
      funcs.(i) <-
        { (funcs.(i)) with fs_name = (if k = 0 then "exit" else Printf.sprintf "abort_%d" k) })
    noreturn_leaves;
  funcs.(0) <- { (funcs.(0)) with fs_name = "main" };
  (* Shared stubs. *)
  let stubs =
    Array.init p.n_shared_stubs (fun sid ->
        let srng = Rng.split rng in
        let mode =
          if sid < p.n_listing1 then Mixed
          else if Rng.bool srng p.p_stub_tail then Tail
          else Shared
        in
        let want = max (if mode = Mixed then 2 else 1) p.sharers_per_stub in
        (* pick sharer functions that still have a T_ret ender to donate *)
        let sharers = ref [] in
        let attempts = ref 0 in
        while List.length !sharers < want && !attempts < want * 20 do
          incr attempts;
          let f = Rng.int srng n_normal in
          let fs = funcs.(f) in
          let has_ret =
            (not fs.fs_noreturn_leaf) && (not fs.fs_error_style)
            && fs.fs_cold = None && fs.fs_secondary = None
            && Array.exists (fun b -> b.bs_term = T_ret) fs.fs_blocks
            && not (List.mem f !sharers)
          in
          if has_ret then sharers := f :: !sharers
        done;
        let sharers = List.rev !sharers in
        List.iter
          (fun f ->
            let fs = funcs.(f) in
            let bi =
              let rec find i =
                if fs.fs_blocks.(i).bs_term = T_ret then i else find (i + 1)
              in
              find 0
            in
            let blocks = Array.copy fs.fs_blocks in
            blocks.(bi) <- { (blocks.(bi)) with bs_term = T_stub sid };
            funcs.(f) <- { fs with fs_blocks = blocks })
          sharers;
        {
          ss_body = gen_body srng ~frame:false (2 + Rng.int srng 4);
          ss_ret = Rng.bool srng 0.8;
          ss_mode = mode;
          ss_sharers = sharers;
        })
  in
  let fptable =
    Array.init 8 (fun _ -> Rng.int rng n_normal)
  in
  (* raw data interleaved with code: jump-table-like constants and strings
     that a linear sweep will happily mis-decode *)
  let data =
    Array.init n_total (fun _ ->
        if Rng.bool rng p.p_data_in_text then begin
          let len = 8 + Rng.int rng 56 in
          Some
            (Bytes.init len (fun _ ->
                 if Rng.bool rng 0.4 then
                   (* a plausible opcode byte: desynchronizes the sweep *)
                   Char.chr (Rng.choose rng [ 0x11; 0x14; 0x28; 0x31; 0x53 ])
                 else Char.chr (0x80 + Rng.int rng 0x80)))
        end
        else None)
  in
  {
    sp_profile = p;
    sp_funcs = funcs;
    sp_stubs = stubs;
    sp_fptable = fptable;
    sp_data = data;
  }

let error_index t =
  let n = Array.length t.sp_funcs in
  if t.sp_profile.with_error_style then Some (n - 1) else None

(* ------------------------------------------------------------------ *)
(* "Can this function return" fixpoint over the spec, mirroring the
   non-returning-function analysis the parser runs (paper Section 2.1). *)

let block_reachable t ~returns fidx root =
  let fs = t.sp_funcs.(fidx) in
  let n = Array.length fs.fs_blocks in
  let seen = Array.make n false in
  (* A branch to block 0 targets the function's entry symbol; the parser's
     static heuristic classifies any branch to a known function entry as a
     tail call, so such edges are inter-procedural and not followed. *)
  let rec visit b =
    if b >= 0 && b < n && not seen.(b) then begin
      seen.(b) <- true;
      let next = b + 1 in
      match fs.fs_blocks.(b).bs_term with
      | T_ret | T_halt | T_tailcall _ | T_call_noret _ -> ()
      | T_jmp 0 -> ()
      | T_jmp j -> visit j
      | T_cond (_, 0) -> visit next
      | T_cond (_, j) ->
        visit j;
        visit next
      | T_call callee -> if returns.(callee) then visit next
      | T_icall _ | T_fall -> visit next
      | T_jumptable { targets; _ } ->
        List.iter visit targets;
        visit next
      | T_stub _ -> () (* stub code is accounted separately *)
    end
  in
  visit root;
  seen

let spec_returns t =
  let n = Array.length t.sp_funcs in
  let returns = Array.make n false in
  let stub_ret sid = t.sp_stubs.(sid).ss_ret in
  let changed = ref true in
  while !changed do
    changed := false;
    for f = 0 to n - 1 do
      if not returns.(f) then begin
        let reach = block_reachable t ~returns f 0 in
        let fs = t.sp_funcs.(f) in
        let can =
          Array.exists
            (fun b -> b)
            (Array.mapi
               (fun i r ->
                 r
                 &&
                 match fs.fs_blocks.(i).bs_term with
                 | T_ret -> true
                 | T_tailcall g -> returns.(g)
                 | T_stub sid -> stub_ret sid
                 | _ -> false)
               reach)
        in
        if can then begin
          returns.(f) <- true;
          changed := true
        end
      end
    done
  done;
  returns
