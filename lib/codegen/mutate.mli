(** Mutation fuzzing for the SBF parser and the CFG analyses.

    Each mutation takes a well-formed generated image and produces hostile
    bytes aimed at a specific layer: the container parser (header bit
    flips, truncation), the decoder (random byte flips, instruction
    splices), the jump-table analysis (smashed table words) and the
    function seeding (lying symbol offsets).

    All mutations are deterministic functions of the {!Rng.t} stream, so a
    seed reproduces a mutant bit for bit. *)

type kind =
  | Header_bits  (** flip bits in the container header region *)
  | Truncate  (** cut the byte image at a random point *)
  | Byte_flips  (** flip random bits anywhere in the image *)
  | Code_splice
      (** overwrite a [.text] window with garbage: overlapping and
          non-terminating instruction sequences *)
  | Table_smash  (** replace [.rodata] words with wild addresses *)
  | Symbol_lies  (** re-point symbol offsets at arbitrary addresses *)

val all_kinds : kind array
val kind_name : kind -> string

val apply : rng:Rng.t -> kind -> Pbca_binfmt.Image.t -> Bytes.t
(** Produce the mutated byte image for one specific [kind]. *)

val mutate : rng:Rng.t -> Pbca_binfmt.Image.t -> kind * Bytes.t
(** Pick a kind from the stream and apply it. *)
