(** Mutation fuzzing for the SBF parser and the CFG analyses.

    Each mutation takes a well-formed generated image and produces hostile
    bytes aimed at a specific layer: the container parser (header bit
    flips, truncation), the decoder (random byte flips, instruction
    splices), the jump-table analysis (smashed table words) and the
    function seeding (lying symbol offsets).

    All mutations are deterministic functions of the {!Rng.t} stream, so a
    seed reproduces a mutant bit for bit. *)

type kind =
  | Header_bits  (** flip bits in the container header region *)
  | Truncate  (** cut the byte image at a random point *)
  | Byte_flips  (** flip random bits anywhere in the image *)
  | Code_splice
      (** overwrite a [.text] window with garbage: overlapping and
          non-terminating instruction sequences *)
  | Table_smash  (** replace [.rodata] words with wild addresses *)
  | Symbol_lies  (** re-point symbol offsets at arbitrary addresses *)
  | Strip_symtab
      (** drop the function symbols (sometimes every symbol): the
          stripped-binary axis — absence as the hostile input *)
  | Artifact_rot
      (** corrupt a recovery artifact (checkpoint / journal): truncation,
          bit rot, garbage splices, zeroed tails *)
  | Frame_garble
      (** frame-level protocol mutations: bad magic, wrong length field,
          truncated/torn frames, CRC flips, payload rot — aimed at the
          bserve wire decoder via {!garble_frame} *)

val image_kinds : kind array
(** The seven image-directed axes — what {!mutate} draws from. *)

val all_kinds : kind array
(** All nine axes, including [Artifact_rot] and [Frame_garble]. *)

val kind_name : kind -> string

val apply : rng:Rng.t -> kind -> Pbca_binfmt.Image.t -> Bytes.t
(** Produce the mutated byte image for one specific [kind]. *)

val mutate : rng:Rng.t -> Pbca_binfmt.Image.t -> kind * Bytes.t
(** Pick an image-directed kind from the stream and apply it. *)

val corrupt_artifact : rng:Rng.t -> Bytes.t -> Bytes.t
(** Damage the bytes of an on-disk recovery artifact the way a crash or a
    dying disk would: truncate at a random point, flip random bits, splice
    a garbage window, or zero the tail. Deterministic in the rng stream;
    the input is not modified. *)

val garble_frame : rng:Rng.t -> Bytes.t -> Bytes.t
(** Damage one encoded wire frame ([[magic(4)][len u32][crc u32][payload]]
    layout) the way a hostile or broken peer would: flip magic bits, lie
    in the length field, truncate inside the header, tear the payload,
    flip CRC bits, or rot payload bytes behind a now-stale CRC.
    Deterministic in the rng stream; the input is not modified. *)
