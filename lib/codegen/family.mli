(** Wild-binary families (PR9): generated subjects modelling the hostile
    inputs real tools meet outside the build lab.

    - [Stripped]: the function symbols are removed after emission and the
      ground truth's [gf_in_symtab] flags are cleared to match, so the
      parser must earn every entry except the image entry point through
      gap parsing.
    - [Overlap]: heavy shared-stub pressure plus both Listing-1 ambiguous
      pairs — instruction tails claimed by several functions at once.
    - [Obfuscated]: opaque conditional chains feeding flattened
      jump-table dispatcher loops ([Profile.obfuscated_like]). *)

type name = Stripped | Overlap | Obfuscated

val all : name list
val name_of_string : string -> name option
val to_string : name -> string

val strip : Emit.result -> Emit.result
(** Drop the function symbols from an emitted image and clear the ground
    truth's [gf_in_symtab] flags (the image entry point stays seeded). *)

val profile : name -> int -> Profile.t
(** The i-th member's generation profile. *)

val generate : name -> int -> Emit.result
(** Generate the i-th member of a family, stripping applied for
    [Stripped]. *)
