module Image = Pbca_binfmt.Image

type name = Stripped | Overlap | Obfuscated

let all = [ Stripped; Overlap; Obfuscated ]

let name_of_string = function
  | "stripped" -> Some Stripped
  | "overlap" -> Some Overlap
  | "obfuscated" -> Some Obfuscated
  | _ -> None

let to_string = function
  | Stripped -> "stripped"
  | Overlap -> "overlap"
  | Obfuscated -> "obfuscated"

(* Stripping happens after emission so the ground truth keeps exact
   boundaries while recording that no symbol will seed the entries: every
   function (except anything already tail-call-only) flips to
   [gf_in_symtab = false], mirroring what the parser will actually see.
   The image entry point survives stripping, so [main] stays seeded. *)
let strip (r : Emit.result) : Emit.result =
  let image = Image.strip r.Emit.image in
  let gt = r.Emit.ground_truth in
  let entry = r.Emit.image.Image.entry in
  let funcs =
    List.map
      (fun (gf : Ground_truth.gfun) ->
        if gf.Ground_truth.gf_entry = entry then gf
        else { gf with Ground_truth.gf_in_symtab = false })
      gt.Ground_truth.gt_funcs
  in
  let gt = { gt with Ground_truth.gt_funcs = funcs } in
  (* the image self-describes via its .ground section: re-serialize so
     on-disk consumers see the cleared in-symtab flags too *)
  let gt_w = Pbca_binfmt.Bio.W.create () in
  Ground_truth.write gt_w gt;
  let sections =
    List.map
      (fun (s : Pbca_binfmt.Section.t) ->
        if s.Pbca_binfmt.Section.name = ".ground" then
          Pbca_binfmt.Section.make ~name:".ground"
            ~addr:s.Pbca_binfmt.Section.addr
            (Pbca_binfmt.Bio.W.contents gt_w)
        else s)
      image.Image.sections
  in
  let image =
    Image.make ~name:image.Image.name ~entry:image.Image.entry ~sections
      image.Image.symtab
  in
  { r with Emit.image; Emit.ground_truth = gt }

let profile fam i =
  match fam with
  | Stripped -> Profile.stripped_like i
  | Overlap -> Profile.overlap_like i
  | Obfuscated -> Profile.obfuscated_like i

let generate fam i =
  let r = Emit.generate (profile fam i) in
  match fam with Stripped -> strip r | Overlap | Obfuscated -> r
