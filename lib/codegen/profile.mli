(** Generation profiles: the knobs that shape a synthetic binary.

    Named profiles model the paper's evaluation subjects at a reduced scale
    (Table 1): the two LLNL applications, Camellia, the TensorFlow shared
    library, the coreutils-like correctness corpus (Section 8.1) and the
    BinFeat forensics corpus members (Section 8.3). Scale factors were chosen
    so a full bench run completes in minutes on one core while preserving the
    relative proportions of text vs. debug-info volume. *)

type t = {
  name : string;
  seed : int;
  n_funcs : int;
  min_blocks : int;
  max_blocks : int;
  min_body_insns : int;
  max_body_insns : int;
  p_frame : float;  (** probability a function sets up a stack frame *)
  p_call : float;  (** probability a block terminator is a direct call *)
  p_icall : float;
  p_jump_table : float;
  jt_min_targets : int;
  jt_max_targets : int;
  p_jt_spilled : float;
      (** fraction of jump tables whose base is spilled through the stack —
          statically unresolvable (paper Section 8.1 difference 3) *)
  p_tail_call : float;
  p_noreturn_leaf : float;  (** fraction of functions that are exit-like *)
  p_noreturn_call : float;  (** block chance of ending in a noreturn call *)
  with_error_style : bool;
      (** include an [error]-style conditionally-returning function and call
          sites with a non-zero first argument (paper difference 1) *)
  n_shared_stubs : int;  (** shared error-handling stubs (functions sharing
                             code) *)
  sharers_per_stub : int;
  p_stub_tail : float;  (** chance a stub is entered via tail calls *)
  n_listing1 : int;  (** Listing-1 style ambiguous pairs to emit *)
  p_cold : float;  (** fraction of functions with an outlined .cold block *)
  p_secondary_entry : float;  (** Fortran/Power-style extra entry points *)
  n_cus : int;
  lines_per_func : int;
  p_inline : float;  (** chance a function gets an inline subtree *)
  debug_pad_per_cu : int;  (** bytes of type-info padding per CU *)
  p_data_in_text : float;
      (** chance of a raw data blob (string constants, padding tables)
          between two functions: never reachable, so control-flow traversal
          skips it, but a linear sweep decodes it as garbage — the classic
          data-in-text hazard (Schwarz et al.) *)
  p_flatten : float;
      (** chance a function is generated obfuscated: an opaque conditional
          chain funnelling into a flattened jump-table dispatcher loop
          whose cases all branch back to it. 0.0 draws nothing from the
          rng, so existing profiles are bit-identical. *)
}

val default : t
val coreutils_like : int -> t
(** [coreutils_like i] — the i-th member of the 113-binary correctness
    corpus: small, every construct enabled. *)

val forensics_member : int -> t
(** Member of the 504-binary BinFeat corpus. *)

val stripped_like : int -> t
(** Member of the stripped-binary family (PR9): coreutils-shaped code with
    some data-in-text; {!Family.stripped} drops its function symbols. *)

val overlap_like : int -> t
(** Member of the overlapping-tails family: shared stubs everywhere, both
    Listing-1 ambiguous pairs enabled. *)

val obfuscated_like : int -> t
(** Member of the obfuscated family: half the functions are opaque-chain +
    flattened-dispatcher shapes ([p_flatten]). *)

val llnl1 : t
val llnl2 : t
val camellia : t
val tensorflow : t

val hpcstruct_subjects : t list
(** The four Table-1/Table-2 subjects. *)

val scale : float -> t -> t
(** Multiply the function count (and CU count) by a factor. *)
