module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Symtab = Pbca_binfmt.Symtab
module Symbol = Pbca_binfmt.Symbol

type kind =
  | Header_bits
  | Truncate
  | Byte_flips
  | Code_splice
  | Table_smash
  | Symbol_lies
  | Strip_symtab
  | Artifact_rot
  | Frame_garble

let image_kinds =
  [|
    Header_bits;
    Truncate;
    Byte_flips;
    Code_splice;
    Table_smash;
    Symbol_lies;
    Strip_symtab;
  |]

let all_kinds = Array.append image_kinds [| Artifact_rot; Frame_garble |]

let kind_name = function
  | Header_bits -> "header-bits"
  | Truncate -> "truncate"
  | Byte_flips -> "byte-flips"
  | Code_splice -> "code-splice"
  | Table_smash -> "table-smash"
  | Symbol_lies -> "symbol-lies"
  | Strip_symtab -> "strip-symtab"
  | Artifact_rot -> "artifact-rot"
  | Frame_garble -> "frame-garble"

let flip_bit b i bit =
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)))

let flip_random ~rng b n =
  if Bytes.length b > 0 then
    for _ = 1 to n do
      flip_bit b (Rng.int rng (Bytes.length b)) (Rng.int rng 8)
    done

(* Rebuild the image with one section's bytes replaced, and re-serialize.
   Structural mutations (splices, table smashes) operate here so the
   container stays parseable and the damage lands in the analysis layers. *)
let rewrite_section img sname f =
  let sections =
    List.map
      (fun (s : Section.t) ->
        if s.Section.name = sname then
          Section.make ~name:s.Section.name ~addr:s.Section.addr
            (f (Bytes.copy s.Section.data))
        else s)
      img.Image.sections
  in
  Image.write
    (Image.make ~name:img.Image.name ~entry:img.Image.entry ~sections
       img.Image.symtab)

(* Recovery-artifact corruption: the kinds of damage a crashed or lying
   disk inflicts on a checkpoint or journal file. Truncation models
   power-loss mid-write; flips model media rot; the garbage splice models
   a misdirected write landing inside the file; the zeroed tail models an
   allocated-but-unwritten extent. *)
let corrupt_artifact ~rng bytes =
  let b = Bytes.copy bytes in
  let n = Bytes.length b in
  if n = 0 then b
  else
    match Rng.int rng 4 with
    | 0 -> Bytes.sub b 0 (Rng.int rng n)
    | 1 ->
      flip_random ~rng b (1 + Rng.int rng 16);
      b
    | 2 ->
      let off = Rng.int rng n in
      let len = min (1 + Rng.int rng 64) (n - off) in
      for i = off to off + len - 1 do
        Bytes.set b i (Char.chr (Rng.int rng 256))
      done;
      b
    | _ ->
      let cut = Rng.int rng n in
      Bytes.fill b cut (n - cut) '\000';
      b

(* Frame-level protocol mutations (the 8th axis). The layout convention is
   the CRC-framed length-prefixed wire frame shared by the journal and the
   bserve protocol: [magic(4)][len u32][crc u32][payload]. Each sub-mode
   aims at one decoder defense: the magic check, the length bound, the
   short-read path (truncated and torn frames), the CRC check, and the
   payload decoder behind a CRC that no longer matches. On bytes that are
   not actually a frame this degenerates to localized rot, which every
   consumer must survive anyway. *)
let garble_frame ~rng frame =
  let b = Bytes.copy frame in
  let n = Bytes.length b in
  if n = 0 then b
  else
    let flip_in lo hi k =
      let lo = min lo (n - 1) and hi = min hi n in
      if hi > lo then
        for _ = 1 to k do
          flip_bit b (lo + Rng.int rng (hi - lo)) (Rng.int rng 8)
        done;
      b
    in
    match Rng.int rng 6 with
    | 0 -> (* bad magic *) flip_in 0 4 (1 + Rng.int rng 4)
    | 1 ->
      (* wrong length field: anywhere from 0 to wildly past the payload *)
      if n >= 8 then begin
        Bytes.set_int32_le b 4 (Int32.of_int (Rng.int rng 0x7fffffff));
        b
      end
      else flip_in 0 n 2
    | 2 -> (* truncated frame: cut inside the header *) Bytes.sub b 0 (Rng.int rng (min n 13))
    | 3 ->
      (* torn frame: header intact, payload cut partway *)
      if n > 12 then Bytes.sub b 0 (12 + Rng.int rng (n - 12))
      else Bytes.sub b 0 (Rng.int rng n)
    | 4 -> (* CRC flip *) if n >= 12 then flip_in 8 12 (1 + Rng.int rng 4) else flip_in 0 n 2
    | _ -> (* payload rot behind a now-stale CRC *) if n > 12 then flip_in 12 n (1 + Rng.int rng 8) else flip_in 0 n 2

let apply ~rng kind img =
  let base () = Image.write img in
  match kind with
  | Header_bits ->
    (* magic, counts, entry: the container parser's first line of defense *)
    let b = base () in
    if Bytes.length b > 0 then begin
      let window = min 24 (Bytes.length b) in
      for _ = 1 to 1 + Rng.int rng 4 do
        flip_bit b (Rng.int rng window) (Rng.int rng 8)
      done
    end;
    b
  | Truncate ->
    let b = base () in
    Bytes.sub b 0 (Rng.int rng (Bytes.length b + 1))
  | Byte_flips ->
    let b = base () in
    flip_random ~rng b (1 + Rng.int rng 24);
    b
  | Code_splice ->
    (* overwrite a code window with garbage: yields overlapping / bogus
       instruction sequences and straight lines with no terminator *)
    rewrite_section img ".text" (fun data ->
        if Bytes.length data > 0 then begin
          let off = Rng.int rng (Bytes.length data) in
          let len = min (1 + Rng.int rng 32) (Bytes.length data - off) in
          for i = off to off + len - 1 do
            Bytes.set data i (Char.chr (Rng.int rng 256))
          done
        end;
        data)
  | Table_smash ->
    (* jump-table entries live in .rodata; smash whole 32-bit words so
       table reads return wild addresses *)
    rewrite_section img ".rodata" (fun data ->
        let words = Bytes.length data / 4 in
        if words > 0 then
          for _ = 1 to 1 + Rng.int rng 8 do
            let w = Rng.int rng words in
            Bytes.set_int32_le data (4 * w)
              (Int32.of_int (Rng.int rng 0x3fffffff))
          done;
        data)
  | Symbol_lies ->
    (* keep the container intact but make the symbol table lie about
       function offsets, pointing parses into data or mid-instruction *)
    let text_size = Image.text_size img in
    let bound = max 1 (2 * max 1 text_size) in
    let st = Symtab.create () in
    Symtab.fold
      (fun (s : Symbol.t) () ->
        let s =
          if Rng.bool rng 0.3 then
            Symbol.make ~size:s.Symbol.size ~kind:s.Symbol.kind
              ~global:s.Symbol.global s.Symbol.mangled (Rng.int rng bound)
          else s
        in
        ignore (Symtab.insert st s))
      img.Image.symtab ();
    Image.write
      (Image.make ~name:img.Image.name ~entry:img.Image.entry
         ~sections:img.Image.sections st)
  | Strip_symtab ->
    (* the wild's most common hostile input is not damage but absence:
       drop the function symbols (half the time every symbol), leaving
       the parser only the entry point — and the gap heuristics, when
       enabled — to seed from *)
    Image.write
      (if Rng.bool rng 0.5 then Image.strip img
       else Image.strip ~keep:(fun _ -> false) img)
  | Artifact_rot ->
    (* on an image this degenerates to generic byte rot; the axis is
       really aimed at recovery artifacts via {!corrupt_artifact} *)
    corrupt_artifact ~rng (base ())
  | Frame_garble ->
    (* on an image this degenerates to header/length-area rot; the axis
       is really aimed at protocol frames via {!garble_frame} *)
    garble_frame ~rng (base ())

let mutate ~rng img =
  let k = Rng.choose_arr rng image_kinds in
  (k, apply ~rng k img)
