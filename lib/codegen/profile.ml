type t = {
  name : string;
  seed : int;
  n_funcs : int;
  min_blocks : int;
  max_blocks : int;
  min_body_insns : int;
  max_body_insns : int;
  p_frame : float;
  p_call : float;
  p_icall : float;
  p_jump_table : float;
  jt_min_targets : int;
  jt_max_targets : int;
  p_jt_spilled : float;
  p_tail_call : float;
  p_noreturn_leaf : float;
  p_noreturn_call : float;
  with_error_style : bool;
  n_shared_stubs : int;
  sharers_per_stub : int;
  p_stub_tail : float;
  n_listing1 : int;
  p_cold : float;
  p_secondary_entry : float;
  n_cus : int;
  lines_per_func : int;
  p_inline : float;
  debug_pad_per_cu : int;
  p_data_in_text : float;
  p_flatten : float;
}

let default =
  {
    name = "default";
    seed = 42;
    n_funcs = 200;
    min_blocks = 2;
    max_blocks = 12;
    min_body_insns = 1;
    max_body_insns = 6;
    p_frame = 0.7;
    p_call = 0.25;
    p_icall = 0.03;
    p_jump_table = 0.06;
    jt_min_targets = 3;
    jt_max_targets = 12;
    p_jt_spilled = 0.0;
    p_tail_call = 0.05;
    p_noreturn_leaf = 0.02;
    p_noreturn_call = 0.02;
    with_error_style = false;
    n_shared_stubs = 4;
    sharers_per_stub = 5;
    p_stub_tail = 0.5;
    n_listing1 = 0;
    p_cold = 0.02;
    p_secondary_entry = 0.01;
    n_cus = 8;
    lines_per_func = 6;
    p_inline = 0.2;
    debug_pad_per_cu = 2048;
    p_data_in_text = 0.0;
    p_flatten = 0.0;
  }

let coreutils_like i =
  {
    default with
    name = Printf.sprintf "coreutils_%03d" i;
    seed = 0xC0DE + (i * 7919);
    n_funcs = 40 + (i mod 60);
    p_jt_spilled = 0.1;
    with_error_style = true;
    n_listing1 = 1;
    p_cold = 0.05;
  }

let forensics_member i =
  let base =
    {
      default with
      name = Printf.sprintf "forensics_%03d" i;
      seed = 0xF0F0 + (i * 104729);
      n_funcs = 30 + (i mod 45);
      (* a long tail of oversized functions: data-flow feature extraction
         is dominated by the biggest functions (paper Section 8.3) *)
      max_blocks =
        (if i mod 37 = 0 then 150 else if i mod 9 = 0 then 60 else 12);
      n_cus = 4;
      debug_pad_per_cu = 256;
    }
  in
  if i mod 53 = 0 then
    (* the occasional generated-code monster: one gigantic leaf function
       (interpreter loops, generated parsers); no calls, so the whole body
       is reachable without inter-procedural dependencies *)
    {
      base with
      n_funcs = 1;
      min_blocks = 800;
      max_blocks = 950;
      p_call = 0.0;
      p_icall = 0.0;
      p_tail_call = 0.0;
      p_noreturn_call = 0.0;
      n_shared_stubs = 0;
      p_secondary_entry = 0.0;
      p_cold = 0.0;
    }
  else base

(* The wild-binary families (PR9). Stripped members carry everything the
   gap heuristics key on — aligned units, mostly-framed prologues — plus
   a little data-in-text so precision is earned, not free. The stripping
   itself happens at the Family level: the profile only shapes the code. *)
let stripped_like i =
  {
    (coreutils_like i) with
    name = Printf.sprintf "stripped_%03d" i;
    seed = 0x57A1 + (i * 7919);
    p_data_in_text = 0.03;
  }

let overlap_like i =
  {
    default with
    name = Printf.sprintf "overlap_%03d" i;
    seed = 0x07E1 + (i * 104729);
    n_funcs = 40 + (i mod 40);
    n_shared_stubs = 10;
    sharers_per_stub = 6;
    p_stub_tail = 0.5;
    n_listing1 = 2;
    with_error_style = true;
  }

let obfuscated_like i =
  {
    default with
    name = Printf.sprintf "obfuscated_%03d" i;
    seed = 0x0BF5 + (i * 7919);
    n_funcs = 30 + (i mod 30);
    p_flatten = 0.5;
    p_jump_table = 0.08;
    p_data_in_text = 0.05;
  }

(* The four Table-1 subjects, scaled down ~100x from the paper's binaries
   while keeping their relative proportions: TensorFlow is text-light but
   debug-heavy; LLNL2 is the largest text; Camellia is the smallest. *)

let llnl1 =
  {
    default with
    name = "llnl1";
    p_noreturn_call = 0.06;
    seed = 1001;
    n_funcs = 2600;
    max_blocks = 14;
    n_cus = 60;
    debug_pad_per_cu = 24_000;
    p_jump_table = 0.05;
  }

let llnl2 =
  {
    default with
    name = "llnl2";
    p_noreturn_call = 0.06;
    seed = 1002;
    n_funcs = 5000;
    max_blocks = 14;
    n_cus = 90;
    debug_pad_per_cu = 100_000;
    p_jump_table = 0.05;
  }

let camellia =
  {
    default with
    name = "camellia";
    p_noreturn_call = 0.06;
    seed = 1003;
    n_funcs = 1400;
    max_blocks = 13;
    n_cus = 40;
    debug_pad_per_cu = 32_000;
  }

let tensorflow =
  {
    default with
    name = "tensorflow";
    p_noreturn_call = 0.06;
    seed = 1004;
    n_funcs = 3800;
    max_blocks = 13;
    n_cus = 220;
    debug_pad_per_cu = 180_000;
    p_jump_table = 0.07;
    p_cold = 0.04;
  }

let hpcstruct_subjects = [ llnl1; llnl2; camellia; tensorflow ]

let scale f t =
  (* function count scales; the CU count does not — it determines the
     available DWARF-phase parallelism, which is a property of the project's
     build structure rather than of our down-scaling *)
  { t with n_funcs = max 1 (int_of_float (float_of_int t.n_funcs *. f)) }
