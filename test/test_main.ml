let () =
  Alcotest.run "pbca"
    [
      ("concurrent", Test_concurrent.suite);
      ("isa", Test_isa.suite);
      ("binfmt", Test_binfmt.suite);
      ("debuginfo", Test_debuginfo.suite);
      ("codegen", Test_codegen.suite);
      ("ops", Test_ops.suite);
      ("parser", Test_parser.suite);
      ("csr", Test_csr.suite);
      ("finalize", Test_finalize.suite);
      ("tools", Test_tools.suite);
      ("invariants", Test_invariants.suite);
      ("analysis", Test_analysis.suite);
      ("simsched", Test_simsched.suite);
      ("robustness", Test_robustness.suite);
      ("obs", Test_obs.suite);
      ("recovery", Test_recovery.suite);
      ("apps", Test_apps.suite);
      ("pipeline", Test_pipeline.suite);
      ("serve", Test_serve.suite);
      ("gap", Test_gap.suite);
    ]
