(* Hostile-binary hardening: structured parse errors, analysis budgets,
   degradation to safe over-approximations, deterministic fault injection
   and a mini mutation-fuzz loop. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Config = Pbca_core.Config
module Spec = Pbca_codegen.Spec
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Parse_error = Pbca_binfmt.Parse_error
module Mutate = Pbca_codegen.Mutate
module Rng = Pbca_codegen.Rng
module Fault = Pbca_concurrent.Fault

let emit_funcs ?stubs funcs = (emit_spec (mk_spec ?stubs funcs)).image

let parse ?config ?(threads = 4) image =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  Pbca_core.Parallel.parse_and_finalize ?config ~pool image

let jt_fun ?(spilled = false) ?(targets = [ 2; 3; 4 ]) name =
  mk_fspec ~name
    [
      blk ~body:[ Insn.Mov_rr (Reg.of_int 2, Reg.r1) ]
        (Spec.T_jumptable { targets; spilled });
      blk Spec.T_ret; (* default *)
      blk ~body:[ Insn.Mov_ri (Reg.r0, 1) ] (Spec.T_jmp 1);
      blk ~body:[ Insn.Mov_ri (Reg.r0, 2) ] (Spec.T_jmp 1);
      blk ~body:[ Insn.Mov_ri (Reg.r0, 3) ] (Spec.T_jmp 1);
    ]

(* --------------------- structured parse errors ------------------------ *)

let test_missing_text () =
  let img =
    Image.make ~name:"no-text"
      ~sections:[ Section.make ~name:".data" ~addr:0x100 (Bytes.create 8) ]
      (Pbca_binfmt.Symtab.create ())
  in
  Alcotest.(check bool) "text_opt is None" true (Image.text_opt img = None);
  match Image.text img with
  | exception Parse_error.Error (Parse_error.Bad_section { name; _ }) ->
    Alcotest.(check string) "names .text" ".text" name
  | _ -> Alcotest.fail "missing .text must raise Bad_section"

let test_truncated_container () =
  let whole = Image.write (emit_funcs [ diamond_fun () ]) in
  (* every proper prefix must yield a structured error, never an escape *)
  List.iter
    (fun len ->
      match Image.read_result (Bytes.sub whole 0 len) with
      | Ok _ when len = Bytes.length whole -> ()
      | Ok _ -> Alcotest.failf "prefix %d parsed as Ok" len
      | Error (Parse_error.Truncated _ | Parse_error.Bad_magic _) -> ()
      | Error e ->
        Alcotest.failf "prefix %d: unexpected class %s" len
          (Parse_error.to_string e))
    [ 0; 1; 3; 7; Bytes.length whole / 2; Bytes.length whole - 1 ]

let test_section_decode_fault () =
  let s = Section.make ~name:".text" ~addr:0x100 (Bytes.create 4) in
  match Section.u8 s 0x200 with
  | exception Parse_error.Error (Parse_error.Decode_fault { addr; section }) ->
    Alcotest.(check int) "faulting address" 0x200 addr;
    Alcotest.(check string) "faulting section" ".text" section
  | _ -> Alcotest.fail "out-of-range read must raise Decode_fault"

(* --------------------------- budgets ---------------------------------- *)

let straight_fun n name =
  mk_fspec ~name [ blk ~body:(List.init n (fun _ -> Insn.Nop)) Spec.T_ret ]

let test_block_byte_budget () =
  let image = emit_funcs [ straight_fun 60 "long" ] in
  let config = { Config.default with Config.max_block_bytes = 16 } in
  let g = parse ~config image in
  Alcotest.(check bool) "budget charged" true
    (Atomic.get g.Cfg.stats.Cfg.budget_block > 0);
  (* the block was kept, truncated at the cut *)
  let f = get_func g "long" in
  Alcotest.(check bool) "entry block kept" true
    (Cfg.block_end f.Cfg.f_entry > f.Cfg.f_entry_addr);
  Alcotest.(check bool) "function marked degraded" true (Cfg.func_degraded g f)

let test_slice_budget_degrades_table () =
  let r = emit_spec (mk_spec [ jt_fun "sw"; diamond_fun () ]) in
  let config = { Config.default with Config.max_slice_steps = 1 } in
  let g = parse ~config r.image in
  Alcotest.(check bool) "slice budget charged" true
    (Atomic.get g.Cfg.stats.Cfg.budget_slice > 0);
  Alcotest.(check bool) "table unresolved" true
    (Atomic.get g.Cfg.stats.Cfg.jt_unresolved > 0);
  (* the cut is announced, so the checker explains the difference as
     Expected, not Mismatch *)
  check_clean r.ground_truth g

let test_table_budget_degrades_table () =
  let r =
    emit_spec (mk_spec [ jt_fun ~targets:[ 2; 3; 4; 2; 3; 4 ] "sw" ])
  in
  let config = { Config.default with Config.max_table_entries = 2 } in
  let g = parse ~config r.image in
  Alcotest.(check bool) "table budget charged" true
    (Atomic.get g.Cfg.stats.Cfg.budget_table > 0);
  Alcotest.(check bool) "table unresolved, not truncated" true
    (Atomic.get g.Cfg.stats.Cfg.jt_unresolved > 0);
  check_clean r.ground_truth g

let test_deadline () =
  let r = Pbca_codegen.Emit.generate (Profile.coreutils_like 1) in
  let config = { Config.default with Config.deadline_s = 1e-6 } in
  let g = parse ~config r.image in
  (* the parse completed (no exception, region drained) but skipped work *)
  Alcotest.(check bool) "deadline charged" true
    (Atomic.get g.Cfg.stats.Cfg.budget_deadline > 0);
  Alcotest.(check bool) "degradation marked" true (Cfg.degraded_count g > 0);
  check_clean r.ground_truth g

(* The polling latch, deterministically: with a fake clock the deadline
   is an exact instant, so we can pin down which check polls. The first
   [past_deadline] call polls (counter 0 mod every = 0); the next
   [every - 1] calls reuse the stale verdict even after the clock jumps
   past the deadline; the next polled check latches; once latched, the
   clock is never consulted again. *)
let test_deadline_latch_fake_clock () =
  let fake_now = ref 100.0 in
  Pbca_obs.Clock.with_fake
    (fun () -> !fake_now)
    (fun () ->
      let every = 4 in
      let config =
        {
          Config.default with
          Config.deadline_s = 50.0;
          deadline_poll_every = every;
        }
      in
      (* deadline captured at create: fake 100 + 50 = 150 *)
      let g = Pbca_core.Cfg.create ~config (emit_funcs [ diamond_fun () ]) in
      Alcotest.(check bool) "first check polls, before the deadline" false
        (Cfg.past_deadline g);
      Alcotest.(check int) "one poll so far" 1
        (Atomic.get g.Cfg.stats.Cfg.deadline_polls);
      fake_now := 200.0;
      (* checks 2..every ride the stale verdict *)
      for k = 2 to every do
        Alcotest.(check bool)
          (Printf.sprintf "check %d stays stale" k)
          false (Cfg.past_deadline g)
      done;
      Alcotest.(check int) "still one poll" 1
        (Atomic.get g.Cfg.stats.Cfg.deadline_polls);
      (* the next polled check sees 200 > 150 and latches *)
      Alcotest.(check bool) "polled check latches" true (Cfg.past_deadline g);
      let polls = Atomic.get g.Cfg.stats.Cfg.deadline_polls in
      Alcotest.(check int) "second poll latched it" 2 polls;
      for _ = 1 to 3 * every do
        Alcotest.(check bool) "stays latched" true (Cfg.past_deadline g)
      done;
      Alcotest.(check int) "latch skips the clock" polls
        (Atomic.get g.Cfg.stats.Cfg.deadline_polls))

(* ------------------------ fault injection ----------------------------- *)

let indep_funcs n =
  List.init n (fun i ->
      mk_fspec
        ~name:(Printf.sprintf "leaf%02d" i)
        [
          blk ~body:[ Insn.Mov_ri (Reg.r0, i) ] Spec.T_fall;
          blk ~body:[ Insn.Mov_ri (Reg.r1, i) ] Spec.T_ret;
        ])

let test_fault_injected_parse_survives () =
  let n = 12 in
  let image = emit_funcs (indep_funcs n) in
  let clean_g = parse ~threads:1 image in
  Fun.protect ~finally:Fault.disarm (fun () ->
      (* single-threaded pool: task execution order, and therefore which
         task each ordinal hits, is deterministic *)
      Fault.arm_at [ 6 ] Fault.Raise;
      let g = parse ~threads:1 image in
      Fault.disarm ();
      Alcotest.(check bool) "fault landed" true
        (Cfg.task_failure_count g >= 1);
      List.iter
        (fun (site, detail) ->
          Alcotest.(check bool)
            (Printf.sprintf "failure recorded verbatim (%s)" site)
            true
            (site <> "" && detail <> ""))
        (Cfg.task_failures g);
      (* every function whose tasks did not fault is Cfg_diff-equal *)
      let d = Pbca_core.Cfg_diff.diff clean_g g in
      let touched =
        List.length d.Pbca_core.Cfg_diff.removed
        + List.length d.Pbca_core.Cfg_diff.changed
        + List.length d.Pbca_core.Cfg_diff.added
      in
      Alcotest.(check bool)
        (Format.asprintf "at most one function touched:@ %a"
           Pbca_core.Cfg_diff.pp d)
        true (touched <= 1);
      Alcotest.(check bool) "untouched functions diff-equal" true
        (d.Pbca_core.Cfg_diff.unchanged >= n - 1))

let test_fault_multiple_injections () =
  let n = 12 in
  let image = emit_funcs (indep_funcs n) in
  let clean_g = parse ~threads:1 image in
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm_at [ 4; 6; 8 ] Fault.Raise;
      let g = parse ~threads:1 image in
      Fault.disarm ();
      Alcotest.(check bool) "all faults contained" true
        (Cfg.task_failure_count g >= 1);
      let d = Pbca_core.Cfg_diff.diff clean_g g in
      Alcotest.(check bool) "most functions untouched" true
        (d.Pbca_core.Cfg_diff.unchanged >= n - 3))

let test_fault_seeded_arm () =
  (* seed-driven arming picks the same ordinals every run: the injected
     set is reproducible bit for bit *)
  let pool = Pbca_concurrent.Task_pool.create ~threads:2 in
  let one_run () =
    Fault.arm ~seed:42 ~n:3 ~window:50 Fault.Raise;
    let errs =
      Pbca_concurrent.Task_pool.run_collect pool (fun spawn ->
          for _ = 1 to 60 do
            spawn (fun () -> ())
          done)
    in
    Fault.disarm ();
    List.sort compare
      (List.filter_map
         (function Fault.Injected k -> Some k | _ -> None)
         errs)
  in
  Fun.protect ~finally:Fault.disarm (fun () ->
      let a = one_run () in
      let b = one_run () in
      Alcotest.(check bool) "at least one injection" true (a <> []);
      Alcotest.(check (list int)) "same ordinals across runs" a b)

let test_fault_starvation_degrades () =
  let r = emit_spec (mk_spec [ jt_fun "sw"; diamond_fun () ]) in
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm_at [ 0 ] Fault.Starve;
      let g = parse ~threads:1 r.image in
      Fault.disarm ();
      (* budgets collapsed to 1: the parse still finishes, degraded *)
      Alcotest.(check bool) "degradation recorded" true
        (Cfg.degraded_count g > 0);
      check_clean r.ground_truth g)

(* ------------------------- mutation fuzzing --------------------------- *)

let test_mutate_deterministic () =
  let img = emit_funcs [ diamond_fun (); jt_fun "sw" ] in
  for seed = 1 to 10 do
    let k1, b1 = Mutate.mutate ~rng:(Rng.create seed) img in
    let k2, b2 = Mutate.mutate ~rng:(Rng.create seed) img in
    Alcotest.(check bool) "same kind" true (k1 = k2);
    Alcotest.(check bool) "same bytes" true (Bytes.equal b1 b2)
  done

let test_mini_fuzz () =
  let img = emit_funcs (jt_fun "sw" :: diamond_fun () :: indep_funcs 4) in
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let config = { Config.default with Config.deadline_s = 2.0 } in
  for seed = 1 to 40 do
    let rng = Rng.create seed in
    let kind, bytes = Mutate.mutate ~rng img in
    match Image.read_result bytes with
    | Error _ -> () (* structured rejection is a valid outcome *)
    | Ok m -> (
      match Pbca_core.Parallel.parse_and_finalize ~config ~pool m with
      | _g -> ()
      | exception e ->
        Alcotest.failf "seed %d kind %s crashed: %s" seed
          (Mutate.kind_name kind) (Printexc.to_string e))
  done

let suite =
  [
    quick "structured error: missing .text" test_missing_text;
    quick "structured error: truncated container" test_truncated_container;
    quick "structured error: section decode fault" test_section_decode_fault;
    quick "budget: block bytes" test_block_byte_budget;
    quick "budget: slice steps degrade table" test_slice_budget_degrades_table;
    quick "budget: table entries degrade table"
      test_table_budget_degrades_table;
    quick "budget: global deadline" test_deadline;
    quick "budget: deadline latch, fake clock" test_deadline_latch_fake_clock;
    quick "fault: single injection, others diff-equal"
      test_fault_injected_parse_survives;
    quick "fault: multiple injections contained" test_fault_multiple_injections;
    quick "fault: seeded arming deterministic" test_fault_seeded_arm;
    quick "fault: budget starvation degrades" test_fault_starvation_degrades;
    quick "mutate: deterministic per seed" test_mutate_deterministic;
    slow "mini-fuzz: 40 mutants never crash" test_mini_fuzz;
  ]
