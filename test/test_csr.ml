(* CSR delta layer: after any kill sequence the delta-maintained snapshot
   must be observationally equal to a fresh [Csr.build] of the surviving
   graph — same live blocks in the same order, same live adjacency, same
   degrees and [sole_in] answers. Plus the compaction path end-to-end:
   forcing a compaction after every kill must not change [Finalize]'s
   output. *)

module TP = Pbca_concurrent.Task_pool
module Bitset = Pbca_concurrent.Atomic_bitset
module Csr = Pbca_core.Csr
module C = Pbca_core.Cfg
open Tutil

(* ---------------------------------------------------------------- *)
(* Atomic_bitset substrate.                                          *)

let bitset_basic () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "capacity" 100 (Bitset.capacity b);
  Alcotest.(check int) "fresh count" 0 (Bitset.count b);
  Alcotest.(check bool) "first set flips" true (Bitset.set b 7);
  Alcotest.(check bool) "second set is a no-op" false (Bitset.set b 7);
  Alcotest.(check bool) "set bit tests true" true (Bitset.test b 7);
  Alcotest.(check bool) "clear bit tests false" false (Bitset.test b 8);
  ignore (Bitset.set b 63);
  ignore (Bitset.set b 64);
  Alcotest.(check int) "count tracks winners" 3 (Bitset.count b);
  Bitset.reset b;
  Alcotest.(check int) "reset clears count" 0 (Bitset.count b);
  Alcotest.(check bool) "reset clears bits" false (Bitset.test b 63);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Atomic_bitset: index -1 out of [0, 100)") (fun () ->
      ignore (Bitset.test b (-1)));
  Alcotest.check_raises "index = capacity rejected"
    (Invalid_argument "Atomic_bitset: index 100 out of [0, 100)") (fun () ->
      ignore (Bitset.set b 100))

let bitset_concurrent () =
  let b = Bitset.create 4096 in
  let wins = Atomic.make 0 in
  let doms =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 0 to 4095 do
              if Bitset.set b i then Atomic.incr wins
            done))
  in
  Array.iter Domain.join doms;
  Alcotest.(check int) "each bit has exactly one winner" 4096
    (Atomic.get wins);
  Alcotest.(check int) "count agrees" 4096 (Bitset.count b)

(* ---------------------------------------------------------------- *)
(* Observational equality of a delta-carrying snapshot vs a fresh
   build of the surviving graph.                                     *)

(* The map side of a block kill, mirroring what Finalize does (the
   snapshot's [kill_block] cannot reach the graph's address maps). *)
let unmap_block g (b : C.block) =
  ignore (Pbca_core.Addr_map.remove g.C.blocks b.C.b_start);
  let e = C.block_end b in
  match Pbca_core.Addr_map.find g.C.ends e with
  | Some owner when owner == b ->
    ignore (Pbca_core.Addr_map.remove g.C.ends e)
  | _ -> ()

let out_sig snap i =
  let acc = ref [] in
  Csr.iter_out snap i (fun _ (e : C.edge) ->
      acc := (e.C.e_dst.C.b_start, e.C.e_kind) :: !acc);
  List.sort compare !acc

let in_sig snap i =
  let acc = ref [] in
  Csr.iter_in snap i (fun _ (e : C.edge) ->
      acc := (e.C.e_src.C.b_start, e.C.e_kind) :: !acc);
  List.sort compare !acc

let sole_sig snap i =
  Option.map
    (fun (e : C.edge) -> (e.C.e_src.C.b_start, e.C.e_dst.C.b_start, e.C.e_kind))
    (Csr.sole_in snap i)

let check_equiv what ~pool g snap =
  let fresh = Csr.build ~pool g in
  let live =
    List.filter (Csr.block_live snap)
      (List.init (Csr.n_blocks snap) Fun.id)
  in
  Alcotest.(check int)
    (what ^ ": live block count")
    (Csr.n_blocks fresh) (List.length live);
  Alcotest.(check int)
    (what ^ ": live edge bookkeeping")
    (Csr.n_edges fresh)
    (Csr.n_edges snap - Csr.dead_edges snap);
  List.iteri
    (fun j i ->
      let bs = snap.Csr.blocks.(i).C.b_start in
      if fresh.Csr.starts.(j) <> bs then
        Alcotest.failf "%s: live block order diverged at %d: %x vs %x" what j
          fresh.Csr.starts.(j) bs;
      if out_sig snap i <> out_sig fresh j then
        Alcotest.failf "%s: out adjacency of %x diverged" what bs;
      if in_sig snap i <> in_sig fresh j then
        Alcotest.failf "%s: in adjacency of %x diverged" what bs;
      if Csr.in_degree snap i <> Csr.in_degree fresh j then
        Alcotest.failf "%s: in-degree of %x diverged" what bs;
      if sole_sig snap i <> sole_sig fresh j then
        Alcotest.failf "%s: sole_in of %x diverged" what bs)
    live

let subject_graph ~seed =
  let p =
    { (Profile.coreutils_like (seed mod 4)) with Profile.seed = 40_000 + seed }
  in
  let r = Emit.generate p in
  let pool = TP.create ~threads:1 in
  (Pbca_core.Parallel.parse_and_finalize ~pool r.Emit.image, pool)

let random_kill_equiv seed =
  let g, pool = subject_graph ~seed in
  let snap = Csr.build ~pool g in
  let nb = Csr.n_blocks snap and ne = Csr.n_edges snap in
  let rng = Random.State.make [| seed |] in
  let v0 = Csr.version snap in
  let ops = 1 + ((ne + nb) / 3) in
  for _ = 1 to ops do
    if ne > 0 && (nb = 0 || Random.State.bool rng) then
      ignore (Csr.kill_edge snap (Random.State.int rng ne))
    else if nb > 0 then begin
      let i = Random.State.int rng nb in
      if Csr.kill_block snap i then unmap_block g snap.Csr.blocks.(i)
    end
  done;
  if Csr.dead_edges snap + Csr.dead_blocks snap > 0 then begin
    if Csr.version snap <= v0 then
      Alcotest.failf "seed %d: kills did not bump the version" seed;
    if Csr.dead_fraction snap <= 0.0 then
      Alcotest.failf "seed %d: dead fraction not positive after kills" seed;
    if not (Csr.needs_compact snap ~threshold:0.0) then
      Alcotest.failf "seed %d: threshold 0 must demand compaction" seed
  end;
  check_equiv (Printf.sprintf "seed %d" seed) ~pool g snap;
  true

let kill_all_edges () =
  let g, pool = subject_graph ~seed:1 in
  let snap = Csr.build ~pool g in
  for k = 0 to Csr.n_edges snap - 1 do
    ignore (Csr.kill_edge snap k)
  done;
  Alcotest.(check int) "every edge dead" (Csr.n_edges snap)
    (Csr.dead_edges snap);
  Alcotest.(check bool) "double kill loses" false (Csr.kill_edge snap 0);
  check_equiv "all edges killed" ~pool g snap

(* ---------------------------------------------------------------- *)
(* End-to-end: compaction forced after every kill (threshold 0) and
   compaction disabled (threshold 1) must match the default finalize
   output exactly, serial and parallel.                              *)

let assert_graphs_equal what a b =
  let d = Pbca_core.Cfg_diff.diff a b in
  if
    not
      (d.Pbca_core.Cfg_diff.added = []
      && d.Pbca_core.Cfg_diff.removed = []
      && d.Pbca_core.Cfg_diff.changed = [])
  then
    Alcotest.failf "%s: Cfg_diff found changes:@ %a" what Pbca_core.Cfg_diff.pp
      d;
  let sa = summary a and sb = summary b in
  if not (Pbca_core.Summary.equal sa sb) then
    Alcotest.failf "%s: summaries differ:\n%s" what
      (String.concat "\n" (Pbca_core.Summary.diff sa sb))

let compaction_equiv () =
  let p = { (Profile.coreutils_like 2) with Profile.seed = 77_123 } in
  let r = Emit.generate p in
  let parse ~threads ~threshold =
    let config =
      { Pbca_core.Config.default with Pbca_core.Config.csr_compact_threshold = threshold }
    in
    let pool = TP.create ~threads in
    Pbca_core.Parallel.parse_and_finalize ~config ~pool r.Emit.image
  in
  let base = parse ~threads:1 ~threshold:0.25 in
  let eager = parse ~threads:1 ~threshold:0.0 in
  let eager4 = parse ~threads:4 ~threshold:0.0 in
  let never = parse ~threads:1 ~threshold:1.0 in
  assert_graphs_equal "eager compaction vs default" base eager;
  assert_graphs_equal "eager compaction, 4 threads" base eager4;
  assert_graphs_equal "compaction disabled vs default" base never;
  (* with threshold 0 every absorbed kill demands a compaction *)
  let deltas = Atomic.get eager.C.stats.C.csr_deltas in
  let compactions = Atomic.get eager.C.stats.C.csr_compactions in
  if deltas > 0 && compactions = 0 then
    Alcotest.failf
      "threshold 0 recorded %d deltas but no compaction" deltas;
  Alcotest.(check int) "threshold 1 never compacts" 0
    (Atomic.get never.C.stats.C.csr_compactions)

let suite =
  [
    quick "bitset: set/test/count/reset + bounds" bitset_basic;
    quick "bitset: concurrent sets have one winner" bitset_concurrent;
    qcheck ~count:6 "delta kills = fresh build (random seeds)"
      QCheck2.Gen.(int_range 2 9999)
      random_kill_equiv;
    quick "delta kills: every edge killed" kill_all_edges;
    slow "finalize equal under forced/disabled compaction" compaction_equiv;
  ]
