(* Crash-durable checkpoint/resume: journal framing and commit-cut
   semantics, checkpoint round-trips and damage rejection, crash-resume
   equivalence across seeds and kill points, the supervisor's restart
   policy, and the coarsened deadline clock. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Config = Pbca_core.Config
module Parallel = Pbca_core.Parallel
module Journal = Pbca_core.Journal
module Checkpoint = Pbca_core.Checkpoint
module Recover = Pbca_core.Recover
module Summary = Pbca_core.Summary
module Cfg_diff = Pbca_core.Cfg_diff
module Parse_error = Pbca_binfmt.Parse_error
module Fault = Pbca_concurrent.Fault
module Supervisor = Pbca_concurrent.Supervisor
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Profile = Pbca_codegen.Profile
module Emit = Pbca_codegen.Emit

let image_for seed = (Emit.generate (Profile.coreutils_like seed)).Emit.image

let parse ?config ?persist ?resume ?(threads = 4) image =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  Pbca_core.Parallel.parse_and_finalize ?config ?persist ?resume ~pool image

let with_artifacts f =
  let cp = Filename.temp_file "test_pr4" ".cp" in
  let j = cp ^ ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ cp; j; cp ^ ".tmp" ])
    (fun () -> f cp j)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let write_file path b =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b)

(* crash a checkpointed parse at [ordinal], leaving artifacts behind *)
let crashed_parse ?config ~ordinal ~cp ~j image =
  let persist = { Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 } in
  Fun.protect
    ~finally:(fun () -> Fault.disarm ())
    (fun () ->
      Fault.arm_at [ ordinal ] Fault.Crash;
      try ignore (parse ?config ~persist image) with _ -> ())

let load_plan ?(checkpoint = true) ~cp ~j () =
  Recover.load
    {
      Recover.src_checkpoint = (if checkpoint then Some cp else None);
      src_journal = Some j;
    }

let assert_graphs_equal ~what g_clean g_res =
  Alcotest.(check bool)
    (what ^ ": summaries equal")
    true
    (Summary.equal (Summary.of_cfg g_clean) (Summary.of_cfg g_res));
  let d = Cfg_diff.diff g_clean g_res in
  Alcotest.(check bool)
    (what ^ ": Cfg_diff empty")
    true
    (d.Cfg_diff.added = [] && d.Cfg_diff.removed = [] && d.Cfg_diff.changed = [])

(* --------------------------- journal -------------------------------- *)

let sample_ops =
  [
    Journal.Op_block 0x1000;
    Journal.Op_func { entry = 0x1000; name = "main"; from_symtab = true };
    Journal.Op_term
      { start = 0x1000; insn = Some (Insn.Mov_ri (Reg.r0, 42)) };
    Journal.Op_term { start = 0x1010; insn = None };
    Journal.Op_end { start = 0x1000; end_ = 0x1010; ninsns = 4 };
    Journal.Op_edge { src = 0x1000; dst = 0x1010; kind = 0; jt = None };
    Journal.Op_edge { src = 0x1000; dst = 0x1020; kind = 6; jt = Some (3, 7) };
    Journal.Op_edge_dead { src = 0x1000; dst = 0x1020; kind = 6 };
    Journal.Op_edge_move { src = 0x1000; dst = 0x1010; kind = 0; new_src = 0x1008 };
    Journal.Op_jt_pending { end_ = 0x1010; reg = 3 };
    Journal.Op_conf { addr = 0x1030; conf = 2 };
    Journal.Op_conf { addr = 0x1040; conf = 1 };
    Journal.Op_degraded { addr = 0x1010; deadline = true };
    Journal.Op_degraded { addr = 0x1020; deadline = false };
  ]

let test_journal_roundtrip () =
  with_artifacts (fun _cp j ->
      let w = Journal.create_writer ~path:j in
      List.iter (Journal.emit w) sample_ops;
      Journal.flush w ~round:0;
      Journal.emit w (Journal.Op_block 0x2000);
      Journal.flush w ~round:1;
      Journal.close w;
      let t = Journal.read_committed j in
      Alcotest.(check bool) "not torn" false t.Journal.t_torn;
      Alcotest.(check int) "last round" 1 t.Journal.t_last_round;
      let got = List.map snd t.Journal.t_ops in
      Alcotest.(check bool)
        "ops round-trip bit for bit" true
        (got = sample_ops @ [ Journal.Op_block 0x2000 ]);
      let seqs = List.map fst t.Journal.t_ops in
      Alcotest.(check bool)
        "seqs strictly ascending" true
        (List.sort_uniq compare seqs = seqs))

let test_journal_commit_cut () =
  with_artifacts (fun _cp j ->
      let w = Journal.create_writer ~path:j in
      Journal.emit w (Journal.Op_block 0x1000);
      Journal.flush w ~round:0;
      (* buffered but never flushed: must not survive the "crash" *)
      Journal.emit w (Journal.Op_block 0x2000);
      Journal.close w;
      let t = Journal.read_committed j in
      Alcotest.(check int) "only committed ops" 1 (List.length t.Journal.t_ops);
      Alcotest.(check bool)
        "the committed op" true
        (List.map snd t.Journal.t_ops = [ Journal.Op_block 0x1000 ]))

let test_journal_torn_tail () =
  with_artifacts (fun _cp j ->
      let w = Journal.create_writer ~path:j in
      List.iter (Journal.emit w) sample_ops;
      Journal.flush w ~round:0;
      Journal.close w;
      let before = Journal.read_committed j in
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 j in
      output_string oc "\x0c\x00\x00\x00garbage torn tail bytes";
      close_out oc;
      let after = Journal.read_committed j in
      Alcotest.(check bool) "tail flagged torn" true after.Journal.t_torn;
      Alcotest.(check bool)
        "committed prefix intact" true
        (before.Journal.t_ops = after.Journal.t_ops))

let test_journal_crc_damage () =
  with_artifacts (fun _cp j ->
      let w = Journal.create_writer ~path:j in
      List.iter (Journal.emit w) sample_ops;
      Journal.flush w ~round:0;
      Journal.emit w (Journal.Op_block 0x3000);
      Journal.flush w ~round:1;
      Journal.close w;
      let whole = Journal.read_committed j in
      let n_whole = List.length whole.Journal.t_ops in
      let b = read_file j in
      (* flip one bit inside the last record: CRC must cut there, and the
         read must never raise *)
      let pos = Bytes.length b - 3 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      write_file j b;
      let t = Journal.read_committed j in
      Alcotest.(check bool) "flagged torn" true t.Journal.t_torn;
      Alcotest.(check bool)
        "only a prefix survives" true
        (List.length t.Journal.t_ops <= n_whole))

let test_journal_missing_file () =
  let t = Journal.read_committed "/nonexistent/journal" in
  Alcotest.(check int) "no ops" 0 (List.length t.Journal.t_ops);
  Alcotest.(check int) "no round" (-1) t.Journal.t_last_round

(* -------------------------- checkpoint ------------------------------ *)

let test_checkpoint_roundtrip () =
  with_artifacts (fun cp j ->
      let img = image_for 1 in
      ignore (parse ~persist:{ Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 } img);
      match Checkpoint.load ~path:cp with
      | Error e -> Alcotest.failf "load failed: %s" (Parse_error.to_string e)
      | Ok snap ->
        Alcotest.(check bool) "ops present" true (snap.Checkpoint.cp_ops <> []);
        Alcotest.(check int)
          "counters match wire order"
          (Array.length Checkpoint.counter_names)
          (Array.length snap.Checkpoint.cp_counters);
        Alcotest.(check bool)
          "progress preserved" true
          (snap.Checkpoint.cp_progress_s > 0.0);
        Alcotest.(check int) "first life" 0 snap.Checkpoint.cp_resume_count)

let test_checkpoint_damage_is_structured () =
  with_artifacts (fun cp j ->
      let img = image_for 1 in
      ignore (parse ~persist:{ Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 } img);
      let whole = read_file cp in
      (* every truncation must be a structured error, never an escape *)
      let len = Bytes.length whole in
      let step = max 1 (len / 37) in
      let pos = ref 0 in
      while !pos < len do
        write_file cp (Bytes.sub whole 0 !pos);
        (match Checkpoint.load ~path:cp with
        | Error
            ( Parse_error.Truncated _ | Parse_error.Bad_magic _
            | Parse_error.Bad_section _ ) ->
          ()
        | Error e ->
          Alcotest.failf "prefix %d: unexpected class %s" !pos
            (Parse_error.to_string e)
        | Ok _ -> Alcotest.failf "prefix %d loaded as Ok" !pos);
        pos := !pos + step
      done;
      (* bad magic *)
      let b = Bytes.copy whole in
      Bytes.blit_string "XXXX" 0 b 0 4;
      write_file cp b;
      (match Checkpoint.load ~path:cp with
      | Error (Parse_error.Bad_magic _) -> ()
      | _ -> Alcotest.fail "bad magic must be Bad_magic");
      (* missing file *)
      Sys.remove cp;
      match Checkpoint.load ~path:cp with
      | Error (Parse_error.Truncated _) -> ()
      | _ -> Alcotest.fail "missing checkpoint must be Truncated")

(* ----------------------- crash-resume equivalence -------------------- *)

let test_resume_equivalence () =
  (* >= 8 seeds x multiple kill points: killed-and-resumed == uninterrupted *)
  for seed = 1 to 8 do
    let img = image_for seed in
    let g_clean = parse img in
    List.iter
      (fun ordinal ->
        with_artifacts (fun cp j ->
            crashed_parse ~ordinal ~cp ~j img;
            match load_plan ~cp ~j () with
            | Error e ->
              Alcotest.failf "seed %d kill %d: load failed: %s" seed ordinal
                (Parse_error.to_string e)
            | Ok plan ->
              let g_res = parse ~resume:plan img in
              assert_graphs_equal
                ~what:(Printf.sprintf "seed %d kill %d" seed ordinal)
                g_clean g_res;
              Alcotest.(check int)
                "resume counted" 1
                (Atomic.get g_res.Cfg.stats.Cfg.resume_count)))
      [ 40; 250; 700 ]
  done

let test_resume_torn_journal () =
  let img = image_for 2 in
  let g_clean = parse img in
  with_artifacts (fun cp j ->
      crashed_parse ~ordinal:700 ~cp ~j img;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 j in
      output_string oc "power loss mid-write \xde\xad";
      close_out oc;
      match load_plan ~cp ~j () with
      | Error e ->
        Alcotest.failf "torn tail must not fail recovery: %s"
          (Parse_error.to_string e)
      | Ok plan ->
        let g_res = parse ~resume:plan img in
        assert_graphs_equal ~what:"torn journal tail" g_clean g_res)

let test_resume_truncated_checkpoint_falls_back () =
  let img = image_for 3 in
  let g_clean = parse img in
  with_artifacts (fun cp j ->
      crashed_parse ~ordinal:700 ~cp ~j img;
      let b = read_file cp in
      write_file cp (Bytes.sub b 0 (Bytes.length b / 2));
      (match load_plan ~cp ~j () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated checkpoint must be rejected");
      (* journal-only retry reconstructs the same graph from scratch *)
      match load_plan ~checkpoint:false ~cp ~j () with
      | Error e ->
        Alcotest.failf "journal-only load is total: %s"
          (Parse_error.to_string e)
      | Ok plan ->
        Alcotest.(check bool) "ops replayed" true (plan.Recover.pl_ops <> []);
        let g_res = parse ~resume:plan img in
        assert_graphs_equal ~what:"journal-only fallback" g_clean g_res)

let test_resume_after_deadline_degraded_save () =
  (* a run degraded by its deadline saves deadline-marked state; resuming
     with a sane deadline re-does the lost work and converges to the
     uninterrupted graph, with the marks dropped *)
  let img = image_for 4 in
  let g_clean = parse img in
  with_artifacts (fun cp j ->
      let starved =
        { Config.default with Config.deadline_s = 1e-6; deadline_poll_every = 1 }
      in
      ignore
        (parse ~config:starved
           ~persist:{ Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 }
           img);
      match load_plan ~cp ~j () with
      | Error e -> Alcotest.failf "load failed: %s" (Parse_error.to_string e)
      | Ok plan ->
        let g_res = parse ~resume:plan img in
        assert_graphs_equal ~what:"deadline-degraded save" g_clean g_res;
        Alcotest.(check int)
          "deadline marks dropped" 0
          (Cfg.degraded_count g_res))

let test_resume_counters_surface () =
  let img = image_for 5 in
  with_artifacts (fun cp j ->
      crashed_parse ~ordinal:700 ~cp ~j img;
      match load_plan ~cp ~j () with
      | Error e -> Alcotest.failf "load failed: %s" (Parse_error.to_string e)
      | Ok plan ->
        with_artifacts (fun cp2 j2 ->
            let g =
              parse ~resume:plan
                ~persist:
                  { Parallel.p_journal = j2; p_checkpoint = cp2; p_every = 1 }
                img
            in
            let s = g.Cfg.stats in
            Alcotest.(check bool)
              "replayed_ops > 0" true
              (Atomic.get s.Cfg.replayed_ops > 0);
            Alcotest.(check bool)
              "journal_records > 0" true
              (Atomic.get s.Cfg.journal_records > 0);
            Alcotest.(check int) "resume_count" 1 (Atomic.get s.Cfg.resume_count);
            (* the stats line surfaces the recovery counters *)
            let txt = Format.asprintf "%a" Summary.pp_stats g in
            let contains hay needle =
              let nh = String.length hay and nn = String.length needle in
              let rec go i =
                i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
              in
              go 0
            in
            Alcotest.(check bool)
              "pp_stats shows recovery" true
              (contains txt "recovery")))

(* --------------------------- supervisor ------------------------------ *)

let fast_cfg =
  { Supervisor.max_restarts = 3; backoff_base_s = 1e-4; backoff_cap_s = 1e-3 }

let test_supervisor_restart_then_success () =
  let attempts = ref [] in
  let job =
    {
      Supervisor.j_id = "flaky";
      j_run =
        (fun ~attempt ->
          attempts := attempt :: !attempts;
          if attempt < 2 then Supervisor.Crashed "boom" else Supervisor.Ok_clean);
    }
  in
  match Supervisor.run ~config:fast_cfg [ job ] with
  | [ r ] ->
    Alcotest.(check bool) "ended clean" true (r.Supervisor.r_outcome = Supervisor.Ok_clean);
    Alcotest.(check int) "two restarts" 2 r.Supervisor.r_restarts;
    Alcotest.(check (list int)) "attempt numbers" [ 0; 1; 2 ] (List.rev !attempts);
    Alcotest.(check int) "exit 0" 0 (Supervisor.worst_exit [ r ])
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_supervisor_gives_up () =
  let calls = ref 0 in
  let job =
    {
      Supervisor.j_id = "doomed";
      j_run =
        (fun ~attempt:_ ->
          incr calls;
          raise Exit);
    }
  in
  match Supervisor.run ~config:fast_cfg [ job ] with
  | [ r ] ->
    Alcotest.(check int) "initial + max_restarts attempts" 4 !calls;
    Alcotest.(check int) "restarts recorded" 3 r.Supervisor.r_restarts;
    Alcotest.(check bool)
      "outcome is crashed" true
      (match r.Supervisor.r_outcome with Supervisor.Crashed _ -> true | _ -> false);
    Alcotest.(check int) "exit 3" 3 (Supervisor.worst_exit [ r ])
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_supervisor_rejected_not_retried () =
  let calls = ref 0 in
  let job =
    {
      Supervisor.j_id = "malformed";
      j_run =
        (fun ~attempt:_ ->
          incr calls;
          Supervisor.Rejected "bad input");
    }
  in
  match Supervisor.run ~config:fast_cfg [ job ] with
  | [ r ] ->
    Alcotest.(check int) "one attempt only" 1 !calls;
    Alcotest.(check int) "no restarts" 0 r.Supervisor.r_restarts;
    Alcotest.(check int) "exit 2" 2 (Supervisor.worst_exit [ r ])
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let test_supervisor_isolation_and_worst_exit () =
  let ok = { Supervisor.j_id = "ok"; j_run = (fun ~attempt:_ -> Supervisor.Ok_clean) } in
  let deg =
    { Supervisor.j_id = "deg"; j_run = (fun ~attempt:_ -> Supervisor.Ok_degraded) }
  in
  let bad =
    { Supervisor.j_id = "bad"; j_run = (fun ~attempt:_ -> Supervisor.Rejected "x") }
  in
  let rs = Supervisor.run ~config:fast_cfg [ ok; bad; deg ] in
  Alcotest.(check int) "three reports" 3 (List.length rs);
  Alcotest.(check int) "worst exit" 2 (Supervisor.worst_exit rs);
  (* a sibling's failure never contaminates the others *)
  List.iter
    (fun (r : Supervisor.report) ->
      if r.r_id = "ok" then
        Alcotest.(check bool) "ok stayed ok" true (r.r_outcome = Supervisor.Ok_clean))
    rs

let test_backoff_curve () =
  let cfg =
    { Supervisor.max_restarts = 10; backoff_base_s = 0.01; backoff_cap_s = 1.0 }
  in
  Alcotest.(check (float 1e-9)) "k=0" 0.01 (Supervisor.backoff_delay cfg 0);
  Alcotest.(check (float 1e-9)) "k=1" 0.02 (Supervisor.backoff_delay cfg 1);
  Alcotest.(check (float 1e-9)) "k=3" 0.08 (Supervisor.backoff_delay cfg 3);
  Alcotest.(check (float 1e-9)) "capped" 1.0 (Supervisor.backoff_delay cfg 20)

(* ------------------------- deadline clock ---------------------------- *)

let small_image () = (emit_spec (mk_spec [ diamond_fun () ])).image

let test_deadline_clock_coarsening () =
  let config =
    { Config.default with Config.deadline_s = 3600.0; deadline_poll_every = 64 }
  in
  let g = Cfg.create ~config (small_image ()) in
  for _ = 1 to 1000 do
    ignore (Cfg.past_deadline g)
  done;
  let s = g.Cfg.stats in
  Alcotest.(check int) "every call checks" 1000 (Atomic.get s.Cfg.deadline_checks);
  Alcotest.(check int)
    "polls coarsened to 1/64th" 16
    (Atomic.get s.Cfg.deadline_polls)

let test_deadline_clock_latches () =
  let config =
    { Config.default with Config.deadline_s = 1e-9; deadline_poll_every = 8 }
  in
  let g = Cfg.create ~config (small_image ()) in
  Alcotest.(check bool) "first call trips" true (Cfg.past_deadline g);
  for _ = 1 to 50 do
    Alcotest.(check bool) "stays tripped" true (Cfg.past_deadline g)
  done;
  let s = g.Cfg.stats in
  Alcotest.(check int) "one poll, then latched" 1 (Atomic.get s.Cfg.deadline_polls);
  Alcotest.(check int) "latch skips the counter" 1 (Atomic.get s.Cfg.deadline_checks)

let test_deadline_clock_infinite_free () =
  let g = Cfg.create ~config:Config.default (small_image ()) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "never past" false (Cfg.past_deadline g)
  done;
  Alcotest.(check int)
    "no accounting when unbounded" 0
    (Atomic.get g.Cfg.stats.Cfg.deadline_checks)

let suite =
  [
    quick "journal: all ops round-trip" test_journal_roundtrip;
    quick "journal: uncommitted tail dropped" test_journal_commit_cut;
    quick "journal: torn tail discarded silently" test_journal_torn_tail;
    quick "journal: CRC damage cuts, never raises" test_journal_crc_damage;
    quick "journal: missing file is empty" test_journal_missing_file;
    quick "checkpoint: save/load round-trip" test_checkpoint_roundtrip;
    quick "checkpoint: damage is a structured error"
      test_checkpoint_damage_is_structured;
    slow "resume: 8 seeds x 3 kill points Cfg_diff-equal"
      test_resume_equivalence;
    quick "resume: torn journal tail tolerated" test_resume_torn_journal;
    quick "resume: truncated checkpoint rejected, journal-only fallback"
      test_resume_truncated_checkpoint_falls_back;
    quick "resume: deadline-degraded save converges"
      test_resume_after_deadline_degraded_save;
    quick "resume: recovery counters surface" test_resume_counters_surface;
    quick "supervisor: restarts then succeeds" test_supervisor_restart_then_success;
    quick "supervisor: bounded restarts give up" test_supervisor_gives_up;
    quick "supervisor: rejected input not retried"
      test_supervisor_rejected_not_retried;
    quick "supervisor: job isolation + worst exit"
      test_supervisor_isolation_and_worst_exit;
    quick "supervisor: exponential backoff capped" test_backoff_curve;
    quick "deadline clock: polls 1 in N" test_deadline_clock_coarsening;
    quick "deadline clock: latches after tripping" test_deadline_clock_latches;
    quick "deadline clock: free when unbounded" test_deadline_clock_infinite_free;
  ]
