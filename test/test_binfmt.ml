(* Tests for the binary container: byte IO, mangling, symbols, the
   multi-keyed parallel symbol table (paper Section 6.2), images. *)

open Tutil
module Bio = Pbca_binfmt.Bio
module Mangle = Pbca_binfmt.Mangle
module Symbol = Pbca_binfmt.Symbol
module Symtab = Pbca_binfmt.Symtab
module Section = Pbca_binfmt.Section
module Image = Pbca_binfmt.Image
module Parse_error = Pbca_binfmt.Parse_error

(* ------------------------------- bio ---------------------------------- *)

let test_bio_roundtrip =
  qcheck ~count:300 "bio: scalar roundtrip"
    QCheck2.Gen.(
      tup4 (int_bound 0xff) (int_bound 0xffff) (int_bound 0xffffffff)
        (string_size (int_bound 40)))
    (fun (a, b, c, s) ->
      let w = Bio.W.create () in
      Bio.W.u8 w a;
      Bio.W.u16 w b;
      Bio.W.u32 w c;
      Bio.W.u64 w (c * 7);
      Bio.W.str w s;
      Bio.W.bytes w (Bytes.of_string s);
      let r = Bio.R.of_bytes (Bio.W.contents w) in
      Bio.R.u8 r = a && Bio.R.u16 r = b && Bio.R.u32 r = c
      && Bio.R.u64 r = c * 7
      && Bio.R.str r = s
      && Bytes.to_string (Bio.R.bytes r) = s
      && Bio.R.eof r)

let test_bio_truncated () =
  let r = Bio.R.of_bytes (Bytes.of_string "\x01") in
  ignore (Bio.R.u8 r);
  Alcotest.check_raises "reading past the end" Bio.R.Truncated (fun () ->
      ignore (Bio.R.u8 r))

(* ------------------------------ mangle -------------------------------- *)

let gen_name =
  QCheck2.Gen.(
    map
      (fun cs -> String.init (1 + (List.length cs mod 12)) (fun i ->
           Char.chr (97 + (List.nth cs (i mod max 1 (List.length cs)) mod 26))))
      (list_size (int_range 1 12) (int_bound 1000)))

let gen_args =
  QCheck2.Gen.(
    list_size (int_bound 4) (oneofl [ Mangle.Int; Mangle.Float; Mangle.Ptr ]))

let test_mangle_roundtrip =
  qcheck ~count:300 "mangle: demangle inverts mangle"
    (QCheck2.Gen.pair gen_name gen_args)
    (fun (name, args) ->
      Mangle.demangle (Mangle.mangle name args) = Some (name, args))

let test_mangle_pretty () =
  Alcotest.(check string) "pretty" "foo" (Mangle.pretty (Mangle.mangle "foo" [ Int; Ptr ]));
  Alcotest.(check string) "typed" "foo(int, ptr)"
    (Mangle.typed (Mangle.mangle "foo" [ Int; Ptr ]));
  Alcotest.(check string) "unmangled passthrough" "main" (Mangle.pretty "main");
  Alcotest.(check bool) "non-mangled demangle" true (Mangle.demangle "main" = None)

(* ------------------------------ symtab -------------------------------- *)

let test_symtab_multikey () =
  let t = Symtab.create () in
  let s1 = Symbol.make (Mangle.mangle "foo" [ Int ]) 0x100 in
  let s2 = Symbol.make (Mangle.mangle "foo" [ Float ]) 0x200 in
  Alcotest.(check bool) "insert s1" true (Symtab.insert t s1);
  Alcotest.(check bool) "insert s2" true (Symtab.insert t s2);
  Alcotest.(check bool) "duplicate rejected" false (Symtab.insert t s1);
  Alcotest.(check int) "by_offset" 1 (List.length (Symtab.by_offset t 0x100));
  Alcotest.(check int) "by_pretty finds both overloads" 2
    (List.length (Symtab.by_pretty t "foo"));
  Alcotest.(check int) "by_typed disambiguates" 1
    (List.length (Symtab.by_typed t "foo(int)"));
  Alcotest.(check int) "by_mangled" 1
    (List.length (Symtab.by_mangled t (Mangle.mangle "foo" [ Int ])));
  Alcotest.(check int) "length" 2 (Symtab.length t)

let test_symtab_parallel () =
  (* many domains inserting overlapping symbol sets: each symbol ends up in
     every index exactly once (the Listing 6 total-order argument) *)
  let t = Symtab.create () in
  let syms =
    List.init 200 (fun i -> Symbol.make (Printf.sprintf "sym_%d" i) (i * 16))
  in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () -> List.iter (fun s -> ignore (Symtab.insert t s)) syms))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "master unique" 200 (Symtab.length t);
  List.iter
    (fun (s : Symbol.t) ->
      Alcotest.(check int)
        (Printf.sprintf "offset index of %s" s.mangled)
        1
        (List.length (Symtab.by_offset t s.offset));
      Alcotest.(check int)
        (Printf.sprintf "pretty index of %s" s.mangled)
        1
        (List.length (Symtab.by_pretty t (Symbol.pretty s))))
    syms

let test_symtab_serialize () =
  let t = Symtab.create () in
  for i = 0 to 40 do
    ignore (Symtab.insert t (Symbol.make ~size:i (Printf.sprintf "s%d" i) (i * 8)))
  done;
  let w = Bio.W.create () in
  Symtab.write w t;
  let t2 = Symtab.read (Bio.R.of_bytes (Bio.W.contents w)) in
  Alcotest.(check int) "roundtrip length" (Symtab.length t) (Symtab.length t2);
  Alcotest.(check int) "lookup works" 1 (List.length (Symtab.by_pretty t2 "s7"))

(* ------------------------------ image --------------------------------- *)

let test_section () =
  let s = Section.make ~name:".x" ~addr:0x1000 (Bytes.of_string "\x01\x02\x03\x04\x05") in
  Alcotest.(check bool) "contains start" true (Section.contains s 0x1000);
  Alcotest.(check bool) "contains last" true (Section.contains s 0x1004);
  Alcotest.(check bool) "excludes end" false (Section.contains s 0x1005);
  Alcotest.(check int) "u8" 3 (Section.u8 s 0x1002);
  Alcotest.(check int) "u32 little-endian" 0x04030201 (Section.u32 s 0x1000)

let test_image_roundtrip () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 25 } in
  let img = r.image in
  let bytes = Image.write img in
  let img2 = Image.read bytes in
  Alcotest.(check int) "text size" (Image.text_size img) (Image.text_size img2);
  Alcotest.(check int) "total size" (Image.total_size img) (Image.total_size img2);
  Alcotest.(check int) "symbols"
    (Symtab.length img.symtab)
    (Symtab.length img2.symtab);
  Alcotest.(check int) "entry" img.entry img2.entry;
  (* decoding equivalence at entry *)
  let d1 = Image.decode_at img img.entry and d2 = Image.decode_at img2 img2.entry in
  Alcotest.(check bool) "same first instruction" true (d1 = d2)

let test_image_bad_magic () =
  Alcotest.(check bool) "bad magic rejected" true
    (try
       ignore (Image.read (Bytes.of_string "\x04\x00NOPE"));
       false
     with Parse_error.Error (Parse_error.Bad_magic { got = "NOPE" }) -> true);
  (* and the non-raising entry point classifies it the same way *)
  (match Image.read_result (Bytes.of_string "\x04\x00NOPE") with
  | Error (Parse_error.Bad_magic _) -> ()
  | Ok _ -> Alcotest.fail "read_result accepted bad magic"
  | Error e -> Alcotest.failf "wrong class: %s" (Parse_error.to_string e))

let test_image_lookups () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 10 } in
  let img = r.image in
  Alcotest.(check bool) ".text present" true (Image.section img ".text" <> None);
  Alcotest.(check bool) ".rodata present" true (Image.section img ".rodata" <> None);
  Alcotest.(check bool) ".debug present" true (Image.section img ".debug" <> None);
  Alcotest.(check bool) "entry in text" true (Image.in_text img img.entry);
  Alcotest.(check bool) "u8 outside sections" true (Image.u8 img 0xfff_ffff = None)

let suite =
  [
    test_bio_roundtrip;
    quick "bio: truncation raises" test_bio_truncated;
    test_mangle_roundtrip;
    quick "mangle: pretty and typed forms" test_mangle_pretty;
    quick "symtab: four keys" test_symtab_multikey;
    quick "symtab: concurrent inserts unique (Listing 6)" test_symtab_parallel;
    quick "symtab: serialize roundtrip" test_symtab_serialize;
    quick "section: byte reads" test_section;
    quick "image: write/read roundtrip" test_image_roundtrip;
    quick "image: bad magic" test_image_bad_magic;
    quick "image: section lookups" test_image_lookups;
  ]
