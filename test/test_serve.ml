(* The bserve daemon: wire-protocol totality, admission control and load
   shedding, end-to-end deadlines, supervised per-request isolation, the
   content-addressed result cache (rot served as a miss), and the
   zero-loss drain discipline. Plus the two concurrency satellites:
   interruptible supervisor backoff and monotonic Fault.Delay. *)

open Tutil
module Wire = Pbca_serve.Wire
module Serve = Pbca_serve.Serve
module Sclient = Pbca_serve.Sclient
module Cache = Pbca_serve.Cache
module Fault = Pbca_concurrent.Fault
module Supervisor = Pbca_concurrent.Supervisor
module Task_pool = Pbca_concurrent.Task_pool
module Clock = Pbca_obs.Clock
module Metrics = Pbca_obs.Metrics
module Mutate = Pbca_codegen.Mutate
module Rng = Pbca_codegen.Rng
module Summary = Pbca_core.Summary
module Config = Pbca_core.Config

let image_bytes seed =
  Pbca_binfmt.Image.write
    (Emit.generate (Profile.coreutils_like seed)).Emit.image

(* every daemon test gets a private socket + cache dir and always tears
   the daemon and the process-global service-fault plan down *)
let with_daemon ?(tweak = fun c -> c) f =
  let dir = Filename.temp_file "test_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    tweak
      { (Serve.default_config ~sock) with
        Serve.sc_workers = 1;
        sc_acceptors = 1;
        sc_queue = 4;
        sc_read_timeout_s = 0.5;
        sc_retries = 2;
        sc_backoff_base_s = 0.002;
        sc_cache_dir = Some (Filename.concat dir "cache");
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_service ();
      (try
         let cache = Filename.concat dir "cache" in
         (try
            Array.iter
              (fun e -> try Sys.remove (Filename.concat cache e) with _ -> ())
              (Sys.readdir cache)
          with Sys_error _ -> ());
         (try Unix.rmdir cache with Unix.Unix_error _ -> ());
         (try Sys.remove sock with Sys_error _ -> ());
         Unix.rmdir dir
       with Unix.Unix_error _ | Sys_error _ -> ()))
    (fun () -> Serve.with_server cfg (fun t -> f t sock))

let counter_value t name =
  match List.assoc_opt name (Metrics.snapshot (Serve.metrics t)) with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

let ok_roundtrip ~sock req =
  match Sclient.roundtrip ~timeout_s:20.0 ~sock req with
  | Ok r -> r
  | Error e -> Alcotest.failf "roundtrip failed: %s" (Sclient.error_to_string e)

let status = Alcotest.testable
    (Fmt.of_to_string Wire.status_name)
    (fun a b -> a = b)

(* ------------------------------------------------------------------ *)
(* Wire protocol.                                                      *)

let test_wire_roundtrip () =
  let img = image_bytes 1 in
  let req = Wire.request ~deadline_ms:250 ~no_cache:true ~image:img Wire.Parse in
  (match Wire.decode_request (Wire.encode_request req) with
  | Ok r ->
    Alcotest.(check bool) "kind" true (r.Wire.rq_kind = Wire.Parse);
    Alcotest.(check int) "deadline" 250 r.Wire.rq_deadline_ms;
    Alcotest.(check bool) "no_cache" true r.Wire.rq_no_cache;
    Alcotest.(check bytes) "image" img r.Wire.rq_image
  | Error e -> Alcotest.failf "request: %s" (Wire.frame_error_to_string e));
  let rep =
    Wire.reply ~cache_hit:true ~retries:2 ~wait_us:11 ~run_us:22
      ~msg:"note" ~body:"fingerprint=abc" Wire.Ok_degraded
  in
  match Wire.decode_reply (Wire.encode_reply rep) with
  | Ok r ->
    Alcotest.check status "status" Wire.Ok_degraded r.Wire.rp_status;
    Alcotest.(check bool) "hit" true r.Wire.rp_cache_hit;
    Alcotest.(check int) "retries" 2 r.Wire.rp_retries;
    Alcotest.(check string) "msg" "note" r.Wire.rp_msg;
    Alcotest.(check string) "body" "fingerprint=abc" r.Wire.rp_body
  | Error e -> Alcotest.failf "reply: %s" (Wire.frame_error_to_string e)

(* the 8th mutation axis against the pure decoder: decoding hostile
   frames is total, and a frame that still decodes carries the exact
   original payload (CRC discipline: no silent partial decode) *)
let test_wire_garble_total () =
  let payload = Bytes.of_string "serve payload \x00\x01\x02 bytes" in
  let frame = Wire.frame_of_payload payload in
  let survived = ref 0 in
  for seed = 0 to 199 do
    let rng = Rng.create seed in
    let garbled = Mutate.garble_frame ~rng frame in
    match Wire.decode_frame garbled with
    | Ok p ->
      incr survived;
      Alcotest.(check bytes) "identical payload on Ok" payload p
    | Error _ -> ()
    | exception e ->
      Alcotest.failf "decoder raised on seed %d: %s" seed (Printexc.to_string e)
  done;
  (* nearly every garble must be caught; a rare coincidental survival
     (e.g. the length field mutated to its own value) is acceptable *)
  Alcotest.(check bool) "garbles rejected" true (!survived <= 5)

let test_wire_decode_empty_and_short () =
  Alcotest.(check bool) "empty is torn" true
    (match Wire.decode_frame (Bytes.create 0) with
    | Error (Wire.Torn _) -> true
    | _ -> false);
  Alcotest.(check bool) "bad magic detected" true
    (match Wire.decode_frame (Bytes.of_string "XXXXXXXXXXXXXXXX") with
    | Error Wire.Bad_magic -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Daemon behavior.                                                    *)

let test_ping_and_stats () =
  with_daemon (fun t sock ->
      let r = ok_roundtrip ~sock (Wire.request Wire.Ping) in
      Alcotest.check status "ping ok" Wire.Ok_clean r.Wire.rp_status;
      Alcotest.(check string) "pong" "pong" r.Wire.rp_body;
      let r = ok_roundtrip ~sock (Wire.request Wire.Stats) in
      Alcotest.check status "stats ok" Wire.Ok_clean r.Wire.rp_status;
      Alcotest.(check bool) "stats body mentions counters" true
        (String.length r.Wire.rp_body > 0);
      ignore t)

let test_parse_matches_local () =
  with_daemon (fun _ sock ->
      let img = image_bytes 1 in
      let r = ok_roundtrip ~sock (Wire.request ~image:img Wire.Parse) in
      Alcotest.check status "clean" Wire.Ok_clean r.Wire.rp_status;
      let pool = Task_pool.create ~threads:1 in
      let local =
        Summary.fingerprint
          (Summary.of_cfg
             (Pbca_core.Parallel.parse_and_finalize ~pool
                (Pbca_binfmt.Image.read img)))
      in
      Alcotest.(check bool) "daemon body carries local fingerprint" true
        (let prefix = "fingerprint=" ^ local in
         String.length r.Wire.rp_body >= String.length prefix
         && String.sub r.Wire.rp_body 0 (String.length prefix) = prefix))

let test_shed_at_full_queue () =
  with_daemon
    ~tweak:(fun c -> { c with Serve.sc_queue = 2; sc_cache_dir = None })
    (fun t sock ->
      (* the single worker sits on request #0 long enough for the burst
         to pile up behind the queue bound *)
      Fault.arm_service_at [ (0, Fault.Stall 0.6) ];
      let img = image_bytes 1 in
      let reqs = List.init 6 (fun _ -> Wire.request ~image:img Wire.Parse) in
      let replies = Sclient.burst ~timeout_s:30.0 ~sock reqs in
      let count st =
        List.length
          (List.filter
             (function
               | Ok (r : Wire.reply) -> r.Wire.rp_status = st
               | Error _ -> false)
             replies)
      in
      let errors =
        List.filter (function Error _ -> true | Ok _ -> false) replies
      in
      Alcotest.(check int) "every burst request got a structured reply" 0
        (List.length errors);
      Alcotest.(check bool) "load was shed" true (count Wire.Overloaded >= 1);
      Alcotest.(check bool) "admitted requests served" true
        (count Wire.Ok_clean >= 1);
      Alcotest.(check bool) "shed counter advanced" true
        (counter_value t "serve_shed" >= 1);
      Alcotest.(check int) "shed + accepted covers the burst" 6
        (counter_value t "serve_shed" + counter_value t "serve_accepted"))

let test_deadline_expired_structured () =
  with_daemon (fun t sock ->
      (* the stall outlives the request deadline: expiry must be noticed
         before service starts and answered structurally *)
      Fault.arm_service_at [ (0, Fault.Stall 0.3) ];
      let img = image_bytes 1 in
      let r =
        ok_roundtrip ~sock (Wire.request ~deadline_ms:50 ~image:img Wire.Parse)
      in
      Alcotest.check status "expired" Wire.Expired r.Wire.rp_status;
      Alcotest.(check bool) "message says so" true (r.Wire.rp_msg <> "");
      Alcotest.(check bool) "expired counter" true
        (counter_value t "serve_expired" >= 1))

let test_worker_crash_retried () =
  with_daemon (fun t sock ->
      (* first attempt killed, retry succeeds *)
      Fault.arm_service_at [ (0, Fault.Kill_worker 1) ];
      let img = image_bytes 1 in
      let r = ok_roundtrip ~sock (Wire.request ~image:img Wire.Parse) in
      Alcotest.check status "recovered" Wire.Ok_clean r.Wire.rp_status;
      Alcotest.(check int) "one restart consumed" 1 r.Wire.rp_retries;
      Alcotest.(check bool) "crash counted" true
        (counter_value t "serve_worker_crashes" >= 0))

let test_worker_crash_bounded () =
  with_daemon (fun t sock ->
      (* every attempt killed: after the restart budget the request must
         fail structurally and the daemon must stay up *)
      Fault.arm_service_at [ (0, Fault.Kill_worker 99) ];
      let img = image_bytes 1 in
      let r = ok_roundtrip ~sock (Wire.request ~image:img Wire.Parse) in
      Alcotest.check status "failed" Wire.Failed r.Wire.rp_status;
      Alcotest.(check int) "full restart budget consumed" 2 r.Wire.rp_retries;
      let ping = ok_roundtrip ~sock (Wire.request Wire.Ping) in
      Alcotest.check status "daemon alive after crash storm" Wire.Ok_clean
        ping.Wire.rp_status;
      Alcotest.(check bool) "failure counted" true
        (counter_value t "serve_failed" >= 1))

let test_cache_hit_and_rot_as_miss () =
  with_daemon (fun t sock ->
      let img = image_bytes 2 in
      let req = Wire.request ~image:img Wire.Parse in
      let cold = ok_roundtrip ~sock req in
      Alcotest.check status "cold ok" Wire.Ok_clean cold.Wire.rp_status;
      Alcotest.(check bool) "cold is a miss" false cold.Wire.rp_cache_hit;
      let hit = ok_roundtrip ~sock req in
      Alcotest.check status "hit ok" Wire.Ok_clean hit.Wire.rp_status;
      Alcotest.(check bool) "second request hits" true hit.Wire.rp_cache_hit;
      Alcotest.(check string) "hit body identical to cold body"
        cold.Wire.rp_body hit.Wire.rp_body;
      (* rot the cached checkpoint before the next lookup: the daemon
         must treat it as a miss and still produce the identical result
         (arming resets the request-ordinal counter, so the next request
         draws ordinal 0) *)
      Fault.arm_service_at [ (0, Fault.Cache_rot) ];
      let rotted = ok_roundtrip ~sock req in
      Alcotest.check status "rot still ok" Wire.Ok_clean rotted.Wire.rp_status;
      Alcotest.(check string) "rot body identical" cold.Wire.rp_body
        rotted.Wire.rp_body;
      Alcotest.(check bool) "hits and misses counted" true
        (counter_value t "serve_cache_hits" >= 1
        && counter_value t "serve_cache_misses" >= 2))

let test_no_cache_flag_bypasses () =
  with_daemon (fun _ sock ->
      let img = image_bytes 1 in
      let req = Wire.request ~image:img Wire.Parse in
      ignore (ok_roundtrip ~sock req);
      let bypass = ok_roundtrip ~sock (Wire.request ~no_cache:true ~image:img Wire.Parse) in
      Alcotest.(check bool) "no-cache never hits" false bypass.Wire.rp_cache_hit)

let test_bad_frame_structured () =
  with_daemon (fun t sock ->
      let junk = Bytes.of_string "GARBAGEGARBAGEGARBAGE" in
      (match Sclient.send_raw ~timeout_s:5.0 ~sock junk with
      | Ok r -> Alcotest.check status "bad frame" Wire.Bad_frame r.Wire.rp_status
      | Error e -> Alcotest.failf "wanted a structured reply, got %s"
                     (Sclient.error_to_string e));
      Alcotest.(check bool) "counted" true
        (counter_value t "serve_bad_frames" >= 1))

let test_rejected_image () =
  with_daemon (fun _ sock ->
      (* valid framing, hostile payload image: a structured rejection,
         and no retry (rejections are final) *)
      let r =
        ok_roundtrip ~sock
          (Wire.request ~image:(Bytes.of_string "not an sbf image") Wire.Parse)
      in
      Alcotest.check status "rejected" Wire.Rejected r.Wire.rp_status;
      Alcotest.(check int) "never retried" 0 r.Wire.rp_retries;
      Alcotest.(check bool) "reason given" true (r.Wire.rp_msg <> ""))

let test_drain_zero_loss () =
  let dir = Filename.temp_file "test_drain" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sock = Filename.concat dir "d.sock" in
  let cfg =
    { (Serve.default_config ~sock) with
      Serve.sc_workers = 1;
      sc_acceptors = 1;
      sc_queue = 4;
      sc_cache_dir = None;
      sc_read_timeout_s = 0.5;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Fault.disarm_service ();
      (try Sys.remove sock with Sys_error _ -> ());
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let t = Serve.start cfg in
      (* slow the worker down so all three requests are still in flight
         (one being served, two queued) when the drain begins *)
      Fault.arm_service_at
        [ (0, Fault.Stall 0.25); (1, Fault.Stall 0.05); (2, Fault.Stall 0.05) ];
      let img = image_bytes 1 in
      let conns =
        List.init 3 (fun _ ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX sock);
            (match
               Wire.write_frame fd
                 (Wire.encode_request (Wire.request ~image:img Wire.Parse))
             with
            | Ok () -> ()
            | Error m -> Alcotest.failf "send failed: %s" m);
            fd)
      in
      (* give the acceptor time to admit all three, then drain *)
      Unix.sleepf 0.1;
      Alcotest.(check int) "all three admitted before drain" 3
        (counter_value t "serve_accepted");
      Serve.stop t;
      (* every admitted request must have been answered during the drain *)
      List.iteri
        (fun i fd ->
          (match Wire.read_reply ~timeout_s:5.0 fd with
          | Ok r ->
            Alcotest.check status
              (Printf.sprintf "in-flight request %d served through drain" i)
              Wire.Ok_clean r.Wire.rp_status
          | Error e ->
            Alcotest.failf "request %d lost in drain: %s" i
              (Wire.io_error_to_string e));
          Unix.close fd)
        conns;
      (* and late arrivals are refused cleanly, not ignored *)
      match Sclient.roundtrip ~timeout_s:2.0 ~sock (Wire.request Wire.Ping) with
      | Error (Sclient.Unavailable _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "socket should be gone after stop")

(* ------------------------------------------------------------------ *)
(* Satellites: supervisor backoff interruption, monotonic delay.       *)

let test_supervisor_backoff_interruptible () =
  let stop = Atomic.make false in
  let job =
    { Supervisor.j_id = "always-crash";
      j_run = (fun ~attempt:_ -> Supervisor.Crashed "boom") }
  in
  let cfg =
    { Supervisor.max_restarts = 4; backoff_base_s = 5.0; backoff_cap_s = 5.0 }
  in
  let t0 = Clock.now () in
  let stopper =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Atomic.set stop true)
  in
  let reports =
    Supervisor.run ~config:cfg ~should_stop:(fun () -> Atomic.get stop) [ job ]
  in
  Domain.join stopper;
  let dt = Clock.elapsed t0 in
  (match reports with
  | [ r ] ->
    Alcotest.(check bool) "kept the crashed outcome" true
      (match r.Supervisor.r_outcome with
      | Supervisor.Crashed _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "one report expected");
  (* without interruption this would sleep 5s before the next attempt *)
  Alcotest.(check bool)
    (Printf.sprintf "drain interrupted the backoff (%.3fs)" dt)
    true (dt < 1.0)

let test_fault_delay_monotonic () =
  Fun.protect
    ~finally:(fun () -> Fault.disarm ())
    (fun () ->
      Fault.arm_at [ 0 ] (Fault.Delay 0.05);
      let pool = Task_pool.create ~threads:1 in
      let t0 = Clock.now () in
      Task_pool.run pool (fun spawn -> spawn (fun () -> ()));
      let dt = Clock.elapsed t0 in
      Alcotest.(check bool)
        (Printf.sprintf "injected delay visible on the monotonic clock (%.3fs)"
           dt)
        true (dt >= 0.05))

(* PR9: a daemon configured for gap parsing tells stripped-image clients
   the truth — Ok_degraded status, heuristic entries counted in the body. *)
let test_gap_confidence_in_reply () =
  with_daemon
    ~tweak:(fun c ->
      { c with
        Serve.sc_analysis = { Config.default with Config.gap_parse = true } })
    (fun _ sock ->
      let img =
        Pbca_binfmt.Image.write
          (Pbca_codegen.Family.generate Pbca_codegen.Family.Stripped 0)
            .Emit.image
      in
      let r = ok_roundtrip ~sock (Wire.request ~image:img Wire.Parse) in
      Alcotest.(check status)
        "heuristic graph reported degraded" Wire.Ok_degraded r.Wire.rp_status;
      let heur =
        Scanf.sscanf r.Wire.rp_body
          "fingerprint=%s blocks=%d edges=%d funcs=%d conf_symbol=%d \
           conf_call_target=%d conf_heuristic=%d"
          (fun _ _ _ _ _ _ h -> h)
      in
      Alcotest.(check bool)
        (Printf.sprintf "reply census has heuristic entries (%d)" heur)
        true (heur > 0))

let suite =
  [
    quick "wire: request/reply round-trip" test_wire_roundtrip;
    quick "wire: garbled frames rejected, never crash" test_wire_garble_total;
    quick "wire: empty/short/bad-magic frames" test_wire_decode_empty_and_short;
    quick "daemon: ping + stats" test_ping_and_stats;
    quick "daemon: parse equals local one-shot" test_parse_matches_local;
    quick "daemon: full queue sheds with Overloaded" test_shed_at_full_queue;
    quick "daemon: expired deadline is structured" test_deadline_expired_structured;
    quick "daemon: worker crash retried then ok" test_worker_crash_retried;
    quick "daemon: crash storm bounded, daemon survives"
      test_worker_crash_bounded;
    quick "daemon: cache hit; rot served as miss" test_cache_hit_and_rot_as_miss;
    quick "daemon: no-cache flag bypasses" test_no_cache_flag_bypasses;
    quick "daemon: garbage frames answered Bad_frame" test_bad_frame_structured;
    quick "daemon: malformed image rejected, not retried" test_rejected_image;
    quick "daemon: drain loses zero in-flight requests" test_drain_zero_loss;
    quick "daemon: gap confidence surfaces in reply"
      test_gap_confidence_in_reply;
    quick "supervisor: backoff interruptible by drain"
      test_supervisor_backoff_interruptible;
    quick "fault: Delay accounted on monotonic clock" test_fault_delay_monotonic;
  ]
