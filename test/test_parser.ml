(* Tests for serial and parallel CFG construction: determinism across
   schedules, ground-truth conformance, and every challenging construct of
   paper Section 2.1 exercised through hand-made specs. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Spec = Pbca_codegen.Spec
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg

let emit_funcs ?stubs funcs = (emit_spec (mk_spec ?stubs funcs)).image

(* ------------------------- basic shapes ------------------------------- *)

let test_straight_line () =
  let image =
    emit_funcs [ mk_fspec ~name:"f" [ blk ~body:[ Insn.Nop; Insn.Nop ] Spec.T_ret ] ]
  in
  let g = parse_serial image in
  let f = get_func g "f" in
  Alcotest.(check int) "one block" 1 (List.length f.f_blocks);
  Alcotest.(check bool) "returns" true (func_ret g "f" = `Ret)

let test_diamond () =
  let image = emit_funcs [ diamond_fun () ] in
  let g = parse_serial image in
  let f = get_func g "diamond" in
  Alcotest.(check int) "four blocks" 4 (List.length f.f_blocks);
  assert_deterministic image

let test_loop () =
  let image = emit_funcs [ loop_fun () ] in
  let g = parse_serial image in
  let f = get_func g "looper" in
  Alcotest.(check int) "four blocks" 4 (List.length f.f_blocks);
  (* the back edge exists *)
  let has_back =
    List.exists
      (fun (b : Cfg.block) ->
        List.exists
          (fun (e : Cfg.edge) -> e.e_dst.Cfg.b_start < b.Cfg.b_start)
          (Cfg.out_edges b))
      f.f_blocks
  in
  Alcotest.(check bool) "back edge" true has_back

(* ------------------------ block splitting ----------------------------- *)

let test_split_shared_tail () =
  (* two functions jump into the middle of a common code region: the parser
     must split blocks identically regardless of discovery order *)
  let f1 =
    mk_fspec ~name:"f1" ~frame:false
      [
        blk ~body:[ Insn.Mov_ri (Reg.r0, 1) ] Spec.T_fall;
        blk ~body:[ Insn.Mov_ri (Reg.r1, 2) ] Spec.T_fall;
        blk ~body:[ Insn.Mov_ri (Reg.r2, 3) ] Spec.T_ret;
      ]
  in
  (* f2 conditional-jumps into f1's block 1... expressed via a stub-free
     generated binary instead: just check split behavior with T_cond *)
  let f2 =
    mk_fspec ~name:"f2" ~frame:false
      [
        blk ~body:[ Insn.Cmp_ri (Reg.r1, 0) ] (Spec.T_cond (Insn.Eq, 2));
        blk ~body:[ Insn.Nop ] Spec.T_fall;
        blk ~body:[ Insn.Nop; Insn.Nop ] Spec.T_ret;
      ]
  in
  let image = emit_funcs [ f1; f2 ] in
  assert_deterministic image;
  let g = parse_serial image in
  (* f1's three straight-line spec blocks appear as one contiguous range *)
  let f = get_func g "f1" in
  Alcotest.(check int) "coalesced range count" 1
    (List.length (Pbca_core.Summary.func_ranges g f))

let test_split_point_exact () =
  (* craft a function where a branch targets the middle of a linear run *)
  let f =
    mk_fspec ~name:"s" ~frame:false
      [
        blk ~body:[ Insn.Cmp_ri (Reg.r1, 1) ] (Spec.T_cond (Insn.Eq, 2));
        blk ~body:[ Insn.Mov_ri (Reg.r0, 7) ] Spec.T_fall;
        (* <- branch target *)
        blk ~body:[ Insn.Mov_ri (Reg.r3, 8) ] Spec.T_ret;
      ]
  in
  let image = emit_funcs [ f ] in
  let g = parse_serial image in
  let f = get_func g "s" in
  (* block 2's start must be a block boundary: the Jcc edge target *)
  let starts = List.map (fun (b : Cfg.block) -> b.Cfg.b_start) f.f_blocks in
  let taken_target =
    List.concat_map
      (fun (b : Cfg.block) ->
        List.filter_map
          (fun (e : Cfg.edge) ->
            if e.e_kind = Cfg.Cond_taken then Some e.e_dst.Cfg.b_start else None)
          (Cfg.out_edges b))
      f.f_blocks
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "cond target is a block start" true
        (List.mem t starts))
    taken_target;
  assert_deterministic image

(* ---------------------- non-returning functions ----------------------- *)

let test_noreturn_leaf () =
  let ex = mk_fspec ~name:"exit" ~frame:false [ blk Spec.T_halt ] in
  let ex = { ex with Spec.fs_noreturn_leaf = true } in
  let caller =
    mk_fspec ~name:"caller"
      [
        blk (Spec.T_call_noret 1);
      ]
  in
  let image = emit_funcs [ caller; ex ] in
  let g = parse_serial image in
  Alcotest.(check bool) "exit is noreturn" true (func_ret g "exit" = `Noret);
  (* no call-fallthrough edge out of caller's call site *)
  let c = get_func g "caller" in
  let has_ft =
    List.exists
      (fun (b : Cfg.block) ->
        List.exists
          (fun (e : Cfg.edge) -> e.e_kind = Cfg.Call_fallthrough)
          (Cfg.out_edges b))
      c.f_blocks
  in
  Alcotest.(check bool) "no fall-through after noreturn call" false has_ft;
  (* caller itself cannot return *)
  Alcotest.(check bool) "caller is noreturn" true (func_ret g "caller" = `Noret)

let test_noreturn_chain () =
  (* f1 -> f2 -> f3 -> exit; every fall-through suppressed transitively *)
  let ex = { (mk_fspec ~name:"exit" ~frame:false [ blk Spec.T_halt ]) with Spec.fs_noreturn_leaf = true } in
  let wrap name callee = mk_fspec ~name [ blk (Spec.T_call_noret callee) ] in
  let image = emit_funcs [ wrap "f1" 1; wrap "f2" 2; wrap "f3" 3; ex ] in
  let g = parse_serial image in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " noreturn") true (func_ret g n = `Noret))
    [ "f1"; "f2"; "f3"; "exit" ];
  assert_deterministic image

let test_noreturn_cycle () =
  (* mutual recursion with no return instruction: the cyclic-dependency rule
     makes both non-returning (paper Section 2.1 component 3) *)
  let f name callee =
    mk_fspec ~name ~frame:false [ blk (Spec.T_tailcall callee) ]
  in
  let image = emit_funcs [ f "a" 1; f "b" 0 ] in
  let g = parse_serial image in
  Alcotest.(check bool) "a noreturn" true (func_ret g "a" = `Noret);
  Alcotest.(check bool) "b noreturn" true (func_ret g "b" = `Noret)

let test_returning_call_chain () =
  (* f calls g; g returns; f's fall-through must exist and f returns *)
  let gfun = mk_fspec ~name:"g" [ blk Spec.T_ret ] in
  let ffun =
    mk_fspec ~name:"f"
      [ blk (Spec.T_call 1); blk ~body:[ Insn.Nop ] Spec.T_ret ]
  in
  let image = emit_funcs [ ffun; gfun ] in
  let g = parse_serial image in
  Alcotest.(check bool) "g returns" true (func_ret g "g" = `Ret);
  Alcotest.(check bool) "f returns" true (func_ret g "f" = `Ret);
  let f = get_func g "f" in
  Alcotest.(check int) "f has both blocks" 2 (List.length f.f_blocks)

let test_tail_call_returns () =
  (* f tail-calls g; g returns, so f does too (status waiter) *)
  let gfun = mk_fspec ~name:"g" ~frame:false [ blk Spec.T_ret ] in
  let ffun = mk_fspec ~name:"f" [ blk (Spec.T_tailcall 1) ] in
  let image = emit_funcs [ ffun; gfun ] in
  let g = parse_serial image in
  Alcotest.(check bool) "f inherits return status" true (func_ret g "f" = `Ret)

let test_error_style_difference () =
  (* the paper's difference class 1: error() has a returning path, so the
     parser adds fall-throughs at error(nonzero) call sites that the ground
     truth marks noreturn — the checker must classify, not fail *)
  let p =
    { Profile.default with n_funcs = 25; with_error_style = true; p_noreturn_call = 0.2; seed = 31337 }
  in
  let r = Pbca_codegen.Emit.generate p in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  Alcotest.(check bool) "error itself returns" true (func_ret g "error" = `Ret)

(* ------------------------- jump tables -------------------------------- *)

let jt_fun ?(spilled = false) ?(targets = [ 2; 3; 4 ]) name =
  mk_fspec ~name
    [
      blk ~body:[ Insn.Mov_rr (Reg.of_int 2, Reg.r1) ]
        (Spec.T_jumptable { targets; spilled });
      blk Spec.T_ret; (* default *)
      blk ~body:[ Insn.Mov_ri (Reg.r0, 1) ] (Spec.T_jmp 1);
      blk ~body:[ Insn.Mov_ri (Reg.r0, 2) ] (Spec.T_jmp 1);
      blk ~body:[ Insn.Mov_ri (Reg.r0, 3) ] (Spec.T_jmp 1);
    ]

let test_jump_table_resolved () =
  let image = emit_funcs [ jt_fun "sw" ] in
  let g = parse_serial image in
  let tables = Pbca_concurrent.Conc_bag.to_list g.Cfg.tables in
  Alcotest.(check int) "one table" 1 (List.length tables);
  let t = List.hd tables in
  Alcotest.(check int) "three entries" 3 t.Cfg.jt_count;
  Alcotest.(check bool) "bounded" true t.Cfg.jt_bounded;
  let indirect =
    List.filter (fun (e : Cfg.edge) -> e.e_kind = Cfg.Indirect)
      (Cfg.out_edges t.Cfg.jt_block)
  in
  Alcotest.(check int) "three indirect edges" 3 (List.length indirect);
  assert_deterministic image

let test_jump_table_spilled () =
  let image = emit_funcs [ jt_fun ~spilled:true "sw" ] in
  let g = parse_serial image in
  Alcotest.(check int) "analysis failed as designed" 0
    (List.length (Pbca_concurrent.Conc_bag.to_list g.Cfg.tables));
  Alcotest.(check bool) "counted unresolved" true
    (Atomic.get g.Cfg.stats.jt_unresolved > 0)

let test_jump_table_duplicates () =
  let image = emit_funcs [ jt_fun ~targets:[ 2; 3; 2; 4; 2 ] "sw" ] in
  let g = parse_serial image in
  let t = List.hd (Pbca_concurrent.Conc_bag.to_list g.Cfg.tables) in
  Alcotest.(check int) "five entries" 5 t.Cfg.jt_count;
  let uniq =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Cfg.edge) ->
           if e.e_kind = Cfg.Indirect then Some e.e_dst.Cfg.b_start else None)
         (Cfg.out_edges t.Cfg.jt_block))
  in
  Alcotest.(check int) "three distinct targets" 3 (List.length uniq)

let test_jt_union_ablation () =
  (* with the union strategy off, a resolvable table still resolves (all
     paths analyzable); the spilled one still fails *)
  let config = { Pbca_core.Config.default with jt_union = false } in
  let image = emit_funcs [ jt_fun "sw" ] in
  let g = Pbca_core.Serial.parse_and_finalize ~config image in
  Alcotest.(check int) "resolved without union" 1
    (List.length (Pbca_concurrent.Conc_bag.to_list g.Cfg.tables))

(* ----------------------- shared code and tail calls ------------------- *)

let stub_spec mode =
  let mk i = mk_fspec ~name:(Printf.sprintf "sh%d" i) [ blk (Spec.T_stub 0); blk Spec.T_ret ] in
  (* note: block 1 is unreachable by design; sharers end in the stub *)
  mk_spec
    ~stubs:
      [
        {
          Spec.ss_body = [ Insn.Mov_ri (Reg.r0, -1) ];
          ss_ret = true;
          ss_mode = mode;
          ss_sharers = [ 0; 1; 2 ];
        };
      ]
    [ mk 0; mk 1; mk 2 ]

let test_stub_shared () =
  let r = emit_spec (stub_spec Spec.Shared) in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  (* the stub block belongs to all three sharers *)
  let stub_gf =
    List.find_opt
      (fun (f : Pbca_codegen.Ground_truth.gfun) -> f.gf_name = "stub_0")
      r.ground_truth.gt_funcs
  in
  Alcotest.(check bool) "no stub function in shared mode" true (stub_gf = None);
  let count =
    List.length
      (List.filter
         (fun (f : Cfg.func) ->
           List.length (Pbca_core.Summary.func_ranges g f) = 2)
         (Cfg.funcs_list g))
  in
  Alcotest.(check int) "three functions own two ranges" 3 count;
  assert_deterministic r.image

let test_stub_tail () =
  let r = emit_spec (stub_spec Spec.Tail) in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  (* the stub is its own symbol-less function *)
  let stub =
    List.find_opt (fun (f : Cfg.func) -> not f.f_from_symtab) (Cfg.funcs_list g)
  in
  Alcotest.(check bool) "stub function discovered" true (stub <> None);
  Alcotest.(check bool) "stub returns" true
    (Atomic.get (Option.get stub).f_ret = Cfg.Returns);
  (* sharers inherit the return status through the tail call *)
  Alcotest.(check bool) "sharer returns" true (func_ret g "sh0" = `Ret)

let test_stub_mixed_listing1 () =
  (* the Listing-1 ambiguity: finalization must converge to "everyone tail
     calls" and the result must be schedule-independent *)
  let r = emit_spec (stub_spec Spec.Mixed) in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  let stub =
    List.find_opt (fun (f : Cfg.func) -> not f.f_from_symtab) (Cfg.funcs_list g)
  in
  Alcotest.(check bool) "stub is a function" true (stub <> None);
  let stub = Option.get stub in
  let in_kinds =
    List.sort_uniq compare
      (List.map
         (fun (e : Cfg.edge) -> e.e_kind)
         (Cfg.in_edges stub.f_entry))
  in
  Alcotest.(check bool) "all entries are tail calls" true
    (in_kinds = [ Cfg.Tail_call ]);
  assert_deterministic ~threads:[ 1; 2; 4; 8 ] r.image

let test_cold_fragment () =
  (* cold eligibility depends on generated shapes; scan seeds for a binary
     that actually has outlined fragments *)
  let rec pick seed =
    if seed > 580 then Alcotest.fail "no cold fragments in 25 seeds"
    else
      let p = { Profile.default with n_funcs = 40; p_cold = 0.9; seed } in
      let r = Pbca_codegen.Emit.generate p in
      if
        List.exists
          (fun (f : Pbca_codegen.Ground_truth.gfun) -> f.gf_cold_parent <> None)
          r.ground_truth.gt_funcs
      then r
      else pick (seed + 1)
  in
  let r = pick 555 in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  let colds =
    List.filter
      (fun (f : Pbca_codegen.Ground_truth.gfun) -> f.gf_cold_parent <> None)
      r.ground_truth.gt_funcs
  in
  Alcotest.(check bool) "profile produced cold fragments" true (colds <> []);
  List.iter
    (fun (gf : Pbca_codegen.Ground_truth.gfun) ->
      match Pbca_core.Addr_map.find g.Cfg.funcs gf.gf_entry with
      | Some f ->
        Alcotest.(check int)
          (gf.gf_name ^ " is a single-block function")
          1
          (List.length f.f_blocks)
      | None -> Alcotest.failf "cold %s not parsed" gf.gf_name)
    colds

let test_secondary_entry () =
  let p = { Profile.default with n_funcs = 40; p_secondary_entry = 0.5; seed = 556 } in
  let r = Pbca_codegen.Emit.generate p in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  let e2s =
    List.filter
      (fun (f : Cfg.func) ->
        String.length f.f_name > 4
        && String.sub f.f_name (String.length f.f_name - 4) 4 = "__e2")
      (Cfg.funcs_list g)
  in
  Alcotest.(check bool) "secondary entries parsed" true (e2s <> []);
  (* at least one secondary shares blocks with its primary (a primary that
     tail-calls away immediately legitimately shares nothing) *)
  let some_shared =
    List.exists
      (fun (f2 : Cfg.func) ->
        let base = String.sub f2.f_name 0 (String.length f2.f_name - 4) in
        let f1 = get_func g base in
        let s1 = List.map (fun (b : Cfg.block) -> b.Cfg.b_start) f1.f_blocks in
        List.exists (fun (b : Cfg.block) -> List.mem b.Cfg.b_start s1) f2.f_blocks)
      e2s
  in
  Alcotest.(check bool) "some secondary shares code with its primary" true
    some_shared

(* ----------------------- determinism at scale ------------------------- *)

let test_determinism_sweep =
  slow "determinism: serial == parallel across 12 seeds x 3 thread counts"
    (fun () ->
      for i = 0 to 11 do
        let p = { (Profile.coreutils_like i) with seed = 42_000 + i } in
        let r = Pbca_codegen.Emit.generate p in
        assert_deterministic ~threads:[ 1; 2; 4 ] r.image
      done)

let test_parallel_repeated =
  slow "determinism: repeated 4-thread runs identical" (fun () ->
      let p = { (Profile.coreutils_like 3) with seed = 90125 } in
      let r = Pbca_codegen.Emit.generate p in
      let reference = summary (parse_parallel ~threads:4 r.image) in
      for _ = 1 to 8 do
        let s = summary (parse_parallel ~threads:4 r.image) in
        if not (Pbca_core.Summary.equal reference s) then
          Alcotest.fail "parallel run diverged between repetitions"
      done)

let test_checker_corpus =
  slow "correctness: 20-binary corpus fully explained (Section 8.1)"
    (fun () ->
      for i = 0 to 19 do
        let r = Pbca_codegen.Emit.generate (Profile.coreutils_like i) in
        check_clean r.ground_truth (parse_serial r.image)
      done)

let test_cfg_diff_fuzz =
  (* Cfg_diff-level equivalence fuzz over the lock-free containers: beyond
     Summary equality, the structural differ must see zero added / removed /
     changed functions between a serial parse and parallel parses of the
     same binary, across a spread of profiles and seeds. *)
  slow "fuzz: serial vs parallel Cfg_diff-equivalent across 8 seeds"
    (fun () ->
      for i = 0 to 7 do
        let p = { (Profile.coreutils_like i) with seed = 77_000 + (i * 131) } in
        let r = Pbca_codegen.Emit.generate p in
        let gs = parse_serial r.image in
        List.iter
          (fun threads ->
            let gp = parse_parallel ~threads r.image in
            let d = Pbca_core.Cfg_diff.diff gs gp in
            if d.added <> [] || d.removed <> [] || d.changed <> [] then
              Alcotest.failf
                "seed %d, %d threads: serial/parallel diverged:@\n%s" i
                threads
                (Format.asprintf "%a" Pbca_core.Cfg_diff.pp d);
            Alcotest.(check int)
              (Printf.sprintf "seed %d: all funcs unchanged" i)
              (List.length (Pbca_core.Cfg.funcs_list gs))
              d.unchanged)
          [ 2; 4 ]
      done)

(* --------------------------- ablations -------------------------------- *)

let test_config_variants_same_cfg () =
  let p = { (Profile.coreutils_like 5) with seed = 777 } in
  let r = Pbca_codegen.Emit.generate p in
  let base = summary (parse_serial r.image) in
  let variants =
    [
      { Pbca_core.Config.default with decode_cache = false };
      { Pbca_core.Config.default with eager_noreturn = false };
      { Pbca_core.Config.default with shards = 4 };
    ]
  in
  List.iter
    (fun config ->
      let s = summary (Pbca_core.Serial.parse_and_finalize ~config r.image) in
      if not (Pbca_core.Summary.equal base s) then
        Alcotest.fail "config variant changed the final CFG")
    variants

let test_stats_sanity () =
  let p = { Profile.default with n_funcs = 50 } in
  let r = Pbca_codegen.Emit.generate p in
  let g = parse_serial r.image in
  let s = g.Cfg.stats in
  Alcotest.(check bool) "decoded instructions" true (Atomic.get s.insns_decoded > 0);
  Alcotest.(check bool) "blocks" true (Atomic.get s.blocks_created > 0);
  Alcotest.(check bool) "edges" true (Atomic.get s.edges_created > 0);
  Alcotest.(check bool) "block count consistent" true
    (List.length (Cfg.blocks_list g) <= Atomic.get s.blocks_created)

let test_empty_image () =
  let tab = Pbca_binfmt.Symtab.create () in
  let image =
    Pbca_binfmt.Image.make ~name:"empty"
      ~sections:[ Pbca_binfmt.Section.make ~name:".text" ~addr:0x1000 Bytes.empty ]
      tab
  in
  let g = parse_serial image in
  Alcotest.(check int) "no functions" 0 (List.length (Cfg.funcs_list g))

let suite =
  [
    quick "straight-line function" test_straight_line;
    quick "diamond" test_diamond;
    quick "loop" test_loop;
    quick "shared tails split deterministically" test_split_shared_tail;
    quick "split points are exact" test_split_point_exact;
    quick "noreturn leaf suppresses fall-through" test_noreturn_leaf;
    quick "noreturn chains propagate" test_noreturn_chain;
    quick "noreturn cycles resolve (rule 3)" test_noreturn_cycle;
    quick "returning call chain" test_returning_call_chain;
    quick "tail call propagates returns" test_tail_call_returns;
    quick "error-style difference classified" test_error_style_difference;
    quick "jump table resolved with bound" test_jump_table_resolved;
    quick "stack-spilled jump table fails as designed" test_jump_table_spilled;
    quick "jump table with duplicate entries" test_jump_table_duplicates;
    quick "jt union ablation" test_jt_union_ablation;
    quick "stub: shared mode (functions sharing code)" test_stub_shared;
    quick "stub: tail mode (own function)" test_stub_tail;
    quick "stub: mixed mode (Listing 1)" test_stub_mixed_listing1;
    quick "cold fragments" test_cold_fragment;
    quick "secondary entries share code" test_secondary_entry;
    test_determinism_sweep;
    test_parallel_repeated;
    test_checker_corpus;
    test_cfg_diff_fuzz;
    quick "config ablations keep the CFG" test_config_variants_same_cfg;
    quick "stats sanity" test_stats_sanity;
    quick "empty image" test_empty_image;
  ]

(* ----------------------- checker negative tests ----------------------- *)

(* The checker is only trustworthy if it actually catches damage: corrupt a
   correct parse in targeted ways and require a MISMATCH verdict. *)

let fresh_clean () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 25; seed = 1234 } in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  (r, g)

let test_checker_detects_missing_function () =
  let r, g = fresh_clean () in
  (* remove a function from the parse result *)
  let victim = List.nth (Cfg.funcs_list g) 3 in
  ignore (Pbca_core.Addr_map.remove g.Cfg.funcs victim.f_entry_addr);
  let rep = Pbca_checker.Checker.check r.ground_truth g in
  Alcotest.(check bool) "missing function flagged" false
    (Pbca_checker.Checker.clean rep)

let test_checker_detects_wrong_status () =
  let r, g = fresh_clean () in
  (* flip a returning function to noreturn *)
  let victim =
    List.find
      (fun (f : Cfg.func) -> Atomic.get f.f_ret = Cfg.Returns)
      (Cfg.funcs_list g)
  in
  Atomic.set victim.f_ret Cfg.Noreturn;
  let rep = Pbca_checker.Checker.check r.ground_truth g in
  Alcotest.(check bool) "status corruption flagged" false
    (Pbca_checker.Checker.clean rep)

let test_checker_detects_boundary_damage () =
  let r, g = fresh_clean () in
  (* drop a block from some multi-block function's boundary *)
  let victim =
    List.find
      (fun (f : Cfg.func) -> List.length f.Cfg.f_blocks > 2)
      (Cfg.funcs_list g)
  in
  victim.Cfg.f_blocks <- List.tl victim.Cfg.f_blocks;
  let rep = Pbca_checker.Checker.check r.ground_truth g in
  Alcotest.(check bool) "boundary corruption flagged" false
    (Pbca_checker.Checker.clean rep)

let test_checker_detects_lost_jump_table () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 30; p_jump_table = 0.3; seed = 77 } in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  (* kill the indirect edges of one resolvable table *)
  (match Pbca_concurrent.Conc_bag.to_list g.Cfg.tables with
  | t :: _ ->
    List.iter
      (fun (e : Cfg.edge) ->
        if e.e_kind = Cfg.Indirect then Atomic.set e.e_dead true)
      (Cfg.out_edges t.Cfg.jt_block)
  | [] -> Alcotest.fail "profile should produce tables");
  let rep = Pbca_checker.Checker.check r.ground_truth g in
  Alcotest.(check bool) "lost jump table flagged" false
    (Pbca_checker.Checker.clean rep)

let suite =
  suite
  @ [
      quick "checker catches a missing function" test_checker_detects_missing_function;
      quick "checker catches a wrong return status" test_checker_detects_wrong_status;
      quick "checker catches boundary damage" test_checker_detects_boundary_damage;
      quick "checker catches a lost jump table" test_checker_detects_lost_jump_table;
    ]

(* --------------------------- more edge cases --------------------------- *)

let test_icall_fallthrough () =
  let f =
    mk_fspec ~name:"ic"
      [ blk (Spec.T_icall 0); blk ~body:[ Insn.Nop ] Spec.T_ret ]
  in
  let gfun = mk_fspec ~name:"g" [ blk Spec.T_ret ] in
  let image = (emit_spec (mk_spec ~fptable:[| 1 |] [ f; gfun ])).image in
  let g = parse_serial image in
  let fn = get_func g "ic" in
  (* the indirect call always gets a fall-through edge *)
  let has_ft =
    List.exists
      (fun (b : Cfg.block) ->
        List.exists
          (fun (e : Cfg.edge) -> e.e_kind = Cfg.Call_fallthrough)
          (Cfg.out_edges b))
      fn.f_blocks
  in
  Alcotest.(check bool) "indirect call falls through" true has_ft;
  Alcotest.(check bool) "function returns" true (func_ret g "ic" = `Ret)

let test_halt_no_successors () =
  let f = mk_fspec ~name:"h" ~frame:false [ blk ~body:[ Insn.Nop ] Spec.T_halt ] in
  let image = (emit_spec (mk_spec [ f ])).image in
  let g = parse_serial image in
  let fn = get_func g "h" in
  Alcotest.(check int) "single block" 1 (List.length fn.f_blocks);
  Alcotest.(check int) "no out edges" 0
    (List.length (Cfg.out_edges (List.hd fn.f_blocks)));
  Alcotest.(check bool) "noreturn" true (func_ret g "h" = `Noret)

let test_entry_only_discovery () =
  (* no symbols at all: everything grows from the entry point *)
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 15; seed = 777 } in
  let image = Pbca_binfmt.Image.strip ~keep:(fun _ -> false) r.image in
  let g = parse_serial image in
  Alcotest.(check bool) "entry function exists" true
    (Pbca_core.Addr_map.mem g.Cfg.funcs image.Pbca_binfmt.Image.entry);
  Alcotest.(check bool) "callees discovered" true
    (List.length (Cfg.funcs_list g) > 1);
  assert_deterministic image

let test_split_stats_counted () =
  let r = emit_spec (stub_spec Spec.Shared) in
  let g = parse_serial r.image in
  Alcotest.(check bool) "splits occurred on shared code" true
    (Atomic.get g.Cfg.stats.splits >= 0);
  Alcotest.(check bool) "insns decoded counted" true
    (Atomic.get g.Cfg.stats.insns_decoded > 0)

let test_recursive_function () =
  (* direct recursion: call to self, fall-through enabled by own ret *)
  let f =
    mk_fspec ~name:"r"
      [
        blk ~body:[ Insn.Cmp_ri (Reg.r1, 0) ] (Spec.T_cond (Insn.Eq, 2));
        blk (Spec.T_call 0);
        blk Spec.T_ret;
      ]
  in
  let image = (emit_spec (mk_spec [ f ])).image in
  let g = parse_serial image in
  Alcotest.(check bool) "recursive function returns" true (func_ret g "r" = `Ret);
  let fn = get_func g "r" in
  Alcotest.(check bool) "all blocks in boundary" true
    (List.length fn.f_blocks >= 3);
  assert_deterministic image

let test_fingerprint_stability () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 20; seed = 31 } in
  let s1 = summary (parse_serial r.image) in
  let s2 = summary (parse_parallel ~threads:3 r.image) in
  Alcotest.(check string) "fingerprints equal"
    (Pbca_core.Summary.fingerprint s1)
    (Pbca_core.Summary.fingerprint s2);
  Alcotest.(check (list string)) "diff empty" [] (Pbca_core.Summary.diff s1 s2)

let suite =
  suite
  @ [
      quick "indirect call falls through" test_icall_fallthrough;
      quick "halt has no successors" test_halt_no_successors;
      quick "symbol-less image grows from the entry" test_entry_only_discovery;
      quick "stats counters populated" test_split_stats_counted;
      quick "direct recursion" test_recursive_function;
      quick "fingerprints stable across schedules" test_fingerprint_stability;
    ]

(* ----------------- finalization rules in isolation -------------------- *)

let test_rule3_single_sharer_merges () =
  (* one function tail-jumps into an outlined stub: finalization rule 3
     ("target has only this edge incoming") must fold the stub back in *)
  let sharer = mk_fspec ~name:"only" [ blk (Spec.T_stub 0); blk Spec.T_ret ] in
  let spec =
    mk_spec
      ~stubs:
        [
          {
            Spec.ss_body = [ Insn.Mov_ri (Reg.r0, -1) ];
            ss_ret = true;
            ss_mode = Spec.Tail;
            ss_sharers = [ 0 ];
          };
        ]
      [ sharer ]
  in
  let r = emit_spec spec in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  (* no symbol-less function survives *)
  Alcotest.(check bool) "stub merged into its only sharer" true
    (List.for_all (fun (f : Cfg.func) -> f.f_from_symtab) (Cfg.funcs_list g));
  (* the sharer owns the stub's range *)
  let f = get_func g "only" in
  Alcotest.(check int) "two coalesced ranges" 2
    (List.length (Pbca_core.Summary.func_ranges g f));
  Alcotest.(check bool) "sharer returns through the stub" true
    (func_ret g "only" = `Ret);
  assert_deterministic r.image

let test_rule1_flips_plain_jump () =
  (* Mixed stub with one tearing and one plain sharer: after finalization
     BOTH edges must be tail calls (rule 1 flips the plain one) *)
  let mk i = mk_fspec ~name:(Printf.sprintf "m%d" i) [ blk (Spec.T_stub 0); blk Spec.T_ret ] in
  let spec =
    mk_spec
      ~stubs:
        [
          {
            Spec.ss_body = [];
            ss_ret = true;
            ss_mode = Spec.Mixed;
            ss_sharers = [ 0; 1 ];
          };
        ]
      [ mk 0; mk 1 ]
  in
  let r = emit_spec spec in
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  let stub =
    List.find (fun (f : Cfg.func) -> not f.f_from_symtab) (Cfg.funcs_list g)
  in
  let kinds =
    List.map (fun (e : Cfg.edge) -> e.e_kind) (Cfg.in_edges stub.f_entry)
  in
  Alcotest.(check int) "two incoming edges" 2 (List.length kinds);
  Alcotest.(check bool) "both are tail calls" true
    (List.for_all (fun k -> k = Cfg.Tail_call) kinds)

(* ------------------- noreturn machinery, driven raw ------------------- *)

let test_noreturn_api () =
  let image =
    emit_funcs [ mk_fspec ~name:"x" [ blk Spec.T_ret ]; mk_fspec ~name:"y" [ blk Spec.T_ret ] ]
  in
  let g = Pbca_core.Cfg.create image in
  let fx, _ = Cfg.find_or_create_func g ~name:"x" ~from_symtab:true 0x1000 in
  let fired = ref [] in
  let fire ~dep:_ ~call_end = fired := call_end :: !fired in
  (* waiter parks while UNSET, fires exactly once on the transition *)
  Pbca_core.Noreturn.request_fallthrough g ~callee:fx ~call_end:0x42 ~fire;
  Alcotest.(check (list int)) "nothing fired yet" [] !fired;
  Pbca_core.Noreturn.set_returns g fx ~fire;
  Alcotest.(check (list int)) "waiter released" [ 0x42 ] !fired;
  Pbca_core.Noreturn.set_returns g fx ~fire;
  Alcotest.(check (list int)) "idempotent" [ 0x42 ] !fired;
  (* call sites against an already-Returns callee fire immediately, once *)
  Pbca_core.Noreturn.request_fallthrough g ~callee:fx ~call_end:0x43 ~fire;
  Pbca_core.Noreturn.request_fallthrough g ~callee:fx ~call_end:0x43 ~fire;
  Alcotest.(check (list int)) "immediate fire deduplicated" [ 0x43; 0x42 ]
    !fired;
  (* known-noreturn names are seeded and never fire *)
  let fe, _ = Cfg.find_or_create_func g ~name:"exit" ~from_symtab:true 0x2000 in
  Pbca_core.Noreturn.seed_status g fe;
  Pbca_core.Noreturn.request_fallthrough g ~callee:fe ~call_end:0x44 ~fire;
  Pbca_core.Noreturn.resolve_unset g;
  Alcotest.(check bool) "noreturn callee never fires" true
    (not (List.mem 0x44 !fired));
  Alcotest.(check bool) "exit seeded noreturn" true
    (Atomic.get fe.Cfg.f_ret = Cfg.Noreturn)

let test_noreturn_tail_subscription () =
  let image = emit_funcs [ mk_fspec ~name:"a" [ blk Spec.T_ret ] ] in
  let g = Pbca_core.Cfg.create image in
  let caller, _ = Cfg.find_or_create_func g ~name:"c" ~from_symtab:true 0x1000 in
  let callee, _ = Cfg.find_or_create_func g ~name:"d" ~from_symtab:true 0x2000 in
  let fire ~dep:_ ~call_end:_ = () in
  Pbca_core.Noreturn.subscribe_tail_status g ~caller ~callee ~fire;
  Alcotest.(check bool) "caller still unset" true
    (Atomic.get caller.Cfg.f_ret = Cfg.Unset);
  Pbca_core.Noreturn.set_returns g callee ~fire;
  Alcotest.(check bool) "caller inherits returns" true
    (Atomic.get caller.Cfg.f_ret = Cfg.Returns)

let suite =
  suite
  @ [
      quick "rule 3: single-sharer stub merges" test_rule3_single_sharer_merges;
      quick "rule 1: plain jump to a function entry flips" test_rule1_flips_plain_jump;
      quick "noreturn: waiter protocol" test_noreturn_api;
      quick "noreturn: tail-status subscription" test_noreturn_tail_subscription;
    ]

let test_determinism_at_scale =
  slow "determinism: 1000-function binary, maximal constructs, 6 domains"
    (fun () ->
      let p =
        {
          (Profile.coreutils_like 0) with
          n_funcs = 1000;
          seed = 987_654;
          n_shared_stubs = 12;
          sharers_per_stub = 8;
          n_listing1 = 3;
          p_cold = 0.08;
          p_secondary_entry = 0.04;
          p_jump_table = 0.12;
          p_jt_spilled = 0.15;
          p_data_in_text = 0.2;
        }
      in
      let r = Pbca_codegen.Emit.generate p in
      let reference = summary (parse_serial r.image) in
      (* more domains than cores: maximal preemption-driven interleaving *)
      List.iter
        (fun threads ->
          let s = summary (parse_parallel ~threads r.image) in
          if not (Pbca_core.Summary.equal reference s) then
            Alcotest.failf "diverged at %d domains:\n%s" threads
              (String.concat "\n"
                 (Pbca_core.Summary.diff reference s)))
        [ 2; 6 ];
      check_clean r.ground_truth (parse_parallel ~threads:6 r.image))

let suite = suite @ [ test_determinism_at_scale ]
