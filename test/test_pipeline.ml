(* Streaming-pipeline tests (PR7): the bounded MPMC channel, the
   multi-region priority task pool, and end-to-end equality of the
   streamed hpcstruct / BinFeat drivers against the barrier paths. *)

open Tutil
module TP = Pbca_concurrent.Task_pool
module Ch = Pbca_concurrent.Channel
module H = Pbca_hpcstruct.Hpcstruct
module B = Pbca_binfeat.Binfeat
module Cfg = Pbca_core.Cfg

(* ------------------------------------------------------------------ *)
(* Channel *)

let test_channel_fifo_sequential () =
  let ch = Ch.create ~capacity:4 () in
  for i = 1 to 4 do
    Ch.send ch i
  done;
  Alcotest.(check bool) "full" false (Ch.try_send ch 5);
  Alcotest.(check int) "length" 4 (Ch.length ch);
  for i = 1 to 4 do
    Alcotest.(check (option int)) "fifo" (Some i) (Ch.recv ch)
  done;
  Alcotest.(check bool) "empty" true (Ch.try_recv ch = `Empty);
  Ch.close ch;
  Alcotest.(check (option int)) "closed" None (Ch.recv ch);
  Alcotest.(check bool) "send after close raises" true
    (try
       Ch.send ch 9;
       false
     with Ch.Closed -> true)

let test_channel_bounded_blocking () =
  (* a producer pushing N items through a capacity-2 channel must block
     until the consumer drains; the high-water mark proves the bound
     held and the FIFO order proves delivery *)
  let n = 200 in
  let ch = Ch.create ~capacity:2 () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Ch.send ch i
        done;
        Ch.close ch)
  in
  let got = ref [] in
  let rec drain () =
    match Ch.recv ch with
    | Some v ->
      got := v :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Domain.join producer;
  Alcotest.(check (list int)) "all items in order"
    (List.init n (fun i -> i))
    (List.rev !got);
  Alcotest.(check bool) "bound respected" true (Ch.high_water ch <= 2);
  Alcotest.(check int) "sent" n (Ch.sent ch);
  Alcotest.(check int) "received" n (Ch.received ch)

let test_channel_mpmc () =
  (* 2 producers x 2 consumers; every item delivered exactly once, and
     each consumer's view of any single producer is in sending order
     (FIFO queue + exactly-once pops) *)
  let per_producer = 500 in
  let ch = Ch.create ~capacity:8 () in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              Ch.send ch (p, i)
            done))
  in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Ch.recv ch with
              | Some v -> loop (v :: acc)
              | None -> List.rev acc
            in
            loop []))
  in
  List.iter Domain.join producers;
  Ch.close ch;
  let views = List.map Domain.join consumers in
  let all = List.concat views in
  Alcotest.(check int) "exactly once (count)" (2 * per_producer)
    (List.length all);
  let sorted = List.sort compare all in
  let expect =
    List.concat_map
      (fun p -> List.init per_producer (fun i -> (p, i)))
      [ 0; 1 ]
  in
  Alcotest.(check bool) "exactly once (multiset)" true (sorted = expect);
  List.iter
    (fun view ->
      List.iter
        (fun p ->
          let seqs = List.filter_map
              (fun (p', i) -> if p' = p then Some i else None)
              view
          in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          Alcotest.(check bool) "per-producer order" true (increasing seqs))
        [ 0; 1 ])
    views

let test_channel_close_while_blocked () =
  (* consumer blocked on empty: close must wake it with None *)
  let ch = Ch.create ~capacity:2 () in
  let consumer = Domain.spawn (fun () -> Ch.recv ch) in
  Unix.sleepf 0.02;
  Ch.close ch;
  Alcotest.(check (option int)) "woken with None" None (Domain.join consumer);
  (* producer blocked on full: close must wake it with Closed *)
  let ch2 = Ch.create ~capacity:1 () in
  Ch.send ch2 1;
  let producer =
    Domain.spawn (fun () ->
        try
          Ch.send ch2 2;
          false
        with Ch.Closed -> true)
  in
  Unix.sleepf 0.02;
  Ch.close ch2;
  Alcotest.(check bool) "woken with Closed" true (Domain.join producer);
  (* the blocked value was not delivered; the pre-close one drains *)
  Alcotest.(check (option int)) "drains pre-close item" (Some 1)
    (Ch.recv ch2);
  Alcotest.(check (option int)) "then closed" None (Ch.recv ch2)

(* ------------------------------------------------------------------ *)
(* Multi-region task pool *)

let test_two_regions_progress () =
  (* a region-A task waits on a flag only a region-B task sets: both
     regions must make progress concurrently for A to ever finish *)
  let pool = TP.create ~threads:2 in
  let flag = Atomic.make false in
  let a =
    TP.submit pool (fun spawn ->
        spawn (fun () ->
            while not (Atomic.get flag) do
              Domain.cpu_relax ()
            done))
  in
  let b =
    TP.submit ~priority:1 pool (fun spawn ->
        spawn (fun () -> Atomic.set flag true))
  in
  TP.await a;
  TP.await b;
  Alcotest.(check bool) "flag set" true (Atomic.get flag)

let test_priority_region_drains_first () =
  (* deterministic at one thread: the master awaiting the low-priority
     region must execute every higher-priority task before its own *)
  let pool = TP.create ~threads:1 in
  let log = ref [] in
  let push tag = log := tag :: !log in
  let a =
    TP.submit ~priority:0 pool (fun spawn ->
        for _ = 1 to 10 do
          spawn (fun () -> push `A)
        done)
  in
  let b =
    TP.submit ~priority:5 pool (fun spawn ->
        for _ = 1 to 10 do
          spawn (fun () -> push `B)
        done)
  in
  TP.await a;
  TP.await b;
  let order = List.rev !log in
  Alcotest.(check int) "all ran" 20 (List.length order);
  let rec split_prefix = function
    | `B :: rest -> split_prefix rest
    | rest -> rest
  in
  let tail = split_prefix order in
  Alcotest.(check bool) "all B before any A" true
    (List.for_all (fun t -> t = `A) tail);
  Alcotest.(check int) "A count" 10 (List.length tail)

exception Boom

let test_region_fault_containment () =
  (* a failure in region A must surface from A's await only; region B
     completes untouched *)
  let pool = TP.create ~threads:2 in
  let b_done = Atomic.make 0 in
  let a =
    TP.submit pool (fun spawn ->
        spawn (fun () -> raise Boom);
        spawn (fun () -> ()))
  in
  let b =
    TP.submit pool (fun spawn ->
        for _ = 1 to 8 do
          spawn (fun () -> Atomic.incr b_done)
        done)
  in
  let a_failures = TP.await_collect a in
  TP.await b;
  Alcotest.(check int) "A failure captured" 1 (List.length a_failures);
  Alcotest.(check bool) "it is Boom" true
    (match a_failures with [ Boom ] -> true | _ -> false);
  Alcotest.(check int) "B unaffected" 8 (Atomic.get b_done)

let test_nested_await () =
  (* a task of one region may submit and await another region (the
     streaming gate task does exactly this) *)
  let pool = TP.create ~threads:2 in
  let inner_ran = Atomic.make false in
  let outer =
    TP.submit pool (fun spawn ->
        spawn (fun () ->
            let inner =
              TP.submit ~priority:3 pool (fun spawn' ->
                  spawn' (fun () -> Atomic.set inner_ran true))
            in
            TP.await inner))
  in
  TP.await outer;
  Alcotest.(check bool) "inner region completed" true (Atomic.get inner_ran)

(* ------------------------------------------------------------------ *)
(* Streamed vs barrier output equality *)

let subject ?(n = 60) ?(seed = 23) () =
  (Pbca_codegen.Emit.generate { Profile.default with n_funcs = n; seed }).image

let graphs_equal a b =
  let d = Pbca_core.Cfg_diff.diff a b in
  d.Pbca_core.Cfg_diff.added = []
  && d.Pbca_core.Cfg_diff.removed = []
  && d.Pbca_core.Cfg_diff.changed = []
  && Pbca_core.Summary.equal
       (Pbca_core.Summary.of_cfg a)
       (Pbca_core.Summary.of_cfg b)

let test_hpcstruct_streamed_equal () =
  let img = subject () in
  let barrier = H.run_image ~pool:(TP.create ~threads:2) img in
  List.iter
    (fun threads ->
      let r = H.run_image_streamed ~pool:(TP.create ~threads) img in
      Alcotest.(check string)
        (Printf.sprintf "XML byte-identical at %d threads" threads)
        barrier.H.output r.H.output;
      Alcotest.(check int) "same function count" barrier.H.n_funcs r.H.n_funcs;
      Alcotest.(check int) "same loops" barrier.H.n_loops r.H.n_loops;
      Alcotest.(check int) "same stmts" barrier.H.n_stmts r.H.n_stmts;
      Alcotest.(check bool) "graphs identical" true
        (graphs_equal barrier.H.cfg r.H.cfg))
    [ 1; 2; 4 ]

let test_hpcstruct_streamed_stats () =
  let img = subject () in
  let r = H.run_image_streamed ~pool:(TP.create ~threads:2) img in
  let s = r.H.cfg.Cfg.stats in
  Alcotest.(check int) "every function published" r.H.n_funcs
    (Atomic.get s.Cfg.stream_published);
  Alcotest.(check bool) "channel high-water recorded" true
    (Atomic.get s.Cfg.stream_hwm >= 1)

let index_alist (r : B.result) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.B.index []
  |> List.sort compare

let test_binfeat_streamed_equal () =
  let imgs = [ subject ~seed:31 (); subject ~n:40 ~seed:32 () ] in
  let barrier = B.extract ~pool:(TP.create ~threads:2) imgs in
  List.iter
    (fun threads ->
      let r = B.extract_streamed ~pool:(TP.create ~threads) imgs in
      Alcotest.(check int)
        (Printf.sprintf "n_funcs at %d threads" threads)
        barrier.B.n_funcs r.B.n_funcs;
      Alcotest.(check int) "n_features" barrier.B.n_features r.B.n_features;
      Alcotest.(check bool) "feature index equal" true
        (index_alist barrier = index_alist r))
    [ 1; 2; 4 ]

let test_streamed_otrace_spans () =
  (* the streamed run must record channel/stage spans when traced *)
  let img = subject () in
  let otrace = Pbca_obs.Trace.create () in
  let _ = H.run_image_streamed ~otrace ~pool:(TP.create ~threads:2) img in
  let spans = Pbca_obs.Trace.spans otrace in
  let phases =
    List.sort_uniq compare
      (List.map (fun (s : Pbca_obs.Trace.span) -> s.sp_phase) spans)
  in
  Alcotest.(check bool) "stage spans present" true (List.mem "stage" phases)

let test_pipeline_model () =
  (* barrier and streamed models must agree on total work (equal
     makespans at one thread) and streaming must never be slower *)
  let module Pipe = Pbca_simsched.Pipeline in
  let spec =
    {
      Pipe.sp_pre =
        [ ("dwarf", [| 40; 25; 35; 30 |]); ("linemap", [| 20 |]) ];
      sp_produce = Array.init 16 (fun i -> 5 + (i mod 7));
      sp_consume = Array.init 16 (fun i -> 3 + (i mod 5));
      sp_tail = 15;
    }
  in
  let points = Pipe.scan ~threads:[ 1; 4; 64 ] spec in
  List.iter
    (fun (pt : Pipe.point) ->
      if pt.Pipe.pt_threads = 1 then
        Alcotest.(check int)
          "equal work at 1 thread" pt.Pipe.pt_barrier_makespan
          pt.Pipe.pt_streamed_makespan;
      Alcotest.(check bool)
        (Printf.sprintf "streamed <= barrier at %d" pt.Pipe.pt_threads)
        true
        (pt.Pipe.pt_streamed_makespan <= pt.Pipe.pt_barrier_makespan);
      Alcotest.(check bool)
        (Printf.sprintf "serial fraction no worse at %d" pt.Pipe.pt_threads)
        true
        (pt.Pipe.pt_streamed_serial_fraction
        <= pt.Pipe.pt_barrier_serial_fraction +. 1e-9))
    points;
  (* trace-fed variant: same invariants on a real recorded run *)
  let img = subject () in
  let pool = TP.create ~threads:2 in
  let barrier = H.run_image ~pool img in
  let phase_trace name =
    List.find_map
      (fun (ph : H.phase) -> if ph.H.ph_name = name then ph.H.ph_trace else None)
      barrier.H.phases
  in
  let trace_tasks name =
    match phase_trace name with
    | Some tr -> Pbca_simsched.Trace.tasks tr
    | None -> []
  in
  let fill_costs =
    match phase_trace "fill" with
    | Some tr -> Pipe.costs_of (Pbca_simsched.Trace.tasks tr) "fill"
    | None -> [||]
  in
  Alcotest.(check bool) "fill tasks traced" true (Array.length fill_costs > 0);
  Alcotest.(check bool)
    "bounds epoch traced" true
    (List.exists
       (fun (t : Pbca_simsched.Trace.task) -> t.Pbca_simsched.Trace.label = "bounds")
       (trace_tasks "cfg"));
  let staged =
    {
      Pipe.tg_pre = [ ("dwarf", trace_tasks "dwarf") ];
      tg_produce = trace_tasks "cfg";
      tg_publish_label = Some "bounds";
      tg_consume = fill_costs;
      tg_tail = 10;
    }
  in
  List.iter
    (fun (pt : Pipe.point) ->
      if pt.Pipe.pt_threads = 1 then
        Alcotest.(check int)
          "staged equal work at 1 thread" pt.Pipe.pt_barrier_makespan
          pt.Pipe.pt_streamed_makespan;
      Alcotest.(check bool)
        (Printf.sprintf "staged streamed <= barrier at %d" pt.Pipe.pt_threads)
        true
        (pt.Pipe.pt_streamed_makespan <= pt.Pipe.pt_barrier_makespan))
    (Pipe.staged_scan ~threads:[ 1; 4; 128 ] staged)

let suite =
  [
    quick "channel fifo sequential" test_channel_fifo_sequential;
    quick "channel bounded blocking" test_channel_bounded_blocking;
    quick "channel mpmc 4 domains" test_channel_mpmc;
    quick "channel close while blocked" test_channel_close_while_blocked;
    quick "two regions make progress" test_two_regions_progress;
    quick "priority region drains first" test_priority_region_drains_first;
    quick "region fault containment" test_region_fault_containment;
    quick "nested await" test_nested_await;
    slow "hpcstruct streamed equality" test_hpcstruct_streamed_equal;
    quick "hpcstruct streamed stats" test_hpcstruct_streamed_stats;
    slow "binfeat streamed equality" test_binfeat_streamed_equal;
    quick "streamed otrace spans" test_streamed_otrace_spans;
    slow "pipelined-DAG model invariants" test_pipeline_model;
  ]
