(* PR9 gap parsing: heuristic entry discovery in unclaimed .text.
   Handcrafted images pin down each heuristic (prologue, call target) and
   each hostile shape (zero-length gaps, trailing junk, overlapping tails,
   jumps into the middle of an instruction); generated families cover the
   precision/recall gate, mutation robustness and crash-resume. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Config = Pbca_core.Config
module Parallel = Pbca_core.Parallel
module Recover = Pbca_core.Recover
module Summary = Pbca_core.Summary
module Cfg_diff = Pbca_core.Cfg_diff
module Addr_map = Pbca_core.Addr_map
module Image = Pbca_binfmt.Image
module Section = Pbca_binfmt.Section
module Symtab = Pbca_binfmt.Symtab
module Parse_error = Pbca_binfmt.Parse_error
module Codec = Pbca_isa.Codec
module Fault = Pbca_concurrent.Fault
module Family = Pbca_codegen.Family
module Mutate = Pbca_codegen.Mutate
module Rng = Pbca_codegen.Rng
module Checker = Pbca_checker.Checker

let gap_cfg = { Config.default with Config.gap_parse = true }
let base = 0x1000

(* Assemble a raw symbol-less .text at [base]; the image entry point is the
   only seed the parser gets. *)
type item = I of Insn.t | B of int list

let raw_image items =
  let buf = Buffer.create 64 in
  List.iter
    (function
      | I i -> Codec.encode buf i
      | B bytes -> List.iter (fun b -> Buffer.add_char buf (Char.chr b)) bytes)
    items;
  Image.make ~name:"crafted" ~entry:base
    ~sections:[ Section.make ~name:".text" ~addr:base (Buffer.to_bytes buf) ]
    (Symtab.create ())

let parse_gap ?config ?persist ?resume ?(threads = 4) image =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  Parallel.parse_and_finalize
    ~config:(Option.value config ~default:gap_cfg)
    ?persist ?resume ~pool image

let parse_gap_serial image = Pbca_core.Serial.parse_and_finalize ~config:gap_cfg image

let assert_gap_deterministic image =
  let ref_sum = Summary.of_cfg (parse_gap_serial image) in
  List.iter
    (fun t ->
      let s = Summary.of_cfg (parse_gap ~threads:t image) in
      if not (Summary.equal ref_sum s) then
        Alcotest.failf "gap parse with %d threads diverged:\n%s" t
          (String.concat "\n" (Summary.diff ref_sum s)))
    [ 1; 2; 4 ]

let func_conf g addr =
  match Addr_map.find g.Cfg.funcs addr with
  | None -> Alcotest.failf "no function at %#x" addr
  | Some f -> Cfg.func_confidence g f

let no_func g addr =
  Alcotest.(check bool)
    (Printf.sprintf "no function at %#x" addr)
    true
    (Addr_map.find g.Cfg.funcs addr = None)

let gap_stats g =
  let s = g.Cfg.stats in
  ( Atomic.get s.Cfg.gap_gaps_scanned,
    Atomic.get s.Cfg.gap_entries_proposed,
    Atomic.get s.Cfg.gap_entries_accepted,
    Atomic.get s.Cfg.gap_entries_rejected )

(* The handcrafted layouts below hardcode encoded lengths; pin them so a
   codec change fails loudly here rather than as offset garbage. *)
let test_layout_assumptions () =
  List.iter
    (fun (i, n) ->
      Alcotest.(check int) (Insn.to_string i ^ " length") n (Codec.encoded_length i))
    [
      (Insn.Enter 8, 3);
      (Insn.Halt, 1);
      (Insn.Ret, 1);
      (Insn.Nop, 1);
      (Insn.Jmp 0, 5);
      (Insn.Call 0, 5);
      (Insn.Mov_rr (Reg.r1, Reg.r2), 3);
      (Insn.Mov_ri (Reg.r0, 42), 6);
    ]

(* .text exactly covered by the entry function: nothing to scan. *)
let test_zero_length_gap () =
  let img =
    raw_image [ I (Insn.Enter 8); I (Insn.Mov_rr (Reg.r1, Reg.r2)); I Insn.Halt ]
  in
  let g = parse_gap img in
  let scanned, proposed, accepted, _ = gap_stats g in
  Alcotest.(check int) "gaps scanned" 0 scanned;
  Alcotest.(check int) "entries proposed" 0 proposed;
  Alcotest.(check int) "entries accepted" 0 accepted;
  Alcotest.(check int) "funcs" 1 (List.length (Cfg.funcs_list g));
  assert_gap_deterministic img

(* Trailing undecodable junk: the gap is scanned and yields nothing. *)
let test_gap_at_section_end () =
  let img =
    raw_image [ I (Insn.Enter 8); I Insn.Halt; B (List.init 12 (fun _ -> 0xff)) ]
  in
  let g = parse_gap img in
  let scanned, proposed, accepted, _ = gap_stats g in
  Alcotest.(check int) "gaps scanned" 1 scanned;
  Alcotest.(check int) "entries proposed" 0 proposed;
  Alcotest.(check int) "entries accepted" 0 accepted;
  Alcotest.(check int) "funcs" 1 (List.length (Cfg.funcs_list g));
  assert_gap_deterministic img

(* A framed function hidden behind junk: found by the prologue heuristic. *)
let test_prologue_heuristic () =
  let img =
    raw_image
      [
        I (Insn.Enter 8); I Insn.Halt;               (* entry, [0x1000,0x1004) *)
        B (List.init 12 (fun _ -> 0xff));            (* junk to 0x1010 *)
        I (Insn.Enter 16);                           (* hidden f1 @ 0x1010 *)
        I (Insn.Mov_rr (Reg.r1, Reg.r2));
        I Insn.Ret;
      ]
  in
  let g = parse_gap img in
  Alcotest.(check string)
    "f1 is a heuristic discovery" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1010));
  let scanned, proposed, accepted, _ = gap_stats g in
  (* round 1 scans the whole gap; accepting f1 triggers round 2 over the
     still-unclaimed junk prefix, so the cumulative counter sees 2 *)
  Alcotest.(check int) "gaps scanned" 2 scanned;
  Alcotest.(check int) "entries proposed" 1 proposed;
  Alcotest.(check int) "entries accepted" 1 accepted;
  assert_gap_deterministic img

(* A frameless unaligned callee: only the call-target heuristic, applied to
   the sweep's decoded call, can find it. *)
let test_call_target_heuristic () =
  let img =
    raw_image
      [
        I (Insn.Enter 8); I Insn.Halt;               (* entry, [0x1000,0x1004) *)
        B (List.init 12 (fun _ -> 0xff));            (* junk to 0x1010 *)
        I (Insn.Enter 16);                           (* f1 @ 0x1010 *)
        I (Insn.Call 1);                             (* @0x1013, next 0x1018 -> 0x1019 *)
        I Insn.Ret;                                  (* @0x1018 *)
        I (Insn.Mov_rr (Reg.r1, Reg.r2));            (* frameless f2 @ 0x1019 *)
        I Insn.Ret;
      ]
  in
  let g = parse_gap img in
  Alcotest.(check string)
    "f1 heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1010));
  Alcotest.(check string)
    "f2 heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1019));
  assert_gap_deterministic img

(* Listing-1 shape inside a gap: two heuristic entries sharing one tail
   block. The tail is a block of both functions, not a function itself, and
   its summary confidence is the heuristic tag of its owners. *)
let test_overlapping_tails () =
  let stub rel = [ I (Insn.Enter 16); I (Insn.Jmp rel) ] in
  let img =
    raw_image
      ([ I (Insn.Enter 8); I Insn.Halt; B (List.init 12 (fun _ -> 0xff)) ]
      @ stub 8                                       (* f1a @ 0x1010, -> 0x1020 *)
      @ stub 0                                       (* f1b @ 0x1018, -> 0x1020 *)
      @ [ I (Insn.Mov_rr (Reg.r1, Reg.r2)); I Insn.Ret ] (* shared tail @ 0x1020 *))
  in
  let g = parse_gap img in
  Alcotest.(check string)
    "f1a heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1010));
  Alcotest.(check string)
    "f1b heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1018));
  no_func g 0x1020;
  Alcotest.(check bool)
    "shared tail block exists" true
    (List.exists (fun (b : Cfg.block) -> b.Cfg.b_start = 0x1020) (Cfg.blocks_list g));
  let s = Summary.of_cfg g in
  let tail =
    List.find
      (fun (b : Summary.block_sum) -> b.Summary.bs_start = 0x1020)
      s.Summary.blocks
  in
  Alcotest.(check int) "tail carries heuristic confidence" 2 tail.Summary.bs_conf;
  assert_gap_deterministic img

(* A proposed entry whose walk jumps into the middle of another function's
   instruction: overlapping shingled decode streams must neither crash nor
   perturb determinism. *)
let test_mid_instruction_entry () =
  let img =
    raw_image
      [
        I (Insn.Enter 8); I Insn.Halt;               (* entry, [0x1000,0x1004) *)
        B [ 0xff ];                                  (* desync byte @ 0x1004 *)
        I (Insn.Enter 32);                           (* proposal A @ 0x1005 *)
        I (Insn.Jmp 7);                              (* @0x1008, next 0x100d -> 0x1014 *)
        I Insn.Nop; I Insn.Nop; I Insn.Nop;          (* 0x100d..0x100f *)
        I (Insn.Enter 16);                           (* f1 @ 0x1010 *)
        I (Insn.Mov_ri (Reg.r0, 42));                (* @0x1013; 0x1014 is mid-insn *)
        I Insn.Ret;                                  (* @0x1019 *)
      ]
  in
  let g = parse_gap img in
  Alcotest.(check string)
    "A heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1005));
  Alcotest.(check string)
    "f1 heuristic" "heuristic"
    (Cfg.confidence_name (func_conf g 0x1010));
  (* the jump target inside Mov_ri became a block, never a function *)
  Alcotest.(check bool)
    "mid-instruction block exists" true
    (List.exists (fun (b : Cfg.block) -> b.Cfg.b_start = 0x1014) (Cfg.blocks_list g));
  no_func g 0x1014;
  assert_gap_deterministic img

(* Gap parsing on a fully symboled image must change nothing. *)
let test_noop_on_symboled_image () =
  let r = emit_spec (mk_spec [ diamond_fun (); loop_fun () ]) in
  let img = r.Emit.image in
  let g_off = parse_parallel img in
  let g_on = parse_gap img in
  Alcotest.(check bool)
    "summaries equal with and without gap parsing" true
    (Summary.equal (Summary.of_cfg g_off) (Summary.of_cfg g_on));
  let _, _, heur = Cfg.conf_counts g_on in
  Alcotest.(check int) "no heuristic functions" 0 heur;
  let _, _, accepted, _ = gap_stats g_on in
  Alcotest.(check int) "no accepted proposals" 0 accepted

(* The wild families are fully explained by the checker's taxonomy. *)
let test_families_explained () =
  List.iter
    (fun fam ->
      let r = Family.generate fam 0 in
      check_clean r.Emit.ground_truth (parse_parallel r.Emit.image))
    [ Family.Overlap; Family.Obfuscated ]

(* Microsmoke slice of the bench gate: aggregate entry-discovery precision
   and recall on stripped subjects. The full gate runs over more members in
   `bench robustness`; this keeps a tripwire in every `dune runtest`. *)
let test_stripped_precision_recall_gate () =
  let relevant = ref 0 and found = ref 0 and spurious = ref 0 in
  for i = 0 to 2 do
    let r = Family.generate Family.Stripped i in
    let g = parse_gap r.Emit.image in
    check_clean r.Emit.ground_truth g;
    let d = Checker.score_discovery r.Emit.ground_truth g in
    relevant := !relevant + d.Checker.ds_relevant;
    found := !found + d.Checker.ds_found;
    spurious := !spurious + d.Checker.ds_spurious
  done;
  let precision = float_of_int !found /. float_of_int (!found + !spurious) in
  let recall = float_of_int !found /. float_of_int !relevant in
  if precision < 0.95 then
    Alcotest.failf "precision %.4f below gate 0.95" precision;
  if recall < 0.90 then Alcotest.failf "recall %.4f below gate 0.90" recall

(* Strip_symtab mutants (the PR9 fuzz axis) must never crash a gap parse. *)
let test_strip_mutants_no_crash () =
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  for s = 0 to 15 do
    let rng = Rng.create (0x9a90 + s) in
    let img = (Emit.generate (Profile.coreutils_like (s mod 4))).Emit.image in
    let bytes = Mutate.apply ~rng Mutate.Strip_symtab img in
    match Image.read_result bytes with
    | Error _ -> ()
    | Ok mutant -> (
      try ignore (Parallel.parse_and_finalize ~config:gap_cfg ~pool mutant)
      with Parse_error.Error _ -> ())
  done

(* ---------------- crash-resume through the gap phase ------------------ *)

let with_artifacts f =
  let cp = Filename.temp_file "test_pr9" ".cp" in
  let j = cp ^ ".journal" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ cp; j; cp ^ ".tmp" ])
    (fun () -> f cp j)

let crashed_parse ~ordinal ~cp ~j image =
  let persist = { Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 } in
  Fun.protect
    ~finally:(fun () -> Fault.disarm ())
    (fun () ->
      Fault.arm_at [ ordinal ] Fault.Crash;
      try ignore (parse_gap ~persist image) with _ -> ())

let assert_graphs_equal ~what g_clean g_res =
  Alcotest.(check bool)
    (what ^ ": summaries equal")
    true
    (Summary.equal (Summary.of_cfg g_clean) (Summary.of_cfg g_res));
  let d = Cfg_diff.diff g_clean g_res in
  Alcotest.(check bool)
    (what ^ ": Cfg_diff empty")
    true
    (d.Cfg_diff.added = [] && d.Cfg_diff.removed = [] && d.Cfg_diff.changed = [])

(* Kill a checkpointed gap parse at assorted task ordinals — some land in
   the symbol-seeded phase, some inside gap rounds — and resume from the
   v3 artifacts. The resumed graph, including every confidence tag, must
   equal the clean parse. *)
let test_kill_resume_mid_gap_scan () =
  let image = (Family.generate Family.Stripped 0).Emit.image in
  let clean = parse_gap image in
  let _, _, clean_heur = Cfg.conf_counts clean in
  Alcotest.(check bool) "subject exercises heuristics" true (clean_heur > 0);
  List.iter
    (fun ordinal ->
      with_artifacts (fun cp j ->
          crashed_parse ~ordinal ~cp ~j image;
          match
            Recover.load
              { Recover.src_checkpoint = Some cp; src_journal = Some j }
          with
          | Error e ->
            Alcotest.failf "ordinal %d: recovery load failed: %s" ordinal
              (Parse_error.to_string e)
          | Ok plan ->
            let g = parse_gap ~resume:plan image in
            assert_graphs_equal
              ~what:(Printf.sprintf "kill at ordinal %d" ordinal)
              clean g;
            Alcotest.(check (triple int int int))
              (Printf.sprintf "ordinal %d: conf census survives resume" ordinal)
              (Cfg.conf_counts clean) (Cfg.conf_counts g)))
    [ 3; 17; 45; 90 ]

let suite =
  [
    quick "layout assumptions" test_layout_assumptions;
    quick "zero-length gap" test_zero_length_gap;
    quick "gap at section end" test_gap_at_section_end;
    quick "prologue heuristic" test_prologue_heuristic;
    quick "call-target heuristic" test_call_target_heuristic;
    quick "overlapping tails" test_overlapping_tails;
    quick "mid-instruction entry" test_mid_instruction_entry;
    quick "no-op on symboled image" test_noop_on_symboled_image;
    quick "families explained" test_families_explained;
    slow "stripped precision/recall gate" test_stripped_precision_recall_gate;
    slow "strip mutants never crash" test_strip_mutants_no_crash;
    slow "kill+resume mid gap scan" test_kill_resume_mid_gap_scan;
  ]
