(* Tests for the concurrency substrate: the OCaml equivalents of the TBB
   concurrent hash map and the OpenMP task runtime the paper builds on. *)

open Tutil
module TP = Pbca_concurrent.Task_pool
module Bag = Pbca_concurrent.Conc_bag
module Barrier = Pbca_concurrent.Barrier
module Rwlock = Pbca_concurrent.Rwlock
module Wsdeque = Pbca_concurrent.Wsdeque
module TL = Pbca_concurrent.Thread_local

module IMap = Pbca_concurrent.Conc_hash.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module LMap = Pbca_concurrent.Lockfree_map.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

module ISet = Pbca_concurrent.Atomic_intset
module Contention = Pbca_concurrent.Contention

let in_domains n f =
  let ds = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.map Domain.join ds

(* ------------------------------- rwlock ------------------------------- *)

let test_rwlock_readers_share () =
  let l = Rwlock.create () in
  let inside = Atomic.make 0 in
  let peak = Atomic.make 0 in
  let b = Barrier.create 3 in
  ignore
    (in_domains 3 (fun _ ->
         Barrier.await b;
         Rwlock.with_read l (fun () ->
             Atomic.incr inside;
             let rec bump () =
               let p = Atomic.get peak and c = Atomic.get inside in
               if c > p && not (Atomic.compare_and_set peak p c) then bump ()
             in
             bump ();
             Unix.sleepf 0.01;
             Atomic.decr inside)));
  Alcotest.(check bool) "readers overlapped" true (Atomic.get peak >= 2)

let test_rwlock_writer_excludes () =
  let l = Rwlock.create () in
  let counter = ref 0 in
  ignore
    (in_domains 4 (fun _ ->
         for _ = 1 to 1000 do
           Rwlock.with_write l (fun () -> incr counter)
         done));
  Alcotest.(check int) "no lost updates" 4000 !counter

(* ------------------------------ conc_hash ----------------------------- *)

let test_map_basic () =
  let m = IMap.create () in
  Alcotest.(check bool) "insert new" true (IMap.insert_if_absent m 1 "a");
  Alcotest.(check bool) "insert dup" false (IMap.insert_if_absent m 1 "b");
  Alcotest.(check (option string)) "find" (Some "a") (IMap.find m 1);
  Alcotest.(check int) "length" 1 (IMap.length m);
  ignore (IMap.remove m 1);
  Alcotest.(check (option string)) "removed" None (IMap.find m 1)

let test_map_find_or_insert () =
  let m = IMap.create () in
  let v1, c1 = IMap.find_or_insert m 7 (fun () -> "x") in
  let v2, c2 = IMap.find_or_insert m 7 (fun () -> "y") in
  Alcotest.(check string) "first" "x" v1;
  Alcotest.(check bool) "created" true c1;
  Alcotest.(check string) "second sees first" "x" v2;
  Alcotest.(check bool) "not created" false c2

let test_map_update_atomic () =
  let m = IMap.create () in
  ignore (IMap.insert_if_absent m 0 0);
  ignore
    (in_domains 4 (fun _ ->
         for _ = 1 to 2500 do
           IMap.update m 0 (fun cur ->
               (Some (Option.value cur ~default:0 + 1), ()))
         done));
  Alcotest.(check (option int)) "10000 increments" (Some 10000) (IMap.find m 0)

let test_map_unique_winner () =
  (* Invariant 1: when many threads create the same key, exactly one wins *)
  let m = IMap.create () in
  let results =
    in_domains 4 (fun d ->
        List.init 500 (fun i -> IMap.insert_if_absent m i d))
  in
  for i = 0 to 499 do
    let winners =
      List.fold_left
        (fun acc per_domain -> acc + if List.nth per_domain i then 1 else 0)
        0 results
    in
    if winners <> 1 then Alcotest.failf "key %d has %d winners" i winners
  done

let test_map_fold () =
  let m = IMap.create () in
  for i = 1 to 100 do
    ignore (IMap.insert_if_absent m i i)
  done;
  let sum = IMap.fold (fun _ v acc -> acc + v) m 0 in
  Alcotest.(check int) "fold sums values" 5050 sum

let test_map_model =
  qcheck ~count:200 "conc_hash behaves like Hashtbl (sequential)"
    QCheck2.Gen.(list (pair (int_bound 50) (int_bound 1000)))
    (fun ops ->
      let m = IMap.create ~shards:4 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          if v mod 3 = 0 then begin
            ignore (IMap.remove m k);
            Hashtbl.remove h k
          end
          else begin
            ignore (IMap.insert_if_absent m k v);
            if not (Hashtbl.mem h k) then Hashtbl.add h k v
          end)
        ops;
      List.for_all
        (fun (k, _) -> IMap.find m k = Hashtbl.find_opt h k)
        ops
      && IMap.length m = Hashtbl.length h)

(* ----------------------------- lockfree_map --------------------------- *)

let test_lmap_basic () =
  let m = LMap.create () in
  Alcotest.(check bool) "insert new" true (LMap.insert_if_absent m 1 "a");
  Alcotest.(check bool) "insert dup" false (LMap.insert_if_absent m 1 "b");
  Alcotest.(check (option string)) "find" (Some "a") (LMap.find m 1);
  Alcotest.(check bool) "mem" true (LMap.mem m 1);
  Alcotest.(check int) "length" 1 (LMap.length m);
  Alcotest.(check (option string)) "remove" (Some "a") (LMap.remove m 1);
  Alcotest.(check (option string)) "removed" None (LMap.find m 1);
  Alcotest.(check int) "length after remove" 0 (LMap.length m)

let test_lmap_resize_preserves () =
  (* start tiny so growth happens many times; nothing may be lost *)
  let m = LMap.create ~shards:2 () in
  for i = 0 to 9999 do
    ignore (LMap.insert_if_absent m i (i * 3))
  done;
  Alcotest.(check int) "length" 10000 (LMap.length m);
  for i = 0 to 9999 do
    if LMap.find m i <> Some (i * 3) then Alcotest.failf "lost key %d" i
  done;
  Alcotest.(check bool) "resized at least once" true
    (Atomic.get (LMap.counters m).Contention.resizes >= 1)

let test_lmap_unique_winner () =
  (* Invariant 1 on the lock-free map: concurrent creators of the same key,
     exactly one winner, losers observe the winner's value *)
  let m = LMap.create ~shards:2 () in
  let results =
    in_domains 4 (fun d ->
        List.init 500 (fun i -> (LMap.insert_if_absent m i d, LMap.find m i)))
  in
  for i = 0 to 499 do
    let winners =
      List.fold_left
        (fun acc per_domain ->
          acc + if fst (List.nth per_domain i) then 1 else 0)
        0 results
    in
    if winners <> 1 then Alcotest.failf "key %d has %d winners" i winners;
    let v = Option.get (LMap.find m i) in
    List.iter
      (fun per_domain ->
        match snd (List.nth per_domain i) with
        | Some seen when seen <> v ->
          Alcotest.failf "key %d: a loser saw %d, winner wrote %d" i seen v
        | _ -> ())
      results
  done

let test_lmap_update_atomic () =
  let m = LMap.create () in
  ignore (LMap.insert_if_absent m 0 0);
  ignore
    (in_domains 4 (fun _ ->
         for _ = 1 to 2500 do
           LMap.update m 0 (fun cur ->
               (Some (Option.value cur ~default:0 + 1), ()))
         done));
  Alcotest.(check (option int)) "10000 increments" (Some 10000) (LMap.find m 0)

let test_lmap_concurrent_vs_model =
  (* linearizability smoke: N domains race disjoint-and-overlapping
     insert/find/mem traffic (insert-only: grow-only maps need no remove
     linearization); afterwards the map must agree with a sequential model
     that applies every key once *)
  qcheck ~count:30 "lockfree_map: concurrent inserts match model"
    QCheck2.Gen.(list_size (return 400) (int_bound 127))
    (fun keys ->
      let m = LMap.create ~shards:2 () in
      let arr = Array.of_list keys in
      ignore
        (in_domains 4 (fun d ->
             Array.iteri
               (fun i k ->
                 (* every domain tries every key; values differ per domain *)
                 ignore (LMap.insert_if_absent m k ((d * 1000) + i));
                 ignore (LMap.mem m k);
                 ignore (LMap.find m k))
               arr));
      let model = Hashtbl.create 16 in
      List.iter (fun k -> Hashtbl.replace model k ()) keys;
      LMap.length m = Hashtbl.length model
      && List.for_all (fun k -> LMap.mem m k) keys
      && LMap.fold (fun k _ acc -> acc && Hashtbl.mem model k) m true)

let test_lmap_model =
  qcheck ~count:200 "lockfree_map behaves like Hashtbl (sequential)"
    QCheck2.Gen.(list (pair (int_bound 50) (int_bound 1000)))
    (fun ops ->
      let m = LMap.create ~shards:4 () in
      let h = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          if v mod 3 = 0 then begin
            ignore (LMap.remove m k);
            Hashtbl.remove h k
          end
          else begin
            ignore (LMap.insert_if_absent m k v);
            if not (Hashtbl.mem h k) then Hashtbl.add h k v
          end)
        ops;
      List.for_all (fun (k, _) -> LMap.find m k = Hashtbl.find_opt h k) ops
      && LMap.length m = Hashtbl.length h)

(* ----------------------------- atomic_intset --------------------------- *)

let test_iset_basic () =
  let s = ISet.create () in
  Alcotest.(check bool) "add new" true (ISet.add s 42);
  Alcotest.(check bool) "add dup" false (ISet.add s 42);
  Alcotest.(check bool) "mem" true (ISet.mem s 42);
  Alcotest.(check bool) "not mem" false (ISet.mem s 43);
  Alcotest.(check int) "cardinal" 1 (ISet.cardinal s);
  Alcotest.check_raises "negative key rejected"
    (Invalid_argument "Atomic_intset.add: negative key") (fun () ->
      ignore (ISet.add s (-1)))

let test_iset_resize_preserves () =
  let s = ISet.create ~capacity:4 () in
  for i = 0 to 9999 do
    ignore (ISet.add s (i * 7))
  done;
  Alcotest.(check int) "cardinal" 10000 (ISet.cardinal s);
  for i = 0 to 9999 do
    if not (ISet.mem s (i * 7)) then Alcotest.failf "lost %d" (i * 7)
  done;
  Alcotest.(check bool) "non-members stay out" false (ISet.mem s 3)

let test_iset_unique_winner () =
  (* the traversal's "first visitor wins" primitive: exactly one of any
     number of concurrent adds of a key returns true *)
  let s = ISet.create ~capacity:4 () in
  let results =
    in_domains 4 (fun _ -> List.init 500 (fun i -> ISet.add s i))
  in
  for i = 0 to 499 do
    let winners =
      List.fold_left
        (fun acc per_domain -> acc + if List.nth per_domain i then 1 else 0)
        0 results
    in
    if winners <> 1 then Alcotest.failf "key %d has %d winners" i winners
  done;
  Alcotest.(check int) "cardinal" 500 (ISet.cardinal s)

let test_iset_concurrent_vs_model =
  (* linearizability smoke vs a sequential set model, with resizes in
     flight: domains hammer random keys while the table doubles *)
  qcheck ~count:30 "atomic_intset: concurrent adds match model"
    QCheck2.Gen.(list_size (return 300) (int_bound 100_000))
    (fun keys ->
      let s = ISet.create ~capacity:4 () in
      let arr = Array.of_list keys in
      ignore
        (in_domains 4 (fun _ ->
             Array.iter
               (fun k ->
                 ignore (ISet.add s k);
                 ignore (ISet.mem s k))
               arr));
      let module S = Set.Make (Int) in
      let model = S.of_list keys in
      ISet.cardinal s = S.cardinal model
      && S.for_all (fun k -> ISet.mem s k) model
      && List.for_all (fun k -> S.mem k model) (ISet.to_list s))

(* ------------------------------ wsdeque ------------------------------- *)

let test_deque_lifo_fifo () =
  let d = Wsdeque.create () in
  Wsdeque.push d 1;
  Wsdeque.push d 2;
  Wsdeque.push d 3;
  Alcotest.(check (option int)) "owner pops newest" (Some 3) (Wsdeque.pop d);
  Alcotest.(check (option int)) "thief steals oldest" (Some 1) (Wsdeque.steal d);
  Alcotest.(check (option int)) "remaining" (Some 2) (Wsdeque.pop d);
  Alcotest.(check (option int)) "empty pop" None (Wsdeque.pop d);
  Alcotest.(check (option int)) "empty steal" None (Wsdeque.steal d)

let test_deque_no_loss () =
  let d = Wsdeque.create () in
  for i = 0 to 9999 do
    Wsdeque.push d i
  done;
  let seen = Array.make 10000 false in
  let lost = Atomic.make 0 in
  ignore
    (in_domains 4 (fun k ->
         let rec go () =
           let item = if k mod 2 = 0 then Wsdeque.pop d else Wsdeque.steal d in
           match item with
           | Some i ->
             if seen.(i) then Atomic.incr lost;
             seen.(i) <- true;
             go ()
           | None -> ()
         in
         go ()));
  Alcotest.(check int) "no duplicates" 0 (Atomic.get lost);
  Alcotest.(check bool) "all drained" true (Array.for_all (fun x -> x) seen)

(* ------------------------------ task_pool ----------------------------- *)

let test_pool_runs_all () =
  let pool = TP.create ~threads:4 in
  let count = Atomic.make 0 in
  TP.run pool (fun spawn ->
      for _ = 1 to 100 do
        spawn (fun () -> Atomic.incr count)
      done);
  Alcotest.(check int) "all tasks ran" 100 (Atomic.get count)

let test_pool_nested_spawn () =
  let pool = TP.create ~threads:3 in
  let count = Atomic.make 0 in
  TP.run pool (fun spawn ->
      let rec tree depth =
        Atomic.incr count;
        if depth > 0 then
          for _ = 1 to 2 do
            spawn (fun () -> tree (depth - 1))
          done
      in
      tree 6);
  (* 2^7 - 1 nodes *)
  Alcotest.(check int) "binary task tree" 127 (Atomic.get count)

let test_pool_serial_inline () =
  let pool = TP.create ~threads:1 in
  let order = ref [] in
  TP.run pool (fun spawn ->
      spawn (fun () -> order := 1 :: !order);
      spawn (fun () -> order := 2 :: !order));
  Alcotest.(check int) "both ran" 2 (List.length !order)

let test_pool_exception () =
  let pool = TP.create ~threads:2 in
  let raised =
    try
      TP.run pool (fun spawn -> spawn (fun () -> failwith "boom"));
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception propagated" true raised;
  (* pool remains usable *)
  let ok = Atomic.make 0 in
  TP.run pool (fun spawn -> spawn (fun () -> Atomic.incr ok));
  Alcotest.(check int) "pool reusable after failure" 1 (Atomic.get ok)

(* A crashing task must not wedge the region: every sibling still runs and
   the region drains. *)
let test_pool_failure_drains () =
  let pool = TP.create ~threads:4 in
  let ran = Atomic.make 0 in
  let raised =
    try
      TP.run pool (fun spawn ->
          for i = 0 to 99 do
            spawn (fun () ->
                if i = 50 then failwith "boom" else Atomic.incr ran)
          done);
      false
    with Failure _ -> true
  in
  Alcotest.(check bool) "failure reported" true raised;
  Alcotest.(check int) "all siblings ran" 99 (Atomic.get ran)

let test_pool_multiple_failures () =
  let pool = TP.create ~threads:4 in
  let msgs =
    try
      TP.run pool (fun spawn ->
          for i = 0 to 9 do
            spawn (fun () -> failwith (string_of_int i))
          done);
      []
    with
    | TP.Task_failures es ->
      List.filter_map (function Failure m -> Some m | _ -> None) es
    | Failure m -> [ m ]
  in
  (* at least one failure must surface; with >1 collected, all are kept *)
  Alcotest.(check bool) "failures reported" true (msgs <> []);
  Alcotest.(check bool) "no duplicates" true
    (List.length (List.sort_uniq compare msgs) = List.length msgs)

let test_pool_run_collect () =
  let pool = TP.create ~threads:4 in
  let ran = Atomic.make 0 in
  let errs =
    TP.run_collect pool (fun spawn ->
        for i = 0 to 19 do
          spawn (fun () ->
              if i mod 5 = 0 then failwith "x" else Atomic.incr ran)
        done)
  in
  Alcotest.(check int) "all failures collected" 4 (List.length errs);
  Alcotest.(check int) "all other tasks ran" 16 (Atomic.get ran);
  (* collect mode does not raise, and the pool stays usable *)
  Alcotest.(check (list string)) "second region clean" []
    (List.map Printexc.to_string (TP.run_collect pool (fun _ -> ())))

let test_parallel_for_fault_containment () =
  let pool = TP.create ~threads:4 in
  let hits = Array.make 200 0 in
  let raised =
    try
      TP.parallel_for pool 0 200 (fun i ->
          if i = 77 then failwith "mid-range" else hits.(i) <- hits.(i) + 1);
      false
    with Failure m -> m = "mid-range"
  in
  Alcotest.(check bool) "fault propagated" true raised;
  let others_ok = ref true in
  Array.iteri (fun i h -> if i <> 77 && h <> 1 then others_ok := false) hits;
  Alcotest.(check bool) "every other index visited once" true !others_ok;
  Alcotest.(check int) "faulting index not completed" 0 hits.(77)

let test_fault_injection () =
  let module Fault = Pbca_concurrent.Fault in
  let pool = TP.create ~threads:4 in
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm_at [ 3; 7 ] Fault.Raise;
      let ran = Atomic.make 0 in
      let errs =
        TP.run_collect pool (fun spawn ->
            for _ = 0 to 19 do
              spawn (fun () -> Atomic.incr ran)
            done)
      in
      Alcotest.(check int) "two faults injected" 2 (List.length errs);
      Alcotest.(check bool) "faults are Injected" true
        (List.for_all (function Fault.Injected _ -> true | _ -> false) errs);
      Alcotest.(check int) "injection counter" 2 (Fault.injected_count ());
      Alcotest.(check int) "non-faulted tasks all ran" 18 (Atomic.get ran);
      Fault.disarm ();
      (* pool usable and clean after disarm *)
      Alcotest.(check (list string)) "clean after disarm" []
        (List.map Printexc.to_string
           (TP.run_collect pool (fun spawn -> spawn (fun () -> ())))))

let test_parallel_for_coverage () =
  let pool = TP.create ~threads:4 in
  let hits = Array.make 1000 0 in
  TP.parallel_for pool 0 1000 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_parallel_for_empty () =
  let pool = TP.create ~threads:2 in
  TP.parallel_for pool 5 5 (fun _ -> Alcotest.fail "must not run");
  TP.parallel_for pool 5 3 (fun _ -> Alcotest.fail "must not run")

let test_parallel_for_reduce () =
  let pool = TP.create ~threads:4 in
  let sum =
    TP.parallel_for_reduce pool 1 1001 ~init:0 ~map:(fun i -> i)
      ~combine:( + )
  in
  Alcotest.(check int) "sum 1..1000" 500500 sum

let test_parallel_iter_list () =
  let pool = TP.create ~threads:3 in
  let acc = Bag.create () in
  TP.parallel_iter_list pool [ "a"; "b"; "c"; "d" ] (fun s -> Bag.add acc s);
  Alcotest.(check int) "all visited" 4 (Bag.length acc)

(* ------------------------------ others -------------------------------- *)

let test_bag () =
  let b = Bag.create () in
  Alcotest.(check bool) "fresh empty" true (Bag.is_empty b);
  ignore (in_domains 4 (fun d -> List.iter (Bag.add b) (List.init 100 (fun i -> (d * 100) + i))));
  Alcotest.(check int) "all added" 400 (Bag.length b);
  let drained = Bag.drain b in
  Alcotest.(check int) "drain returns all" 400 (List.length drained);
  Alcotest.(check bool) "empty after drain" true (Bag.is_empty b);
  Alcotest.(check int) "distinct elements survive"
    400
    (List.length (List.sort_uniq compare drained))

let test_thread_local () =
  let tl = TL.create (fun () -> ref 0) in
  ignore
    (in_domains 3 (fun _ ->
         let r = TL.get tl in
         for _ = 1 to 100 do
           incr r
         done;
         !r));
  let total = TL.fold tl ~init:0 ~f:(fun acc r -> acc + !r) in
  Alcotest.(check int) "per-domain instances summed" 300 total

let test_barrier_cyclic () =
  let b = Barrier.create 4 in
  let phase = Atomic.make 0 in
  let bad = Atomic.make 0 in
  ignore
    (in_domains 4 (fun _ ->
         for p = 1 to 5 do
           Barrier.await b;
           if Atomic.get phase > p then Atomic.incr bad;
           Barrier.await b;
           ignore (Atomic.compare_and_set phase (p - 1) p)
         done));
  Alcotest.(check int) "phases in lock-step" 0 (Atomic.get bad)

let suite =
  [
    quick "rwlock: readers share" test_rwlock_readers_share;
    quick "rwlock: writers exclude" test_rwlock_writer_excludes;
    quick "conc_hash: basic ops" test_map_basic;
    quick "conc_hash: find_or_insert" test_map_find_or_insert;
    quick "conc_hash: update is atomic" test_map_update_atomic;
    quick "conc_hash: unique creation winner (Invariant 1)" test_map_unique_winner;
    quick "conc_hash: fold" test_map_fold;
    test_map_model;
    quick "lockfree_map: basic ops" test_lmap_basic;
    quick "lockfree_map: resize loses nothing" test_lmap_resize_preserves;
    quick "lockfree_map: unique creation winner (Invariant 1)"
      test_lmap_unique_winner;
    quick "lockfree_map: update is atomic" test_lmap_update_atomic;
    test_lmap_concurrent_vs_model;
    test_lmap_model;
    quick "atomic_intset: basic ops" test_iset_basic;
    quick "atomic_intset: resize loses nothing" test_iset_resize_preserves;
    quick "atomic_intset: unique add winner" test_iset_unique_winner;
    test_iset_concurrent_vs_model;
    quick "wsdeque: lifo owner, fifo thief" test_deque_lifo_fifo;
    quick "wsdeque: concurrent drain, no loss" test_deque_no_loss;
    quick "task_pool: runs all tasks" test_pool_runs_all;
    quick "task_pool: nested spawns" test_pool_nested_spawn;
    quick "task_pool: single thread inline" test_pool_serial_inline;
    quick "task_pool: exception propagation" test_pool_exception;
    quick "task_pool: failing task drains region" test_pool_failure_drains;
    quick "task_pool: multiple failures all reported"
      test_pool_multiple_failures;
    quick "task_pool: run_collect contains failures" test_pool_run_collect;
    quick "parallel_for: fault mid-range contained"
      test_parallel_for_fault_containment;
    quick "fault injection: deterministic ordinals" test_fault_injection;
    quick "parallel_for: exact coverage" test_parallel_for_coverage;
    quick "parallel_for: empty ranges" test_parallel_for_empty;
    quick "parallel_for_reduce: sum" test_parallel_for_reduce;
    quick "parallel_iter_list" test_parallel_iter_list;
    quick "conc_bag: concurrent adds and drain" test_bag;
    quick "thread_local: per-domain instances" test_thread_local;
    quick "barrier: cyclic phases" test_barrier_cyclic;
  ]
