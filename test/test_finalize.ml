(* Finalization unit tests (PR2): direct checks of the jump-table clamp
   and of tail-call correction rules 1-3 on hand-built CFGs, plus a
   multi-seed serial-vs-parallel and legacy-vs-snapshot fuzz. *)

open Tutil
module C = Pbca_core.Cfg
module TP = Pbca_concurrent.Task_pool
module Section = Pbca_binfmt.Section

let mk_image ?(syms = []) ?entry ~sections name =
  let tab = Pbca_binfmt.Symtab.create () in
  List.iter
    (fun (n, a) -> ignore (Pbca_binfmt.Symtab.insert tab (Pbca_binfmt.Symbol.make n a)))
    syms;
  Pbca_binfmt.Image.make ~name ?entry ~sections tab

let text16 addr = Section.make ~name:".text" ~addr (Bytes.create 16)

let block g addr ~end_ ?term () =
  let b = fst (C.find_or_create_block g addr) in
  Atomic.set b.C.b_end end_;
  (match term with Some i -> Atomic.set b.C.b_term (Some i) | None -> ());
  b

let starts (f : C.func) = List.map (fun (b : C.block) -> b.C.b_start) f.C.f_blocks

let check_kind name expected (e : C.edge) =
  Alcotest.(check string)
    name
    (Format.asprintf "%a" C.pp_edge_kind expected)
    (Format.asprintf "%a" C.pp_edge_kind e.C.e_kind)

(* ---------------------------------------------------------------- *)
(* Jump-table clamping: two tables in one .rodata section; the first is
   clamped at the second's base, the second at the section end. *)

let jt_clamp () =
  let rodata = Bytes.create 16 in
  let put off v =
    Bytes.set rodata off (Char.chr (v land 0xff));
    Bytes.set rodata (off + 1) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set rodata (off + 2) '\x00';
    Bytes.set rodata (off + 3) '\x00'
  in
  (* table 1 occupies [0x2000,0x2008), table 2 [0x2008,0x2010) *)
  put 0 0x1010;
  put 4 0x1018;
  put 8 0x1020;
  put 12 0x1028;
  let image =
    mk_image "jtclamp"
      ~sections:
        [ text16 0x1000; Section.make ~name:".rodata" ~addr:0x2000 rodata ]
  in
  let g = C.create image in
  let jb1 = block g 0x1100 ~end_:0x1108 () in
  let jb2 = block g 0x1200 ~end_:0x1208 () in
  let tgt addr = block g addr ~end_:(addr + 8) () in
  let e11 = C.add_edge g jb1 (tgt 0x1010) C.Indirect in
  let e12 = C.add_edge g jb1 (tgt 0x1018) C.Indirect in
  (* 0x1020 is table 2's word: past table 1's clamp *)
  let e13 = C.add_edge g jb1 (tgt 0x1020) C.Indirect in
  let e21 = C.add_edge g jb2 (tgt 0x1020) C.Indirect in
  let e22 = C.add_edge g jb2 (tgt 0x1028) C.Indirect in
  (* 0x1030 appears in no table word (its slot is past the section end) *)
  let e23 = C.add_edge g jb2 (tgt 0x1030) C.Indirect in
  let bag = g.C.tables in
  Pbca_concurrent.Conc_bag.add bag
    {
      C.jt_id = 0;
      jt_block = jb1;
      jt_jump_addr = 0x1104;
      jt_base = 0x2000;
      jt_bounded = false;
      jt_count = 3;
    };
  Pbca_concurrent.Conc_bag.add bag
    {
      C.jt_id = 1;
      jt_block = jb2;
      jt_jump_addr = 0x1204;
      jt_base = 0x2008;
      jt_bounded = false;
      jt_count = 3;
    };
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.clean_jump_tables ~pool g;
  let dead (e : C.edge) = Atomic.get e.C.e_dead in
  Alcotest.(check bool) "t1 word 0 edge live" false (dead e11);
  Alcotest.(check bool) "t1 word 1 edge live" false (dead e12);
  Alcotest.(check bool) "t1 edge past next base killed" true (dead e13);
  Alcotest.(check bool) "t2 word 0 edge live" false (dead e21);
  Alcotest.(check bool) "t2 word 1 edge live" false (dead e22);
  Alcotest.(check bool) "t2 edge past section end killed" true (dead e23)

(* ---------------------------------------------------------------- *)
(* Rule 1a: a Jump to another function's entry becomes a tail call. *)

let rule1_entry () =
  let image =
    mk_image "rule1" ~entry:0x1000
      ~syms:[ ("f", 0x1000); ("g", 0x1100) ]
      ~sections:[ text16 0x1000 ]
  in
  let g = C.create image in
  let bf = block g 0x1000 ~end_:0x1008 ~term:(Insn.Jmp 0) () in
  let bg = block g 0x1100 ~end_:0x1108 ~term:Insn.Ret () in
  ignore (C.find_or_create_func g ~name:"f" ~from_symtab:true 0x1000);
  ignore (C.find_or_create_func g ~name:"g" ~from_symtab:true 0x1100);
  let e = C.add_edge g bf bg C.Jump in
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.run ~pool g;
  check_kind "jump to entry flips to tail call" C.Tail_call e;
  Alcotest.(check (list int))
    "caller boundary excludes the callee" [ 0x1000 ]
    (starts (get_func g "f"));
  Alcotest.(check (list int))
    "callee boundary" [ 0x1100 ]
    (starts (get_func g "g"))

(* Rule 1b: a Cond_taken branch to a block that also has an incoming Call
   edge becomes a tail call even though the target is not a known entry. *)

let rule1_called_target () =
  let image =
    mk_image "rule1b" ~entry:0x1000 ~syms:[ ("f", 0x1000) ]
      ~sections:[ text16 0x1000 ]
  in
  let g = C.create image in
  let a = block g 0x1000 ~end_:0x1008 ~term:(Insn.Jcc (Insn.Eq, 0)) () in
  let b = block g 0x1010 ~end_:0x1018 ~term:Insn.Ret () in
  let h = block g 0x1200 ~end_:0x1208 ~term:Insn.Ret () in
  ignore (C.find_or_create_func g ~name:"f" ~from_symtab:true 0x1000);
  let e_taken = C.add_edge g a h C.Cond_taken in
  ignore (C.add_edge g a b C.Cond_fall);
  ignore (C.add_edge g b h C.Call);
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.run ~pool g;
  check_kind "branch to called block flips to tail call" C.Tail_call e_taken;
  Alcotest.(check (list int))
    "tail-call target leaves the boundary" [ 0x1000; 0x1010 ]
    (starts (get_func g "f"))

(* Rule 2: a Tail_call whose target lies inside a function that also
   contains the source flips back (to Cond_taken: the source terminator is
   a conditional branch). *)

let rule2_within () =
  let image =
    mk_image "rule2" ~entry:0x1000 ~syms:[ ("f", 0x1000) ]
      ~sections:[ text16 0x1000 ]
  in
  let g = C.create image in
  let a = block g 0x1000 ~end_:0x1008 ~term:(Insn.Jcc (Insn.Eq, 0)) () in
  let b = block g 0x1010 ~end_:0x1018 ~term:(Insn.Jmp 0) () in
  let c = block g 0x1020 ~end_:0x1028 ~term:Insn.Ret () in
  ignore (C.find_or_create_func g ~name:"f" ~from_symtab:true 0x1000);
  let e = C.add_edge g a c C.Tail_call in
  ignore (C.add_edge g a b C.Cond_fall);
  ignore (C.add_edge g b c C.Jump);
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.run ~pool g;
  check_kind "within-boundary tail call flips back" C.Cond_taken e;
  Alcotest.(check (list int))
    "boundary keeps all three blocks" [ 0x1000; 0x1010; 0x1020 ]
    (starts (get_func g "f"))

(* Rule 3: a Tail_call to a block whose sole in-edge it is (outlined code)
   flips back to Jump, and the target merges into the boundary. *)

let rule3_sole_in () =
  let image =
    mk_image "rule3" ~entry:0x1000 ~syms:[ ("f", 0x1000) ]
      ~sections:[ text16 0x1000 ]
  in
  let g = C.create image in
  let a = block g 0x1000 ~end_:0x1008 ~term:(Insn.Jmp 0) () in
  let c = block g 0x1020 ~end_:0x1028 ~term:Insn.Ret () in
  ignore (C.find_or_create_func g ~name:"f" ~from_symtab:true 0x1000);
  let e = C.add_edge g a c C.Tail_call in
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.run ~pool g;
  check_kind "sole-in-edge tail call flips back" C.Jump e;
  Alcotest.(check (list int))
    "outlined target merges into the boundary" [ 0x1000; 0x1020 ]
    (starts (get_func g "f"))

(* Rule 2 guard: the flip-back must not fire when the target is a static
   entry, even if it lies within the source's function boundary. *)

let rule2_static_entry_guard () =
  let image =
    mk_image "rule2g" ~entry:0x1000
      ~syms:[ ("f", 0x1000); ("shared", 0x1020) ]
      ~sections:[ text16 0x1000 ]
  in
  let g = C.create image in
  let a = block g 0x1000 ~end_:0x1008 ~term:(Insn.Jmp 0) () in
  let b = block g 0x1010 ~end_:0x1018 ~term:(Insn.Jmp 0) () in
  let c = block g 0x1020 ~end_:0x1028 ~term:Insn.Ret () in
  ignore (C.find_or_create_func g ~name:"f" ~from_symtab:true 0x1000);
  ignore (C.find_or_create_func g ~name:"shared" ~from_symtab:true 0x1020);
  let e = C.add_edge g a c C.Tail_call in
  ignore (C.add_edge g a b C.Fallthrough);
  ignore (C.add_edge g b c C.Indirect);
  let pool = TP.create ~threads:1 in
  Pbca_core.Finalize.run ~pool g;
  check_kind "tail call to a static entry stays" C.Tail_call e

(* ---------------------------------------------------------------- *)
(* Fuzz: generated subjects, several seeds. The snapshot path at 1 and 4
   threads and the legacy whole-graph path must all produce Cfg_diff- and
   Summary-identical graphs. *)

let assert_graphs_equal what a b =
  let d = Pbca_core.Cfg_diff.diff a b in
  if
    not
      (d.Pbca_core.Cfg_diff.added = []
      && d.Pbca_core.Cfg_diff.removed = []
      && d.Pbca_core.Cfg_diff.changed = [])
  then
    Alcotest.failf "%s: Cfg_diff found changes:@ %a" what Pbca_core.Cfg_diff.pp
      d;
  let sa = summary a and sb = summary b in
  if not (Pbca_core.Summary.equal sa sb) then
    Alcotest.failf "%s: summaries differ:\n%s" what
      (String.concat "\n" (Pbca_core.Summary.diff sa sb))

let fuzz_paths () =
  for i = 0 to 3 do
    let p =
      {
        (Profile.coreutils_like (90 + i)) with
        Profile.seed = 99_000 + (i * 7);
      }
    in
    let r = Emit.generate p in
    let tag = Printf.sprintf "seed %d" p.Profile.seed in
    let snap1 = parse_parallel ~threads:1 r.Emit.image in
    let snap4 = parse_parallel ~threads:4 r.Emit.image in
    assert_graphs_equal (tag ^ ": snapshot 1 vs 4 threads") snap1 snap4;
    let pool = TP.create ~threads:1 in
    let legacy = Pbca_core.Parallel.parse ~pool r.Emit.image in
    Pbca_core.Finalize.run_legacy ~pool legacy;
    assert_graphs_equal (tag ^ ": legacy vs snapshot") legacy snap1
  done

let suite =
  [
    quick "jump-table clamp: next base and section end" jt_clamp;
    quick "tail-call rule 1: jump to function entry" rule1_entry;
    quick "tail-call rule 1: branch to called block" rule1_called_target;
    quick "tail-call rule 2: within-boundary flip-back" rule2_within;
    quick "tail-call rule 2: static-entry guard" rule2_static_entry_guard;
    quick "tail-call rule 3: sole in-edge flip-back" rule3_sole_in;
    slow "fuzz: legacy vs snapshot vs parallel over seeds" fuzz_paths;
  ]
