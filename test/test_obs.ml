(* Observability layer: the monotonic/fake clock, the per-run metrics
   registry under parallel hammering, and per-domain execution spans
   exported as Chrome trace-event JSON. *)

module Clock = Pbca_obs.Clock
module Metrics = Pbca_obs.Metrics
module Otrace = Pbca_obs.Trace
module Json = Pbca_obs.Json
module TP = Pbca_concurrent.Task_pool
module Profile = Pbca_codegen.Profile

(* ------------------------------ clock --------------------------------- *)

let test_clock_monotonic () =
  let t0 = Clock.now () in
  let last = ref t0 in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t < !last then Alcotest.failf "clock went backwards: %g < %g" t !last;
    last := t
  done;
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed t0 >= 0.0)

let test_clock_fake () =
  Alcotest.(check bool) "real source by default" false (Clock.is_fake ());
  let cell = ref 42.0 in
  Clock.with_fake
    (fun () -> !cell)
    (fun () ->
      Alcotest.(check bool) "fake installed" true (Clock.is_fake ());
      Alcotest.(check (float 0.0)) "now reads the fake" 42.0 (Clock.now ());
      cell := 43.5;
      Alcotest.(check (float 1e-9)) "elapsed via the fake" 1.5
        (Clock.elapsed 42.0));
  Alcotest.(check bool) "restored after the body" false (Clock.is_fake ());
  (match
     Clock.with_fake (fun () -> 0.0) (fun () -> failwith "boom")
   with
  | () -> Alcotest.fail "body must raise"
  | exception Failure _ -> ());
  Alcotest.(check bool) "restored after an exception" false (Clock.is_fake ())

(* ----------------------------- metrics -------------------------------- *)

(* Hammer one registry from every worker: find-or-create interning must
   hand every domain the same cell, and the final count must equal the
   exact number of increments (each increment is an atomic RMW). *)
let test_metrics_parallel_counters () =
  let m = Metrics.create () in
  let pool = TP.create ~threads:4 in
  let n = 20_000 in
  TP.parallel_for pool ~chunk:64 0 n (fun i ->
      Metrics.incr (Metrics.counter m "hits");
      if i land 1 = 0 then Metrics.add (Metrics.counter m "evens") 2);
  Alcotest.(check int) "every increment counted" n
    (Metrics.count (Metrics.counter m "hits"));
  Alcotest.(check int) "adds counted" n
    (Metrics.count (Metrics.counter m "evens"))

let test_metrics_parallel_histogram () =
  let m = Metrics.create () in
  let pool = TP.create ~threads:4 in
  let h = Metrics.histogram m "lat" in
  let n = 8_000 in
  TP.parallel_for pool ~chunk:64 0 n (fun i ->
      Metrics.observe h (float_of_int (i mod 10) *. 1e-4));
  Alcotest.(check int) "observation count" n (Metrics.hist_count h);
  match List.assoc "lat" (Metrics.snapshot m) with
  | Metrics.Histogram { n = hn; buckets; _ } ->
    Alcotest.(check int) "snapshot count" n hn;
    Alcotest.(check int) "bucket occupancies sum to the count" n
      (List.fold_left (fun acc (_, c) -> acc + c) 0 buckets)
  | _ -> Alcotest.fail "lat is not a histogram"

let test_metrics_adopt_and_kinds () =
  let m = Metrics.create () in
  let cell = Atomic.make 0 in
  Metrics.register_counter m "adopted" cell;
  Atomic.incr cell;
  Atomic.incr cell;
  (* the registry reads the very cell the hot path increments *)
  Alcotest.(check int) "adopted cell is shared" 2
    (Metrics.count (Metrics.counter m "adopted"));
  Metrics.register_gauge_fn m "computed" (fun () -> 7.5);
  (match List.assoc "computed" (Metrics.snapshot m) with
  | Metrics.Gauge v -> Alcotest.(check (float 0.0)) "gauge fn" 7.5 v
  | _ -> Alcotest.fail "computed is not a gauge");
  match Metrics.gauge m "adopted" with
  | _ -> Alcotest.fail "kind mismatch must raise"
  | exception Invalid_argument _ -> ()

let test_metrics_merge_diff () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.add (Metrics.counter a "c") 5;
  Metrics.add (Metrics.counter b "c") 7;
  Metrics.set (Metrics.gauge b "g") 2.5;
  Metrics.observe (Metrics.histogram b "h") 0.001;
  Metrics.merge ~into:a b;
  Alcotest.(check int) "counters add on merge" 12
    (Metrics.count (Metrics.counter a "c"));
  Alcotest.(check (float 0.0)) "gauges take the source" 2.5
    (Metrics.value (Metrics.gauge a "g"));
  Alcotest.(check int) "histograms add on merge" 1
    (Metrics.hist_count (Metrics.histogram a "h"));
  let before = Metrics.snapshot a in
  Metrics.add (Metrics.counter a "c") 3;
  (match List.assoc "c" (Metrics.diff ~before ~after:(Metrics.snapshot a)) with
  | Metrics.Counter d -> Alcotest.(check int) "diff subtracts counters" 3 d
  | _ -> Alcotest.fail "c is not a counter")

(* ------------------------------ trace --------------------------------- *)

let traced_parse () =
  let r = Pbca_codegen.Emit.generate (Profile.coreutils_like 1) in
  let pool = TP.create ~threads:4 in
  let otrace = Otrace.create () in
  let t0 = Clock.now () in
  let g =
    Pbca_core.Parallel.parse_and_finalize ~otrace ~pool
      r.Pbca_codegen.Emit.image
  in
  (g, otrace, Clock.elapsed t0)

let test_trace_chrome_json () =
  let g, t, wall = traced_parse () in
  ignore g;
  let s = Otrace.to_chrome_string t in
  Alcotest.(check bool) "chrome export is well-formed JSON" true
    (Json.json_well_formed s);
  Alcotest.(check bool) "spans recorded" true (Otrace.spans t <> []);
  (* the root "parse" span opens right after Cfg.create and closes after
     the last round, so span coverage tracks the measured wall closely;
     0.90 leaves slack for registry setup and a GC pause *)
  Alcotest.(check bool) "spans cover the parse wall" true
    (Otrace.covered_wall t >= 0.90 *. wall);
  match Otrace.phase_walls t with
  | [] -> Alcotest.fail "no phase breakdown"
  | phases ->
    Alcotest.(check bool) "total phase present" true
      (List.mem_assoc "total" phases)

(* Per-domain span discipline: every span on a domain comes from that
   domain's (synchronous) call stack, so sorted by start time they must
   nest or be disjoint — never partially overlap — and their begin
   ordinals must increase with strictly increasing start times. *)
let test_trace_span_discipline () =
  let _g, t, _wall = traced_parse () in
  let spans = Otrace.spans t in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      a.Otrace.sp_t0 <= b.Otrace.sp_t0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "globally sorted by start" true (sorted spans);
  List.iter
    (fun sp ->
      if sp.Otrace.sp_t1 < sp.Otrace.sp_t0 || sp.Otrace.sp_t0 < 0.0 then
        Alcotest.failf "span %s has a negative interval [%g,%g]"
          sp.Otrace.sp_name sp.Otrace.sp_t0 sp.Otrace.sp_t1)
    spans;
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun sp ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt by_tid sp.Otrace.sp_tid)
      in
      Hashtbl.replace by_tid sp.Otrace.sp_tid (sp :: prev))
    spans;
  Hashtbl.iter
    (fun tid sps ->
      (* earlier start first; on a tie the longer (enclosing) span first *)
      let sps =
        List.sort
          (fun a b ->
            compare
              (a.Otrace.sp_t0, -.a.Otrace.sp_t1)
              (b.Otrace.sp_t0, -.b.Otrace.sp_t1))
          sps
      in
      let stack = ref [] in
      let last : Otrace.span option ref = ref None in
      List.iter
        (fun sp ->
          (match !last with
          | Some p
            when p.Otrace.sp_t0 < sp.Otrace.sp_t0
                 && p.Otrace.sp_ordinal >= sp.Otrace.sp_ordinal ->
            Alcotest.failf "tid %d: ordinals not monotone (%d then %d)" tid
              p.Otrace.sp_ordinal sp.Otrace.sp_ordinal
          | _ -> ());
          last := Some sp;
          let rec pop () =
            match !stack with
            | top :: rest when top.Otrace.sp_t1 <= sp.Otrace.sp_t0 ->
              stack := rest;
              pop ()
            | _ -> ()
          in
          pop ();
          (match !stack with
          | top :: _ when sp.Otrace.sp_t1 > top.Otrace.sp_t1 ->
            Alcotest.failf
              "tid %d: span %s [%g,%g] partially overlaps %s [%g,%g]" tid
              sp.Otrace.sp_name sp.Otrace.sp_t0 sp.Otrace.sp_t1
              top.Otrace.sp_name top.Otrace.sp_t0 top.Otrace.sp_t1
          | _ -> ());
          stack := sp :: !stack)
        sps)
    by_tid

let test_trace_disabled_is_free () =
  let t = Otrace.disabled in
  Alcotest.(check bool) "disabled" false (Otrace.enabled t);
  let sp = Otrace.begin_span t ~phase:"x" "noop" in
  Otrace.end_span t sp;
  Otrace.drain t;
  Alcotest.(check bool) "no spans collected" true (Otrace.spans t = [])

let suite =
  [
    Tutil.quick "clock: monotonic non-decreasing" test_clock_monotonic;
    Tutil.quick "clock: fake install/restore" test_clock_fake;
    Tutil.quick "metrics: parallel counter hammering"
      test_metrics_parallel_counters;
    Tutil.quick "metrics: parallel histogram" test_metrics_parallel_histogram;
    Tutil.quick "metrics: adoption and kind safety"
      test_metrics_adopt_and_kinds;
    Tutil.quick "metrics: merge and diff" test_metrics_merge_diff;
    Tutil.quick "trace: chrome JSON well-formed, covers wall"
      test_trace_chrome_json;
    Tutil.quick "trace: per-domain spans nest, ordinals monotone"
      test_trace_span_discipline;
    Tutil.quick "trace: disabled trace records nothing"
      test_trace_disabled_is_free;
  ]
