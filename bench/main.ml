(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) plus the ablations called out in DESIGN.md.

   This container exposes a single hardware core, so thread sweeps are
   produced by the recorded-DAG schedule simulator (DESIGN.md substitution
   3): each phase's wall-clock is measured for real at one thread, and the
   time at T threads is wall1 * makespan(T) / makespan(1) from the replay
   of that phase's task trace.

   Subcommands: table1 table2 figure2 figure3 table3 correctness ablations
   micro contention finalize robustness recovery trace pipeline serve all
   (default: all); plus microsmoke, a seconds-long self-checking slice of
   the contention, finalize, robustness, recovery, trace, pipeline and
   serve reports wired into `dune runtest`. *)

module Profile = Pbca_codegen.Profile
module Emit = Pbca_codegen.Emit
module Image = Pbca_binfmt.Image
module Trace = Pbca_simsched.Trace
module Replay = Pbca_simsched.Replay
module TP = Pbca_concurrent.Task_pool
module H = Pbca_hpcstruct.Hpcstruct
module B = Pbca_binfeat.Binfeat

let threads_sweep = [ 1; 2; 4; 8; 16; 32; 64 ]

(* the retired mutex-sharded map, kept as the comparison baseline for the
   lock-free Addr_map (same key hash as Addr_map uses) *)
module MutexMap = Pbca_concurrent.Conc_hash.Make (struct
  type t = int

  let equal = Int.equal
  let hash a = (a * 0x9E3779B1) lxor (a lsr 16)
end)

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
         /. float_of_int (List.length xs))

(* simulated wall at T threads, given the measured 1-thread wall *)
let sim_wall trace wall1 threads =
  let tasks = Trace.tasks trace in
  if tasks = [] then wall1
  else
    let m1 = (Replay.simulate ~threads:1 tasks).makespan in
    let mt = (Replay.simulate ~threads tasks).makespan in
    if m1 = 0 then wall1 else wall1 *. float_of_int mt /. float_of_int m1

let sim_speedup trace threads =
  let tasks = Trace.tasks trace in
  if tasks = [] then 1.0
  else
    let m1 = (Replay.simulate ~threads:1 tasks).makespan in
    let mt = (Replay.simulate ~threads tasks).makespan in
    if mt = 0 then 1.0 else float_of_int m1 /. float_of_int mt

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* scaled-down evaluation subjects; override with PBCA_SCALE *)
let scale =
  match Sys.getenv_opt "PBCA_SCALE" with
  | Some s -> float_of_string s
  | None -> 0.25

let subjects () = List.map (Profile.scale scale) Profile.hpcstruct_subjects

(* ---------------------------------------------------------------- *)
(* Table 1: relevant statistics of the binaries.                     *)

let table1 () =
  header "Table 1: sizes of the generated evaluation subjects (KiB)";
  Printf.printf "%-12s %10s %10s %10s %8s %8s\n" "Binary" "Total" ".text"
    ".debug" "funcs" "symbols";
  List.iter
    (fun p ->
      let r = Emit.generate p in
      let sec name =
        match Image.section r.image name with
        | Some s -> float_of_int (Pbca_binfmt.Section.size s) /. 1024.0
        | None -> 0.0
      in
      Printf.printf "%-12s %10.1f %10.1f %10.1f %8d %8d\n" p.Profile.name
        (float_of_int (Image.total_size r.image) /. 1024.0)
        (sec ".text") (sec ".debug")
        (List.length r.ground_truth.gt_funcs)
        (Pbca_binfmt.Symtab.length r.image.Image.symtab))
    (subjects ())

(* ---------------------------------------------------------------- *)
(* Table 2 + Figures 2 and 3: hpcstruct.                             *)

type subject_run = {
  sr_name : string;
  sr_result : H.result;
}

let run_subjects () =
  List.map
    (fun p ->
      let r = Emit.generate p in
      let bytes = Image.write r.image in
      let pool = TP.create ~threads:1 in
      { sr_name = p.Profile.name; sr_result = H.run ~pool bytes })
    (subjects ())

let phase_trace result name =
  List.find_map
    (fun (p : H.phase) -> if p.ph_name = name then p.ph_trace else None)
    result.H.phases

let phase_wall1 result name =
  List.fold_left
    (fun acc (p : H.phase) -> if p.ph_name = name then acc +. p.ph_wall else acc)
    0.0 result.H.phases

(* end-to-end hpcstruct time at T threads: parallel phases scale by their
   trace, serial phases stay fixed (Amdahl, paper Section 8.2) *)
let hpcstruct_wall result threads =
  List.fold_left
    (fun acc (p : H.phase) ->
      acc
      +.
      match p.ph_trace with
      | Some tr -> sim_wall tr p.ph_wall threads
      | None -> p.ph_wall)
    0.0 result.H.phases

let table2 runs =
  header
    "Table 2: hpcstruct performance (measured at 1 thread; simulated sweeps)";
  Printf.printf "%-12s %7s %10s %10s %12s\n" "Binary" "Cores" "DWARF(s)"
    "CFG(s)" "hpcstruct(s)";
  List.iter
    (fun { sr_name; sr_result = r } ->
      List.iter
        (fun t ->
          let dwarf =
            match phase_trace r "dwarf" with
            | Some tr -> sim_wall tr (phase_wall1 r "dwarf") t
            | None -> phase_wall1 r "dwarf"
          in
          let cfg =
            match phase_trace r "cfg" with
            | Some tr -> sim_wall tr (phase_wall1 r "cfg") t
            | None -> phase_wall1 r "cfg"
          in
          Printf.printf "%-12s %7d %10.4f %10.4f %12.4f\n"
            (if t = 1 then sr_name else "")
            t dwarf cfg (hpcstruct_wall r t))
        [ 1; 16; 32; 64 ];
      let sp name =
        match phase_trace r name with
        | Some tr -> sim_speedup tr 64
        | None -> 1.0
      in
      Printf.printf "%-12s %7s %9.2fx %9.2fx %11.2fx\n" "" "spd@64" (sp "dwarf")
        (sp "cfg")
        (hpcstruct_wall r 1 /. hpcstruct_wall r 64))
    runs

let figure2 runs =
  header "Figure 2: phase trace of hpcstruct on 'tensorflow' at 64 threads";
  match List.find_opt (fun s -> s.sr_name = "tensorflow") runs with
  | None -> print_endline "tensorflow subject missing"
  | Some { sr_result = r; _ } ->
    let sim_phases =
      List.map
        (fun (p : H.phase) ->
          let w =
            match p.ph_trace with
            | Some tr -> sim_wall tr p.ph_wall 64
            | None -> p.ph_wall
          in
          (p.ph_name, w, p.ph_trace <> None))
        r.H.phases
    in
    let total = List.fold_left (fun a (_, w, _) -> a +. w) 0.0 sim_phases in
    List.iteri
      (fun i (name, w, par) ->
        let width = int_of_float (60.0 *. w /. total) in
        Printf.printf "(%d) %-9s %8.4fs %-8s |%s\n" (i + 1) name w
          (if par then "parallel" else "serial")
          (String.make (max 1 width) '#'))
      sim_phases;
    Printf.printf "total (simulated, 64 threads): %.4fs; measured 1-thread: %.4fs\n"
      total (H.total_wall r)

let figure3 runs =
  header
    "Figure 3: average speedup (geometric mean over the four binaries)";
  Printf.printf "%8s %12s %12s %12s\n" "Threads" "hpcstruct" "DWARF" "CFG";
  List.iter
    (fun t ->
      let of_phase name =
        geomean
          (List.filter_map
             (fun { sr_result = r; _ } ->
               Option.map (fun tr -> sim_speedup tr t) (phase_trace r name))
             runs)
      in
      let e2e =
        geomean
          (List.map
             (fun { sr_result = r; _ } ->
               hpcstruct_wall r 1 /. hpcstruct_wall r t)
             runs)
      in
      Printf.printf "%8d %12.2f %12.2f %12.2f\n" t e2e (of_phase "dwarf")
        (of_phase "cfg"))
    threads_sweep

(* ---------------------------------------------------------------- *)
(* Table 3: BinFeat.                                                 *)

let table3 () =
  header "Table 3: BinFeat performance over the forensics corpus";
  let n_binaries =
    match Sys.getenv_opt "PBCA_CORPUS" with
    | Some s -> int_of_string s
    | None -> max 16 (int_of_float (504.0 *. scale))
  in
  Printf.printf "corpus: %d binaries (paper: 504; scale with PBCA_CORPUS)\n"
    n_binaries;
  let images =
    List.init n_binaries (fun i ->
        (Emit.generate (Profile.forensics_member i)).image)
  in
  let pool = TP.create ~threads:1 in
  let r = B.extract ~pool images in
  Printf.printf "%d functions, %d distinct features\n\n" r.n_funcs r.n_features;
  Printf.printf "%7s %10s %10s %10s %10s %12s\n" "Cores" "CFG(s)" "IF(s)"
    "CF(s)" "DF(s)" "BinFeat(s)";
  let stage name = List.find (fun (s : B.stage) -> s.st_name = name) r.stages in
  List.iter
    (fun t ->
      let w name =
        let s = stage name in
        sim_wall s.st_trace s.st_wall t
      in
      let total = w "cfg" +. w "if" +. w "cf" +. w "df" in
      Printf.printf "%7d %10.4f %10.4f %10.4f %10.4f %12.4f\n" t (w "cfg")
        (w "if") (w "cf") (w "df") total)
    threads_sweep;
  let sp name = sim_speedup (stage name).st_trace 64 in
  Printf.printf "%7s %9.2fx %9.2fx %9.2fx %9.2fx %11.2fx\n" "spd@64" (sp "cfg")
    (sp "if") (sp "cf") (sp "df")
    (let t1 = B.total_wall r in
     let t64 =
       List.fold_left
         (fun acc (s : B.stage) -> acc +. sim_wall s.st_trace s.st_wall 64)
         0.0 r.stages
     in
     t1 /. t64)

(* ---------------------------------------------------------------- *)
(* Section 8.1: correctness.                                         *)

let correctness () =
  header "Section 8.1: correctness against ground truth (113 binaries)";
  let n =
    match Sys.getenv_opt "PBCA_CORRECTNESS" with
    | Some s -> int_of_string s
    | None -> 113
  in
  let pool = TP.create ~threads:2 in
  let classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let exact = ref 0 and expected = ref 0 and unexplained = ref 0 in
  let jt_exact = ref 0 and jt_total = ref 0 in
  let nr_exact = ref 0 and nr_total = ref 0 in
  for i = 0 to n - 1 do
    let r = Emit.generate (Profile.coreutils_like i) in
    let g = Pbca_core.Parallel.parse_and_finalize ~pool r.image in
    let rep = Pbca_checker.Checker.check r.ground_truth g in
    exact := !exact + rep.func_match;
    expected := !expected + List.length rep.func_expected;
    unexplained := !unexplained + List.length rep.func_mismatch;
    jt_exact := !jt_exact + rep.jt_ok;
    jt_total := !jt_total + rep.jt_total;
    nr_exact := !nr_exact + rep.nr_ok;
    nr_total := !nr_total + rep.nr_total;
    List.iter
      (fun (_, cls) ->
        Hashtbl.replace classes cls
          (1 + Option.value (Hashtbl.find_opt classes cls) ~default:0))
      rep.func_expected
  done;
  Printf.printf "functions:      %d exact, %d expected-difference, %d UNEXPLAINED\n"
    !exact !expected !unexplained;
  Printf.printf "jump tables:    %d/%d exact (rest are expected-unresolved)\n"
    !jt_exact !jt_total;
  Printf.printf "noreturn calls: %d/%d exact (rest are expected error() misses)\n"
    !nr_exact !nr_total;
  Printf.printf "\ndifference classes (paper Section 8.1's taxonomy):\n";
  Hashtbl.iter
    (fun cls c -> Printf.printf "  %-40s %5d functions\n" cls c)
    classes;
  if !unexplained > 0 then Printf.printf "\n*** UNEXPLAINED DIFFERENCES ***\n"

(* ---------------------------------------------------------------- *)
(* Ablations.                                                        *)

(* Hand-assembled binary for ablation (c): a jump table whose base register
   is computed along two joining paths — a plain pc-relative lea on one, a
   push/pop spill on the other. The union strategy recovers the table from
   the analyzable path; without it the whole table is lost (Section 5.3). *)
let mixed_path_jt_image () =
  let open Pbca_isa in
  let text_base = 0x1000 in
  let default_ = 0x1044 in
  let idiom = 0x103e in
  let t1 = 0x1045 and t2 = 0x1050 and t3 = 0x105b in
  let table = 0x2000 in
  let buf = Buffer.create 256 in
  let at () = text_base + Buffer.length buf in
  let emit i = Codec.encode buf i in
  let jcc c target = emit (Insn.Jcc (c, target - (at () + 6))) in
  let jmp target = emit (Insn.Jmp (target - (at () + 5))) in
  let lea r target = emit (Insn.Lea (r, target - (at () + 6))) in
  let r2 = Reg.of_int 2 and r3 = Reg.of_int 3 and r4 = Reg.of_int 4 in
  (* main: branch to the spill path or fall into the clean one *)
  emit (Insn.Cmp_ri (Reg.r1, 0));
  jcc Insn.Eq 0x1023;
  (* clean path *)
  emit (Insn.Cmp_ri (r2, 3));
  jcc Insn.Ge default_;
  lea r3 table;
  jmp idiom;
  (* spill path *)
  assert (at () = 0x1023);
  emit (Insn.Cmp_ri (r2, 3));
  jcc Insn.Ge default_;
  lea r3 table;
  emit (Insn.Push r3);
  emit (Insn.Pop r3);
  jmp idiom;
  (* the indirect jump *)
  assert (at () = idiom);
  emit (Insn.Load_idx (r4, r3, r2, 4));
  emit (Insn.Jmp_ind r4);
  assert (at () = default_);
  emit Insn.Ret;
  (* three switch cases *)
  List.iter
    (fun (t, v) ->
      assert (at () = t);
      emit (Insn.Mov_ri (Reg.r0, v));
      jmp default_)
    [ (t1, 1); (t2, 2); (t3, 3) ];
  let rodata = Bytes.create 12 in
  List.iteri
    (fun i t ->
      Bytes.set rodata (4 * i) (Char.chr (t land 0xff));
      Bytes.set rodata ((4 * i) + 1) (Char.chr ((t lsr 8) land 0xff));
      Bytes.set rodata ((4 * i) + 2) '\x00';
      Bytes.set rodata ((4 * i) + 3) '\x00')
    [ t1; t2; t3 ];
  let tab = Pbca_binfmt.Symtab.create () in
  ignore (Pbca_binfmt.Symtab.insert tab (Pbca_binfmt.Symbol.make "main" text_base));
  Image.make ~name:"mixed_jt" ~entry:text_base
    ~sections:
      [
        Pbca_binfmt.Section.make ~name:".text" ~addr:text_base
          (Buffer.to_bytes buf);
        Pbca_binfmt.Section.make ~name:".rodata" ~addr:table rodata;
      ]
    tab

(* a worst case for non-returning dependencies: a deep chain where each
   function's return instruction sits behind the fall-through of its call
   to the next one (paper Section 4.3's serialization hazard) *)
let chain_spec depth =
  let open Pbca_codegen.Spec in
  let f i =
    let last = i = depth - 1 in
    {
      fs_name = Printf.sprintf "c%04d" i;
      fs_blocks =
        (if last then [| { bs_body = []; bs_term = T_ret } |]
         else
           (* the return sits behind the call's fall-through; a jump table
              follows it, so deferred status propagation also re-triggers
              table analysis every round (the Section 4.3 interaction) *)
           [|
             { bs_body = []; bs_term = T_call (i + 1) };
             {
               bs_body = [ Pbca_isa.Insn.Nop ];
               bs_term = T_jumptable { targets = [ 3; 4 ]; spilled = false };
             };
             { bs_body = []; bs_term = T_ret };
             { bs_body = []; bs_term = T_jmp 2 };
             { bs_body = []; bs_term = T_jmp 2 };
           |]);
      fs_frame = false;
      fs_cold = None;
      fs_secondary = None;
      fs_cu = 0;
      fs_error_style = false;
      fs_noreturn_leaf = false;
    }
  in
  {
    sp_profile = { Profile.default with Profile.name = "chain"; n_cus = 1 };
    sp_funcs = Array.init depth f;
    sp_stubs = [||];
    sp_fptable = [| 0 |];
    sp_data = Array.make depth None;
  }

let ablations () =
  header "Ablations: the design choices of DESIGN.md";
  let p = { (Profile.coreutils_like 7) with Profile.n_funcs = 400; seed = 808 } in
  let r = Emit.generate p in
  (* (a) eager non-returning notification, on a 300-deep call chain. The
     image is stripped so every function is discovered through its caller:
     call sites genuinely park waiters on UNSET callees. *)
  let chain = Emit.emit (chain_spec 300) in
  let chain_image =
    Image.strip
      ~keep:(fun s -> s.Pbca_binfmt.Symbol.offset = chain.Emit.image.Image.entry)
      chain.Emit.image
  in
  let run_chain config =
    let trace = Trace.create () in
    let pool = TP.create ~threads:1 in
    let g = Pbca_core.Parallel.parse ~config ~trace ~pool chain_image in
    (trace, Atomic.get g.Pbca_core.Cfg.stats.jt_analyses)
  in
  let tr_eager, jt_eager = run_chain Pbca_core.Config.default in
  let tr_lazy, jt_lazy =
    run_chain { Pbca_core.Config.default with eager_noreturn = false }
  in
  let ms tr t = (Replay.simulate ~threads:t (Trace.tasks tr)).makespan in
  Printf.printf
    "(a) eager noreturn notification (Section 5.3), 300-deep call chain with\n\
    \    one jump table per function:\n\
    \    eager:    makespan@64 = %7d units, %6d jump-table analyses\n\
    \    deferred: makespan@64 = %7d units, %6d jump-table analyses\n\
    \    (deferred drains wait for round barriers, and every round repeats\n\
    \    the jump-table fixed point - the Section 4.3 interaction)\n"
    (ms tr_eager 64) jt_eager (ms tr_lazy 64) jt_lazy;
  (* (b) early parse stop at known block starts (the decode_cache flag now
     consults the shared lock-free blocks map, so every thread's parses
     stop every other thread's rescans) *)
  let decoded config =
    let pool = TP.create ~threads:4 in
    let g = Pbca_core.Parallel.parse ~config ~pool r.image in
    Atomic.get g.Pbca_core.Cfg.stats.insns_decoded
  in
  let with_cache = decoded Pbca_core.Config.default in
  let without = decoded { Pbca_core.Config.default with decode_cache = false } in
  Printf.printf
    "(b) early scan stop at known block starts (Section 6.3): %d insns \
     decoded with, %d without (%.1f%% saved)\n"
    with_cache without
    (100.0 *. float_of_int (without - with_cache) /. float_of_int (max 1 without));
  (* (c) jump-table union strategy: hand-assembled table whose base is
     computed along two paths, one of which spills through the stack *)
  let union_image = mixed_path_jt_image () in
  let jt_targets config =
    let pool = TP.create ~threads:1 in
    let g = Pbca_core.Parallel.parse_and_finalize ~config ~pool union_image in
    List.fold_left
      (fun acc (t : Pbca_core.Cfg.jt_record) -> acc + t.jt_count)
      0
      (Pbca_concurrent.Conc_bag.to_list g.Pbca_core.Cfg.tables)
  in
  Printf.printf
    "(c) jump-table union strategy (Section 5.3), two-path table with one \
     unanalyzable path:\n\
    \    union on:  %d targets recovered; union off: %d (whole table lost)\n"
    (jt_targets Pbca_core.Config.default)
    (jt_targets { Pbca_core.Config.default with jt_union = false });
  (* (d) concurrency-structure overhead at one thread *)
  let t0 = Pbca_obs.Clock.now () in
  let _ = Pbca_core.Serial.parse r.image in
  let t_serial = Pbca_obs.Clock.now () -. t0 in
  let pool = TP.create ~threads:1 in
  let t0 = Pbca_obs.Clock.now () in
  let _ = Pbca_core.Parallel.parse ~pool r.image in
  let t_par1 = Pbca_obs.Clock.now () -. t0 in
  Printf.printf
    "(d) synchronization overhead at 1 thread: serial %.4fs vs parallel@1 \
     %.4fs (%.1f%%)\n"
    t_serial t_par1
    (100.0 *. (t_par1 -. t_serial) /. t_serial);
  (* (e) recursive traversal vs linear sweep (Schwarz et al., Section 2) *)
  let g = Pbca_core.Serial.parse_and_finalize r.image in
  let sw = Pbca_core.Linear_sweep.sweep r.image in
  let both, sweep_only, trav_only =
    Pbca_core.Linear_sweep.compare_with_traversal sw g
  in
  Printf.printf
    "(e) control-flow traversal vs linear sweep: %d code bytes agreed, %d \
     extra bytes decoded by the sweep (padding/dead code as code), %d found \
     only by traversal; and the sweep cannot attribute blocks to functions\n"
    both sweep_only trav_only

(* ---------------------------------------------------------------- *)
(* Bechamel micro-benchmarks: one per table/figure plus substrates.  *)

let micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let small = Emit.generate { Profile.default with Profile.n_funcs = 30 } in
  let text =
    (Pbca_binfmt.Image.text small.Emit.image).Pbca_binfmt.Section.data
  in
  let forensics3 =
    List.init 3 (fun i -> (Emit.generate (Profile.forensics_member i)).image)
  in
  let sub1 = Profile.scale 0.02 Profile.llnl1 in
  let sub1_bytes = Image.write (Emit.generate sub1).Emit.image in
  let g_small = Pbca_core.Serial.parse_and_finalize small.Emit.image in
  let some_func =
    List.find
      (fun (f : Pbca_core.Cfg.func) -> List.length f.Pbca_core.Cfg.f_blocks > 2)
      (Pbca_core.Cfg.funcs_list g_small)
  in
  let tests =
    [
      Test.make ~name:"isa_decode_text" (Staged.stage (fun () ->
          let rec go pos acc =
            if pos >= Bytes.length text then acc
            else
              match Pbca_isa.Codec.decode text ~pos with
              | Some (_, len) -> go (pos + len) (acc + 1)
              | None -> go (pos + 1) acc
          in
          ignore (go 0 0)));
      Test.make ~name:"table1_generate_subject" (Staged.stage (fun () ->
          ignore (Emit.generate { sub1 with Profile.seed = 3 })));
      Test.make ~name:"table2_cfg_parse" (Staged.stage (fun () ->
          ignore (Pbca_core.Serial.parse_and_finalize small.Emit.image)));
      Test.make ~name:"table2_hpcstruct_pipeline" (Staged.stage (fun () ->
          let pool = TP.create ~threads:1 in
          ignore (H.run ~pool sub1_bytes)));
      Test.make ~name:"table3_binfeat_pipeline" (Staged.stage (fun () ->
          let pool = TP.create ~threads:1 in
          ignore (B.extract ~pool forensics3)));
      Test.make ~name:"figure3_replay_sim" (Staged.stage (fun () ->
          let trace = Trace.create () in
          let pool = TP.create ~threads:1 in
          ignore (Pbca_core.Parallel.parse ~trace ~pool small.Emit.image);
          ignore (Replay.simulate ~threads:64 (Trace.tasks trace))));
      Test.make ~name:"analysis_liveness" (Staged.stage (fun () ->
          let fv = Pbca_analysis.Func_view.make g_small some_func in
          ignore (Pbca_analysis.Liveness.compute g_small fv)));
      Test.make ~name:"conc_hash_insert1k" (Staged.stage (fun () ->
          let m = MutexMap.create ~shards:64 () in
          for i = 0 to 999 do
            ignore (MutexMap.insert_if_absent m (i * 16) ())
          done));
      Test.make ~name:"lockfree_map_insert1k" (Staged.stage (fun () ->
          let m = Pbca_core.Addr_map.create ~shards:64 () in
          for i = 0 to 999 do
            ignore (Pbca_core.Addr_map.insert_if_absent m (i * 16) ())
          done));
      (* the tentpole comparison: read-heavy traffic, mutex-sharded vs
         lock-free — the workload shape of the parser's address maps *)
      (let m = MutexMap.create ~shards:64 () in
       for i = 0 to 4095 do
         ignore (MutexMap.insert_if_absent m (i * 16) ())
       done;
       Test.make ~name:"map_read4k_mutex_sharded" (Staged.stage (fun () ->
           for i = 0 to 4095 do
             ignore (MutexMap.find m (i * 16))
           done)));
      (let m = Pbca_core.Addr_map.create ~shards:64 () in
       for i = 0 to 4095 do
         ignore (Pbca_core.Addr_map.insert_if_absent m (i * 16) ())
       done;
       Test.make ~name:"map_read4k_lockfree" (Staged.stage (fun () ->
           for i = 0 to 4095 do
             ignore (Pbca_core.Addr_map.find m (i * 16))
           done)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name (b : Benchmark.t) ->
          (* simple mean of time per run *)
          let raw = b.Benchmark.lr in
          let n = Array.length raw in
          let total = ref 0.0 and runs = ref 0.0 in
          Array.iter
            (fun m ->
              total :=
                !total +. Measurement_raw.get ~label:(Measure.label instance) m;
              runs := !runs +. Measurement_raw.run m)
            raw;
          if !runs > 0.0 then
            Printf.printf "%-28s %12.1f ns/run (%d samples)\n" name
              (!total /. !runs) n)
        results)
    tests

(* ---------------------------------------------------------------- *)
(* JSON for the reports. The emitter and well-formedness checker used to
   live here; they moved to Pbca_obs.Json so the Chrome trace exporter
   and these reports share one implementation.                        *)

open Pbca_obs.Json

(* ---------------------------------------------------------------- *)
(* `bench contention`: proves the tentpole. (1) read-heavy micro of the
   mutex-sharded map vs the lock-free map at one thread; (2) a parallel
   parse of a generated subject reporting the new contention, decode-cache
   and scheduler counters. Writes BENCH_pr1.json unless ~smoke.        *)

let time_reads ~rounds ~keys find populate =
  populate ();
  (* one warm pass so both maps are faulted in *)
  for i = 0 to keys - 1 do
    ignore (find (i * 16))
  done;
  let t0 = Pbca_obs.Clock.now () in
  for _ = 1 to rounds do
    for i = 0 to keys - 1 do
      ignore (find (i * 16))
    done
  done;
  let dt = Pbca_obs.Clock.now () -. t0 in
  dt *. 1e9 /. float_of_int (rounds * keys)

let contention_report ~smoke () =
  let keys = if smoke then 512 else 4096 in
  let rounds = if smoke then 50 else 1000 in
  let mutex_ns =
    let m = MutexMap.create ~shards:64 () in
    time_reads ~rounds ~keys
      (fun k -> MutexMap.find m k)
      (fun () ->
        for i = 0 to keys - 1 do
          ignore (MutexMap.insert_if_absent m (i * 16) i)
        done)
  in
  let lockfree_ns =
    let m = Pbca_core.Addr_map.create ~shards:64 () in
    time_reads ~rounds ~keys
      (fun k -> Pbca_core.Addr_map.find m k)
      (fun () ->
        for i = 0 to keys - 1 do
          ignore (Pbca_core.Addr_map.insert_if_absent m (i * 16) i)
        done)
  in
  let p =
    if smoke then { Profile.default with Profile.n_funcs = 25; seed = 11 }
    else { (Profile.coreutils_like 3) with Profile.seed = 2026 }
  in
  let r = Emit.generate p in
  let threads = if smoke then 2 else 4 in
  (* counters are per-pool now: a fresh pool starts at zero, no global
     reset (and no race with any other pool) *)
  let pool = TP.create ~threads in
  let t0 = Pbca_obs.Clock.now () in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool r.Emit.image in
  let wall = Pbca_obs.Clock.now () -. t0 in
  let c = g.Pbca_core.Cfg.stats.contention in
  let dc = r.Emit.image.Image.dcache in
  let ps = TP.stats pool in
  let get a = Atomic.get a in
  let open Pbca_concurrent.Contention in
  J_obj
    [
      ("bench", J_str "pr1_lockfree_hot_paths");
      ("smoke", J_bool smoke);
      ( "micro_map_read",
        J_obj
          [
            ("keys", J_int keys);
            ("rounds", J_int rounds);
            ("mutex_sharded_ns_per_read", J_float mutex_ns);
            ("lockfree_ns_per_read", J_float lockfree_ns);
            ("lockfree_speedup", J_float (mutex_ns /. lockfree_ns));
          ] );
      ( "parse_contention",
        J_obj
          [
            ("subject", J_str p.Profile.name);
            ("seed", J_int p.Profile.seed);
            ("threads", J_int threads);
            ( "counter_sources",
              J_arr
                (List.map
                   (fun s -> J_str s)
                   [
                     "blocks"; "ends"; "funcs"; "static_entries"; "ft_guard";
                     "jt_pending"; "jt_last"; "f_visited";
                   ]) );
            ("wall_s", J_float wall);
            ("blocks", J_int (Pbca_core.Addr_map.length g.Pbca_core.Cfg.blocks));
            ("funcs", J_int (Pbca_core.Addr_map.length g.Pbca_core.Cfg.funcs));
            ("probes", J_int (get c.probes));
            ("cas_retries", J_int (get c.cas_retries));
            ("resizes", J_int (get c.resizes));
            ("frozen_waits", J_int (get c.frozen_waits));
            ("decode_hits", J_int (Pbca_binfmt.Decode_cache.hits dc));
            ("decode_misses", J_int (Pbca_binfmt.Decode_cache.misses dc));
            ("decode_hit_rate", J_float (Pbca_binfmt.Decode_cache.hit_rate dc));
            ("steals", J_int ps.TP.steals);
            ("steal_attempts", J_int ps.TP.steal_attempts);
            ("idle_sleeps", J_int ps.TP.idle_sleeps);
          ] );
    ]

let contention_checks j =
  (* the acceptance criteria, machine-checked on every run *)
  let num path = json_num j path in
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  check "lockfree read beats mutex-sharded at 1 thread"
    (num [ "micro_map_read"; "lockfree_speedup" ] > 1.0);
  check "decode cache hit rate > 0"
    (num [ "parse_contention"; "decode_hit_rate" ] > 0.0);
  check "parse produced blocks" (num [ "parse_contention"; "blocks" ] > 0.0);
  List.rev !failures

let contention () =
  header "Contention counters + lock-free vs mutex-sharded map (PR1)";
  let j = contention_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match contention_checks j with
  | [] -> print_endline "all contention checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr1.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr1.json"

(* ---------------------------------------------------------------- *)
(* `bench finalize`: PR2 — legacy whole-graph finalization vs the
   snapshot-indexed path, serial and at [threads]. Every variant re-parses
   the image at 1 thread (the expansion graph is deterministic), then only
   the finalization is timed; the resulting graphs are asserted
   Cfg_diff-equal (and Summary-equal) across all variants on every benched
   input. Writes BENCH_pr2.json unless ~smoke.                        *)

let fz_json (g : Pbca_core.Cfg.t) wall =
  let fz : Pbca_core.Cfg.finalize_stats =
    g.Pbca_core.Cfg.stats.Pbca_core.Cfg.finalize
  in
  J_obj
    [
      ("wall_s", J_float wall);
      ("jt_s", J_float fz.fz_jt_wall);
      ("reach_s", J_float fz.fz_reach_wall);
      ("bounds_s", J_float fz.fz_bounds_wall);
      ("rules_s", J_float fz.fz_rules_wall);
      ("prune_s", J_float fz.fz_prune_wall);
      ("recount_s", J_float fz.fz_recount_wall);
      ("snapshot_s", J_float fz.fz_snapshot_wall);
      ("rounds", J_int fz.fz_rounds);
      ("snapshots", J_int fz.fz_snapshots);
      ("dirty", J_arr (List.map (fun d -> J_int d) fz.fz_dirty));
    ]

let graphs_equal a b =
  let d = Pbca_core.Cfg_diff.diff a b in
  d.Pbca_core.Cfg_diff.added = []
  && d.Pbca_core.Cfg_diff.removed = []
  && d.Pbca_core.Cfg_diff.changed = []
  && Pbca_core.Summary.equal (Pbca_core.Summary.of_cfg a)
       (Pbca_core.Summary.of_cfg b)

let finalize_report ~smoke () =
  let reps = if smoke then 1 else 3 in
  let threads = if smoke then 2 else 4 in
  let subjects =
    if smoke then [ { Profile.default with Profile.n_funcs = 25; seed = 11 } ]
    else
      List.map2
        (fun i n ->
          { (Profile.coreutils_like i) with Profile.n_funcs = n; seed = 9000 + i })
        [ 1; 4; 9 ] [ 300; 700; 1200 ]
  in
  let per_subject p =
    let r = Emit.generate p in
    let run_variant (finalize : pool:TP.t -> Pbca_core.Cfg.t -> unit)
        pool_threads =
      let once () =
        let pool = TP.create ~threads:1 in
        let g = Pbca_core.Parallel.parse ~pool r.Emit.image in
        let fpool = TP.create ~threads:pool_threads in
        let t0 = Pbca_obs.Clock.now () in
        finalize ~pool:fpool g;
        (g, Pbca_obs.Clock.now () -. t0)
      in
      let g0, w0 = once () in
      let best_g = ref g0 and best_w = ref w0 in
      for _ = 2 to reps do
        let g, w = once () in
        if w < !best_w then begin
          best_g := g;
          best_w := w
        end
      done;
      (!best_g, !best_w)
    in
    let g_legacy, w_legacy = run_variant Pbca_core.Finalize.run_legacy 1 in
    let run_snap ~pool g = Pbca_core.Finalize.run ~pool g in
    let g_snap1, w_snap1 = run_variant run_snap 1 in
    let g_snapp, w_snapp = run_variant run_snap threads in
    let eq_ls = graphs_equal g_legacy g_snap1 in
    let eq_sp = graphs_equal g_snap1 g_snapp in
    let speedup = w_legacy /. w_snap1 in
    ( J_obj
        [
          ("subject", J_str p.Profile.name);
          ("seed", J_int p.Profile.seed);
          ("funcs", J_int (Pbca_core.Addr_map.length g_snap1.Pbca_core.Cfg.funcs));
          ( "blocks",
            J_int (Pbca_core.Addr_map.length g_snap1.Pbca_core.Cfg.blocks) );
          ("legacy", fz_json g_legacy w_legacy);
          ("snapshot_serial", fz_json g_snap1 w_snap1);
          ("snapshot_parallel_threads", J_int threads);
          ("snapshot_parallel", fz_json g_snapp w_snapp);
          ("speedup_snapshot_vs_legacy", J_float speedup);
          ("legacy_vs_snapshot_equal", J_bool eq_ls);
          ("serial_vs_parallel_equal", J_bool eq_sp);
        ],
      speedup )
  in
  let results = List.map per_subject subjects in
  J_obj
    [
      ("bench", J_str "pr2_snapshot_finalize");
      ("smoke", J_bool smoke);
      ("reps", J_int reps);
      ("subjects", J_arr (List.map fst results));
      ( "geomean_speedup_snapshot_vs_legacy",
        J_float (geomean (List.map snd results)) );
    ]

let finalize_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  (match json_field j [ "subjects" ] with
  | Some (J_arr subs) ->
    check "at least one subject benched" (subs <> []);
    List.iter
      (fun s ->
        let name =
          match json_field s [ "subject" ] with Some (J_str n) -> n | _ -> "?"
        in
        let flag path =
          match json_field s path with Some (J_bool b) -> b | _ -> false
        in
        check
          (name ^ ": legacy and snapshot graphs Cfg_diff-equal")
          (flag [ "legacy_vs_snapshot_equal" ]);
        check
          (name ^ ": serial and parallel snapshot graphs Cfg_diff-equal")
          (flag [ "serial_vs_parallel_equal" ]);
        check
          (name ^ ": finalize ran at least one round")
          (json_num s [ "snapshot_serial"; "rounds" ] >= 1.0))
      subs
  | _ -> check "subjects present" false);
  if not smoke then
    check "snapshot path beats legacy (geomean over the corpus)"
      (json_num j [ "geomean_speedup_snapshot_vs_legacy" ] > 1.0);
  List.rev !failures

let finalize_bench () =
  header "Finalization: legacy whole-graph vs snapshot-indexed (PR2)";
  let j = finalize_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match finalize_checks ~smoke:false j with
  | [] -> print_endline "all finalize checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr2.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr2.json"

(* ---------------------------------------------------------------- *)
(* `bench robustness`: PR3 — mutation-fuzz survival, degraded-vs-crash
   accounting, budget-exhaustion rates, and fault-injection recovery wall
   time. Writes BENCH_pr3.json unless ~smoke.                         *)

let robustness_report ~smoke () =
  let module Mutate = Pbca_codegen.Mutate in
  let module Rng = Pbca_codegen.Rng in
  let module Fault = Pbca_concurrent.Fault in
  let module Cfg = Pbca_core.Cfg in
  let seeds = if smoke then 60 else 400 in
  let threads = if smoke then 2 else 4 in
  let pool = TP.create ~threads in
  let config =
    { Pbca_core.Config.default with Pbca_core.Config.deadline_s = 2.0 }
  in
  let bases =
    List.map
      (fun p -> (Emit.generate p).Emit.image)
      [ Profile.coreutils_like 1; Profile.coreutils_like 2 ]
  in
  let clean = ref 0
  and degraded = ref 0
  and malformed = ref 0
  and crash = ref 0 in
  let b_block = ref 0
  and b_slice = ref 0
  and b_table = ref 0
  and b_deadline = ref 0 in
  let dl_checks = ref 0 and dl_polls = ref 0 in
  let parsed = ref 0 in
  let t0 = Pbca_obs.Clock.now () in
  for s = 1 to seeds do
    let rng = Rng.create s in
    let img = List.nth bases (s mod List.length bases) in
    let _kind, bytes = Mutate.mutate ~rng img in
    match Image.read_result bytes with
    | Error _ -> incr malformed
    | Ok m -> (
      match Pbca_core.Parallel.parse_and_finalize ~config ~pool m with
      | g ->
        incr parsed;
        let st = g.Cfg.stats in
        b_block := !b_block + Atomic.get st.Cfg.budget_block;
        b_slice := !b_slice + Atomic.get st.Cfg.budget_slice;
        b_table := !b_table + Atomic.get st.Cfg.budget_table;
        b_deadline := !b_deadline + Atomic.get st.Cfg.budget_deadline;
        dl_checks := !dl_checks + Atomic.get st.Cfg.deadline_checks;
        dl_polls := !dl_polls + Atomic.get st.Cfg.deadline_polls;
        if Cfg.degraded_count g > 0 || Cfg.task_failure_count g > 0 then
          incr degraded
        else incr clean
      | exception _ -> incr crash)
  done;
  let fuzz_wall = Pbca_obs.Clock.now () -. t0 in
  (* fault-injection recovery: wall time of a parse that absorbs injected
     task crashes, vs the clean parse of the same image *)
  let fi_image = List.hd bases in
  let time_parse () =
    let p1 = TP.create ~threads:1 in
    let t0 = Pbca_obs.Clock.now () in
    let g = Pbca_core.Parallel.parse_and_finalize ~pool:p1 fi_image in
    (g, Pbca_obs.Clock.now () -. t0)
  in
  let g_clean, w_clean = time_parse () in
  Fault.arm_at [ 5; 9; 13 ] Fault.Raise;
  let g_fault, w_fault =
    Fun.protect ~finally:Fault.disarm (fun () -> time_parse ())
  in
  let d = Pbca_core.Cfg_diff.diff g_clean g_fault in
  let total_funcs =
    Pbca_core.Addr_map.length g_clean.Pbca_core.Cfg.funcs
  in
  let rate n = float_of_int n /. float_of_int (max 1 !parsed) in
  J_obj
    [
      ("bench", J_str "pr3_hostile_binary_hardening");
      ("smoke", J_bool smoke);
      ( "mutation_fuzz",
        J_obj
          [
            ("mutants", J_int seeds);
            ("survived", J_int (seeds - !crash));
            ("clean", J_int !clean);
            ("degraded", J_int !degraded);
            ("malformed", J_int !malformed);
            ("crash", J_int !crash);
            ("wall_s", J_float fuzz_wall);
          ] );
      ( "budget_exhaustion_per_parsed_mutant",
        J_obj
          [
            ("parsed", J_int !parsed);
            ("block", J_float (rate !b_block));
            ("slice", J_float (rate !b_slice));
            ("table", J_float (rate !b_table));
            ("deadline", J_float (rate !b_deadline));
          ] );
      ( "deadline_clock",
        J_obj
          [
            ("checks", J_int !dl_checks);
            ("polls", J_int !dl_polls);
            ("syscalls_saved", J_int (!dl_checks - !dl_polls));
          ] );
      ( "fault_injection",
        J_obj
          [
            ("injected_faults", J_int 3);
            ("task_failures_recorded",
             J_int (Pbca_core.Cfg.task_failure_count g_fault));
            ("clean_wall_s", J_float w_clean);
            ("faulted_wall_s", J_float w_fault);
            ("recovery_overhead", J_float (w_fault /. w_clean));
            ("funcs_total", J_int total_funcs);
            ("funcs_unchanged", J_int d.Pbca_core.Cfg_diff.unchanged);
          ] );
    ]

let robustness_checks j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  let num path = json_num j path in
  check "json well-formed" (json_well_formed (json_to_string j));
  check "zero crashes across the mutant corpus"
    (num [ "mutation_fuzz"; "crash" ] = 0.0);
  check "every mutant survived"
    (num [ "mutation_fuzz"; "survived" ] = num [ "mutation_fuzz"; "mutants" ]);
  check "every mutant classified"
    (num [ "mutation_fuzz"; "clean" ]
     +. num [ "mutation_fuzz"; "degraded" ]
     +. num [ "mutation_fuzz"; "malformed" ]
     = num [ "mutation_fuzz"; "mutants" ]);
  check "faulted parse finished"
    (num [ "fault_injection"; "faulted_wall_s" ] > 0.0);
  check "deadline clock poll coarsening saves syscalls"
    (num [ "deadline_clock"; "polls" ] <= num [ "deadline_clock"; "checks" ]
    && (num [ "deadline_clock"; "checks" ] < 64.0
       || num [ "deadline_clock"; "syscalls_saved" ] > 0.0));
  (* cross-calls cascade a killed task's damage to its callers, so on a
     connected binary the bound is a fraction, not fault-count; the strict
     "untouched functions are Cfg_diff-equal" proof runs on independent
     functions in test_robustness *)
  check "majority of functions untouched by injected faults"
    (num [ "fault_injection"; "funcs_unchanged" ]
     >= 0.5 *. num [ "fault_injection"; "funcs_total" ]);
  List.rev !failures

let robustness_bench () =
  header "Hostile-binary hardening: fuzz survival + fault recovery (PR3)";
  let j = robustness_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match robustness_checks j with
  | [] -> print_endline "all robustness checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr3.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr3.json"

(* ---------------------------------------------------------------- *)
(* `bench robustness` part 2: PR9 — wild binaries. Stripped subjects are
   parsed through gap discovery and scored for entry precision/recall
   against ground truth (gate: >= 0.95 / >= 0.90); the overlap and
   obfuscation families must be fully explained by the checker; and the
   mutation fuzz re-runs with the gap parser enabled and the Strip_symtab
   axis in the draw. Writes BENCH_pr9.json unless ~smoke.             *)

let wild_report ~smoke () =
  let module Mutate = Pbca_codegen.Mutate in
  let module Rng = Pbca_codegen.Rng in
  let module Family = Pbca_codegen.Family in
  let module Cfg = Pbca_core.Cfg in
  let module Checker = Pbca_checker.Checker in
  let threads = if smoke then 2 else 4 in
  let pool = TP.create ~threads in
  let gap_config =
    { Pbca_core.Config.default with Pbca_core.Config.gap_parse = true }
  in
  (* stripped subjects: every entry except the image entry point must be
     earned back by the gap scanner *)
  let n_stripped = if smoke then 3 else 16 in
  let relevant = ref 0 and found = ref 0 and spurious = ref 0 in
  let heur_found = ref 0 and explained = ref 0 in
  let gaps = ref 0
  and proposed = ref 0
  and accepted = ref 0
  and rejected = ref 0 in
  let t0 = Pbca_obs.Clock.now () in
  for i = 0 to n_stripped - 1 do
    let r = Family.generate Family.Stripped i in
    let g =
      Pbca_core.Parallel.parse_and_finalize ~config:gap_config ~pool
        r.Emit.image
    in
    let d = Checker.score_discovery r.Emit.ground_truth g in
    relevant := !relevant + d.Checker.ds_relevant;
    found := !found + d.Checker.ds_found;
    spurious := !spurious + d.Checker.ds_spurious;
    heur_found := !heur_found + d.Checker.ds_found_heuristic;
    if Checker.clean (Checker.check r.Emit.ground_truth g) then incr explained;
    let st = g.Cfg.stats in
    gaps := !gaps + Atomic.get st.Cfg.gap_gaps_scanned;
    proposed := !proposed + Atomic.get st.Cfg.gap_entries_proposed;
    accepted := !accepted + Atomic.get st.Cfg.gap_entries_accepted;
    rejected := !rejected + Atomic.get st.Cfg.gap_entries_rejected
  done;
  let stripped_wall = Pbca_obs.Clock.now () -. t0 in
  let ratio a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  let precision = ratio !found (!found + !spurious) in
  let recall = ratio !found !relevant in
  (* the adversarial-but-symboled families must stay fully explained *)
  let n_fam = if smoke then 1 else 4 in
  let fam_explained fam =
    let ok = ref 0 in
    for i = 0 to n_fam - 1 do
      let r = Family.generate fam i in
      let g = Pbca_core.Parallel.parse_and_finalize ~pool r.Emit.image in
      if Checker.clean (Checker.check r.Emit.ground_truth g) then incr ok
    done;
    !ok
  in
  let overlap_ok = fam_explained Family.Overlap in
  let obf_ok = fam_explained Family.Obfuscated in
  (* mutation fuzz, gap parser on; Strip_symtab is one of the drawn axes *)
  let seeds = if smoke then 60 else 1000 in
  let config =
    { gap_config with Pbca_core.Config.deadline_s = 2.0 }
  in
  let bases =
    [
      (Emit.generate (Profile.coreutils_like 1)).Emit.image;
      (Emit.generate (Profile.coreutils_like 2)).Emit.image;
      (Family.generate Family.Stripped 0).Emit.image;
    ]
  in
  let clean = ref 0
  and degraded = ref 0
  and malformed = ref 0
  and crash = ref 0
  and strip_drawn = ref 0 in
  let t0 = Pbca_obs.Clock.now () in
  for s = 1 to seeds do
    let rng = Rng.create (0x9000 + s) in
    let img = List.nth bases (s mod List.length bases) in
    let kind, bytes = Mutate.mutate ~rng img in
    if kind = Mutate.Strip_symtab then incr strip_drawn;
    match Image.read_result bytes with
    | Error _ -> incr malformed
    | Ok m -> (
      match Pbca_core.Parallel.parse_and_finalize ~config ~pool m with
      | g ->
        let _, _, heur = Cfg.conf_counts g in
        if Cfg.degraded_count g > 0 || Cfg.task_failure_count g > 0 || heur > 0
        then incr degraded
        else incr clean
      | exception _ -> incr crash)
  done;
  let fuzz_wall = Pbca_obs.Clock.now () -. t0 in
  J_obj
    [
      ("bench", J_str "pr9_wild_binaries");
      ("smoke", J_bool smoke);
      ( "entry_discovery",
        J_obj
          [
            ("stripped_subjects", J_int n_stripped);
            ("fully_explained", J_int !explained);
            ("relevant", J_int !relevant);
            ("found", J_int !found);
            ("found_heuristic", J_int !heur_found);
            ("spurious", J_int !spurious);
            ("precision", J_float precision);
            ("recall", J_float recall);
            ("gate_precision", J_float 0.95);
            ("gate_recall", J_float 0.90);
            ("wall_s", J_float stripped_wall);
          ] );
      ( "gap_scan",
        J_obj
          [
            ("gaps_scanned", J_int !gaps);
            ("entries_proposed", J_int !proposed);
            ("entries_accepted", J_int !accepted);
            ("entries_rejected", J_int !rejected);
          ] );
      ( "families",
        J_obj
          [
            ("members_each", J_int n_fam);
            ("overlap_explained", J_int overlap_ok);
            ("obfuscated_explained", J_int obf_ok);
          ] );
      ( "mutation_fuzz",
        J_obj
          [
            ("mutants", J_int seeds);
            ("survived", J_int (seeds - !crash));
            ("clean", J_int !clean);
            ("degraded", J_int !degraded);
            ("malformed", J_int !malformed);
            ("crash", J_int !crash);
            ("strip_symtab_drawn", J_int !strip_drawn);
            ("wall_s", J_float fuzz_wall);
          ] );
    ]

let wild_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  let num path = json_num j path in
  check "json well-formed" (json_well_formed (json_to_string j));
  check "entry-discovery precision meets the 0.95 gate"
    (num [ "entry_discovery"; "precision" ] >= 0.95);
  check "entry-discovery recall meets the 0.90 gate"
    (num [ "entry_discovery"; "recall" ] >= 0.90);
  check "every stripped subject fully explained"
    (num [ "entry_discovery"; "fully_explained" ]
    = num [ "entry_discovery"; "stripped_subjects" ]);
  check "heuristic entries actually discovered"
    (num [ "entry_discovery"; "found_heuristic" ] > 0.0);
  check "gap scanner proposed entries"
    (num [ "gap_scan"; "entries_accepted" ] > 0.0);
  check "overlap family fully explained"
    (num [ "families"; "overlap_explained" ] = num [ "families"; "members_each" ]);
  check "obfuscated family fully explained"
    (num [ "families"; "obfuscated_explained" ]
    = num [ "families"; "members_each" ]);
  check "zero crashes across the mutant corpus"
    (num [ "mutation_fuzz"; "crash" ] = 0.0);
  check "every mutant classified"
    (num [ "mutation_fuzz"; "clean" ]
     +. num [ "mutation_fuzz"; "degraded" ]
     +. num [ "mutation_fuzz"; "malformed" ]
     = num [ "mutation_fuzz"; "mutants" ]);
  check "strip_symtab axis exercised"
    (num [ "mutation_fuzz"; "strip_symtab_drawn" ] > 0.0);
  if not smoke then
    check "mutant corpus large enough for the gate (>= 1000)"
      (num [ "mutation_fuzz"; "mutants" ] >= 1000.0);
  List.rev !failures

let wild_bench () =
  header "Wild binaries: stripped/overlap/obfuscated + gap discovery (PR9)";
  let j = wild_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match wild_checks ~smoke:false j with
  | [] -> print_endline "all wild-binary checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr9.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr9.json"

(* ---------------------------------------------------------------- *)
(* `bench recovery`: PR4 — crash-durable checkpoint/resume. A matrix of
   seeds x kill points: each cell crashes a checkpointed parse at a task
   ordinal, resumes from the surviving artifacts, and must reproduce the
   uninterrupted run's CFG. Two kill columns add disk damage on top: a
   torn journal tail (tolerated silently) and a truncated checkpoint
   (rejected with a structured error, then recovered journal-only).
   Writes BENCH_pr4.json unless ~smoke.                              *)

let recovery_report ~smoke () =
  let module Fault = Pbca_concurrent.Fault in
  let module Parallel = Pbca_core.Parallel in
  let module Recover = Pbca_core.Recover in
  let module Finalize = Pbca_core.Finalize in
  let module Summary = Pbca_core.Summary in
  let module Cfg = Pbca_core.Cfg in
  let n_seeds = if smoke then 1 else 8 in
  let kills = if smoke then [ 60; 300 ] else [ 30; 120; 300; 700 ] in
  let threads = if smoke then 2 else 4 in
  let pool = TP.create ~threads in
  let config = Pbca_core.Config.default in
  (* below this much lost work the ratio is timer noise, not signal *)
  let floor_s = 0.02 in
  let now () = Pbca_obs.Clock.now () in
  let cells = ref 0
  and equal_cells = ref 0
  and torn_cells = ref 0
  and trunc_cells = ref 0
  and cp_rejected = ref 0 in
  let sum_full = ref 0.0
  and sum_resume = ref 0.0
  and sum_lost = ref 0.0
  and sum_ratio = ref 0.0
  and max_ratio = ref 0.0 in
  let replay_ops = ref 0 and replay_wall = ref 0.0 in
  let journal_bytes = ref 0 in
  let read_bytes path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  in
  for s = 1 to n_seeds do
    let img = (Emit.generate (Profile.coreutils_like s)).Emit.image in
    (* uninterrupted run: the equality oracle and the lost-work baseline.
       Only the expansion phase is timed — finalization always runs fresh
       after a resume, so it cancels out of the overhead ratio. *)
    let t0 = now () in
    let g_clean = Parallel.parse ~config ~pool img in
    let t_full = now () -. t0 in
    Finalize.run ~pool g_clean;
    let clean_sum = Summary.of_cfg g_clean in
    List.iteri
      (fun ki ordinal ->
        let cp = Filename.temp_file "bench_pr4" ".cp" in
        let j = cp ^ ".journal" in
        Fun.protect
          ~finally:(fun () ->
            List.iter
              (fun p -> try Sys.remove p with Sys_error _ -> ())
              [ cp; j; cp ^ ".tmp" ])
          (fun () ->
            let persist =
              { Parallel.p_journal = j; p_checkpoint = cp; p_every = 1 }
            in
            Fun.protect
              ~finally:(fun () -> Fault.disarm ())
              (fun () ->
                Fault.arm_at [ ordinal ] Fault.Crash;
                try ignore (Parallel.parse ~config ~persist ~pool img)
                with _ -> ());
            journal_bytes := !journal_bytes + (Unix.stat j).Unix.st_size;
            (* disk damage columns *)
            let torn = (not smoke) && ki = 2 in
            let trunc = (not smoke) && ki = 3 in
            if torn then begin
              incr torn_cells;
              let oc = open_out_gen [ Open_append; Open_binary ] 0o644 j in
              output_string oc "torn-tail-garbage\255\000\023";
              close_out oc
            end;
            if trunc then begin
              incr trunc_cells;
              let b = read_bytes cp in
              let keep = Bytes.length b * 3 / 5 in
              let oc = open_out_bin cp in
              output_bytes oc (Bytes.sub b 0 keep);
              close_out oc
            end;
            let src =
              { Recover.src_checkpoint = Some cp; src_journal = Some j }
            in
            let plan =
              match Recover.load src with
              | Ok p -> p
              | Error _ -> (
                incr cp_rejected;
                (* deliberate journal-only retry: the journal holds every
                   op since the run began, so it can carry recovery alone *)
                match
                  Recover.load { src with Recover.src_checkpoint = None }
                with
                | Ok p -> p
                | Error _ -> assert false (* journal loading is total *))
            in
            (* standalone replay timing against a throwaway graph *)
            let g_tmp = Cfg.create ~config img in
            let t0 = now () in
            let n =
              Recover.apply g_tmp plan ~on_jt_pending:(fun ~end_:_ ~reg:_ ->
                  ())
            in
            replay_wall := !replay_wall +. (now () -. t0);
            replay_ops := !replay_ops + n;
            (* the resumed run *)
            let t0 = now () in
            let g = Parallel.parse ~config ~resume:plan ~pool img in
            let t_resume = now () -. t0 in
            Finalize.run ~pool g;
            incr cells;
            if Summary.equal (Summary.of_cfg g) clean_sum then
              incr equal_cells;
            let lost =
              Float.max 0.0 (t_full -. plan.Recover.pl_progress_s)
            in
            let ratio = t_resume /. Float.max lost floor_s in
            sum_full := !sum_full +. t_full;
            sum_resume := !sum_resume +. t_resume;
            sum_lost := !sum_lost +. lost;
            sum_ratio := !sum_ratio +. ratio;
            if ratio > !max_ratio then max_ratio := ratio))
      kills
  done;
  let mean x = x /. float_of_int (max 1 !cells) in
  J_obj
    [
      ("bench", J_str "pr4_crash_recovery");
      ("smoke", J_bool smoke);
      ( "matrix",
        J_obj
          [
            ("seeds", J_int n_seeds);
            ("kill_points", J_int (List.length kills));
            ("cells", J_int !cells);
            ("equal", J_int !equal_cells);
            ("torn_tail_cells", J_int !torn_cells);
            ("truncated_checkpoint_cells", J_int !trunc_cells);
            ("checkpoints_rejected", J_int !cp_rejected);
          ] );
      ( "resume_overhead",
        J_obj
          [
            ("t_full_mean_s", J_float (mean !sum_full));
            ("t_resume_mean_s", J_float (mean !sum_resume));
            ("lost_work_mean_s", J_float (mean !sum_lost));
            ("floor_s", J_float floor_s);
            ("ratio_mean", J_float (mean !sum_ratio));
            ("ratio_max", J_float !max_ratio);
          ] );
      ( "replay",
        J_obj
          [
            ("ops", J_int !replay_ops);
            ("wall_s", J_float !replay_wall);
            ( "ops_per_s",
              J_float
                (if !replay_wall > 0.0 then
                   float_of_int !replay_ops /. !replay_wall
                 else 0.0) );
          ] );
      ( "journal",
        J_obj
          [ ("bytes_mean", J_int (!journal_bytes / max 1 !cells)) ] );
    ]

let recovery_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  let num path = json_num j path in
  check "json well-formed" (json_well_formed (json_to_string j));
  check "every resumed run equals the uninterrupted run"
    (num [ "matrix"; "equal" ] = num [ "matrix"; "cells" ]);
  check "full matrix ran"
    (num [ "matrix"; "cells" ]
    = num [ "matrix"; "seeds" ] *. num [ "matrix"; "kill_points" ]);
  check "truncated checkpoints are always rejected"
    (num [ "matrix"; "checkpoints_rejected" ]
    >= num [ "matrix"; "truncated_checkpoint_cells" ]);
  check "resume overhead under 2x the lost work"
    (num [ "resume_overhead"; "ratio_mean" ] < 2.0);
  if not smoke then
    check "journal replay happened" (num [ "replay"; "ops" ] > 0.0);
  List.rev !failures

let recovery_bench () =
  header "Crash-durable checkpoint/resume (PR4)";
  let j = recovery_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match recovery_checks ~smoke:false j with
  | [] -> print_endline "all recovery checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr4.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr4.json"

(* ---------------------------------------------------------------- *)
(* `bench trace`: PR5 — the observability layer. Measures the tracing
   overhead against an untraced parse of the same image (best-of-reps,
   same pool, cache warmed first), the span coverage of the measured
   parse wall, and the per-phase wall breakdown. Writes BENCH_pr5.json
   unless ~smoke.                                                     *)

let trace_report ~smoke () =
  let module Otrace = Pbca_obs.Trace in
  (* the smoke subject parses in ~1 ms, where one bad scheduling quantum
     swamps the signal; best-of-more keeps the overhead ratio honest *)
  let reps = if smoke then 8 else 5 in
  let threads = if smoke then 2 else 4 in
  let pool = TP.create ~threads in
  let subjects =
    if smoke then [ { Profile.default with Profile.n_funcs = 25; seed = 11 } ]
    else [ Profile.coreutils_like 1; Profile.coreutils_like 2 ]
  in
  let per_subject p =
    let r = Emit.generate p in
    let time_once ?otrace () =
      let t0 = Pbca_obs.Clock.now () in
      ignore
        (Pbca_core.Parallel.parse_and_finalize ?otrace ~pool r.Emit.image
          : Pbca_core.Cfg.t);
      Pbca_obs.Clock.elapsed t0
    in
    (* warm-up: fault pages in, fill the image's decode cache, so the
       traced/untraced comparison sees identical cache state *)
    ignore (time_once ());
    let w_un = ref infinity in
    for _ = 1 to reps do
      let w = time_once () in
      if w < !w_un then w_un := w
    done;
    let best_t = ref Otrace.disabled and w_tr = ref infinity in
    for _ = 1 to reps do
      let t = Otrace.create () in
      let w = time_once ~otrace:t () in
      if w < !w_tr then begin
        w_tr := w;
        best_t := t
      end
    done;
    let t = !best_t in
    let spans = Otrace.spans t in
    let coverage = Otrace.covered_wall t /. !w_tr in
    let overhead = !w_tr /. !w_un in
    ( J_obj
        [
          ("subject", J_str p.Profile.name);
          ("seed", J_int p.Profile.seed);
          ("untraced_wall_s", J_float !w_un);
          ("traced_wall_s", J_float !w_tr);
          ("tracing_overhead", J_float overhead);
          ("spans", J_int (List.length spans));
          ("span_coverage_of_parse_wall", J_float coverage);
          ( "chrome_json_well_formed",
            J_bool (json_well_formed (Otrace.to_chrome_string t)) );
          ( "phase_wall_ms",
            J_obj
              (List.map
                 (fun (ph, w) -> (ph, J_float (1000. *. w)))
                 (Otrace.phase_walls t)) );
        ],
      (overhead, coverage) )
  in
  let results = List.map per_subject subjects in
  J_obj
    [
      ("bench", J_str "pr5_observability");
      ("smoke", J_bool smoke);
      ("reps", J_int reps);
      ("threads", J_int threads);
      ("subjects", J_arr (List.map fst results));
      ( "geomean_tracing_overhead",
        J_float (geomean (List.map (fun (_, (o, _)) -> o) results)) );
      ("overhead_target", J_float 1.05);
    ]

let trace_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  (match json_field j [ "subjects" ] with
  | Some (J_arr subs) ->
    check "at least one subject benched" (subs <> []);
    List.iter
      (fun s ->
        let name =
          match json_field s [ "subject" ] with Some (J_str n) -> n | _ -> "?"
        in
        check
          (name ^ ": chrome trace JSON well-formed")
          (match json_field s [ "chrome_json_well_formed" ] with
          | Some (J_bool b) -> b
          | _ -> false);
        check (name ^ ": spans recorded") (json_num s [ "spans" ] > 0.0);
        check
          (name ^ ": spans cover >= 95% of the traced parse wall")
          (json_num s [ "span_coverage_of_parse_wall" ] >= 0.95))
      subs
  | _ -> check "subjects present" false);
  (* the smoke subject parses in ~a millisecond, where scheduler jitter
     dwarfs any real tracing cost; hold the <5%-class bound (with a small
     noise allowance) to the full-size run only *)
  check
    (if smoke then "tracing overhead sane (smoke, noisy)"
     else "tracing overhead under 10% (target 5%)")
    (json_num j [ "geomean_tracing_overhead" ]
    < if smoke then 2.0 else 1.10);
  List.rev !failures

let trace_bench () =
  header "Observability: tracing overhead + span coverage (PR5)";
  let j = trace_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match trace_checks ~smoke:false j with
  | [] -> print_endline "all trace checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr5.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr5.json"

(* ---------------------------------------------------------------- *)
(* `bench finalize` (PR6 part): incremental-CSR finalize phase gate.
   Traced full pipeline on the two coreutils subjects, best-of-reps;
   the span phases give the finalize wall, the traversal ([region])
   wall, and the snapshot build/compaction cost ([csr-build] /
   [csr-compact], separate from [fz-step]). Gates: finalize wall at
   most 2x the traversal wall, and no regression against the PR5 phase
   baseline recorded below; incremental-vs-legacy Cfg_diff equality is
   asserted on every subject. Writes BENCH_pr6.json unless ~smoke.    *)

(* BENCH_pr5.json phase_wall_ms.finalize on this reference machine —
   the regression baseline the incremental CSR must beat *)
let pr5_finalize_baseline_ms =
  [ ("coreutils_001", 40.1557); ("coreutils_002", 35.5189) ]

let csr_report ~smoke () =
  let module Otrace = Pbca_obs.Trace in
  let reps = if smoke then 2 else 5 in
  let threads = if smoke then 2 else 4 in
  let pool = TP.create ~threads in
  let subjects =
    if smoke then [ { Profile.default with Profile.n_funcs = 25; seed = 11 } ]
    else [ Profile.coreutils_like 1; Profile.coreutils_like 2 ]
  in
  let per_subject p =
    let r = Emit.generate p in
    (* correctness side of the gate: the incremental snapshot path must
       equal the legacy whole-graph path on this very subject *)
    let spool = TP.create ~threads:1 in
    let g_inc = Pbca_core.Parallel.parse_and_finalize ~pool:spool r.Emit.image in
    let g_leg = Pbca_core.Parallel.parse ~pool:spool r.Emit.image in
    Pbca_core.Finalize.run_legacy ~pool:spool g_leg;
    let equal = graphs_equal g_inc g_leg in
    (* perf side: traced pipeline at [threads], best of [reps] (plus one
       untimed warm-up for the decode cache) *)
    let run_traced () =
      let t = Otrace.create () in
      let t0 = Pbca_obs.Clock.now () in
      let g = Pbca_core.Parallel.parse_and_finalize ~otrace:t ~pool r.Emit.image in
      (t, g, Pbca_obs.Clock.elapsed t0)
    in
    ignore (run_traced ());
    let t0, g0, w0 = run_traced () in
    let best_t = ref t0 and best_g = ref g0 and best_w = ref w0 in
    for _ = 2 to reps do
      let t, g, w = run_traced () in
      if w < !best_w then begin
        best_t := t;
        best_g := g;
        best_w := w
      end
    done;
    let walls = Otrace.phase_walls !best_t in
    let ms ph =
      match List.assoc_opt ph walls with Some v -> 1000. *. v | None -> 0.0
    in
    let fin = ms "finalize" and region = ms "region" in
    let ratio = if region > 0.0 then fin /. region else infinity in
    let st = (!best_g).Pbca_core.Cfg.stats in
    let baseline = List.assoc_opt p.Profile.name pr5_finalize_baseline_ms in
    ( J_obj
        ([
           ("subject", J_str p.Profile.name);
           ("seed", J_int p.Profile.seed);
           ("wall_s", J_float !best_w);
           ("finalize_wall_ms", J_float fin);
           ("traversal_wall_ms", J_float region);
           ("finalize_over_traversal", J_float ratio);
           ("fz_step_ms", J_float (ms "fz-step"));
           ("csr_build_ms", J_float (ms "csr-build"));
           ("csr_compact_ms", J_float (ms "csr-compact"));
           ( "csr_deltas",
             J_int (Atomic.get st.Pbca_core.Cfg.csr_deltas) );
           ( "csr_compactions",
             J_int (Atomic.get st.Pbca_core.Cfg.csr_compactions) );
           ("incremental_vs_legacy_equal", J_bool equal);
         ]
        @
        match baseline with
        | Some b ->
          [
            ("pr5_finalize_baseline_ms", J_float b);
            ("speedup_vs_pr5", J_float (b /. Float.max fin 1e-9));
          ]
        | None -> []),
      (ratio, fin, baseline, equal) )
  in
  let results = List.map per_subject subjects in
  J_obj
    [
      ("bench", J_str "pr6_incremental_csr");
      ("smoke", J_bool smoke);
      ("reps", J_int reps);
      ("threads", J_int threads);
      ("finalize_over_traversal_target", J_float 2.0);
      ("subjects", J_arr (List.map fst results));
    ]

let csr_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  (match json_field j [ "subjects" ] with
  | Some (J_arr subs) ->
    check "at least one subject benched" (subs <> []);
    List.iter
      (fun s ->
        let name =
          match json_field s [ "subject" ] with Some (J_str n) -> n | _ -> "?"
        in
        check
          (name ^ ": incremental and legacy graphs Cfg_diff-equal")
          (match json_field s [ "incremental_vs_legacy_equal" ] with
          | Some (J_bool b) -> b
          | _ -> false);
        check
          (name ^ ": finalize phase wall recorded")
          (json_num s [ "finalize_wall_ms" ] > 0.0);
        if not smoke then begin
          check
            (name ^ ": finalize wall <= 2x traversal wall")
            (json_num s [ "finalize_over_traversal" ] <= 2.0);
          check
            (name ^ ": finalize wall does not regress vs PR5 baseline")
            (json_num s [ "finalize_wall_ms" ]
            <= json_num s [ "pr5_finalize_baseline_ms" ])
        end)
      subs
  | _ -> check "subjects present" false);
  List.rev !failures

let csr_bench () =
  header "Incremental CSR: finalize vs traversal phase gate (PR6)";
  let j = csr_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match csr_checks ~smoke:false j with
  | [] -> print_endline "all incremental-csr checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr6.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr6.json"

(* ---------------------------------------------------------------- *)
(* `bench pipeline` (PR7): streaming pipeline vs phase barriers.
   Both hpcstruct drivers run for real (best-of-reps) and their output
   is asserted byte-identical; BinFeat's streamed index is asserted
   equal to the barrier one. The scaling claim is simulated (this
   container has one core): a pipelined-DAG model is built from the
   barrier run's measured per-task costs and replayed at [threads] and
   128-512 simulated threads — the gate is the barrier/streamed
   makespan ratio at [threads] and the serial-fraction drop at the
   high counts (where the Amdahl ceiling moves). A regression gate
   re-times the plain parse_and_finalize against the PR6 end-to-end
   baseline: the multi-region pool refactor must not have slowed the
   core pipeline. Writes BENCH_pr7.json unless ~smoke.               *)

(* BENCH_pr6.json wall_s on this reference machine (ms). The tolerance
   applied at check time is x3.0: single-run walls on this shared
   container scatter ~2x (re-timing the PR6 bench itself reproduces its
   recorded numbers only to within 0.5-2x), so a tighter bound gates on
   scheduler luck, not regressions. *)
let pr6_wall_baseline_ms =
  [ ("coreutils_001", 7.42129); ("coreutils_002", 2.90425) ]

let pipeline_report ~smoke () =
  let module Pipe = Pbca_simsched.Pipeline in
  let reps = if smoke then 1 else 3 in
  let threads = if smoke then 2 else 4 in
  let sim_threads = [ threads; 128; 256; 512 ] in
  let subjects =
    if smoke then [ { Profile.default with Profile.n_funcs = 25; seed = 11 } ]
    else [ Profile.coreutils_like 1; Profile.coreutils_like 2 ]
  in
  let per_subject p =
    let r = Emit.generate p in
    let img = r.Emit.image in
    let pool = TP.create ~threads in
    let best_of run =
      ignore (run ());
      (* warm-up: decode cache *)
      let first = run () in
      let best = ref first in
      for _ = 2 to reps do
        let c = run () in
        if H.total_wall c < H.total_wall !best then best := c
      done;
      !best
    in
    let barrier = best_of (fun () -> H.run_image ~pool img) in
    let streamed = best_of (fun () -> H.run_image_streamed ~pool img) in
    let xml_equal = String.equal barrier.H.output streamed.H.output in
    let graph_equal = graphs_equal barrier.H.cfg streamed.H.cfg in
    (* PR6 regression gate: the core parse+finalize, no streaming.
       Timed before the feature-extraction runs below churn the heap;
       one warm-up plus best-of-5 because this container's walls move
       ~2x run to run (re-timing PR6's own bench here lands anywhere in
       0.5-2x of its recorded numbers). *)
    let pf_wall =
      let pf_reps = if smoke then 2 else 5 in
      ignore (Pbca_core.Parallel.parse_and_finalize ~pool img);
      let best = ref infinity in
      for _ = 1 to pf_reps do
        let t0 = Pbca_obs.Clock.now () in
        ignore (Pbca_core.Parallel.parse_and_finalize ~pool img);
        best := Float.min !best (Pbca_obs.Clock.elapsed t0)
      done;
      !best
    in
    let feat_alist (b : B.result) =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) b.B.index []
      |> List.sort compare
    in
    let bf_barrier = B.extract ~pool [ img ] in
    let bf_streamed = B.extract_streamed ~pool [ img ] in
    let feat_equal = feat_alist bf_barrier = feat_alist bf_streamed in
    (* pipelined-DAG model from the barrier run's recorded traces: the
       cfg component keeps its real task DAG (quiescence rounds, wake-up
       deps and the per-function bounds epoch) so the barrier model pays
       the rounds' stalls it really pays, and the streamed model gates
       each fill on its own function's bounds task — the readiness
       protocol *)
    let phase_work name =
      List.fold_left
        (fun acc (ph : H.phase) ->
          if ph.ph_name = name then acc + ph.ph_work else acc)
        0 barrier.H.phases
    in
    let trace_tasks name =
      match phase_trace barrier name with
      | Some tr -> Trace.tasks tr
      | None -> []
    in
    let fill_costs =
      match phase_trace barrier "fill" with
      | Some tr -> Pipe.costs_of (Trace.tasks tr) "fill"
      | None -> [||]
    in
    let linemap_task =
      {
        Trace.id = 0;
        label = "linemap";
        cost = max 1 (phase_work "linemap");
        deps = [];
        epoch = 0;
      }
    in
    let staged =
      {
        Pipe.tg_pre =
          [ ("dwarf", trace_tasks "dwarf"); ("linemap", [ linemap_task ]) ];
        tg_produce = trace_tasks "cfg";
        tg_publish_label = Some "bounds";
        tg_consume = fill_costs;
        tg_tail = max 1 (phase_work "emit");
      }
    in
    let points = Pipe.staged_scan ~threads:sim_threads staged in
    let at n =
      List.find (fun (pt : Pipe.point) -> pt.Pipe.pt_threads = n) points
    in
    let st = streamed.H.cfg.Pbca_core.Cfg.stats in
    let baseline = List.assoc_opt p.Profile.name pr6_wall_baseline_ms in
    ( J_obj
        ([
           ("subject", J_str p.Profile.name);
           ("seed", J_int p.Profile.seed);
           ("threads", J_int threads);
           ("barrier_wall_s", J_float (H.total_wall barrier));
           ("streamed_wall_s", J_float (H.total_wall streamed));
           ("xml_identical", J_bool xml_equal);
           ("graphs_equal", J_bool graph_equal);
           ("features_identical", J_bool feat_equal);
           ("n_funcs", J_int barrier.H.n_funcs);
           ( "stream_published",
             J_int (Atomic.get st.Pbca_core.Cfg.stream_published) );
           ( "stream_channel_hwm",
             J_int (Atomic.get st.Pbca_core.Cfg.stream_hwm) );
           ( "stream_consumer_idle_ms",
             J_float
               (float_of_int
                  (Atomic.get st.Pbca_core.Cfg.stream_consumer_idle_us)
               /. 1e3) );
           ( "stream_producer_block_ms",
             J_float
               (float_of_int
                  (Atomic.get st.Pbca_core.Cfg.stream_producer_block_us)
               /. 1e3) );
           ( "sim_pipeline_speedup",
             J_float (at threads).Pipe.pt_pipeline_speedup );
           ("parse_finalize_wall_ms", J_float (1000. *. pf_wall));
           ( "model",
             J_arr
               (List.map
                  (fun (pt : Pipe.point) ->
                    J_obj
                      [
                        ("threads", J_int pt.Pipe.pt_threads);
                        ( "barrier_makespan",
                          J_int pt.Pipe.pt_barrier_makespan );
                        ( "streamed_makespan",
                          J_int pt.Pipe.pt_streamed_makespan );
                        ( "pipeline_speedup",
                          J_float pt.Pipe.pt_pipeline_speedup );
                        ( "serial_fraction_barrier",
                          J_float pt.Pipe.pt_barrier_serial_fraction );
                        ( "serial_fraction_streamed",
                          J_float pt.Pipe.pt_streamed_serial_fraction );
                      ])
                  points) );
         ]
        @
        match baseline with
        | Some b ->
          [
            ("pr6_wall_baseline_ms", J_float b);
            ("pr6_regression_limit_ms", J_float (3.0 *. b));
          ]
        | None -> []),
      (at threads, at 512) )
  in
  let results = List.map per_subject subjects in
  J_obj
    [
      ("bench", J_str "pr7_streaming_pipeline");
      ("smoke", J_bool smoke);
      ("reps", J_int reps);
      ("threads", J_int threads);
      ("sim_speedup_target", J_float 1.2);
      ("subjects", J_arr (List.map fst results));
    ]

let pipeline_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  (match json_field j [ "subjects" ] with
  | Some (J_arr subs) ->
    check "at least one subject benched" (subs <> []);
    List.iter
      (fun s ->
        let name =
          match json_field s [ "subject" ] with Some (J_str n) -> n | _ -> "?"
        in
        let flag path =
          match json_field s path with Some (J_bool b) -> b | _ -> false
        in
        check (name ^ ": streamed XML byte-identical to barrier")
          (flag [ "xml_identical" ]);
        check (name ^ ": streamed and barrier graphs Cfg_diff-equal")
          (flag [ "graphs_equal" ]);
        check (name ^ ": streamed feature index equals barrier")
          (flag [ "features_identical" ]);
        check (name ^ ": every function published exactly once")
          (json_num s [ "stream_published" ] = json_num s [ "n_funcs" ]);
        (* the Amdahl ceiling must move: pipelining strictly lowers the
           back-fitted serial fraction at the high simulated counts *)
        let model_points =
          match json_field s [ "model" ] with Some (J_arr l) -> l | _ -> []
        in
        List.iter
          (fun pt ->
            let t = int_of_float (json_num pt [ "threads" ]) in
            if t >= 128 then
              check
                (Printf.sprintf
                   "%s: serial fraction drops at %d simulated threads" name t)
                (json_num pt [ "serial_fraction_streamed" ]
                < json_num pt [ "serial_fraction_barrier" ]))
          model_points;
        if not smoke then begin
          check
            (name ^ ": simulated streamed speedup >= 1.2x at 4 threads")
            (json_num s [ "sim_pipeline_speedup" ] >= 1.2);
          check
            (name ^ ": parse+finalize does not regress vs PR6 baseline")
            (json_num s [ "parse_finalize_wall_ms" ]
            <= json_num s [ "pr6_regression_limit_ms" ])
        end)
      subs
  | _ -> check "subjects present" false);
  List.rev !failures

let pipeline_bench () =
  header "Streaming pipeline vs phase barriers (PR7)";
  let j = pipeline_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match pipeline_checks ~smoke:false j with
  | [] -> print_endline "all pipeline checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr7.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr7.json"

(* ---------------------------------------------------------------- *)
(* PR8: the bserve daemon. Cold-vs-cached service latency, sustained
   throughput, shed rate under a 2x-capacity burst, and the regression
   gate: parse results served by the daemon must carry the fingerprint
   of a local one-shot parse, which itself must stay Cfg_diff-equal
   serial vs parallel. Writes BENCH_pr8.json unless ~smoke.           *)

let serve_percentile buckets n q =
  if n = 0 then 0.0
  else
    let target =
      max 1 (int_of_float (ceil (q *. float_of_int n)))
    in
    let rec go acc = function
      | [] -> infinity
      | (bound, c) :: rest ->
        let acc = acc + c in
        if acc >= target then bound else go acc rest
    in
    go 0 buckets

let serve_report ~smoke () =
  let module Serve = Pbca_serve.Serve in
  let module Wire = Pbca_serve.Wire in
  let module Sclient = Pbca_serve.Sclient in
  let module Fault = Pbca_concurrent.Fault in
  let module Metrics = Pbca_obs.Metrics in
  let reps = if smoke then 2 else 4 in
  let tput_n = if smoke then 5 else 20 in
  let subjects =
    (* service subjects are sized so re-discovery dominates the
       checkpoint-replay cost on a cache hit; at coreutils scale (~40
       funcs, ~2ms parses) the comparison is pure timer noise *)
    if smoke then [ { Profile.default with Profile.n_funcs = 25; seed = 11 } ]
    else
      List.map
        (fun i ->
          { (Profile.coreutils_like i) with
            Profile.n_funcs = 400;
            seed = 9100 + i;
          })
        [ 1; 2 ]
  in
  let dir = Filename.temp_file "bench_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let cleanup () =
    (try
       let cache = Filename.concat dir "cache" in
       (try
          Array.iter
            (fun e -> try Sys.remove (Filename.concat cache e) with _ -> ())
            (Sys.readdir cache)
        with Sys_error _ -> ());
       (try Unix.rmdir cache with Unix.Unix_error _ -> ());
       Array.iter
         (fun e -> try Sys.remove (Filename.concat dir e) with _ -> ())
         (try Sys.readdir dir with Sys_error _ -> [||]);
       Unix.rmdir dir
     with Unix.Unix_error _ | Sys_error _ -> ())
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let sock = Filename.concat dir "d.sock" in
  let roundtrip req =
    match Sclient.roundtrip ~timeout_s:60.0 ~sock req with
    | Ok r -> r
    | Error e -> failwith ("bench serve: " ^ Sclient.error_to_string e)
  in
  (* --- service daemon: latency, cache, throughput, equality gate --- *)
  let cfg =
    { (Serve.default_config ~sock) with
      Serve.sc_workers = 2;
      sc_acceptors = 1;
      sc_queue = 16;
      sc_cache_dir = Some (Filename.concat dir "cache");
    }
  in
  let subject_results, hist =
    Serve.with_server cfg (fun t ->
        let per_subject p =
          let img = (Emit.generate p).Emit.image in
          let bytes = Image.write img in
          (* local oracle: serial and parallel one-shot parses *)
          let parse threads =
            let pool = TP.create ~threads in
            Pbca_core.Parallel.parse_and_finalize ~pool img
          in
          let g_serial = parse 1 in
          let g_par = parse 2 in
          let local_equal = graphs_equal g_serial g_par in
          let local_fp =
            Pbca_core.Summary.fingerprint (Pbca_core.Summary.of_cfg g_serial)
          in
          let fp_of (r : Wire.reply) =
            match String.index_opt r.Wire.rp_body ' ' with
            | Some i -> String.sub r.Wire.rp_body 12 (i - 12)
            | None -> r.Wire.rp_body
          in
          (* cold service latency: bypass the cache so every rep does the
             full discovery + jump-table fixpoint *)
          let cold_req =
            Wire.request ~no_cache:true ~image:bytes Wire.Parse
          in
          let cold_us = ref max_int and daemon_ok = ref true in
          for _ = 1 to reps do
            let r = roundtrip cold_req in
            if r.Wire.rp_status <> Wire.Ok_clean || fp_of r <> local_fp then
              daemon_ok := false;
            cold_us := min !cold_us r.Wire.rp_run_us
          done;
          (* populate, then measure the cached path: checkpoint replay
             instead of re-discovery *)
          let warm_req = Wire.request ~image:bytes Wire.Parse in
          let first = roundtrip warm_req in
          if first.Wire.rp_status <> Wire.Ok_clean || fp_of first <> local_fp
          then daemon_ok := false;
          let hit_us = ref max_int and hits = ref 0 in
          for _ = 1 to reps do
            let r = roundtrip warm_req in
            if r.Wire.rp_status <> Wire.Ok_clean || fp_of r <> local_fp then
              daemon_ok := false;
            if r.Wire.rp_cache_hit then begin
              incr hits;
              hit_us := min !hit_us r.Wire.rp_run_us
            end
          done;
          (* sustained sequential load over the cached path *)
          let t0 = Unix.gettimeofday () in
          for _ = 1 to tput_n do
            let r = roundtrip warm_req in
            if r.Wire.rp_status <> Wire.Ok_clean then daemon_ok := false
          done;
          let tput_wall = Unix.gettimeofday () -. t0 in
          J_obj
            [
              ("subject", J_str p.Profile.name);
              ("image_bytes", J_int (Bytes.length bytes));
              ("daemon_matches_local", J_bool !daemon_ok);
              ("local_serial_parallel_equal", J_bool local_equal);
              ("cold_run_us", J_int !cold_us);
              ("cached_hit_run_us",
               J_int (if !hits > 0 then !hit_us else -1));
              ("cache_hits_observed", J_int !hits);
              ( "hit_speedup",
                J_float
                  (if !hits > 0 && !hit_us > 0 then
                     float_of_int !cold_us /. float_of_int !hit_us
                   else 0.0) );
              ( "throughput_req_s",
                J_float
                  (if tput_wall > 0.0 then float_of_int tput_n /. tput_wall
                   else 0.0) );
            ]
        in
        let rs = List.map per_subject subjects in
        let hist =
          match
            List.assoc_opt "serve_latency_s"
              (Metrics.snapshot (Serve.metrics t))
          with
          | Some (Metrics.Histogram { n; buckets; _ }) ->
            J_obj
              [
                ("n", J_int n);
                ("p50_s", J_float (serve_percentile buckets n 0.50));
                ("p99_s", J_float (serve_percentile buckets n 0.99));
              ]
          | _ -> J_obj [ ("n", J_int 0) ]
        in
        (rs, hist))
  in
  (* --- overload daemon: burst at ~2x capacity, count the sheds --- *)
  let osock = Filename.concat dir "o.sock" in
  let ocfg =
    { (Serve.default_config ~sock:osock) with
      Serve.sc_workers = 1;
      sc_acceptors = 1;
      sc_queue = 4;
      sc_cache_dir = None;
    }
  in
  let overload =
    Fun.protect
      ~finally:(fun () -> Fault.disarm_service ())
      (fun () ->
        Serve.with_server ocfg (fun t ->
            (* the single worker sits on the first request while the rest
               of the burst hits the admission bound *)
            Fault.arm_service_at [ (0, Fault.Stall 0.4) ];
            let img =
              Image.write
                (Emit.generate
                   { Profile.default with Profile.n_funcs = 10; seed = 3 })
                  .Emit.image
            in
            let capacity = ocfg.Serve.sc_queue + ocfg.Serve.sc_workers in
            let n = 2 * capacity in
            let reqs =
              List.init n (fun _ -> Wire.request ~image:img Wire.Parse)
            in
            let replies = Sclient.burst ~timeout_s:60.0 ~sock:osock reqs in
            let count st =
              List.length
                (List.filter
                   (function
                     | Ok (r : Wire.reply) -> r.Wire.rp_status = st
                     | Error _ -> false)
                   replies)
            in
            let client_errors =
              List.length
                (List.filter (function Error _ -> true | Ok _ -> false)
                   replies)
            in
            let shed =
              match
                List.assoc_opt "serve_shed"
                  (Metrics.snapshot (Serve.metrics t))
              with
              | Some (Metrics.Counter c) -> c
              | _ -> 0
            in
            J_obj
              [
                ("burst", J_int n);
                ("capacity", J_int capacity);
                ("served_ok", J_int (count Wire.Ok_clean));
                ("shed_overloaded", J_int (count Wire.Overloaded));
                ("shed_counter", J_int shed);
                ("client_errors", J_int client_errors);
                ( "shed_rate",
                  J_float (float_of_int shed /. float_of_int n) );
              ]))
  in
  J_obj
    [
      ("bench", J_str "pr8_serve");
      ("smoke", J_bool smoke);
      ("reps", J_int reps);
      ("throughput_requests", J_int tput_n);
      ("subjects", J_arr subject_results);
      ("latency_hist", hist);
      ("overload", overload);
    ]

let serve_checks ~smoke j =
  let failures = ref [] in
  let check name ok = if not ok then failures := name :: !failures in
  check "json well-formed" (json_well_formed (json_to_string j));
  (match json_field j [ "subjects" ] with
  | Some (J_arr subs) ->
    check "at least one subject benched" (subs <> []);
    List.iter
      (fun s ->
        let name =
          match json_field s [ "subject" ] with Some (J_str n) -> n | _ -> "?"
        in
        let flag path =
          match json_field s path with Some (J_bool b) -> b | _ -> false
        in
        check (name ^ ": daemon replies match the local one-shot parse")
          (flag [ "daemon_matches_local" ]);
        check (name ^ ": local serial and parallel parses Cfg_diff-equal")
          (flag [ "local_serial_parallel_equal" ]);
        check (name ^ ": cache hits observed")
          (json_num s [ "cache_hits_observed" ] >= 1.0);
        check
          (name ^ ": throughput measured")
          (json_num s [ "throughput_req_s" ] > 0.0);
        (* the acceptance gate: replaying the checkpoint must beat
           re-discovering the CFG. Too noisy to assert on the
           seconds-long smoke subjects; the full bench asserts it. *)
        if not smoke then
          check
            (name ^ ": cached hit beats cold parse")
            (json_num s [ "cached_hit_run_us" ] > 0.0
            && json_num s [ "cached_hit_run_us" ]
               < json_num s [ "cold_run_us" ]))
      subs
  | _ -> check "subjects present" false);
  check "overload: load was shed"
    (json_num j [ "overload"; "shed_counter" ] >= 1.0);
  check "overload: every burst request answered structurally"
    (json_num j [ "overload"; "client_errors" ] = 0.0);
  check "overload: admitted requests still served"
    (json_num j [ "overload"; "served_ok" ] >= 1.0);
  List.rev !failures

let serve_bench () =
  header "Analysis-as-a-service daemon (PR8)";
  let j = serve_report ~smoke:false () in
  let s = json_to_string j in
  print_endline s;
  (match serve_checks ~smoke:false j with
  | [] -> print_endline "all serve checks passed"
  | fs ->
    List.iter (fun f -> Printf.printf "CHECK FAILED: %s\n" f) fs;
    exit 1);
  let oc = open_out "BENCH_pr8.json" in
  output_string oc s;
  output_char oc '\n';
  close_out oc;
  print_endline "wrote BENCH_pr8.json"

(* seconds-long slice of the same reports, self-checking, for `dune
   runtest`; prints to stdout only (the test sandbox is read-only) *)
let microsmoke () =
  let j = contention_report ~smoke:true () in
  print_endline (json_to_string j);
  (match contention_checks j with
  | [] -> print_endline "microsmoke: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let jf = finalize_report ~smoke:true () in
  print_endline (json_to_string jf);
  (match finalize_checks ~smoke:true jf with
  | [] -> print_endline "microsmoke finalize: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let jr = robustness_report ~smoke:true () in
  print_endline (json_to_string jr);
  (match robustness_checks jr with
  | [] -> print_endline "microsmoke robustness: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let j9 = wild_report ~smoke:true () in
  print_endline (json_to_string j9);
  (match wild_checks ~smoke:true j9 with
  | [] -> print_endline "microsmoke wild: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let jc = recovery_report ~smoke:true () in
  print_endline (json_to_string jc);
  (match recovery_checks ~smoke:true jc with
  | [] -> print_endline "microsmoke recovery: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let jt = trace_report ~smoke:true () in
  print_endline (json_to_string jt);
  (match trace_checks ~smoke:true jt with
  | [] -> print_endline "microsmoke trace: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let j6 = csr_report ~smoke:true () in
  print_endline (json_to_string j6);
  (match csr_checks ~smoke:true j6 with
  | [] -> print_endline "microsmoke incremental-csr: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let j7 = pipeline_report ~smoke:true () in
  print_endline (json_to_string j7);
  (match pipeline_checks ~smoke:true j7 with
  | [] -> print_endline "microsmoke pipeline: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1);
  let j8 = serve_report ~smoke:true () in
  print_endline (json_to_string j8);
  match serve_checks ~smoke:true j8 with
  | [] -> print_endline "microsmoke serve: ok"
  | fs ->
    List.iter (fun f -> Printf.printf "microsmoke CHECK FAILED: %s\n" f) fs;
    exit 1

(* ---------------------------------------------------------------- *)

let () =
  let cmds = Array.to_list Sys.argv |> List.tl in
  let cmds = if cmds = [] then [ "all" ] else cmds in
  let want c = List.mem c cmds || List.mem "all" cmds in
  Printf.printf
    "pbca bench harness (scale=%.2f; this machine has %d hardware core(s) — \
     thread sweeps are schedule-simulated, see DESIGN.md)\n"
    scale
    (Domain.recommended_domain_count ());
  if want "table1" then table1 ();
  (if want "table2" || want "figure2" || want "figure3" then begin
     let runs = run_subjects () in
     if want "table2" then table2 runs;
     if want "figure2" then figure2 runs;
     if want "figure3" then figure3 runs
   end);
  if want "table3" then table3 ();
  if want "correctness" then correctness ();
  if want "ablations" then ablations ();
  if want "micro" then micro ();
  if want "contention" then contention ();
  if want "finalize" then begin
    finalize_bench ();
    csr_bench ()
  end;
  if want "robustness" then begin
    robustness_bench ();
    wild_bench ()
  end;
  if want "recovery" then recovery_bench ();
  if want "trace" then trace_bench ();
  if want "pipeline" then pipeline_bench ();
  if want "serve" then serve_bench ();
  (* microsmoke is runtest plumbing, not part of "all" *)
  if List.mem "microsmoke" cmds then microsmoke ();
  line ()
