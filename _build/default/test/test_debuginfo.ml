(* Tests for the DWARF-like debug info: codec, line map, inline trees. *)

open Tutil
module Dbg = Pbca_debuginfo.Types
module Codec = Pbca_debuginfo.Codec
module Line_map = Pbca_debuginfo.Line_map

let sample_debug () =
  let line lo hi file l = { Dbg.range = { Dbg.lo; hi }; file; line = l } in
  let inl callee lo hi children =
    {
      Dbg.callee;
      call_file = "a.c";
      call_line = 3;
      inl_ranges = [ { Dbg.lo; hi } ];
      children;
    }
  in
  {
    Dbg.cus =
      [|
        {
          Dbg.cu_name = "a.c";
          cu_funcs =
            [
              {
                Dbg.fi_name = "f";
                fi_ranges = [ { Dbg.lo = 0x100; hi = 0x180 } ];
                fi_decl_file = "a.c";
                fi_decl_line = 10;
                fi_inlines =
                  [ inl "inner" 0x110 0x140 [ inl "leaf" 0x118 0x120 [] ] ];
              };
            ];
          cu_lines = [ line 0x100 0x120 "a.c" 10; line 0x120 0x180 "a.c" 11 ];
          cu_pad = 128;
        };
        {
          Dbg.cu_name = "b.c";
          cu_funcs = [];
          cu_lines = [ line 0x200 0x240 "b.c" 5 ];
          cu_pad = 64;
        };
      |];
  }

let test_codec_roundtrip () =
  let d = sample_debug () in
  let d2 = Codec.decode (Codec.encode d) in
  Alcotest.(check int) "cus" 2 (Array.length d2.cus);
  Alcotest.(check bool) "trees equal" true (d = d2)

let test_codec_parallel_equals_serial () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 60; n_cus = 12 } in
  let data =
    (Option.get (Pbca_binfmt.Image.section r.image ".debug")).Pbca_binfmt.Section.data
  in
  let serial = Codec.decode data in
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let par = Codec.decode ~pool data in
  Alcotest.(check bool) "identical" true (serial = par)

let test_codec_corruption () =
  let d = sample_debug () in
  let bytes = Codec.encode d in
  (* flip a byte inside the first CU's padding *)
  let n = Bytes.length bytes in
  Bytes.set bytes (n - 10) '\xff';
  Alcotest.(check bool) "checksum mismatch detected" true
    (try
       ignore (Codec.decode bytes);
       false
     with Failure _ -> true)

let test_cu_blobs () =
  let d = sample_debug () in
  let blobs = Codec.cu_blobs (Codec.encode d) in
  Alcotest.(check int) "two blobs" 2 (Array.length blobs);
  let cu0 = Codec.decode_cu blobs.(0) in
  Alcotest.(check string) "first cu" "a.c" cu0.cu_name

let test_line_map_lookup () =
  let lm = Line_map.build (sample_debug ()) in
  Alcotest.(check int) "entries" 3 (Line_map.length lm);
  let at a =
    match Line_map.lookup lm a with Some le -> le.Dbg.line | None -> -1
  in
  Alcotest.(check int) "first range start" 10 (at 0x100);
  Alcotest.(check int) "first range interior" 10 (at 0x11f);
  Alcotest.(check int) "second range" 11 (at 0x120);
  Alcotest.(check int) "last byte" 11 (at 0x17f);
  Alcotest.(check int) "hole between cus" (-1) (at 0x190);
  Alcotest.(check int) "other cu" 5 (at 0x210);
  Alcotest.(check int) "before everything" (-1) (at 0x50);
  Alcotest.(check int) "past everything" (-1) (at 0x900)

let test_inline_context () =
  let d = sample_debug () in
  Alcotest.(check (list string)) "nested chain" [ "f"; "inner"; "leaf" ]
    (Line_map.inline_context d 0x119);
  Alcotest.(check (list string)) "mid-level" [ "f"; "inner" ]
    (Line_map.inline_context d 0x130);
  Alcotest.(check (list string)) "function only" [ "f" ]
    (Line_map.inline_context d 0x150);
  Alcotest.(check (list string)) "outside" [] (Line_map.inline_context d 0x300)

let test_generated_roundtrip =
  qcheck ~count:20 "generated debug info roundtrips"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      let p = { Profile.default with n_funcs = 20; seed; n_cus = 4 } in
      let r = Pbca_codegen.Emit.generate p in
      let data =
        (Option.get (Pbca_binfmt.Image.section r.image ".debug"))
          .Pbca_binfmt.Section.data
      in
      Codec.decode data = r.debug)

let test_counts () =
  let d = sample_debug () in
  Alcotest.(check int) "func count" 1 (Dbg.func_count d);
  Alcotest.(check int) "line count" 3 (Dbg.line_count d);
  Alcotest.(check int) "range size" 0x80
    (Dbg.range_size { Dbg.lo = 0x100; hi = 0x180 })

let suite =
  [
    quick "codec: roundtrip" test_codec_roundtrip;
    quick "codec: parallel = serial decode" test_codec_parallel_equals_serial;
    quick "codec: corruption detected" test_codec_corruption;
    quick "codec: cu slicing" test_cu_blobs;
    quick "line map: lookup semantics" test_line_map_lookup;
    quick "inline context: nesting" test_inline_context;
    test_generated_roundtrip;
    quick "types: counts" test_counts;
  ]
