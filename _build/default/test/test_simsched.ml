(* Tests for the schedule simulator: the substrate standing in for the
   paper's 64-thread machines (DESIGN.md substitution 3). *)

open Tutil
module Heap = Pbca_simsched.Heap
module Trace = Pbca_simsched.Trace
module Replay = Pbca_simsched.Replay

(* ------------------------------- heap --------------------------------- *)

let test_heap_order =
  qcheck ~count:200 "heap pops in sorted order"
    QCheck2.Gen.(list (pair (int_bound 1000) (int_bound 1000)))
    (fun items ->
      let h = Heap.create () in
      List.iter (fun (k, p) -> Heap.push h ~key:k ~payload:p) items;
      let rec drain acc =
        match Heap.pop h with Some kv -> drain (kv :: acc) | None -> List.rev acc
      in
      let out = drain [] in
      out = List.sort compare items)

let test_heap_basics () =
  let h = Heap.create () in
  Alcotest.(check bool) "fresh empty" true (Heap.is_empty h);
  Heap.push h ~key:5 ~payload:50;
  Heap.push h ~key:1 ~payload:10;
  Alcotest.(check int) "length" 2 (Heap.length h);
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (1, 10));
  Alcotest.(check bool) "pop min" true (Heap.pop h = Some (1, 10))

(* ------------------------------ trace --------------------------------- *)

type job = Job of int * job list

let mk_trace jobs =
  (* cost + spawned children, executed single-threaded *)
  let tr = Trace.create () in
  let rec exec (Job (cost, children)) =
    Trace.run tr ~deps:[ Trace.capture tr ] (fun () ->
        Trace.tick tr cost;
        List.iter exec children)
  in
  List.iter exec jobs;
  tr

let test_trace_records () =
  let tr = mk_trace [ Job (10, [ Job (5, []); Job (7, []) ]) ] in
  let ts = Trace.tasks tr in
  Alcotest.(check int) "three tasks" 3 (List.length ts);
  Alcotest.(check int) "total work" 22 (Trace.total_work tr)

let test_trace_disabled () =
  let tr = Trace.disabled in
  Trace.run tr ~deps:[] (fun () -> Trace.tick tr 100);
  Alcotest.(check int) "nothing recorded" 0 (List.length (Trace.tasks tr));
  Alcotest.(check bool) "capture none" true (Trace.capture tr = None)

(* ------------------------------ replay -------------------------------- *)

let chain n cost =
  (* n tasks, each depending on the previous one's completion *)
  List.init n (fun i ->
      {
        Trace.id = i;
        label = "t";
        cost;
        deps =
          (if i = 0 then [] else [ { Trace.dep_task = i - 1; dep_offset = max_int } ]);
        epoch = 0;
      })

let independent n cost =
  List.init n (fun i -> { Trace.id = i; label = "t"; cost; deps = []; epoch = 0 })

let test_replay_single_thread_is_total_work () =
  let r = Replay.simulate ~threads:1 (independent 10 7) in
  Alcotest.(check int) "makespan = total" 70 r.makespan;
  Alcotest.(check int) "total work" 70 r.total_work

let test_replay_infinite_threads_is_critical_path () =
  let r = Replay.simulate ~threads:64 (independent 10 7) in
  Alcotest.(check int) "all parallel" 7 r.makespan;
  let rc = Replay.simulate ~threads:64 (chain 10 7) in
  Alcotest.(check int) "chain stays serial" 70 rc.makespan;
  Alcotest.(check int) "critical path" 70 rc.critical_path

let test_replay_monotone () =
  let tasks = independent 40 3 @ chain 5 11 in
  (* re-id to keep ids unique *)
  let tasks =
    List.mapi (fun i (t : Trace.task) ->
        { t with id = (if t.deps = [] then i else t.id + 1000);
          deps = List.map (fun (d : Trace.dep) -> { d with dep_task = d.dep_task + 1000 }) t.deps })
      tasks
  in
  let prev = ref max_int in
  List.iter
    (fun threads ->
      let r = Replay.simulate ~threads tasks in
      Alcotest.(check bool)
        (Printf.sprintf "non-increasing at %d threads" threads)
        true
        (r.makespan <= !prev);
      prev := r.makespan)
    [ 1; 2; 4; 8; 16; 64 ]

let test_replay_speedup_bounded () =
  let tasks = independent 100 5 in
  List.iter
    (fun threads ->
      let r = Replay.simulate ~threads tasks in
      let speedup = float_of_int r.total_work /. float_of_int r.makespan in
      Alcotest.(check bool) "speedup <= threads" true
        (speedup <= float_of_int threads +. 1e-9);
      Alcotest.(check bool) "busy fraction sane" true (r.busy <= 1.0 +. 1e-9))
    [ 1; 3; 7; 16 ]

let test_replay_dep_offset () =
  (* B can start once A has executed 2 of its 10 units *)
  let tasks =
    [
      { Trace.id = 0; label = "a"; cost = 10; deps = []; epoch = 0 };
      {
        Trace.id = 1;
        label = "b";
        cost = 3;
        deps = [ { Trace.dep_task = 0; dep_offset = 2 } ];
        epoch = 0;
      };
    ]
  in
  let r = Replay.simulate ~threads:2 tasks in
  (* b runs during a: finishes at 2+3=5 < 10 *)
  Alcotest.(check int) "overlap honored" 10 r.makespan;
  let r1 = Replay.simulate ~threads:1 tasks in
  Alcotest.(check int) "serial sum" 13 r1.makespan

let test_replay_barrier_epochs () =
  let e0 = independent 8 5 in
  let e1 =
    List.map (fun (t : Trace.task) -> { t with id = t.id + 100; epoch = 1 })
      (independent 8 5)
  in
  let r = Replay.simulate ~threads:8 (e0 @ e1) in
  (* each epoch takes 5 at 8 threads; barrier forces 5 + 5 *)
  Alcotest.(check int) "epochs serialize" 10 r.makespan

let test_replay_from_real_trace () =
  let tr = mk_trace [ Job (50, List.init 10 (fun _ -> Job (20, []))) ] in
  let r1 = Replay.simulate ~threads:1 (Trace.tasks tr) in
  let r8 = Replay.simulate ~threads:8 (Trace.tasks tr) in
  Alcotest.(check int) "serial = total work" r1.total_work r1.makespan;
  Alcotest.(check bool) "parallel faster" true (r8.makespan < r1.makespan);
  (* children spawned at the parent's current progress point: the first
     child cannot start before the parent accumulated its 50 units *)
  Alcotest.(check bool) "spawn offsets respected" true (r8.makespan >= 70)

let test_parser_trace_speedup_shape =
  slow "replay of a real parse trace: speedup grows then saturates"
    (fun () ->
      let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 150 } in
      let trace = Trace.create () in
      let pool = Pbca_concurrent.Task_pool.create ~threads:2 in
      ignore (Pbca_core.Parallel.parse_and_finalize ~trace ~pool r.image);
      let s1 = Replay.speedup ~threads:1 trace in
      let s8 = Replay.speedup ~threads:8 trace in
      let s64 = Replay.speedup ~threads:64 trace in
      Alcotest.(check bool) "s1 ~ 1" true (abs_float (s1 -. 1.0) < 0.01);
      Alcotest.(check bool) "8 threads helps" true (s8 > 2.0);
      Alcotest.(check bool) "monotone" true (s64 >= s8 -. 0.01);
      Alcotest.(check bool) "below linear" true (s64 < 64.0))

let suite =
  [
    test_heap_order;
    quick "heap basics" test_heap_basics;
    quick "trace records tasks and work" test_trace_records;
    quick "disabled trace is free" test_trace_disabled;
    quick "replay: 1 thread = total work" test_replay_single_thread_is_total_work;
    quick "replay: chain = critical path" test_replay_infinite_threads_is_critical_path;
    quick "replay: makespan monotone in threads" test_replay_monotone;
    quick "replay: speedup bounded by threads" test_replay_speedup_bounded;
    quick "replay: dependency offsets" test_replay_dep_offset;
    quick "replay: barriers serialize epochs" test_replay_barrier_epochs;
    quick "replay: real fork-join trace" test_replay_from_real_trace;
    test_parser_trace_speedup_shape;
  ]

(* ---------------------- list-scheduling bounds ------------------------- *)

(* Graham's bound for any list schedule: makespan <= W/T + CP. Checked on
   random DAGs (with the bus model off). *)
let gen_dag : Trace.task list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 60 in
  let* costs = list_repeat n (int_range 1 50) in
  let* dep_picks = list_repeat n (int_bound 1000) in
  return
    (List.mapi
       (fun i cost ->
         let deps =
           if i = 0 then []
           else begin
             let pick = List.nth dep_picks i in
             if pick mod 3 = 0 then []
             else
               [ { Trace.dep_task = pick mod i; dep_offset = max_int } ]
           end
         in
         { Trace.id = i; label = "t"; cost; deps; epoch = 0 })
       costs)

let test_graham_bound =
  qcheck ~count:200 "replay respects Graham's bound on random DAGs" gen_dag
    (fun tasks ->
      List.for_all
        (fun threads ->
          let r = Replay.simulate ~bus:0.0 ~threads tasks in
          let bound =
            (float_of_int r.total_work /. float_of_int threads)
            +. float_of_int r.critical_path
          in
          float_of_int r.makespan <= bound +. 1.0
          && r.makespan >= r.critical_path
          && r.makespan * threads >= r.total_work)
        [ 1; 2; 4; 13 ])

let test_bus_caps_speedup =
  qcheck ~count:100 "bus model caps speedup at 1/bus" gen_dag (fun tasks ->
      (* scale costs up so the integer bus floor's rounding is negligible *)
      let tasks =
        List.map (fun (t : Trace.task) -> { t with cost = t.cost * 100 }) tasks
      in
      let r = Replay.simulate ~bus:0.1 ~threads:64 tasks in
      let speedup = float_of_int r.total_work /. float_of_int (max 1 r.makespan) in
      speedup <= 10.0 *. 1.02)

let test_trace_nested_tasks () =
  let tr = Trace.create () in
  Trace.run tr ~deps:[] (fun () ->
      Trace.tick tr 5;
      Trace.run tr ~deps:[ Trace.capture tr ] (fun () -> Trace.tick tr 7);
      (* the outer task's accounting resumes after the inner one *)
      Trace.tick tr 3);
  let tasks = Trace.tasks tr in
  Alcotest.(check int) "two tasks" 2 (List.length tasks);
  let costs = List.sort compare (List.map (fun (t : Trace.task) -> t.cost) tasks) in
  Alcotest.(check (list int)) "costs attributed to the right task" [ 7; 8 ] costs

let suite =
  suite
  @ [
      test_graham_bound;
      test_bus_caps_speedup;
      quick "trace: nested tasks account separately" test_trace_nested_tasks;
    ]
