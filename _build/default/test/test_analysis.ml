(* Tests for the post-CFG analyses: dominators, loops, liveness, stack
   heights — the capabilities hpcstruct and BinFeat consume. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Spec = Pbca_codegen.Spec
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module FV = Pbca_analysis.Func_view
module Dom = Pbca_analysis.Dominators
module Loops = Pbca_analysis.Loops
module Live = Pbca_analysis.Liveness
module SH = Pbca_analysis.Stack_height

let view_of name funcs =
  let image = (emit_spec (mk_spec funcs)).image in
  let g = parse_serial image in
  let f = get_func g name in
  (g, FV.make g f)

let idx_of fv addr_rank =
  (* blocks sorted by start; rank = position *)
  ignore fv;
  addr_rank

let test_view_shape () =
  let g, fv = view_of "diamond" [ diamond_fun () ] in
  ignore g;
  Alcotest.(check int) "blocks" 4 (FV.n_blocks fv);
  Alcotest.(check int) "entry index" 0 (FV.entry_index fv);
  (* entry has two successors; join has one *)
  Alcotest.(check int) "entry succs" 2 (List.length fv.succ.(0))

let test_dominators_diamond () =
  let _, fv = view_of "diamond" [ diamond_fun () ] in
  let dom = Dom.compute fv in
  let entry = 0 in
  for i = 0 to FV.n_blocks fv - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "entry dominates %d" i)
      true
      (Dom.dominates dom entry (idx_of fv i))
  done;
  (* neither branch arm dominates the join *)
  let join = 2 in
  Alcotest.(check bool) "then-arm does not dominate join" false
    (Dom.dominates dom 1 join);
  Alcotest.(check bool) "else-arm does not dominate join" false
    (Dom.dominates dom 3 join);
  Alcotest.(check int) "join's idom is the entry" entry dom.idom.(join)

let test_dominators_reflexive () =
  let _, fv = view_of "looper" [ loop_fun () ] in
  let dom = Dom.compute fv in
  for i = 0 to FV.n_blocks fv - 1 do
    Alcotest.(check bool) "reflexive" true (Dom.dominates dom i i)
  done

let test_loops_simple () =
  let _, fv = view_of "looper" [ loop_fun () ] in
  let dom = Dom.compute fv in
  let loops = Loops.compute fv dom in
  Alcotest.(check int) "one loop" 1 (Loops.loop_count loops);
  Alcotest.(check int) "max depth 1" 1 (Loops.max_depth loops);
  let l = loops.loops.(0) in
  Alcotest.(check int) "header is block 1" 1 l.header;
  Alcotest.(check bool) "body has header and latch" true
    (List.mem 1 l.body && List.mem 2 l.body);
  Alcotest.(check bool) "exit not in body" false (List.mem 3 l.body);
  Alcotest.(check int) "no parent" 0
    (match l.parent with None -> 0 | Some _ -> 1)

let nested_loop_fun () =
  (* 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner latch-> 2) ; 2 ->exit 4(outer latch -> 1); 1 -> 5 ret *)
  mk_fspec ~name:"nested"
    [
      blk ~body:[ Insn.Mov_ri (Reg.r1, 0) ] Spec.T_fall;
      blk ~body:[ Insn.Cmp_ri (Reg.r1, 9) ] (Spec.T_cond (Insn.Ge, 5));
      blk ~body:[ Insn.Cmp_ri (Reg.r2, 3) ] (Spec.T_cond (Insn.Ge, 4));
      blk ~body:[ Insn.Add_ri (Reg.r2, 1) ] (Spec.T_jmp 2);
      blk ~body:[ Insn.Add_ri (Reg.r1, 1) ] (Spec.T_jmp 1);
      blk Spec.T_ret;
    ]

let test_loops_nested () =
  let _, fv = view_of "nested" [ nested_loop_fun () ] in
  let dom = Dom.compute fv in
  let loops = Loops.compute fv dom in
  Alcotest.(check int) "two loops" 2 (Loops.loop_count loops);
  Alcotest.(check int) "max depth 2" 2 (Loops.max_depth loops);
  (* the inner loop's parent is the outer loop *)
  let with_parent =
    Array.to_list loops.loops |> List.filter (fun l -> l.Loops.parent <> None)
  in
  Alcotest.(check int) "one nested loop" 1 (List.length with_parent)

let test_liveness_simple () =
  (* r1 set in entry, used in the ret block -> live across the middle;
     jumps force real block boundaries (plain fall-through runs merge) *)
  let f =
    mk_fspec ~name:"lv" ~frame:false
      [
        blk ~body:[ Insn.Mov_ri (Reg.r1, 5) ] (Spec.T_jmp 1);
        blk ~body:[ Insn.Mov_ri (Reg.r3, 1) ] (Spec.T_jmp 2);
        blk ~body:[ Insn.Mov_rr (Reg.r0, Reg.r1) ] Spec.T_ret;
      ]
  in
  let g, fv = view_of "lv" [ f ] in
  let live = Live.compute g fv in
  (* fall-blocks merged: find the block defining r0 (the last one) *)
  let n = FV.n_blocks fv in
  Alcotest.(check bool) "r1 live into the last block" true
    (Pbca_isa.Reg.Set.mem Reg.r1 live.live_in.(n - 1))

let test_liveness_kill () =
  let f =
    mk_fspec ~name:"kl" ~frame:false
      [
        blk ~body:[ Insn.Mov_ri (Reg.r2, 1) ] Spec.T_fall;
        blk ~body:[ Insn.Mov_ri (Reg.r2, 2); Insn.Mov_rr (Reg.r0, Reg.r2) ]
          Spec.T_ret;
      ]
  in
  let g, fv = view_of "kl" [ f ] in
  let live = Live.compute g fv in
  (* the redefinition kills r2: not live into the block *)
  let n = FV.n_blocks fv in
  Alcotest.(check bool) "killed register not live-in" false
    (Pbca_isa.Reg.Set.mem Reg.r2 live.live_in.(n - 1))

let test_liveness_fixpoint_stable () =
  let g, fv = view_of "nested" [ nested_loop_fun () ] in
  let a = Live.compute g fv in
  let b = Live.compute g fv in
  Alcotest.(check bool) "recomputation identical" true
    (a.live_in = b.live_in && a.live_out = b.live_out)

let test_stack_height_frame () =
  let f =
    mk_fspec ~name:"sh" ~frame:true
      [ blk ~body:[ Insn.Push Reg.r1; Insn.Pop Reg.r2 ] Spec.T_ret ]
  in
  let g, fv = view_of "sh" [ f ] in
  let sh = SH.compute g fv in
  Alcotest.(check bool) "entry height 0" true (sh.at_entry.(0) = SH.Height 0);
  (* exit passes through Leave -> Top (non-constant restore) *)
  Alcotest.(check bool) "exit is not bottom" true (sh.at_exit.(0) <> SH.Bottom)

let test_stack_height_balanced () =
  let f =
    mk_fspec ~name:"bal" ~frame:false
      [
        blk ~body:[ Insn.Push Reg.r1; Insn.Push Reg.r2 ] Spec.T_fall;
        blk ~body:[ Insn.Pop Reg.r2; Insn.Pop Reg.r1 ] Spec.T_ret;
      ]
  in
  let g, fv = view_of "bal" [ f ] in
  let sh = SH.compute g fv in
  let n = FV.n_blocks fv in
  Alcotest.(check bool) "net zero at exit" true
    (sh.at_exit.(n - 1) = SH.Height 0)

let test_stack_height_join () =
  Alcotest.(check bool) "bottom join x" true (SH.join SH.Bottom (SH.Height 3) = SH.Height 3);
  Alcotest.(check bool) "conflict joins to top" true
    (SH.join (SH.Height 1) (SH.Height 2) = SH.Top);
  Alcotest.(check bool) "equal heights join" true
    (SH.join (SH.Height 4) (SH.Height 4) = SH.Height 4)

let test_analysis_on_corpus =
  slow "analyses run on every function of a generated binary" (fun () ->
      let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 60 } in
      let g = parse_serial r.image in
      List.iter
        (fun f ->
          let fv = FV.make g f in
          let dom = Dom.compute fv in
          let loops = Loops.compute fv dom in
          let live = Live.compute g fv in
          let sh = SH.compute g fv in
          Alcotest.(check bool) "depth bounded" true
            (Loops.max_depth loops <= FV.n_blocks fv);
          Alcotest.(check bool) "liveness arrays sized" true
            (Array.length live.live_in = FV.n_blocks fv);
          Alcotest.(check bool) "heights sized" true
            (Array.length sh.at_entry = FV.n_blocks fv))
        (Cfg.funcs_list g))

let suite =
  [
    quick "func view shape" test_view_shape;
    quick "dominators: diamond" test_dominators_diamond;
    quick "dominators: reflexive" test_dominators_reflexive;
    quick "loops: single natural loop" test_loops_simple;
    quick "loops: nesting" test_loops_nested;
    quick "liveness: live across blocks" test_liveness_simple;
    quick "liveness: kill" test_liveness_kill;
    quick "liveness: fixpoint stable" test_liveness_fixpoint_stable;
    quick "stack height: frames" test_stack_height_frame;
    quick "stack height: balanced push/pop" test_stack_height_balanced;
    quick "stack height: join lattice" test_stack_height_join;
    test_analysis_on_corpus;
  ]
