(* Direct concurrency tests of the five parsing invariants (paper Section
   5.2), driving the Cfg primitives from racing domains — the Figure 1
   scenario made executable. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Insn = Pbca_isa.Insn
module Image = Pbca_binfmt.Image
module Barrier = Pbca_concurrent.Barrier

(* A common code area: a run of nops ending in one control-flow
   instruction — several "threads" branch into it at different offsets,
   as in Figure 1. *)
let common_area_image () =
  let buf = Buffer.create 32 in
  for _ = 1 to 10 do
    Pbca_isa.Codec.encode buf Insn.Nop
  done;
  Pbca_isa.Codec.encode buf Insn.Ret;
  let tab = Pbca_binfmt.Symtab.create () in
  Image.make ~name:"common" ~entry:0x1000
    ~sections:[ Pbca_binfmt.Section.make ~name:".text" ~addr:0x1000 (Buffer.to_bytes buf) ]
    tab

(* Replicate the linear-parse + register-end sequence of the parser for a
   block starting at [start] (no caches, no edges beyond the terminator
   marker). *)
let parse_one g (b : Cfg.block) =
  let rec scan a =
    match Image.decode_at g.Cfg.image a with
    | None -> ()
    | Some (insn, len) ->
      if Pbca_isa.Semantics.is_control_flow insn then
        Cfg.register_end g b ~end_:(a + len)
          ~on_win:(fun blk -> Atomic.set blk.Cfg.b_term (Some insn))
          ~on_done:(fun _ -> ())
      else scan (a + len)
  in
  scan b.Cfg.b_start

let run_figure1_once starts =
  let image = common_area_image () in
  let g = Cfg.create image in
  let n = List.length starts in
  let barrier = Barrier.create n in
  let domains =
    List.map
      (fun start ->
        Domain.spawn (fun () ->
            let b, created = Cfg.find_or_create_block g start in
            Barrier.await barrier;
            (* everyone races into the common area simultaneously *)
            if created then parse_one g b;
            created))
      starts
  in
  let created = List.map Domain.join domains in
  (g, created)

let check_figure1_result g starts =
  let sorted = List.sort compare starts in
  let last_end = 0x1000 + 10 + 1 in
  (* expected block partition: consecutive [s_i, s_i+1) plus the tail *)
  let expected =
    List.mapi
      (fun i s ->
        let e =
          match List.nth_opt sorted (i + 1) with
          | Some next -> next
          | None -> last_end
        in
        (s, e))
      sorted
  in
  List.iter
    (fun (s, e) ->
      match Pbca_core.Addr_map.find g.Cfg.blocks s with
      | None -> Alcotest.failf "no block at 0x%x" s
      | Some b ->
        Alcotest.(check int)
          (Printf.sprintf "end of block 0x%x" s)
          e (Cfg.block_end b))
    expected;
  (* Invariant 2: exactly one block registered per end address *)
  List.iter
    (fun (s, e) ->
      match Pbca_core.Addr_map.find g.Cfg.ends e with
      | Some owner ->
        Alcotest.(check int)
          (Printf.sprintf "ends[0x%x] owner" e)
          s owner.Cfg.b_start
      | None -> Alcotest.failf "no ends entry for 0x%x" e)
    expected;
  (* Invariant 3: only the final block carries the terminator *)
  let with_term =
    List.filter
      (fun (s, _) ->
        match Pbca_core.Addr_map.find g.Cfg.blocks s with
        | Some b -> Atomic.get b.Cfg.b_term <> None
        | None -> false)
      expected
  in
  Alcotest.(check int) "exactly one terminator owner" 1 (List.length with_term);
  (* Invariant 4: the split chain is stitched with fall-through edges *)
  let rec pairs = function
    | (s1, e1) :: ((s2, _) :: _ as rest) ->
      Alcotest.(check int) "adjacent" e1 s2;
      (match Pbca_core.Addr_map.find g.Cfg.blocks s1 with
      | Some b ->
        let has_ft =
          List.exists
            (fun (e : Cfg.edge) ->
              e.e_kind = Cfg.Fallthrough && e.e_dst.Cfg.b_start = s2)
            (Cfg.out_edges b)
        in
        Alcotest.(check bool)
          (Printf.sprintf "fallthrough 0x%x -> 0x%x" s1 s2)
          true has_ft;
        Alcotest.(check int)
          (Printf.sprintf "single live out-edge of 0x%x" s1)
          1
          (List.length (Cfg.out_edges b))
      | None -> ());
      pairs rest
    | _ -> ()
  in
  pairs expected

let test_figure1_three_threads () =
  (* offsets 0x4, 0xA, 0xD of the paper's figure, scaled to our encoding *)
  for _ = 1 to 50 do
    let starts = [ 0x1000; 0x1003; 0x1007 ] in
    let g, created = run_figure1_once starts in
    Alcotest.(check int) "each start created once" 3
      (List.length (List.filter (fun c -> c) created));
    check_figure1_result g starts
  done

let test_figure1_same_target () =
  (* several threads branch to the SAME address: Invariant 1 gives one
     winner; the rest leave the common area (Figure 1a, T3/T4/T5) *)
  for _ = 1 to 50 do
    let image = common_area_image () in
    let g = Cfg.create image in
    let barrier = Barrier.create 4 in
    let domains =
      List.init 4 (fun _ ->
          Domain.spawn (fun () ->
              Barrier.await barrier;
              let b, created = Cfg.find_or_create_block g 0x1005 in
              if created then parse_one g b;
              created))
    in
    let created = List.map Domain.join domains in
    Alcotest.(check int) "one winner" 1
      (List.length (List.filter (fun c -> c) created));
    let b = Option.get (Pbca_core.Addr_map.find g.Cfg.blocks 0x1005) in
    Alcotest.(check int) "parsed to the terminator" (0x1000 + 11)
      (Cfg.block_end b)
  done

let test_figure1_random_offsets () =
  let rng = Pbca_codegen.Rng.create 2025 in
  for _ = 1 to 30 do
    (* any distinct offsets within the nop run must converge to the same
       partition regardless of schedule *)
    let all = [ 0x1000; 0x1001; 0x1002; 0x1004; 0x1006; 0x1008; 0x1009 ] in
    let k = 2 + Pbca_codegen.Rng.int rng 3 in
    let rec pick acc n =
      if n = 0 then acc
      else
        let c = List.nth all (Pbca_codegen.Rng.int rng (List.length all)) in
        if List.mem c acc then pick acc n else pick (c :: acc) (n - 1)
    in
    let starts = pick [] k in
    let g, _ = run_figure1_once starts in
    check_figure1_result g starts
  done

let test_invariant5_function_creation () =
  let image = common_area_image () in
  let g = Cfg.create image in
  let barrier = Barrier.create 4 in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            Barrier.await barrier;
            let _, created =
              Cfg.find_or_create_func g
                ~name:(Printf.sprintf "from_domain_%d" i)
                ~from_symtab:false 0x1000
            in
            created))
  in
  let created = List.map Domain.join domains in
  Alcotest.(check int) "one function winner (Invariant 5)" 1
    (List.length (List.filter (fun c -> c) created));
  Alcotest.(check int) "single function in the map" 1
    (List.length (Cfg.funcs_list g))

let test_add_edge_at_end_vs_split () =
  (* a call-fall-through firing concurrently with a split of the same call
     block must serialize on the ends-entry lock: the edge lands on
     whichever fragment owns the end, never on a stale block *)
  for _ = 1 to 50 do
    let image = common_area_image () in
    let g = Cfg.create image in
    let b0, _ = Cfg.find_or_create_block g 0x1000 in
    parse_one g b0;
    let end_ = 0x1000 + 11 in
    let barrier = Barrier.create 2 in
    let splitter =
      Domain.spawn (fun () ->
          Barrier.await barrier;
          let b, _ = Cfg.find_or_create_block g 0x1006 in
          parse_one g b)
    in
    let firer =
      Domain.spawn (fun () ->
          Barrier.await barrier;
          Cfg.add_edge_at_end g ~end_ ~dst_addr:end_ Cfg.Call_fallthrough)
    in
    ignore (Domain.join firer);
    Domain.join splitter;
    (* whoever owns the end now must carry the fall-through edge *)
    let owner = Option.get (Pbca_core.Addr_map.find g.Cfg.ends end_) in
    Alcotest.(check int) "owner is the split tail" 0x1006 owner.Cfg.b_start;
    let has_ft =
      List.exists
        (fun (e : Cfg.edge) -> e.e_kind = Cfg.Call_fallthrough)
        (Cfg.out_edges owner)
    in
    Alcotest.(check bool) "fall-through on the live owner" true has_ft
  done

let suite =
  [
    quick "figure 1: three racing threads, exact partition"
      test_figure1_three_threads;
    quick "figure 1: same branch target, one winner" test_figure1_same_target;
    quick "figure 1: random offsets converge" test_figure1_random_offsets;
    quick "invariant 5: unique function creation" test_invariant5_function_creation;
    quick "call-fall-through vs concurrent split" test_add_edge_at_end_vs_split;
  ]
