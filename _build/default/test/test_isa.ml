(* Tests for the synthetic ISA: registers, codec, semantics. *)

open Tutil
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Codec = Pbca_isa.Codec
module Semantics = Pbca_isa.Semantics

(* generator for arbitrary well-formed instructions *)
let gen_insn : Insn.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg = map Reg.of_int (int_bound 15) in
  let imm32 = map (fun x -> x - 500_000) (int_bound 1_000_000) in
  let disp16 = map (fun x -> x - 30_000) (int_bound 60_000) in
  let imm8 = int_bound 255 in
  let imm16 = int_bound 0xffff in
  let scale = oneofl [ 1; 2; 4; 8 ] in
  let cond = oneofl [ Insn.Eq; Ne; Lt; Ge; Gt; Le ] in
  oneof
    [
      return Insn.Nop;
      return Insn.Halt;
      map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg;
      map2 (fun a v -> Insn.Mov_ri (a, v)) reg imm32;
      map3 (fun a b d -> Insn.Load (a, b, d)) reg reg disp16;
      map3 (fun a d b -> Insn.Store (a, d, b)) reg disp16 reg;
      map2 (fun a d -> Insn.Lea (a, d)) reg imm32;
      map2 (fun a b -> Insn.Add (a, b)) reg reg;
      map2 (fun a b -> Insn.Sub (a, b)) reg reg;
      map2 (fun a b -> Insn.Mul (a, b)) reg reg;
      map2 (fun a b -> Insn.And_ (a, b)) reg reg;
      map2 (fun a b -> Insn.Or_ (a, b)) reg reg;
      map2 (fun a b -> Insn.Xor (a, b)) reg reg;
      map2 (fun a n -> Insn.Shl (a, n)) reg imm8;
      map2 (fun a n -> Insn.Shr (a, n)) reg imm8;
      map2 (fun a v -> Insn.Add_ri (a, v)) reg imm32;
      map2 (fun a b -> Insn.Cmp_rr (a, b)) reg reg;
      map2 (fun a v -> Insn.Cmp_ri (a, v)) reg imm32;
      map (fun a -> Insn.Push a) reg;
      map (fun a -> Insn.Pop a) reg;
      map (fun n -> Insn.Enter n) imm16;
      return Insn.Leave;
      map (fun d -> Insn.Jmp d) imm32;
      map2 (fun c d -> Insn.Jcc (c, d)) cond imm32;
      map (fun a -> Insn.Jmp_ind a) reg;
      map (fun d -> Insn.Call d) imm32;
      map (fun a -> Insn.Call_ind a) reg;
      return Insn.Ret;
      map2
        (fun (d, b) (i, s) -> Insn.Load_idx (d, b, i, s))
        (pair reg reg) (pair reg scale);
    ]

let encode_one i =
  let b = Buffer.create 8 in
  Codec.encode b i;
  Buffer.to_bytes b

let test_roundtrip =
  qcheck ~count:1000 "codec: decode (encode i) = i" gen_insn (fun i ->
      let bytes = encode_one i in
      match Codec.decode bytes ~pos:0 with
      | Some (j, len) -> Insn.equal i j && len = Bytes.length bytes
      | None -> false)

let test_lengths =
  qcheck ~count:1000 "codec: encoded_length agrees with encode" gen_insn
    (fun i -> Codec.encoded_length i = Bytes.length (encode_one i))

let test_decode_total =
  qcheck ~count:1000 "codec: decode never crashes on random bytes"
    QCheck2.Gen.(bytes_size (int_range 0 16))
    (fun buf ->
      match Codec.decode buf ~pos:0 with
      | Some (_, len) -> len >= 1 && len <= Codec.max_length && len <= Bytes.length buf
      | None -> true)

let test_decode_oob () =
  let b = encode_one (Insn.Mov_ri (Reg.r0, 42)) in
  (* truncating any suffix must fail cleanly *)
  for keep = 0 to Bytes.length b - 1 do
    match Codec.decode (Bytes.sub b 0 keep) ~pos:0 with
    | Some _ -> Alcotest.failf "decoded from %d-byte prefix" keep
    | None -> ()
  done

let test_bad_register () =
  (* register field 0x1f is invalid for mov_rr *)
  let buf = Bytes.of_string "\x10\x1f\x01" in
  Alcotest.(check bool) "invalid register rejected" true
    (Codec.decode buf ~pos:0 = None)

let test_flow_targets () =
  let check insn len expect =
    let got = Semantics.flow ~addr:0x100 ~len insn in
    if got <> expect then Alcotest.fail "unexpected flow"
  in
  check (Insn.Jmp 10) 5 (Semantics.Jump (0x100 + 5 + 10));
  check (Insn.Jmp (-20)) 5 (Semantics.Jump (0x100 + 5 - 20));
  check (Insn.Jcc (Insn.Eq, 6)) 6 (Semantics.Cond_jump (0x100 + 6 + 6));
  check (Insn.Call 0) 5 (Semantics.Call_direct 0x105);
  check Insn.Ret 1 Semantics.Return;
  check Insn.Halt 1 Semantics.Stop;
  check (Insn.Jmp_ind Reg.r0) 2 Semantics.Jump_indirect;
  check (Insn.Call_ind Reg.r0) 2 Semantics.Call_indirect;
  check Insn.Nop 1 Semantics.Fallthrough

let test_is_control_flow =
  qcheck ~count:500 "semantics: control flow iff non-fallthrough" gen_insn
    (fun i ->
      let cf = Semantics.is_control_flow i in
      let fl = Semantics.flow ~addr:0 ~len:(Codec.encoded_length i) i in
      cf = (fl <> Semantics.Fallthrough))

let test_defs_uses_valid =
  qcheck ~count:500 "semantics: defs/uses are valid register sets" gen_insn
    (fun i ->
      let ok s = s >= 0 && s < 1 lsl Reg.count in
      ok (Semantics.defs i) && ok (Semantics.uses i))

let test_mov_def_use () =
  let i = Insn.Mov_rr (Reg.r1, Reg.r2) in
  Alcotest.(check bool) "defs r1" true (Reg.Set.mem Reg.r1 (Semantics.defs i));
  Alcotest.(check bool) "uses r2" true (Reg.Set.mem Reg.r2 (Semantics.uses i));
  Alcotest.(check bool) "does not use r1" false
    (Reg.Set.mem Reg.r1 (Semantics.uses i))

let test_sp_delta () =
  Alcotest.(check (option int)) "push" (Some (-8)) (Semantics.sp_delta (Insn.Push Reg.r1));
  Alcotest.(check (option int)) "pop" (Some 8) (Semantics.sp_delta (Insn.Pop Reg.r1));
  Alcotest.(check (option int)) "enter" (Some (-72)) (Semantics.sp_delta (Insn.Enter 64));
  Alcotest.(check (option int)) "leave non-constant" None (Semantics.sp_delta Insn.Leave);
  Alcotest.(check (option int)) "mov neutral" (Some 0)
    (Semantics.sp_delta (Insn.Mov_ri (Reg.r0, 1)))

let test_teardown () =
  Alcotest.(check bool) "leave tears down" true (Semantics.is_stack_teardown Insn.Leave);
  Alcotest.(check bool) "ret does not" false (Semantics.is_stack_teardown Insn.Ret)

let test_reg_bounds () =
  Alcotest.check_raises "of_int 16 rejected" (Invalid_argument "Reg.of_int")
    (fun () -> ignore (Reg.of_int 16));
  Alcotest.check_raises "of_int -1 rejected" (Invalid_argument "Reg.of_int")
    (fun () -> ignore (Reg.of_int (-1)));
  Alcotest.(check string) "sp name" "sp" (Reg.name Reg.sp);
  Alcotest.(check string) "fp name" "fp" (Reg.name Reg.fp)

let test_regset_laws =
  qcheck ~count:300 "reg sets: union/inter/diff laws"
    QCheck2.Gen.(triple (int_bound 0xffff) (int_bound 0xffff) (int_bound 15))
    (fun (a, b, r) ->
      let open Reg.Set in
      let r = Reg.of_int r in
      union a b = union b a
      && inter a b = inter b a
      && diff (union a b) b = diff a b
      && mem r (add r a)
      && cardinal (add r empty) = 1)

let test_pp_all_insns =
  qcheck ~count:300 "pp: every instruction prints nonempty" gen_insn (fun i ->
      String.length (Insn.to_string i) > 0)

let suite =
  [
    test_roundtrip;
    test_lengths;
    test_decode_total;
    quick "codec: truncation rejected" test_decode_oob;
    quick "codec: bad register rejected" test_bad_register;
    quick "semantics: branch target arithmetic" test_flow_targets;
    test_is_control_flow;
    test_defs_uses_valid;
    quick "semantics: mov defs/uses" test_mov_def_use;
    quick "semantics: sp deltas" test_sp_delta;
    quick "semantics: stack teardown" test_teardown;
    quick "reg: bounds and names" test_reg_bounds;
    test_regset_laws;
    test_pp_all_insns;
  ]

(* -------------------------- golden lengths ----------------------------- *)

let test_length_goldens () =
  let cases =
    [
      (Insn.Nop, 1); (Insn.Halt, 1); (Insn.Leave, 1); (Insn.Ret, 1);
      (Insn.Push Reg.r1, 2); (Insn.Pop Reg.r1, 2);
      (Insn.Jmp_ind Reg.r1, 2); (Insn.Call_ind Reg.r1, 2);
      (Insn.Mov_rr (Reg.r0, Reg.r1), 3); (Insn.Enter 64, 3);
      (Insn.Shl (Reg.r1, 3), 3); (Insn.Cmp_rr (Reg.r0, Reg.r1), 3);
      (Insn.Load_idx (Reg.r0, Reg.r1, Reg.r2, 4), 4);
      (Insn.Load (Reg.r0, Reg.r1, -8), 5); (Insn.Store (Reg.r0, 8, Reg.r1), 5);
      (Insn.Jmp 100, 5); (Insn.Call (-100), 5);
      (Insn.Mov_ri (Reg.r0, 7), 6); (Insn.Lea (Reg.r0, -7), 6);
      (Insn.Add_ri (Reg.r0, 1), 6); (Insn.Cmp_ri (Reg.r0, 1), 6);
      (Insn.Jcc (Insn.Eq, 0), 6);
    ]
  in
  List.iter
    (fun (i, len) ->
      Alcotest.(check int) (Insn.to_string i) len (Codec.encoded_length i))
    cases

let test_immediate_boundaries () =
  let roundtrip i =
    let b = encode_one i in
    match Codec.decode b ~pos:0 with
    | Some (j, _) -> Insn.equal i j
    | None -> false
  in
  Alcotest.(check bool) "imm32 max" true (roundtrip (Insn.Mov_ri (Reg.r0, 0x7fff_ffff)));
  Alcotest.(check bool) "imm32 min" true (roundtrip (Insn.Mov_ri (Reg.r0, -0x8000_0000)));
  Alcotest.(check bool) "disp16 max" true (roundtrip (Insn.Load (Reg.r0, Reg.r1, 0x7fff)));
  Alcotest.(check bool) "disp16 min" true (roundtrip (Insn.Load (Reg.r0, Reg.r1, -0x8000)));
  Alcotest.(check bool) "enter 0" true (roundtrip (Insn.Enter 0));
  Alcotest.(check bool) "enter max" true (roundtrip (Insn.Enter 0xffff));
  Alcotest.check_raises "imm32 overflow rejected"
    (Invalid_argument "Codec: imm32 out of range") (fun () ->
      ignore (encode_one (Insn.Mov_ri (Reg.r0, 0x1_0000_0000))));
  Alcotest.check_raises "disp16 overflow rejected"
    (Invalid_argument "Codec: disp16 out of range") (fun () ->
      ignore (encode_one (Insn.Load (Reg.r0, Reg.r1, 0x8000))));
  Alcotest.check_raises "bad scale rejected"
    (Invalid_argument "Codec: scale must be 1, 2, 4 or 8") (fun () ->
      ignore (encode_one (Insn.Load_idx (Reg.r0, Reg.r1, Reg.r2, 3))))

let test_decode_stream_self_delimits =
  qcheck ~count:200 "codec: concatenated encodings decode in order"
    QCheck2.Gen.(list_size (int_range 1 10) gen_insn)
    (fun insns ->
      let buf = Buffer.create 64 in
      List.iter (Codec.encode buf) insns;
      let bytes = Buffer.to_bytes buf in
      let rec go pos = function
        | [] -> pos = Bytes.length bytes
        | i :: rest -> (
          match Codec.decode bytes ~pos with
          | Some (j, len) -> Insn.equal i j && go (pos + len) rest
          | None -> false)
      in
      go 0 insns)

let suite =
  suite
  @ [
      quick "codec: length goldens" test_length_goldens;
      quick "codec: immediate boundaries" test_immediate_boundaries;
      test_decode_stream_self_delimits;
    ]
