(* Property tests for the CFG operation algebra — the paper's Section 4
   claims, machine-checked on generated binaries. *)

open Tutil
module Ops = Pbca_core.Ops
module Image = Pbca_binfmt.Image
module Rng = Pbca_codegen.Rng

(* small images to drive the pure model *)
let small_image seed =
  let p =
    {
      Profile.default with
      n_funcs = 6;
      seed;
      max_blocks = 6;
      p_jump_table = 0.0;
      n_shared_stubs = 1;
      p_cold = 0.0;
      p_secondary_entry = 0.0;
    }
  in
  (Pbca_codegen.Emit.generate p).image

let entries image =
  List.filter_map
    (fun (s : Pbca_binfmt.Symbol.t) ->
      if Pbca_binfmt.Symbol.is_func s then Some s.offset else None)
    (Pbca_binfmt.Symtab.functions image.Image.symtab)
  |> List.sort_uniq compare

(* advance construction a few random steps to reach interesting mid-states *)
let advance image rng steps g =
  let rec go n g =
    if n = 0 then g
    else
      match g.Ops.cands with
      | [] -> g
      | cs ->
        let t = List.nth cs (Rng.int rng (List.length cs)) in
        let g = Ops.o_ber image g t in
        let g =
          match g.Ops.blocks with
          | [] -> g
          | bs ->
            let b = List.nth bs (Rng.int rng (List.length bs)) in
            Ops.o_dec image g b.Ops.s
          in
        go (n - 1) g
  in
  go steps g

let gen_seed = QCheck2.Gen.int_bound 10_000

let mid_state seed =
  let image = small_image (seed mod 97) in
  let rng = Pbca_codegen.Rng.create seed in
  let g0 = Ops.init (entries image) in
  (image, advance image rng (Pbca_codegen.Rng.int rng 8) g0)

let test_ber_self_commute =
  qcheck ~count:60 "O_BER commutes with itself" gen_seed (fun seed ->
      let image, g = mid_state seed in
      match g.Ops.cands with
      | a :: b :: _ when a <> b ->
        let g1 = Ops.o_ber image (Ops.o_ber image g a) b in
        let g2 = Ops.o_ber image (Ops.o_ber image g b) a in
        Ops.equal g1 g2
      | _ -> true)

let test_dec_self_commute =
  qcheck ~count:60 "O_DEC commutes with itself" gen_seed (fun seed ->
      let image, g = mid_state seed in
      match g.Ops.blocks with
      | a :: b :: _ ->
        let g1 = Ops.o_dec image (Ops.o_dec image g a.Ops.s) b.Ops.s in
        let g2 = Ops.o_dec image (Ops.o_dec image g b.Ops.s) a.Ops.s in
        Ops.equal g1 g2
      | _ -> true)

let test_ber_dec_commute =
  qcheck ~count:60 "O_BER and O_DEC commute" gen_seed (fun seed ->
      let image, g = mid_state seed in
      match (g.Ops.cands, g.Ops.blocks) with
      | t :: _, b :: _ ->
        let g1 = Ops.o_dec image (Ops.o_ber image g t) b.Ops.s in
        let g2 = Ops.o_ber image (Ops.o_dec image g b.Ops.s) t in
        Ops.equal g1 g2
      | _ -> true)

let test_er_self_commute =
  qcheck ~count:60 "O_ER commutes with itself" gen_seed (fun seed ->
      let image, g0 = mid_state seed in
      let g = Ops.construct image g0 in
      match g.Ops.edges with
      | e1 :: e2 :: _ when e1 <> e2 ->
        let a = Ops.o_er (Ops.o_er g e1) e2 in
        let b = Ops.o_er (Ops.o_er g e2) e1 in
        Ops.equal a b
      | _ -> true)

let test_construction_increasing =
  qcheck ~count:40 "construction is increasing under the partial order"
    gen_seed (fun seed ->
      let image, g = mid_state seed in
      (* one O_BER step can only grow the graph *)
      match g.Ops.cands with
      | t :: _ -> Ops.preceq g (Ops.o_ber image g t)
      | [] -> true)

let test_g0_preceq_final =
  qcheck ~count:40 "G0 preceq final graph" gen_seed (fun seed ->
      let image = small_image (seed mod 97) in
      let g0 = Ops.init (entries image) in
      Ops.preceq g0 (Ops.construct image g0))

let test_preceq_reflexive =
  qcheck ~count:40 "preceq is reflexive" gen_seed (fun seed ->
      let _, g = mid_state seed in
      Ops.preceq g g)

let test_iec_monotonic =
  qcheck ~count:40 "delaying O_IEC cannot shrink the result" gen_seed
    (fun seed ->
      let image, g = mid_state seed in
      match g.Ops.blocks with
      | b :: _ -> (
        let targets = [ b.Ops.s ] in
        (* Ox (O_IEC g) preceq O_IEC (Ox g) for an O_BER step Ox *)
        match g.Ops.cands with
        | t :: _ ->
          let lhs = Ops.o_ber image (Ops.o_iec g b.Ops.s targets) t in
          let rhs = Ops.o_iec (Ops.o_ber image g t) b.Ops.s targets in
          Ops.preceq lhs rhs
        | [] -> true)
      | [] -> true)

let test_split_case () =
  (* explicit O_BER block-splitting case on a hand-made function *)
  let spec = mk_spec [ diamond_fun () ] in
  let { Pbca_codegen.Emit.image; _ } = emit_spec spec in
  let e = entries image in
  let g = Ops.construct image (Ops.init e) in
  (* every block is disjoint and nonempty *)
  let rec disjoint = function
    | a :: (b : Ops.block) :: rest ->
      a.Ops.e <= b.Ops.s && a.Ops.s < a.Ops.e && disjoint (b :: rest)
    | [ a ] -> a.Ops.s < a.Ops.e
    | [] -> true
  in
  Alcotest.(check bool) "blocks disjoint" true (disjoint g.Ops.blocks);
  Alcotest.(check bool) "no candidates left" true (g.Ops.cands = []);
  Alcotest.(check bool) "has conditional edges" true
    (List.exists (fun e -> e.Ops.kind = Ops.Cond_taken) g.Ops.edges)

let test_er_removes_unreachable () =
  let spec = mk_spec [ loop_fun () ] in
  let { Pbca_codegen.Emit.image; _ } = emit_spec spec in
  let g = Ops.construct image (Ops.init (entries image)) in
  (* removing the loop-exit edge must drop the return block *)
  match
    List.find_opt (fun e -> e.Ops.kind = Ops.Cond_taken) g.Ops.edges
  with
  | Some e ->
    let g' = Ops.o_er g e in
    Alcotest.(check bool) "fewer blocks" true
      (List.length g'.Ops.blocks < List.length g.Ops.blocks)
  | None -> Alcotest.fail "expected a conditional edge"

let suite =
  [
    test_ber_self_commute;
    test_dec_self_commute;
    test_ber_dec_commute;
    test_er_self_commute;
    test_construction_increasing;
    test_g0_preceq_final;
    test_preceq_reflexive;
    test_iec_monotonic;
    quick "construct on diamond: sane blocks" test_split_case;
    quick "O_ER drops unreachable blocks" test_er_removes_unreachable;
  ]

(* --------------------------- confluence ------------------------------- *)

let test_confluence =
  qcheck ~count:25 "construction is confluent: random orders, same fixpoint"
    QCheck2.Gen.(pair (int_bound 96) (int_bound 10_000))
    (fun (img_seed, order_seed) ->
      let image = small_image img_seed in
      let ents = entries image in
      let reference = Ops.construct image (Ops.init ents) in
      (* drive to the same fixpoint applying operations in random order *)
      let rng = Rng.create order_seed in
      let rec randomized g fuel =
        if fuel = 0 then g
        else
          let g' =
            match (g.Ops.cands, Rng.bool rng 0.5) with
            | c :: _ :: _, true ->
              (* pick a random candidate rather than the first *)
              let cs = g.Ops.cands in
              ignore c;
              Ops.o_ber image g (List.nth cs (Rng.int rng (List.length cs)))
            | c :: _, _ -> Ops.o_ber image g c
            | [], _ -> (
              match g.Ops.blocks with
              | [] -> g
              | bs ->
                let b = List.nth bs (Rng.int rng (List.length bs)) in
                Ops.o_dec image g b.Ops.s)
          in
          if Ops.equal g g' then
            (* no progress on that pick: fall back to the driver *)
            Ops.construct image g
          else randomized g' (fuel - 1)
      in
      let alt = randomized (Ops.init ents) 500 in
      let alt = Ops.construct image alt in
      Ops.equal reference alt)

let test_er_idempotent =
  qcheck ~count:30 "O_ER is idempotent" gen_seed (fun seed ->
      let image, g0 = mid_state seed in
      let g = Ops.construct image g0 in
      match g.Ops.edges with
      | e :: _ -> Ops.equal (Ops.o_er g e) (Ops.o_er (Ops.o_er g e) e)
      | [] -> true)

let test_ber_absorbs_known_start () =
  (* resolving a candidate where a block already starts is the identity on
     blocks (the "second operation is effectively the identity" case of
     Section 4.3) *)
  let image = small_image 5 in
  let ents = entries image in
  let g = Ops.construct image (Ops.init ents) in
  match g.Ops.blocks with
  | b :: _ ->
    let g' = { g with Ops.cands = [ b.Ops.s ] } in
    let g'' = Ops.o_ber image g' b.Ops.s in
    Alcotest.(check bool) "blocks unchanged" true (g''.Ops.blocks = g.Ops.blocks)
  | [] -> Alcotest.fail "no blocks"

let suite =
  suite
  @ [
      test_confluence;
      test_er_idempotent;
      quick "O_BER absorbs an already-started block" test_ber_absorbs_known_start;
    ]
