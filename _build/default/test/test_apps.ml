(* Tests for the two application case studies: hpcstruct and BinFeat. *)

open Tutil
module H = Pbca_hpcstruct.Hpcstruct
module B = Pbca_binfeat.Binfeat
module TP = Pbca_concurrent.Task_pool

let small_image ?(n = 60) ?(seed = 11) () =
  (Pbca_codegen.Emit.generate { Profile.default with n_funcs = n; seed }).image

let test_hpcstruct_runs () =
  let pool = TP.create ~threads:2 in
  let r = H.run_image ~pool (small_image ()) in
  Alcotest.(check bool) "functions found" true (r.n_funcs > 0);
  Alcotest.(check bool) "statements" true (r.n_stmts > 0);
  Alcotest.(check bool) "nonempty output" true (String.length r.output > 0);
  let names = List.map (fun (p : H.phase) -> p.ph_name) r.phases in
  Alcotest.(check (list string)) "phase order"
    [ "dwarf"; "linemap"; "cfg"; "skeleton"; "fill"; "emit" ]
    names

let test_hpcstruct_bytes_entry () =
  let pool = TP.create ~threads:2 in
  let img = small_image () in
  let r = H.run ~pool (Pbca_binfmt.Image.write img) in
  let names = List.map (fun (p : H.phase) -> p.ph_name) r.phases in
  Alcotest.(check bool) "read phase present" true (List.mem "read" names)

let test_hpcstruct_deterministic () =
  let img = small_image () in
  let out threads =
    let pool = TP.create ~threads in
    (H.run_image ~pool img).output
  in
  let o1 = out 1 in
  Alcotest.(check bool) "1 vs 2 threads" true (o1 = out 2);
  Alcotest.(check bool) "1 vs 4 threads" true (o1 = out 4)

let test_hpcstruct_output_complete () =
  let pool = TP.create ~threads:2 in
  let img = small_image () in
  let r = H.run_image ~pool img in
  let g = r.cfg in
  List.iter
    (fun (f : Pbca_core.Cfg.func) ->
      let needle = Printf.sprintf "name=%S" f.f_name in
      let contained =
        let n = String.length needle and m = String.length r.output in
        let rec find i =
          i + n <= m && (String.sub r.output i n = needle || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) (f.f_name ^ " in output") true contained)
    (Pbca_core.Cfg.funcs_list g)

let test_hpcstruct_traces () =
  let pool = TP.create ~threads:2 in
  let r = H.run_image ~pool (small_image ()) in
  List.iter
    (fun (p : H.phase) ->
      match p.ph_trace with
      | Some tr ->
        Alcotest.(check bool)
          (p.ph_name ^ " trace nonempty")
          true
          (Pbca_simsched.Trace.total_work tr > 0)
      | None -> ())
    r.phases;
  Alcotest.(check bool) "phase_wall finds cfg" true (H.phase_wall r "cfg" >= 0.0);
  Alcotest.(check bool) "total wall positive" true (H.total_wall r > 0.0)

let test_binfeat_runs () =
  let pool = TP.create ~threads:2 in
  let imgs = List.init 4 (fun i -> small_image ~n:25 ~seed:(400 + i) ()) in
  let r = B.extract ~pool imgs in
  Alcotest.(check int) "binaries" 4 r.n_binaries;
  Alcotest.(check bool) "functions" true (r.n_funcs > 0);
  Alcotest.(check bool) "features" true (r.n_features > 0);
  Alcotest.(check (list string)) "stage order" [ "cfg"; "if"; "cf"; "df" ]
    (List.map (fun (s : B.stage) -> s.st_name) r.stages)

let sorted_index (r : B.result) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) r.index []
  |> List.sort compare

let test_binfeat_deterministic () =
  let imgs = List.init 3 (fun i -> small_image ~n:20 ~seed:(900 + i) ()) in
  let run threads =
    let pool = TP.create ~threads in
    sorted_index (B.extract ~pool imgs)
  in
  let a = run 1 in
  Alcotest.(check bool) "1 vs 3 threads" true (a = run 3);
  Alcotest.(check bool) "1 vs 4 threads" true (a = run 4)

let test_binfeat_ngrams_handchecked () =
  (* one function: nop; nop; ret gives known 1/2/3-grams *)
  let f =
    mk_fspec ~name:"tiny" ~frame:false
      [ blk ~body:[ Pbca_isa.Insn.Nop; Pbca_isa.Insn.Nop ] Pbca_codegen.Spec.T_ret ]
  in
  let image = (emit_spec (mk_spec [ f ])).image in
  let pool = TP.create ~threads:1 in
  let r = B.extract ~pool [ image ] in
  let get k = Option.value (Hashtbl.find_opt r.index k) ~default:0 in
  Alcotest.(check int) "if1:nop = 2" 2 (get "if1:nop");
  Alcotest.(check int) "if1:ret = 1" 1 (get "if1:ret");
  Alcotest.(check int) "if2:nop,nop = 1" 1 (get "if2:nop,nop");
  Alcotest.(check int) "if2:nop,ret = 1" 1 (get "if2:nop,ret");
  Alcotest.(check int) "if3 = 1" 1 (get "if3:nop,nop,ret");
  Alcotest.(check int) "cf:deg0 for the ret block" 1 (get "cf:deg0")

let test_binfeat_top_features () =
  let pool = TP.create ~threads:2 in
  let r = B.extract ~pool [ small_image ~n:30 () ] in
  let top = B.top_features r 5 in
  Alcotest.(check int) "five results" 5 (List.length top);
  let counts = List.map snd top in
  Alcotest.(check bool) "descending" true
    (counts = List.sort (fun a b -> compare b a) counts);
  Alcotest.(check bool) "stage walls accumulate" true (B.total_wall r > 0.0);
  Alcotest.(check bool) "per-stage lookup" true (B.stage_wall r "if" >= 0.0)

let test_checker_on_apps_corpus =
  slow "apps + checker: parse via hpcstruct matches ground truth" (fun () ->
      let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 40; seed = 5 } in
      let pool = TP.create ~threads:2 in
      let h = H.run_image ~pool r.image in
      check_clean r.ground_truth h.cfg)

let suite =
  [
    quick "hpcstruct: runs with all phases" test_hpcstruct_runs;
    quick "hpcstruct: byte entry point" test_hpcstruct_bytes_entry;
    quick "hpcstruct: output deterministic across threads" test_hpcstruct_deterministic;
    quick "hpcstruct: every function in output" test_hpcstruct_output_complete;
    quick "hpcstruct: phase traces populated" test_hpcstruct_traces;
    quick "binfeat: runs with all stages" test_binfeat_runs;
    quick "binfeat: index deterministic across threads" test_binfeat_deterministic;
    quick "binfeat: n-grams hand-checked" test_binfeat_ngrams_handchecked;
    quick "binfeat: top features sorted" test_binfeat_top_features;
    test_checker_on_apps_corpus;
  ]

(* ------------------------- query API ---------------------------------- *)

let test_query_lookup () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 30; seed = 3 } in
  let pool = TP.create ~threads:2 in
  let h = H.run_image ~pool r.image in
  let dbg_sec = Option.get (Pbca_binfmt.Image.section r.image ".debug") in
  let dbg = Pbca_debuginfo.Codec.decode dbg_sec.Pbca_binfmt.Section.data in
  let q = Pbca_hpcstruct.Query.build h.cfg dbg in
  (* every function entry resolves to its own function *)
  List.iter
    (fun (f : Pbca_core.Cfg.func) ->
      match Pbca_hpcstruct.Query.lookup q f.f_entry_addr with
      | Some cx ->
        Alcotest.(check int)
          (f.f_name ^ " entry resolves to itself")
          f.f_entry_addr cx.Pbca_hpcstruct.Query.cx_entry
      | None -> Alcotest.failf "entry of %s unresolved" f.f_name)
    (Pbca_core.Cfg.funcs_list h.cfg);
  (* an address outside .text resolves to nothing *)
  Alcotest.(check bool) "padding unresolved" true
    (Pbca_hpcstruct.Query.lookup q 0xdead_beef = None)

let test_query_attribute () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 20; seed = 4 } in
  let pool = TP.create ~threads:2 in
  let h = H.run_image ~pool r.image in
  let dbg_sec = Option.get (Pbca_binfmt.Image.section r.image ".debug") in
  let dbg = Pbca_debuginfo.Codec.decode dbg_sec.Pbca_binfmt.Section.data in
  let q = Pbca_hpcstruct.Query.build h.cfg dbg in
  let main = List.hd (Pbca_core.Cfg.funcs_list h.cfg) in
  let samples = List.init 10 (fun _ -> main.f_entry_addr) in
  match Pbca_hpcstruct.Query.attribute q samples with
  | [ (cx, n) ] ->
    Alcotest.(check int) "all ten samples in one bucket" 10 n;
    Alcotest.(check string) "attributed to main" main.f_name
      cx.Pbca_hpcstruct.Query.cx_func
  | other -> Alcotest.failf "expected one bucket, got %d" (List.length other)

(* ----------------------- similarity search ---------------------------- *)

let test_similarity_identity () =
  let img = small_image ~n:15 ~seed:77 () in
  let pool = TP.create ~threads:2 in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool img in
  let f = List.hd (Pbca_core.Cfg.funcs_list g) in
  let v = Pbca_binfeat.Similarity.function_vector g f in
  Alcotest.(check bool) "nonempty vector" true (Hashtbl.length v > 0);
  Alcotest.(check bool) "self-similarity is 1" true
    (abs_float (Pbca_binfeat.Similarity.cosine v v -. 1.0) < 1e-9)

let test_similarity_search_finds_self () =
  let img = small_image ~n:15 ~seed:78 () in
  let pool = TP.create ~threads:2 in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool img in
  let funcs = Pbca_core.Cfg.funcs_list g in
  let target = List.nth funcs (List.length funcs / 2) in
  let query = Pbca_binfeat.Similarity.function_vector g target in
  let hits =
    Pbca_binfeat.Similarity.search ~pool ~query [ ("self", g) ] ~top:3
  in
  match hits with
  | best :: _ ->
    Alcotest.(check string) "top hit is the query function"
      target.Pbca_core.Cfg.f_name best.Pbca_binfeat.Similarity.h_func;
    Alcotest.(check bool) "with score 1" true
      (abs_float (best.h_score -. 1.0) < 1e-9)
  | [] -> Alcotest.fail "no hits"

let test_similarity_empty_vs () =
  let empty : Pbca_binfeat.Similarity.vector = Hashtbl.create 1 in
  let v : Pbca_binfeat.Similarity.vector = Hashtbl.create 1 in
  Hashtbl.replace v "x" 1.0;
  Alcotest.(check bool) "empty has zero similarity" true
    (Pbca_binfeat.Similarity.cosine empty v = 0.0)

let suite =
  suite
  @ [
      quick "query: entry lookups" test_query_lookup;
      quick "query: sample attribution" test_query_attribute;
      quick "similarity: self cosine = 1" test_similarity_identity;
      quick "similarity: search finds the query" test_similarity_search_finds_self;
      quick "similarity: empty vector" test_similarity_empty_vs;
    ]

(* ------------------ compiler identification demo ---------------------- *)

(* The forensics task BinFeat was built for (Rosenblum et al., paper
   Section 1): different "toolchains" leave different statistical
   fingerprints; a nearest-centroid classifier over BinFeat vectors should
   recover the provenance of held-out binaries. *)

let style_a seed =
  { Profile.default with seed; n_funcs = 25; p_frame = 0.95;
    max_body_insns = 9; p_jump_table = 0.2; p_tail_call = 0.0 }

let style_b seed =
  { Profile.default with seed; n_funcs = 25; p_frame = 0.05;
    max_body_insns = 3; p_jump_table = 0.0; p_tail_call = 0.25 }

let corpus_vector pool image =
  let g = Pbca_core.Parallel.parse_and_finalize ~pool image in
  let acc : Pbca_binfeat.Similarity.vector = Hashtbl.create 256 in
  List.iter
    (fun f ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace acc k (v +. Option.value (Hashtbl.find_opt acc k) ~default:0.0))
        (Pbca_binfeat.Similarity.function_vector g f))
    (Pbca_core.Cfg.funcs_list g);
  acc

let centroid vs =
  let acc : Pbca_binfeat.Similarity.vector = Hashtbl.create 256 in
  List.iter
    (fun v ->
      Hashtbl.iter
        (fun k x ->
          Hashtbl.replace acc k (x +. Option.value (Hashtbl.find_opt acc k) ~default:0.0))
        v)
    vs;
  acc

let test_compiler_identification =
  slow "compiler identification by nearest centroid" (fun () ->
      let pool = TP.create ~threads:2 in
      let vec_of style seed =
        corpus_vector pool (Pbca_codegen.Emit.generate (style seed)).image
      in
      let train_a = List.map (vec_of style_a) [ 1; 2; 3 ] in
      let train_b = List.map (vec_of style_b) [ 4; 5; 6 ] in
      let ca = centroid train_a and cb = centroid train_b in
      let classify v =
        if Pbca_binfeat.Similarity.cosine v ca
           >= Pbca_binfeat.Similarity.cosine v cb
        then `A
        else `B
      in
      let tests =
        List.map (fun s -> (vec_of style_a s, `A)) [ 10; 11 ]
        @ List.map (fun s -> (vec_of style_b s, `B)) [ 12; 13 ]
      in
      let correct =
        List.length (List.filter (fun (v, l) -> classify v = l) tests)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d/4 held-out binaries classified" correct)
        true (correct >= 3))

let suite = suite @ [ test_compiler_identification ]
