test/test_parser.ml: Alcotest Atomic Bytes List Option Pbca_binfmt Pbca_checker Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa Printf Profile String Tutil
