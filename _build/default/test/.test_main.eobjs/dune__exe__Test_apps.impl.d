test/test_apps.ml: Alcotest Hashtbl List Option Pbca_binfeat Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_core Pbca_debuginfo Pbca_hpcstruct Pbca_isa Pbca_simsched Printf Profile String Tutil
