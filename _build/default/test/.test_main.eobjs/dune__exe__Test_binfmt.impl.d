test/test_binfmt.ml: Alcotest Bytes Char Domain List Pbca_binfmt Pbca_codegen Printf Profile QCheck2 String Tutil
