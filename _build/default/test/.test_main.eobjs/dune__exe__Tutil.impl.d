test/tutil.ml: Alcotest Array Atomic Format List Pbca_checker Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa QCheck2 QCheck_alcotest String
