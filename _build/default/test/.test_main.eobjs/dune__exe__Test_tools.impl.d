test/test_tools.ml: Alcotest Array Bytes List Pbca_analysis Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa Printf Profile QCheck2 String Tutil
