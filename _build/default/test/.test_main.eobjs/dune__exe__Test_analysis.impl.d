test/test_analysis.ml: Alcotest Array List Pbca_analysis Pbca_codegen Pbca_core Pbca_isa Printf Profile Tutil
