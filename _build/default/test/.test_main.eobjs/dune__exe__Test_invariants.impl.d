test/test_invariants.ml: Alcotest Atomic Buffer Domain List Option Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa Printf Tutil
