test/test_simsched.ml: Alcotest List Pbca_codegen Pbca_concurrent Pbca_core Pbca_simsched Printf Profile QCheck2 Tutil
