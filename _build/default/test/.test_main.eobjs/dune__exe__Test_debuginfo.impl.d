test/test_debuginfo.ml: Alcotest Array Bytes Option Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_debuginfo Profile QCheck2 Tutil
