test/test_ops.ml: Alcotest List Pbca_binfmt Pbca_codegen Pbca_core Profile QCheck2 Tutil
