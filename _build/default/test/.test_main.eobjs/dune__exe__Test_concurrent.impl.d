test/test_concurrent.ml: Alcotest Array Atomic Domain Hashtbl Int List Option Pbca_concurrent QCheck2 Tutil Unix
