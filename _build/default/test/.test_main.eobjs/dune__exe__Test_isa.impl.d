test/test_isa.ml: Alcotest Buffer Bytes List Pbca_isa QCheck2 String Tutil
