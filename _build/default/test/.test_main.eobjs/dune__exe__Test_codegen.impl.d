test/test_codegen.ml: Alcotest Array List Option Pbca_binfmt Pbca_codegen Pbca_core Pbca_isa Profile QCheck2 Tutil
