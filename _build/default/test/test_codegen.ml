(* Tests for the binary generator and its ground truth. *)

open Tutil
module GT = Pbca_codegen.Ground_truth
module Rng = Pbca_codegen.Rng
module Image = Pbca_binfmt.Image
module Semantics = Pbca_isa.Semantics

(* ------------------------------- rng ---------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds =
  qcheck ~count:300 "rng: range stays in bounds"
    QCheck2.Gen.(triple (int_bound 100000) (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let r = Rng.create seed in
      let v = Rng.range r lo (lo + span) in
      v >= lo && v <= lo + span)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

(* ----------------------------- generation ----------------------------- *)

let test_generation_deterministic () =
  let p = { Profile.default with n_funcs = 40; seed = 77 } in
  let a = Pbca_codegen.Emit.generate p in
  let b = Pbca_codegen.Emit.generate p in
  Alcotest.(check bool) "identical images" true
    (Image.write a.image = Image.write b.image);
  Alcotest.(check bool) "identical ground truth" true
    (a.ground_truth = b.ground_truth)

let test_gt_wellformed =
  qcheck ~count:15 "ground truth is well-formed" QCheck2.Gen.(int_bound 500)
    (fun seed ->
      let p =
        { (Profile.coreutils_like (seed mod 20)) with seed = 5000 + seed }
      in
      let r = Pbca_codegen.Emit.generate p in
      let gt = r.ground_truth in
      (* ranges sorted, disjoint, nonempty *)
      List.for_all
        (fun (f : GT.gfun) ->
          let rec ok = function
            | (a, b) :: ((c, _) :: _ as rest) -> a < b && b <= c && ok rest
            | [ (a, b) ] -> a < b
            | [] -> false
          in
          ok f.gf_ranges
          (* the entry lies inside one of the ranges (not necessarily the
             first: a shared stub can sit at a lower address) *)
          && List.exists
               (fun (lo, hi) -> f.gf_entry >= lo && f.gf_entry < hi)
               f.gf_ranges)
        gt.gt_funcs
      (* jump-table jumps decode as indirect jumps *)
      && List.for_all
           (fun (t : GT.jump_table) ->
             match Image.decode_at r.image t.jt_jump_addr with
             | Some (Pbca_isa.Insn.Jmp_ind _, _) -> true
             | _ -> false)
           gt.gt_tables
      (* noreturn call sites decode as calls *)
      && List.for_all
           (fun (c : GT.nr_call) ->
             match Image.decode_at r.image c.nc_call_addr with
             | Some (Pbca_isa.Insn.Call _, _) -> true
             | _ -> false)
           gt.gt_nr_calls)

let test_gt_ranges_decodable =
  qcheck ~count:10 "every ground-truth range decodes cleanly"
    QCheck2.Gen.(int_bound 500)
    (fun seed ->
      let p = { Profile.default with n_funcs = 30; seed = 9000 + seed } in
      let r = Pbca_codegen.Emit.generate p in
      List.for_all
        (fun (f : GT.gfun) ->
          List.for_all
            (fun (lo, hi) ->
              let rec walk a =
                if a >= hi then a = hi
                else
                  match Image.decode_at r.image a with
                  | Some (_, len) -> walk (a + len)
                  | None -> false
              in
              walk lo)
            f.gf_ranges)
        r.ground_truth.gt_funcs)

let test_gt_main_entry () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 10 } in
  let main = GT.find_func r.ground_truth r.image.Image.entry in
  Alcotest.(check bool) "main exists at the entry point" true (main <> None);
  Alcotest.(check string) "named main" "main" (Option.get main).gf_name

let test_gt_serialize () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 30 } in
  let w = Pbca_binfmt.Bio.W.create () in
  GT.write w r.ground_truth;
  let gt2 = GT.read (Pbca_binfmt.Bio.R.of_bytes (Pbca_binfmt.Bio.W.contents w)) in
  Alcotest.(check bool) "roundtrip" true (r.ground_truth = gt2);
  (* also via the .ground section of the image *)
  let sec = Option.get (Image.section r.image ".ground") in
  let gt3 = GT.read (Pbca_binfmt.Bio.R.of_bytes sec.Pbca_binfmt.Section.data) in
  Alcotest.(check bool) "embedded copy" true (r.ground_truth = gt3)

let test_coalesce () =
  Alcotest.(check (list (pair int int))) "merge adjacent"
    [ (1, 5) ] (GT.coalesce [ (1, 3); (3, 5) ]);
  Alcotest.(check (list (pair int int))) "merge overlap"
    [ (1, 6) ] (GT.coalesce [ (4, 6); (1, 5) ]);
  Alcotest.(check (list (pair int int))) "keep gaps"
    [ (1, 2); (4, 6) ] (GT.coalesce [ (4, 6); (1, 2) ]);
  Alcotest.(check (list (pair int int))) "empty" [] (GT.coalesce [])

let test_spec_returns_error_style () =
  let p = { Profile.default with n_funcs = 10; with_error_style = true } in
  let spec = Pbca_codegen.Spec.generate p in
  let returns = Pbca_codegen.Spec.spec_returns spec in
  let err = Option.get (Pbca_codegen.Spec.error_index spec) in
  Alcotest.(check bool) "error can return" true returns.(err);
  (* functions named exit are non-returning *)
  Array.iteri
    (fun i (f : Pbca_codegen.Spec.fspec) ->
      if f.fs_noreturn_leaf then
        Alcotest.(check bool) (f.fs_name ^ " never returns") false returns.(i))
    spec.sp_funcs

let test_noreturn_leaf_names () =
  let p = { Profile.default with n_funcs = 30; p_noreturn_call = 0.1 } in
  let spec = Pbca_codegen.Spec.generate p in
  let leaves =
    Array.to_list spec.sp_funcs
    |> List.filter (fun (f : Pbca_codegen.Spec.fspec) -> f.fs_noreturn_leaf)
  in
  Alcotest.(check bool) "at least one exit-like leaf" true (leaves <> []);
  List.iter
    (fun (f : Pbca_codegen.Spec.fspec) ->
      Alcotest.(check bool)
        (f.fs_name ^ " matches the noreturn name list")
        true
        (Pbca_core.Noreturn.is_known_noreturn f.fs_name))
    leaves

let test_profiles_distinct () =
  let sizes =
    List.map
      (fun (p : Profile.t) ->
        let r = Pbca_codegen.Emit.generate (Profile.scale 0.05 p) in
        Image.total_size r.image)
      Profile.hpcstruct_subjects
  in
  Alcotest.(check int) "four subjects" 4 (List.length sizes);
  List.iter (fun s -> Alcotest.(check bool) "non-trivial" true (s > 1000)) sizes

let suite =
  [
    quick "rng: deterministic" test_rng_deterministic;
    test_rng_bounds;
    quick "rng: split independence" test_rng_split_independent;
    quick "generation: deterministic end to end" test_generation_deterministic;
    test_gt_wellformed;
    test_gt_ranges_decodable;
    quick "ground truth: main at entry" test_gt_main_entry;
    quick "ground truth: serialization" test_gt_serialize;
    quick "ground truth: range coalescing" test_coalesce;
    quick "spec: error-style return status" test_spec_returns_error_style;
    quick "spec: noreturn leaves are name-matchable" test_noreturn_leaf_names;
    quick "profiles: four hpcstruct subjects" test_profiles_distinct;
  ]
