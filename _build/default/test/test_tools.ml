(* Tests for the tooling layer: DOT export, stripping, call graphs, the
   general slicer — and the cross-validation of the pure operation algebra
   against the production parser. *)

open Tutil
module Cfg = Pbca_core.Cfg
module Spec = Pbca_codegen.Spec
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module CG = Pbca_analysis.Callgraph
module Slice = Pbca_analysis.Slice

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------- dot ---------------------------------- *)

let test_dot_func () =
  let image = (emit_spec (mk_spec [ diamond_fun () ])).image in
  let g = parse_serial image in
  let f = get_func g "diamond" in
  let dot = Pbca_core.Dot.func_to_dot g f in
  Alcotest.(check bool) "digraph" true (contains dot "digraph");
  Alcotest.(check bool) "function name" true (contains dot "diamond");
  List.iter
    (fun (b : Cfg.block) ->
      Alcotest.(check bool)
        (Printf.sprintf "node for 0x%x" b.b_start)
        true
        (contains dot (Printf.sprintf "b0x%x" b.b_start)))
    f.f_blocks;
  Alcotest.(check bool) "taken edges labeled" true (contains dot "label=\"T\"")

let test_dot_graph () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 15 } in
  let g = parse_serial r.image in
  let dot = Pbca_core.Dot.graph_to_dot g in
  Alcotest.(check bool) "clusters" true (contains dot "subgraph");
  Alcotest.(check bool) "main cluster" true (contains dot "cluster_main");
  (* every line with an edge references emitted nodes only: parses as
     balanced braces at least *)
  let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 dot in
  let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 dot in
  Alcotest.(check int) "balanced braces" opens closes

(* ------------------------------ strip --------------------------------- *)

let test_strip_discovery () =
  (* stripped of symbols, functions reachable from the entry are still
     found through calls; unreachable ones are lost (paper Section 9) *)
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 40; seed = 21 } in
  let full = parse_serial r.image in
  let stripped_image =
    Pbca_binfmt.Image.strip
      ~keep:(fun s -> s.Pbca_binfmt.Symbol.offset = r.image.Pbca_binfmt.Image.entry)
      r.image
  in
  let stripped = parse_serial stripped_image in
  let n_full = List.length (Cfg.funcs_list full) in
  let n_stripped = List.length (Cfg.funcs_list stripped) in
  Alcotest.(check bool) "some functions found" true (n_stripped > 0);
  Alcotest.(check bool) "coverage cannot grow" true (n_stripped <= n_full);
  (* every stripped function is also in the full parse, at the same entry *)
  List.iter
    (fun (f : Cfg.func) ->
      Alcotest.(check bool)
        (Printf.sprintf "0x%x also in full parse" f.f_entry_addr)
        true
        (Pbca_core.Addr_map.mem full.Cfg.funcs f.f_entry_addr))
    (Cfg.funcs_list stripped);
  (* functions reachable from main in the full call graph are recovered *)
  let cg = CG.build full in
  (match CG.find cg r.image.Pbca_binfmt.Image.entry with
  | Some root ->
    let reach = CG.reachable_from cg root in
    Array.iteri
      (fun i ok ->
        if ok then
          let f = cg.CG.funcs.(i) in
          Alcotest.(check bool)
            (f.Cfg.f_name ^ " recovered in stripped parse")
            true
            (Pbca_core.Addr_map.mem stripped.Cfg.funcs f.Cfg.f_entry_addr))
      reach
  | None -> Alcotest.fail "entry not in call graph")

let test_strip_default_keeps_objects () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 10 } in
  let s = Pbca_binfmt.Image.strip r.image in
  Alcotest.(check int) "no function symbols left" 0
    (List.length (Pbca_binfmt.Symtab.functions s.Pbca_binfmt.Image.symtab));
  Alcotest.(check bool) "object symbols kept" true
    (Pbca_binfmt.Symtab.length s.Pbca_binfmt.Image.symtab > 0)

(* ---------------------------- call graph ------------------------------ *)

let test_callgraph_chain () =
  let f name callee next =
    mk_fspec ~name
      [ blk (Spec.T_call callee); blk ~body:[ Insn.Nop ] next ]
  in
  let image =
    (emit_spec
       (mk_spec
          [
            f "a" 1 Spec.T_ret;
            f "b" 2 Spec.T_ret;
            mk_fspec ~name:"c" [ blk Spec.T_ret ];
          ]))
      .image
  in
  let g = parse_serial image in
  let cg = CG.build g in
  Alcotest.(check int) "three nodes" 3 (CG.n_funcs cg);
  let idx name =
    match CG.find cg (get_func g name).Cfg.f_entry_addr with
    | Some i -> i
    | None -> Alcotest.failf "%s not in callgraph" name
  in
  let a = idx "a" and b = idx "b" and c = idx "c" in
  Alcotest.(check (list int)) "a calls b" [ b ] cg.CG.callees.(a);
  Alcotest.(check (list int)) "b calls c" [ c ] cg.CG.callees.(b);
  Alcotest.(check (list int)) "c is a leaf" [] cg.CG.callees.(c);
  Alcotest.(check (list int)) "c's callers" [ b ] cg.CG.callers.(c);
  let reach = CG.reachable_from cg a in
  Alcotest.(check bool) "c reachable from a" true reach.(c);
  let depth = CG.depth_from cg a in
  Alcotest.(check int) "depth of c" 2 depth.(c);
  Alcotest.(check (list int)) "leaves" [ c ] (CG.leaf_functions cg)

let test_callgraph_scc () =
  (* mutual recursion via calls: one SCC of size two *)
  let f name callee =
    mk_fspec ~name [ blk (Spec.T_call callee); blk Spec.T_ret ]
  in
  let image = (emit_spec (mk_spec [ f "x" 1; f "y" 0 ])).image in
  let g = parse_serial image in
  let cg = CG.build g in
  let sccs = CG.sccs cg in
  Alcotest.(check int) "one scc" 1 (List.length sccs);
  Alcotest.(check int) "of size two" 2 (List.length (List.hd sccs))

let test_callgraph_tail_edges () =
  let callee = mk_fspec ~name:"t" ~frame:false [ blk Spec.T_ret ] in
  let caller = mk_fspec ~name:"s" [ blk (Spec.T_tailcall 1) ] in
  let image = (emit_spec (mk_spec [ caller; callee ])).image in
  let g = parse_serial image in
  let cg = CG.build g in
  Alcotest.(check int) "one tail edge" 1 (List.length cg.CG.tail_edges)

(* ------------------------------ slicing ------------------------------- *)

let test_slice_within_block () =
  (* r0 <- r1 <- const; the unrelated r5 write stays out of the slice *)
  let f =
    mk_fspec ~name:"sl" ~frame:false
      [
        blk
          ~body:
            [
              Insn.Mov_ri (Reg.r1, 7);
              Insn.Mov_ri (Reg.r5, 9);
              Insn.Mov_rr (Reg.r0, Reg.r1);
            ]
          Spec.T_ret;
      ]
  in
  let image = (emit_spec (mk_spec [ f ])).image in
  let g = parse_serial image in
  let fv = Pbca_analysis.Func_view.make g (get_func g "sl") in
  (* criterion: r0 just before the ret *)
  let insns = Pbca_analysis.Func_view.insns g fv 0 in
  let ret_addr, _, _ = List.nth insns (List.length insns - 1) in
  let crit = { Slice.at = ret_addr; block = 0; regs = Reg.Set.of_list [ Reg.r0 ] } in
  let s = Slice.backward g fv crit in
  Alcotest.(check int) "two instructions in the slice" 2
    (List.length s.Slice.insns);
  Alcotest.(check bool) "complete" true s.Slice.complete;
  Alcotest.(check bool) "r5 write excluded" true
    (List.for_all
       (fun (_, i) -> match i with Insn.Mov_ri (r, 9) -> Reg.to_int r <> 5 | _ -> true)
       s.Slice.insns)

let test_slice_across_blocks () =
  let f =
    mk_fspec ~name:"sx" ~frame:false
      [
        blk ~body:[ Insn.Mov_ri (Reg.r2, 3) ] (Spec.T_jmp 1);
        blk ~body:[ Insn.Mov_rr (Reg.r3, Reg.r2) ] Spec.T_ret;
      ]
  in
  let image = (emit_spec (mk_spec [ f ])).image in
  let g = parse_serial image in
  let fv = Pbca_analysis.Func_view.make g (get_func g "sx") in
  let n = Pbca_analysis.Func_view.n_blocks fv in
  let last = n - 1 in
  let insns = Pbca_analysis.Func_view.insns g fv last in
  let ret_addr, _, _ = List.nth insns (List.length insns - 1) in
  let crit =
    { Slice.at = ret_addr; block = last; regs = Reg.Set.of_list [ Reg.r3 ] }
  in
  let s = Slice.backward g fv crit in
  Alcotest.(check int) "both defs collected" 2 (List.length s.Slice.insns);
  Alcotest.(check bool) "complete" true s.Slice.complete

let test_slice_memory_incomplete () =
  let f =
    mk_fspec ~name:"sm" ~frame:false
      [
        blk
          ~body:[ Insn.Load (Reg.r1, Reg.of_int 6, 0); Insn.Mov_rr (Reg.r0, Reg.r1) ]
          Spec.T_ret;
      ]
  in
  let image = (emit_spec (mk_spec [ f ])).image in
  let g = parse_serial image in
  let fv = Pbca_analysis.Func_view.make g (get_func g "sm") in
  let insns = Pbca_analysis.Func_view.insns g fv 0 in
  let ret_addr, _, _ = List.nth insns (List.length insns - 1) in
  let crit = { Slice.at = ret_addr; block = 0; regs = Reg.Set.of_list [ Reg.r0 ] } in
  let s = Slice.backward g fv crit in
  Alcotest.(check bool) "memory load marks incompleteness" false
    s.Slice.complete

let test_slice_of_terminator () =
  let image = (emit_spec (mk_spec [ diamond_fun () ])).image in
  let g = parse_serial image in
  let fv = Pbca_analysis.Func_view.make g (get_func g "diamond") in
  (* the entry's Jcc uses no registers; a Jmp_ind would *)
  match Slice.criterion_of_terminator g fv 0 with
  | Some crit ->
    Alcotest.(check bool) "criterion built" true (crit.Slice.block = 0)
  | None -> Alcotest.fail "entry block should have a terminator"

(* ------------------ algebra vs. production parser --------------------- *)

let test_ops_cross_validation =
  qcheck ~count:15 "Ops.construct agrees with the production parser"
    QCheck2.Gen.(int_bound 1000)
    (fun seed ->
      (* restrict to constructs the pure model implements: direct flow only *)
      let p =
        {
          Profile.default with
          n_funcs = 8;
          seed = 40_000 + seed;
          p_call = 0.0;
          p_icall = 0.0;
          p_jump_table = 0.0;
          p_tail_call = 0.0;
          p_noreturn_call = 0.0;
          p_noreturn_leaf = 0.0;
          n_shared_stubs = 0;
          p_cold = 0.0;
          p_secondary_entry = 0.0;
        }
      in
      let image = (Pbca_codegen.Emit.generate p).image in
      let entries =
        List.filter_map
          (fun (s : Pbca_binfmt.Symbol.t) ->
            if Pbca_binfmt.Symbol.is_func s then Some s.offset else None)
          (Pbca_binfmt.Symtab.functions image.Pbca_binfmt.Image.symtab)
        |> List.sort_uniq compare
      in
      let model =
        Pbca_core.Ops.construct image (Pbca_core.Ops.init entries)
      in
      let prod = parse_serial image in
      let model_blocks =
        List.map (fun (b : Pbca_core.Ops.block) -> (b.s, b.e)) model.blocks
        |> List.sort compare
      in
      let prod_blocks =
        List.map
          (fun (b : Cfg.block) -> (b.Cfg.b_start, Cfg.block_end b))
          (Cfg.blocks_list prod)
        |> List.sort compare
      in
      model_blocks = prod_blocks)

let suite =
  [
    quick "dot: single function" test_dot_func;
    quick "dot: whole program" test_dot_graph;
    quick "strip: discovery through calls" test_strip_discovery;
    quick "strip: default predicate" test_strip_default_keeps_objects;
    quick "callgraph: chain" test_callgraph_chain;
    quick "callgraph: scc of mutual recursion" test_callgraph_scc;
    quick "callgraph: tail edges" test_callgraph_tail_edges;
    quick "slice: within a block" test_slice_within_block;
    quick "slice: across blocks" test_slice_across_blocks;
    quick "slice: memory loads mark incompleteness" test_slice_memory_incomplete;
    quick "slice: terminator criterion" test_slice_of_terminator;
    test_ops_cross_validation;
  ]

(* --------------------------- linear sweep ------------------------------ *)

let test_sweep_serial_parallel_equal () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 60; seed = 91 } in
  let serial = Pbca_core.Linear_sweep.sweep r.image in
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let par = Pbca_core.Linear_sweep.sweep ~pool r.image in
  Alcotest.(check bool) "same blocks" true
    (serial.Pbca_core.Linear_sweep.blocks = par.Pbca_core.Linear_sweep.blocks);
  Alcotest.(check int) "same instruction count"
    serial.Pbca_core.Linear_sweep.insns par.Pbca_core.Linear_sweep.insns

let test_sweep_overapproximates () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 40; seed = 92 } in
  let sw = Pbca_core.Linear_sweep.sweep r.image in
  let g = parse_serial r.image in
  let both, sweep_only, trav_only =
    Pbca_core.Linear_sweep.compare_with_traversal sw g
  in
  Alcotest.(check bool) "common code found" true (both > 0);
  Alcotest.(check bool) "sweep decodes padding too" true (sweep_only > 0);
  Alcotest.(check int) "traversal finds nothing the sweep misses" 0 trav_only;
  Alcotest.(check bool) "full text covered" true
    (Pbca_core.Linear_sweep.coverage sw
     + sw.Pbca_core.Linear_sweep.undecodable
    = Pbca_binfmt.Image.text_size r.image)

let test_sweep_blocks_partition () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 20; seed = 93 } in
  let sw = Pbca_core.Linear_sweep.sweep r.image in
  let rec ordered = function
    | (a : Pbca_core.Linear_sweep.block) :: (b :: _ as rest) ->
      a.e <= b.s && a.s < a.e && ordered rest
    | [ a ] -> a.s < a.e
    | [] -> true
  in
  Alcotest.(check bool) "blocks disjoint and ordered" true
    (ordered sw.Pbca_core.Linear_sweep.blocks)

let suite =
  suite
  @ [
      quick "linear sweep: parallel = serial" test_sweep_serial_parallel_equal;
      quick "linear sweep: over-approximates traversal" test_sweep_overapproximates;
      quick "linear sweep: blocks partition the text" test_sweep_blocks_partition;
    ]

(* --------------------------- data in text ------------------------------ *)

let test_data_in_text () =
  let p =
    { Profile.default with n_funcs = 40; seed = 2042; p_data_in_text = 0.4 }
  in
  let r = Pbca_codegen.Emit.generate p in
  (* the traversal parser is unaffected: ground truth still matches *)
  let g = parse_serial r.image in
  check_clean r.ground_truth g;
  assert_deterministic r.image;
  (* the linear sweep mis-handles the blobs: it decodes garbage or loses
     real code bytes to desynchronization *)
  let sw = Pbca_core.Linear_sweep.sweep r.image in
  let _, sweep_only, _ = Pbca_core.Linear_sweep.compare_with_traversal sw g in
  Alcotest.(check bool) "sweep decodes data as code" true (sweep_only > 0);
  (* parallel sweep still equals serial sweep on hostile input *)
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let swp = Pbca_core.Linear_sweep.sweep ~pool r.image in
  Alcotest.(check bool) "parallel sweep unfazed" true
    (sw.Pbca_core.Linear_sweep.blocks = swp.Pbca_core.Linear_sweep.blocks)

let test_data_in_text_generated () =
  let p =
    { Profile.default with n_funcs = 30; seed = 11; p_data_in_text = 0.5 }
  in
  let spec = Pbca_codegen.Spec.generate p in
  let blobs =
    Array.to_list spec.Pbca_codegen.Spec.sp_data
    |> List.filter_map (fun b -> b)
  in
  Alcotest.(check bool) "profile produced blobs" true (List.length blobs > 3);
  List.iter
    (fun b ->
      Alcotest.(check bool) "blob sized" true
        (Bytes.length b >= 8 && Bytes.length b <= 64))
    blobs

let suite =
  suite
  @ [
      quick "data-in-text: parser unaffected, sweep confused" test_data_in_text;
      quick "data-in-text: generation" test_data_in_text_generated;
    ]

(* ------------------------------ cfg diff ------------------------------- *)

let test_diff_identical () =
  let r = Pbca_codegen.Emit.generate { Profile.default with n_funcs = 25; seed = 61 } in
  let g1 = parse_serial r.image in
  let g2 = parse_parallel ~threads:3 r.image in
  let d = Pbca_core.Cfg_diff.diff g1 g2 in
  Alcotest.(check int) "all unchanged" (List.length (Cfg.funcs_list g1)) d.unchanged;
  Alcotest.(check (list string)) "nothing added" [] d.added;
  Alcotest.(check (list string)) "nothing removed" [] d.removed

let test_diff_relocation_invariant () =
  (* same program, one extra function in front: every old function moves to
     a new address but must count as unchanged *)
  let funcs =
    [ diamond_fun ~name:"d1" (); loop_fun ~name:"l1" () ]
  in
  let g1 = parse_serial (emit_spec (mk_spec funcs)).image in
  let g2 =
    parse_serial
      (emit_spec (mk_spec (mk_fspec ~name:"newcomer" [ blk Spec.T_ret ] :: funcs))).image
  in
  let d = Pbca_core.Cfg_diff.diff g1 g2 in
  Alcotest.(check int) "old functions unchanged despite moving" 2 d.unchanged;
  Alcotest.(check (list string)) "newcomer reported" [ "newcomer" ] d.added

let test_diff_detects_change () =
  let base = [ diamond_fun ~name:"f" (); loop_fun ~name:"g" () ] in
  let modified =
    [
      diamond_fun ~name:"f" ();
      (* g gains a block *)
      mk_fspec ~name:"g"
        [
          blk ~body:[ Insn.Mov_ri (Reg.r1, 0) ] Spec.T_fall;
          blk ~body:[ Insn.Cmp_ri (Reg.r1, 10) ] (Spec.T_cond (Insn.Ge, 4));
          blk ~body:[ Insn.Add_ri (Reg.r1, 1) ] Spec.T_fall;
          blk ~body:[ Insn.Nop ] (Spec.T_jmp 1);
          blk Spec.T_ret;
        ];
    ]
  in
  let g1 = parse_serial (emit_spec (mk_spec base)).image in
  let g2 = parse_serial (emit_spec (mk_spec modified)).image in
  let d = Pbca_core.Cfg_diff.diff g1 g2 in
  Alcotest.(check int) "one function changed" 1 (List.length d.changed);
  Alcotest.(check string) "the right one" "g"
    (List.hd d.changed).Pbca_core.Cfg_diff.ch_name;
  Alcotest.(check int) "f unchanged" 1 d.unchanged

let suite =
  suite
  @ [
      quick "diff: identical parses" test_diff_identical;
      quick "diff: relocation-invariant" test_diff_relocation_invariant;
      quick "diff: detects structural change" test_diff_detects_change;
    ]
