(* Shared helpers for the test suites. *)

module Spec = Pbca_codegen.Spec
module Profile = Pbca_codegen.Profile
module Emit = Pbca_codegen.Emit
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Build a one-off spec around explicit function definitions. *)
let mk_fspec ?(name = "f") ?(frame = true) ?cold ?secondary ?(cu = 0) blocks =
  {
    Spec.fs_name = name;
    fs_blocks = Array.of_list blocks;
    fs_frame = frame;
    fs_cold = cold;
    fs_secondary = secondary;
    fs_cu = cu;
    fs_error_style = false;
    fs_noreturn_leaf = false;
  }

let blk ?(body = []) term = { Spec.bs_body = body; bs_term = term }

let mk_spec ?(stubs = []) ?(fptable = [| 0 |]) funcs =
  {
    Spec.sp_profile = { Profile.default with name = "handmade"; n_cus = 1 };
    sp_funcs = Array.of_list funcs;
    sp_stubs = Array.of_list stubs;
    sp_fptable = fptable;
    sp_data = Array.make (List.length funcs) None;
  }

let emit_spec spec = Emit.emit spec

let parse_serial image = Pbca_core.Serial.parse_and_finalize image

let parse_parallel ?(threads = 4) image =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  Pbca_core.Parallel.parse_and_finalize ~pool image

let summary = Pbca_core.Summary.of_cfg

let assert_deterministic ?(threads = [ 1; 2; 4 ]) image =
  let ref_sum = summary (parse_serial image) in
  List.iter
    (fun t ->
      let s = summary (parse_parallel ~threads:t image) in
      if not (Pbca_core.Summary.equal ref_sum s) then
        Alcotest.failf "thread count %d diverged:\n%s" t
          (String.concat "\n" (Pbca_core.Summary.diff ref_sum s)))
    threads

let find_func g name =
  List.find_opt
    (fun (f : Pbca_core.Cfg.func) -> f.f_name = name)
    (Pbca_core.Cfg.funcs_list g)

let get_func g name =
  match find_func g name with
  | Some f -> f
  | None -> Alcotest.failf "function %s not found" name

let func_ret g name =
  match Atomic.get (get_func g name).Pbca_core.Cfg.f_ret with
  | Pbca_core.Cfg.Returns -> `Ret
  | Pbca_core.Cfg.Noreturn -> `Noret
  | Pbca_core.Cfg.Unset -> `Unset

let check_clean gt g =
  let rep = Pbca_checker.Checker.check gt g in
  if not (Pbca_checker.Checker.clean rep) then
    Alcotest.failf "checker found unexplained differences:\n%s"
      (Format.asprintf "%a" Pbca_checker.Checker.pp rep)

(* A tiny well-known function: entry -> cond -> (then | else) -> join -> ret.
   Block indices: 0 entry, 1 then-branch fall, 2 join, 3 taken target. *)
let diamond_fun ?(name = "diamond") () =
  mk_fspec ~name
    [
      blk ~body:[ Insn.Cmp_ri (Reg.r1, 5) ] (Spec.T_cond (Insn.Eq, 3));
      blk ~body:[ Insn.Mov_ri (Reg.r0, 1) ] Spec.T_fall;
      blk ~body:[ Insn.Mov_ri (Reg.r2, 9) ] Spec.T_ret;
      blk ~body:[ Insn.Mov_ri (Reg.r0, 2) ] (Spec.T_jmp 2);
    ]

(* A loop: 0 entry -> 1 header; 1 -> (2 body | 3 exit); 2 -> jmp 1; 3 ret *)
let loop_fun ?(name = "looper") () =
  mk_fspec ~name
    [
      blk ~body:[ Insn.Mov_ri (Reg.r1, 0) ] Spec.T_fall;
      blk ~body:[ Insn.Cmp_ri (Reg.r1, 10) ] (Spec.T_cond (Insn.Ge, 3));
      blk ~body:[ Insn.Add_ri (Reg.r1, 1) ] (Spec.T_jmp 1);
      blk Spec.T_ret;
    ]
