(* Disassembler CLI: objdump-style listing of an SBF binary, annotated with
   the parsed CFG (function headers, block boundaries, edge summaries). *)

open Cmdliner

let run path threads func_filter dot_out =
  let image = Pbca_binfmt.Image.load path in
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool image in
  let funcs = Pbca_core.Cfg.funcs_list g in
  let funcs =
    match func_filter with
    | Some name ->
      List.filter (fun (f : Pbca_core.Cfg.func) -> f.f_name = name) funcs
    | None -> funcs
  in
  (match (dot_out, funcs) with
  | Some dot_path, f :: _ ->
    Pbca_core.Dot.write_func g f dot_path;
    Printf.printf "wrote %s\n" dot_path
  | Some _, [] -> prerr_endline "no function matched for --dot"
  | None, _ -> ());
  List.iter
    (fun (f : Pbca_core.Cfg.func) ->
      Printf.printf "\n%08x <%s>%s:\n" f.f_entry_addr f.f_name
        (match Atomic.get f.f_ret with
        | Pbca_core.Cfg.Noreturn -> " [noreturn]"
        | _ -> "");
      List.iter
        (fun (b : Pbca_core.Cfg.block) ->
          let edges =
            String.concat ", "
              (List.map
                 (fun (e : Pbca_core.Cfg.edge) ->
                   Printf.sprintf "%s->0x%x"
                     (Format.asprintf "%a" Pbca_core.Cfg.pp_edge_kind e.e_kind)
                     e.e_dst.Pbca_core.Cfg.b_start)
                 (Pbca_core.Cfg.out_edges b))
          in
          Printf.printf "  ; block [0x%x, 0x%x)%s\n" b.b_start
            (Pbca_core.Cfg.block_end b)
            (if edges = "" then "" else "  -> " ^ edges);
          List.iter
            (fun (a, insn, _) ->
              Printf.printf "  %8x:\t%s\n" a (Pbca_isa.Insn.to_string insn))
            (Pbca_core.Disasm.block_insns g b))
        f.f_blocks)
    funcs

let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"BINARY")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")

let func =
  Arg.(value & opt (some string) None & info [ "f"; "func" ] ~doc:"Only this function")

let dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~doc:"Write the (first matched) function's CFG as Graphviz")

let cmd =
  Cmd.v
    (Cmd.info "bdisasm" ~doc:"Disassemble a binary with CFG annotations")
    Term.(const run $ path $ threads $ func $ dot)

let () = exit (Cmd.eval cmd)
