(* Ground-truth correctness evaluation (paper Section 8.1).

   Two modes: generate the coreutils-like corpus in memory (default), or
   verify .sbf files on disk against the ground truth embedded in their
   .ground section (as written by bgen). *)

open Cmdliner

let ground_truth_of image =
  match Pbca_binfmt.Image.section image ".ground" with
  | Some sec ->
    Some
      (Pbca_codegen.Ground_truth.read
         (Pbca_binfmt.Bio.R.of_bytes sec.Pbca_binfmt.Section.data))
  | None -> None

let check_one pool classes verbose name image gt =
  let g = Pbca_core.Parallel.parse_and_finalize ~pool image in
  let rep = Pbca_checker.Checker.check gt g in
  List.iter
    (fun (_, cls) ->
      Hashtbl.replace classes cls
        (1 + Option.value (Hashtbl.find_opt classes cls) ~default:0))
    rep.func_expected;
  let clean = Pbca_checker.Checker.clean rep in
  if (not clean) || verbose then begin
    Printf.printf "%s: " name;
    Format.printf "%a@." Pbca_checker.Checker.pp rep
  end;
  clean

let run count threads verbose dir =
  let pool = Pbca_concurrent.Task_pool.create ~threads in
  let classes : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let dirty = ref 0 in
  let total = ref 0 in
  (match dir with
  | Some dir ->
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".sbf")
      |> List.sort compare
    in
    List.iter
      (fun f ->
        let image = Pbca_binfmt.Image.load (Filename.concat dir f) in
        match ground_truth_of image with
        | Some gt ->
          incr total;
          if not (check_one pool classes verbose f image gt) then incr dirty
        | None -> Printf.eprintf "%s: no embedded ground truth, skipped\n" f)
      files
  | None ->
    for i = 0 to count - 1 do
      let p = Pbca_codegen.Profile.coreutils_like i in
      let r = Pbca_codegen.Emit.generate p in
      incr total;
      if not (check_one pool classes verbose p.name r.image r.ground_truth)
      then incr dirty
    done);
  Printf.printf "\n%d/%d binaries fully explained\n" (!total - !dirty) !total;
  Printf.printf "expected difference classes (paper Section 8.1):\n";
  Hashtbl.iter (fun cls n -> Printf.printf "  %-40s %d functions\n" cls n) classes;
  if !dirty > 0 then exit 1

let count = Arg.(value & opt int 113 & info [ "n" ] ~doc:"Corpus size")
let threads = Arg.(value & opt int 4 & info [ "j"; "threads" ] ~doc:"Worker threads")
let verbose = Arg.(value & flag & info [ "v" ] ~doc:"Print every report")

let dir =
  Arg.(
    value
    & opt (some dir) None
    & info [ "dir" ] ~doc:"Verify .sbf files in this directory instead of generating")

let cmd =
  Cmd.v
    (Cmd.info "checker" ~doc:"Verify parsed CFGs against ground truth")
    Term.(const run $ count $ threads $ verbose $ dir)

let () = exit (Cmd.eval cmd)
