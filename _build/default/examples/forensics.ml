(* Software-forensics scenario (paper Section 7): extract BinFeat-style
   feature vectors from a corpus of binaries and compare binaries by
   cosine similarity — the representation used by compiler-identification
   and authorship-attribution models.

   Run with: dune exec examples/forensics.exe *)

let feature_vector pool image =
  let r = Pbca_binfeat.Binfeat.extract ~pool [ image ] in
  r.Pbca_binfeat.Binfeat.index

let cosine a b =
  let dot = ref 0.0 and na = ref 0.0 and nb = ref 0.0 in
  Hashtbl.iter
    (fun k va ->
      let va = float_of_int va in
      na := !na +. (va *. va);
      match Hashtbl.find_opt b k with
      | Some vb -> dot := !dot +. (va *. float_of_int vb)
      | None -> ())
    a;
  Hashtbl.iter
    (fun _ vb ->
      let vb = float_of_int vb in
      nb := !nb +. (vb *. vb))
    b;
  if !na = 0.0 || !nb = 0.0 then 0.0 else !dot /. sqrt (!na *. !nb)

let () =
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  (* three "authors": binaries generated from related vs unrelated seeds *)
  let author_a1 =
    (Pbca_codegen.Emit.generate
       { (Pbca_codegen.Profile.forensics_member 0) with seed = 100 })
      .image
  in
  let author_a2 =
    (Pbca_codegen.Emit.generate
       { (Pbca_codegen.Profile.forensics_member 0) with seed = 101 })
      .image
  in
  let author_b =
    (Pbca_codegen.Emit.generate
       {
         (Pbca_codegen.Profile.forensics_member 7) with
         seed = 999;
         p_jump_table = 0.25;
         p_frame = 0.2;
         max_body_insns = 12;
       })
      .image
  in
  let va1 = feature_vector pool author_a1 in
  let va2 = feature_vector pool author_a2 in
  let vb = feature_vector pool author_b in
  Printf.printf "feature vector sizes: a1=%d a2=%d b=%d\n" (Hashtbl.length va1)
    (Hashtbl.length va2) (Hashtbl.length vb);
  Printf.printf "cosine(a1, a2) = %.4f   (same style)\n" (cosine va1 va2);
  Printf.printf "cosine(a1, b)  = %.4f   (different style)\n" (cosine va1 vb);
  Printf.printf "cosine(a2, b)  = %.4f   (different style)\n" (cosine va2 vb);
  (* full-corpus extraction with the staged pipeline *)
  let corpus =
    List.init 12 (fun i ->
        (Pbca_codegen.Emit.generate (Pbca_codegen.Profile.forensics_member i))
          .image)
  in
  let r = Pbca_binfeat.Binfeat.extract ~pool corpus in
  Printf.printf "\ncorpus: %d binaries -> %d features; stage walls:\n"
    r.n_binaries r.n_features;
  List.iter
    (fun (s : Pbca_binfeat.Binfeat.stage) ->
      Printf.printf "  %-4s %.4fs\n" s.st_name s.st_wall)
    r.stages
