(* Quickstart: generate a binary, build its CFG in parallel, inspect it.

   Run with: dune exec examples/quickstart.exe *)

module Cfg = Pbca_core.Cfg

let () =
  (* 1. Generate a small synthetic binary (or Image.load an .sbf file). *)
  let profile = { Pbca_codegen.Profile.default with n_funcs = 12; seed = 7 } in
  let { Pbca_codegen.Emit.image; ground_truth; _ } =
    Pbca_codegen.Emit.generate profile
  in
  Printf.printf "generated %s: %d bytes of text, %d symbols\n\n"
    image.Pbca_binfmt.Image.name
    (Pbca_binfmt.Image.text_size image)
    (Pbca_binfmt.Symtab.length image.Pbca_binfmt.Image.symtab);

  (* 2. Construct the CFG with the parallel parser. *)
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool image in
  Printf.printf "parsed: %s\n\n"
    (Format.asprintf "%a" Pbca_core.Summary.pp_stats g);

  (* 3. Walk the public API: functions, blocks, edges. *)
  List.iter
    (fun (f : Cfg.func) ->
      Printf.printf "%s @0x%x (%s, %d blocks)\n" f.f_name f.f_entry_addr
        (match Atomic.get f.f_ret with
        | Cfg.Returns -> "returns"
        | Cfg.Noreturn -> "noreturn"
        | Cfg.Unset -> "unknown")
        (List.length f.f_blocks);
      List.iter
        (fun (b : Cfg.block) ->
          Printf.printf "  block [0x%x, 0x%x)" b.b_start (Cfg.block_end b);
          List.iter
            (fun (e : Cfg.edge) ->
              Printf.printf " -%s-> 0x%x"
                (Format.asprintf "%a" Cfg.pp_edge_kind e.e_kind)
                e.e_dst.Cfg.b_start)
            (Cfg.out_edges b);
          print_newline ())
        f.f_blocks)
    (Cfg.funcs_list g);

  (* 4. The serial parser produces the same CFG — the paper's determinism
     claim (Section 5.2). *)
  let gs = Pbca_core.Serial.parse_and_finalize image in
  let same =
    Pbca_core.Summary.equal (Pbca_core.Summary.of_cfg g)
      (Pbca_core.Summary.of_cfg gs)
  in
  Printf.printf "\nserial == parallel: %b\n" same;

  (* 5. And it matches the generator's ground truth exactly. *)
  let report = Pbca_checker.Checker.check ground_truth g in
  Printf.printf "%s\n" (Format.asprintf "%a" Pbca_checker.Checker.pp report)
