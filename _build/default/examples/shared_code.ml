(* The challenging code constructs of paper Section 2.1, concretely:
   functions sharing code, the Listing-1 tail-call ambiguity, non-returning
   functions (including the conditionally-returning `error`), and outlined
   cold blocks. Shows how the parser + finalization resolve each.

   Run with: dune exec examples/shared_code.exe *)

module Cfg = Pbca_core.Cfg

let show_func g (f : Cfg.func) =
  let ranges = Pbca_core.Summary.func_ranges g f in
  Printf.printf "  %-16s @0x%-6x %-8s %s\n" f.f_name f.f_entry_addr
    (match Atomic.get f.f_ret with
    | Cfg.Returns -> "returns"
    | Cfg.Noreturn -> "noreturn"
    | Cfg.Unset -> "unknown")
    (String.concat " "
       (List.map (fun (a, b) -> Printf.sprintf "[0x%x,0x%x)" a b) ranges))

let () =
  (* a profile exercising every challenging construct *)
  let profile =
    {
      Pbca_codegen.Profile.default with
      name = "constructs";
      seed = 4242;
      n_funcs = 24;
      n_shared_stubs = 3;
      sharers_per_stub = 3;
      p_stub_tail = 0.4;
      n_listing1 = 1; (* one Mixed stub: the Listing-1 ambiguity *)
      with_error_style = true;
      p_noreturn_call = 0.15;
      p_cold = 0.3;
      p_secondary_entry = 0.15;
    }
  in
  let spec = Pbca_codegen.Spec.generate profile in
  let { Pbca_codegen.Emit.image; ground_truth; _ } =
    Pbca_codegen.Emit.emit spec
  in
  Printf.printf "stub modes in this binary:\n";
  Array.iteri
    (fun i (s : Pbca_codegen.Spec.sspec) ->
      Printf.printf "  stub %d: %s, shared by %d functions\n" i
        (match s.ss_mode with
        | Pbca_codegen.Spec.Shared -> "plain jumps (code sharing)"
        | Pbca_codegen.Spec.Tail -> "tail calls (own function)"
        | Pbca_codegen.Spec.Mixed -> "MIXED - the Listing-1 ambiguity")
        (List.length s.ss_sharers))
    spec.sp_stubs;

  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  let g = Pbca_core.Parallel.parse_and_finalize ~pool image in

  Printf.printf "\nfunctions sharing code (same range in several functions):\n";
  let all = Cfg.funcs_list g in
  let shared_blocks =
    List.concat_map
      (fun (f : Cfg.func) ->
        List.map (fun (b : Cfg.block) -> (b.Cfg.b_start, f)) f.Cfg.f_blocks)
      all
    |> List.sort (fun a b -> compare (fst a) (fst b))
  in
  let rec dups = function
    | (a, f1) :: ((b, f2) :: _ as rest) when a = b ->
      (a, f1, f2) :: dups rest
    | _ :: rest -> dups rest
    | [] -> []
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (addr, f1, f2) ->
      if not (Hashtbl.mem seen addr) then begin
        Hashtbl.replace seen addr ();
        Printf.printf "  block 0x%x belongs to %s and %s\n" addr
          f1.Cfg.f_name f2.Cfg.f_name
      end)
    (dups shared_blocks);

  Printf.printf "\nnon-returning functions found by the analysis:\n";
  List.iter
    (fun (f : Cfg.func) ->
      if Atomic.get f.Cfg.f_ret = Cfg.Noreturn then show_func g f)
    all;

  Printf.printf "\ncold fragments (own functions; DWARF attributes them to \
                  their parent):\n";
  List.iter
    (fun (gf : Pbca_codegen.Ground_truth.gfun) ->
      match gf.gf_cold_parent with
      | Some parent -> (
        Printf.printf "  %s (parent %s): " gf.gf_name parent;
        match Pbca_core.Addr_map.find g.Cfg.funcs gf.gf_entry with
        | Some f ->
          Printf.printf "parsed as its own function %s\n" f.Cfg.f_name
        | None -> Printf.printf "NOT FOUND\n")
      | None -> ())
    ground_truth.gt_funcs;

  Printf.printf "\ntail-call-entered stubs (symbol-less functions the parser \
                  discovered):\n";
  List.iter
    (fun (f : Cfg.func) -> if not f.Cfg.f_from_symtab then show_func g f)
    all;

  (* determinism under the ambiguity: parse ten more times on different
     thread counts and require identical results *)
  let reference = Pbca_core.Summary.of_cfg g in
  let all_equal =
    List.for_all
      (fun threads ->
        let pool = Pbca_concurrent.Task_pool.create ~threads in
        let g' = Pbca_core.Parallel.parse_and_finalize ~pool image in
        Pbca_core.Summary.equal reference (Pbca_core.Summary.of_cfg g'))
      [ 1; 2; 3; 4; 6; 8 ]
  in
  Printf.printf "\nsame CFG at every thread count: %b\n" all_equal
