(* Performance-analysis scenario (paper Section 1's motivating workflow):
   a profiler collected instruction-address samples from a run of a large
   binary; attribute each sample to its function, source line, loop nest
   and inline context using hpcstruct-style structure recovery.

   Run with: dune exec examples/perf_analysis.exe *)

module Query = Pbca_hpcstruct.Query

let () =
  (* the "large application binary" *)
  let profile =
    { Pbca_codegen.Profile.camellia with n_funcs = 300; seed = 2024 }
  in
  let { Pbca_codegen.Emit.image; _ } = Pbca_codegen.Emit.generate profile in
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in

  (* structure recovery: the hpcstruct pipeline *)
  let r = Pbca_hpcstruct.Hpcstruct.run_image ~pool image in
  Printf.printf "structure: %d functions, %d loops, %d statements\n"
    r.n_funcs r.n_loops r.n_stmts;
  List.iter
    (fun (p : Pbca_hpcstruct.Hpcstruct.phase) ->
      Printf.printf "  phase %-9s %.4fs\n" p.ph_name p.ph_wall)
    r.phases;

  (* the query structure HPCToolkit-style consumers use *)
  let dbg_section = Option.get (Pbca_binfmt.Image.section image ".debug") in
  let dbg = Pbca_debuginfo.Codec.decode dbg_section.Pbca_binfmt.Section.data in
  let q = Query.build r.cfg dbg in

  (* fake profiler samples, biased toward loop bodies like real profiles *)
  let tsec = Pbca_binfmt.Image.text image in
  let lo = tsec.Pbca_binfmt.Section.addr in
  let hi = lo + Pbca_binfmt.Section.size tsec in
  let rng = Pbca_codegen.Rng.create 99 in
  let samples =
    List.init 4000 (fun _ -> Pbca_codegen.Rng.range rng lo (hi - 1))
    |> List.filter (fun a ->
           match Query.lookup q a with
           | Some cx -> cx.Query.cx_loop_depth > 0 || Pbca_codegen.Rng.bool rng 0.3
           | None -> false)
  in
  Printf.printf "\nattributed %d samples; hottest contexts:\n" (List.length samples);
  Printf.printf "%-10s %-12s %-18s %-5s %s\n" "samples" "function" "file:line"
    "loop" "inlined-through";
  List.iteri
    (fun i ((cx : Query.context), n) ->
      if i < 12 then
        Printf.printf "%-10d %-12s %-18s %-5d %s\n" n cx.cx_func
          (Printf.sprintf "%s:%d" cx.cx_file cx.cx_line)
          cx.cx_loop_depth
          (match cx.cx_inline with [] -> "-" | l -> String.concat " < " l))
    (Query.attribute q samples);

  (* a few raw lookups, as the paper's workflow step (3) would do *)
  print_newline ();
  List.iter
    (fun addr ->
      match Query.lookup q addr with
      | Some cx ->
        Printf.printf "0x%-8x -> %s at %s:%d (loop depth %d)\n" addr
          cx.cx_func cx.cx_file cx.cx_line cx.cx_loop_depth
      | None -> Printf.printf "0x%-8x -> padding / unreachable\n" addr)
    [ lo; lo + ((hi - lo) / 2); hi - 1 ]
