(* Vulnerability search by binary code similarity (paper Section 9): given
   a known-vulnerable function, rank every function of a corpus by cosine
   similarity of its BinFeat-style feature vector. The same function body
   compiled into other binaries should surface at the top.

   Run with: dune exec examples/vuln_search.exe *)

module Spec = Pbca_codegen.Spec
module Insn = Pbca_isa.Insn
module Reg = Pbca_isa.Reg
module Sim = Pbca_binfeat.Similarity

(* the "vulnerable" routine: a distinctive shape (loop + jump table) we
   plant into some corpus members under different names *)
let vulnerable_body ~name =
  {
    Spec.fs_name = name;
    fs_blocks =
      [|
        {
          Spec.bs_body = [ Insn.Mov_ri (Reg.r1, 0); Insn.Mov_ri (Reg.r2, 0) ];
          bs_term = Spec.T_fall;
        };
        {
          Spec.bs_body = [ Insn.Cmp_ri (Reg.r1, 16) ];
          bs_term = Spec.T_cond (Insn.Ge, 3);
        };
        {
          Spec.bs_body =
            [
              Insn.Load_idx (Reg.r3, Reg.r4, Reg.r1, 4);
              Insn.Xor (Reg.r5, Reg.r3);
              Insn.Add_ri (Reg.r1, 1);
            ];
          bs_term = Spec.T_jmp 1;
        };
        { Spec.bs_body = []; bs_term = Spec.T_jumptable { targets = [ 5; 6 ]; spilled = false } };
        { Spec.bs_body = []; bs_term = Spec.T_ret };
        { Spec.bs_body = [ Insn.Mov_ri (Reg.r0, 1) ]; bs_term = Spec.T_jmp 4 };
        { Spec.bs_body = [ Insn.Mov_ri (Reg.r0, 2) ]; bs_term = Spec.T_jmp 4 };
      |];
    fs_frame = true;
    fs_cold = None;
    fs_secondary = None;
    fs_cu = 0;
    fs_error_style = false;
    fs_noreturn_leaf = false;
  }

let with_planted spec idx name =
  let funcs = Array.copy spec.Spec.sp_funcs in
  funcs.(idx) <- vulnerable_body ~name;
  { spec with Spec.sp_funcs = funcs }

let () =
  let pool = Pbca_concurrent.Task_pool.create ~threads:4 in
  (* reference binary containing the known-vulnerable function *)
  let ref_spec =
    Spec.generate { Pbca_codegen.Profile.default with n_funcs = 20; seed = 71 }
  in
  let ref_spec = with_planted ref_spec 5 "parse_header" in
  let ref_image = (Pbca_codegen.Emit.emit ref_spec).image in
  let ref_cfg = Pbca_core.Parallel.parse_and_finalize ~pool ref_image in
  let vuln =
    List.find
      (fun (f : Pbca_core.Cfg.func) -> f.f_name = "parse_header")
      (Pbca_core.Cfg.funcs_list ref_cfg)
  in
  let query = Sim.function_vector ref_cfg vuln in
  Printf.printf "query: %s from %s (%d features)\n\n" vuln.f_name
    ref_image.Pbca_binfmt.Image.name (Hashtbl.length query);

  (* corpus: 8 binaries; three secretly contain the same routine *)
  let corpus =
    List.init 8 (fun i ->
        let p =
          { (Pbca_codegen.Profile.forensics_member i) with seed = 7000 + i }
        in
        let spec = Spec.generate p in
        let spec =
          match i with
          | 1 -> with_planted spec 3 "decode_frame"
          | 4 -> with_planted spec 9 "read_chunk"
          | 6 -> with_planted spec 2 "handle_input"
          | _ -> spec
        in
        let image = (Pbca_codegen.Emit.emit spec).image in
        (image.Pbca_binfmt.Image.name, Pbca_core.Parallel.parse_and_finalize ~pool image))
      |> List.map (fun x -> x)
  in
  let hits = Sim.search ~pool ~query corpus ~top:8 in
  Printf.printf "%-16s %-16s %-10s %s\n" "binary" "function" "entry" "cosine";
  List.iter
    (fun (h : Sim.hit) ->
      Printf.printf "%-16s %-16s 0x%-8x %.4f%s\n" h.h_binary h.h_func h.h_entry
        h.h_score
        (if List.mem h.h_func [ "decode_frame"; "read_chunk"; "handle_input" ]
         then "   <- planted copy"
         else ""))
    hits
