examples/perf_analysis.mli:
