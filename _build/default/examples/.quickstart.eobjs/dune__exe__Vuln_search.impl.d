examples/vuln_search.ml: Array Hashtbl List Pbca_binfeat Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_core Pbca_isa Printf
