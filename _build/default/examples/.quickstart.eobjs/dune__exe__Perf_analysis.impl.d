examples/perf_analysis.ml: List Option Pbca_binfmt Pbca_codegen Pbca_concurrent Pbca_debuginfo Pbca_hpcstruct Printf String
