examples/vuln_search.mli:
