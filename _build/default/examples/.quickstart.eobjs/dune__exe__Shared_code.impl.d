examples/shared_code.ml: Array Atomic Hashtbl List Pbca_codegen Pbca_concurrent Pbca_core Printf String
