examples/forensics.mli:
