examples/quickstart.mli:
