examples/shared_code.mli:
