examples/forensics.ml: Hashtbl List Pbca_binfeat Pbca_codegen Pbca_concurrent Printf
