examples/quickstart.ml: Atomic Format List Pbca_binfmt Pbca_checker Pbca_codegen Pbca_concurrent Pbca_core Printf
