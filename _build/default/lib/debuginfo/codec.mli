(** Serialization of debug information into a [.debug] section.

    Layout: a u32 CU count followed by length-prefixed CU blobs. The
    length prefixes let the parser enumerate CU boundaries with a cheap
    serial scan and then decode the blobs in parallel, exactly the
    per-compilation-unit parallelism the paper applies to libdw
    (Section 7.2). The [cu_pad] field is materialized as a pseudo-random
    blob that decoding must checksum, modelling the type-information bulk
    of real [.debug_info]. *)

val encode : Types.t -> Bytes.t
val decode_cu : Bytes.t -> Types.cu
(** Decode one CU blob. Raises [Failure] on corruption (checksum mismatch
    or truncation). *)

val cu_blobs : Bytes.t -> Bytes.t array
(** Slice a [.debug] section into its CU blobs (the serial index scan). *)

val decode : ?pool:Pbca_concurrent.Task_pool.t -> Bytes.t -> Types.t
(** Full decode; CU blobs are decoded with [pool] when given. *)
